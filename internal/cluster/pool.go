package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/peercache"
)

// PoolOptions configures the RPCPool's fault-tolerant dispatch. The zero
// value selects defaults; negative values disable the corresponding
// mechanism where noted.
type PoolOptions struct {
	// CallTimeout is the per-RPC deadline. A call that exceeds it is
	// abandoned, its connection severed, and the request failed over.
	// 0 selects the default (30s); negative disables deadlines.
	CallTimeout time.Duration
	// MaxRetries bounds how many times one request is re-dispatched after
	// transient failures before the pool gives up on remote execution.
	// 0 selects the default (3); negative disables retries.
	MaxRetries int
	// QuarantineAfter is the number of consecutive failures after which a
	// worker is quarantined (removed from rotation until a readmission
	// probe succeeds). 0 selects the default (2); negative means workers
	// are only quarantined when they become unreachable.
	QuarantineAfter int
	// RetryBase and RetryMax shape the capped exponential backoff between
	// retries (half fixed, half seeded jitter). Defaults 10ms and 500ms.
	RetryBase time.Duration
	RetryMax  time.Duration
	// DialRetry is the period of the background goroutine that re-dials
	// quarantined workers and readmits responders. 0 selects the default
	// (500ms); negative disables readmission.
	DialRetry time.Duration
	// DialTimeout bounds each connection attempt. Default 2s.
	DialTimeout time.Duration
	// DisableFallback, when set, makes the pool return an error instead of
	// compiling in-process when no remote worker is available.
	DisableFallback bool
	// Seed seeds the backoff jitter so tests are deterministic. 0 selects
	// the fixed default seed.
	Seed int64
	// CacheDir attaches a disk-backed object tier at the given directory to
	// the pool's master-side cache (overriding WARP_CACHE_DIR), so a fresh
	// warpcc process short-circuits unchanged functions from a previous
	// process's work. Empty means environment-default.
	CacheDir string
	// Peers attaches a peer-to-peer fill tier (internal/peercache) to the
	// master-side cache: section masters batch-prefetch predicted-hot
	// objects from these addresses before dispatching, so a cold master in
	// a warm fleet syncs artifacts instead of recompiling. Worker addresses
	// double as peer addresses (the "Peer" service shares each worker's
	// listener). Unreachable peers are skipped — the tier is best-effort.
	Peers []string
}

// withDefaults fills unset fields.
func (o PoolOptions) withDefaults() PoolOptions {
	if o.CallTimeout == 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.QuarantineAfter == 0 {
		o.QuarantineAfter = 2
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 500 * time.Millisecond
	}
	if o.DialRetry == 0 {
		o.DialRetry = 500 * time.Millisecond
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// poolWorker is the pool's view of one remote workstation: its address
// (stable across restarts), the current client (nil while quarantined), and
// the cache-protocol state that was previously keyed by client pointer —
// reset on every re-dial, because a restarted worker has an empty cache.
type poolWorker struct {
	addr string

	mu          sync.Mutex
	client      *rpc.Client
	fails       int // consecutive transient failures
	quarantined bool
	has         map[fcache.SourceHash]bool
	noCache     bool
}

func (w *poolWorker) isQuarantined() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.quarantined
}

// setClient installs a fresh connection and resets the per-connection
// cache-protocol state.
func (w *poolWorker) setClient(c *rpc.Client) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.client = c
	w.has = make(map[fcache.SourceHash]bool)
	w.noCache = false
}

func (w *poolWorker) getClient() *rpc.Client {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.client
}

func (w *poolWorker) knows(h fcache.SourceHash) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.has[h]
}

func (w *poolWorker) markKnows(h fcache.SourceHash) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.has != nil {
		w.has[h] = true
	}
}

func (w *poolWorker) cacheDisabled() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.noCache
}

func (w *poolWorker) markCacheDisabled() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.noCache = true
}

// RPCPool dispatches compile requests to remote workers over net/rpc with
// FCFS placement: a request takes the first worker that frees up. The pool
// remembers which workers hold which sources and sends hash-only requests
// whenever it can.
//
// Dispatch is fault-tolerant. Compile requests are pure functions of
// (source hash, section, index, options), so on a deadline or transport
// error the pool replays the request on another free worker with capped
// exponential backoff. Workers failing repeatedly are quarantined; a
// background goroutine re-dials them and readmits responders, so a worker
// restarted on the same address rejoins the pool. When every worker is
// quarantined the pool compiles in-process (unless disabled), so the
// compilation completes even with the whole cluster down.
type RPCPool struct {
	opts    PoolOptions
	workers []*poolWorker
	free    chan *poolWorker
	closed  chan struct{}

	closeOnce  sync.Once
	bytesSaved int64 // atomic
	pushes     int64 // atomic: StoreSource RPCs actually issued

	// masterCache serves the master process itself: ParallelCompile warms
	// its frontend tier once per module (instead of re-running the full
	// frontend every compilation), and local-fallback compiles share it so
	// a whole module falling back parses once, like a LocalPool.
	masterCache *fcache.Cache
	// peerClient is the master's view of the peer fleet (nil without
	// opts.Peers), attached to masterCache as its fill tier.
	peerClient *peercache.Peers

	mu      sync.Mutex
	healthy int // workers not quarantined (free or checked out)
	rng     *rand.Rand
	stats   core.FaultStats
}

// DialPool connects to the given worker addresses with default options.
func DialPool(addrs []string) (*RPCPool, error) {
	return DialPoolWith(addrs, PoolOptions{})
}

// DialPoolWith connects to the given worker addresses. Unreachable workers
// do not abort the dial: they start quarantined and the readmission probe
// picks them up when they come back — a degraded start. Only when no worker
// at all is reachable does DialPoolWith return an error.
func DialPoolWith(addrs []string, opts PoolOptions) (*RPCPool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	opts = opts.withDefaults()
	masterCache := fcache.NewEnv(fcache.DefaultMaxBytes)
	if opts.CacheDir != "" {
		if err := masterCache.AttachDisk(opts.CacheDir, 0); err != nil {
			return nil, fmt.Errorf("cluster: opening cache dir %s: %w", opts.CacheDir, err)
		}
	}
	p := &RPCPool{
		opts:        opts,
		free:        make(chan *poolWorker, len(addrs)),
		closed:      make(chan struct{}),
		rng:         rand.New(rand.NewSource(opts.Seed)),
		masterCache: masterCache,
	}
	if len(opts.Peers) > 0 {
		p.peerClient = peercache.New(peercache.ClientOptions{})
		p.peerClient.Connect(opts.Peers...)
		masterCache.AttachPeers(p.peerClient)
	}
	var firstErr error
	for _, a := range addrs {
		w := &poolWorker{addr: a}
		p.workers = append(p.workers, w)
		c, err := p.dialWorker(a)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			w.quarantined = true
			p.stats.Quarantines++
			p.stats.Warnings = append(p.stats.Warnings,
				fmt.Sprintf("worker %s unreachable at start, quarantined: %v", a, err))
			continue
		}
		w.setClient(c)
		p.healthy++
		p.free <- w
	}
	if p.healthy == 0 {
		p.Close()
		return nil, fmt.Errorf("cluster: no reachable workers: %w", firstErr)
	}
	if p.opts.DialRetry > 0 {
		go p.readmitLoop()
	}
	return p, nil
}

// dialWorker connects to addr and verifies liveness with a Ping.
func (p *RPCPool) dialWorker(addr string) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", addr, p.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing %s: %w", addr, err)
	}
	c := rpc.NewClient(conn)
	var ok bool
	if err := callTimeout(context.Background(), c, "Worker.Ping", struct{}{}, &ok, p.opts.CallTimeout); err != nil || !ok {
		c.Close()
		return nil, fmt.Errorf("cluster: worker %s not responding: %v", addr, err)
	}
	return c, nil
}

// Workers returns the number of configured workers (healthy or not).
func (p *RPCPool) Workers() int { return len(p.workers) }

// Healthy returns the number of workers currently in rotation.
func (p *RPCPool) Healthy() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy
}

// FaultStats reports the dispatch layer's fault-handling counters.
func (p *RPCPool) FaultStats() core.FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Warnings = append([]string(nil), p.stats.Warnings...)
	return s
}

// callTimeout issues one RPC with a deadline, abandoned early if ctx is
// cancelled. On expiry or cancellation the client is closed: net/rpc has no
// cancellation, so severing the transport is the only way to guarantee the
// abandoned handler can't complete the call later. ErrDeadline is wrapped
// for errors.Is classification; cancellation returns ctx.Err().
func callTimeout(ctx context.Context, c *rpc.Client, method string, args, reply any, d time.Duration) error {
	if d < 0 && ctx.Done() == nil {
		return c.Call(method, args, reply)
	}
	call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
	var expiry <-chan time.Time
	if d >= 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		expiry = t.C
	}
	select {
	case <-call.Done:
		return call.Error
	case <-expiry:
		c.Close()
		return fmt.Errorf("%w: %s after %v", ErrDeadline, method, d)
	case <-ctx.Done():
		c.Close()
		return ctx.Err()
	}
}

// call issues one RPC on w with the pool's deadline, counting deadline hits.
func (p *RPCPool) call(ctx context.Context, w *poolWorker, method string, args, reply any) error {
	c := w.getClient()
	if c == nil {
		return rpc.ErrShutdown
	}
	err := callTimeout(ctx, c, method, args, reply, p.opts.CallTimeout)
	if errors.Is(err, ErrDeadline) {
		p.mu.Lock()
		p.stats.DeadlineHits++
		p.mu.Unlock()
	}
	return err
}

// Compile sends the request to a free worker, failing over with backoff on
// transient errors — the request is a pure function of (source hash,
// options), so replaying it elsewhere is safe. When every worker is
// quarantined (or retries are exhausted) the pool compiles in-process so
// the compilation completes anyway, mirroring how the paper's pmake fell
// back to plain make when the network was sick. A cancelled ctx severs the
// in-flight RPC (net/rpc has no cancellation: the transport is closed) and
// returns ctx.Err() immediately — no retry, no fallback.
func (p *RPCPool) Compile(ctx context.Context, req core.CompileRequest) (*core.CompileReply, error) {
	if req.SourceHash.IsZero() && len(req.Source) > 0 {
		req.SourceHash = fcache.HashSource(req.Source)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		w := p.acquire(ctx)
		if w == nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return p.fallback(ctx, req, lastErr)
		}
		reply, err := p.compileOn(ctx, w, req)
		if err == nil {
			p.release(w)
			if attempt > 0 {
				p.mu.Lock()
				p.stats.Failovers++
				p.mu.Unlock()
			}
			return reply, nil
		}
		if ctx.Err() != nil {
			// The master cancelled mid-call: the severed transport is not
			// the worker's fault, so recycle it instead of penalizing.
			p.recycle(w)
			return nil, ctx.Err()
		}
		if !transient(err) {
			// The worker answered deterministically (compile error, bad
			// request): it is healthy, the request is not.
			p.release(w)
			return nil, err
		}
		lastErr = err
		p.penalize(w, err)
		if attempt >= p.opts.MaxRetries {
			return p.fallback(ctx, req, lastErr)
		}
		p.mu.Lock()
		p.stats.Retries++
		p.mu.Unlock()
		p.sleepBackoff(ctx, attempt+1)
	}
}

// acquire returns the next free worker, or nil when every worker is
// quarantined (no recovery is coming except through the readmission probe,
// which re-fills the free channel and flips the healthy counter) — or when
// ctx is cancelled while waiting.
func (p *RPCPool) acquire(ctx context.Context) *poolWorker {
	for {
		select {
		case w := <-p.free:
			return w
		default:
		}
		if p.Healthy() == 0 || ctx.Err() != nil {
			return nil
		}
		select {
		case w := <-p.free:
			return w
		case <-p.closed:
			return nil
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Millisecond):
			// Re-check: a checked-out worker may have been quarantined
			// while we waited, leaving nothing to wait for.
		}
	}
}

// recycle returns a worker whose transport the master itself severed
// (cancellation). No failure is counted against it: the connection is
// re-dialed and the worker rejoins the rotation, or — if unreachable right
// now — is parked in quarantine for the readmission probe to pick up.
func (p *RPCPool) recycle(w *poolWorker) {
	w.mu.Lock()
	if w.client != nil {
		w.client.Close()
		w.client = nil
	}
	w.mu.Unlock()
	if c, err := p.dialWorker(w.addr); err == nil {
		w.setClient(c)
		p.free <- w
		return
	}
	p.quarantine(w, fmt.Errorf("re-dial after cancellation failed"))
}

// release returns a worker that served successfully to the free ring.
func (p *RPCPool) release(w *poolWorker) {
	w.mu.Lock()
	w.fails = 0
	w.mu.Unlock()
	p.free <- w
}

// penalize handles a transient failure on a checked-out worker: the broken
// connection is dropped, and the worker is either re-dialed back into
// rotation (transient blip) or quarantined (consecutive failures, or
// unreachable). The caller must not use w afterwards.
//
// A drain-coded refusal (CodeUnavailable — the worker answering "I am
// shutting down cleanly") is an orderly protocol event, not a health
// failure: it never counts toward the quarantine threshold, so a worker
// that completes its -grace drain and restarts rejoins with a clean health
// record instead of one strike from quarantine. The worker still leaves
// rotation while draining, because the re-dial below pings it and a
// draining worker answers the ping unavailable.
func (p *RPCPool) penalize(w *poolWorker, cause error) {
	w.mu.Lock()
	if CodeOf(cause) != CodeUnavailable {
		w.fails++
	}
	fails := w.fails
	if w.client != nil {
		w.client.Close()
		w.client = nil
	}
	w.mu.Unlock()

	if p.opts.QuarantineAfter > 0 && fails >= p.opts.QuarantineAfter {
		p.quarantine(w, cause)
		return
	}
	// One strike: try to re-dial immediately so a connection blip does not
	// cost us the worker. An unreachable worker goes straight to
	// quarantine — no point keeping a dead address in rotation.
	if c, err := p.dialWorker(w.addr); err == nil {
		w.setClient(c)
		p.free <- w
		return
	}
	p.quarantine(w, cause)
}

// quarantine removes w from rotation (it is checked out, so simply not
// returning it to the free ring suffices) and records the event.
func (p *RPCPool) quarantine(w *poolWorker, cause error) {
	w.mu.Lock()
	w.quarantined = true
	w.mu.Unlock()
	p.mu.Lock()
	p.healthy--
	p.stats.Quarantines++
	p.stats.Warnings = append(p.stats.Warnings,
		fmt.Sprintf("worker %s quarantined: %v", w.addr, cause))
	p.mu.Unlock()
}

// readmitLoop periodically re-dials quarantined workers and readmits the
// ones that answer — a worker restarted on the same address rejoins the
// pool without operator action.
func (p *RPCPool) readmitLoop() {
	t := time.NewTicker(p.opts.DialRetry)
	defer t.Stop()
	for {
		select {
		case <-p.closed:
			return
		case <-t.C:
		}
		for _, w := range p.workers {
			if !w.isQuarantined() {
				continue
			}
			c, err := p.dialWorker(w.addr)
			if err != nil {
				continue
			}
			w.mu.Lock()
			w.quarantined = false
			w.fails = 0
			w.mu.Unlock()
			w.setClient(c)
			p.mu.Lock()
			p.healthy++
			p.stats.Readmissions++
			p.mu.Unlock()
			select {
			case <-p.closed:
				c.Close()
				return
			default:
				p.free <- w
			}
		}
	}
}

// sleepBackoff waits before retry n (1-based): capped exponential, half
// fixed and half seeded jitter, interruptible by Close or ctx.
func (p *RPCPool) sleepBackoff(ctx context.Context, n int) {
	d := p.opts.RetryBase << uint(n-1)
	if d > p.opts.RetryMax || d <= 0 {
		d = p.opts.RetryMax
	}
	p.mu.Lock()
	jitter := time.Duration(p.rng.Int63n(int64(d)/2 + 1))
	p.mu.Unlock()
	t := time.NewTimer(d/2 + jitter)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.closed:
	case <-ctx.Done():
	}
}

// fallback compiles the request in-process — the graceful-degradation tail
// when no remote worker is available. All fallbacks share one cache so a
// whole module falling back parses once, like a LocalPool.
func (p *RPCPool) fallback(ctx context.Context, req core.CompileRequest, cause error) (*core.CompileReply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.opts.DisableFallback {
		if cause != nil {
			return nil, fmt.Errorf("cluster: no workers available (local fallback disabled): %w", cause)
		}
		return nil, fmt.Errorf("cluster: all workers quarantined (local fallback disabled)")
	}
	if len(req.Source) == 0 {
		return nil, fmt.Errorf("cluster: cannot fall back locally without source (hash %s)", req.SourceHash)
	}
	p.mu.Lock()
	p.stats.LocalFallbacks++
	why := "all workers quarantined"
	if cause != nil {
		why = cause.Error()
	}
	p.stats.Warnings = append(p.stats.Warnings,
		fmt.Sprintf("compiled s%d/#%d in-process (%s)", req.Section, req.Index, why))
	p.mu.Unlock()
	return core.RunFunctionMasterWith(req, p.masterCache)
}

// compileOn runs the cache-protocol dance and the Compile RPC on one
// worker. The source is pushed at most once per (worker, module); every
// later request carries only the content hash — the paper's workstations
// likewise fetched the source from the shared file server rather than
// receiving it in each message.
func (p *RPCPool) compileOn(ctx context.Context, w *poolWorker, req core.CompileRequest) (*core.CompileReply, error) {
	src := req.Source
	h := req.SourceHash

	// Optimistic incremental attempt: when the worker does not yet hold the
	// source but the request carries a function hash, try hash-only before
	// pushing anything — a warm worker (its disk tier survived a restart)
	// answers from its object tier and the source never crosses the wire.
	// A missing-source answer falls through to the normal push path.
	if len(src) > 0 && !req.FuncHash.IsZero() && !w.cacheDisabled() && !w.knows(h) {
		send := req
		send.Source = nil
		var reply core.CompileReply
		switch err := p.call(ctx, w, "Worker.Compile", send, &reply); {
		case err == nil:
			atomic.AddInt64(&p.bytesSaved, int64(len(src)))
			return &reply, nil
		case !IsMissingSource(err):
			return nil, err
		}
	}

	// Decide whether this request can travel hash-only.
	lean, saved := false, false
	if len(src) > 0 && !w.cacheDisabled() {
		if w.knows(h) {
			lean, saved = true, true
		} else {
			switch err := p.push(ctx, w, h, src); {
			case err == nil:
				lean = true
			case IsCacheDisabled(err):
				w.markCacheDisabled()
			default:
				return nil, err
			}
		}
	}

	send := req
	if lean {
		send.Source = nil
	}
	var reply core.CompileReply
	err := p.call(ctx, w, "Worker.Compile", send, &reply)
	if lean && IsMissingSource(err) {
		// The worker evicted the source between our push and its lookup:
		// re-push and retry once with the full source for good measure.
		saved = false
		if perr := p.push(ctx, w, h, src); perr != nil && !IsCacheDisabled(perr) {
			return nil, perr
		}
		reply = core.CompileReply{}
		err = p.call(ctx, w, "Worker.Compile", req, &reply)
	}
	if err != nil {
		return nil, err
	}
	if saved {
		atomic.AddInt64(&p.bytesSaved, int64(len(src)))
	}
	return &reply, nil
}

// CompileBatch sends a multi-function dispatch unit to one free worker in a
// single round trip. Failover is batch-aware: a transiently failed batch is
// split in half and the halves retried concurrently on other workers,
// bottoming out at single functions that reuse Compile's full
// retry/backoff/fallback path. A deterministic answer (compile error, bad
// request) fails the batch without any retry — every worker would answer
// the same, and replaying a poisoned batch would just spread it.
func (p *RPCPool) CompileBatch(ctx context.Context, req core.BatchRequest) ([]*core.CompileReply, error) {
	if req.SourceHash.IsZero() && len(req.Source) > 0 {
		req.SourceHash = fcache.HashSource(req.Source)
	}
	if len(req.Items) == 0 {
		return nil, nil
	}
	if len(req.Items) == 1 {
		r, err := p.Compile(ctx, core.CompileRequest{
			File:       req.File,
			Source:     req.Source,
			SourceHash: req.SourceHash,
			Section:    req.Items[0].Section,
			Index:      req.Items[0].Index,
			FuncHash:   req.Items[0].FuncHash,
			Opts:       req.Opts,
		})
		if err != nil {
			return nil, err
		}
		return []*core.CompileReply{r}, nil
	}
	w := p.acquire(ctx)
	if w == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// No worker in rotation: decompose so each function takes Compile's
		// fallback path (shared in-process cache, one warning per function).
		return p.splitBatch(ctx, req, nil)
	}
	replies, err := p.batchOn(ctx, w, req)
	if err == nil {
		p.release(w)
		return replies, nil
	}
	if ctx.Err() != nil {
		p.recycle(w)
		return nil, ctx.Err()
	}
	if !transient(err) {
		p.release(w)
		return nil, err
	}
	p.penalize(w, err)
	return p.splitBatch(ctx, req, err)
}

// splitBatch is the batch-failover step: halve the unit and retry both
// halves concurrently on whatever workers remain. Recursion bottoms out at
// singletons, which delegate to Compile.
func (p *RPCPool) splitBatch(ctx context.Context, req core.BatchRequest, cause error) ([]*core.CompileReply, error) {
	p.mu.Lock()
	p.stats.BatchSplits++
	p.stats.Retries++
	why := "no workers in rotation"
	if cause != nil {
		why = cause.Error()
	}
	p.stats.Warnings = append(p.stats.Warnings,
		fmt.Sprintf("batch of %d functions split for retry (%s)", len(req.Items), why))
	p.mu.Unlock()

	mid := len(req.Items) / 2
	left, right := req, req
	left.Items = req.Items[:mid]
	right.Items = req.Items[mid:]
	var (
		wg          sync.WaitGroup
		leftReplies []*core.CompileReply
		leftErr     error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		leftReplies, leftErr = p.CompileBatch(ctx, left)
	}()
	rightReplies, rightErr := p.CompileBatch(ctx, right)
	wg.Wait()
	if leftErr != nil {
		return nil, leftErr
	}
	if rightErr != nil {
		return nil, rightErr
	}
	p.mu.Lock()
	p.stats.Failovers++
	p.mu.Unlock()
	return append(leftReplies, rightReplies...), nil
}

// batchOn runs the cache-protocol dance and the CompileBatch RPC on one
// worker, mirroring compileOn: push the source at most once per (worker,
// module), send hash-only whenever possible, re-push once on a missing-
// source answer. A reply-count skew is returned as a plain (transport-
// class) error so the caller's split-retry heals it.
func (p *RPCPool) batchOn(ctx context.Context, w *poolWorker, req core.BatchRequest) ([]*core.CompileReply, error) {
	src := req.Source
	h := req.SourceHash

	// Optimistic incremental attempt, as in compileOn: if every item carries
	// a function hash and the worker does not yet hold the source, a fully
	// warm worker answers the whole batch from its object tier.
	allHashed := len(req.Items) > 0
	for _, it := range req.Items {
		if it.FuncHash.IsZero() {
			allHashed = false
			break
		}
	}
	if len(src) > 0 && allHashed && !w.cacheDisabled() && !w.knows(h) {
		send := req
		send.Source = nil
		var reply BatchReply
		switch err := p.call(ctx, w, "Worker.CompileBatch", send, &reply); {
		case err == nil:
			if len(reply.Replies) != len(req.Items) {
				return nil, fmt.Errorf("cluster: batch skew from %s: %d replies for %d items",
					w.addr, len(reply.Replies), len(req.Items))
			}
			atomic.AddInt64(&p.bytesSaved, int64(len(src)))
			out := make([]*core.CompileReply, len(reply.Replies))
			for i := range reply.Replies {
				out[i] = &reply.Replies[i]
			}
			return out, nil
		case !IsMissingSource(err):
			return nil, err
		}
	}

	lean, saved := false, false
	if len(src) > 0 && !w.cacheDisabled() {
		if w.knows(h) {
			lean, saved = true, true
		} else {
			switch err := p.push(ctx, w, h, src); {
			case err == nil:
				lean = true
			case IsCacheDisabled(err):
				w.markCacheDisabled()
			default:
				return nil, err
			}
		}
	}

	send := req
	if lean {
		send.Source = nil
	}
	var reply BatchReply
	err := p.call(ctx, w, "Worker.CompileBatch", send, &reply)
	if lean && IsMissingSource(err) {
		saved = false
		if perr := p.push(ctx, w, h, src); perr != nil && !IsCacheDisabled(perr) {
			return nil, perr
		}
		reply = BatchReply{}
		err = p.call(ctx, w, "Worker.CompileBatch", req, &reply)
	}
	if err != nil {
		return nil, err
	}
	if len(reply.Replies) != len(req.Items) {
		return nil, fmt.Errorf("cluster: batch skew from %s: %d replies for %d items",
			w.addr, len(reply.Replies), len(req.Items))
	}
	if saved {
		atomic.AddInt64(&p.bytesSaved, int64(len(src)))
	}
	out := make([]*core.CompileReply, len(reply.Replies))
	for i := range reply.Replies {
		out[i] = &reply.Replies[i]
	}
	return out, nil
}

// push installs the source on worker w and records that it holds it. Each
// push is counted: a fully warm incremental run issues zero.
func (p *RPCPool) push(ctx context.Context, w *poolWorker, h fcache.SourceHash, src []byte) error {
	var ok bool
	if err := p.call(ctx, w, "Worker.StoreSource", SourceBlob{Hash: h, Source: src}, &ok); err != nil {
		return err
	}
	atomic.AddInt64(&p.pushes, 1)
	w.markKnows(h)
	return nil
}

// Cache exposes the pool's master-side cache so ParallelCompile's own
// phase 1 is cached across compilations — the master otherwise re-runs the
// full frontend per build even though every worker caches it.
func (p *RPCPool) Cache() *fcache.Cache { return p.masterCache }

// CacheStats aggregates the workers' cache counters and adds the pool's own
// wire savings. Workers that cannot be reached contribute nothing.
func (p *RPCPool) CacheStats() fcache.Stats {
	var s fcache.Stats
	for _, w := range p.workers {
		c := w.getClient()
		if c == nil {
			continue
		}
		var ws fcache.Stats
		if err := callTimeout(context.Background(), c, "Worker.CacheStats", struct{}{}, &ws, p.opts.CallTimeout); err == nil {
			s.Add(ws)
		}
	}
	s.RPCBytesSaved += atomic.LoadInt64(&p.bytesSaved)
	s.SourcePushes += atomic.LoadInt64(&p.pushes)
	// The master's own peer traffic (prefetch before dispatch, fills on
	// local fallback) lives in the master cache, not any worker's. Merge
	// just its peer counters so the aggregate keeps meaning "the compile's
	// peer activity" without double-counting the memory/disk tiers.
	ms := p.masterCache.Stats()
	s.PeerHits += ms.PeerHits
	s.PeerMisses += ms.PeerMisses
	s.PeerErrors += ms.PeerErrors
	s.PeerBytes += ms.PeerBytes
	s.PeerPrefetched += ms.PeerPrefetched
	s.PeerServed += ms.PeerServed
	return s
}

// Close tears down all connections and stops the readmission probe.
func (p *RPCPool) Close() {
	p.closeOnce.Do(func() { close(p.closed) })
	if p.peerClient != nil {
		p.peerClient.Close()
	}
	for _, w := range p.workers {
		w.mu.Lock()
		if w.client != nil {
			w.client.Close()
			w.client = nil
		}
		w.mu.Unlock()
	}
}

var _ core.Backend = (*RPCPool)(nil)
var _ core.BatchBackend = (*RPCPool)(nil)
var _ core.CacheProvider = (*RPCPool)(nil)
var _ core.CacheStatser = (*RPCPool)(nil)
var _ core.FaultStatser = (*RPCPool)(nil)

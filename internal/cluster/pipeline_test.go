package cluster_test

// Pipeline tests over real RPC workers: the overlapped master's output must
// match the sequential compiler and the barrier baseline, a chaos-injected
// hang in one section must cancel its siblings promptly (no waiting out the
// barrier, no goroutine leak), and a caller cancelling mid-stream must sever
// the in-flight RPC and leave the pool healthy for the retry.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/wgen"
)

// TestPipelinedRPCMatchesSequential drives the straggler workload through
// real RPC workers under both masters: pipeline ≡ barrier ≡ sequential.
func TestPipelinedRPCMatchesSequential(t *testing.T) {
	noAmbientDiskCache(t)
	src := wgen.MixedProgram(8)
	seq, err := compiler.CompileModule("mixed.w2", src, compiler.Options{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		srv, serr := cluster.NewWorkerServer("127.0.0.1:0", 0)
		if serr != nil {
			t.Fatal(serr)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	pool, err := cluster.DialPoolWith(addrs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	for _, popts := range []core.ParallelOptions{{}, {Barrier: true}} {
		par, stats, err := core.ParallelCompileWith("mixed.w2", src, pool, compiler.Options{}, popts)
		if err != nil {
			t.Fatalf("parallel (barrier=%v): %v", popts.Barrier, err)
		}
		if verr := core.VerifySameOutput(seq.Module, par.Module); verr != nil {
			t.Errorf("output differs from sequential (barrier=%v): %v", popts.Barrier, verr)
		}
		if !popts.Barrier && stats.Pipeline.CriticalPath <= 0 {
			t.Errorf("pipeline stats not populated: %+v", stats.Pipeline)
		}
		if popts.Barrier && stats.Pipeline != (core.PipelineStats{}) {
			t.Errorf("barrier run reported pipeline overlap: %+v", stats.Pipeline)
		}
	}
}

// TestHangCancelsSiblingSections injects an open-ended hang into the first
// compile RPC of a multi-section build with failover disabled: the hung
// section's deadline error must cancel its sibling sections promptly —
// the master returns long before the hang would release — without leaking
// goroutines, and a retry against the recovered server compiles
// word-identical to sequential.
func TestHangCancelsSiblingSections(t *testing.T) {
	noAmbientDiskCache(t)
	base := runtime.NumGoroutine()
	src := wgen.MultiSectionProgram(wgen.Small, 3)

	// One scripted hang (until server close ≈ an hour), then pass-through.
	srv, addr, err := chaos.Serve("127.0.0.1:0", 0, chaos.Script(chaos.Fault{Kind: chaos.Hang}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := fastOpts()
	opts.CallTimeout = 500 * time.Millisecond // expire the hang fast
	opts.MaxRetries = -1                      // no failover: the deadline is fatal
	opts.DisableFallback = true               // and no local rescue either
	pool, err := cluster.DialPoolWith([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, _, cerr := core.ParallelCompile("m.w2", src, pool, compiler.Options{})
	elapsed := time.Since(start)
	if cerr == nil {
		t.Fatal("compile with a hung section succeeded")
	}
	if elapsed > 30*time.Second {
		t.Fatalf("master waited %v — siblings were not cancelled promptly", elapsed)
	}
	if !strings.Contains(cerr.Error(), "section ") {
		t.Errorf("error lost its section attribution: %v", cerr)
	}
	// The surviving error must be the hang's fatal dispatch failure, not a
	// cancellation echo from a severed sibling.
	if errors.Is(cerr, context.Canceled) {
		t.Errorf("cancellation echo masked the real error: %v", cerr)
	}
	pool.Close()

	// No goroutine leak: severed section masters and dispatchers drain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Errorf("goroutines leaked after cancellation: %d now vs %d before", n, base)
	}

	// Retry on a fresh pool: the script is exhausted, so the same server now
	// passes everything through — and the result is word-identical.
	pool2, err := cluster.DialPoolWith([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	compileBoth(t, "m.w2", src, pool2)
}

// TestMidStreamCancellationRPC cancels the caller's context while the
// straggler function hangs in flight on a real RPC worker: the master must
// return the cancellation promptly (severing the in-flight call instead of
// waiting out the hang), and the same pool must serve a clean, word-
// identical retry afterwards.
func TestMidStreamCancellationRPC(t *testing.T) {
	noAmbientDiskCache(t)
	src := wgen.MixedProgram(4)

	// First call hangs until the server closes; everything after passes.
	srv, addr, err := chaos.Serve("127.0.0.1:0", 0, chaos.Script(chaos.Fault{Kind: chaos.Hang}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool, err := cluster.DialPoolWith([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, cerr := core.ParallelCompileContext(ctx, "mixed.w2", src, pool, compiler.Options{},
			core.ParallelOptions{})
		done <- cerr
	}()
	// Give the first request time to reach the worker and lodge in the hang,
	// then cancel the whole compilation.
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case cerr := <-done:
		if cerr == nil {
			t.Fatal("cancelled compile reported success")
		}
		if !errors.Is(cerr, context.Canceled) {
			t.Fatalf("cancellation masked: %v", cerr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not sever the in-flight RPC")
	}

	// The pool recycled the severed worker: the retry on the very same pool
	// passes through (script exhausted) and matches sequential.
	compileBoth(t, "mixed.w2", src, pool)
}

// Package chaos is a deterministic fault-injection harness for the cluster
// dispatch layer. It serves the real cluster.Worker RPC surface but routes
// every Compile and CompileBatch through a fault plan that can delay the
// reply, hang past the caller's deadline, answer with an injected error, or
// drop the underlying connection mid-call — the failure modes of the
// paper's shared workstation fleet (loaded, rebooted, or unreachable
// machines), scripted so tests can drive each recovery path on purpose.
//
// Plans are either scripted (an explicit fault sequence, then pass-through)
// or seeded-random (reproducible chaos for soak tests). Faults apply per
// call in global arrival order across all connections; a batch draws one
// fault for the whole unit.
package chaos

import (
	"errors"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fcache"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// Pass serves the request normally.
	Pass Kind = iota
	// Delay sleeps Fault.D before serving normally — a loaded workstation.
	Delay
	// Hang blocks the call for Fault.D (default: until the server closes)
	// and then fails it — a wedged workstation; drives the client's
	// deadline path.
	Hang
	// ErrorReply answers Fault.Err without compiling — a sick worker. Use a
	// "warp-err:<code>: ..." message to exercise coded-error handling.
	ErrorReply
	// Drop closes the connection under the call — a crash or network
	// partition; the client sees a transport error.
	Drop
)

// Fault is one scripted fault.
type Fault struct {
	Kind Kind
	D    time.Duration // Delay/Hang duration (Hang: 0 means until close)
	Err  string        // ErrorReply message
}

// Random configures the seeded-random tail of a plan: each Compile draws
// independently; at most one fault kind fires per call (checked in the
// order drop, error, delay).
type Random struct {
	DropProb  float64
	ErrProb   float64
	Err       string
	DelayProb float64
	Delay     time.Duration
}

// Plan decides the fault for each Compile call. Safe for concurrent use.
type Plan struct {
	mu     sync.Mutex
	script []Fault
	next   int
	rng    *rand.Rand
	random Random
	calls  int
}

// Script returns a plan that applies the given faults to the first len
// Compile calls in order, then passes everything through.
func Script(faults ...Fault) *Plan {
	return &Plan{script: faults}
}

// Seeded returns a plan drawing faults from cfg with a deterministic seed.
func Seeded(seed int64, cfg Random) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed)), random: cfg}
}

// Calls reports how many Compile calls the plan has decided.
func (p *Plan) Calls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// take returns the fault for the next Compile call.
func (p *Plan) take() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.next < len(p.script) {
		f := p.script[p.next]
		p.next++
		return f
	}
	if p.rng != nil {
		switch draw := p.rng.Float64(); {
		case draw < p.random.DropProb:
			return Fault{Kind: Drop}
		case draw < p.random.DropProb+p.random.ErrProb:
			return Fault{Kind: ErrorReply, Err: p.random.Err}
		case draw < p.random.DropProb+p.random.ErrProb+p.random.DelayProb:
			return Fault{Kind: Delay, D: p.random.Delay}
		}
	}
	return Fault{Kind: Pass}
}

// Server is a chaos-wrapped worker server.
type Server struct {
	ln     net.Listener
	addr   string
	worker *cluster.Worker
	plan   *Plan

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	done   chan struct{}
	closed bool
}

// Serve starts a worker on addr (e.g. "127.0.0.1:0") whose Compile calls
// pass through plan. The worker keeps a real artifact cache (cacheBytes as
// in cluster.NewWorker) shared across connections, so recovery tests see
// genuine cache-protocol traffic too.
func Serve(addr string, cacheBytes int64, plan *Plan) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	s := &Server{
		ln:     ln,
		addr:   ln.Addr().String(),
		worker: cluster.NewWorker(cacheBytes),
		plan:   plan,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	go s.acceptLoop()
	return s, s.addr, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.addr }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		// One rpc.Server per connection so the injected service can sever
		// its own transport (the Drop fault).
		srv := rpc.NewServer()
		srv.RegisterName("Worker", &faultyWorker{s: s, conn: conn})
		go func() {
			srv.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server and severs every connection, releasing any calls
// hanging on open-ended Hang faults.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// faultyWorker is the per-connection RPC service: the shared inner worker
// behind the plan's faults.
type faultyWorker struct {
	s    *Server
	conn net.Conn
}

// inject applies the plan's next fault. It returns a non-nil error when the
// fault decides the call; a nil error means pass the call through (possibly
// after a delay) to the real worker.
func (f *faultyWorker) inject() error {
	switch ft := f.s.plan.take(); ft.Kind {
	case Delay:
		f.sleep(ft.D)
	case Hang:
		d := ft.D
		if d <= 0 {
			d = time.Hour
		}
		f.sleep(d)
		return errors.New("chaos: hang released")
	case ErrorReply:
		msg := ft.Err
		if msg == "" {
			msg = "chaos: injected error"
		}
		return errors.New(msg)
	case Drop:
		f.conn.Close()
		return errors.New("chaos: connection dropped")
	}
	return nil
}

func (f *faultyWorker) Compile(req core.CompileRequest, reply *core.CompileReply) error {
	if err := f.inject(); err != nil {
		return err
	}
	return f.s.worker.Compile(req, reply)
}

// CompileBatch draws one fault per batch — a faulted batch fails (or hangs,
// or drops) whole, driving the client's split-retry path.
func (f *faultyWorker) CompileBatch(req core.BatchRequest, reply *cluster.BatchReply) error {
	if err := f.inject(); err != nil {
		return err
	}
	return f.s.worker.CompileBatch(req, reply)
}

// sleep waits for d or until the server closes, whichever comes first.
func (f *faultyWorker) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.s.done:
	}
}

func (f *faultyWorker) StoreSource(blob cluster.SourceBlob, ok *bool) error {
	return f.s.worker.StoreSource(blob, ok)
}

func (f *faultyWorker) CacheStats(in struct{}, out *fcache.Stats) error {
	return f.s.worker.CacheStats(in, out)
}

func (f *faultyWorker) Ping(in struct{}, ok *bool) error {
	return f.s.worker.Ping(in, ok)
}

package chaos

import (
	"math/rand"
	"sync"
	"time"
)

// ClientKind enumerates misbehaviors of a compile-service client, the
// daemon-side mirror of the worker faults above: where a Fault wedges a
// worker under the dispatch layer, a ClientFault wedges (or severs) the
// submitting side of the service wire. Daemon soaks draw one per job.
type ClientKind int

const (
	// ClientComplete submits the job and reads the reply — a well-behaved
	// build client.
	ClientComplete ClientKind = iota
	// ClientDisconnect severs the connection D after submitting — a killed
	// build (Ctrl-C, OOM). The daemon must cancel exactly this client's
	// work and reclaim its tokens.
	ClientDisconnect
	// ClientHang submits but never reads the reply, holding the connection
	// open for D — a stopped (SIGSTOP) or swapping client. The daemon's
	// write deadline must prevent the connection goroutine from wedging.
	ClientHang
)

// ClientFault is one scripted client behavior.
type ClientFault struct {
	Kind ClientKind
	D    time.Duration
}

// ClientRandom configures the seeded-random tail of a client plan; at most
// one misbehavior fires per job (checked in the order disconnect, hang).
type ClientRandom struct {
	DisconnectProb float64
	Disconnect     time.Duration
	HangProb       float64
	Hang           time.Duration
}

// ClientPlan decides the behavior of each submitted job. Safe for
// concurrent use; behaviors apply in global arrival order, like Plan.
type ClientPlan struct {
	mu     sync.Mutex
	script []ClientFault
	next   int
	rng    *rand.Rand
	random ClientRandom
	calls  int
}

// ClientScript returns a plan applying the given behaviors to the first
// len jobs in order, then completing everything normally.
func ClientScript(faults ...ClientFault) *ClientPlan {
	return &ClientPlan{script: faults}
}

// ClientSeeded returns a plan drawing behaviors from cfg with a
// deterministic seed.
func ClientSeeded(seed int64, cfg ClientRandom) *ClientPlan {
	return &ClientPlan{rng: rand.New(rand.NewSource(seed)), random: cfg}
}

// Calls reports how many jobs the plan has decided.
func (p *ClientPlan) Calls() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// Take returns the behavior for the next job.
func (p *ClientPlan) Take() ClientFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.next < len(p.script) {
		f := p.script[p.next]
		p.next++
		return f
	}
	if p.rng != nil {
		switch draw := p.rng.Float64(); {
		case draw < p.random.DisconnectProb:
			return ClientFault{Kind: ClientDisconnect, D: p.random.Disconnect}
		case draw < p.random.DisconnectProb+p.random.HangProb:
			return ClientFault{Kind: ClientHang, D: p.random.Hang}
		}
	}
	return ClientFault{Kind: ClientComplete}
}

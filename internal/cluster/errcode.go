package cluster

import (
	"errors"
	"fmt"
	"net/rpc"
	"strings"
)

// Code classifies an error produced by worker code. net/rpc flattens server
// errors to bare strings (rpc.ServerError), so the classification is encoded
// as a "warp-err:<code>: " prefix on the message and decoded with CodeOf on
// the client side — structured where a substring match used to be. The code
// decides how the dispatch layer reacts: cache-protocol codes trigger a
// source push, retryable codes trigger failover to another worker, and
// everything else is a deterministic outcome not worth retrying.
type Code string

const (
	// CodeMissingSource: a hash-only request named a source the worker does
	// not hold (evicted or never pushed). Cache protocol: push the source
	// and retry the same worker.
	CodeMissingSource Code = "missing-source"
	// CodeCacheDisabled: the worker runs without a cache and cannot accept
	// StoreSource. Cache protocol: send this worker full source from now on.
	CodeCacheDisabled Code = "cache-disabled"
	// CodeBadRequest: the request itself is malformed (e.g. a source blob
	// whose content does not match its claimed hash). Fatal.
	CodeBadRequest Code = "bad-request"
	// CodeCompile: the compiler rejected the source (front-end errors, bad
	// section/function index). Deterministic — every worker would answer the
	// same — so never retried.
	CodeCompile Code = "compile"
	// CodeUnavailable: the worker is alive but will not serve this request
	// (draining for shutdown, chaos-injected unavailability). The request is
	// idempotent, so another worker may succeed: retryable.
	CodeUnavailable Code = "unavailable"
	// CodeOverloaded: the compile service's bounded job queue is full and the
	// job was shed at admission instead of queueing unboundedly. The reply
	// carries a suggested backoff; retrying after it may succeed.
	CodeOverloaded Code = "overloaded"
	// CodeDraining: the compile service received SIGTERM and refuses new
	// jobs while finishing accepted ones. Retryable — against the restarted
	// daemon, or another instance.
	CodeDraining Code = "draining"
)

// codePrefix marks coded errors on the wire.
const codePrefix = "warp-err:"

// Errf builds an error whose classification survives the net/rpc boundary's
// string flattening (and any other transport that keeps the message text,
// such as the compile service's wire protocol).
func Errf(code Code, format string, args ...any) error {
	return fmt.Errorf("%s%s: %s", codePrefix, code, fmt.Sprintf(format, args...))
}

// codeErr is the package-internal alias kept for brevity.
func codeErr(code Code, format string, args ...any) error {
	return Errf(code, format, args...)
}

// CodeOf extracts the code from an error that crossed (or will cross) the
// RPC boundary. It returns "" for nil, uncoded, and transport errors.
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	s := err.Error()
	if !strings.HasPrefix(s, codePrefix) {
		return ""
	}
	s = s[len(codePrefix):]
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return ""
	}
	return Code(s[:i])
}

// Retryable reports whether a failure with this code may succeed on a
// different worker — or, for service-level codes, on a later attempt.
func (c Code) Retryable() bool {
	return c == CodeUnavailable || c == CodeOverloaded || c == CodeDraining
}

// IsOverloaded reports whether err is a compile service's admission-control
// rejection.
func IsOverloaded(err error) bool { return CodeOf(err) == CodeOverloaded }

// IsDraining reports whether err is a compile service's shutting-down
// refusal.
func IsDraining(err error) bool { return CodeOf(err) == CodeDraining }

// IsMissingSource reports whether err is a worker's source-not-resident
// error.
func IsMissingSource(err error) bool { return CodeOf(err) == CodeMissingSource }

// IsCacheDisabled reports whether err is a worker's caching-disabled error.
func IsCacheDisabled(err error) bool { return CodeOf(err) == CodeCacheDisabled }

// ErrDeadline marks a call abandoned because its per-call deadline expired;
// the connection is severed so the in-flight handler cannot complete later
// and double-apply.
var ErrDeadline = errors.New("cluster: call deadline exceeded")

// transient reports whether err is worth retrying on another worker: call
// deadlines, severed connections, and every transport-level failure are; a
// deterministic answer from worker code is not, unless its code says so.
func transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrDeadline) || errors.Is(err, rpc.ErrShutdown) {
		return true
	}
	if c := CodeOf(err); c != "" {
		return c.Retryable()
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		// The worker executed the request and answered with an uncoded
		// error: deterministic, don't retry.
		return false
	}
	// Everything else is transport-level: dial failures, connection resets,
	// unexpected EOF mid-reply.
	return true
}

package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/wgen"
)

// verifyAgainstSequential compiles src through the backend twice (cold and
// warm cache) and checks both outputs word-identical to the sequential
// compiler — the paper's correctness bar, now with caching in the loop.
func verifyAgainstSequential(t *testing.T, name string, src []byte, backend core.Backend) {
	t.Helper()
	seq, err := compiler.CompileModule(name, src, compiler.Options{})
	if err != nil {
		t.Fatalf("%s: sequential: %v", name, err)
	}
	for pass, label := range []string{"cold", "warm"} {
		par, _, err := core.ParallelCompile(name, src, backend, compiler.Options{})
		if err != nil {
			t.Fatalf("%s: parallel (%s): %v", name, label, err)
		}
		if err := core.VerifySameOutput(seq.Module, par.Module); err != nil {
			t.Errorf("%s: %s-cache output differs from sequential (pass %d): %v", name, label, pass, err)
		}
	}
}

// TestCachedLocalPoolMatchesSequential covers the acceptance matrix for the
// in-process pool: the user program plus one synthetic program per wgen
// size, all through one shared cache.
func TestCachedLocalPoolMatchesSequential(t *testing.T) {
	pool := NewLocalPool(4)
	verifyAgainstSequential(t, "user.w2", wgen.UserProgram(), pool)
	for _, size := range wgen.Sizes {
		verifyAgainstSequential(t, "gen-"+size.String()+".w2", wgen.SyntheticProgram(size, 1), pool)
	}
	s := pool.CacheStats()
	if s.Hits() == 0 {
		t.Errorf("shared cache recorded no hits across the matrix: %s", s)
	}
	// Warm passes answer from the object tier before IR is ever consulted
	// (the generated programs have no intra-section calls, the only thing
	// that reads a cached IR), so the expected tiers are frontend + object.
	if s.FrontendHits == 0 || s.ObjectHits == 0 {
		t.Errorf("expected hits in frontend and object tiers, got %s", s)
	}
}

// TestCachedRPCPoolMatchesSequential does the same over real net/rpc
// workers, and additionally checks the wire-level win: after the first
// request per (worker, module), masters send hashes instead of source.
func TestCachedRPCPoolMatchesSequential(t *testing.T) {
	// Without an ambient WARP_CACHE_DIR (CI sets one), or the master would
	// answer every warm pass itself and no hash-only request ever happens.
	t.Setenv(fcache.EnvCacheDir, "")
	var addrs []string
	for i := 0; i < 3; i++ {
		ln, addr, err := ServeWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, addr)
	}
	pool, err := DialPool(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	verifyAgainstSequential(t, "user.w2", wgen.UserProgram(), pool)
	for _, size := range wgen.Sizes {
		verifyAgainstSequential(t, "gen-"+size.String()+".w2", wgen.SyntheticProgram(size, 1), pool)
	}

	s := pool.CacheStats()
	if s.Hits() == 0 {
		t.Errorf("worker caches recorded no hits: %s", s)
	}
	if s.RPCBytesSaved == 0 {
		t.Error("no RPC bytes saved — hash-only requests never happened")
	}
}

// TestParallelStatsReportCacheCounters: ParallelCompile must surface the
// backend's cache effectiveness in its stats.
func TestParallelStatsReportCacheCounters(t *testing.T) {
	pool := NewLocalPool(4)
	src := wgen.UserProgram()
	if _, _, err := core.ParallelCompile("user.w2", src, pool, compiler.Options{}); err != nil {
		t.Fatal(err)
	}
	_, stats, err := core.ParallelCompile("user.w2", src, pool, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits() == 0 {
		t.Errorf("warm recompile reported no cache hits: %s", stats.Cache)
	}
}

// TestWorkerKilledMidCompile kills the only worker of a pool running with
// fault tolerance switched off and checks that both the pool and a full
// parallel compile fail cleanly (no hang, no corrupt output) — the paper's
// original failure story, still reachable when retries and the local
// fallback are disabled.
func TestWorkerKilledMidCompile(t *testing.T) {
	// An ambient disk cache (CI sets WARP_CACHE_DIR) would let the master
	// compile the module without the worker, hiding the failure under test.
	t.Setenv(fcache.EnvCacheDir, "")
	ln, addr, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := DialPoolWith([]string{addr}, PoolOptions{
		CallTimeout:     5 * time.Second,
		MaxRetries:      -1,
		DialRetry:       -1,
		DisableFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	src := wgen.UserProgram()
	// One request succeeds while the worker lives.
	if _, err := pool.Compile(context.Background(), core.CompileRequest{File: "user.w2", Source: src, Section: 1, Index: 0}); err != nil {
		t.Fatalf("healthy worker failed: %v", err)
	}

	// Kill the worker: the listener wrapper severs live connections too.
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, _, err := core.ParallelCompile("user.w2", src, pool, compiler.Options{})
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("parallel compile succeeded against a dead worker")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("section master hung after worker death")
	}

	// Direct requests must also fail fast now.
	if _, err := pool.Compile(context.Background(), core.CompileRequest{File: "user.w2", Source: src, Section: 1, Index: 0}); err == nil {
		t.Error("pool.Compile succeeded against a dead worker")
	}
}

// TestUncachedWorkerFallback: a worker running with caching disabled must
// still serve a caching pool — the pool falls back to sending full source.
func TestUncachedWorkerFallback(t *testing.T) {
	// An ambient disk cache (CI sets WARP_CACHE_DIR) would short-circuit the
	// master and leave the full-source fallback path untested.
	t.Setenv(fcache.EnvCacheDir, "")
	ln, addr, err := ServeWorkerWith("127.0.0.1:0", -1)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	pool, err := DialPool([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	verifyAgainstSequential(t, "user.w2", wgen.UserProgram(), pool)
	if s := pool.CacheStats(); s.RPCBytesSaved != 0 {
		t.Errorf("bytes marked saved against an uncached worker: %s", s)
	}
}

// TestStoreSourceVerifiesHash: a worker must reject a source push whose
// content does not match its claimed address.
func TestStoreSourceVerifiesHash(t *testing.T) {
	w := NewWorker(0)
	good := []byte("module m\nsection 1 { function f() { return; } }\n")
	blob := SourceBlob{Hash: fcache.HashSource(good), Source: []byte("tampered")}
	var resp bool
	if err := w.StoreSource(blob, &resp); err == nil {
		t.Error("mismatched source blob accepted")
	}
	blob.Source = good
	if err := w.StoreSource(blob, &resp); err != nil {
		t.Errorf("valid source blob rejected: %v", err)
	}
}

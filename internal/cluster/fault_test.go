package cluster_test

// Recovery-path tests for the fault-tolerant dispatch layer: worker
// crashes, hangs past the call deadline, injected error replies, total
// cluster loss with local fallback, and quarantine/readmission. The chaos
// package injects faults deterministically, so every path here is driven
// on purpose rather than by timing luck.

import (
	"context"
	"net"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/wgen"
)

// noAmbientDiskCache clears WARP_CACHE_DIR for tests that assert dispatch
// actually happens: CI runs this package with a shared cache directory set,
// and a master answering everything from a pre-populated disk tier would
// make failover and batching assertions vacuous. Must be called before any
// pool or worker is created — the tier is attached at construction.
func noAmbientDiskCache(t *testing.T) {
	t.Helper()
	t.Setenv(fcache.EnvCacheDir, "")
}

// fastOpts are pool options tuned for tests: short probe periods and
// deterministic jitter. The call deadline stays generous — loaded CI boxes
// stall real compiles for hundreds of milliseconds, and a too-tight
// deadline would quarantine healthy workers; tests that need deadline
// expiry (the hang test) shorten it explicitly.
func fastOpts() cluster.PoolOptions {
	return cluster.PoolOptions{
		CallTimeout: 10 * time.Second,
		DialRetry:   50 * time.Millisecond,
		DialTimeout: time.Second,
		RetryBase:   time.Millisecond,
		RetryMax:    10 * time.Millisecond,
		Seed:        42,
	}
}

// compileBoth compiles src sequentially and through the pool and fails the
// test unless the parallel result exists and is word-identical.
func compileBoth(t *testing.T, name string, src []byte, pool *cluster.RPCPool) *core.ParallelStats {
	t.Helper()
	seq, err := compiler.CompileModule(name, src, compiler.Options{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, stats, err := core.ParallelCompile(name, src, pool, compiler.Options{})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if err := core.VerifySameOutput(seq.Module, par.Module); err != nil {
		t.Errorf("output differs from sequential: %v", err)
	}
	return stats
}

// TestChaosCrashAndHangFailover is the acceptance scenario: one worker
// drops the connection mid-call (crash), one hangs past the call deadline,
// one is healthy. The compile must still succeed with word-identical
// output, and the stats must show the failovers that made it so.
func TestChaosCrashAndHangFailover(t *testing.T) {
	noAmbientDiskCache(t)
	hangSrv, hangAddr, err := chaos.Serve("127.0.0.1:0", 0, chaos.Script(chaos.Fault{Kind: chaos.Hang}))
	if err != nil {
		t.Fatal(err)
	}
	defer hangSrv.Close()
	dropSrv, dropAddr, err := chaos.Serve("127.0.0.1:0", 0, chaos.Script(chaos.Fault{Kind: chaos.Drop}))
	if err != nil {
		t.Fatal(err)
	}
	defer dropSrv.Close()
	ln, okAddr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// A shortened deadline so the hung call (which blocks for an hour)
	// expires quickly. The module's functions compile in single-digit
	// milliseconds — even race-detector and loaded-CI slowdowns leave two
	// orders of magnitude of headroom, so healthy calls never trip. Extra
	// retries keep a transient storm ending in remote success, not local
	// fallback.
	opts := fastOpts()
	opts.CallTimeout = 5 * time.Second
	opts.MaxRetries = 8
	pool, err := cluster.DialPoolWith([]string{hangAddr, dropAddr, okAddr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stats := compileBoth(t, "user.w2", wgen.UserProgram(), pool)
	f := stats.Faults
	if f.Failovers < 1 {
		t.Errorf("expected >= 1 failover, got %s", f)
	}
	if f.DeadlineHits < 1 {
		t.Errorf("hung worker never hit the call deadline: %s", f)
	}
	if f.Retries < 2 {
		t.Errorf("expected retries for both the crash and the hang, got %s", f)
	}
}

// TestWorkerKilledMidModule kills one of two real workers while a module
// compiles and checks the compilation still succeeds, identical to the
// sequential compiler — the recovery the paper's system lacked.
func TestWorkerKilledMidModule(t *testing.T) {
	noAmbientDiskCache(t)
	ln1, addr1, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	ln2, addr2, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	pool, err := cluster.DialPoolWith([]string{addr1, addr2}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Kill worker 2 shortly after the section masters start dispatching.
	killer := time.AfterFunc(5*time.Millisecond, func() { ln2.Close() })
	defer killer.Stop()

	compileBoth(t, "gen-large.w2", wgen.SyntheticProgram(wgen.Large, 2), pool)
}

// TestAllWorkersDeadLocalFallback: with the whole cluster down, the pool
// must compile in-process and record the degradation, not error out.
func TestAllWorkersDeadLocalFallback(t *testing.T) {
	noAmbientDiskCache(t)
	ln, addr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cluster.DialPoolWith([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ln.Close() // the fleet is gone

	stats := compileBoth(t, "user.w2", wgen.UserProgram(), pool)
	f := stats.Faults
	if f.LocalFallbacks < 1 {
		t.Errorf("expected local fallbacks with all workers dead, got %s", f)
	}
	if f.Quarantines < 1 {
		t.Errorf("dead worker was never quarantined: %s", f)
	}
	if len(f.Warnings) == 0 {
		t.Error("degraded compile recorded no warnings in ParallelStats")
	}
	if pool.Healthy() != 0 {
		t.Errorf("healthy = %d, want 0", pool.Healthy())
	}
}

// TestQuarantineAndReadmission: a worker that dies is quarantined; when it
// restarts on the same address the background probe readmits it and the
// pool goes back to remote compiles.
func TestQuarantineAndReadmission(t *testing.T) {
	noAmbientDiskCache(t)
	ln, addr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cluster.DialPoolWith([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	src := wgen.UserProgram()
	if _, err := pool.Compile(context.Background(), core.CompileRequest{File: "user.w2", Source: src, Section: 1, Index: 0}); err != nil {
		t.Fatalf("healthy worker failed: %v", err)
	}

	ln.Close()
	// The next compile quarantines the worker and falls back locally.
	if _, err := pool.Compile(context.Background(), core.CompileRequest{File: "user.w2", Source: src, Section: 1, Index: 0}); err != nil {
		t.Fatalf("fallback compile failed: %v", err)
	}
	if f := pool.FaultStats(); f.Quarantines < 1 || f.LocalFallbacks < 1 {
		t.Fatalf("expected quarantine + local fallback, got %s", f)
	}

	// Restart the worker on the same address; its cache starts empty.
	ln2, _, err := cluster.ServeWorker(addr)
	if err != nil {
		t.Fatalf("restarting worker on %s: %v", addr, err)
	}
	defer ln2.Close()

	deadline := time.Now().Add(10 * time.Second)
	for pool.Healthy() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never readmitted: %s", pool.FaultStats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	f := pool.FaultStats()
	if f.Readmissions < 1 {
		t.Fatalf("readmission not counted: %s", f)
	}

	// Remote service is back: no new local fallbacks.
	before := f.LocalFallbacks
	stats := compileBoth(t, "user.w2", src, pool)
	if stats.Faults.LocalFallbacks != before {
		t.Errorf("readmitted worker still compiled locally: %s", stats.Faults)
	}
}

// TestDegradedStart: DialPoolWith proceeds when only part of the fleet is
// reachable, and still refuses when none of it is.
func TestDegradedStart(t *testing.T) {
	noAmbientDiskCache(t)
	// Reserve then release a port to get an address with no listener.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	ln, liveAddr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	opts := fastOpts()
	opts.DialRetry = -1 // keep the dead address dead
	pool, err := cluster.DialPoolWith([]string{deadAddr, liveAddr}, opts)
	if err != nil {
		t.Fatalf("degraded start refused: %v", err)
	}
	defer pool.Close()
	if pool.Workers() != 2 || pool.Healthy() != 1 {
		t.Errorf("workers=%d healthy=%d, want 2/1", pool.Workers(), pool.Healthy())
	}
	f := pool.FaultStats()
	if f.Quarantines != 1 || len(f.Warnings) == 0 {
		t.Errorf("degraded start not recorded: %s", f)
	}
	compileBoth(t, "user.w2", wgen.UserProgram(), pool)

	if _, err := cluster.DialPoolWith([]string{deadAddr}, opts); err == nil {
		t.Error("pool with zero reachable workers must refuse to start")
	}
}

// TestInjectedUnavailableFailsOver: a coded retryable error reply (the
// worker answering "unavailable", as a draining daemon does) must fail over
// to another worker rather than abort the compile.
func TestInjectedUnavailableFailsOver(t *testing.T) {
	noAmbientDiskCache(t)
	sick, sickAddr, err := chaos.Serve("127.0.0.1:0", 0, chaos.Script(
		chaos.Fault{Kind: chaos.ErrorReply, Err: "warp-err:unavailable: injected by chaos"},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer sick.Close()
	ln, okAddr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	pool, err := cluster.DialPoolWith([]string{sickAddr, okAddr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stats := compileBoth(t, "user.w2", wgen.UserProgram(), pool)
	if stats.Faults.Failovers < 1 {
		t.Errorf("unavailable reply did not fail over: %s", stats.Faults)
	}
}

// TestFatalCompileErrorNotRetried: a deterministic worker answer (bad
// request, compile error) must be returned immediately — no retries, no
// local fallback that would mask the real diagnostic.
func TestFatalCompileErrorNotRetried(t *testing.T) {
	ln, addr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	pool, err := cluster.DialPoolWith([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	_, err = pool.Compile(context.Background(), core.CompileRequest{
		File: "m.w2", Source: wgen.SyntheticProgram(wgen.Tiny, 1), Section: 9, Index: 0,
	})
	if err == nil || !strings.Contains(err.Error(), "no section 9") {
		t.Fatalf("remote error not propagated: %v", err)
	}
	if cluster.CodeOf(err) != cluster.CodeCompile {
		t.Errorf("compile failure not coded: %v", err)
	}
	f := pool.FaultStats()
	if f.Retries != 0 || f.LocalFallbacks != 0 {
		t.Errorf("deterministic failure was retried: %s", f)
	}
}

// TestDrainRefusalNotCountedTowardQuarantine is the regression test for the
// drain health-record bug: a worker answering drain-coded unavailability
// (the orderly "I am shutting down" refusal) must not accumulate strikes
// toward the quarantine threshold. Before the fix, the sequence
// [unavailable, one transient drop] put two strikes on the worker and
// quarantined it (QuarantineAfter = 2) even though only one genuine fault
// ever occurred — so a worker that completed its -grace drain and came back
// rejoined with a dirty record and was quarantined by the first blip.
func TestDrainRefusalNotCountedTowardQuarantine(t *testing.T) {
	noAmbientDiskCache(t)
	// Script: first call refused drain-coded, second call dropped (one real
	// transient fault), everything after passes. The chaos worker stays up
	// throughout, so every re-dial ping succeeds and the worker re-enters
	// rotation immediately — exactly a drain that finished between the
	// refusal and the pool's re-dial.
	srv, addr, err := chaos.Serve("127.0.0.1:0", 0, chaos.Script(
		chaos.Fault{Kind: chaos.ErrorReply, Err: "warp-err:unavailable: worker: draining, not accepting new compiles"},
		chaos.Fault{Kind: chaos.Drop},
	))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := fastOpts()
	opts.MaxRetries = 5
	opts.QuarantineAfter = 2
	pool, err := cluster.DialPoolWith([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	r, err := pool.Compile(context.Background(), core.CompileRequest{
		File: "user.w2", Source: wgen.UserProgram(), Section: 1, Index: 0,
	})
	if err != nil {
		t.Fatalf("compile through drain refusal + drop failed: %v", err)
	}
	if r == nil || r.Name == "" {
		t.Fatal("empty reply")
	}
	f := pool.FaultStats()
	if f.Quarantines != 0 {
		t.Errorf("drain-coded refusal counted toward quarantine threshold: %s", f)
	}
	if f.Retries < 2 {
		t.Errorf("expected the refusal and the drop to be retried, got %s", f)
	}
	if pool.Healthy() != 1 {
		t.Errorf("healthy = %d, want 1 (worker must rejoin with a clean record)", pool.Healthy())
	}
	if f.LocalFallbacks != 0 {
		t.Errorf("compile fell back locally instead of failing over on the worker: %s", f)
	}
}

// TestChaosSeededSoak runs a module through seeded random chaos (drops and
// delays) and requires the usual word-identical output — reproducible
// disorder, same answer.
func TestChaosSeededSoak(t *testing.T) {
	noAmbientDiskCache(t)
	plan := chaos.Seeded(7, chaos.Random{
		DropProb:  0.15,
		DelayProb: 0.2,
		Delay:     2 * time.Millisecond,
	})
	srv, addr, err := chaos.Serve("127.0.0.1:0", 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, okAddr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	pool, err := cluster.DialPoolWith([]string{addr, okAddr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	compileBoth(t, "gen-medium.w2", wgen.SyntheticProgram(wgen.Medium, 3), pool)
	if plan.Calls() == 0 {
		t.Error("chaos plan saw no calls")
	}
}

// TestGracefulShutdownDrains: a worker server asked to shut down finishes
// the compiles it already accepted (no connection resets) and refuses new
// connections afterwards.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, err := cluster.NewWorkerServer("127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Four concurrent sessions, as four masters would open them.
	src := wgen.SyntheticProgram(wgen.Large, 2)
	const n = 4
	clients := make([]*rpc.Client, n)
	for i := range clients {
		c, err := rpc.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	results := make(chan error, n)
	for _, c := range clients {
		go func(c *rpc.Client) {
			var reply core.CompileReply
			results <- c.Call("Worker.Compile", core.CompileRequest{
				File: "gen-large.w2", Source: src, Section: 1, Index: 0,
			}, &reply)
		}(c)
	}
	// Let the requests reach the worker, then ask it to drain. The grace
	// period is generous: the four Large compiles run serially on the
	// worker and race-instrumented runs slow each one down considerably.
	time.Sleep(50 * time.Millisecond)
	if err := srv.Shutdown(2 * time.Minute); err != nil {
		t.Errorf("shutdown did not drain: %v", err)
	}
	for i := 0; i < n; i++ {
		err := <-results
		// Compiles accepted before draining must finish; any that arrived
		// after draining began are refused with a coded unavailable error —
		// never a raw transport failure.
		if err != nil && cluster.CodeOf(err) != cluster.CodeUnavailable {
			t.Errorf("in-flight compile failed unexpectedly: %v", err)
		}
	}
	if _, err := net.DialTimeout("tcp", srv.Addr(), 500*time.Millisecond); err == nil {
		t.Error("worker still accepting connections after shutdown")
	}
}

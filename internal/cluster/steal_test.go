package cluster_test

// Work-stealing over real RPC workers: the shared fleet drives both pool
// kinds, and mid-steal worker failures fall into the existing retry/failover
// machinery — output stays word-identical to sequential throughout.

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/core"
	"repro/internal/wgen"
)

// TestStealRPCSkewedParity runs the stealer's target workload — one heavy
// section and several near-empty ones — through real RPC workers with the
// production defaults (stealing on): idle section masters' slots must be able
// to take the heavy section's queued work, and the output must stay
// word-identical.
func TestStealRPCSkewedParity(t *testing.T) {
	noAmbientDiskCache(t)
	var addrs []string
	for i := 0; i < 4; i++ {
		ln, addr, err := cluster.ServeWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, addr)
	}
	pool, err := cluster.DialPoolWith(addrs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stats := compileBothWith(t, "skew.w2", wgen.SkewedProgram(4, 8), pool, core.ParallelOptions{})
	if !stats.Steal.Enabled {
		t.Error("default options must dispatch through the stealer")
	}
	if len(stats.Steal.IdleTime) != 4 {
		t.Errorf("idle decomposition has %d slots, want 4", len(stats.Steal.IdleTime))
	}
}

// TestStealLocalPoolSkewedParity covers the in-process pool on the same
// workload (the fleet is shared infrastructure, not an RPC feature).
func TestStealLocalPoolSkewedParity(t *testing.T) {
	pool := cluster.NewLocalPool(4)
	stats := compileBothWith(t, "skew.w2", wgen.SkewedProgram(4, 8), pool, core.ParallelOptions{})
	if !stats.Steal.Enabled {
		t.Error("default options must dispatch through the stealer")
	}
}

// TestStealChaosWorkerDiesMidSteal is the stealing chaos run: every worker
// drops its first connection, so units — including stolen fragments already
// rebalanced onto other slots — fail mid-flight and must retry or split
// through the fault layer. The build must converge word-identical with the
// recovery visible in the fault stats.
func TestStealChaosWorkerDiesMidSteal(t *testing.T) {
	noAmbientDiskCache(t)
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, addr, err := chaos.Serve("127.0.0.1:0", 0, chaos.Script(chaos.Fault{Kind: chaos.Drop}))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, addr)
	}
	opts := fastOpts()
	opts.MaxRetries = 8
	pool, err := cluster.DialPoolWith(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stats := compileBothWith(t, "skew.w2", wgen.SkewedProgram(3, 6), pool, core.ParallelOptions{})
	if !stats.Steal.Enabled {
		t.Error("chaos run must still dispatch through the stealer")
	}
	if f := stats.Faults; f.Retries == 0 && f.BatchSplits == 0 && f.Failovers == 0 {
		t.Errorf("every worker dropped a connection; expected recovery activity, got %s", f)
	}
}

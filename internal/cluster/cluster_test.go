package cluster

import (
	"context"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/wgen"
)

func TestLocalPoolCompile(t *testing.T) {
	src := wgen.SyntheticProgram(wgen.Small, 2)
	pool := NewLocalPool(2)
	if pool.Workers() != 2 {
		t.Fatalf("workers = %d", pool.Workers())
	}
	res, _, err := core.ParallelCompile("m.w2", src, pool, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := compiler.CompileModule("m.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySameOutput(seq.Module, res.Module); err != nil {
		t.Error(err)
	}
}

func TestLocalPoolClampsSize(t *testing.T) {
	if NewLocalPool(0).Workers() != 1 || NewLocalPool(-3).Workers() != 1 {
		t.Error("pool size must clamp to 1")
	}
}

// TestRPCWorkers spins up real net/rpc workers on localhost — separate
// address spaces in spirit (separate rpc servers over TCP) — and runs the
// parallel compiler against them.
func TestRPCWorkers(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		ln, addr, err := ServeWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, addr)
	}
	pool, err := DialPool(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Workers() != 3 {
		t.Fatalf("workers = %d, want 3", pool.Workers())
	}

	src := wgen.UserProgram()
	res, stats, err := core.ParallelCompile("user.w2", src, pool, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := compiler.CompileModule("user.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySameOutput(seq.Module, res.Module); err != nil {
		t.Errorf("RPC-compiled module differs: %v", err)
	}
	if len(stats.FuncCPU) != 9 {
		t.Errorf("expected 9 function CPU entries, got %d", len(stats.FuncCPU))
	}
}

func TestRPCCompileErrorPropagates(t *testing.T) {
	ln, addr, err := ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	pool, err := DialPool([]string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// A request with a bad section index must yield a remote error.
	_, err = pool.Compile(context.Background(), core.CompileRequest{
		File: "m.w2", Source: wgen.SyntheticProgram(wgen.Tiny, 1), Section: 9, Index: 0,
	})
	if err == nil || !strings.Contains(err.Error(), "no section 9") {
		t.Errorf("remote error not propagated: %v", err)
	}
}

func TestDialPoolFailures(t *testing.T) {
	if _, err := DialPool(nil); err == nil {
		t.Error("empty address list must fail")
	}
	if _, err := DialPool([]string{"127.0.0.1:1"}); err == nil {
		t.Error("dialing a dead port must fail")
	}
}

package cluster

// Tests for the worker's concurrent-compile bound (warpworker -jobs):
// net/rpc spawns one goroutine per pending request, so the jobs semaphore
// is the only thing standing between a burst of batch RPCs and an
// oversubscribed machine.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wgen"
)

func TestWorkerDefaultsToOneJob(t *testing.T) {
	if j := NewWorker(0).Jobs(); j != 1 {
		t.Errorf("NewWorker jobs = %d, want 1 (the paper's single-CPU workstation)", j)
	}
	if j := NewWorkerJobs(0, -3).Jobs(); j != 1 {
		t.Errorf("NewWorkerJobs(-3) jobs = %d, want 1", j)
	}
	if j := NewWorkerJobs(0, 4).Jobs(); j != 4 {
		t.Errorf("NewWorkerJobs(4) jobs = %d, want 4", j)
	}
}

// TestWorkerJobsQueueNotInterleave drives N+1 concurrent compiles into a
// worker bounded at N jobs and checks the N+1th queued instead of running
// alongside the others: the concurrency high-water mark never exceeds N,
// yet every compile completes.
func TestWorkerJobsQueueNotInterleave(t *testing.T) {
	const jobs = 2
	w := NewWorkerJobs(-1, jobs) // cache disabled: every request really compiles
	src := wgen.SyntheticProgram(wgen.Small, jobs+1)

	var wg sync.WaitGroup
	errs := make([]error, jobs+1)
	for i := 0; i < jobs+1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply core.CompileReply
			errs[i] = w.Compile(core.CompileRequest{
				File: "m.w2", Source: src, Section: 1, Index: i,
			}, &reply)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
	}
	if pk := w.PeakConcurrent(); pk > jobs {
		t.Errorf("peak concurrency = %d, want <= %d: the jobs bound leaked", pk, jobs)
	}
}

// TestWorkerJobsBlockUntilSlotFree pins the queueing behavior down
// deterministically: with every slot held, a new compile must not start
// until a slot is released.
func TestWorkerJobsBlockUntilSlotFree(t *testing.T) {
	w := NewWorkerJobs(-1, 1)
	release := w.acquireSlot() // occupy the only slot

	src := wgen.SyntheticProgram(wgen.Tiny, 1)
	done := make(chan error, 1)
	go func() {
		var reply core.CompileReply
		done <- w.Compile(core.CompileRequest{File: "m.w2", Source: src, Section: 1, Index: 0}, &reply)
	}()

	select {
	case err := <-done:
		t.Fatalf("compile ran while every job slot was held (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
		// Still queued: the bound holds.
	}

	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued compile failed after slot freed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("queued compile never ran after slot freed")
	}
	if pk := w.PeakConcurrent(); pk != 1 {
		t.Errorf("peak concurrency = %d, want 1", pk)
	}
}

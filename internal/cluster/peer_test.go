package cluster_test

// Peer-tier tests at the cluster level: the distributed artifact store
// (internal/peercache) wired through pools, workers, and full parallel
// compiles. The acceptance bar is the same as every other tier's — output
// word-identical to the sequential compiler, under chaos included — plus
// the tentpole's specific wins: a cold restart that recompiles nothing, and
// peer trouble that never bleeds into compile-health quarantine.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/peercache"
	"repro/internal/wgen"
)

// warmLocalCache compiles src into a fresh local pool and returns that
// pool's cache — a warm peer's worth of object entries, ready to serve.
func warmLocalCache(t testing.TB, name string, src []byte) *cluster.LocalPool {
	t.Helper()
	pool := cluster.NewLocalPool(2)
	if _, _, err := core.ParallelCompile(name, src, pool, compiler.Options{}); err != nil {
		t.Fatalf("warming cache: %v", err)
	}
	return pool
}

// TestPeerColdRestartServesModule is the tentpole's headline scenario: a
// cold worker and a cold master, pointed at two warm peers, serve a whole
// previously compiled module without recompiling a single function and
// without a single source push — restart recovery is "sync 32-byte keys and
// fetch objects", not "recompile the world".
func TestPeerColdRestartServesModule(t *testing.T) {
	noAmbientDiskCache(t)
	src := wgen.SyntheticProgram(wgen.Small, 8)

	// Warm fleet: two workers with their own disk tiers, compiled through a
	// pool so the module's objects land across their caches.
	warmA, err := cluster.NewWorkerServerDir("127.0.0.1:0", 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer warmA.Close()
	warmB, err := cluster.NewWorkerServerDir("127.0.0.1:0", 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer warmB.Close()
	warmAddrs := []string{warmA.Addr(), warmB.Addr()}

	warmPool, err := cluster.DialPool(warmAddrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.ParallelCompile("mod.w2", src, warmPool, compiler.Options{}); err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	warmPool.Close()

	// Cold restart: a brand-new worker with an empty cache directory and a
	// brand-new master, both pointed at the warm pair as peers.
	coldWorker, err := cluster.NewWorkerServerPeers("127.0.0.1:0", 0, t.TempDir(), 1, warmAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coldWorker.Close()

	pool, err := cluster.DialPoolWith([]string{coldWorker.Addr()}, cluster.PoolOptions{
		Peers: warmAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	res, stats, err := core.ParallelCompile("mod.w2", src, pool, compiler.Options{})
	if err != nil {
		t.Fatalf("cold restart compile: %v", err)
	}
	if d := stats.Dispatch; d.RecompiledFuncs != 0 {
		t.Errorf("cold restart recompiled %d functions, want 0 (peers hold everything)", d.RecompiledFuncs)
	}
	s := pool.CacheStats()
	if s.SourcePushes != 0 {
		t.Errorf("cold restart pushed source %d times, want 0", s.SourcePushes)
	}
	if s.PeerHits == 0 && s.PeerPrefetched == 0 {
		t.Errorf("cold restart touched no peer: %s", s)
	}

	seq, err := compiler.CompileModule("mod.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySameOutput(seq.Module, res.Module); err != nil {
		t.Errorf("peer-filled output differs from sequential: %v", err)
	}
}

// TestPeerCorruptReplyNoQuarantine pins the health separation the package
// doc promises: a peer serving corrupt bytes is counted in PeerErrors and
// dropped as a transport, but the compile-health quarantine — which governs
// who may compile, a different capability entirely — must not move.
func TestPeerCorruptReplyNoQuarantine(t *testing.T) {
	noAmbientDiskCache(t)
	src := wgen.SyntheticProgram(wgen.Small, 6)

	// A warm cache behind a chaos peer server that corrupts every early
	// fetch (the client marks it dead on the first one it sees).
	warm := warmLocalCache(t, "mod.w2", src)
	corrupting := make([]peercache.Fault, 16)
	for i := range corrupting {
		corrupting[i] = peercache.Fault{Kind: peercache.FaultCorrupt}
	}
	psrv, paddr, err := peercache.Serve("127.0.0.1:0",
		peercache.NewService(warm.Cache(), "", peercache.Script(corrupting...)))
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()

	// One clean worker: the compile itself must go through untouched.
	ln, waddr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	pool, err := cluster.DialPoolWith([]string{waddr}, cluster.PoolOptions{
		Peers: []string{paddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	res, _, err := core.ParallelCompile("mod.w2", src, pool, compiler.Options{})
	if err != nil {
		t.Fatalf("compile with corrupting peer: %v", err)
	}
	if s := pool.CacheStats(); s.PeerErrors == 0 {
		t.Errorf("corrupt peer replies not counted: %s", s)
	}
	if f := pool.FaultStats(); f.Quarantines != 0 {
		t.Errorf("peer corruption moved the compile-health quarantine: %s", f)
	}
	if pool.Healthy() != 1 {
		t.Errorf("healthy workers = %d, want 1 — the serving worker must stay admitted", pool.Healthy())
	}

	seq, err := compiler.CompileModule("mod.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySameOutput(seq.Module, res.Module); err != nil {
		t.Errorf("output differs from sequential after corrupt peer replies: %v", err)
	}
}

// TestPeerChaosParity runs the peer-chaos suite the tentpole is held to:
// hang, connection drop, corrupt reply, and every-peer-dead, each at worker
// counts 1, 2, 4, and 8, each compared word-for-word against the sequential
// compiler. The peer tier is an optimization; no fault in it may change a
// single output word.
func TestPeerChaosParity(t *testing.T) {
	noAmbientDiskCache(t)
	src := wgen.SyntheticProgram(wgen.Small, 8)
	seq, err := compiler.CompileModule("mod.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm := warmLocalCache(t, "mod.w2", src)

	script := func(k peercache.FaultKind, n int) *peercache.Plan {
		fs := make([]peercache.Fault, n)
		for i := range fs {
			fs[i] = peercache.Fault{Kind: k}
		}
		return peercache.Script(fs...)
	}
	scenarios := []struct {
		name string
		run  func(t *testing.T, workers int)
	}{
		{"hang", func(t *testing.T, workers int) {
			srv, addr, err := peercache.Serve("127.0.0.1:0",
				peercache.NewService(warm.Cache(), "", script(peercache.FaultHang, 4)))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			compileWithPeers(t, seq.Module, src, workers, addr)
		}},
		{"drop", func(t *testing.T, workers int) {
			srv, addr, err := peercache.Serve("127.0.0.1:0",
				peercache.NewService(warm.Cache(), "", script(peercache.FaultDrop, 4)))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			compileWithPeers(t, seq.Module, src, workers, addr)
		}},
		{"corrupt", func(t *testing.T, workers int) {
			srv, addr, err := peercache.Serve("127.0.0.1:0",
				peercache.NewService(warm.Cache(), "", script(peercache.FaultCorrupt, 4)))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			compileWithPeers(t, seq.Module, src, workers, addr)
		}},
		{"all-peers-dead", func(t *testing.T, workers int) {
			srvA, addrA, err := peercache.Serve("127.0.0.1:0", peercache.NewService(warm.Cache(), "", nil))
			if err != nil {
				t.Fatal(err)
			}
			srvB, addrB, err := peercache.Serve("127.0.0.1:0", peercache.NewService(warm.Cache(), "", nil))
			if err != nil {
				t.Fatal(err)
			}
			pc := peercache.New(peercache.ClientOptions{Timeout: 250 * time.Millisecond})
			defer pc.Close()
			pc.Connect(addrA, addrB)
			// Both peers die after the summary exchange claimed they hold
			// everything — every fetch must degrade to a local compile.
			srvA.Close()
			srvB.Close()
			pool := cluster.NewLocalPool(workers)
			pool.Cache().AttachPeers(pc)
			parityCompile(t, seq.Module, src, pool)
		}},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, sc := range scenarios {
			sc := sc
			w := workers
			t.Run(fmt.Sprintf("%s/workers=%d", sc.name, w), func(t *testing.T) { sc.run(t, w) })
		}
	}
}

// compileWithPeers builds a local pool of the given width attached to the
// given chaos peers and checks parity against the sequential compiler.
func compileWithPeers(t *testing.T, seq *link.Module, src []byte, workers int, peerAddrs ...string) {
	t.Helper()
	pc := peercache.New(peercache.ClientOptions{Timeout: 250 * time.Millisecond})
	defer pc.Close()
	pc.Connect(peerAddrs...)
	pool := cluster.NewLocalPool(workers)
	pool.Cache().AttachPeers(pc)
	parityCompile(t, seq, src, pool)
}

func parityCompile(t *testing.T, seq *link.Module, src []byte, pool *cluster.LocalPool) {
	t.Helper()
	res, _, err := core.ParallelCompile("mod.w2", src, pool, compiler.Options{})
	if err != nil {
		t.Fatalf("parallel compile under peer chaos: %v", err)
	}
	if err := core.VerifySameOutput(seq, res.Module); err != nil {
		t.Errorf("output differs from sequential: %v", err)
	}
}

// BenchmarkPeerColdStart measures the tentpole's perf claim on the wgen
// mixed workload (one huge function plus a tail of tiny ones): a cold
// process next to two warm peers (peer-fill) against a cold process alone
// (recompile-the-world). BENCH_peer.json records representative medians.
func BenchmarkPeerColdStart(b *testing.B) {
	b.Setenv("WARP_CACHE_DIR", "")
	src := wgen.MixedProgram(12)

	warmA := warmLocalCache(b, "mixed.w2", src)
	warmB := warmLocalCache(b, "mixed.w2", src)
	srvA, addrA, err := peercache.Serve("127.0.0.1:0", peercache.NewService(warmA.Cache(), "", nil))
	if err != nil {
		b.Fatal(err)
	}
	defer srvA.Close()
	srvB, addrB, err := peercache.Serve("127.0.0.1:0", peercache.NewService(warmB.Cache(), "", nil))
	if err != nil {
		b.Fatal(err)
	}
	defer srvB.Close()

	b.Run("peer-fill", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pc := peercache.New(peercache.ClientOptions{})
			pc.Connect(addrA, addrB)
			pool := cluster.NewLocalPool(4)
			pool.Cache().AttachPeers(pc)
			if _, _, err := core.ParallelCompile("mixed.w2", src, pool, compiler.Options{}); err != nil {
				b.Fatal(err)
			}
			pc.Close()
		}
	})
	b.Run("recompile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool := cluster.NewLocalPool(4)
			if _, _, err := core.ParallelCompile("mixed.w2", src, pool, compiler.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

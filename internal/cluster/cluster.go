// Package cluster provides the parallel compiler's workstation backends.
//
// The paper's host system is an Ethernet network of diskless SUN
// workstations sharing a file server. This package offers two modern
// stand-ins with the same first-come-first-served semantics:
//
//   - LocalPool: N worker goroutines in this process (shared-memory "nodes").
//   - RPCPool:   worker processes reached over net/rpc — genuinely separate
//     address spaces connected by a byte stream, the closest stdlib
//     equivalent of the paper's message-passing UNIX processes.
//
// Both backends are cached (internal/fcache). The LocalPool shares one
// cache between the master and all workers, so a module is parsed and
// type-checked once per compilation instead of once per function. Each RPC
// worker keeps a per-process cache and a source store: section masters push
// the module source to a worker once (Worker.StoreSource, the shared-file-
// server analog) and afterwards send only its 32-byte content hash, so
// per-request wire bytes drop from O(|source|) to O(1).
//
// Unlike the paper's system — where a workstation failing mid-compile
// failed the compilation — the RPCPool is fault-tolerant: calls carry
// deadlines, failed requests fail over to other workers (they are pure
// functions of source hash and options, so replay is safe), repeatedly
// failing workers are quarantined and probed for readmission, and when no
// worker is left the pool compiles in-process so the compilation still
// completes. See pool.go.
package cluster

import (
	"context"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/peercache"
)

// LocalPool runs function masters on a fixed number of in-process workers
// sharing one artifact cache.
type LocalPool struct {
	sem   chan struct{}
	n     int
	cache *fcache.Cache
}

// NewLocalPool returns a pool of n workers (n < 1 is treated as 1) sharing
// a default-sized artifact cache. When the WARP_CACHE_DIR environment
// variable names a directory, the cache's object tier is disk-backed there,
// so a fresh process starts warm.
func NewLocalPool(n int) *LocalPool {
	return NewLocalPoolWith(n, fcache.NewEnv(fcache.DefaultMaxBytes))
}

// NewLocalPoolWith returns a pool of n workers using the given cache. A nil
// cache yields the paper's original re-derive-everything workers.
func NewLocalPoolWith(n int, cache *fcache.Cache) *LocalPool {
	if n < 1 {
		n = 1
	}
	return &LocalPool{sem: make(chan struct{}, n), n: n, cache: cache}
}

// Workers returns the pool size.
func (p *LocalPool) Workers() int { return p.n }

// Cache exposes the shared cache (nil when uncached) so the master can warm
// the frontend tier during its own phase 1.
func (p *LocalPool) Cache() *fcache.Cache { return p.cache }

// CacheStats reports the shared cache's counters.
func (p *LocalPool) CacheStats() fcache.Stats { return p.cache.Stats() }

// Compile runs the request on the next free worker, blocking until one is
// available — exactly the FCFS placement of the paper. A cancelled ctx
// abandons the wait for a worker; a compile already running completes
// (phases 2+3 are not preemptible in-process) but its reply is discarded.
func (p *LocalPool) Compile(ctx context.Context, req core.CompileRequest) (*core.CompileReply, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-p.sem }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.RunFunctionMasterWith(req, p.cache)
}

// CompileBatch runs a whole dispatch unit on the next free worker: the batch
// occupies one processor for its duration, exactly as a single function
// would, so packing small functions costs one slot instead of N.
// Cancellation stops between batch items.
func (p *LocalPool) CompileBatch(ctx context.Context, req core.BatchRequest) ([]*core.CompileReply, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-p.sem }()
	return core.RunBatchWith(ctx, req, p.cache)
}

// ---------------------------------------------------------------------------
// RPC worker (the "workstation" daemon)

// SourceBlob is the Worker.StoreSource argument: module source plus its
// content address.
type SourceBlob struct {
	Hash   fcache.SourceHash
	Source []byte
}

// Worker is the RPC service run by each workstation process. net/rpc spawns
// one goroutine per pending request, so without a bound a burst of batch
// RPCs would oversubscribe the machine; the jobs semaphore admits at most
// Jobs() compiles at a time and queues the rest (FCFS). The default of one
// job reproduces the paper's single-CPU SUN workstations. The worker keeps
// a per-process artifact cache across requests.
type Worker struct {
	sem   chan struct{} // one slot per concurrent compile job
	cache *fcache.Cache

	// cur/peak track the number of compiles running right now and its
	// high-water mark, observable via PeakConcurrent.
	cur  atomic.Int64
	peak atomic.Int64

	stateMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// NewWorker returns a worker with a cache bounded to cacheBytes
// (cacheBytes < 0 disables caching; 0 selects the default budget) that runs
// one compile at a time. The WARP_CACHE_DIR environment variable attaches a
// disk-backed object tier, so a restarted worker starts warm.
func NewWorker(cacheBytes int64) *Worker {
	return NewWorkerJobs(cacheBytes, 1)
}

// NewWorkerJobs is NewWorker with an explicit concurrent-compile bound
// (jobs < 1 is treated as 1 — the paper's one CPU per workstation).
func NewWorkerJobs(cacheBytes int64, jobs int) *Worker {
	if jobs < 1 {
		jobs = 1
	}
	w := &Worker{sem: make(chan struct{}, jobs)}
	if cacheBytes >= 0 {
		w.cache = fcache.NewEnv(cacheBytes)
	}
	return w
}

// Jobs returns the concurrent-compile bound.
func (w *Worker) Jobs() int { return cap(w.sem) }

// PeakConcurrent reports the high-water mark of simultaneously running
// compiles — never more than Jobs(), by construction.
func (w *Worker) PeakConcurrent() int { return int(w.peak.Load()) }

// acquireSlot blocks until a compile slot is free and returns its release
// function, maintaining the concurrency high-water mark.
func (w *Worker) acquireSlot() func() {
	w.sem <- struct{}{}
	c := w.cur.Add(1)
	for {
		p := w.peak.Load()
		if c <= p || w.peak.CompareAndSwap(p, c) {
			break
		}
	}
	return func() {
		w.cur.Add(-1)
		<-w.sem
	}
}

// begin registers an in-flight request, refusing once draining has started.
func (w *Worker) begin() bool {
	w.stateMu.Lock()
	defer w.stateMu.Unlock()
	if w.draining {
		return false
	}
	w.inflight.Add(1)
	return true
}

// drain stops admitting new compiles and waits up to grace for in-flight
// ones to finish. It reports whether the worker drained fully.
func (w *Worker) drain(grace time.Duration) bool {
	w.stateMu.Lock()
	w.draining = true
	w.stateMu.Unlock()
	done := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(grace):
		return false
	}
}

// Compile is the RPC method invoked by section masters. Requests may omit
// the source when the worker already holds it (content-addressed by
// req.SourceHash). Compile errors are wrapped with CodeCompile so clients
// can tell "the source is bad" from "the worker is bad".
func (w *Worker) Compile(req core.CompileRequest, reply *core.CompileReply) error {
	if !w.begin() {
		return codeErr(CodeUnavailable, "worker: draining, not accepting new compiles")
	}
	defer w.inflight.Done()
	release := w.acquireSlot()
	defer release()
	if len(req.Source) == 0 {
		src, ok := w.cache.Source(req.SourceHash)
		if !ok {
			// The source is not resident, but a hash-only request can still
			// be answered entirely from the object tier (in warm runs the
			// disk tier makes this the common case for a fresh worker) or
			// fetched from a peer that already compiled it — the incremental
			// fast path needs no source at all.
			if e, hit := compiler.LookupObjectAnywhere(w.cache, req.FuncHash, req.Opts); hit {
				*reply = *core.ReplyFromEntry(e, 0, true)
				return nil
			}
			return codeErr(CodeMissingSource, "worker: source not resident for hash %s", req.SourceHash)
		}
		req.Source = src
	} else if !req.SourceHash.IsZero() {
		w.cache.PutSource(req.SourceHash, req.Source)
	}
	r, err := core.RunFunctionMasterWith(req, w.cache)
	if err != nil {
		return codeErr(CodeCompile, "%v", err)
	}
	*reply = *r
	return nil
}

// BatchReply is the Worker.CompileBatch reply: one compile reply per
// requested item, in item order. Replies travel by value so the gob stream
// never carries nil pointers.
type BatchReply struct {
	Replies []core.CompileReply
}

// CompileBatch compiles every item of the batch on this worker in one round
// trip, amortizing the per-request overhead that dominates small functions.
// Source-residency rules match Compile; replies align with req.Items. Any
// item's compile error fails the whole batch with CodeCompile.
func (w *Worker) CompileBatch(req core.BatchRequest, reply *BatchReply) error {
	if !w.begin() {
		return codeErr(CodeUnavailable, "worker: draining, not accepting new compiles")
	}
	defer w.inflight.Done()
	release := w.acquireSlot()
	defer release()
	if len(req.Source) == 0 {
		src, ok := w.cache.Source(req.SourceHash)
		if !ok {
			// As in Compile: a batch whose every item hits the object tier
			// needs no source.
			if replies, all := w.batchFromCache(&req); all {
				reply.Replies = replies
				return nil
			}
			return codeErr(CodeMissingSource, "worker: source not resident for hash %s", req.SourceHash)
		}
		req.Source = src
	} else if !req.SourceHash.IsZero() {
		w.cache.PutSource(req.SourceHash, req.Source)
	}
	// net/rpc carries no context; the pool cancels by severing the
	// connection instead.
	rs, err := core.RunBatchWith(context.Background(), req, w.cache)
	if err != nil {
		return codeErr(CodeCompile, "%v", err)
	}
	reply.Replies = make([]core.CompileReply, len(rs))
	for i, r := range rs {
		reply.Replies[i] = *r
	}
	return nil
}

// batchFromCache tries to answer every item of a batch from the object
// tier — local tiers first, then peers. It reports all=false as soon as one
// item misses everywhere (the caller then demands the source and compiles
// normally).
func (w *Worker) batchFromCache(req *core.BatchRequest) (replies []core.CompileReply, all bool) {
	replies = make([]core.CompileReply, len(req.Items))
	for i, it := range req.Items {
		e, hit := compiler.LookupObjectAnywhere(w.cache, it.FuncHash, req.Opts)
		if !hit {
			return nil, false
		}
		replies[i] = *core.ReplyFromEntry(e, 0, true)
	}
	return replies, len(req.Items) > 0
}

// StoreSource installs module source in the worker's source store, keyed by
// content. The hash is verified so a corrupted or misaddressed blob can
// never poison the cache.
func (w *Worker) StoreSource(blob SourceBlob, ok *bool) error {
	if w.cache == nil {
		return codeErr(CodeCacheDisabled, "worker: caching disabled")
	}
	if got := fcache.HashSource(blob.Source); got != blob.Hash {
		return codeErr(CodeBadRequest, "worker: source blob hash mismatch: got %s, want %s", got, blob.Hash)
	}
	w.cache.PutSource(blob.Hash, blob.Source)
	*ok = true
	return nil
}

// CacheStats reports the worker's cache counters. It deliberately does not
// take the compile lock: stats stay available mid-compile.
func (w *Worker) CacheStats(_ struct{}, out *fcache.Stats) error {
	*out = w.cache.Stats()
	return nil
}

// Ping lets pools check worker liveness. A draining worker answers
// unavailable so pools stop routing to it.
func (w *Worker) Ping(_ struct{}, ok *bool) error {
	w.stateMu.Lock()
	draining := w.draining
	w.stateMu.Unlock()
	if draining {
		*ok = false
		return codeErr(CodeUnavailable, "worker: draining")
	}
	*ok = true
	return nil
}

// workerListener tracks accepted connections so closing the listener also
// severs in-flight sessions — killing a worker kills its conversations, as
// a real workstation crash would, instead of leaving masters hanging.
type workerListener struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func (l *workerListener) track(c net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.conns[c] = struct{}{}
}

func (l *workerListener) untrack(c net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.conns, c)
}

// Close stops accepting and closes every live connection.
func (l *workerListener) Close() error {
	err := l.Listener.Close()
	l.mu.Lock()
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = make(map[net.Conn]struct{})
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// WorkerServer is a serving worker with a lifecycle: Close kills it the way
// a workstation crash would, Shutdown drains it the way an operator's
// SIGTERM should. Every cached worker also answers the peer-cache protocol
// ("Peer" service, internal/peercache) on the same listener, so its address
// doubles as its peer address; workers started with peer addresses
// additionally fetch from those siblings before recompiling.
type WorkerServer struct {
	wl         *workerListener
	worker     *Worker
	addr       string
	peerSvc    *peercache.Service
	peerClient *peercache.Peers
}

// NewWorkerServer listens on addr (e.g. "127.0.0.1:0") and serves compile
// requests with a cache bounded to cacheBytes (0 selects the default;
// negative disables caching) until closed or shut down.
func NewWorkerServer(addr string, cacheBytes int64) (*WorkerServer, error) {
	return serveWorker(addr, NewWorker(cacheBytes))
}

// NewWorkerServerDir is NewWorkerServer with an explicit disk cache
// directory for the worker's object tier (overriding WARP_CACHE_DIR; empty
// means no disk tier beyond the environment's). Several workers may share
// one directory — entries are content-addressed and deterministic.
func NewWorkerServerDir(addr string, cacheBytes int64, dir string) (*WorkerServer, error) {
	return NewWorkerServerJobs(addr, cacheBytes, dir, 1)
}

// NewWorkerServerJobs is NewWorkerServerDir with an explicit concurrent-
// compile bound: up to jobs compiles run simultaneously, the rest queue
// (jobs < 1 is treated as 1). cmd/warpworker exposes it as -jobs, defaulting
// to the machine's CPU count.
func NewWorkerServerJobs(addr string, cacheBytes int64, dir string, jobs int) (*WorkerServer, error) {
	return NewWorkerServerPeers(addr, cacheBytes, dir, jobs, nil)
}

// NewWorkerServerPeers is NewWorkerServerJobs joined to a peer fleet: the
// worker's cache fetches finished objects from the given peer addresses
// (other workers' or daemons' peer listeners) before recompiling, and its
// own address is gossiped to them so the mesh converges. An empty peers
// list still serves the peer protocol — other processes may fetch from this
// worker — it just fetches from nobody. cmd/warpworker exposes it as
// -peers.
func NewWorkerServerPeers(addr string, cacheBytes int64, dir string, jobs int, peers []string) (*WorkerServer, error) {
	w := NewWorkerJobs(cacheBytes, jobs)
	if dir != "" {
		if w.cache == nil {
			return nil, codeErr(CodeCacheDisabled, "worker: -cache-dir requires caching enabled")
		}
		if err := w.cache.AttachDisk(dir, 0); err != nil {
			return nil, err
		}
	}
	return serveWorkerPeers(addr, w, peers)
}

func serveWorker(addr string, w *Worker) (*WorkerServer, error) {
	return serveWorkerPeers(addr, w, nil)
}

func serveWorkerPeers(addr string, w *Worker, peers []string) (*WorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	bound := ln.Addr().String()
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", w); err != nil {
		ln.Close()
		return nil, err
	}
	ws := &WorkerServer{worker: w, addr: bound}
	if w.cache != nil {
		// The peer service shares the worker's listener: the worker address
		// is the peer address. It answers from local tiers only, so a fetch
		// can never recurse back out to the fleet.
		ws.peerSvc = peercache.NewService(w.cache, bound, nil)
		if err := srv.RegisterName(peercache.ServiceName, ws.peerSvc); err != nil {
			ln.Close()
			return nil, err
		}
		if len(peers) > 0 {
			ws.peerSvc.AddPeers(peers)
			ws.peerClient = peercache.New(peercache.ClientOptions{Self: bound})
			ws.peerClient.Connect(peers...)
			w.cache.AttachPeers(ws.peerClient)
		}
	}
	wl := &workerListener{Listener: ln, conns: make(map[net.Conn]struct{})}
	ws.wl = wl
	go func() {
		for {
			conn, err := wl.Accept()
			if err != nil {
				return // listener closed
			}
			wl.track(conn)
			go func() {
				srv.ServeConn(conn)
				wl.untrack(conn)
			}()
		}
	}()
	return ws, nil
}

// Addr returns the bound listen address.
func (s *WorkerServer) Addr() string { return s.addr }

// Worker exposes the served worker (for inspecting concurrency counters).
func (s *WorkerServer) Worker() *Worker { return s.worker }

// Close stops accepting and severs every live connection immediately — the
// workstation-crash behavior used by fault tests.
func (s *WorkerServer) Close() error {
	err := s.wl.Close()
	s.closePeers()
	return err
}

// closePeers tears down the peer-protocol halves: the client's connections
// to siblings and any server-side calls parked on chaos hangs.
func (s *WorkerServer) closePeers() {
	if s.peerClient != nil {
		s.peerClient.Close()
	}
	if s.peerSvc != nil {
		s.peerSvc.Close()
	}
}

// Shutdown stops accepting new connections, refuses new compiles, waits up
// to grace for in-flight compiles to finish, then severs the remaining
// connections. It returns an error when the grace period expired with work
// still in flight.
func (s *WorkerServer) Shutdown(grace time.Duration) error {
	s.wl.Listener.Close() // stop accepting; keep live conversations
	drained := s.worker.drain(grace)
	// Let replies written just after the last handler returned reach the
	// wire before severing.
	time.Sleep(50 * time.Millisecond)
	s.wl.Close()
	s.closePeers()
	if !drained {
		return codeErr(CodeUnavailable, "worker: grace period expired with compiles in flight")
	}
	return nil
}

// ServeWorker listens on addr (e.g. "127.0.0.1:0") and serves compile
// requests with a default-sized per-process cache until the listener is
// closed. It returns the bound address.
func ServeWorker(addr string) (net.Listener, string, error) {
	return ServeWorkerWith(addr, 0)
}

// ServeWorkerWith is ServeWorker with an explicit cache budget in bytes
// (0 selects the default; negative disables caching).
func ServeWorkerWith(addr string, cacheBytes int64) (net.Listener, string, error) {
	srv, err := NewWorkerServer(addr, cacheBytes)
	if err != nil {
		return nil, "", err
	}
	return srv.wl, srv.addr, nil
}

var _ core.Backend = (*LocalPool)(nil)
var _ core.BatchBackend = (*LocalPool)(nil)
var _ core.CacheProvider = (*LocalPool)(nil)
var _ core.CacheStatser = (*LocalPool)(nil)

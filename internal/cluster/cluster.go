// Package cluster provides the parallel compiler's workstation backends.
//
// The paper's host system is an Ethernet network of diskless SUN
// workstations sharing a file server. This package offers two modern
// stand-ins with the same first-come-first-served semantics:
//
//   - LocalPool: N worker goroutines in this process (shared-memory "nodes").
//   - RPCPool:   worker processes reached over net/rpc — genuinely separate
//     address spaces connected by a byte stream, the closest stdlib
//     equivalent of the paper's message-passing UNIX processes.
//
// Both backends are cached (internal/fcache). The LocalPool shares one
// cache between the master and all workers, so a module is parsed and
// type-checked once per compilation instead of once per function. Each RPC
// worker keeps a per-process cache and a source store: section masters push
// the module source to a worker once (Worker.StoreSource, the shared-file-
// server analog) and afterwards send only its 32-byte content hash, so
// per-request wire bytes drop from O(|source|) to O(1).
package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fcache"
)

// LocalPool runs function masters on a fixed number of in-process workers
// sharing one artifact cache.
type LocalPool struct {
	sem   chan struct{}
	n     int
	cache *fcache.Cache
}

// NewLocalPool returns a pool of n workers (n < 1 is treated as 1) sharing
// a default-sized artifact cache.
func NewLocalPool(n int) *LocalPool {
	return NewLocalPoolWith(n, fcache.New(fcache.DefaultMaxBytes))
}

// NewLocalPoolWith returns a pool of n workers using the given cache. A nil
// cache yields the paper's original re-derive-everything workers.
func NewLocalPoolWith(n int, cache *fcache.Cache) *LocalPool {
	if n < 1 {
		n = 1
	}
	return &LocalPool{sem: make(chan struct{}, n), n: n, cache: cache}
}

// Workers returns the pool size.
func (p *LocalPool) Workers() int { return p.n }

// Cache exposes the shared cache (nil when uncached) so the master can warm
// the frontend tier during its own phase 1.
func (p *LocalPool) Cache() *fcache.Cache { return p.cache }

// CacheStats reports the shared cache's counters.
func (p *LocalPool) CacheStats() fcache.Stats { return p.cache.Stats() }

// Compile runs the request on the next free worker, blocking until one is
// available — exactly the FCFS placement of the paper.
func (p *LocalPool) Compile(req core.CompileRequest) (*core.CompileReply, error) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	return core.RunFunctionMasterWith(req, p.cache)
}

// ---------------------------------------------------------------------------
// RPC worker (the "workstation" daemon)

// missingSourceMsg marks the error a worker returns for a hash-only request
// whose source is not resident; pools react by pushing the source and
// retrying. It crosses the net/rpc boundary as a string, so detection is by
// substring (IsMissingSource).
const missingSourceMsg = "worker: source not resident for hash"

// IsMissingSource reports whether err is a worker's source-not-resident
// error.
func IsMissingSource(err error) bool {
	return err != nil && strings.Contains(err.Error(), missingSourceMsg)
}

// cacheDisabledMsg marks the error an uncached worker returns for
// StoreSource; pools fall back to sending the full source every request.
const cacheDisabledMsg = "worker: caching disabled"

// IsCacheDisabled reports whether err is a worker's caching-disabled error.
func IsCacheDisabled(err error) bool {
	return err != nil && strings.Contains(err.Error(), cacheDisabledMsg)
}

// SourceBlob is the Worker.StoreSource argument: module source plus its
// content address.
type SourceBlob struct {
	Hash   fcache.SourceHash
	Source []byte
}

// Worker is the RPC service run by each workstation process. Each worker
// compiles one function at a time, like a single-CPU SUN, but keeps a
// per-process artifact cache across requests.
type Worker struct {
	mu    sync.Mutex
	cache *fcache.Cache
}

// NewWorker returns a worker with a cache bounded to cacheBytes
// (cacheBytes < 0 disables caching; 0 selects the default budget).
func NewWorker(cacheBytes int64) *Worker {
	if cacheBytes < 0 {
		return &Worker{}
	}
	return &Worker{cache: fcache.New(cacheBytes)}
}

// Compile is the RPC method invoked by section masters. Requests may omit
// the source when the worker already holds it (content-addressed by
// req.SourceHash).
func (w *Worker) Compile(req core.CompileRequest, reply *core.CompileReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(req.Source) == 0 {
		src, ok := w.cache.Source(req.SourceHash)
		if !ok {
			return fmt.Errorf("%s %s", missingSourceMsg, req.SourceHash)
		}
		req.Source = src
	} else if !req.SourceHash.IsZero() {
		w.cache.PutSource(req.SourceHash, req.Source)
	}
	r, err := core.RunFunctionMasterWith(req, w.cache)
	if err != nil {
		return err
	}
	*reply = *r
	return nil
}

// StoreSource installs module source in the worker's source store, keyed by
// content. The hash is verified so a corrupted or misaddressed blob can
// never poison the cache.
func (w *Worker) StoreSource(blob SourceBlob, ok *bool) error {
	if w.cache == nil {
		return fmt.Errorf("%s", cacheDisabledMsg)
	}
	if got := fcache.HashSource(blob.Source); got != blob.Hash {
		return fmt.Errorf("worker: source blob hash mismatch: got %s, want %s", got, blob.Hash)
	}
	w.cache.PutSource(blob.Hash, blob.Source)
	*ok = true
	return nil
}

// CacheStats reports the worker's cache counters. It deliberately does not
// take the compile lock: stats stay available mid-compile.
func (w *Worker) CacheStats(_ struct{}, out *fcache.Stats) error {
	*out = w.cache.Stats()
	return nil
}

// Ping lets pools check worker liveness.
func (w *Worker) Ping(_ struct{}, ok *bool) error {
	*ok = true
	return nil
}

// workerListener tracks accepted connections so closing the listener also
// severs in-flight sessions — killing a worker kills its conversations, as
// a real workstation crash would, instead of leaving masters hanging.
type workerListener struct {
	net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

func (l *workerListener) track(c net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.conns[c] = struct{}{}
}

func (l *workerListener) untrack(c net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.conns, c)
}

// Close stops accepting and closes every live connection.
func (l *workerListener) Close() error {
	err := l.Listener.Close()
	l.mu.Lock()
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = make(map[net.Conn]struct{})
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// ServeWorker listens on addr (e.g. "127.0.0.1:0") and serves compile
// requests with a default-sized per-process cache until the listener is
// closed. It returns the bound address.
func ServeWorker(addr string) (net.Listener, string, error) {
	return ServeWorkerWith(addr, 0)
}

// ServeWorkerWith is ServeWorker with an explicit cache budget in bytes
// (0 selects the default; negative disables caching).
func ServeWorkerWith(addr string, cacheBytes int64) (net.Listener, string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", NewWorker(cacheBytes)); err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	wl := &workerListener{Listener: ln, conns: make(map[net.Conn]struct{})}
	go func() {
		for {
			conn, err := wl.Accept()
			if err != nil {
				return // listener closed
			}
			wl.track(conn)
			go func() {
				srv.ServeConn(conn)
				wl.untrack(conn)
			}()
		}
	}()
	return wl, ln.Addr().String(), nil
}

// RPCPool dispatches compile requests to remote workers over net/rpc with
// FCFS placement: a request takes the first worker that frees up. The pool
// remembers which workers hold which sources and sends hash-only requests
// whenever it can.
type RPCPool struct {
	clients []*rpc.Client
	free    chan *rpc.Client

	mu         sync.Mutex
	has        map[*rpc.Client]map[fcache.SourceHash]bool
	noCache    map[*rpc.Client]bool
	bytesSaved int64
}

// DialPool connects to the given worker addresses.
func DialPool(addrs []string) (*RPCPool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	p := &RPCPool{
		free:    make(chan *rpc.Client, len(addrs)),
		has:     make(map[*rpc.Client]map[fcache.SourceHash]bool),
		noCache: make(map[*rpc.Client]bool),
	}
	for _, a := range addrs {
		c, err := rpc.Dial("tcp", a)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("cluster: dialing %s: %w", a, err)
		}
		var ok bool
		if err := c.Call("Worker.Ping", struct{}{}, &ok); err != nil || !ok {
			p.Close()
			return nil, fmt.Errorf("cluster: worker %s not responding: %v", a, err)
		}
		p.clients = append(p.clients, c)
		p.has[c] = make(map[fcache.SourceHash]bool)
		p.free <- c
	}
	return p, nil
}

// Workers returns the number of connected workers.
func (p *RPCPool) Workers() int { return len(p.clients) }

// knows reports whether c is believed to hold the source for h.
func (p *RPCPool) knows(c *rpc.Client, h fcache.SourceHash) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.has[c][h]
}

// push installs the source on worker c and records that it holds it.
func (p *RPCPool) push(c *rpc.Client, h fcache.SourceHash, src []byte) error {
	var ok bool
	if err := c.Call("Worker.StoreSource", SourceBlob{Hash: h, Source: src}, &ok); err != nil {
		return err
	}
	p.mu.Lock()
	if p.has[c] != nil {
		p.has[c][h] = true
	}
	p.mu.Unlock()
	return nil
}

// Compile sends the request to the next free worker. The source is pushed
// at most once per (worker, module); every later request carries only the
// content hash — the paper's workstations likewise fetched the source from
// the shared file server rather than receiving it in each message.
func (p *RPCPool) Compile(req core.CompileRequest) (*core.CompileReply, error) {
	c := <-p.free
	defer func() { p.free <- c }()

	src := req.Source
	if req.SourceHash.IsZero() && len(src) > 0 {
		req.SourceHash = fcache.HashSource(src)
	}
	h := req.SourceHash

	// Decide whether this request can travel hash-only.
	lean, saved := false, false
	if len(src) > 0 && !p.cacheDisabled(c) {
		if p.knows(c, h) {
			lean, saved = true, true
		} else {
			switch err := p.push(c, h, src); {
			case err == nil:
				lean = true
			case IsCacheDisabled(err):
				p.markCacheDisabled(c)
			default:
				return nil, err
			}
		}
	}

	send := req
	if lean {
		send.Source = nil
	}
	var reply core.CompileReply
	err := c.Call("Worker.Compile", send, &reply)
	if lean && IsMissingSource(err) {
		// The worker evicted the source between our push and its lookup:
		// re-push and retry once with the full source for good measure.
		saved = false
		if perr := p.push(c, h, src); perr != nil && !IsCacheDisabled(perr) {
			return nil, perr
		}
		reply = core.CompileReply{}
		err = c.Call("Worker.Compile", req, &reply)
	}
	if err != nil {
		return nil, err
	}
	if saved {
		p.mu.Lock()
		p.bytesSaved += int64(len(src))
		p.mu.Unlock()
	}
	return &reply, nil
}

// cacheDisabled reports whether worker c rejected caching.
func (p *RPCPool) cacheDisabled(c *rpc.Client) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.noCache[c]
}

// markCacheDisabled remembers that worker c is uncached, so the pool sends
// it the full source from then on.
func (p *RPCPool) markCacheDisabled(c *rpc.Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.noCache[c] = true
}

// CacheStats aggregates the workers' cache counters and adds the pool's own
// wire savings. Workers that cannot be reached contribute nothing.
func (p *RPCPool) CacheStats() fcache.Stats {
	var s fcache.Stats
	for _, c := range p.clients {
		var ws fcache.Stats
		if err := c.Call("Worker.CacheStats", struct{}{}, &ws); err == nil {
			s.Add(ws)
		}
	}
	p.mu.Lock()
	s.RPCBytesSaved += p.bytesSaved
	p.mu.Unlock()
	return s
}

// Close tears down all connections.
func (p *RPCPool) Close() {
	for _, c := range p.clients {
		c.Close()
	}
	p.clients = nil
}

var _ core.Backend = (*LocalPool)(nil)
var _ core.Backend = (*RPCPool)(nil)
var _ core.CacheProvider = (*LocalPool)(nil)
var _ core.CacheStatser = (*LocalPool)(nil)
var _ core.CacheStatser = (*RPCPool)(nil)

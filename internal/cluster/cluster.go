// Package cluster provides the parallel compiler's workstation backends.
//
// The paper's host system is an Ethernet network of diskless SUN
// workstations sharing a file server. This package offers two modern
// stand-ins with the same first-come-first-served semantics:
//
//   - LocalPool: N worker goroutines in this process (shared-memory "nodes").
//   - RPCPool:   worker processes reached over net/rpc — genuinely separate
//     address spaces connected by a byte stream, the closest stdlib
//     equivalent of the paper's message-passing UNIX processes.
package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/core"
)

// LocalPool runs function masters on a fixed number of in-process workers.
type LocalPool struct {
	sem chan struct{}
	n   int
}

// NewLocalPool returns a pool of n workers (n < 1 is treated as 1).
func NewLocalPool(n int) *LocalPool {
	if n < 1 {
		n = 1
	}
	return &LocalPool{sem: make(chan struct{}, n), n: n}
}

// Workers returns the pool size.
func (p *LocalPool) Workers() int { return p.n }

// Compile runs the request on the next free worker, blocking until one is
// available — exactly the FCFS placement of the paper.
func (p *LocalPool) Compile(req core.CompileRequest) (*core.CompileReply, error) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	return core.RunFunctionMaster(req)
}

// ---------------------------------------------------------------------------
// RPC worker (the "workstation" daemon)

// Worker is the RPC service run by each workstation process. Each worker
// compiles one function at a time, like a single-CPU SUN.
type Worker struct {
	mu sync.Mutex
}

// Compile is the RPC method invoked by section masters.
func (w *Worker) Compile(req core.CompileRequest, reply *core.CompileReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	r, err := core.RunFunctionMaster(req)
	if err != nil {
		return err
	}
	*reply = *r
	return nil
}

// Ping lets pools check worker liveness.
func (w *Worker) Ping(_ struct{}, ok *bool) error {
	*ok = true
	return nil
}

// ServeWorker listens on addr (e.g. "127.0.0.1:0") and serves compile
// requests until the listener is closed. It returns the bound address.
func ServeWorker(addr string) (net.Listener, string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &Worker{}); err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln, ln.Addr().String(), nil
}

// RPCPool dispatches compile requests to remote workers over net/rpc with
// FCFS placement: a request takes the first worker that frees up.
type RPCPool struct {
	clients []*rpc.Client
	free    chan *rpc.Client
}

// DialPool connects to the given worker addresses.
func DialPool(addrs []string) (*RPCPool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	p := &RPCPool{free: make(chan *rpc.Client, len(addrs))}
	for _, a := range addrs {
		c, err := rpc.Dial("tcp", a)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("cluster: dialing %s: %w", a, err)
		}
		var ok bool
		if err := c.Call("Worker.Ping", struct{}{}, &ok); err != nil || !ok {
			p.Close()
			return nil, fmt.Errorf("cluster: worker %s not responding: %v", a, err)
		}
		p.clients = append(p.clients, c)
		p.free <- c
	}
	return p, nil
}

// Workers returns the number of connected workers.
func (p *RPCPool) Workers() int { return len(p.clients) }

// Compile sends the request to the next free worker.
func (p *RPCPool) Compile(req core.CompileRequest) (*core.CompileReply, error) {
	c := <-p.free
	defer func() { p.free <- c }()
	var reply core.CompileReply
	if err := c.Call("Worker.Compile", req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Close tears down all connections.
func (p *RPCPool) Close() {
	for _, c := range p.clients {
		c.Close()
	}
	p.clients = nil
}

var _ core.Backend = (*LocalPool)(nil)
var _ core.Backend = (*RPCPool)(nil)

package cluster

import (
	"errors"
	"fmt"
	"net/rpc"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wgen"
)

func TestCodeRoundTrip(t *testing.T) {
	for _, c := range []Code{CodeMissingSource, CodeCacheDisabled, CodeBadRequest, CodeCompile, CodeUnavailable} {
		err := codeErr(c, "details %d", 7)
		if got := CodeOf(err); got != c {
			t.Errorf("CodeOf(codeErr(%q)) = %q", c, got)
		}
		// net/rpc flattens server errors to strings: the code must survive.
		wire := rpc.ServerError(err.Error())
		if got := CodeOf(wire); got != c {
			t.Errorf("code lost on the wire: CodeOf(%q) = %q, want %q", wire, got, c)
		}
	}
}

func TestCodeOfUncoded(t *testing.T) {
	cases := []error{
		nil,
		errors.New("connection reset by peer"),
		rpc.ErrShutdown,
		errors.New("warp-err:"),          // truncated prefix
		errors.New("warp-err:malformed"), // no message separator
	}
	for _, err := range cases {
		if got := CodeOf(err); got != "" {
			t.Errorf("CodeOf(%v) = %q, want empty", err, got)
		}
	}
}

func TestSentinelHelpers(t *testing.T) {
	if !IsMissingSource(codeErr(CodeMissingSource, "worker: source not resident for hash abc")) {
		t.Error("IsMissingSource rejected a coded missing-source error")
	}
	if !IsCacheDisabled(codeErr(CodeCacheDisabled, "worker: caching disabled")) {
		t.Error("IsCacheDisabled rejected a coded cache-disabled error")
	}
	if IsMissingSource(errors.New("worker: source not resident for hash abc")) {
		t.Error("uncoded text matched IsMissingSource — substring matching is back")
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{fmt.Errorf("wrapped: %w", ErrDeadline), true},
		{rpc.ErrShutdown, true},
		{errors.New("read tcp 127.0.0.1: connection reset by peer"), true},
		{rpc.ServerError("something exploded server-side"), false},
		{rpc.ServerError(codeErr(CodeCompile, "front-end errors").Error()), false},
		{rpc.ServerError(codeErr(CodeUnavailable, "draining").Error()), true},
		{codeErr(CodeMissingSource, "not resident"), false},
	}
	for _, c := range cases {
		if got := transient(c.err); got != c.want {
			t.Errorf("transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryableCodes(t *testing.T) {
	if !CodeUnavailable.Retryable() {
		t.Error("unavailable must be retryable")
	}
	for _, c := range []Code{CodeMissingSource, CodeCacheDisabled, CodeBadRequest, CodeCompile, Code("")} {
		if c.Retryable() {
			t.Errorf("%q must not be retryable", c)
		}
	}
}

// TestWorkerDrainRefusesNewCompiles checks the draining protocol directly:
// after drain starts, Compile and Ping answer coded unavailable errors.
func TestWorkerDrainRefusesNewCompiles(t *testing.T) {
	w := NewWorker(0)
	if !w.drain(time.Second) {
		t.Fatal("idle worker failed to drain")
	}
	var reply core.CompileReply
	err := w.Compile(core.CompileRequest{
		File: "m.w2", Source: wgen.SyntheticProgram(wgen.Tiny, 1), Section: 1, Index: 0,
	}, &reply)
	if CodeOf(err) != CodeUnavailable {
		t.Errorf("draining worker answered %v, want coded unavailable", err)
	}
	var ok bool
	if err := w.Ping(struct{}{}, &ok); CodeOf(err) != CodeUnavailable || ok {
		t.Errorf("draining worker still pings healthy: ok=%v err=%v", ok, err)
	}
}

// TestPoolOptionsDefaults pins the documented zero-value behavior.
func TestPoolOptionsDefaults(t *testing.T) {
	o := PoolOptions{}.withDefaults()
	if o.CallTimeout != 30*time.Second || o.MaxRetries != 3 || o.QuarantineAfter != 2 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if o.RetryBase <= 0 || o.RetryMax < o.RetryBase || o.DialRetry <= 0 || o.DialTimeout <= 0 {
		t.Errorf("degenerate backoff/probe defaults: %+v", o)
	}
	d := PoolOptions{CallTimeout: -1, MaxRetries: -1, DialRetry: -1}.withDefaults()
	if d.CallTimeout >= 0 || d.MaxRetries != 0 || d.DialRetry >= 0 {
		t.Errorf("negative overrides not preserved: %+v", d)
	}
}

package cluster

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/wgen"
)

// editedPair returns an 8-function program and the same program with exactly
// one function body edited. It also clears WARP_CACHE_DIR for the test:
// these tests assert exact hit counts, which an ambient shared cache
// directory (the CI run sets one) would skew.
func editedPair(t *testing.T) (base, edited []byte) {
	t.Helper()
	t.Setenv(fcache.EnvCacheDir, "")
	base = wgen.SyntheticProgram(wgen.Small, 8)
	edited, names, err := wgen.MutateFunctions(base, 1, 7)
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if len(names) != 1 {
		t.Fatalf("edited %v, want one function", names)
	}
	return base, edited
}

// checkIncremental asserts the dispatch counters of a warm one-edit compile:
// 7 of 8 functions avoided phases 2+3 (either short-circuited by the master
// or answered from a worker's object tier) and the recompile ratio is 1/8.
func checkIncremental(t *testing.T, label string, stats *core.ParallelStats) {
	t.Helper()
	d := stats.Dispatch
	if d.UnchangedFuncs+d.IncrementalHits != 7 {
		t.Errorf("%s: unchanged=%d worker-hits=%d, want 7 total", label, d.UnchangedFuncs, d.IncrementalHits)
	}
	if d.RecompiledFuncs != 1 {
		t.Errorf("%s: recompiled = %d, want 1", label, d.RecompiledFuncs)
	}
	if d.RecompileRatio != 0.125 {
		t.Errorf("%s: recompile ratio = %v, want 0.125", label, d.RecompileRatio)
	}
}

// verifyEdited checks the invariant that gives incremental mode its license:
// the warm parallel result must be byte-identical to a cold sequential
// compile of the edited source.
func verifyEdited(t *testing.T, label string, edited []byte, res *compiler.Result) {
	t.Helper()
	seq, err := compiler.CompileModule("edit.w2", edited, compiler.Options{})
	if err != nil {
		t.Fatalf("%s: sequential: %v", label, err)
	}
	if err := core.VerifySameOutput(seq.Module, res.Module); err != nil {
		t.Errorf("%s: incremental output differs from cold sequential: %v", label, err)
	}
}

// TestLocalPoolIncrementalOneEdit: after a one-function edit, a warm
// in-process pool recompiles that function alone — the module's other seven
// never reach the scheduler.
func TestLocalPoolIncrementalOneEdit(t *testing.T) {
	base, edited := editedPair(t)
	pool := NewLocalPool(4)

	_, cold, err := core.ParallelCompile("base.w2", base, pool, compiler.Options{})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if d := cold.Dispatch; d.RecompiledFuncs != 8 || d.RecompileRatio != 1 {
		t.Errorf("cold run: recompiled=%d ratio=%v, want 8 and 1", d.RecompiledFuncs, d.RecompileRatio)
	}

	// Recompiling the identical source touches nothing.
	_, same, err := core.ParallelCompile("base.w2", base, pool, compiler.Options{})
	if err != nil {
		t.Fatalf("identical rerun: %v", err)
	}
	if d := same.Dispatch; d.UnchangedFuncs != 8 || d.RecompiledFuncs != 0 {
		t.Errorf("identical rerun: unchanged=%d recompiled=%d, want 8 and 0", d.UnchangedFuncs, d.RecompiledFuncs)
	}

	res, warm, err := core.ParallelCompile("edit.w2", edited, pool, compiler.Options{})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	checkIncremental(t, "local", warm)
	// The shared in-process cache lets the section master itself answer the
	// unchanged functions before planning any dispatch.
	if warm.Dispatch.UnchangedFuncs != 7 {
		t.Errorf("master short-circuited %d functions, want 7", warm.Dispatch.UnchangedFuncs)
	}
	verifyEdited(t, "local", edited, res)
}

// TestLocalPoolDiskCacheWarmStart: a fresh pool over a previously populated
// cache directory starts warm — the warpcc -cache-dir story.
func TestLocalPoolDiskCacheWarmStart(t *testing.T) {
	base, edited := editedPair(t)
	dir := t.TempDir()

	cold := NewLocalPool(4)
	if err := cold.Cache().AttachDisk(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.ParallelCompile("base.w2", base, cold, compiler.Options{}); err != nil {
		t.Fatalf("cold: %v", err)
	}

	// A fresh pool (a new warpcc process, in effect) over the same directory.
	warm := NewLocalPool(4)
	if err := warm.Cache().AttachDisk(dir, 0); err != nil {
		t.Fatal(err)
	}
	res, stats, err := core.ParallelCompile("edit.w2", edited, warm, compiler.Options{})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	checkIncremental(t, "disk", stats)
	if s := warm.CacheStats(); s.DiskHits == 0 {
		t.Errorf("warm start never touched the disk tier: %s", s)
	}
	verifyEdited(t, "disk", edited, res)
}

// TestRPCPoolIncrementalOneEdit covers the distributed path: workers share a
// persistent cache directory, the master holds no object entries, and a warm
// one-edit compile is answered function-by-function from the workers' object
// tiers — then, after every worker restarts, from disk, with zero source
// pushes for a fully unchanged module.
func TestRPCPoolIncrementalOneEdit(t *testing.T) {
	base, edited := editedPair(t)
	dir := t.TempDir()

	startWorkers := func() (addrs []string, stop func()) {
		var srvs []*WorkerServer
		for i := 0; i < 4; i++ {
			srv, err := NewWorkerServerDir("127.0.0.1:0", 0, dir)
			if err != nil {
				t.Fatal(err)
			}
			srvs = append(srvs, srv)
			addrs = append(addrs, srv.Addr())
		}
		return addrs, func() {
			for _, s := range srvs {
				s.Close()
			}
		}
	}

	addrs, stop := startWorkers()
	pool, err := DialPool(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.ParallelCompile("base.w2", base, pool, compiler.Options{}); err != nil {
		t.Fatalf("cold: %v", err)
	}
	res, warm, err := core.ParallelCompile("edit.w2", edited, pool, compiler.Options{})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	checkIncremental(t, "rpc", warm)
	if warm.Dispatch.IncrementalHits == 0 {
		t.Error("no dispatched function was answered from a worker's object tier")
	}
	verifyEdited(t, "rpc", edited, res)
	pool.Close()
	stop()

	// Restart: brand-new worker processes over the same directory, a
	// brand-new master. Every function of the edited module is already
	// persisted, so nothing recompiles and no source is ever pushed.
	addrs, stop = startWorkers()
	defer stop()
	pool2, err := DialPool(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	res2, restart, err := core.ParallelCompile("edit.w2", edited, pool2, compiler.Options{})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if d := restart.Dispatch; d.RecompiledFuncs != 0 {
		t.Errorf("restart recompiled %d functions, want 0", d.RecompiledFuncs)
	}
	if s := pool2.CacheStats(); s.SourcePushes != 0 {
		t.Errorf("restart pushed source %d times, want 0 (hash-only requests suffice)", s.SourcePushes)
	}
	verifyEdited(t, "restart", edited, res2)
}

package cluster_test

// Batched-dispatch tests: multi-function CompileBatch units over real RPC
// workers and the LocalPool, policy equivalence (FCFS ≡ one request per
// function), and batch-aware failover (a transiently failed batch splits in
// half and converges with word-identical output).

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/wgen"
)

// compileBothWith compiles src sequentially and through the backend with an
// explicit dispatch policy, failing unless the outputs are word-identical.
func compileBothWith(t *testing.T, name string, src []byte, backend core.Backend, popts core.ParallelOptions) *core.ParallelStats {
	t.Helper()
	seq, err := compiler.CompileModule(name, src, compiler.Options{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, stats, err := core.ParallelCompileWith(name, src, backend, compiler.Options{}, popts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if err := core.VerifySameOutput(seq.Module, par.Module); err != nil {
		t.Errorf("output differs from sequential: %v", err)
	}
	return stats
}

// TestBatchDispatchRPC sends a module of 32 small functions through real
// RPC workers with the production defaults: the plan must pack them into
// multi-function batches, every batch must travel as one Worker.CompileBatch
// round trip, and the output must stay word-identical.
func TestBatchDispatchRPC(t *testing.T) {
	noAmbientDiskCache(t)
	var addrs []string
	for i := 0; i < 4; i++ {
		ln, addr, err := cluster.ServeWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, addr)
	}
	pool, err := cluster.DialPoolWith(addrs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stats := compileBothWith(t, "small.w2", wgen.SmallFuncsProgram(32), pool, core.ParallelOptions{})
	d := stats.Dispatch
	if d.Batches == 0 || d.BatchedFuncs < 16 {
		t.Errorf("expected most of 32 small functions batched, got %+v", d)
	}
	if d.Units >= 32 {
		t.Errorf("batching should shrink 32 requests, got %d units", d.Units)
	}
	if stats.Faults.Any() {
		t.Errorf("healthy cluster reported faults: %s", stats.Faults)
	}
}

// TestFCFSPolicyIsPerFunction checks the fcfs policy reproduces the paper's
// measured system on the same cluster: one dispatch unit per function, no
// batches, and still word-identical output.
func TestFCFSPolicyIsPerFunction(t *testing.T) {
	noAmbientDiskCache(t)
	ln, addr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	pool, err := cluster.DialPoolWith([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stats := compileBothWith(t, "small.w2", wgen.SmallFuncsProgram(12), pool,
		core.ParallelOptions{Sched: core.SchedFCFS})
	d := stats.Dispatch
	if d.Units != 12 || d.Batches != 0 || d.BatchedFuncs != 0 {
		t.Errorf("fcfs must dispatch per function: %+v", d)
	}
}

// TestLocalPoolBatch checks the in-process pool's CompileBatch path: a
// batch occupies one worker slot and the cached result matches sequential.
func TestLocalPoolBatch(t *testing.T) {
	noAmbientDiskCache(t)
	pool := cluster.NewLocalPool(2)
	stats := compileBothWith(t, "small.w2", wgen.SmallFuncsProgram(16), pool, core.ParallelOptions{})
	if stats.Dispatch.Batches == 0 {
		t.Errorf("expected batches on the local pool, got %+v", stats.Dispatch)
	}
}

// TestBatchSplitOnChaosFailure drives the batch failover path: both workers
// drop the connection under their first batch, so every initial batch fails
// transiently, splits in half, and retries until it converges — with output
// word-identical to sequential and the split recorded in the fault stats.
func TestBatchSplitOnChaosFailure(t *testing.T) {
	noAmbientDiskCache(t)
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, addr, err := chaos.Serve("127.0.0.1:0", 0, chaos.Script(chaos.Fault{Kind: chaos.Drop}))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, addr)
	}
	opts := fastOpts()
	opts.MaxRetries = 8
	pool, err := cluster.DialPoolWith(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	stats := compileBothWith(t, "small.w2", wgen.SmallFuncsProgram(24), pool, core.ParallelOptions{})
	f := stats.Faults
	if f.BatchSplits < 1 {
		t.Errorf("expected at least one batch split, got %s", f)
	}
	if stats.Dispatch.Batches == 0 {
		t.Errorf("expected batched dispatch, got %+v", stats.Dispatch)
	}
}

// TestBatchFatalCompileErrorNotSplit checks determinism classification
// carries over to batches: a compile error inside a batch fails the whole
// compilation without any split-retry, because every worker would answer
// the same.
func TestBatchFatalCompileErrorNotSplit(t *testing.T) {
	noAmbientDiskCache(t)
	ln, addr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	pool, err := cluster.DialPoolWith([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// The error is semantic, so the master's own phase 1 would catch it;
	// issue the batch directly to exercise the dispatch layer's
	// classification.
	src := []byte("module m (out ys: float[2])\nsection 1 of 1 {\n    function f() { send(Y, 1.0); }\n    function g() { undeclared = 1; send(Y, 2.0); }\n}\n")
	_, err = pool.CompileBatch(context.Background(), core.BatchRequest{
		File:   "bad.w2",
		Source: src,
		Items:  []core.BatchItem{{Section: 1, Index: 0}, {Section: 1, Index: 1}},
	})
	if err == nil {
		t.Fatal("expected compile error from batch")
	}
	if cluster.CodeOf(err) != cluster.CodeCompile {
		t.Errorf("expected coded compile error, got %v", err)
	}
	if f := pool.FaultStats(); f.BatchSplits != 0 || f.Retries != 0 {
		t.Errorf("deterministic batch error must not be retried or split: %s", f)
	}
}

package peercache

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/fcache"
)

// Peers is the client half of the protocol: one process's view of the
// fleet, attached to its cache with fcache.AttachPeers. It tracks a Bloom
// summary per peer, selects fetch targets by digest membership, fails over
// across holders under a per-RPC deadline, and counts every transport
// failure without ever touching compile health.
//
// Life cycle: New → Connect (dials seeds, exchanges summaries, follows one
// round of gossiped addresses) → serve as the cache's PeerView → Close.
// A peer that times out, drops, or serves a corrupt reply is marked dead
// for this client; the fleet-level answer is simply fewer holders.
type Peers struct {
	self       string // our own fetchable address ("" = not listening)
	timeout    time.Duration
	refreshAge time.Duration // summary max age (negative = never by age)

	mu    sync.Mutex
	peers map[string]*peerState
}

type peerState struct {
	addr      string
	client    *rpc.Client
	bloom     *Bloom
	gen       int64     // generation the summary was taken at
	summaryAt time.Time // when the summary was last exchanged
	stale     bool      // a fetch reply carried a different gen
	dead      bool      // transport failed; no longer consulted
}

// DefaultRefresh is how old a peer's summary may grow before the client
// re-exchanges it even without gen-mismatch evidence. The gen piggybacked
// on fetch replies catches staleness on peers we fetch from; this interval
// catches the peer we never fetch from because its summary was taken while
// it was still empty — without it, a fleet whose boot order put an empty
// peer first would never discover that peer warmed up.
const DefaultRefresh = 10 * time.Second

// ClientOptions configures New.
type ClientOptions struct {
	// Self is the address remote peers can fetch from this process at;
	// sent on every call so servers' gossip views learn it ("" = none).
	Self string
	// Timeout bounds each peer RPC (0 = DefaultTimeout).
	Timeout time.Duration
	// Refresh is the age at which a peer's summary is re-exchanged without
	// gen-mismatch evidence (0 = DefaultRefresh; negative disables).
	Refresh time.Duration
}

// New returns an empty fleet view. Call Connect to populate it.
func New(opts ClientOptions) *Peers {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Refresh == 0 {
		opts.Refresh = DefaultRefresh
	}
	return &Peers{self: opts.Self, timeout: opts.Timeout, refreshAge: opts.Refresh, peers: make(map[string]*peerState)}
}

// Connect dials the given peer addresses, exchanges summaries, and then
// dials any new addresses gossiped back (one round, so meshes converge
// deterministically). Unreachable seeds are skipped — the fleet view is
// best-effort by design. Returns how many peers are connected and alive.
func (p *Peers) Connect(addrs ...string) int {
	gossiped := make(map[string]bool)
	for _, a := range addrs {
		if more := p.connectOne(a); more != nil {
			for _, g := range more {
				gossiped[g] = true
			}
		}
	}
	for a := range gossiped {
		p.connectOne(a)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ps := range p.peers {
		if !ps.dead {
			n++
		}
	}
	return n
}

// connectOne dials addr (unless self or already connected) and performs
// the summary exchange. It returns the addresses gossiped back, nil on
// failure or no-op.
func (p *Peers) connectOne(addr string) []string {
	if addr == "" || addr == p.self {
		return nil
	}
	p.mu.Lock()
	if ps, ok := p.peers[addr]; ok && !ps.dead {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, p.timeout)
	if err != nil {
		return nil
	}
	client := rpc.NewClient(conn)
	ps := &peerState{addr: addr, client: client}
	var reply SummaryReply
	if err := p.call(ps, ServiceName+".Summary", SummaryArgs{From: p.self}, &reply); err != nil {
		client.Close()
		return nil
	}
	ps.bloom = FromWire(reply.Bloom)
	ps.gen = reply.Gen
	ps.summaryAt = time.Now()
	p.mu.Lock()
	p.peers[addr] = ps
	p.mu.Unlock()
	return reply.Peers
}

// errPeerTimeout marks an RPC that outlived its deadline.
var errPeerTimeout = errors.New("peercache: peer call timed out")

// call performs one RPC against ps under the per-call deadline. On
// timeout the underlying client is closed — terminating the pending call's
// goroutine — and the peer is dead to this client.
func (p *Peers) call(ps *peerState, method string, args, reply any) error {
	done := make(chan *rpc.Call, 1)
	ps.client.Go(method, args, reply, done)
	t := time.NewTimer(p.timeout)
	defer t.Stop()
	select {
	case c := <-done:
		return c.Error
	case <-t.C:
		ps.client.Close()
		return errPeerTimeout
	}
}

// markDead retires a peer after a transport failure.
func (p *Peers) markDead(ps *peerState) {
	p.mu.Lock()
	ps.dead = true
	p.mu.Unlock()
	ps.client.Close()
}

// refresh re-runs the summary exchange for a stale peer.
func (p *Peers) refresh(ps *peerState) {
	var reply SummaryReply
	if err := p.call(ps, ServiceName+".Summary", SummaryArgs{From: p.self}, &reply); err != nil {
		p.markDead(ps)
		return
	}
	p.mu.Lock()
	ps.bloom = FromWire(reply.Bloom)
	ps.gen = reply.Gen
	ps.summaryAt = time.Now()
	ps.stale = false
	p.mu.Unlock()
}

// holders returns the live peers whose summaries claim the digest, in
// deterministic (address) order, refreshing summaries that are stale (gen
// evidence) or simply old (age) first.
func (p *Peers) holders(d [32]byte) []*peerState {
	now := time.Now()
	p.mu.Lock()
	var toRefresh []*peerState
	for _, ps := range p.peers {
		if ps.dead {
			continue
		}
		if ps.stale || (p.refreshAge > 0 && now.Sub(ps.summaryAt) > p.refreshAge) {
			toRefresh = append(toRefresh, ps)
		}
	}
	p.mu.Unlock()
	for _, ps := range toRefresh {
		p.refresh(ps)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*peerState
	for _, ps := range p.peers {
		if !ps.dead && ps.bloom.Has(d) {
			out = append(out, ps)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// Fetch implements fcache.PeerView: it asks each claimed holder in turn
// for the entry under key, verifying the reply's checksummed record frame
// and key binding before trusting a byte. errs counts holders that failed
// at the transport level (timeout, drop, RPC error, corrupt reply); a
// clean "not found" is not an error, just a thinner fleet.
func (p *Peers) Fetch(key string) (e *fcache.ObjectEntry, ok bool, errs int) {
	d := fcache.KeyDigest(key)
	for _, ps := range p.holders(d) {
		var reply FetchReply
		if err := p.call(ps, ServiceName+".Fetch", FetchArgs{Key: key, From: p.self}, &reply); err != nil {
			p.markDead(ps)
			errs++
			continue
		}
		p.mu.Lock()
		if reply.Gen != ps.gen {
			ps.stale = true // summary predates the peer's latest arrivals
			ps.gen = reply.Gen
		}
		p.mu.Unlock()
		if !reply.Found {
			continue
		}
		gotKey, payload, err := fcache.DecodeRecord(reply.Record)
		if err != nil || gotKey != key {
			// Corrupt or misaddressed reply: the bytes are untrustworthy,
			// and so is the peer — but only as a transport. Its compile
			// health (cluster quarantine) is none of our business.
			p.markDead(ps)
			errs++
			continue
		}
		var entry fcache.ObjectEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&entry); err != nil {
			p.markDead(ps)
			errs++
			continue
		}
		return &entry, true, errs
	}
	return nil, false, errs
}

// Replicas implements fcache.PeerView: how many live peers' summaries
// claim the digest. Bloom false positives can over-count; that only makes
// eviction slightly more willing, never less safe than the hard cap.
// Called from inside the disk tier's eviction pass, so it must (and does)
// answer from client state alone.
func (p *Peers) Replicas(d [32]byte) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ps := range p.peers {
		if !ps.dead && ps.bloom.Has(d) {
			n++
		}
	}
	return n
}

// Alive returns the addresses of live peers, sorted.
func (p *Peers) Alive() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, ps := range p.peers {
		if !ps.dead {
			out = append(out, ps.addr)
		}
	}
	sort.Strings(out)
	return out
}

// Close severs every peer connection.
func (p *Peers) Close() {
	p.mu.Lock()
	peers := make([]*peerState, 0, len(p.peers))
	for _, ps := range p.peers {
		peers = append(peers, ps)
	}
	p.peers = make(map[string]*peerState)
	p.mu.Unlock()
	for _, ps := range peers {
		ps.client.Close()
	}
}

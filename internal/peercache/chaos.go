package peercache

import (
	"sync"
	"time"
)

// FaultKind enumerates the injectable peer-protocol faults. The peer tier
// is an optimization layered over an always-correct fallback (the local
// compile), so every fault here must degrade to "the client treats this
// peer as useless and moves on" — the chaos suite verifies output stays
// word-identical to sequential under each of them.
type FaultKind int

const (
	// FaultPass serves the fetch normally.
	FaultPass FaultKind = iota
	// FaultHang blocks the fetch for D (default: until the service closes),
	// driving the client's per-RPC deadline.
	FaultHang
	// FaultCorrupt serves the real record with bytes flipped, driving the
	// client's checksum rejection.
	FaultCorrupt
	// FaultMiss answers "not found" regardless of holdings — a summary
	// false positive or an entry evicted since the summary was taken.
	FaultMiss
	// FaultError answers an RPC error without serving.
	FaultError
	// FaultDrop severs the connection under the call — a peer crash. Only
	// the standalone Server can inject it (it owns the conn); a Service
	// registered on a shared RPC server degrades it to FaultError.
	FaultDrop
)

// Fault is one scripted fault.
type Fault struct {
	Kind FaultKind
	D    time.Duration // FaultHang duration (0 = until close)
}

// Plan scripts the faults applied to successive Fetch calls in global
// arrival order; once the script is exhausted every call passes. Safe for
// concurrent use. A nil *Plan passes everything.
type Plan struct {
	mu     sync.Mutex
	script []Fault
	next   int
	calls  int
}

// Script returns a plan applying faults to the first len(faults) fetches in
// order, then passing everything through.
func Script(faults ...Fault) *Plan { return &Plan{script: faults} }

// Calls reports how many fetches the plan has decided.
func (p *Plan) Calls() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// take returns the fault for the next fetch.
func (p *Plan) take() Fault {
	if p == nil {
		return Fault{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.next < len(p.script) {
		f := p.script[p.next]
		p.next++
		return f
	}
	return Fault{}
}

package peercache

import (
	"crypto/sha256"
	"encoding/binary"
)

// Bloom is the per-peer summary of "which key digests might I hold". A peer
// builds one over its cache's ObjectDigests and ships it on connect; the
// receiving side tests candidate digests against it to pick fetch targets
// without ever exchanging key lists. False positives are harmless (a fetch
// that answers "not found" falls through to the next holder or a local
// compile); false negatives cannot happen for digests that were present
// when the summary was built — staleness is handled separately via the
// generation stamp piggybacked on every fetch reply.
//
// The digests are SHA-256 outputs (fcache.KeyDigest), already uniformly
// distributed, so the filter needs no hashing of its own: the k bit indexes
// are read straight out of the digest, 4 bytes each. The bit count is a
// power of two (masking instead of mod) sized at ~12 bits per expected
// element, which with k=4 keeps the false-positive rate around 0.3%.
type Bloom struct {
	bits []uint64
	mask uint32 // len(bits)*64 - 1
}

// bloomK is how many bits each digest sets/tests. At 4, a digest consumes
// digest[0:16] — well within SHA-256's 32 bytes.
const bloomK = 4

// NewBloom returns a filter sized for about n elements (n < 1 is treated
// as 1).
func NewBloom(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	bits := 64
	for bits < 12*n {
		bits <<= 1
	}
	return &Bloom{bits: make([]uint64, bits/64), mask: uint32(bits - 1)}
}

// Add records a digest.
func (b *Bloom) Add(d [sha256.Size]byte) {
	for i := 0; i < bloomK; i++ {
		idx := binary.BigEndian.Uint32(d[4*i:]) & b.mask
		b.bits[idx/64] |= 1 << (idx % 64)
	}
}

// Has reports whether a digest might have been added (false positives
// possible, false negatives not).
func (b *Bloom) Has(d [sha256.Size]byte) bool {
	if b == nil || len(b.bits) == 0 {
		return false
	}
	for i := 0; i < bloomK; i++ {
		idx := binary.BigEndian.Uint32(d[4*i:]) & b.mask
		if b.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// BloomWire is the gob-encodable form of a Bloom, exchanged in Summary
// replies.
type BloomWire struct {
	Bits []uint64
}

// Wire returns the filter in wire form. The returned slice aliases the
// filter; summaries are built fresh per reply, so nothing mutates it after.
func (b *Bloom) Wire() BloomWire { return BloomWire{Bits: b.bits} }

// FromWire reconstructs a filter from its wire form. A malformed wire
// (zero or non-power-of-two word count) yields an empty filter that
// answers Has=false for everything.
func FromWire(w BloomWire) *Bloom {
	n := len(w.Bits)
	if n == 0 || n&(n-1) != 0 {
		return &Bloom{}
	}
	return &Bloom{bits: w.Bits, mask: uint32(n*64 - 1)}
}

package peercache

import (
	"crypto/sha256"
	"testing"
	"time"

	"repro/internal/fcache"
)

func TestBloom(t *testing.T) {
	b := NewBloom(100)
	var in [][sha256.Size]byte
	for i := 0; i < 100; i++ {
		in = append(in, sha256.Sum256([]byte{byte(i), byte(i >> 8), 1}))
	}
	for _, d := range in {
		b.Add(d)
	}
	for i, d := range in {
		if !b.Has(d) {
			t.Fatalf("false negative at %d", i)
		}
	}
	// False-positive rate on 10k absent digests should be far under 5%.
	fp := 0
	for i := 0; i < 10000; i++ {
		d := sha256.Sum256([]byte{byte(i), byte(i >> 8), 2})
		if b.Has(d) {
			fp++
		}
	}
	if fp > 500 {
		t.Fatalf("false-positive rate too high: %d/10000", fp)
	}
	// Wire round trip preserves membership.
	rb := FromWire(b.Wire())
	for i, d := range in {
		if !rb.Has(d) {
			t.Fatalf("wire round trip lost %d", i)
		}
	}
	// Malformed wire yields an always-false filter.
	if FromWire(BloomWire{Bits: make([]uint64, 3)}).Has(in[0]) {
		t.Fatal("malformed wire filter claims membership")
	}
	if (*Bloom)(nil).Has(in[0]) {
		t.Fatal("nil bloom claims membership")
	}
}

// seedCache returns a cache holding n object entries and the keys' hashes.
func seedCache(t *testing.T, n int) (*fcache.Cache, []fcache.FuncHash) {
	t.Helper()
	c := fcache.New(0)
	var fhs []fcache.FuncHash
	for i := 0; i < n; i++ {
		fh := fcache.FuncHash(sha256.Sum256([]byte{byte(i), byte(i >> 8)}))
		fhs = append(fhs, fh)
		_, err := c.Object(fh, "default", func() (*fcache.ObjectEntry, error) {
			return &fcache.ObjectEntry{
				Name:        "f" + string(rune('a'+i%26)),
				Section:     1,
				Lines:       i + 1,
				ObjectBytes: []byte{0xDE, 0xAD, byte(i)},
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return c, fhs
}

func startPeer(t *testing.T, c *fcache.Cache, plan *Plan) (*Server, string) {
	t.Helper()
	srv, addr, err := Serve("127.0.0.1:0", NewService(c, "", plan))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestFetchRoundTrip(t *testing.T) {
	warm, fhs := seedCache(t, 5)
	_, addr := startPeer(t, warm, nil)

	p := New(ClientOptions{Timeout: time.Second})
	defer p.Close()
	if n := p.Connect(addr); n != 1 {
		t.Fatalf("Connect = %d, want 1", n)
	}

	cold := fcache.New(0)
	cold.AttachPeers(p)
	for i, fh := range fhs {
		built := false
		e, err := cold.Object(fh, "default", func() (*fcache.ObjectEntry, error) {
			built = true
			return &fcache.ObjectEntry{Name: "rebuilt"}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if built {
			t.Fatalf("entry %d recompiled despite warm peer", i)
		}
		if e.Lines != i+1 {
			t.Fatalf("entry %d: Lines = %d, want %d", i, e.Lines, i+1)
		}
	}
	cs := cold.Stats()
	if cs.PeerHits != 5 || cs.PeerErrors != 0 {
		t.Fatalf("stats = %+v, want 5 peer hits, 0 errors", cs)
	}
	ws := warm.Stats()
	if ws.PeerServed != 5 {
		t.Fatalf("warm PeerServed = %d, want 5", ws.PeerServed)
	}
}

func TestFetchFailover(t *testing.T) {
	// Two warm holders; the first fetch — whichever peer the client's
	// address-ordered holder selection tries first (ports are assigned by
	// the OS, so either may sort first) — hangs. The client must time out,
	// mark that holder dead, and get the entry from the other. Sharing one
	// plan between both servers scripts "first fetch hangs" by global
	// arrival order, independent of which address won the sort.
	warmA, fhs := seedCache(t, 1)
	warmB, _ := seedCache(t, 1)

	planHang := Script(Fault{Kind: FaultHang}) // first fetch hangs
	_, addrA := startPeer(t, warmA, planHang)
	_, addrB := startPeer(t, warmB, planHang)

	p := New(ClientOptions{Timeout: 200 * time.Millisecond})
	defer p.Close()
	p.Connect(addrA, addrB)

	e, ok, errs := p.Fetch("obj:" + fhs[0].String() + ":default")
	if !ok || e == nil {
		t.Fatalf("Fetch failed entirely (ok=%v errs=%d)", ok, errs)
	}
	if errs != 1 {
		t.Fatalf("errs = %d, want 1 (the hung holder)", errs)
	}
	if len(p.Alive()) != 1 {
		t.Fatalf("alive = %v, want exactly one survivor", p.Alive())
	}
}

func TestCorruptReplyCountsAsError(t *testing.T) {
	warm, fhs := seedCache(t, 1)
	_, addr := startPeer(t, warm, Script(Fault{Kind: FaultCorrupt}))

	p := New(ClientOptions{Timeout: time.Second})
	defer p.Close()
	p.Connect(addr)

	cold := fcache.New(0)
	cold.AttachPeers(p)
	built := false
	if _, err := cold.Object(fhs[0], "default", func() (*fcache.ObjectEntry, error) {
		built = true
		return &fcache.ObjectEntry{Name: "rebuilt"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !built {
		t.Fatal("corrupt reply was accepted instead of recompiling")
	}
	cs := cold.Stats()
	if cs.PeerErrors != 1 || cs.PeerHits != 0 {
		t.Fatalf("stats = %+v, want exactly one PeerError", cs)
	}
}

func TestGossipOneRound(t *testing.T) {
	// C knows only B; B already knows A (seeded). C must learn A from B's
	// summary reply and fetch entries only A holds.
	warmA, fhs := seedCache(t, 1)
	emptyB := fcache.New(0)

	_, addrA := startPeer(t, warmA, nil)
	svcB := NewService(emptyB, "", nil)
	svcB.AddPeers([]string{addrA})
	srvB, addrB, err := Serve("127.0.0.1:0", svcB)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	p := New(ClientOptions{Timeout: time.Second})
	defer p.Close()
	if n := p.Connect(addrB); n != 2 {
		t.Fatalf("Connect = %d peers, want 2 (B plus gossiped A)", n)
	}
	if _, ok, _ := p.Fetch("obj:" + fhs[0].String() + ":default"); !ok {
		t.Fatal("fetch from gossiped peer failed")
	}
}

func TestStaleSummaryRefresh(t *testing.T) {
	// A summary taken when the peer was empty must not hide entries the
	// peer acquired later: the gen stamp on a fetch reply flags staleness
	// and the next lookup re-exchanges summaries.
	warm := fcache.New(0)
	fhEarly := fcache.FuncHash(sha256.Sum256([]byte("early")))
	if _, err := warm.Object(fhEarly, "default", func() (*fcache.ObjectEntry, error) {
		return &fcache.ObjectEntry{Name: "early"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	_, addr := startPeer(t, warm, nil)

	p := New(ClientOptions{Timeout: time.Second})
	defer p.Close()
	p.Connect(addr)

	// Peer gains an entry after the summary exchange.
	fhLate := fcache.FuncHash(sha256.Sum256([]byte("late")))
	if _, err := warm.Object(fhLate, "default", func() (*fcache.ObjectEntry, error) {
		return &fcache.ObjectEntry{Name: "late"}, nil
	}); err != nil {
		t.Fatal(err)
	}

	// First fetch (of the early key) observes the gen change and marks the
	// summary stale; the late key's lookup then refreshes and succeeds.
	if _, ok, _ := p.Fetch("obj:" + fhEarly.String() + ":default"); !ok {
		t.Fatal("early key fetch failed")
	}
	if _, ok, _ := p.Fetch("obj:" + fhLate.String() + ":default"); !ok {
		t.Fatal("late key fetch failed after refresh")
	}
}

func TestEmptyAtConnectRefreshByAge(t *testing.T) {
	// A peer that was empty when its summary was exchanged is never fetched
	// from, so the gen piggyback can't flag the summary stale. The age-based
	// refresh must rediscover it once it warms.
	warm := fcache.New(0)
	_, addr := startPeer(t, warm, nil)

	p := New(ClientOptions{Timeout: time.Second, Refresh: 10 * time.Millisecond})
	defer p.Close()
	p.Connect(addr) // summary taken while the peer holds nothing

	fh := fcache.FuncHash(sha256.Sum256([]byte("late-warm")))
	if _, err := warm.Object(fh, "default", func() (*fcache.ObjectEntry, error) {
		return &fcache.ObjectEntry{Name: "late"}, nil
	}); err != nil {
		t.Fatal(err)
	}

	time.Sleep(20 * time.Millisecond) // let the summary age past Refresh
	if _, ok, _ := p.Fetch("obj:" + fh.String() + ":default"); !ok {
		t.Fatal("fetch failed: empty-at-connect peer never re-summarized")
	}
}

func TestAllPeersDeadFallsThrough(t *testing.T) {
	warm, fhs := seedCache(t, 1)
	srv, addr := startPeer(t, warm, nil)

	p := New(ClientOptions{Timeout: 200 * time.Millisecond})
	defer p.Close()
	p.Connect(addr)
	srv.Close() // peer dies after the summary exchange

	cold := fcache.New(0)
	cold.AttachPeers(p)
	built := false
	e, err := cold.Object(fhs[0], "default", func() (*fcache.ObjectEntry, error) {
		built = true
		return &fcache.ObjectEntry{Name: "rebuilt"}, nil
	})
	if err != nil || e.Name != "rebuilt" {
		t.Fatalf("e=%v err=%v", e, err)
	}
	if !built {
		t.Fatal("expected local compile when every peer is dead")
	}
}

func TestPrefetchObjects(t *testing.T) {
	warm, fhs := seedCache(t, 8)
	_, addr := startPeer(t, warm, nil)

	p := New(ClientOptions{Timeout: time.Second})
	defer p.Close()
	p.Connect(addr)

	cold := fcache.New(0)
	cold.AttachPeers(p)
	if n := cold.PrefetchObjects(fhs, "default"); n != 8 {
		t.Fatalf("PrefetchObjects = %d, want 8", n)
	}
	// Everything is now local: peeks hit without any further peer traffic.
	for i, fh := range fhs {
		if _, ok := cold.PeekObject(fh, "default"); !ok {
			t.Fatalf("prefetched entry %d not resident", i)
		}
	}
	cs := cold.Stats()
	if cs.PeerPrefetched != 8 {
		t.Fatalf("PeerPrefetched = %d, want 8", cs.PeerPrefetched)
	}
	// Second prefetch is a no-op (all local).
	if n := cold.PrefetchObjects(fhs, "default"); n != 0 {
		t.Fatalf("second PrefetchObjects = %d, want 0", n)
	}
}

func TestReplicasView(t *testing.T) {
	warmA, fhs := seedCache(t, 1)
	warmB, _ := seedCache(t, 1) // same seeding → same keys
	_, addrA := startPeer(t, warmA, nil)
	_, addrB := startPeer(t, warmB, nil)

	p := New(ClientOptions{Timeout: time.Second})
	defer p.Close()
	p.Connect(addrA, addrB)

	key := "obj:" + fhs[0].String() + ":default"
	if n := p.Replicas(fcache.KeyDigest(key)); n != 2 {
		t.Fatalf("Replicas = %d, want 2", n)
	}
	if n := p.Replicas(fcache.KeyDigest("obj:absent:default")); n != 0 {
		t.Fatalf("Replicas(absent) = %d, want 0", n)
	}
}

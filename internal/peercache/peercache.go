// Package peercache is the distributed artifact store: a content-addressed
// peer-to-peer protocol that turns the fleet's caches into one fill tier
// between each process's disk and recompilation. The paper's workers share
// only the file system; PR 4's disk tier made one directory shareable, and
// this package networks it — a cold worker restart becomes "sync 32-byte
// keys and fetch finished objects" instead of "recompile the world".
//
// The protocol is two RPCs on the service name "Peer":
//
//	Summary(From) -> (Bloom, Gen, Peers)   "who are you and what do you hold?"
//	Fetch(Key, From) -> (Found, Record, Gen)  "give me the entry for this key"
//
// Summary replies carry a Bloom filter over the peer's object-key digests
// (fcache.KeyDigest — the same SHA-256 the disk tier derives filenames
// from, so a warm directory is advertisable without reading a record), a
// generation stamp, and the addresses of every peer the server knows —
// one round of gossip, so fleets mesh without central configuration.
// Fetch replies frame the object in the same checksummed record encoding
// the disk tier persists (fcache.EncodeRecord): a reply is verified with
// exactly the code that verifies a disk read, and a corrupt reply degrades
// to a miss on the next holder, never into a poisoned compilation.
//
// Every fetch reply piggybacks the server's current generation; a client
// holding a summary taken at a different generation marks it stale and
// re-exchanges summaries before its next holder selection.
//
// Peer trouble is transport trouble: timeouts, drops, and corrupt replies
// count in fcache.Stats.PeerErrors and mark the peer dead for this
// client, but never touch the dispatch layer's compile-health quarantine —
// a machine that serves bad bytes may still compile perfectly, and vice
// versa.
package peercache

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/fcache"
)

// ServiceName is the RPC service name peers register under — alongside
// "Worker" on a worker's listener, or alone on a daemon's peer listener.
const ServiceName = "Peer"

// DefaultTimeout bounds each peer RPC (dial, summary, fetch). Peers are an
// optimization: better to recompile than to wait long for a sick sibling.
const DefaultTimeout = 2 * time.Second

// SummaryArgs identifies the caller so the server's gossip view learns it.
type SummaryArgs struct {
	From string // caller's own peer address ("" = not listening)
}

// SummaryReply is the server's advertisement.
type SummaryReply struct {
	Bloom BloomWire // filter over the server's object-key digests
	Gen   int64     // object generation the filter was built at
	Peers []string  // other peer addresses the server knows (gossip)
}

// FetchArgs asks for the entry stored under one full cache key.
type FetchArgs struct {
	Key  string
	From string
}

// FetchReply carries the checksummed record for the key, if held.
type FetchReply struct {
	Found  bool
	Record []byte // fcache.EncodeRecord(Key, gob(ObjectEntry))
	Gen    int64  // server's generation now (staleness stamp)
}

// Service answers the peer protocol over one local cache. Register it on
// an rpc.Server under ServiceName, or pass it to Serve for a standalone
// listener. Fetches are answered from local tiers only (memory, then
// disk) — never from the service's own peers and never by compiling — so
// two caches fetching from each other cannot recurse.
type Service struct {
	cache *fcache.Cache
	self  string // address peers can fetch from me at ("" = none)
	plan  *Plan  // nil = no chaos

	mu    sync.Mutex
	known map[string]bool // gossip view: peer addresses heard of
	done  chan struct{}
	close sync.Once
}

// NewService returns a peer server over cache. self is the address remote
// peers can reach this process at (gossiped to callers; "" to not
// advertise). plan injects scripted faults (nil for none).
func NewService(cache *fcache.Cache, self string, plan *Plan) *Service {
	return &Service{
		cache: cache,
		self:  self,
		plan:  plan,
		known: make(map[string]bool),
		done:  make(chan struct{}),
	}
}

// Close releases calls blocked on open-ended hang faults. Idempotent.
func (s *Service) Close() { s.close.Do(func() { close(s.done) }) }

// noteAddr records a peer address learned from an incoming call.
func (s *Service) noteAddr(addr string) {
	if addr == "" || addr == s.self {
		return
	}
	s.mu.Lock()
	s.known[addr] = true
	s.mu.Unlock()
}

// AddPeers seeds the gossip view (the -peers flag's addresses).
func (s *Service) AddPeers(addrs []string) {
	for _, a := range addrs {
		s.noteAddr(a)
	}
}

// KnownPeers lists the gossip view, sorted for determinism.
func (s *Service) KnownPeers() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.known))
	for a := range s.known {
		out = append(out, a)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Summary answers "who are you and what do you hold": a Bloom filter over
// this cache's object-key digests, the generation it was built at, and the
// gossip view.
func (s *Service) Summary(args SummaryArgs, reply *SummaryReply) error {
	s.noteAddr(args.From)
	digests := s.cache.ObjectDigests()
	b := NewBloom(len(digests))
	for _, d := range digests {
		b.Add(d)
	}
	reply.Bloom = b.Wire()
	reply.Gen = s.cache.ObjectGen()
	reply.Peers = s.KnownPeers()
	return nil
}

// Fetch serves the entry for one key from local tiers, framed and
// checksummed. Registered directly (shared RPC server) it degrades a
// scripted FaultDrop to FaultError; the standalone Server intercepts Drop
// before calling in.
func (s *Service) Fetch(args FetchArgs, reply *FetchReply) error {
	return s.fetchFault(s.plan.take(), args, reply)
}

func (s *Service) fetchFault(f Fault, args FetchArgs, reply *FetchReply) error {
	s.noteAddr(args.From)
	switch f.Kind {
	case FaultHang:
		d := f.D
		if d <= 0 {
			d = time.Hour
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-s.done:
		}
		return errors.New("peercache: chaos hang released")
	case FaultError, FaultDrop:
		return errors.New("peercache: chaos injected error")
	case FaultMiss:
		reply.Found = false
		reply.Gen = s.cache.ObjectGen()
		return nil
	}
	e, ok := s.cache.LocalObject(args.Key)
	reply.Gen = s.cache.ObjectGen()
	if !ok {
		reply.Found = false
		return nil
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return err
	}
	rec, err := fcache.EncodeRecord(args.Key, payload.Bytes())
	if err != nil {
		return err
	}
	if f.Kind == FaultCorrupt && len(rec) > 0 {
		rec = bytes.Clone(rec)
		rec[len(rec)/2] ^= 0xFF
	}
	reply.Found = true
	reply.Record = rec
	return nil
}

// Server is a standalone peer listener (the compile daemon's -peer-listen;
// workers instead register their Service on the worker RPC listener). Each
// connection gets its own rpc.Server so a scripted FaultDrop can sever its
// transport.
type Server struct {
	ln   net.Listener
	addr string
	svc  *Service

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts svc on addr (e.g. "127.0.0.1:0"). If svc was built without
// a self address, the bound address becomes it.
func Serve(addr string, svc *Service) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	if svc.self == "" {
		svc.self = ln.Addr().String()
	}
	s := &Server{ln: ln, addr: ln.Addr().String(), svc: svc, conns: make(map[net.Conn]struct{})}
	go s.acceptLoop()
	return s, s.addr, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.addr }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		srv := rpc.NewServer()
		srv.RegisterName(ServiceName, &connPeer{svc: s.svc, conn: conn})
		go func() {
			srv.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server, severs every connection, and releases any calls
// blocked on hang faults.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.svc.Close()
	return err
}

// connPeer is the per-connection RPC surface of a standalone Server: the
// shared Service plus the one fault only a connection owner can inject.
type connPeer struct {
	svc  *Service
	conn net.Conn
}

func (p *connPeer) Summary(args SummaryArgs, reply *SummaryReply) error {
	return p.svc.Summary(args, reply)
}

func (p *connPeer) Fetch(args FetchArgs, reply *FetchReply) error {
	f := p.svc.plan.take()
	if f.Kind == FaultDrop {
		p.conn.Close()
		return errors.New("peercache: chaos connection dropped")
	}
	return p.svc.fetchFault(f, args, reply)
}

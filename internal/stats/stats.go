// Package stats computes the paper's derived metrics — speedup and the
// overhead decomposition of §4.2.3 — and renders result tables in the form
// the benchmark harness prints.
package stats

import (
	"fmt"
	"strings"
)

// Overheads is the §4.2.3 decomposition for one parallel run.
//
// The ideal parallel time of an n-function compilation on enough processors
// is the sequential elapsed time divided by min(n, P). Everything beyond it
// is overhead; the implementation overhead (master setup + scheduling +
// section masters) is measured directly, and the system overhead is the
// remainder. The system overhead can be negative: when the sequential
// compiler pages against one workstation's memory while each parallel piece
// fits, the sequential baseline is inflated and the parallel system does
// strictly better than "ideal".
type Overheads struct {
	TotalSec  float64 // parallel elapsed − ideal
	ImplSec   float64 // master + section masters (measured)
	SystemSec float64 // Total − Impl
	IdealSec  float64
}

// ComputeOverheads derives the decomposition from measured times.
func ComputeOverheads(seqElapsed, parElapsed, implSec float64, nfuncs, workers int) Overheads {
	par := nfuncs
	if workers < par {
		par = workers
	}
	if par < 1 {
		par = 1
	}
	ideal := seqElapsed / float64(par)
	total := parElapsed - ideal
	return Overheads{
		TotalSec:  total,
		ImplSec:   implSec,
		SystemSec: total - implSec,
		IdealSec:  ideal,
	}
}

// RelTotal returns the total overhead as a percentage of parallel elapsed
// time (the y-axis of Figures 8–10).
func (o Overheads) RelTotal(parElapsed float64) float64 {
	if parElapsed == 0 {
		return 0
	}
	return 100 * o.TotalSec / parElapsed
}

// RelSystem returns the system overhead as a percentage of parallel elapsed
// time.
func (o Overheads) RelSystem(parElapsed float64) float64 {
	if parElapsed == 0 {
		return 0
	}
	return 100 * o.SystemSec / parElapsed
}

// Speedup is sequential elapsed over parallel elapsed.
func Speedup(seqElapsed, parElapsed float64) float64 {
	if parElapsed == 0 {
		return 0
	}
	return seqElapsed / parElapsed
}

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// Table renders series against a shared x column, in the row/series layout
// the benchmark harness prints for every reproduced figure.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddPoint appends a sample to the named series, creating it if needed.
func (t *Table) AddPoint(series string, x, y float64) {
	for i := range t.Series {
		if t.Series[i].Name == series {
			t.Series[i].Points = append(t.Series[i].Points, Point{x, y})
			return
		}
	}
	t.Series = append(t.Series, Series{Name: series, Points: []Point{{x, y}}})
}

// Get returns the y value of the named series at x (NaN-free: ok=false when
// absent).
func (t *Table) Get(series string, x float64) (float64, bool) {
	for _, s := range t.Series {
		if s.Name != series {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y, true
			}
		}
	}
	return 0, false
}

// String renders the table with x rows and one column per series.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(&sb, "   (y: %s)\n", t.YLabel)
	}

	// Collect the x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}

	fmt.Fprintf(&sb, "%-14s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&sb, " %16s", s.Name)
	}
	sb.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&sb, "%-14g", x)
		for _, s := range t.Series {
			if y, ok := t.Get(s.Name, x); ok {
				fmt.Fprintf(&sb, " %16.2f", y)
			} else {
				fmt.Fprintf(&sb, " %16s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestComputeOverheads(t *testing.T) {
	// seq=800s, 4 functions on plenty of workers: ideal=200. par=260 with
	// 40s implementation overhead: total=60, system=20.
	o := ComputeOverheads(800, 260, 40, 4, 15)
	if o.IdealSec != 200 || o.TotalSec != 60 || o.ImplSec != 40 || o.SystemSec != 20 {
		t.Errorf("overheads wrong: %+v", o)
	}
	if got := o.RelTotal(260); got < 23.0 || got > 23.2 {
		t.Errorf("RelTotal = %g, want ~23.1", got)
	}
	if got := o.RelSystem(260); got < 7.6 || got > 7.8 {
		t.Errorf("RelSystem = %g, want ~7.7", got)
	}
}

func TestComputeOverheadsWorkerLimited(t *testing.T) {
	// 8 functions but only 2 workers: ideal = seq/2.
	o := ComputeOverheads(800, 500, 10, 8, 2)
	if o.IdealSec != 400 {
		t.Errorf("ideal = %g, want 400", o.IdealSec)
	}
}

func TestNegativeSystemOverheadPossible(t *testing.T) {
	// Parallel beats the ideal (sequential baseline was paging): system
	// overhead must come out negative.
	o := ComputeOverheads(1000, 230, 20, 4, 15)
	if o.SystemSec >= 0 {
		t.Errorf("system overhead should be negative, got %g", o.SystemSec)
	}
}

func TestSpeedupEdgeCases(t *testing.T) {
	if Speedup(100, 50) != 2 {
		t.Error("basic speedup wrong")
	}
	if Speedup(100, 0) != 0 {
		t.Error("zero parallel time must not divide")
	}
	var o Overheads
	if o.RelTotal(0) != 0 || o.RelSystem(0) != 0 {
		t.Error("zero elapsed must not divide")
	}
}

func TestTableAddGet(t *testing.T) {
	tbl := &Table{Title: "T", XLabel: "x"}
	tbl.AddPoint("a", 1, 10)
	tbl.AddPoint("a", 2, 20)
	tbl.AddPoint("b", 1, 30)
	if v, ok := tbl.Get("a", 2); !ok || v != 20 {
		t.Errorf("Get(a,2) = %v %v", v, ok)
	}
	if _, ok := tbl.Get("a", 3); ok {
		t.Error("missing point should report !ok")
	}
	if _, ok := tbl.Get("zzz", 1); ok {
		t.Error("missing series should report !ok")
	}
	if len(tbl.Series) != 2 {
		t.Errorf("series = %d, want 2", len(tbl.Series))
	}
}

func TestTableString(t *testing.T) {
	tbl := &Table{Title: "Demo", XLabel: "n", YLabel: "sec"}
	tbl.AddPoint("seq", 1, 10.5)
	tbl.AddPoint("seq", 2, 20)
	tbl.AddPoint("par", 1, 5)
	out := tbl.String()
	for _, want := range []string{"== Demo ==", "(y: sec)", "seq", "par", "10.50", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table rendering missing %q:\n%s", want, out)
		}
	}
	// Row order follows first-seen x order.
	if strings.Index(out, "\n1 ") > strings.Index(out, "\n2 ") {
		t.Errorf("x rows out of order:\n%s", out)
	}
}

func TestOverheadDecompositionInvariant(t *testing.T) {
	f := func(seq, par, impl float64, n, w uint8) bool {
		if seq < 0 {
			seq = -seq
		}
		if par < 0 {
			par = -par
		}
		if impl < 0 {
			impl = -impl
		}
		o := ComputeOverheads(seq, par, impl, int(n%16)+1, int(w%16)+1)
		// Total must always equal Impl + System and par - ideal.
		return approx(o.TotalSec, o.ImplSec+o.SystemSec) &&
			approx(o.TotalSec, par-o.IdealSec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	for _, v := range []float64{a, -a, b, -b} {
		if v > scale {
			scale = v
		}
	}
	return d <= 1e-9*scale
}

package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func scan(t *testing.T, src string) ([]ScannedToken, *DiagBag) {
	t.Helper()
	var bag DiagBag
	toks := ScanAll("test.w2", []byte(src), &bag)
	return toks, &bag
}

func kinds(toks []ScannedToken) []Token {
	out := make([]Token, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Tok)
	}
	return out
}

func TestScanKeywordsAndIdents(t *testing.T) {
	toks, bag := scan(t, "module section function var foo bar_9 Of of")
	if bag.HasErrors() {
		t.Fatalf("unexpected errors: %s", bag)
	}
	want := []Token{MODULE, SECTION, FUNCTION, VAR, IDENT, IDENT, IDENT, OF, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if toks[4].Lit != "foo" || toks[5].Lit != "bar_9" || toks[6].Lit != "Of" {
		t.Errorf("identifier literals wrong: %v", toks[4:7])
	}
}

func TestScanNumbers(t *testing.T) {
	cases := []struct {
		src string
		tok Token
		lit string
	}{
		{"0", INT, "0"},
		{"12345", INT, "12345"},
		{"1.5", FLOAT, "1.5"},
		{"0.25", FLOAT, "0.25"},
		{"1e9", FLOAT, "1e9"},
		{"2.5e-3", FLOAT, "2.5e-3"},
		{"7E+2", FLOAT, "7E+2"},
	}
	for _, c := range cases {
		toks, bag := scan(t, c.src)
		if bag.HasErrors() {
			t.Errorf("%q: unexpected errors: %s", c.src, bag)
			continue
		}
		if toks[0].Tok != c.tok || toks[0].Lit != c.lit {
			t.Errorf("%q: got %s %q, want %s %q", c.src, toks[0].Tok, toks[0].Lit, c.tok, c.lit)
		}
	}
}

func TestScanNumberDotWithoutDigitIsMemberlike(t *testing.T) {
	// "1." followed by a non-digit must scan as INT then an error on '.'
	// (there is no '.' token in the language).
	toks, bag := scan(t, "1.x")
	if toks[0].Tok != INT || toks[0].Lit != "1" {
		t.Fatalf("got %v, want INT(1) first", toks)
	}
	if !bag.HasErrors() {
		t.Fatalf("expected an error for the stray '.'")
	}
}

func TestScanOperators(t *testing.T) {
	toks, bag := scan(t, "+ - * / % == != <= >= < > = && || ! ( ) [ ] { } , ; :")
	if bag.HasErrors() {
		t.Fatalf("unexpected errors: %s", bag)
	}
	want := []Token{ADD, SUB, MUL, QUO, REM, EQL, NEQ, LEQ, GEQ, LSS, GTR,
		ASSIGN, LAND, LOR, NOT, LPAREN, RPAREN, LBRACK, RBRACK, LBRACE,
		RBRACE, COMMA, SEMICOLON, COLON, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanComments(t *testing.T) {
	toks, bag := scan(t, "a // line comment\nb /* block\ncomment */ c")
	if bag.HasErrors() {
		t.Fatalf("unexpected errors: %s", bag)
	}
	got := kinds(toks)
	want := []Token{IDENT, IDENT, IDENT, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	if toks[1].Pos.Line != 2 || toks[2].Pos.Line != 3 {
		t.Errorf("line tracking across comments wrong: %v %v", toks[1].Pos, toks[2].Pos)
	}
}

func TestScanUnterminatedComment(t *testing.T) {
	_, bag := scan(t, "/* never closed")
	if !bag.HasErrors() {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestScanStrings(t *testing.T) {
	toks, bag := scan(t, `"hello" "a\"b" "tab\tnl\n"`)
	if bag.HasErrors() {
		t.Fatalf("unexpected errors: %s", bag)
	}
	if toks[0].Lit != "hello" || toks[1].Lit != `a"b` || toks[2].Lit != "tab\tnl\n" {
		t.Errorf("string literals wrong: %q %q %q", toks[0].Lit, toks[1].Lit, toks[2].Lit)
	}
}

func TestScanUnterminatedString(t *testing.T) {
	_, bag := scan(t, "\"oops\n")
	if !bag.HasErrors() {
		t.Fatal("expected error for unterminated string")
	}
}

func TestScanIllegalCharacters(t *testing.T) {
	for _, src := range []string{"@", "#", "$", "&", "|", "~"} {
		toks, bag := scan(t, src)
		if !bag.HasErrors() {
			t.Errorf("%q: expected a lexical error", src)
		}
		if toks[len(toks)-1].Tok != EOF {
			t.Errorf("%q: stream not EOF-terminated", src)
		}
	}
}

func TestScanPositions(t *testing.T) {
	toks, _ := scan(t, "a\n  bb\n\tccc")
	if p := toks[0].Pos; p.Line != 1 || p.Col != 1 {
		t.Errorf("a at %d:%d, want 1:1", p.Line, p.Col)
	}
	if p := toks[1].Pos; p.Line != 2 || p.Col != 3 {
		t.Errorf("bb at %d:%d, want 2:3", p.Line, p.Col)
	}
	if p := toks[2].Pos; p.Line != 3 || p.Col != 2 {
		t.Errorf("ccc at %d:%d, want 3:2", p.Line, p.Col)
	}
}

func TestTokenClassification(t *testing.T) {
	if !MODULE.IsKeyword() || !RETURN.IsKeyword() {
		t.Error("keywords misclassified")
	}
	if !ADD.IsOperator() || !COLON.IsOperator() {
		t.Error("operators misclassified")
	}
	if !INT.IsLiteral() || !IDENT.IsLiteral() {
		t.Error("literals misclassified")
	}
	if MODULE.IsOperator() || ADD.IsKeyword() || SEMICOLON.IsLiteral() {
		t.Error("cross classification")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	if !(LOR.Precedence() < LAND.Precedence() &&
		LAND.Precedence() < EQL.Precedence() &&
		EQL.Precedence() < ADD.Precedence() &&
		ADD.Precedence() < MUL.Precedence()) {
		t.Error("precedence levels out of order")
	}
	if MODULE.Precedence() != 0 || NOT.Precedence() != 0 {
		t.Error("non-binary tokens should have precedence 0")
	}
}

func TestLookupRoundTrip(t *testing.T) {
	for kw := kwStart + 1; kw < kwEnd; kw++ {
		if got := Lookup(kw.String()); got != kw {
			t.Errorf("Lookup(%q) = %s, want %s", kw.String(), got, kw)
		}
	}
	if Lookup("notakeyword") != IDENT {
		t.Error("Lookup of non-keyword should be IDENT")
	}
}

// TestScanNeverPanics feeds arbitrary byte soup to the scanner; the scanner
// must terminate with an EOF token and never panic, whatever the input.
func TestScanNeverPanics(t *testing.T) {
	f := func(src []byte) bool {
		var bag DiagBag
		toks := ScanAll("fuzz.w2", src, &bag)
		return len(toks) > 0 && toks[len(toks)-1].Tok == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestScanIdentRoundTrip property: any identifier-shaped string scans back to
// a single IDENT (or keyword) token with the same spelling.
func TestScanIdentRoundTrip(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
	alnum := letters + "0123456789"
	f := func(seed uint32, n uint8) bool {
		length := int(n%24) + 1
		var sb strings.Builder
		state := seed
		for i := 0; i < length; i++ {
			state = state*1664525 + 1013904223
			set := alnum
			if i == 0 {
				set = letters
			}
			sb.WriteByte(set[int(state>>16)%len(set)])
		}
		ident := sb.String()
		var bag DiagBag
		toks := ScanAll("prop.w2", []byte(ident), &bag)
		if bag.HasErrors() || len(toks) != 2 {
			return false
		}
		tk := toks[0]
		if tk.Tok.IsKeyword() {
			return tk.Tok.String() == ident
		}
		return tk.Tok == IDENT && tk.Lit == ident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagBagMergeAndOrder(t *testing.T) {
	var a, b DiagBag
	a.Errorf(Pos{File: "x", Line: 3, Col: 1, Offset: 20}, "later")
	b.Errorf(Pos{File: "x", Line: 1, Col: 1, Offset: 0}, "earlier")
	b.Warnf(Pos{File: "x", Line: 2, Col: 1, Offset: 10}, "middle")
	a.Merge(&b)
	all := a.All()
	if len(all) != 3 {
		t.Fatalf("got %d diags, want 3", len(all))
	}
	if all[0].Msg != "earlier" || all[1].Msg != "middle" || all[2].Msg != "later" {
		t.Errorf("diagnostics not in source order: %v", all)
	}
	if a.ErrorCount() != 2 {
		t.Errorf("ErrorCount = %d, want 2", a.ErrorCount())
	}
	if a.Err() == nil {
		t.Error("Err() should be non-nil when errors present")
	}
}

func TestDiagBagNoErrors(t *testing.T) {
	var b DiagBag
	b.Warnf(NoPos, "just a warning")
	if b.HasErrors() {
		t.Error("warnings must not count as errors")
	}
	if b.Err() != nil {
		t.Error("Err() should be nil without errors")
	}
}

// Package source provides the lexical layer of the W2 compiler front end:
// source positions, tokens, a scanner, and structured diagnostics.
//
// The language scanned here is the W2-like source language for the Warp
// systolic array, as described in the reproduced paper: a module consists of
// section programs, each holding one or more functions.
package source

import "fmt"

// Pos identifies a location in a source file by line and column, both
// 1-based. Offset is the 0-based byte offset into the file.
type Pos struct {
	File   string
	Offset int
	Line   int
	Col    int
}

// NoPos is the zero Pos; IsValid reports false for it.
var NoPos = Pos{}

// IsValid reports whether p identifies a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:col, omitting empty parts.
func (p Pos) String() string {
	if !p.IsValid() {
		return "<unknown position>"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Before reports whether p is strictly before q within the same file.
func (p Pos) Before(q Pos) bool {
	return p.Offset < q.Offset
}

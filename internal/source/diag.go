package source

import (
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Warn diagnostics do not prevent compilation.
	Warn Severity = iota
	// Err diagnostics abort compilation after the current phase. The paper's
	// compiler discovers all syntax and semantic errors during the master's
	// initial parse and aborts before any parallel work is forked.
	Err
)

func (s Severity) String() string {
	if s == Warn {
		return "warning"
	}
	return "error"
}

// Diagnostic is one compiler message tied to a source position.
type Diagnostic struct {
	Pos      Pos
	Severity Severity
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Msg)
}

// DiagBag accumulates diagnostics across phases. The zero value is ready to
// use. DiagBag is not safe for concurrent use; in the parallel compiler each
// function master owns a private bag which the section master later merges,
// mirroring the paper's diagnostic-combining step.
type DiagBag struct {
	diags []Diagnostic
	errs  int
}

// Errorf records an error at pos.
func (b *DiagBag) Errorf(pos Pos, format string, args ...any) {
	b.diags = append(b.diags, Diagnostic{Pos: pos, Severity: Err, Msg: fmt.Sprintf(format, args...)})
	b.errs++
}

// Warnf records a warning at pos.
func (b *DiagBag) Warnf(pos Pos, format string, args ...any) {
	b.diags = append(b.diags, Diagnostic{Pos: pos, Severity: Warn, Msg: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any error-severity diagnostic was recorded.
func (b *DiagBag) HasErrors() bool { return b.errs > 0 }

// ErrorCount returns the number of error-severity diagnostics.
func (b *DiagBag) ErrorCount() int { return b.errs }

// All returns the recorded diagnostics in source order (stable for equal
// positions, preserving emission order).
func (b *DiagBag) All() []Diagnostic {
	out := make([]Diagnostic, len(b.diags))
	copy(out, b.diags)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pos.File != out[j].Pos.File {
			return out[i].Pos.File < out[j].Pos.File
		}
		return out[i].Pos.Before(out[j].Pos)
	})
	return out
}

// Merge appends all diagnostics from other into b. It implements the section
// master's "combine the diagnostic output" step.
func (b *DiagBag) Merge(other *DiagBag) {
	if other == nil {
		return
	}
	b.diags = append(b.diags, other.diags...)
	b.errs += other.errs
}

// MergeOrdered merges the given bags into b in argument order. It is the
// deterministic combine step for parallel producers: each concurrent phase
// records into a private bag, and the coordinator merges the bags in
// declaration order — never completion order. Because All() sorts by
// position, stable on insertion index, merging in a fixed order makes the
// rendered output independent of goroutine scheduling: two diagnostics at
// the same position always appear in the order their bags were merged, and
// within one bag in the order they were recorded. Nil bags are skipped.
func (b *DiagBag) MergeOrdered(bags ...*DiagBag) {
	for _, other := range bags {
		b.Merge(other)
	}
}

// Err returns an error summarizing the bag if it holds any errors, else nil.
func (b *DiagBag) Err() error {
	if !b.HasErrors() {
		return nil
	}
	var sb strings.Builder
	for i, d := range b.All() {
		if d.Severity != Err {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(d.String())
		if i > 20 {
			fmt.Fprintf(&sb, "\n... and %d more errors", b.errs-i-1)
			break
		}
	}
	return fmt.Errorf("%s", sb.String())
}

// String renders every diagnostic, one per line.
func (b *DiagBag) String() string {
	var sb strings.Builder
	for _, d := range b.All() {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

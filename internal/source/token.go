package source

// Token is the type of a lexical token of the W2 language.
type Token int

// The complete token set. Keep the operator and keyword ranges contiguous:
// opStart/opEnd and kwStart/kwEnd delimit them for classification helpers.
const (
	ILLEGAL Token = iota
	EOF
	COMMENT

	// Literals and identifiers.
	IDENT  // foo
	INT    // 123
	FLOAT  // 12.5, 1e-3
	STRING // "abc"

	opStart
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	LAND // &&
	LOR  // ||
	NOT  // !

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	ASSIGN // =

	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	LBRACE // {
	RBRACE // }

	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	opEnd

	kwStart
	MODULE   // module
	SECTION  // section
	OF       // of
	FUNCTION // function
	VAR      // var
	IF       // if
	ELSE     // else
	WHILE    // while
	FOR      // for
	TO       // to
	STEP     // step
	RETURN   // return
	RECEIVE  // receive
	SEND     // send
	IN       // in
	OUT      // out
	TRUE     // true
	FALSE    // false
	BREAK    // break
	CONTINUE // continue
	kwEnd
)

var tokenNames = map[Token]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",

	IDENT:  "IDENT",
	INT:    "INT",
	FLOAT:  "FLOAT",
	STRING: "STRING",

	ADD: "+",
	SUB: "-",
	MUL: "*",
	QUO: "/",
	REM: "%",

	LAND: "&&",
	LOR:  "||",
	NOT:  "!",

	EQL: "==",
	NEQ: "!=",
	LSS: "<",
	LEQ: "<=",
	GTR: ">",
	GEQ: ">=",

	ASSIGN: "=",

	LPAREN: "(",
	RPAREN: ")",
	LBRACK: "[",
	RBRACK: "]",
	LBRACE: "{",
	RBRACE: "}",

	COMMA:     ",",
	SEMICOLON: ";",
	COLON:     ":",

	MODULE:   "module",
	SECTION:  "section",
	OF:       "of",
	FUNCTION: "function",
	VAR:      "var",
	IF:       "if",
	ELSE:     "else",
	WHILE:    "while",
	FOR:      "for",
	TO:       "to",
	STEP:     "step",
	RETURN:   "return",
	RECEIVE:  "receive",
	SEND:     "send",
	IN:       "in",
	OUT:      "out",
	TRUE:     "true",
	FALSE:    "false",
	BREAK:    "break",
	CONTINUE: "continue",
}

// String returns the surface spelling of operator and keyword tokens and the
// class name for the remaining tokens.
func (t Token) String() string {
	if s, ok := tokenNames[t]; ok {
		return s
	}
	return "token(" + itoa(int(t)) + ")"
}

// itoa is a minimal integer formatter so that token.go does not pull fmt in.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

var keywords = func() map[string]Token {
	m := make(map[string]Token)
	for t := kwStart + 1; t < kwEnd; t++ {
		m[tokenNames[t]] = t
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword token, or IDENT if the
// spelling is not a keyword.
func Lookup(ident string) Token {
	if t, ok := keywords[ident]; ok {
		return t
	}
	return IDENT
}

// IsKeyword reports whether t is a reserved word of the language.
func (t Token) IsKeyword() bool { return t > kwStart && t < kwEnd }

// IsOperator reports whether t is an operator or delimiter.
func (t Token) IsOperator() bool { return t > opStart && t < opEnd }

// IsLiteral reports whether t carries a literal value or identifier spelling.
func (t Token) IsLiteral() bool { return t == IDENT || t == INT || t == FLOAT || t == STRING }

// Precedence returns the binary-operator precedence of t (higher binds
// tighter) or 0 if t is not a binary operator. The levels follow C:
// || < && < comparisons < additive < multiplicative.
func (t Token) Precedence() int {
	switch t {
	case LOR:
		return 1
	case LAND:
		return 2
	case EQL, NEQ, LSS, LEQ, GTR, GEQ:
		return 3
	case ADD, SUB:
		return 4
	case MUL, QUO, REM:
		return 5
	}
	return 0
}

package source

import (
	"testing"
)

// TestNewScannerAtMatchesFullScan seeds a scanner at every token boundary of
// a program and checks that the tokens it produces from there are identical
// — literal and position — to the full scan's suffix.
func TestNewScannerAtMatchesFullScan(t *testing.T) {
	src := []byte(`module m (out ys: float[2])
// comment line
section 1 of 1 {
    function f(a: int): float {
        var x: float = 1.5; /* block */
        x = x * 2.0e1;
        return x;
    }
}
`)
	var bag DiagBag
	full := ScanAll("m.w2", src, &bag)
	if bag.HasErrors() {
		t.Fatal(bag.String())
	}
	for i, at := range full {
		if at.Tok == EOF {
			break
		}
		var seedBag DiagBag
		s := NewScannerAt("m.w2", src, &seedBag, at.Pos.Offset, at.Pos.Line, at.Pos.Col)
		for j := i; j < len(full); j++ {
			tok, lit, pos := s.Next()
			want := full[j]
			if tok != want.Tok || lit != want.Lit || pos != want.Pos {
				t.Fatalf("seed at token %d: token %d = %v %q %v, want %v %q %v",
					i, j, tok, lit, pos, want.Tok, want.Lit, want.Pos)
			}
			if tok == EOF {
				break
			}
		}
		if seedBag.HasErrors() {
			t.Fatalf("seed at token %d: %s", i, seedBag.String())
		}
	}
}

// TestNewScannerAtClamps checks the defensive clamping of out-of-range
// offsets.
func TestNewScannerAtClamps(t *testing.T) {
	src := []byte("module m")
	var bag DiagBag
	s := NewScannerAt("m.w2", src, &bag, len(src)+10, 1, 1)
	if tok, _, _ := s.Next(); tok != EOF {
		t.Fatalf("past-end seed: got %v, want EOF", tok)
	}
	s = NewScannerAt("m.w2", src, &bag, -5, 1, 1)
	if tok, lit, _ := s.Next(); tok != MODULE {
		t.Fatalf("negative seed: got %v %q, want module keyword", tok, lit)
	}
}

// TestMergeOrderedDeterministic checks that merging producer bags in
// declaration order renders the same output regardless of which producer
// recorded first, and that equal-position diagnostics keep bag-merge order.
func TestMergeOrderedDeterministic(t *testing.T) {
	at := func(off int) Pos { return Pos{File: "m.w2", Offset: off, Line: 1, Col: off + 1} }

	build := func(fillOrder []int) string {
		bags := make([]*DiagBag, 3)
		for i := range bags {
			bags[i] = &DiagBag{}
		}
		// Fill the bags in the given (completion) order; bag i always holds
		// the same diagnostics.
		for _, i := range fillOrder {
			switch i {
			case 0:
				bags[0].Errorf(at(10), "first at 10")
				bags[0].Errorf(at(10), "second at 10")
			case 1:
				bags[1].Errorf(at(5), "at 5")
			case 2:
				bags[2].Warnf(at(10), "warn at 10")
			}
		}
		var out DiagBag
		out.MergeOrdered(bags[0], nil, bags[1], bags[2])
		return out.String()
	}

	want := build([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if got := build(order); got != want {
			t.Fatalf("fill order %v changed output:\n got: %q\nwant: %q", order, got, want)
		}
	}

	// Position sort still applies across bags; within a position, bag order
	// then insertion order decide.
	var out DiagBag
	b0, b1, b2 := &DiagBag{}, &DiagBag{}, &DiagBag{}
	b0.Errorf(at(10), "first at 10")
	b0.Errorf(at(10), "second at 10")
	b1.Errorf(at(5), "at 5")
	b2.Warnf(at(10), "warn at 10")
	out.MergeOrdered(b0, b1, b2)
	all := out.All()
	wantMsgs := []string{"at 5", "first at 10", "second at 10", "warn at 10"}
	if len(all) != len(wantMsgs) {
		t.Fatalf("got %d diagnostics, want %d", len(all), len(wantMsgs))
	}
	for i, d := range all {
		if d.Msg != wantMsgs[i] {
			t.Errorf("diag %d = %q, want %q", i, d.Msg, wantMsgs[i])
		}
	}
	if out.ErrorCount() != 3 {
		t.Errorf("ErrorCount = %d, want 3", out.ErrorCount())
	}
}

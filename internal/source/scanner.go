package source

import "fmt"

// Scanner converts a byte slice holding W2 source text into a token stream.
// It reports malformed input through the attached diagnostic bag and keeps
// scanning, so the parser always sees a well-terminated stream.
type Scanner struct {
	file  string
	src   []byte
	diags *DiagBag

	offset int // byte offset of ch
	next   int // byte offset after ch
	ch     rune
	line   int
	col    int
}

// NewScanner returns a scanner over src. Diagnostics for lexical errors are
// appended to diags, which must not be nil.
func NewScanner(file string, src []byte, diags *DiagBag) *Scanner {
	s := &Scanner{file: file, src: src, diags: diags, line: 1, col: 0}
	s.advance()
	return s
}

// NewScannerAt returns a scanner over src that starts mid-buffer: the first
// character it reads is src[offset], whose position is (line, col). Because
// line and column depend only on the bytes before offset, seeding them with
// the values a full scan would have reached there makes every subsequent
// token position identical to the full scan's — the property the span-sliced
// parallel parser relies on (internal/parser.ParseFuncBody parses each
// function body from its recorded byte span). offset may equal len(src), in
// which case the scanner reports EOF immediately.
func NewScannerAt(file string, src []byte, diags *DiagBag, offset, line, col int) *Scanner {
	if offset < 0 {
		offset = 0
	}
	if offset > len(src) {
		offset = len(src)
	}
	// advance() will move next→offset and bump col by one (the placeholder
	// ch is not '\n'), landing exactly on (line, col).
	s := &Scanner{file: file, src: src, diags: diags, next: offset, line: line, col: col - 1}
	s.advance()
	return s
}

const eofRune = rune(-1)

// advance moves to the next input character. Only ASCII input is meaningful
// to the language; non-ASCII bytes are passed through one byte at a time and
// rejected by the token rules.
func (s *Scanner) advance() {
	if s.next >= len(s.src) {
		s.offset = len(s.src)
		s.ch = eofRune
		s.col++
		return
	}
	if s.ch == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	s.offset = s.next
	s.ch = rune(s.src[s.next])
	s.next++
}

func (s *Scanner) pos() Pos {
	return Pos{File: s.file, Offset: s.offset, Line: s.line, Col: s.col}
}

func (s *Scanner) peek() rune {
	if s.next >= len(s.src) {
		return eofRune
	}
	return rune(s.src[s.next])
}

func isLetter(ch rune) bool {
	return 'a' <= ch && ch <= 'z' || 'A' <= ch && ch <= 'Z' || ch == '_'
}

func isDigit(ch rune) bool { return '0' <= ch && ch <= '9' }

// Next returns the next token, its literal text (for identifier, literal and
// comment tokens), and its starting position. At end of input it returns EOF
// forever.
func (s *Scanner) Next() (Token, string, Pos) {
	s.skipSpace()
	pos := s.pos()

	switch ch := s.ch; {
	case ch == eofRune:
		return EOF, "", pos
	case isLetter(ch):
		lit := s.scanIdent()
		return Lookup(lit), lit, pos
	case isDigit(ch):
		tok, lit := s.scanNumber()
		return tok, lit, pos
	case ch == '"':
		lit := s.scanString(pos)
		return STRING, lit, pos
	default:
		return s.scanOperator(pos)
	}
}

func (s *Scanner) skipSpace() {
	for {
		for s.ch == ' ' || s.ch == '\t' || s.ch == '\n' || s.ch == '\r' {
			s.advance()
		}
		if s.ch == '/' && s.peek() == '/' {
			for s.ch != '\n' && s.ch != eofRune {
				s.advance()
			}
			continue
		}
		if s.ch == '/' && s.peek() == '*' {
			open := s.pos()
			s.advance() // '/'
			s.advance() // '*'
			closed := false
			for s.ch != eofRune {
				if s.ch == '*' && s.peek() == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				s.diags.Errorf(open, "unterminated block comment")
			}
			continue
		}
		return
	}
}

func (s *Scanner) scanIdent() string {
	start := s.offset
	for isLetter(s.ch) || isDigit(s.ch) {
		s.advance()
	}
	return string(s.src[start:s.offset])
}

func (s *Scanner) scanNumber() (Token, string) {
	start := s.offset
	tok := INT
	for isDigit(s.ch) {
		s.advance()
	}
	if s.ch == '.' && isDigit(s.peek()) {
		tok = FLOAT
		s.advance()
		for isDigit(s.ch) {
			s.advance()
		}
	}
	if s.ch == 'e' || s.ch == 'E' {
		tok = FLOAT
		s.advance()
		if s.ch == '+' || s.ch == '-' {
			s.advance()
		}
		if !isDigit(s.ch) {
			s.diags.Errorf(s.pos(), "malformed floating-point exponent")
		}
		for isDigit(s.ch) {
			s.advance()
		}
	}
	return tok, string(s.src[start:s.offset])
}

// scanString scans a double-quoted string literal and returns its unquoted
// contents. Only \" \\ \n \t escapes are recognized; strings are used solely
// for diagnostics in W2 programs, not computation.
func (s *Scanner) scanString(pos Pos) string {
	s.advance() // opening quote
	var out []byte
	for {
		switch s.ch {
		case eofRune, '\n':
			s.diags.Errorf(pos, "unterminated string literal")
			return string(out)
		case '"':
			s.advance()
			return string(out)
		case '\\':
			s.advance()
			switch s.ch {
			case '"':
				out = append(out, '"')
			case '\\':
				out = append(out, '\\')
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			default:
				s.diags.Errorf(s.pos(), "unknown escape sequence \\%c", s.ch)
			}
			s.advance()
		default:
			out = append(out, byte(s.ch))
			s.advance()
		}
	}
}

func (s *Scanner) scanOperator(pos Pos) (Token, string, Pos) {
	ch := s.ch
	s.advance()

	// two-character operators
	two := func(next rune, long, short Token) (Token, string, Pos) {
		if s.ch == next {
			s.advance()
			return long, "", pos
		}
		return short, "", pos
	}

	switch ch {
	case '+':
		return ADD, "", pos
	case '-':
		return SUB, "", pos
	case '*':
		return MUL, "", pos
	case '/':
		return QUO, "", pos
	case '%':
		return REM, "", pos
	case '=':
		return two('=', EQL, ASSIGN)
	case '!':
		return two('=', NEQ, NOT)
	case '<':
		return two('=', LEQ, LSS)
	case '>':
		return two('=', GEQ, GTR)
	case '&':
		if s.ch == '&' {
			s.advance()
			return LAND, "", pos
		}
		s.diags.Errorf(pos, "unexpected character %q (did you mean &&?)", ch)
		return ILLEGAL, string(ch), pos
	case '|':
		if s.ch == '|' {
			s.advance()
			return LOR, "", pos
		}
		s.diags.Errorf(pos, "unexpected character %q (did you mean ||?)", ch)
		return ILLEGAL, string(ch), pos
	case '(':
		return LPAREN, "", pos
	case ')':
		return RPAREN, "", pos
	case '[':
		return LBRACK, "", pos
	case ']':
		return RBRACK, "", pos
	case '{':
		return LBRACE, "", pos
	case '}':
		return RBRACE, "", pos
	case ',':
		return COMMA, "", pos
	case ';':
		return SEMICOLON, "", pos
	case ':':
		return COLON, "", pos
	}
	s.diags.Errorf(pos, "unexpected character %q", ch)
	return ILLEGAL, string(ch), pos
}

// ScanAll tokenizes src completely and returns the tokens including the
// final EOF. It is a convenience for tests and tools.
func ScanAll(file string, src []byte, diags *DiagBag) []ScannedToken {
	s := NewScanner(file, src, diags)
	var out []ScannedToken
	for {
		tok, lit, pos := s.Next()
		out = append(out, ScannedToken{Tok: tok, Lit: lit, Pos: pos})
		if tok == EOF {
			return out
		}
	}
}

// ScannedToken is one element of the output of ScanAll.
type ScannedToken struct {
	Tok Token
	Lit string
	Pos Pos
}

func (t ScannedToken) String() string {
	if t.Lit != "" {
		return fmt.Sprintf("%s(%s)", t.Tok, t.Lit)
	}
	return t.Tok.String()
}

// Package ir defines the compiler's intermediate representation: a control
// flowgraph of basic blocks holding three-address instructions over virtual
// registers. Phase 2 of the compiler (flowgraph construction, local
// optimization, global dependency computation) and phase 3 (software
// pipelining and code generation) both operate on this representation.
//
// The IR is deliberately not SSA: it models the flowgraph-plus-dataflow
// style of late-1980s optimizing compilers. Scalar variables are bound to
// fixed virtual registers; temporaries get fresh ones. Arrays live in cell
// data memory and are accessed with Load/Store.
package ir

import (
	"fmt"

	"repro/internal/types"
)

// VReg is a virtual register. 0 is "none"; real registers start at 1.
type VReg int

// None marks an absent register operand.
const None VReg = 0

func (r VReg) String() string {
	if r == None {
		return "_"
	}
	return fmt.Sprintf("v%d", int(r))
}

// Op enumerates IR operations.
type Op int

const (
	Nop Op = iota

	// ConstI materializes an integer or boolean constant (ConstI field);
	// ConstF materializes a float constant (ConstF field).
	ConstI
	ConstF

	// Mov copies A to Dst.
	Mov

	// Arithmetic on Kind (Int or Float; Rem is Int-only).
	Add
	Sub
	Mul
	Div
	Rem
	Neg
	Abs
	Min
	Max
	Sqrt

	// Not complements a boolean (0/1) word.
	Not

	// Comparisons on operand Kind; Dst is boolean.
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	// Conversions.
	CvtIF // int -> float
	CvtFI // float -> int (truncate)

	// Load reads Sym[A] into Dst; Store writes B to Sym[A]. A is an integer
	// element index; Sym names a local array.
	Load
	Store

	// Recv dequeues from channel Sym ("X" or "Y") into Dst, converting the
	// word to Kind. Send enqueues A to channel Sym.
	Recv
	Send

	// Call invokes function Sym with Args; Dst receives the result (None
	// for void calls).
	Call

	// Terminators. Ret returns A (None for void). Jmp goes to Then.
	// CondBr branches on A to Then or Else.
	Ret
	Jmp
	CondBr
)

var opNames = map[Op]string{
	Nop: "nop", ConstI: "consti", ConstF: "constf", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	Neg: "neg", Abs: "abs", Min: "min", Max: "max", Sqrt: "sqrt",
	Not:   "not",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	CvtIF: "cvtif", CvtFI: "cvtfi",
	Load: "load", Store: "store", Recv: "recv", Send: "send",
	Call: "call", Ret: "ret", Jmp: "jmp", CondBr: "condbr",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool { return o == Ret || o == Jmp || o == CondBr }

// HasSideEffects reports whether an instruction with this op must not be
// removed even if its result is unused.
func (o Op) HasSideEffects() bool {
	switch o {
	case Store, Send, Recv, Call, Ret, Jmp, CondBr, Div, Rem:
		// Div and Rem can trap (divide by zero); Recv consumes queue input.
		return true
	}
	return false
}

// IsCommutative reports whether the operands of o may be swapped.
func (o Op) IsCommutative() bool {
	switch o {
	case Add, Mul, Min, Max, CmpEQ, CmpNE:
		return true
	}
	return false
}

// Instr is one three-address instruction.
type Instr struct {
	Op     Op
	Kind   types.Kind // operand kind for arithmetic/comparison/recv
	Dst    VReg
	A, B   VReg
	ConstI int64
	ConstF float64
	Sym    string
	Args   []VReg
	// Then and Else are branch targets: Jmp uses Then; CondBr uses both.
	Then, Else *Block
}

// Uses returns the virtual registers read by the instruction.
func (in *Instr) Uses() []VReg {
	var out []VReg
	if in.A != None {
		out = append(out, in.A)
	}
	if in.B != None {
		out = append(out, in.B)
	}
	out = append(out, in.Args...)
	return out
}

// Def returns the register written by the instruction, or None.
func (in *Instr) Def() VReg {
	return in.Dst
}

func (in *Instr) String() string {
	s := ""
	if in.Dst != None {
		s = in.Dst.String() + " = "
	}
	s += in.Op.String()
	switch in.Op {
	case ConstI:
		s += fmt.Sprintf(" %d", in.ConstI)
	case ConstF:
		s += fmt.Sprintf(" %g", in.ConstF)
	case Load:
		s += fmt.Sprintf(" %s[%s]", in.Sym, in.A)
		return s
	case Store:
		return fmt.Sprintf("store %s[%s] = %s", in.Sym, in.A, in.B)
	case Recv:
		s += " " + in.Sym
	case Send:
		return fmt.Sprintf("send %s %s", in.Sym, in.A)
	case Call:
		s += " " + in.Sym + "("
		for i, a := range in.Args {
			if i > 0 {
				s += ", "
			}
			s += a.String()
		}
		s += ")"
		return s
	case Jmp:
		return fmt.Sprintf("jmp b%d", in.Then.ID)
	case CondBr:
		return fmt.Sprintf("condbr %s b%d b%d", in.A, in.Then.ID, in.Else.ID)
	case Ret:
		if in.A != None {
			return "ret " + in.A.String()
		}
		return "ret"
	default:
		if in.A != None {
			s += " " + in.A.String()
		}
		if in.B != None {
			s += " " + in.B.String()
		}
	}
	return s
}

// Block is a basic block. The final instruction is always a terminator.
type Block struct {
	ID     int
	Instrs []Instr
	Preds  []*Block
	Succs  []*Block
}

// Term returns the block's terminator instruction, or nil if the block is
// not yet terminated (only during construction).
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// ArrayVar is a function-local array allocated in cell data memory.
type ArrayVar struct {
	Sym   string // unique symbol within the function
	Words int    // total element count
	Kind  types.Kind
}

// Func is one function's flowgraph — the unit of work handed to a function
// master in the parallel compiler.
type Func struct {
	Name    string
	Section int // 1-based section index
	Blocks  []*Block
	Params  []VReg
	// ResultKind is the function's result kind (Void for none).
	ResultKind types.Kind
	Arrays     []ArrayVar

	// kinds[v] is the value kind of virtual register v (index 0 unused).
	kinds []types.Kind
}

// NewFunc returns an empty function with an entry block.
func NewFunc(name string, section int) *Func {
	f := &Func{Name: name, Section: section, ResultKind: types.Void, kinds: make([]types.Kind, 1)}
	f.NewBlock()
	return f
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a fresh empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewVReg allocates a virtual register of the given kind.
func (f *Func) NewVReg(k types.Kind) VReg {
	f.kinds = append(f.kinds, k)
	return VReg(len(f.kinds) - 1)
}

// KindOf returns the value kind of v.
func (f *Func) KindOf(v VReg) types.Kind {
	if v <= 0 || int(v) >= len(f.kinds) {
		return types.Invalid
	}
	return f.kinds[v]
}

// NumVRegs returns the number of allocated virtual registers (vreg ids are
// 1..NumVRegs).
func (f *Func) NumVRegs() int { return len(f.kinds) - 1 }

// NumInstrs returns the total instruction count, a work metric used by the
// compile-cost model.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// AddEdge records a CFG edge from b to s.
func AddEdge(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// RecomputeEdges rebuilds all Preds/Succs from the terminators. Passes that
// restructure terminators call this instead of patching edges by hand.
func (f *Func) RecomputeEdges() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case Jmp:
			AddEdge(b, t.Then)
		case CondBr:
			AddEdge(b, t.Then)
			if t.Else != t.Then {
				AddEdge(b, t.Else)
			}
		}
	}
}

// RemoveUnreachable deletes blocks not reachable from the entry and
// renumbers the survivors. It returns the number of removed blocks.
func (f *Func) RemoveUnreachable() int {
	reach := make(map[*Block]bool)
	var stack []*Block
	stack = append(stack, f.Entry())
	reach[f.Entry()] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := b.Term()
		if t == nil {
			continue
		}
		for _, s := range []*Block{t.Then, t.Else} {
			if s != nil && !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := f.Blocks[:0]
	removed := 0
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.ID = i
	}
	f.RecomputeEdges()
	return removed
}

// String renders the function as readable IR text.
func (f *Func) String() string {
	s := fmt.Sprintf("func %s (section %d)", f.Name, f.Section)
	if len(f.Params) > 0 {
		s += " params"
		for _, p := range f.Params {
			s += " " + p.String()
		}
	}
	s += "\n"
	for _, a := range f.Arrays {
		s += fmt.Sprintf("  array %s[%d]\n", a.Sym, a.Words)
	}
	for _, b := range f.Blocks {
		s += fmt.Sprintf("b%d:", b.ID)
		if len(b.Preds) > 0 {
			s += " ; preds"
			for _, p := range b.Preds {
				s += fmt.Sprintf(" b%d", p.ID)
			}
		}
		s += "\n"
		for i := range b.Instrs {
			s += "  " + b.Instrs[i].String() + "\n"
		}
	}
	return s
}

// Validate checks structural invariants: every block terminated, branch
// targets within the function, operand vregs allocated, edges consistent.
// It returns the first problem found, or nil.
func (f *Func) Validate() error {
	inFunc := make(map[*Block]bool)
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("func %s: block b%d is empty", f.Name, b.ID)
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("func %s: b%d has terminator %s mid-block", f.Name, b.ID, in)
			}
			for _, u := range in.Uses() {
				if int(u) >= len(f.kinds) {
					return fmt.Errorf("func %s: b%d uses unallocated vreg %s in %q", f.Name, b.ID, u, in)
				}
			}
			if int(in.Dst) >= len(f.kinds) {
				return fmt.Errorf("func %s: b%d defines unallocated vreg %s", f.Name, b.ID, in.Dst)
			}
			for _, tgt := range []*Block{in.Then, in.Else} {
				if tgt != nil && !inFunc[tgt] {
					return fmt.Errorf("func %s: b%d branches outside the function", f.Name, b.ID)
				}
			}
		}
		if b.Term() == nil {
			return fmt.Errorf("func %s: block b%d lacks a terminator", f.Name, b.ID)
		}
	}
	return nil
}

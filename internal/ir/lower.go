package ir

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/types"
)

// Lower translates one checked function into its flowgraph. This is the
// front half of compiler phase 2. The module must have passed sem.Check
// without errors; Lower returns an error only on internal inconsistencies.
func Lower(fn *ast.FuncDecl, info *sem.Info) (*Func, error) {
	lw := &lowerer{
		f:      NewFunc(fn.Name, fn.SectionIndex),
		info:   info,
		vars:   make(map[*sem.Object]VReg),
		arrays: make(map[*sem.Object]string),
	}
	lw.cur = lw.f.Entry()

	if fn.Sig != nil {
		if b, ok := fn.Sig.Result.(*types.Basic); ok {
			lw.f.ResultKind = b.Kind
		}
	}

	// Bind parameters and locals. Parameters come first in the locals list
	// (declaration order); scalars map to fixed vregs, arrays to data-memory
	// symbols.
	for _, obj := range info.Locals[fn] {
		switch t := obj.Type.(type) {
		case *types.Basic:
			v := lw.f.NewVReg(t.Kind)
			lw.vars[obj] = v
			if obj.Kind == sem.ParamObj {
				lw.f.Params = append(lw.f.Params, v)
			} else {
				// Locals start at zero, like the cell's cleared data memory.
				lw.emit(Instr{Op: zeroConstOp(t.Kind), Kind: t.Kind, Dst: v})
			}
		case *types.Array:
			sym := fmt.Sprintf("%s$%d", obj.Name, len(lw.f.Arrays))
			lw.arrays[obj] = sym
			ek := types.Float
			if b, ok := t.ScalarElem().(*types.Basic); ok {
				ek = b.Kind
			}
			lw.f.Arrays = append(lw.f.Arrays, ArrayVar{Sym: sym, Words: t.TotalLen(), Kind: ek})
		}
	}

	if err := lw.block(fn.Body); err != nil {
		return nil, err
	}
	// Fall off the end of a void function: implicit return.
	if lw.cur.Term() == nil {
		lw.emit(Instr{Op: Ret})
	}
	lw.f.RemoveUnreachable()
	if err := lw.f.Validate(); err != nil {
		return nil, fmt.Errorf("lowering %s produced invalid IR: %w", fn.Name, err)
	}
	return lw.f, nil
}

func zeroConstOp(k types.Kind) Op {
	if k == types.Float {
		return ConstF
	}
	return ConstI
}

type loopTargets struct {
	cont *Block // continue target (loop increment / header)
	brk  *Block // break target (loop exit)
}

type lowerer struct {
	f      *Func
	info   *sem.Info
	cur    *Block
	vars   map[*sem.Object]VReg
	arrays map[*sem.Object]string
	loops  []loopTargets
}

func (lw *lowerer) emit(in Instr) {
	if lw.cur.Term() != nil {
		// Statements after a terminator are unreachable; collect them in a
		// detached block that RemoveUnreachable deletes.
		lw.cur = lw.f.NewBlock()
	}
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

// terminate emits a terminator and switches to a new current block.
func (lw *lowerer) jumpTo(b *Block) {
	if lw.cur.Term() == nil {
		lw.emit(Instr{Op: Jmp, Then: b})
	}
}

func (lw *lowerer) condBr(cond VReg, then, els *Block) {
	if lw.cur.Term() == nil {
		lw.emit(Instr{Op: CondBr, A: cond, Then: then, Else: els})
	}
}

func (lw *lowerer) use(b *Block) { lw.cur = b }

func exprKind(e ast.Expr) types.Kind {
	if b, ok := e.Type().(*types.Basic); ok {
		return b.Kind
	}
	return types.Invalid
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) block(b *ast.Block) error {
	for _, s := range b.Stmts {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.Block:
		return lw.block(s)
	case *ast.VarDecl:
		if s.Init == nil {
			return nil
		}
		v, err := lw.expr(s.Init)
		if err != nil {
			return err
		}
		obj := lw.objForDecl(s)
		if obj == nil {
			return fmt.Errorf("no object for declaration of %s", s.Name)
		}
		lw.emit(Instr{Op: Mov, Kind: exprKind(s.Init), Dst: lw.vars[obj], A: v})
		return nil
	case *ast.Assign:
		v, err := lw.expr(s.RHS)
		if err != nil {
			return err
		}
		return lw.store(s.LHS, v)
	case *ast.If:
		return lw.ifStmt(s)
	case *ast.While:
		return lw.whileStmt(s)
	case *ast.For:
		return lw.forStmt(s)
	case *ast.Return:
		if s.Value == nil {
			lw.emit(Instr{Op: Ret})
			return nil
		}
		v, err := lw.expr(s.Value)
		if err != nil {
			return err
		}
		lw.emit(Instr{Op: Ret, A: v, Kind: exprKind(s.Value)})
		return nil
	case *ast.ExprStmt:
		_, err := lw.expr(s.X)
		return err
	case *ast.Receive:
		k := exprKind(s.LHS)
		dst := lw.f.NewVReg(k)
		lw.emit(Instr{Op: Recv, Kind: k, Dst: dst, Sym: s.Chan})
		return lw.store(s.LHS, dst)
	case *ast.Send:
		v, err := lw.expr(s.Value)
		if err != nil {
			return err
		}
		lw.emit(Instr{Op: Send, Kind: exprKind(s.Value), A: v, Sym: s.Chan})
		return nil
	case *ast.Break:
		if len(lw.loops) == 0 {
			return fmt.Errorf("break outside loop escaped the checker")
		}
		lw.jumpTo(lw.loops[len(lw.loops)-1].brk)
		return nil
	case *ast.Continue:
		if len(lw.loops) == 0 {
			return fmt.Errorf("continue outside loop escaped the checker")
		}
		lw.jumpTo(lw.loops[len(lw.loops)-1].cont)
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (lw *lowerer) objForDecl(d *ast.VarDecl) *sem.Object {
	for obj := range lw.vars {
		if obj.Decl == d {
			return obj
		}
	}
	for obj := range lw.arrays {
		if obj.Decl == d {
			return obj
		}
	}
	return nil
}

func (lw *lowerer) ifStmt(s *ast.If) error {
	thenB := lw.f.NewBlock()
	exitB := lw.f.NewBlock()
	elseB := exitB
	if s.Else != nil {
		elseB = lw.f.NewBlock()
	}
	cond, err := lw.expr(s.Cond)
	if err != nil {
		return err
	}
	lw.condBr(cond, thenB, elseB)

	lw.use(thenB)
	if err := lw.block(s.Then); err != nil {
		return err
	}
	lw.jumpTo(exitB)

	if s.Else != nil {
		lw.use(elseB)
		if err := lw.stmt(s.Else); err != nil {
			return err
		}
		lw.jumpTo(exitB)
	}
	lw.use(exitB)
	return nil
}

func (lw *lowerer) whileStmt(s *ast.While) error {
	header := lw.f.NewBlock()
	body := lw.f.NewBlock()
	exit := lw.f.NewBlock()

	lw.jumpTo(header)
	lw.use(header)
	cond, err := lw.expr(s.Cond)
	if err != nil {
		return err
	}
	lw.condBr(cond, body, exit)

	lw.loops = append(lw.loops, loopTargets{cont: header, brk: exit})
	lw.use(body)
	if err := lw.block(s.Body); err != nil {
		return err
	}
	lw.jumpTo(header)
	lw.loops = lw.loops[:len(lw.loops)-1]

	lw.use(exit)
	return nil
}

func (lw *lowerer) forStmt(s *ast.For) error {
	obj := lw.info.Uses[s.Var]
	if obj == nil {
		return fmt.Errorf("unresolved loop variable %s", s.Var.Name)
	}
	iv, ok := lw.vars[obj]
	if !ok {
		return fmt.Errorf("loop variable %s has no vreg", s.Var.Name)
	}

	lo, err := lw.expr(s.Lo)
	if err != nil {
		return err
	}
	hi, err := lw.expr(s.Hi)
	if err != nil {
		return err
	}
	// Copy the bound into a loop-invariant temporary in case the source
	// expression names a variable mutated in the body.
	hiT := lw.f.NewVReg(types.Int)
	lw.emit(Instr{Op: Mov, Kind: types.Int, Dst: hiT, A: hi})

	stepConst := int64(1)
	stepKnown := true
	var stepT VReg
	if s.Step != nil {
		if lit, ok := s.Step.(*ast.IntLit); ok {
			stepConst = lit.Value
		} else if u, ok := s.Step.(*ast.UnaryExpr); ok {
			if lit, ok := u.X.(*ast.IntLit); ok {
				stepConst = -lit.Value
			} else {
				stepKnown = false
			}
		} else {
			stepKnown = false
		}
		sv, err := lw.expr(s.Step)
		if err != nil {
			return err
		}
		stepT = lw.f.NewVReg(types.Int)
		lw.emit(Instr{Op: Mov, Kind: types.Int, Dst: stepT, A: sv})
	} else {
		stepT = lw.f.NewVReg(types.Int)
		lw.emit(Instr{Op: ConstI, Kind: types.Int, Dst: stepT, ConstI: 1})
	}

	lw.emit(Instr{Op: Mov, Kind: types.Int, Dst: iv, A: lo})

	header := lw.f.NewBlock()
	body := lw.f.NewBlock()
	incr := lw.f.NewBlock()
	exit := lw.f.NewBlock()

	lw.jumpTo(header)
	lw.use(header)
	if stepKnown {
		cmpOp := CmpLE
		if stepConst < 0 {
			cmpOp = CmpGE
		}
		c := lw.f.NewVReg(types.Bool)
		lw.emit(Instr{Op: cmpOp, Kind: types.Int, Dst: c, A: iv, B: hiT})
		lw.condBr(c, body, exit)
	} else {
		// Direction depends on the runtime sign of the step:
		// if step > 0 then continue while i <= hi else while i >= hi.
		posHdr := lw.f.NewBlock()
		negHdr := lw.f.NewBlock()
		zero := lw.f.NewVReg(types.Int)
		lw.emit(Instr{Op: ConstI, Kind: types.Int, Dst: zero})
		sp := lw.f.NewVReg(types.Bool)
		lw.emit(Instr{Op: CmpGT, Kind: types.Int, Dst: sp, A: stepT, B: zero})
		lw.condBr(sp, posHdr, negHdr)
		lw.use(posHdr)
		c1 := lw.f.NewVReg(types.Bool)
		lw.emit(Instr{Op: CmpLE, Kind: types.Int, Dst: c1, A: iv, B: hiT})
		lw.condBr(c1, body, exit)
		lw.use(negHdr)
		c2 := lw.f.NewVReg(types.Bool)
		lw.emit(Instr{Op: CmpGE, Kind: types.Int, Dst: c2, A: iv, B: hiT})
		lw.condBr(c2, body, exit)
	}

	lw.loops = append(lw.loops, loopTargets{cont: incr, brk: exit})
	lw.use(body)
	if err := lw.block(s.Body); err != nil {
		return err
	}
	lw.jumpTo(incr)
	lw.loops = lw.loops[:len(lw.loops)-1]

	lw.use(incr)
	lw.emit(Instr{Op: Add, Kind: types.Int, Dst: iv, A: iv, B: stepT})
	lw.jumpTo(header)

	lw.use(exit)
	return nil
}

// store writes v to an lvalue.
func (lw *lowerer) store(lhs ast.Expr, v VReg) error {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := lw.info.Uses[lhs]
		if obj == nil {
			return fmt.Errorf("unresolved identifier %s", lhs.Name)
		}
		lw.emit(Instr{Op: Mov, Kind: exprKind(lhs), Dst: lw.vars[obj], A: v})
		return nil
	case *ast.IndexExpr:
		sym, idx, ek, err := lw.flatIndex(lhs)
		if err != nil {
			return err
		}
		lw.emit(Instr{Op: Store, Kind: ek, Sym: sym, A: idx, B: v})
		return nil
	}
	return fmt.Errorf("bad assignment target %T", lhs)
}

// flatIndex lowers a (possibly multi-dimensional) index expression to the
// array symbol and a flat element index in a vreg.
func (lw *lowerer) flatIndex(e *ast.IndexExpr) (sym string, idx VReg, elemKind types.Kind, err error) {
	var idxs []ast.Expr
	x := ast.Expr(e)
	for {
		ie, ok := x.(*ast.IndexExpr)
		if !ok {
			break
		}
		idxs = append([]ast.Expr{ie.Index}, idxs...)
		x = ie.X
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", None, types.Invalid, fmt.Errorf("indexed expression is not a variable")
	}
	obj := lw.info.Uses[id]
	if obj == nil {
		return "", None, types.Invalid, fmt.Errorf("unresolved identifier %s", id.Name)
	}
	sym, ok = lw.arrays[obj]
	if !ok {
		return "", None, types.Invalid, fmt.Errorf("%s is not an array", id.Name)
	}
	arr := obj.Type.(*types.Array)
	if b, ok := arr.ScalarElem().(*types.Basic); ok {
		elemKind = b.Kind
	}

	// off = ((i0 * d1 + i1) * d2 + i2) ...
	t := types.Type(arr)
	var off VReg
	for n, ie := range idxs {
		at := t.(*types.Array)
		iv, err := lw.expr(ie)
		if err != nil {
			return "", None, types.Invalid, err
		}
		if n == 0 {
			off = iv
		} else {
			dim := lw.f.NewVReg(types.Int)
			lw.emit(Instr{Op: ConstI, Kind: types.Int, Dst: dim, ConstI: int64(at.Len)})
			scaled := lw.f.NewVReg(types.Int)
			lw.emit(Instr{Op: Mul, Kind: types.Int, Dst: scaled, A: off, B: dim})
			sum := lw.f.NewVReg(types.Int)
			lw.emit(Instr{Op: Add, Kind: types.Int, Dst: sum, A: scaled, B: iv})
			off = sum
		}
		t = at.Elem
	}
	return sym, off, elemKind, nil
}

// ---------------------------------------------------------------------------
// Expressions

func (lw *lowerer) expr(e ast.Expr) (VReg, error) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := lw.info.Uses[e]
		if obj == nil {
			return None, fmt.Errorf("unresolved identifier %s", e.Name)
		}
		v, ok := lw.vars[obj]
		if !ok {
			return None, fmt.Errorf("array %s used as scalar", e.Name)
		}
		return v, nil
	case *ast.IntLit:
		v := lw.f.NewVReg(types.Int)
		lw.emit(Instr{Op: ConstI, Kind: types.Int, Dst: v, ConstI: e.Value})
		return v, nil
	case *ast.FloatLit:
		v := lw.f.NewVReg(types.Float)
		lw.emit(Instr{Op: ConstF, Kind: types.Float, Dst: v, ConstF: e.Value})
		return v, nil
	case *ast.BoolLit:
		v := lw.f.NewVReg(types.Bool)
		ci := int64(0)
		if e.Value {
			ci = 1
		}
		lw.emit(Instr{Op: ConstI, Kind: types.Bool, Dst: v, ConstI: ci})
		return v, nil
	case *ast.BinaryExpr:
		return lw.binary(e)
	case *ast.UnaryExpr:
		x, err := lw.expr(e.X)
		if err != nil {
			return None, err
		}
		k := exprKind(e)
		v := lw.f.NewVReg(k)
		op := Neg
		if e.Op.String() == "!" {
			op = Not
		}
		lw.emit(Instr{Op: op, Kind: k, Dst: v, A: x})
		return v, nil
	case *ast.CallExpr:
		return lw.call(e)
	case *ast.IndexExpr:
		sym, idx, ek, err := lw.flatIndex(e)
		if err != nil {
			return None, err
		}
		v := lw.f.NewVReg(ek)
		lw.emit(Instr{Op: Load, Kind: ek, Dst: v, Sym: sym, A: idx})
		return v, nil
	}
	return None, fmt.Errorf("unknown expression %T", e)
}

var binOps = map[string]Op{
	"+": Add, "-": Sub, "*": Mul, "/": Div, "%": Rem,
	"==": CmpEQ, "!=": CmpNE, "<": CmpLT, "<=": CmpLE, ">": CmpGT, ">=": CmpGE,
}

func (lw *lowerer) binary(e *ast.BinaryExpr) (VReg, error) {
	opStr := e.Op.String()
	// Short-circuit && and || lower to control flow, preserving the
	// reference interpreter's lazy right-operand evaluation.
	if opStr == "&&" || opStr == "||" {
		res := lw.f.NewVReg(types.Bool)
		rhsB := lw.f.NewBlock()
		shortB := lw.f.NewBlock()
		done := lw.f.NewBlock()

		x, err := lw.expr(e.X)
		if err != nil {
			return None, err
		}
		if opStr == "&&" {
			lw.condBr(x, rhsB, shortB)
		} else {
			lw.condBr(x, shortB, rhsB)
		}

		lw.use(rhsB)
		y, err := lw.expr(e.Y)
		if err != nil {
			return None, err
		}
		lw.emit(Instr{Op: Mov, Kind: types.Bool, Dst: res, A: y})
		lw.jumpTo(done)

		lw.use(shortB)
		short := int64(0)
		if opStr == "||" {
			short = 1
		}
		lw.emit(Instr{Op: ConstI, Kind: types.Bool, Dst: res, ConstI: short})
		lw.jumpTo(done)

		lw.use(done)
		return res, nil
	}

	x, err := lw.expr(e.X)
	if err != nil {
		return None, err
	}
	y, err := lw.expr(e.Y)
	if err != nil {
		return None, err
	}
	op, ok := binOps[opStr]
	if !ok {
		return None, fmt.Errorf("unknown binary operator %s", opStr)
	}
	// For comparisons the instruction Kind is the operand kind, not the
	// boolean result kind.
	opndKind := exprKind(e.X)
	resKind := exprKind(e)
	v := lw.f.NewVReg(resKind)
	lw.emit(Instr{Op: op, Kind: opndKind, Dst: v, A: x, B: y})
	return v, nil
}

func (lw *lowerer) call(e *ast.CallExpr) (VReg, error) {
	args := make([]VReg, len(e.Args))
	for i, a := range e.Args {
		v, err := lw.expr(a)
		if err != nil {
			return None, err
		}
		args[i] = v
	}

	if e.Builtin != "" {
		return lw.builtin(e, args)
	}

	k := exprKind(e)
	var dst VReg
	if k != types.Void && k != types.Invalid {
		dst = lw.f.NewVReg(k)
	}
	lw.emit(Instr{Op: Call, Kind: k, Dst: dst, Sym: e.Fun.Name, Args: args})
	return dst, nil
}

func (lw *lowerer) builtin(e *ast.CallExpr, args []VReg) (VReg, error) {
	k := exprKind(e)
	v := lw.f.NewVReg(k)
	argKind := exprKind(e.Args[0])
	switch e.Builtin {
	case "sqrt":
		lw.emit(Instr{Op: Sqrt, Kind: types.Float, Dst: v, A: args[0]})
	case "abs":
		lw.emit(Instr{Op: Abs, Kind: k, Dst: v, A: args[0]})
	case "min":
		lw.emit(Instr{Op: Min, Kind: k, Dst: v, A: args[0], B: args[1]})
	case "max":
		lw.emit(Instr{Op: Max, Kind: k, Dst: v, A: args[0], B: args[1]})
	case "float":
		if argKind == types.Float {
			lw.emit(Instr{Op: Mov, Kind: types.Float, Dst: v, A: args[0]})
		} else {
			lw.emit(Instr{Op: CvtIF, Kind: types.Float, Dst: v, A: args[0]})
		}
	case "int":
		if argKind == types.Int {
			lw.emit(Instr{Op: Mov, Kind: types.Int, Dst: v, A: args[0]})
		} else {
			lw.emit(Instr{Op: CvtFI, Kind: types.Int, Dst: v, A: args[0]})
		}
	default:
		return None, fmt.Errorf("unknown builtin %s", e.Builtin)
	}
	return v, nil
}

package ir

import "repro/internal/types"

// Clone returns a deep copy of f: fresh blocks, instructions, operand
// slices, and register table, with branch targets and CFG edges remapped to
// the copied blocks. The copy shares nothing mutable with the original, so
// optimization and code generation on the clone leave the original intact —
// this is what lets the parallel compiler cache one lowered flowgraph per
// function and still keep every compilation isolated.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:       f.Name,
		Section:    f.Section,
		ResultKind: f.ResultKind,
		Params:     append([]VReg(nil), f.Params...),
		Arrays:     append([]ArrayVar(nil), f.Arrays...),
		kinds:      append([]types.Kind(nil), f.kinds...),
	}
	blockMap := make(map[*Block]*Block, len(f.Blocks))
	nf.Blocks = make([]*Block, len(f.Blocks))
	for i, b := range f.Blocks {
		nb := &Block{ID: b.ID}
		nf.Blocks[i] = nb
		blockMap[b] = nb
	}
	for i, b := range f.Blocks {
		nb := nf.Blocks[i]
		nb.Instrs = append([]Instr(nil), b.Instrs...)
		for j := range nb.Instrs {
			in := &nb.Instrs[j]
			if len(in.Args) > 0 {
				in.Args = append([]VReg(nil), in.Args...)
			}
			if in.Then != nil {
				in.Then = blockMap[in.Then]
			}
			if in.Else != nil {
				in.Else = blockMap[in.Else]
			}
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, blockMap[p])
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, blockMap[s])
		}
	}
	return nf
}

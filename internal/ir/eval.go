package ir

import (
	"fmt"
	"math"

	"repro/internal/types"
)

// This file implements a direct IR evaluator. It exists purely for testing:
// optimization passes must not change the observable behaviour of a
// function, and the evaluator lets tests compare IR semantics before and
// after each pass, and against the AST reference interpreter.

// EvalValue is a dynamic value in the IR evaluator.
type EvalValue struct {
	K types.Kind
	I int64
	F float64
}

// EvalInt and EvalFloat construct evaluator values.
func EvalInt(v int64) EvalValue     { return EvalValue{K: types.Int, I: v} }
func EvalFloat(v float64) EvalValue { return EvalValue{K: types.Float, F: v} }

// AsFloat widens to float64.
func (v EvalValue) AsFloat() float64 {
	if v.K == types.Float {
		return v.F
	}
	return float64(v.I)
}

// Truthy interprets the value as a boolean word.
func (v EvalValue) Truthy() bool {
	if v.K == types.Float {
		return v.F != 0
	}
	return v.I != 0
}

// EvalEnv supplies the context for evaluating a function.
type EvalEnv struct {
	// Funcs resolves Call targets (functions of the same section).
	Funcs map[string]*Func
	// In is the X input stream; Out accumulates the Y output stream.
	In  []EvalValue
	Out []EvalValue
	// MaxSteps bounds execution (default 10M).
	MaxSteps int

	steps int
}

// EvalFunc runs fn with the given arguments and returns its result (ok
// reports whether the function returned a value).
func (env *EvalEnv) EvalFunc(fn *Func, args []EvalValue) (EvalValue, bool, error) {
	if env.MaxSteps == 0 {
		env.MaxSteps = 10_000_000
	}
	if len(args) != len(fn.Params) {
		return EvalValue{}, false, fmt.Errorf("%s: got %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	regs := make([]EvalValue, fn.NumVRegs()+1)
	for i, p := range fn.Params {
		regs[p] = args[i]
	}
	arrays := make(map[string][]EvalValue, len(fn.Arrays))
	for _, a := range fn.Arrays {
		elems := make([]EvalValue, a.Words)
		for i := range elems {
			elems[i] = EvalValue{K: a.Kind}
		}
		arrays[a.Sym] = elems
	}

	b := fn.Entry()
	for {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			env.steps++
			if env.steps > env.MaxSteps {
				return EvalValue{}, false, fmt.Errorf("%s: step limit exceeded", fn.Name)
			}
			next, ret, done, err := env.step(fn, in, regs, arrays)
			if err != nil {
				return EvalValue{}, false, err
			}
			if done {
				return ret, in.A != None, nil
			}
			if next != nil {
				b = next
				break
			}
		}
	}
}

func (env *EvalEnv) step(fn *Func, in *Instr, regs []EvalValue, arrays map[string][]EvalValue) (next *Block, ret EvalValue, done bool, err error) {
	get := func(r VReg) EvalValue { return regs[r] }
	set := func(r VReg, v EvalValue) {
		if r != None {
			regs[r] = v
		}
	}

	switch in.Op {
	case Nop:
	case ConstI:
		set(in.Dst, EvalValue{K: in.Kind, I: in.ConstI})
	case ConstF:
		set(in.Dst, EvalValue{K: types.Float, F: in.ConstF})
	case Mov:
		set(in.Dst, get(in.A))
	case Add, Sub, Mul, Div, Rem, Min, Max:
		v, e := arith(in.Op, in.Kind, get(in.A), get(in.B))
		if e != nil {
			return nil, EvalValue{}, false, fmt.Errorf("%s: %w", fn.Name, e)
		}
		set(in.Dst, v)
	case Neg:
		x := get(in.A)
		if in.Kind == types.Float {
			set(in.Dst, EvalFloat(-x.F))
		} else {
			set(in.Dst, EvalValue{K: in.Kind, I: -x.I})
		}
	case Abs:
		x := get(in.A)
		if in.Kind == types.Float {
			set(in.Dst, EvalFloat(math.Abs(x.F)))
		} else {
			v := x.I
			if v < 0 {
				v = -v
			}
			set(in.Dst, EvalValue{K: in.Kind, I: v})
		}
	case Sqrt:
		x := get(in.A).AsFloat()
		if x < 0 {
			return nil, EvalValue{}, false, fmt.Errorf("%s: sqrt of negative", fn.Name)
		}
		set(in.Dst, EvalFloat(math.Sqrt(x)))
	case Not:
		x := get(in.A)
		out := EvalValue{K: types.Bool}
		if !x.Truthy() {
			out.I = 1
		}
		set(in.Dst, out)
	case CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE:
		set(in.Dst, compare(in.Op, in.Kind, get(in.A), get(in.B)))
	case CvtIF:
		set(in.Dst, EvalFloat(float64(get(in.A).I)))
	case CvtFI:
		set(in.Dst, EvalInt(int64(get(in.A).F)))
	case Load:
		arr, ok := arrays[in.Sym]
		if !ok {
			return nil, EvalValue{}, false, fmt.Errorf("%s: unknown array %s", fn.Name, in.Sym)
		}
		idx := get(in.A).I
		if idx < 0 || idx >= int64(len(arr)) {
			return nil, EvalValue{}, false, fmt.Errorf("%s: load index %d out of range [0,%d)", fn.Name, idx, len(arr))
		}
		set(in.Dst, arr[idx])
	case Store:
		arr, ok := arrays[in.Sym]
		if !ok {
			return nil, EvalValue{}, false, fmt.Errorf("%s: unknown array %s", fn.Name, in.Sym)
		}
		idx := get(in.A).I
		if idx < 0 || idx >= int64(len(arr)) {
			return nil, EvalValue{}, false, fmt.Errorf("%s: store index %d out of range [0,%d)", fn.Name, idx, len(arr))
		}
		arr[idx] = get(in.B)
	case Recv:
		if len(env.In) == 0 {
			return nil, EvalValue{}, false, fmt.Errorf("%s: receive on empty channel", fn.Name)
		}
		v := env.In[0]
		env.In = env.In[1:]
		// Convert the channel word to the receiving kind.
		if in.Kind == types.Int && v.K == types.Float {
			v = EvalInt(int64(v.F))
		} else if in.Kind == types.Float && v.K == types.Int {
			v = EvalFloat(float64(v.I))
		}
		set(in.Dst, v)
	case Send:
		env.Out = append(env.Out, get(in.A))
	case Call:
		callee, ok := env.Funcs[in.Sym]
		if !ok {
			return nil, EvalValue{}, false, fmt.Errorf("%s: call of unknown function %s", fn.Name, in.Sym)
		}
		args := make([]EvalValue, len(in.Args))
		for i, a := range in.Args {
			args[i] = get(a)
		}
		rv, _, err := env.EvalFunc(callee, args)
		if err != nil {
			return nil, EvalValue{}, false, err
		}
		set(in.Dst, rv)
	case Ret:
		if in.A != None {
			return nil, get(in.A), true, nil
		}
		return nil, EvalValue{}, true, nil
	case Jmp:
		return in.Then, EvalValue{}, false, nil
	case CondBr:
		if get(in.A).Truthy() {
			return in.Then, EvalValue{}, false, nil
		}
		return in.Else, EvalValue{}, false, nil
	default:
		return nil, EvalValue{}, false, fmt.Errorf("%s: unknown op %s", fn.Name, in.Op)
	}
	return nil, EvalValue{}, false, nil
}

func arith(op Op, k types.Kind, x, y EvalValue) (EvalValue, error) {
	if k == types.Float {
		a, b := x.AsFloat(), y.AsFloat()
		switch op {
		case Add:
			return EvalFloat(a + b), nil
		case Sub:
			return EvalFloat(a - b), nil
		case Mul:
			return EvalFloat(a * b), nil
		case Div:
			return EvalFloat(a / b), nil
		case Min:
			return EvalFloat(math.Min(a, b)), nil
		case Max:
			return EvalFloat(math.Max(a, b)), nil
		}
		return EvalValue{}, fmt.Errorf("bad float op %s", op)
	}
	a, b := x.I, y.I
	switch op {
	case Add:
		return EvalValue{K: k, I: a + b}, nil
	case Sub:
		return EvalValue{K: k, I: a - b}, nil
	case Mul:
		return EvalValue{K: k, I: a * b}, nil
	case Div:
		if b == 0 {
			return EvalValue{}, fmt.Errorf("integer division by zero")
		}
		return EvalValue{K: k, I: a / b}, nil
	case Rem:
		if b == 0 {
			return EvalValue{}, fmt.Errorf("integer modulo by zero")
		}
		return EvalValue{K: k, I: a % b}, nil
	case Min:
		if a < b {
			return EvalValue{K: k, I: a}, nil
		}
		return EvalValue{K: k, I: b}, nil
	case Max:
		if a > b {
			return EvalValue{K: k, I: a}, nil
		}
		return EvalValue{K: k, I: b}, nil
	}
	return EvalValue{}, fmt.Errorf("bad int op %s", op)
}

func compare(op Op, k types.Kind, x, y EvalValue) EvalValue {
	var r bool
	if k == types.Float {
		a, b := x.AsFloat(), y.AsFloat()
		switch op {
		case CmpEQ:
			r = a == b
		case CmpNE:
			r = a != b
		case CmpLT:
			r = a < b
		case CmpLE:
			r = a <= b
		case CmpGT:
			r = a > b
		case CmpGE:
			r = a >= b
		}
	} else {
		a, b := x.I, y.I
		switch op {
		case CmpEQ:
			r = a == b
		case CmpNE:
			r = a != b
		case CmpLT:
			r = a < b
		case CmpLE:
			r = a <= b
		case CmpGT:
			r = a > b
		case CmpGE:
			r = a >= b
		}
	}
	out := EvalValue{K: types.Bool}
	if r {
		out.I = 1
	}
	return out
}

package ir

// This file implements the "global dependencies" analyses of compiler phase
// 2 that the scheduler relies on: reverse postorder, dominators, and natural
// loop discovery.

// ReversePostorder returns the blocks of f in reverse postorder of a
// depth-first traversal from the entry. Unreachable blocks are excluded.
func ReversePostorder(f *Func) []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate dominator of every reachable block using
// the Cooper–Harvey–Kennedy iterative algorithm. The entry block's immediate
// dominator is itself.
func Dominators(f *Func) map[*Block]*Block {
	rpo := ReversePostorder(f)
	index := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*Block]*Block, len(rpo))
	entry := f.Entry()
	idom[entry] = entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom map.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// Loop is a natural loop: the set of blocks of a back edge tail→Head.
type Loop struct {
	Head   *Block
	Blocks map[*Block]bool
	// Depth is the nesting depth (1 = outermost). Inner reports whether the
	// loop contains no other loop.
	Depth int
	Inner bool
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// NumBlocks returns the number of blocks in the loop.
func (l *Loop) NumBlocks() int { return len(l.Blocks) }

// NaturalLoops finds all natural loops of f. Loops sharing a header are
// merged. The result is ordered outermost-first by nesting depth.
func NaturalLoops(f *Func) []*Loop {
	idom := Dominators(f)
	byHead := make(map[*Block]*Loop)

	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !Dominates(idom, s, b) {
				continue
			}
			// back edge b -> s
			loop := byHead[s]
			if loop == nil {
				loop = &Loop{Head: s, Blocks: map[*Block]bool{s: true}}
				byHead[s] = loop
			}
			// Walk predecessors backwards from the tail until the header.
			var stack []*Block
			if !loop.Blocks[b] {
				loop.Blocks[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range x.Preds {
					if !loop.Blocks[p] {
						loop.Blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}

	loops := make([]*Loop, 0, len(byHead))
	for _, l := range byHead {
		loops = append(loops, l)
	}
	// Depth: number of loops containing this loop's head; Inner: contains no
	// other loop's head besides its own.
	for _, l := range loops {
		l.Depth = 0
		l.Inner = true
		for _, o := range loops {
			if o.Blocks[l.Head] {
				l.Depth++
			}
			if o != l && l.Blocks[o.Head] {
				l.Inner = false
			}
		}
	}
	// Order outermost-first, then by header ID for determinism.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			li, lj := loops[i], loops[j]
			if lj.Depth < li.Depth || (lj.Depth == li.Depth && lj.Head.ID < li.Head.ID) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	return loops
}

// LoopDepths returns, for every block, the number of loops containing it.
// Blocks outside any loop have depth 0.
func LoopDepths(f *Func) map[*Block]int {
	depth := make(map[*Block]int, len(f.Blocks))
	for _, l := range NaturalLoops(f) {
		for b := range l.Blocks {
			depth[b]++
		}
	}
	return depth
}

package ir

import (
	"fmt"

	"repro/internal/types"
)

// InlineCalls replaces every Call in f with the body of the callee, looked
// up in funcs. Because the language permits calls only to previously
// declared functions of the same section (no recursion), repeated inlining
// terminates; callers should inline functions in declaration order so each
// callee is already call-free.
//
// The paper's discussion (§5.1) singles out procedure inlining as the
// optimization that both improves cell code quality and enlarges functions,
// which in turn improves the parallel compiler's speedup. Inlining here also
// leaves phase 3 with straight call-free flowgraphs to schedule.
func InlineCalls(f *Func, funcs map[string]*Func) error {
	for rounds := 0; ; rounds++ {
		if rounds > 64 {
			return fmt.Errorf("%s: inlining did not terminate (recursion?)", f.Name)
		}
		site := findCall(f)
		if site == nil {
			f.RemoveUnreachable()
			return f.Validate()
		}
		callee, ok := funcs[site.instr.Sym]
		if !ok {
			return fmt.Errorf("%s: call of unknown function %s", f.Name, site.instr.Sym)
		}
		if callee == f {
			return fmt.Errorf("%s: self call cannot be inlined", f.Name)
		}
		inlineOne(f, site, callee)
	}
}

type callSite struct {
	block *Block
	index int
	instr *Instr
}

func findCall(f *Func) *callSite {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == Call {
				return &callSite{block: b, index: i, instr: &b.Instrs[i]}
			}
		}
	}
	return nil
}

// inlineOne splices a copy of callee into f at the call site.
func inlineOne(f *Func, site *callSite, callee *Func) {
	// Map callee vregs into fresh caller vregs.
	regMap := make([]VReg, callee.NumVRegs()+1)
	for v := 1; v <= callee.NumVRegs(); v++ {
		regMap[v] = f.NewVReg(callee.KindOf(VReg(v)))
	}
	remap := func(r VReg) VReg {
		if r == None {
			return None
		}
		return regMap[r]
	}

	// Rename callee arrays uniquely within the caller.
	arrMap := make(map[string]string, len(callee.Arrays))
	for _, a := range callee.Arrays {
		sym := fmt.Sprintf("%s.%s.%d", callee.Name, a.Sym, len(f.Arrays))
		arrMap[a.Sym] = sym
		f.Arrays = append(f.Arrays, ArrayVar{Sym: sym, Words: a.Words, Kind: a.Kind})
	}

	// Copy callee blocks.
	blockMap := make(map[*Block]*Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		blockMap[cb] = f.NewBlock()
	}
	// The continuation receives everything after the call.
	cont := f.NewBlock()
	cont.Instrs = append(cont.Instrs, site.block.Instrs[site.index+1:]...)

	call := *site.instr // copy before truncation invalidates the pointer

	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for i := range cb.Instrs {
			in := cb.Instrs[i] // copy
			in.Dst = remap(in.Dst)
			in.A = remap(in.A)
			in.B = remap(in.B)
			if len(in.Args) > 0 {
				args := make([]VReg, len(in.Args))
				for k, a := range in.Args {
					args[k] = remap(a)
				}
				in.Args = args
			}
			if in.Then != nil {
				in.Then = blockMap[in.Then]
			}
			if in.Else != nil {
				in.Else = blockMap[in.Else]
			}
			if in.Op == Load || in.Op == Store {
				in.Sym = arrMap[in.Sym]
			}
			if in.Op == Ret {
				// Return becomes: move result into the call's destination,
				// then jump to the continuation.
				if call.Dst != None && in.A != None {
					nb.Instrs = append(nb.Instrs, Instr{Op: Mov, Kind: call.Kind, Dst: call.Dst, A: in.A})
				}
				in = Instr{Op: Jmp, Then: cont}
			}
			nb.Instrs = append(nb.Instrs, in)
		}
	}

	// Rewrite the call site: argument moves, then jump into the callee copy.
	site.block.Instrs = site.block.Instrs[:site.index]
	for i, p := range callee.Params {
		site.block.Instrs = append(site.block.Instrs, Instr{
			Op: Mov, Kind: callee.KindOf(p), Dst: remap(p), A: call.Args[i],
		})
	}
	site.block.Instrs = append(site.block.Instrs, Instr{Op: Jmp, Then: blockMap[callee.Entry()]})

	f.RecomputeEdges()
}

// HasCalls reports whether f still contains Call instructions.
func HasCalls(f *Func) bool { return findCall(f) != nil }

// KindOfResult is a helper for tests: the declared result kind.
func (f *Func) KindOfResult() types.Kind { return f.ResultKind }

package ir

import (
	"math"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/types"
)

// front parses and checks a module.
func front(t *testing.T, src string) (*ast.Module, *sem.Info) {
	t.Helper()
	var bag source.DiagBag
	m := parser.Parse("t.w2", []byte(src), &bag)
	info := sem.Check(m, &bag)
	if bag.HasErrors() {
		t.Fatalf("front-end errors:\n%s", bag.String())
	}
	return m, info
}

// lowerSection lowers all functions of the first section and returns them
// keyed by name.
func lowerSection(t *testing.T, src string) map[string]*Func {
	t.Helper()
	m, info := front(t, src)
	out := make(map[string]*Func)
	for _, fn := range m.Sections[0].Funcs {
		f, err := Lower(fn, info)
		if err != nil {
			t.Fatalf("lower %s: %v", fn.Name, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("invalid IR for %s: %v", fn.Name, err)
		}
		out[fn.Name] = f
	}
	return out
}

func sec(body string) string { return "module m\nsection 1 {\n" + body + "\n}\n" }

func TestLowerStraightLine(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(a: int, b: int): int {
    return (a + b) * (a - b);
}
`))
	f := funcs["f"]
	if len(f.Params) != 2 {
		t.Fatalf("params = %d, want 2", len(f.Params))
	}
	env := &EvalEnv{Funcs: funcs}
	v, ok, err := env.EvalFunc(f, []EvalValue{EvalInt(7), EvalInt(3)})
	if err != nil || !ok {
		t.Fatalf("eval: %v ok=%v", err, ok)
	}
	if v.I != 40 {
		t.Errorf("f(7,3) = %d, want 40", v.I)
	}
}

func TestLowerControlFlowShapes(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(n: int): int {
    var s: int = 0;
    var i: int;
    for i = 0 to n {
        if i % 2 == 0 {
            s = s + i;
        } else {
            s = s - 1;
        }
    }
    while s > 100 {
        s = s - 10;
    }
    return s;
}
`))
	f := funcs["f"]
	if len(f.Blocks) < 8 {
		t.Errorf("expected a rich CFG, got %d blocks", len(f.Blocks))
	}
	// Evaluate against the obvious Go model.
	model := func(n int64) int64 {
		s := int64(0)
		for i := int64(0); i <= n; i++ {
			if i%2 == 0 {
				s += i
			} else {
				s--
			}
		}
		for s > 100 {
			s -= 10
		}
		return s
	}
	env := &EvalEnv{Funcs: funcs}
	for _, n := range []int64{0, 1, 5, 30, 101} {
		v, _, err := env.EvalFunc(f, []EvalValue{EvalInt(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if v.I != model(n) {
			t.Errorf("f(%d) = %d, want %d", n, v.I, model(n))
		}
	}
}

func TestLowerShortCircuit(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(x: int): int {
    if x != 0 && 100 / x > 10 {
        return 1;
    }
    if x == 0 || 100 / x < 0 {
        return 2;
    }
    return 3;
}
`))
	env := &EvalEnv{Funcs: funcs}
	cases := map[int64]int64{0: 2, 5: 1, 50: 3, -5: 2}
	for x, want := range cases {
		v, _, err := env.EvalFunc(funcs["f"], []EvalValue{EvalInt(x)})
		if err != nil {
			t.Fatalf("f(%d): %v (short-circuit lowering must avoid division by zero)", x, err)
		}
		if v.I != want {
			t.Errorf("f(%d) = %d, want %d", x, v.I, want)
		}
	}
}

func TestLowerArraysAndCalls(t *testing.T) {
	funcs := lowerSection(t, sec(`
function weight(i: int): float {
    return float(i) * 0.5 + 1.0;
}
function f(n: int): float {
    var w: float[16];
    var i: int;
    var s: float = 0.0;
    for i = 0 to n - 1 {
        w[i] = weight(i);
    }
    for i = 0 to n - 1 {
        s = s + w[i];
    }
    return s;
}
`))
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(funcs["f"], []EvalValue{EvalInt(8)})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 8; i++ {
		want += float64(i)*0.5 + 1.0
	}
	if math.Abs(v.F-want) > 1e-12 {
		t.Errorf("f(8) = %g, want %g", v.F, want)
	}
}

func TestLowerMultiDimIndexing(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(): int {
    var g: int[4][5];
    var i: int; var j: int;
    for i = 0 to 3 {
        for j = 0 to 4 {
            g[i][j] = i * 10 + j;
        }
    }
    return g[2][3] * 100 + g[3][4];
}
`))
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(funcs["f"], nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 23*100+34 {
		t.Errorf("got %d, want %d", v.I, 23*100+34)
	}
}

func TestLowerStreams(t *testing.T) {
	funcs := lowerSection(t, `
module m (in xs: float[4], out ys: float[4])
section 1 {
    function cell() {
        var i: int;
        var v: float;
        for i = 0 to 3 {
            receive(X, v);
            send(Y, v * v);
        }
    }
}
`)
	env := &EvalEnv{
		Funcs: funcs,
		In:    []EvalValue{EvalFloat(1), EvalFloat(2), EvalFloat(3), EvalFloat(4)},
	}
	_, _, err := env.EvalFunc(funcs["cell"], nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 4, 9, 16}
	if len(env.Out) != 4 {
		t.Fatalf("got %d outputs, want 4", len(env.Out))
	}
	for i, w := range want {
		if env.Out[i].F != w {
			t.Errorf("out[%d] = %g, want %g", i, env.Out[i].F, w)
		}
	}
}

func TestLowerNegativeAndRuntimeSteps(t *testing.T) {
	funcs := lowerSection(t, sec(`
function down(): int {
    var s: int = 0;
    var i: int;
    for i = 5 to 1 step -1 {
        s = s * 10 + i;
    }
    return s;
}
function dyn(st: int): int {
    var s: int = 0;
    var i: int;
    for i = 0 to 10 step st {
        s = s + i;
    }
    return s;
}
`))
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(funcs["down"], nil)
	if err != nil || v.I != 54321 {
		t.Errorf("down() = %d (%v), want 54321", v.I, err)
	}
	v2, _, err := env.EvalFunc(funcs["dyn"], []EvalValue{EvalInt(3)})
	if err != nil || v2.I != 0+3+6+9 {
		t.Errorf("dyn(3) = %d (%v), want 18", v2.I, err)
	}
	// Negative runtime step with lo > hi runs downward.
	v3, _, err := env.EvalFunc(funcs["dyn"], []EvalValue{EvalInt(-4)})
	if err != nil || v3.I != 0 {
		t.Errorf("dyn(-4) = %d (%v), want 0 (0 to 10 downward exits immediately... runs once at i=0)", v3.I, err)
	}
}

func TestLoopBoundCapturedOnce(t *testing.T) {
	// Mutating the variable used as the bound inside the body must not
	// change the trip count.
	funcs := lowerSection(t, sec(`
function f(): int {
    var n: int = 5;
    var c: int = 0;
    var i: int;
    for i = 1 to n {
        n = 100;
        c = c + 1;
    }
    return c;
}
`))
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(funcs["f"], nil)
	if err != nil || v.I != 5 {
		t.Errorf("f() = %d (%v), want 5", v.I, err)
	}
}

func TestDominatorsAndLoops(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(n: int): int {
    var s: int = 0;
    var i: int; var j: int;
    for i = 0 to n {
        for j = 0 to n {
            s = s + 1;
        }
    }
    while s > 10 {
        s = s - 3;
    }
    return s;
}
`))
	f := funcs["f"]
	idom := Dominators(f)
	if idom[f.Entry()] != f.Entry() {
		t.Error("entry must dominate itself")
	}
	for _, b := range f.Blocks {
		if b != f.Entry() && !Dominates(idom, f.Entry(), b) {
			t.Errorf("entry must dominate b%d", b.ID)
		}
	}
	loops := NaturalLoops(f)
	if len(loops) != 3 {
		t.Fatalf("found %d loops, want 3", len(loops))
	}
	var inner, outer, while *Loop
	for _, l := range loops {
		switch l.Depth {
		case 2:
			inner = l
		case 1:
			if outer == nil || l.NumBlocks() > outer.NumBlocks() {
				if outer != nil {
					while = outer
				}
				if while == nil || l.NumBlocks() > while.NumBlocks() {
					outer = l
				}
			} else {
				while = l
			}
		}
	}
	if inner == nil {
		t.Fatal("no depth-2 loop found")
	}
	if !inner.Inner {
		t.Error("depth-2 loop must be innermost")
	}
	if outer == nil || outer.Inner {
		t.Error("outer for loop must not be marked inner")
	}
	_ = while
	// The inner loop's blocks must all be inside the outer loop.
	for b := range inner.Blocks {
		if !outer.Contains(b) {
			t.Errorf("inner loop block b%d not contained in outer loop", b.ID)
		}
	}
}

func TestReversePostorder(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(x: int): int {
    if x > 0 {
        return 1;
    }
    return 0;
}
`))
	f := funcs["f"]
	rpo := ReversePostorder(f)
	if rpo[0] != f.Entry() {
		t.Error("RPO must start at the entry")
	}
	pos := make(map[*Block]int)
	for i, b := range rpo {
		pos[b] = i
	}
	// In an acyclic CFG every edge must go forward in RPO.
	for _, b := range rpo {
		for _, s := range b.Succs {
			if pos[s] <= pos[b] {
				t.Errorf("edge b%d->b%d not forward in RPO of acyclic CFG", b.ID, s.ID)
			}
		}
	}
}

func TestRemoveUnreachable(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(): int {
    return 1;
    return 2;
}
`))
	f := funcs["f"]
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ConstI && in.ConstI == 2 {
				t.Error("unreachable code not removed")
			}
		}
	}
}

func TestValidateCatchesBrokenIR(t *testing.T) {
	f := NewFunc("broken", 1)
	if err := f.Validate(); err == nil {
		t.Error("empty entry block must fail validation")
	}
	f.Entry().Instrs = append(f.Entry().Instrs, Instr{Op: Ret})
	if err := f.Validate(); err != nil {
		t.Errorf("minimal function should validate: %v", err)
	}
	// Terminator mid-block.
	f2 := NewFunc("midterm", 1)
	f2.Entry().Instrs = append(f2.Entry().Instrs,
		Instr{Op: Ret},
		Instr{Op: ConstI, Dst: f2.NewVReg(types.Int)})
	if err := f2.Validate(); err == nil {
		t.Error("mid-block terminator must fail validation")
	}
	// Unallocated vreg.
	f3 := NewFunc("badreg", 1)
	f3.Entry().Instrs = append(f3.Entry().Instrs,
		Instr{Op: Mov, Dst: 99, A: 98},
		Instr{Op: Ret})
	if err := f3.Validate(); err == nil {
		t.Error("unallocated vreg must fail validation")
	}
}

// TestDifferentialLowering runs a battery of functions through both the AST
// interpreter and the IR evaluator and requires identical results.
func TestDifferentialLowering(t *testing.T) {
	src := `
module diff
section 1 {
    function poly(x: float): float {
        return ((x * 2.0 + 1.0) * x - 3.5) * x + 0.25;
    }
    function gcd(a: int, b: int): int {
        while b != 0 {
            var tmp: int = b;
            b = a % b;
            a = tmp;
        }
        return a;
    }
    function classify(x: float): int {
        if x < -1.0 {
            return -1;
        } else if x > 1.0 {
            return 1;
        } else {
            return 0;
        }
    }
    function sumsq(n: int): int {
        var s: int = 0;
        var i: int;
        for i = 1 to n {
            s = s + i * i;
        }
        return s;
    }
    function trig(x: float): float {
        return sqrt(abs(x)) + min(x, 0.5) * max(x, -0.5);
    }
}
`
	m, info := front(t, src)
	funcs := make(map[string]*Func)
	astFns := make(map[string]*ast.FuncDecl)
	for _, fn := range m.Sections[0].Funcs {
		f, err := Lower(fn, info)
		if err != nil {
			t.Fatalf("lower %s: %v", fn.Name, err)
		}
		funcs[fn.Name] = f
		astFns[fn.Name] = fn
	}

	intArgs := []int64{-17, -3, 0, 1, 2, 9, 48}
	floatArgs := []float64{-2.5, -1.0, -0.25, 0, 0.75, 1.5, 12.0}

	for name, f := range funcs {
		fn := astFns[name]
		for i := 0; i < 7; i++ {
			var interpArgs []interp.Value
			var irArgs []EvalValue
			skip := false
			for pi, p := range fn.Sig.Params {
				if p.Equal(types.IntType) {
					v := intArgs[(i+pi)%len(intArgs)]
					if name == "gcd" && v == 0 {
						v = 4 // avoid gcd(x,0) = x trivial path mixing with %0
					}
					interpArgs = append(interpArgs, interp.IntVal(v))
					irArgs = append(irArgs, EvalInt(v))
				} else if p.Equal(types.FloatType) {
					v := floatArgs[(i+pi)%len(floatArgs)]
					interpArgs = append(interpArgs, interp.FloatVal(v))
					irArgs = append(irArgs, EvalFloat(v))
				} else {
					skip = true
				}
			}
			if skip {
				continue
			}
			want, _, err1 := interp.CallFunction(info, fn, interpArgs, interp.Limits{})
			env := &EvalEnv{Funcs: funcs}
			got, _, err2 := env.EvalFunc(f, irArgs)
			if (err1 == nil) != (err2 == nil) {
				t.Errorf("%s(%v): interp err=%v, ir err=%v", name, irArgs, err1, err2)
				continue
			}
			if err1 != nil {
				continue
			}
			if want.K == types.Float {
				if math.Abs(want.F-got.AsFloat()) > 1e-9*math.Max(1, math.Abs(want.F)) {
					t.Errorf("%s(%v): interp=%g ir=%g", name, irArgs, want.F, got.AsFloat())
				}
			} else if want.I != got.I {
				t.Errorf("%s(%v): interp=%d ir=%d", name, irArgs, want.I, got.I)
			}
		}
	}
}

func TestFuncStringSmoke(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(a: int): int {
    if a > 0 {
        return a;
    }
    return -a;
}
`))
	s := funcs["f"].String()
	for _, sub := range []string{"func f", "condbr", "ret"} {
		if !contains(s, sub) {
			t.Errorf("IR dump missing %q:\n%s", sub, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

package ir

// InvertLoops converts while-shaped loops into do-while shape (loop
// inversion): the header's condition computation is duplicated into the
// preheader and into the latch, so that after straight-line merging the
// whole body of an innermost loop becomes a single block ending in a
// conditional branch back to itself. The software pipeliner (phase 3) only
// handles such self-loop blocks.
//
// A loop is inverted when its header consists solely of pure computations
// feeding a CondBr, so duplication cannot change observable behaviour.
// Because the IR is not SSA, the duplicated instructions redefine the same
// virtual registers, which keeps the transformation a pure copy.
func InvertLoops(f *Func) int {
	n := 0
	for {
		inverted := false
		for _, loop := range NaturalLoops(f) {
			if invertOne(f, loop) {
				n++
				inverted = true
				break // CFG changed; recompute loops
			}
		}
		if !inverted {
			return n
		}
	}
}

func invertOne(f *Func, loop *Loop) bool {
	h := loop.Head
	term := h.Term()
	if term == nil || term.Op != CondBr {
		return false
	}
	// Header must be pure except for its terminator.
	for i := 0; i < len(h.Instrs)-1; i++ {
		if h.Instrs[i].Op.HasSideEffects() {
			return false
		}
	}
	// Identify the in-loop successor and the exit successor.
	var exit *Block
	thenIn := loop.Contains(term.Then)
	elseIn := loop.Contains(term.Else)
	if thenIn == elseIn {
		return false // both in or both out: not a simple loop exit
	}
	if thenIn {
		exit = term.Else
	} else {
		exit = term.Then
	}
	if exit == h {
		return false
	}
	// Already inverted? A self-loop or a latch that conditionally re-enters
	// needs no work; detect the canonical do-while shape: the header has an
	// in-loop predecessor whose terminator is this very conditional test.
	// We instead check for the while shape: at least one in-loop predecessor
	// jumps unconditionally to the header.
	var latches []*Block
	var preheaders []*Block
	for _, p := range h.Preds {
		if loop.Contains(p) {
			latches = append(latches, p)
		} else {
			preheaders = append(preheaders, p)
		}
	}
	if len(latches) == 0 || len(preheaders) == 0 {
		return false
	}
	for _, l := range latches {
		t := l.Term()
		if t == nil || t.Op != Jmp || t.Then != h {
			return false // only invert simple unconditional latches
		}
	}
	for _, p := range preheaders {
		t := p.Term()
		if t == nil {
			return false
		}
	}

	// Build the replacement: copy header computations + test into every
	// latch and every preheader edge. The header keeps only a jump to the
	// body (it becomes part of the body after merging).
	headerBody := make([]Instr, len(h.Instrs)-1)
	copy(headerBody, h.Instrs[:len(h.Instrs)-1])
	test := *term

	inBody := test.Then
	if !thenIn {
		inBody = test.Else
	}

	appendTest := func(b *Block, replaceTerm bool) {
		if replaceTerm {
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		}
		b.Instrs = append(b.Instrs, headerBody...)
		t := test // copy
		b.Instrs = append(b.Instrs, t)
	}

	for _, l := range latches {
		appendTest(l, true)
	}
	for _, p := range preheaders {
		t := p.Term()
		switch t.Op {
		case Jmp:
			if t.Then == h {
				appendTest(p, true)
			}
		case CondBr:
			// Cannot splice into a conditional edge directly; create a
			// trampoline block holding the duplicated test.
			tramp := f.NewBlock()
			appendTest(tramp, false)
			if t.Then == h {
				t.Then = tramp
			}
			if t.Else == h {
				t.Else = tramp
			}
		}
	}

	// The old header reduces to a direct jump into the body; it is now only
	// reachable if some edge was missed, and normally gets merged or removed.
	h.Instrs = []Instr{{Op: Jmp, Then: inBody}}

	f.RecomputeEdges()
	f.RemoveUnreachable()
	return true
}

// SelfLoop reports whether b is a single-block loop: its terminator is a
// CondBr with one target being b itself, and returns the exit block.
func SelfLoop(b *Block) (exit *Block, ok bool) {
	t := b.Term()
	if t == nil || t.Op != CondBr {
		return nil, false
	}
	if t.Then == b && t.Else != b {
		return t.Else, true
	}
	if t.Else == b && t.Then != b {
		return t.Then, true
	}
	return nil, false
}

package ir

import (
	"math"
	"testing"
)

func TestInlineSimpleCall(t *testing.T) {
	funcs := lowerSection(t, sec(`
function double(x: int): int {
    return x * 2;
}
function f(a: int): int {
    return double(a) + double(a + 1);
}
`))
	f := funcs["f"]
	if !HasCalls(f) {
		t.Fatal("expected calls before inlining")
	}
	if err := InlineCalls(f, funcs); err != nil {
		t.Fatal(err)
	}
	if HasCalls(f) {
		t.Fatalf("calls remain after inlining:\n%s", f)
	}
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, []EvalValue{EvalInt(10)})
	if err != nil || v.I != 20+22 {
		t.Errorf("f(10) = %d (%v), want 42", v.I, err)
	}
}

func TestInlineTransitive(t *testing.T) {
	funcs := lowerSection(t, sec(`
function inc(x: int): int { return x + 1; }
function inc2(x: int): int { return inc(inc(x)); }
function f(a: int): int { return inc2(inc2(a)); }
`))
	// Inline in declaration order, as the compiler driver does.
	for _, name := range []string{"inc", "inc2", "f"} {
		if err := InlineCalls(funcs[name], funcs); err != nil {
			t.Fatalf("inline %s: %v", name, err)
		}
	}
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(funcs["f"], []EvalValue{EvalInt(0)})
	if err != nil || v.I != 4 {
		t.Errorf("f(0) = %d (%v), want 4", v.I, err)
	}
}

func TestInlineWithArraysAndLoops(t *testing.T) {
	funcs := lowerSection(t, sec(`
function sumTo(n: int): int {
    var acc: int[1];
    var i: int;
    acc[0] = 0;
    for i = 1 to n {
        acc[0] = acc[0] + i;
    }
    return acc[0];
}
function f(a: int): int {
    return sumTo(a) * 100 + sumTo(a / 2);
}
`))
	f := funcs["f"]
	if err := InlineCalls(f, funcs); err != nil {
		t.Fatal(err)
	}
	// The two inlined copies must have distinct array symbols.
	syms := map[string]bool{}
	for _, a := range f.Arrays {
		if syms[a.Sym] {
			t.Errorf("duplicate array symbol %s after inlining", a.Sym)
		}
		syms[a.Sym] = true
	}
	if len(f.Arrays) != 2 {
		t.Errorf("expected 2 inlined array copies, got %d", len(f.Arrays))
	}
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, []EvalValue{EvalInt(8)})
	want := int64(36*100 + 10)
	if err != nil || v.I != want {
		t.Errorf("f(8) = %d (%v), want %d", v.I, err, want)
	}
}

func TestInlineVoidCallWithSends(t *testing.T) {
	funcs := lowerSection(t, `
module m (out ys: float[3])
section 1 {
    function emit(v: float) {
        send(Y, v);
        send(Y, v * 2.0);
    }
    function cell() {
        emit(1.5);
        send(Y, 10.0);
    }
}
`)
	f := funcs["cell"]
	if err := InlineCalls(f, funcs); err != nil {
		t.Fatal(err)
	}
	env := &EvalEnv{Funcs: funcs}
	if _, _, err := env.EvalFunc(f, nil); err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 3.0, 10.0}
	if len(env.Out) != 3 {
		t.Fatalf("got %d sends, want 3", len(env.Out))
	}
	for i, w := range want {
		if math.Abs(env.Out[i].AsFloat()-w) > 1e-12 {
			t.Errorf("out[%d] = %g, want %g", i, env.Out[i].AsFloat(), w)
		}
	}
}

func TestInlineDeepCallInsideLoop(t *testing.T) {
	funcs := lowerSection(t, sec(`
function g(x: float): float {
    if x < 0.0 {
        return -x;
    }
    return x * 1.5;
}
function f(n: int): float {
    var s: float = 0.0;
    var i: int;
    for i = 0 to n {
        s = s + g(float(i) - 2.0);
    }
    return s;
}
`))
	// Reference result before inlining.
	ref := &EvalEnv{Funcs: funcs}
	want, _, err := ref.EvalFunc(funcs["f"], []EvalValue{EvalInt(6)})
	if err != nil {
		t.Fatal(err)
	}
	if err := InlineCalls(funcs["f"], funcs); err != nil {
		t.Fatal(err)
	}
	env := &EvalEnv{Funcs: funcs}
	got, _, err := env.EvalFunc(funcs["f"], []EvalValue{EvalInt(6)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.F-want.F) > 1e-12 {
		t.Errorf("inlining changed result: %g != %g", got.F, want.F)
	}
}

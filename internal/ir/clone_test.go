package ir

import (
	"testing"

	"repro/internal/types"
)

// cloneSubject lowers a function with branches and a loop so the clone has a
// nontrivial CFG (multiple blocks, preds/succs, condbr args) to get wrong.
func cloneSubject(t *testing.T) *Func {
	t.Helper()
	funcs := lowerSection(t, sec(`
function f(a: int, b: int): int {
    var s: int = 0;
    var i: int;
    for i = 0 to a {
        if (i < b) {
            s = s + i;
        } else {
            s = s - i;
        }
    }
    return s;
}
`))
	return funcs["f"]
}

func TestCloneIsStructurallyIdentical(t *testing.T) {
	f := cloneSubject(t)
	c := f.Clone()
	if c == f {
		t.Fatal("Clone returned the receiver")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if got, want := c.String(), f.String(); got != want {
		t.Errorf("clone renders differently:\n--- clone\n%s\n--- original\n%s", got, want)
	}
	if c.NumInstrs() != f.NumInstrs() || c.NumVRegs() != f.NumVRegs() {
		t.Errorf("clone sizes (%d instrs, %d vregs) != original (%d, %d)",
			c.NumInstrs(), c.NumVRegs(), f.NumInstrs(), f.NumVRegs())
	}
	// Blocks must be fresh objects, with edges remapped into the clone.
	mine := make(map[*Block]bool, len(c.Blocks))
	for i, b := range c.Blocks {
		if b == f.Blocks[i] {
			t.Fatalf("block %d shared with original", i)
		}
		mine[b] = true
	}
	for i, b := range c.Blocks {
		for _, s := range b.Succs {
			if !mine[s] {
				t.Fatalf("block %d succ points outside the clone", i)
			}
		}
		for _, p := range b.Preds {
			if !mine[p] {
				t.Fatalf("block %d pred points outside the clone", i)
			}
		}
		if term := b.Term(); term != nil {
			if (term.Then != nil && !mine[term.Then]) || (term.Else != nil && !mine[term.Else]) {
				t.Fatalf("block %d branch target points outside the clone", i)
			}
		}
	}
}

// TestCloneIsolatesMutation is the property the cache relies on: a cached
// func handed to one function master's optimizer must not be visible to
// another master reading the shared copy.
func TestCloneIsolatesMutation(t *testing.T) {
	f := cloneSubject(t)
	before := f.String()

	c := f.Clone()
	// Mutate the clone the way the backend does: new vregs, new blocks,
	// rewritten instructions, edge surgery.
	v := c.NewVReg(types.Int)
	nb := c.NewBlock()
	nb.Instrs = append(nb.Instrs, Instr{Op: Ret})
	c.Blocks[0].Instrs[0] = Instr{Op: ConstI, Dst: v, ConstI: 99}
	c.Blocks[0].Instrs = append(c.Blocks[0].Instrs, Instr{Op: Nop})
	AddEdge(c.Blocks[0], nb)
	c.Params = append(c.Params, v)
	c.Arrays = append(c.Arrays, ArrayVar{Sym: "scratch", Words: 8})

	if after := f.String(); after != before {
		t.Errorf("mutating the clone changed the original:\n--- before\n%s\n--- after\n%s", before, after)
	}
	if got, want := f.NumVRegs(), c.NumVRegs()-1; got != want {
		t.Errorf("original NumVRegs = %d after clone mutation, want %d", got, want)
	}
}

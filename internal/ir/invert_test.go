package ir

import "testing"

// optimizeLike mimics the phase-2 cleanup the compiler driver runs after
// inversion: merge straight-line chains so self-loops become visible.
// The opt package owns the real passes; this local copy avoids an import
// cycle (opt imports ir).
func mergeStraightLine(f *Func) {
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != Jmp {
				continue
			}
			s := t.Then
			if s == b || len(s.Preds) != 1 || s == f.Entry() {
				continue
			}
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
			s.Instrs = nil
			changed = true
			f.RecomputeEdges()
			f.RemoveUnreachable()
			break
		}
	}
}

func TestInvertLoopsCreatesSelfLoop(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(n: int): int {
    var s: int = 0;
    var i: int;
    for i = 0 to n {
        s = s + i;
    }
    return s;
}
`))
	f := funcs["f"]
	if n := InvertLoops(f); n == 0 {
		t.Fatal("expected at least one inversion")
	}
	mergeStraightLine(f)
	var self *Block
	for _, b := range f.Blocks {
		if _, ok := SelfLoop(b); ok {
			self = b
		}
	}
	if self == nil {
		t.Fatalf("no self-loop block after inversion+merge:\n%s", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	env := &EvalEnv{Funcs: funcs}
	for _, n := range []int64{-3, 0, 1, 10} {
		v, _, err := env.EvalFunc(f, []EvalValue{EvalInt(n)})
		if err != nil {
			t.Fatalf("f(%d): %v", n, err)
		}
		want := int64(0)
		for i := int64(0); i <= n; i++ {
			want += i
		}
		if v.I != want {
			t.Errorf("f(%d) = %d, want %d", n, v.I, want)
		}
	}
}

func TestInvertZeroTripLoopStillSkips(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(): int {
    var s: int = 7;
    var i: int;
    for i = 10 to 5 {
        s = 999;
    }
    return s;
}
`))
	f := funcs["f"]
	InvertLoops(f)
	mergeStraightLine(f)
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, nil)
	if err != nil || v.I != 7 {
		t.Errorf("zero-trip loop executed its body: got %d (%v), want 7", v.I, err)
	}
}

func TestInvertNestedLoops(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(n: int): int {
    var s: int = 0;
    var i: int; var j: int;
    for i = 1 to n {
        for j = 1 to i {
            s = s + j;
        }
    }
    return s;
}
`))
	f := funcs["f"]
	InvertLoops(f)
	mergeStraightLine(f)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, []EvalValue{EvalInt(5)})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(1); i <= 5; i++ {
		for j := int64(1); j <= i; j++ {
			want += j
		}
	}
	if v.I != want {
		t.Errorf("f(5) = %d, want %d", v.I, want)
	}
}

func TestInvertWhileLoop(t *testing.T) {
	funcs := lowerSection(t, sec(`
function f(n: int): int {
    var c: int = 0;
    while n > 1 {
        if n % 2 == 0 {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        c = c + 1;
    }
    return c;
}
`))
	f := funcs["f"]
	InvertLoops(f)
	mergeStraightLine(f)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	env := &EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, []EvalValue{EvalInt(27)})
	if err != nil || v.I != 111 {
		t.Errorf("collatz(27) = %d (%v), want 111", v.I, err)
	}
	// Zero-trip while.
	v2, _, err := env.EvalFunc(f, []EvalValue{EvalInt(1)})
	if err != nil || v2.I != 0 {
		t.Errorf("collatz(1) = %d (%v), want 0", v2.I, err)
	}
}

func TestInvertStreamLoopPreservesIO(t *testing.T) {
	funcs := lowerSection(t, `
module m (in xs: float[4], out ys: float[4])
section 1 {
    function cell() {
        var i: int;
        var v: float;
        for i = 0 to 3 {
            receive(X, v);
            send(Y, v + 1.0);
        }
    }
}
`)
	f := funcs["cell"]
	InvertLoops(f)
	mergeStraightLine(f)
	in := []EvalValue{EvalFloat(1), EvalFloat(2), EvalFloat(3), EvalFloat(4)}
	env := &EvalEnv{Funcs: funcs, In: in}
	if _, _, err := env.EvalFunc(f, nil); err != nil {
		t.Fatal(err)
	}
	if len(env.Out) != 4 {
		t.Fatalf("got %d outputs, want 4", len(env.Out))
	}
	for i, w := range []float64{2, 3, 4, 5} {
		if env.Out[i].AsFloat() != w {
			t.Errorf("out[%d] = %g, want %g", i, env.Out[i].AsFloat(), w)
		}
	}
}

// Package machine describes the target of the compiler: one processing
// element (cell) of a Warp-like systolic array.
//
// Each cell is a horizontally microcoded machine: every cycle issues one
// wide instruction word containing at most one operation per functional
// unit. The units are pipelined with multi-cycle latencies, which is what
// makes scheduling (and software pipelining in particular) both necessary
// and profitable — exactly the property of the real Warp cell that made its
// optimizing compiler slow enough to be worth parallelizing.
package machine

import "fmt"

// Unit identifies a functional-unit slot of the instruction word.
type Unit int

const (
	// ALU performs integer arithmetic, logical operations and comparisons.
	ALU Unit = iota
	// FADD performs floating-point add/subtract/compare and conversions.
	FADD
	// FMUL performs floating-point multiply, divide and square root.
	FMUL
	// MEM performs data-memory loads and stores.
	MEM
	// CTRL is the sequencer slot: branches, calls, returns, halt.
	CTRL
	// IO accesses the inter-cell queues (X and Y pathways).
	IO

	// NumUnits is the number of slots in one instruction word.
	NumUnits
)

func (u Unit) String() string {
	switch u {
	case ALU:
		return "ALU"
	case FADD:
		return "FADD"
	case FMUL:
		return "FMUL"
	case MEM:
		return "MEM"
	case CTRL:
		return "CTRL"
	case IO:
		return "IO"
	}
	return fmt.Sprintf("unit(%d)", int(u))
}

// Reg is a physical register number. The cell has NumRegs general registers
// holding 32-bit words (int or float); R0 reads as zero and ignores writes.
type Reg uint8

// NumRegs is the size of the cell's register file.
const NumRegs = 64

// RZero is the hardwired zero register.
const RZero Reg = 0

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Opcode enumerates the cell's operations across all units.
type Opcode uint8

const (
	NOP Opcode = iota

	// ALU unit.
	IADD // dst = a + b
	ISUB // dst = a - b
	IMUL // dst = a * b
	IDIV // dst = a / b (traps on zero)
	IREM // dst = a % b (traps on zero)
	INEG // dst = -a
	IABS // dst = |a|
	IMIN // dst = min(a, b)
	IMAX // dst = max(a, b)
	AND  // dst = a & b (booleans are 0/1 words)
	OR   // dst = a | b
	XOR  // dst = a ^ b
	NOT  // dst = a == 0 ? 1 : 0 (logical complement of a 0/1 word)
	MOV  // dst = a
	LDI  // dst = imm (32-bit literal from the instruction word)
	ICMPEQ
	ICMPNE
	ICMPLT
	ICMPLE
	ICMPGT
	ICMPGE

	// FADD unit.
	FADDOP // dst = a + b
	FSUBOP // dst = a - b
	FNEG   // dst = -a
	FABS   // dst = |a|
	FMIN
	FMAX
	CVTIF // dst = float(a)
	CVTFI // dst = int(a), truncating toward zero
	FCMPEQ
	FCMPNE
	FCMPLT
	FCMPLE
	FCMPGT
	FCMPGE

	// FMUL unit.
	FMULOP // dst = a * b
	FDIV   // dst = a / b (unpipelined)
	FSQRT  // dst = sqrt(a) (unpipelined, traps on negative)

	// MEM unit. Addresses are word addresses in the cell's data memory.
	LOAD  // dst = mem[a + imm]
	STORE // mem[a + imm] = b

	// CTRL unit. Branch targets are word addresses in program memory,
	// resolved by the linker from symbolic labels.
	JMP  // goto imm
	BT   // if a != 0 goto imm
	BF   // if a == 0 goto imm
	CALL // push return address on the sequencer stack; goto imm
	RET  // pop return address
	HALT // stop the cell

	// IO unit.
	RECVX // dst = dequeue from the X input queue (stalls while empty)
	RECVY // dst = dequeue from the Y input queue
	SENDX // enqueue a into the X output queue (stalls while full)
	SENDY // enqueue a into the Y output queue

	numOpcodes
)

// OpInfo describes an opcode's static properties.
type OpInfo struct {
	Name string
	Unit Unit
	// Latency is the number of cycles before the result may be consumed.
	// Latency 1 means the result is available in the next cycle.
	Latency int
	// Blocking marks unpipelined operations that occupy their unit for
	// Latency cycles (FDIV, FSQRT); pipelined operations accept a new
	// operation every cycle regardless of latency.
	Blocking bool
	// HasDst, NumSrc and HasImm describe the operand shape.
	HasDst bool
	NumSrc int
	HasImm bool
}

// Latencies of the pipelined units. The floating units have the deep
// pipelines that motivate software pipelining on this machine.
const (
	aluLat  = 1
	imulLat = 3
	idivLat = 10
	fLat    = 5 // FADD/FMUL pipeline depth
	fdivLat = 12
	sqrtLat = 15
	loadLat = 2
)

var opInfos = [numOpcodes]OpInfo{
	NOP: {Name: "nop", Unit: ALU, Latency: 1},

	IADD:   {Name: "iadd", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	ISUB:   {Name: "isub", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	IMUL:   {Name: "imul", Unit: ALU, Latency: imulLat, HasDst: true, NumSrc: 2},
	IDIV:   {Name: "idiv", Unit: ALU, Latency: idivLat, Blocking: true, HasDst: true, NumSrc: 2},
	IREM:   {Name: "irem", Unit: ALU, Latency: idivLat, Blocking: true, HasDst: true, NumSrc: 2},
	INEG:   {Name: "ineg", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 1},
	IABS:   {Name: "iabs", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 1},
	IMIN:   {Name: "imin", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	IMAX:   {Name: "imax", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	AND:    {Name: "and", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	OR:     {Name: "or", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	XOR:    {Name: "xor", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	NOT:    {Name: "not", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 1},
	MOV:    {Name: "mov", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 1},
	LDI:    {Name: "ldi", Unit: ALU, Latency: aluLat, HasDst: true, HasImm: true},
	ICMPEQ: {Name: "icmpeq", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	ICMPNE: {Name: "icmpne", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	ICMPLT: {Name: "icmplt", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	ICMPLE: {Name: "icmple", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	ICMPGT: {Name: "icmpgt", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},
	ICMPGE: {Name: "icmpge", Unit: ALU, Latency: aluLat, HasDst: true, NumSrc: 2},

	FADDOP: {Name: "fadd", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	FSUBOP: {Name: "fsub", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	FNEG:   {Name: "fneg", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 1},
	FABS:   {Name: "fabs", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 1},
	FMIN:   {Name: "fmin", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	FMAX:   {Name: "fmax", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	CVTIF:  {Name: "cvtif", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 1},
	CVTFI:  {Name: "cvtfi", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 1},
	FCMPEQ: {Name: "fcmpeq", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	FCMPNE: {Name: "fcmpne", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	FCMPLT: {Name: "fcmplt", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	FCMPLE: {Name: "fcmple", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	FCMPGT: {Name: "fcmpgt", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},
	FCMPGE: {Name: "fcmpge", Unit: FADD, Latency: fLat, HasDst: true, NumSrc: 2},

	FMULOP: {Name: "fmul", Unit: FMUL, Latency: fLat, HasDst: true, NumSrc: 2},
	FDIV:   {Name: "fdiv", Unit: FMUL, Latency: fdivLat, Blocking: true, HasDst: true, NumSrc: 2},
	FSQRT:  {Name: "fsqrt", Unit: FMUL, Latency: sqrtLat, Blocking: true, HasDst: true, NumSrc: 1},

	LOAD:  {Name: "load", Unit: MEM, Latency: loadLat, HasDst: true, NumSrc: 1, HasImm: true},
	STORE: {Name: "store", Unit: MEM, Latency: 1, NumSrc: 2, HasImm: true},

	JMP:  {Name: "jmp", Unit: CTRL, Latency: 1, HasImm: true},
	BT:   {Name: "bt", Unit: CTRL, Latency: 1, NumSrc: 1, HasImm: true},
	BF:   {Name: "bf", Unit: CTRL, Latency: 1, NumSrc: 1, HasImm: true},
	CALL: {Name: "call", Unit: CTRL, Latency: 1, HasImm: true},
	RET:  {Name: "ret", Unit: CTRL, Latency: 1},
	HALT: {Name: "halt", Unit: CTRL, Latency: 1},

	RECVX: {Name: "recvx", Unit: IO, Latency: 1, HasDst: true},
	RECVY: {Name: "recvy", Unit: IO, Latency: 1, HasDst: true},
	SENDX: {Name: "sendx", Unit: IO, Latency: 1, NumSrc: 1},
	SENDY: {Name: "sendy", Unit: IO, Latency: 1, NumSrc: 1},
}

// Info returns the static description of op.
func Info(op Opcode) OpInfo {
	if int(op) < len(opInfos) {
		return opInfos[op]
	}
	return OpInfo{Name: "bad"}
}

// NumOpcodes returns the number of defined opcodes.
func NumOpcodes() int { return int(numOpcodes) }

// IsBranch reports whether op transfers control.
func IsBranch(op Opcode) bool {
	switch op {
	case JMP, BT, BF, CALL, RET, HALT:
		return true
	}
	return false
}

// Cell configuration constants.
const (
	// DataMemWords is the size of a cell's local data memory in words.
	DataMemWords = 32 * 1024
	// ProgMemWords is the size of a cell's program memory in instruction
	// words. Programs beyond this do not fit and must be rejected by the
	// linker.
	ProgMemWords = 16 * 1024
	// QueueDepth is the depth of the inter-cell X and Y queues.
	QueueDepth = 512
	// ReturnStackDepth is the depth of the sequencer's return stack.
	ReturnStackDepth = 64
)

// Instr is one operation in a unit slot of an instruction word.
type Instr struct {
	Op  Opcode
	Dst Reg
	A   Reg
	B   Reg
	Imm int32
	// Sym is the symbolic branch/call target or data symbol before linking;
	// the linker resolves it into Imm.
	Sym string
}

func (i Instr) String() string {
	info := Info(i.Op)
	s := info.Name
	if info.HasDst {
		s += " " + i.Dst.String()
	}
	if info.NumSrc >= 1 {
		s += " " + i.A.String()
	}
	if info.NumSrc >= 2 {
		s += " " + i.B.String()
	}
	if info.HasImm {
		if i.Sym != "" {
			s += " @" + i.Sym
		} else {
			s += fmt.Sprintf(" #%d", i.Imm)
		}
	}
	return s
}

// Word is one wide instruction word: at most one operation per unit slot.
// Empty slots hold NOP.
type Word [NumUnits]Instr

// IsEmpty reports whether every slot of the word is a NOP.
func (w Word) IsEmpty() bool {
	for _, in := range w {
		if in.Op != NOP {
			return false
		}
	}
	return true
}

func (w Word) String() string {
	s := ""
	for u := Unit(0); u < NumUnits; u++ {
		if w[u].Op == NOP {
			continue
		}
		if s != "" {
			s += " ; "
		}
		s += u.String() + ":" + w[u].String()
	}
	if s == "" {
		return "nop"
	}
	return s
}

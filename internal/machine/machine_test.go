package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpInfoComplete(t *testing.T) {
	for op := NOP; op < Opcode(NumOpcodes()); op++ {
		info := Info(op)
		if info.Name == "" || info.Name == "bad" {
			t.Errorf("opcode %d has no info", op)
		}
		if info.Latency < 1 {
			t.Errorf("op %s: latency %d < 1", info.Name, info.Latency)
		}
		if info.Unit < 0 || info.Unit >= NumUnits {
			t.Errorf("op %s: bad unit %d", info.Name, info.Unit)
		}
		if info.NumSrc < 0 || info.NumSrc > 2 {
			t.Errorf("op %s: bad NumSrc %d", info.Name, info.NumSrc)
		}
	}
}

func TestOpNamesUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for op := NOP; op < Opcode(NumOpcodes()); op++ {
		name := Info(op).Name
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %d and %d share the name %q", prev, op, name)
		}
		seen[name] = op
	}
}

func TestUnitAssignments(t *testing.T) {
	cases := []struct {
		op   Opcode
		unit Unit
	}{
		{IADD, ALU}, {ICMPLT, ALU}, {LDI, ALU},
		{FADDOP, FADD}, {CVTIF, FADD}, {FCMPGE, FADD},
		{FMULOP, FMUL}, {FDIV, FMUL}, {FSQRT, FMUL},
		{LOAD, MEM}, {STORE, MEM},
		{JMP, CTRL}, {CALL, CTRL}, {HALT, CTRL},
		{RECVX, IO}, {SENDY, IO},
	}
	for _, c := range cases {
		if got := Info(c.op).Unit; got != c.unit {
			t.Errorf("%s on unit %s, want %s", Info(c.op).Name, got, c.unit)
		}
	}
}

func TestBlockingOps(t *testing.T) {
	for _, op := range []Opcode{FDIV, FSQRT, IDIV, IREM} {
		if !Info(op).Blocking {
			t.Errorf("%s should be blocking (unpipelined)", Info(op).Name)
		}
	}
	for _, op := range []Opcode{FADDOP, FMULOP, LOAD, IADD} {
		if Info(op).Blocking {
			t.Errorf("%s should be pipelined", Info(op).Name)
		}
	}
}

func TestFloatPipelineDepthMotivatesScheduling(t *testing.T) {
	// The whole point of the machine model: float ops have multi-cycle
	// latency so naive code serializes and scheduled code overlaps.
	if Info(FADDOP).Latency < 3 || Info(FMULOP).Latency < 3 {
		t.Error("float pipeline too shallow to exercise software pipelining")
	}
	if Info(IADD).Latency != 1 {
		t.Error("integer add should be single-cycle")
	}
}

func TestIsBranch(t *testing.T) {
	for _, op := range []Opcode{JMP, BT, BF, CALL, RET, HALT} {
		if !IsBranch(op) {
			t.Errorf("%s should be a branch", Info(op).Name)
		}
	}
	for _, op := range []Opcode{IADD, LOAD, SENDY, NOP} {
		if IsBranch(op) {
			t.Errorf("%s should not be a branch", Info(op).Name)
		}
	}
}

func TestWordString(t *testing.T) {
	var w Word
	if !w.IsEmpty() || w.String() != "nop" {
		t.Errorf("zero word should be empty nop, got %q", w.String())
	}
	w[ALU] = Instr{Op: IADD, Dst: 3, A: 1, B: 2}
	w[MEM] = Instr{Op: LOAD, Dst: 4, A: 5, Imm: 16}
	if w.IsEmpty() {
		t.Error("word with ops is not empty")
	}
	s := w.String()
	if s != "ALU:iadd r3 r1 r2 ; MEM:load r4 r5 #16" {
		t.Errorf("unexpected word rendering: %q", s)
	}
}

func TestInstrSymbolicTarget(t *testing.T) {
	in := Instr{Op: CALL, Sym: "helper"}
	if in.String() != "call @helper" {
		t.Errorf("got %q", in.String())
	}
	in2 := Instr{Op: JMP, Imm: 42}
	if in2.String() != "jmp #42" {
		t.Errorf("got %q", in2.String())
	}
}

func TestWordValRoundTrip(t *testing.T) {
	f := func(v int32) bool { return IntWord(v).Int() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v float32) bool {
		w := FloatWord(v)
		got := w.Float()
		return got == v || (math.IsNaN(float64(v)) && math.IsNaN(float64(got)))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	if !BoolWord(true).Bool() || BoolWord(false).Bool() {
		t.Error("bool word round trip failed")
	}
	if BoolWord(true) != 1 || BoolWord(false) != 0 {
		t.Error("canonical bool encoding must be 0/1")
	}
}

func TestRegZero(t *testing.T) {
	if RZero != 0 || RZero.String() != "r0" {
		t.Error("r0 must be the zero register")
	}
}

package machine

import "math"

// The cell is a 32-bit word machine: registers, memory cells and queue
// entries all hold one 32-bit word that may be an integer or an IEEE-754
// single. These helpers convert between the raw word and the two views.

// WordVal is one 32-bit machine word.
type WordVal uint32

// IntWord encodes an integer as a machine word (two's complement).
func IntWord(v int32) WordVal { return WordVal(uint32(v)) }

// FloatWord encodes a float as a machine word (IEEE-754 single).
func FloatWord(v float32) WordVal { return WordVal(math.Float32bits(v)) }

// Int returns the word interpreted as a signed integer.
func (w WordVal) Int() int32 { return int32(w) }

// Float returns the word interpreted as an IEEE-754 single.
func (w WordVal) Float() float32 { return math.Float32frombits(uint32(w)) }

// Bool returns the word interpreted as a truth value (non-zero is true).
func (w WordVal) Bool() bool { return w != 0 }

// BoolWord encodes a truth value as 0 or 1.
func BoolWord(b bool) WordVal {
	if b {
		return 1
	}
	return 0
}

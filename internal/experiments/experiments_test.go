package experiments

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/simhost"
	"repro/internal/stats"
	"repro/internal/wgen"
)

// These tests pin the reproduced shapes of the paper's evaluation: who
// wins, by roughly what factor, where the crossovers fall. They are the
// scientific regression suite — if a compiler or cost-model change breaks a
// claim of the paper, one of these fails.

func pm() costmodel.Params { return costmodel.Default1989() }

func get(t *testing.T, tbl *stats.Table, series string, x float64) float64 {
	t.Helper()
	v, ok := tbl.Get(series, x)
	if !ok {
		t.Fatalf("series %q has no point at x=%g in table %q", series, x, tbl.Title)
	}
	return v
}

// §4.2.1 / Figure 3: "for small functions, parallel compilation is of no
// use" — parallel elapsed exceeds sequential elapsed for f_tiny at small
// counts and never beats it meaningfully.
func TestFig03TinyParallelUseless(t *testing.T) {
	tbl := Fig03Tiny(pm())
	for _, n := range []float64{1, 2, 4} {
		seq := get(t, tbl, "seq elapsed", n)
		par := get(t, tbl, "par elapsed", n)
		if par <= seq {
			t.Errorf("n=%g: parallel (%.0fs) should be slower than sequential (%.0fs) for f_tiny", n, par, seq)
		}
	}
	if sp := get(t, tbl, "seq elapsed", 8) / get(t, tbl, "par elapsed", 8); sp > 1.3 {
		t.Errorf("f_tiny speedup at n=8 is %.2f; the paper finds essentially none", sp)
	}
}

// Figure 4: "adding more tasks does not increase execution time - a
// parallel programmer's dream": parallel elapsed grows only marginally
// with the number of f_large functions while sequential grows ~linearly.
func TestFig04LargeMarginalGrowth(t *testing.T) {
	tbl := Fig04Large(pm())
	par1 := get(t, tbl, "par elapsed", 1)
	par8 := get(t, tbl, "par elapsed", 8)
	seq1 := get(t, tbl, "seq elapsed", 1)
	seq8 := get(t, tbl, "seq elapsed", 8)
	if par8/par1 > 2.0 {
		t.Errorf("parallel f_large grew %.2fx from 1 to 8 functions; should be marginal", par8/par1)
	}
	if seq8/seq1 < 6 {
		t.Errorf("sequential f_large grew only %.2fx from 1 to 8 functions; should be ~linear", seq8/seq1)
	}
	if par8 >= seq8 {
		t.Error("parallel must be far faster than sequential for 8 large functions")
	}
}

// Figure 6 / abstract: speedup 3–6 for typical sizes at n=8, always > 1
// except f_tiny, increasing with the number of functions.
func TestFig06SpeedupBandAndMonotonicity(t *testing.T) {
	tbl := Fig06Speedup(pm())
	for _, size := range wgen.Sizes {
		prev := 0.0
		for _, n := range Counts {
			sp := get(t, tbl, size.String(), float64(n))
			if sp < prev {
				t.Errorf("%s: speedup not increasing with functions (%.2f after %.2f at n=%d)", size, sp, prev, n)
			}
			prev = sp
			if n >= 2 && size != wgen.Tiny && sp <= 1 {
				t.Errorf("%s at n=%d: speedup %.2f should exceed 1", size, n, sp)
			}
		}
	}
	for _, size := range []wgen.Size{wgen.Small, wgen.Medium, wgen.Large, wgen.Huge} {
		sp := get(t, tbl, size.String(), 8)
		if sp < 3.0 || sp > 8.0 {
			t.Errorf("%s at n=8: speedup %.2f outside the paper's 3-6 band (with slack)", size, sp)
		}
	}
}

// Figure 6/7: performance increases with size up to f_large and decreases
// again for f_huge ("for functions about the size of f_large, the behavior
// of the parallel compiler is optimal").
func TestFig07LargeOptimalHugeDips(t *testing.T) {
	tbl := Fig06Speedup(pm())
	for _, n := range []float64{4, 8} {
		small := get(t, tbl, "f_small", n)
		medium := get(t, tbl, "f_medium", n)
		large := get(t, tbl, "f_large", n)
		huge := get(t, tbl, "f_huge", n)
		if !(small < medium && medium < large) {
			t.Errorf("n=%g: speedup should increase with size up to f_large: %.2f %.2f %.2f", n, small, medium, large)
		}
		if huge >= large {
			t.Errorf("n=%g: f_huge speedup (%.2f) should dip below f_large (%.2f)", n, huge, large)
		}
	}
}

// Figure 8: for f_tiny the overhead reaches the majority of parallel
// elapsed time (paper: up to 70%), with system overhead the dominant part.
func TestFig08TinyOverheadDominates(t *testing.T) {
	tbl := Fig08OverheadSmall(pm())
	total := get(t, tbl, "rel total ovh f_tiny", 8)
	system := get(t, tbl, "rel system ovh f_tiny", 8)
	if total < 60 {
		t.Errorf("f_tiny total overhead at n=8 is %.0f%%, paper reports ~70%%", total)
	}
	if system < total/2 {
		t.Errorf("f_tiny system overhead (%.0f%%) should be a large share of total (%.0f%%)", system, total)
	}
	// Overhead grows with the number of functions.
	if get(t, tbl, "rel total ovh f_tiny", 1) >= total {
		t.Error("relative overhead must increase with the number of functions")
	}
}

// Figure 9: the paper's headline anomaly — the system overhead for
// f_medium is NEGATIVE when the number of functions is small (the
// sequential compiler pages against one workstation's memory), and turns
// positive as the parallel task count grows.
func TestFig09NegativeSystemOverheadMedium(t *testing.T) {
	tbl := Fig09OverheadMedium(pm())
	neg := false
	for _, n := range []float64{2, 4} {
		if get(t, tbl, "rel system ovh f_medium", n) < 0 {
			neg = true
		}
	}
	if !neg {
		t.Error("f_medium system overhead should be negative at small function counts")
	}
	if get(t, tbl, "rel system ovh f_medium", 8) <= 0 {
		t.Error("f_medium system overhead should turn positive at n=8")
	}
	// f_large has the lowest overhead (paper: <= 25%).
	for _, n := range Counts {
		if v := get(t, tbl, "rel total ovh f_large", float64(n)); v > 25 {
			t.Errorf("f_large total overhead at n=%d is %.0f%%, paper reports <=25%%", n, v)
		}
	}
}

// Figure 10: f_huge overhead grows with the number of functions and is
// substantial at n=8 (the paper reports ~50%; the shape matters).
func TestFig10HugeOverheadGrows(t *testing.T) {
	tbl := Fig10OverheadHuge(pm())
	o4 := get(t, tbl, "rel total ovh f_huge", 4)
	o8 := get(t, tbl, "rel total ovh f_huge", 8)
	if o8 <= o4 {
		t.Errorf("f_huge overhead should grow from n=4 (%.0f%%) to n=8 (%.0f%%)", o4, o8)
	}
	if o8 < 10 {
		t.Errorf("f_huge overhead at n=8 is only %.0f%%; paper reports a large share", o8)
	}
}

// Figure 11 / §4.3: user program speedups — ~2.16 on 2 processors
// (superlinear per-processor because the sequential compiler swaps), ~4.5
// on 9, and 5 processors nearly matching 9.
func TestFig11UserProgram(t *testing.T) {
	tbl := Fig11UserProgram(pm())
	s2 := get(t, tbl, "grouped (heuristic)", 2)
	s5 := get(t, tbl, "grouped (heuristic)", 5)
	s9 := get(t, tbl, "grouped (heuristic)", 9)
	naive9 := get(t, tbl, "one function per processor", 9)
	if s2 < 1.7 || s2 > 2.6 {
		t.Errorf("2-processor speedup %.2f; paper reports 2.16", s2)
	}
	if s9 < 3.0 || s9 > 5.5 {
		t.Errorf("9-processor speedup %.2f; paper reports ~4.5", s9)
	}
	if s5 < 0.85*s9 {
		t.Errorf("5-processor speedup (%.2f) should be almost as good as 9 (%.2f)", s5, s9)
	}
	if naive9 > s9*1.1 {
		t.Errorf("grouping on 9 (%.2f) should achieve what one-per-processor does (%.2f)", s9, naive9)
	}
	// More processors must help up to 5; beyond that the curve flattens
	// ("the speedup for 5 processors is almost as good as for 9"), so 9 may
	// tie with 5 within a small tolerance but must not collapse.
	if s2 >= s5 {
		t.Errorf("5 processors (%.2f) must beat 2 (%.2f)", s5, s2)
	}
	if s9 < 0.95*s5 {
		t.Errorf("9 processors (%.2f) collapsed below 5 (%.2f)", s9, s5)
	}
}

// §4.2.2: the Katseff-style processor sweep plateaus — adding processors
// past ~8 for the large program (5 for the small one) yields little.
func TestKatseffPlateau(t *testing.T) {
	tbl := KatseffSweep(pm())
	l8 := get(t, tbl, "large program (8 x f_large)", 8)
	l12 := get(t, tbl, "large program (8 x f_large)", 12)
	s5 := get(t, tbl, "small program (8 x f_small)", 5)
	s12 := get(t, tbl, "small program (8 x f_small)", 12)
	if l12 > l8*1.12 {
		t.Errorf("large program keeps speeding up past 8 processors: %.2f -> %.2f", l8, l12)
	}
	if s12 > s5*1.35 {
		t.Errorf("small program keeps speeding up past 5 processors: %.2f -> %.2f", s5, s12)
	}
	if l8 < s12 {
		t.Errorf("the large program should out-speed the small one (%.2f vs %.2f)", l8, s12)
	}
}

// Abstract/§6 headline: "speedup ranging from 3 to 6 using not more than 9
// processors" for typical programs.
func TestHeadlineBand(t *testing.T) {
	tbl := HeadlineSpeedup(pm())
	for _, s := range tbl.Series {
		for _, p := range s.Points {
			if p.Y < 2.5 || p.Y > 8 {
				t.Errorf("%s at x=%g: speedup %.2f outside the headline band", s.Name, p.X, p.Y)
			}
		}
	}
}

// Figures 14-16: absolute overheads increase with the number of functions
// for every size.
func TestAbsoluteOverheadsGrow(t *testing.T) {
	for _, tbl := range []*stats.Table{
		Fig14AbsOverheadSmall(pm()),
		Fig16AbsOverheadHuge(pm()),
	} {
		for _, s := range tbl.Series {
			if len(s.Points) < 2 {
				t.Fatalf("series %s too short", s.Name)
			}
			first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
			if last <= first {
				t.Errorf("%s / %s: absolute overhead should grow with functions (%.0f -> %.0f)",
					tbl.Title, s.Name, first, last)
			}
		}
	}
}

// Determinism: the DES produces identical timings on repeated runs.
func TestMeasurementsDeterministic(t *testing.T) {
	a := MeasureSn(wgen.Medium, 4, pm())
	b := MeasureSn(wgen.Medium, 4, pm())
	if a.Seq.Elapsed != b.Seq.Elapsed || a.Par.Elapsed != b.Par.Elapsed {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

// The grouped strategy must never lose to FCFS on the user program when
// processors are scarce.
func TestGroupedBeatsFCFSWhenScarce(t *testing.T) {
	o := outlineOf(wgen.UserProgram())
	for _, p := range []int{2, 3, 5} {
		fcfs := simhost.SimulateParallel(o, pm(), p, simhost.FCFS)
		grouped := simhost.SimulateParallel(o, pm(), p, simhost.Grouped)
		if grouped.Elapsed > fcfs.Elapsed*1.05 {
			t.Errorf("P=%d: grouped (%.0fs) should not lose to FCFS (%.0fs)", p, grouped.Elapsed, fcfs.Elapsed)
		}
	}
}

// AllFigures returns every figure exactly once with non-empty series.
func TestAllFiguresComplete(t *testing.T) {
	figs := AllFigures(pm())
	if len(figs) != 17 {
		t.Fatalf("AllFigures returned %d tables, want 17", len(figs))
	}
	seen := map[string]bool{}
	for _, tbl := range figs {
		if seen[tbl.Title] {
			t.Errorf("duplicate figure %q", tbl.Title)
		}
		seen[tbl.Title] = true
		if len(tbl.Series) == 0 {
			t.Errorf("figure %q has no series", tbl.Title)
		}
		for _, s := range tbl.Series {
			if len(s.Points) == 0 {
				t.Errorf("figure %q series %q empty", tbl.Title, s.Name)
			}
		}
	}
}

// §3.4: parallel make beats serial builds; the coexistence of parallel
// make and the parallel compiler beats either alone.
func TestPmakeComparison(t *testing.T) {
	tbl := PmakeComparison(pm())
	serial := get(t, tbl, "sequential everything", 1)
	pmakeSeq := get(t, tbl, "pmake + sequential compiler", 2)
	parSerial := get(t, tbl, "parallel compiler, serial modules", 3)
	coexist := get(t, tbl, "pmake + parallel compiler", 4)
	if pmakeSeq >= serial {
		t.Errorf("pmake (%.0fs) must beat fully sequential builds (%.0fs)", pmakeSeq, serial)
	}
	if parSerial >= serial {
		t.Errorf("the parallel compiler (%.0fs) must beat sequential builds (%.0fs)", parSerial, serial)
	}
	if coexist >= pmakeSeq || coexist >= parSerial {
		t.Errorf("coexistence (%.0fs) should beat pmake alone (%.0fs) and the parallel compiler alone (%.0fs)",
			coexist, pmakeSeq, parSerial)
	}
}

// Package experiments reproduces every figure of the paper's evaluation
// (§4, Figures 3–16 plus the §4.2.2 Katseff comparison). Each Fig* function
// returns the printed series; cmd/benchfig and bench_test.go call them.
//
// All timing comes from the calibrated host simulation (internal/simhost):
// same workload generator, same cost model, no per-figure tuning. The
// correctness of the parallel decomposition itself is established
// separately by the real compiler's tests (internal/core).
package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/parser"
	"repro/internal/simhost"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/wgen"
)

// Workstations is the pool size of the simulated cluster: the paper's
// "10-15 machines free in practice" (§3.3); we use 15 so that S_8 plus
// masters always fit, as in the measurements.
const Workstations = 15

// Counts is the function-count axis of the synthetic experiments.
var Counts = []int{1, 2, 4, 8}

// Measurement pairs the simulated sequential and parallel timings of one
// S_n compilation.
type Measurement struct {
	Size   wgen.Size
	N      int
	Seq    simhost.SeqTimes
	Par    simhost.ParTimes
	NFuncs int
}

// Speedup returns elapsed-time speedup of parallel over sequential.
func (m Measurement) Speedup() float64 {
	return stats.Speedup(m.Seq.Elapsed, m.Par.Elapsed)
}

// Overheads returns the §4.2.3 decomposition.
func (m Measurement) Overheads() stats.Overheads {
	return stats.ComputeOverheads(m.Seq.Elapsed, m.Par.Elapsed, m.Par.ImplOverhead(), m.NFuncs, m.Par.Workers)
}

// outlineOf parses a generated program and panics on generator bugs (the
// generator is tested separately; experiments treat it as infallible).
func outlineOf(src []byte) *parser.Outline {
	var bag source.DiagBag
	o := parser.ParseOutline("gen.w2", src, &bag)
	if o == nil || bag.HasErrors() {
		panic("experiments: generated workload does not parse: " + bag.String())
	}
	return o
}

// MeasureSn simulates the sequential and parallel compilation of S_n for
// the given size on the standard cluster.
func MeasureSn(size wgen.Size, n int, pm costmodel.Params) Measurement {
	o := outlineOf(wgen.SyntheticProgram(size, n))
	return Measurement{
		Size:   size,
		N:      n,
		Seq:    simhost.SimulateSequential(o, pm),
		Par:    simhost.SimulateParallel(o, pm, Workstations, simhost.FCFS),
		NFuncs: o.NumFunctions(),
	}
}

// ExecutionTimesFigure builds the Figure 3/4/5/12/13 table for one size:
// elapsed and per-processor CPU time, sequential vs parallel, over the
// number of functions.
func ExecutionTimesFigure(title string, size wgen.Size, pm costmodel.Params) *stats.Table {
	t := &stats.Table{
		Title:  title,
		XLabel: "#functions",
		YLabel: "seconds (elapsed total; CPU per processor)",
	}
	for _, n := range Counts {
		m := MeasureSn(size, n, pm)
		t.AddPoint("seq elapsed", float64(n), m.Seq.Elapsed)
		t.AddPoint("seq cpu", float64(n), m.Seq.CPU)
		t.AddPoint("par elapsed", float64(n), m.Par.Elapsed)
		t.AddPoint("par cpu", float64(n), m.Par.MaxProcCPU)
	}
	return t
}

// Fig03Tiny reproduces Figure 3 (execution times for f_tiny).
func Fig03Tiny(pm costmodel.Params) *stats.Table {
	return ExecutionTimesFigure("Figure 3: execution times for f_tiny", wgen.Tiny, pm)
}

// Fig04Large reproduces Figure 4 (execution times for f_large).
func Fig04Large(pm costmodel.Params) *stats.Table {
	return ExecutionTimesFigure("Figure 4: execution times for f_large", wgen.Large, pm)
}

// Fig05Huge reproduces Figure 5 (execution times for f_huge).
func Fig05Huge(pm costmodel.Params) *stats.Table {
	return ExecutionTimesFigure("Figure 5: execution times for f_huge", wgen.Huge, pm)
}

// Fig12Small reproduces appendix Figure 12 (f_small).
func Fig12Small(pm costmodel.Params) *stats.Table {
	return ExecutionTimesFigure("Figure 12: execution times for f_small", wgen.Small, pm)
}

// Fig13Medium reproduces appendix Figure 13 (f_medium).
func Fig13Medium(pm costmodel.Params) *stats.Table {
	return ExecutionTimesFigure("Figure 13: execution times for f_medium", wgen.Medium, pm)
}

// Fig06Speedup reproduces Figure 6: speedup of parallel over sequential
// elapsed time for every size, over the number of functions.
func Fig06Speedup(pm costmodel.Params) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 6: speedup over sequential compiler",
		XLabel: "#functions",
		YLabel: "speedup (seq elapsed / par elapsed)",
	}
	for _, size := range wgen.Sizes {
		for _, n := range Counts {
			m := MeasureSn(size, n, pm)
			t.AddPoint(size.String(), float64(n), m.Speedup())
		}
	}
	return t
}

// Fig07SpeedupVsSize reproduces Figure 7: speedup against function size
// (lines of code), one series per function count.
func Fig07SpeedupVsSize(pm costmodel.Params) *stats.Table {
	t := &stats.Table{
		Title:  "Figure 7: speedup versus function size",
		XLabel: "lines of code",
		YLabel: "speedup",
	}
	for _, n := range Counts {
		for _, size := range wgen.Sizes {
			m := MeasureSn(size, n, pm)
			t.AddPoint(fmt.Sprintf("%d function(s)", n), float64(size.Lines()), m.Speedup())
		}
	}
	return t
}

// OverheadFigure builds the Figure 8/9/10 table for the given sizes:
// relative total and system overhead as a percentage of parallel elapsed
// time.
func OverheadFigure(title string, sizes []wgen.Size, pm costmodel.Params) *stats.Table {
	t := &stats.Table{
		Title:  title,
		XLabel: "#functions",
		YLabel: "% of parallel elapsed time",
	}
	for _, size := range sizes {
		for _, n := range Counts {
			m := MeasureSn(size, n, pm)
			o := m.Overheads()
			t.AddPoint("rel total ovh "+m.Size.String(), float64(n), o.RelTotal(m.Par.Elapsed))
			t.AddPoint("rel system ovh "+m.Size.String(), float64(n), o.RelSystem(m.Par.Elapsed))
		}
	}
	return t
}

// Fig08OverheadSmall reproduces Figure 8 (f_tiny and f_small overheads).
func Fig08OverheadSmall(pm costmodel.Params) *stats.Table {
	return OverheadFigure("Figure 8: overheads as percentage of total time for f_tiny and f_small",
		[]wgen.Size{wgen.Tiny, wgen.Small}, pm)
}

// Fig09OverheadMedium reproduces Figure 9 (f_medium and f_large overheads,
// including the negative system overhead at small function counts).
func Fig09OverheadMedium(pm costmodel.Params) *stats.Table {
	return OverheadFigure("Figure 9: overheads as percentage of total time for f_medium and f_large",
		[]wgen.Size{wgen.Medium, wgen.Large}, pm)
}

// Fig10OverheadHuge reproduces Figure 10 (f_huge overheads).
func Fig10OverheadHuge(pm costmodel.Params) *stats.Table {
	return OverheadFigure("Figure 10: overheads as percentage of total time for f_huge",
		[]wgen.Size{wgen.Huge}, pm)
}

// AbsOverheadFigure builds the Figure 14/15/16 table: absolute total and
// system overheads in seconds.
func AbsOverheadFigure(title string, sizes []wgen.Size, pm costmodel.Params) *stats.Table {
	t := &stats.Table{
		Title:  title,
		XLabel: "#functions",
		YLabel: "seconds",
	}
	for _, size := range sizes {
		for _, n := range Counts {
			m := MeasureSn(size, n, pm)
			o := m.Overheads()
			t.AddPoint("total ovh "+m.Size.String(), float64(n), o.TotalSec)
			t.AddPoint("system ovh "+m.Size.String(), float64(n), o.SystemSec)
		}
	}
	return t
}

// Fig14AbsOverheadSmall reproduces Figure 14 (absolute overheads, f_tiny
// and f_small).
func Fig14AbsOverheadSmall(pm costmodel.Params) *stats.Table {
	return AbsOverheadFigure("Figure 14: absolute overhead for f_tiny and f_small",
		[]wgen.Size{wgen.Tiny, wgen.Small}, pm)
}

// Fig15AbsOverheadMedium reproduces Figure 15 (absolute overheads,
// f_medium and f_large).
func Fig15AbsOverheadMedium(pm costmodel.Params) *stats.Table {
	return AbsOverheadFigure("Figure 15: absolute overhead for f_medium and f_large",
		[]wgen.Size{wgen.Medium, wgen.Large}, pm)
}

// Fig16AbsOverheadHuge reproduces Figure 16 (absolute overheads, f_huge).
func Fig16AbsOverheadHuge(pm costmodel.Params) *stats.Table {
	return AbsOverheadFigure("Figure 16: absolute overhead for f_huge",
		[]wgen.Size{wgen.Huge}, pm)
}

// Fig11UserProgram reproduces Figure 11: the §4.3 user program (three
// sections, nine functions) compiled with the load-balancing heuristic on
// 2, 3, 5 and 9 processors, plus the naive one-function-per-processor run
// on 9 processors that anchors the 4.5× headline.
func Fig11UserProgram(pm costmodel.Params) *stats.Table {
	o := outlineOf(wgen.UserProgram())
	seq := simhost.SimulateSequential(o, pm)

	t := &stats.Table{
		Title:  "Figure 11: speedup for a user program",
		XLabel: "#processors",
		YLabel: "speedup over sequential elapsed",
	}
	for _, p := range []int{2, 3, 5, 9} {
		par := simhost.SimulateParallel(o, pm, p, simhost.Grouped)
		t.AddPoint("grouped (heuristic)", float64(p), stats.Speedup(seq.Elapsed, par.Elapsed))
	}
	naive := simhost.SimulateParallel(o, pm, 9, simhost.FCFS)
	t.AddPoint("one function per processor", 9, stats.Speedup(seq.Elapsed, naive.Elapsed))
	return t
}

// KatseffSweep reproduces the §4.2.2 comparison with Katseff's parallel
// assembler: speedup of a large and a small program over the processor
// count, showing the plateau past ~8 (large) and ~5 (small) processors.
func KatseffSweep(pm costmodel.Params) *stats.Table {
	t := &stats.Table{
		Title:  "Section 4.2.2: processor sweep (Katseff comparison)",
		XLabel: "#processors",
		YLabel: "speedup",
	}
	large := outlineOf(wgen.SyntheticProgram(wgen.Large, 8))
	small := outlineOf(wgen.SyntheticProgram(wgen.Small, 8))
	seqL := simhost.SimulateSequential(large, pm)
	seqS := simhost.SimulateSequential(small, pm)
	for p := 1; p <= 12; p++ {
		parL := simhost.SimulateParallel(large, pm, p, simhost.FCFS)
		parS := simhost.SimulateParallel(small, pm, p, simhost.FCFS)
		t.AddPoint("large program (8 x f_large)", float64(p), stats.Speedup(seqL.Elapsed, parL.Elapsed))
		t.AddPoint("small program (8 x f_small)", float64(p), stats.Speedup(seqS.Elapsed, parS.Elapsed))
	}
	return t
}

// HeadlineSpeedup reproduces the abstract's claim: "for typical programs in
// our environment, we observe a speedup ranging from 3 to 6 using not more
// than 9 processors". The typical mix: medium/large programs of 4-9
// functions on at most 9 workstations.
func HeadlineSpeedup(pm costmodel.Params) *stats.Table {
	t := &stats.Table{
		Title:  "Headline: speedup for typical programs (<= 9 processors)",
		XLabel: "#functions",
		YLabel: "speedup",
	}
	for _, size := range []wgen.Size{wgen.Medium, wgen.Large, wgen.Huge} {
		for _, n := range []int{4, 8} {
			o := outlineOf(wgen.SyntheticProgram(size, n))
			seq := simhost.SimulateSequential(o, pm)
			par := simhost.SimulateParallel(o, pm, 9, simhost.FCFS)
			t.AddPoint(size.String(), float64(n), stats.Speedup(seq.Elapsed, par.Elapsed))
		}
	}
	o := outlineOf(wgen.UserProgram())
	seq := simhost.SimulateSequential(o, pm)
	par := simhost.SimulateParallel(o, pm, 9, simhost.FCFS)
	t.AddPoint("user program", 9, stats.Speedup(seq.Elapsed, par.Elapsed))
	return t
}

// AllFigures returns every reproduced figure in paper order.
func AllFigures(pm costmodel.Params) []*stats.Table {
	return []*stats.Table{
		Fig03Tiny(pm),
		Fig04Large(pm),
		Fig05Huge(pm),
		Fig06Speedup(pm),
		Fig07SpeedupVsSize(pm),
		Fig08OverheadSmall(pm),
		Fig09OverheadMedium(pm),
		Fig10OverheadHuge(pm),
		Fig11UserProgram(pm),
		Fig12Small(pm),
		Fig13Medium(pm),
		Fig14AbsOverheadSmall(pm),
		Fig15AbsOverheadMedium(pm),
		Fig16AbsOverheadHuge(pm),
		KatseffSweep(pm),
		HeadlineSpeedup(pm),
		PmakeComparison(pm),
	}
}

// PmakeComparison reproduces the §3.4 discussion: parallel make exploits
// module-level parallelism with the sequential compiler; the parallel
// compiler exploits function-level parallelism within one module; and the
// two coexist. Workload: six independent 4-function f_medium modules built
// on the standard cluster.
func PmakeComparison(pm costmodel.Params) *stats.Table {
	const modules = 6
	var outlines []*parser.Outline
	for i := 0; i < modules; i++ {
		outlines = append(outlines, outlineOf(wgen.SyntheticProgram(wgen.Medium, 4)))
	}

	// Baseline: every module compiled sequentially, one after another, on
	// one workstation.
	serial := 0.0
	for _, o := range outlines {
		serial += simhost.SimulateSequential(o, pm).Elapsed
	}
	// Parallel make with the sequential compiler (the paper's [1,3]).
	pmakeSeq := simhost.SimulateBatch(outlines, pm, Workstations, simhost.BatchSequentialCompiler)
	// The parallel compiler, modules one after another.
	parSerial := 0.0
	for _, o := range outlines {
		parSerial += simhost.SimulateParallel(o, pm, Workstations, simhost.FCFS).Elapsed
	}
	// Coexistence: parallel make over modules, parallel compiler within.
	coexist := simhost.SimulateBatch(outlines, pm, Workstations, simhost.BatchParallelCompiler)

	t := &stats.Table{
		Title:  "Section 3.4: parallel make baseline and coexistence",
		XLabel: "scenario",
		YLabel: "makespan seconds (6 modules x 4 f_medium functions, 15 workstations)",
	}
	t.AddPoint("sequential everything", 1, serial)
	t.AddPoint("pmake + sequential compiler", 2, pmakeSeq)
	t.AddPoint("parallel compiler, serial modules", 3, parSerial)
	t.AddPoint("pmake + parallel compiler", 4, coexist)
	return t
}

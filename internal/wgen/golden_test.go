package wgen

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// The generators promise byte-identical output for identical parameters —
// wgen -h documents this as a guarantee, and the content-addressed cache
// tiers rely on it (a regenerated workload must hash to the same keys on
// every machine). These golden SHA-256 digests pin one representative
// program per kind; an intentional generator change must update them, and
// the failure message prints the new digest to make that a one-line edit.
var goldenPrograms = []struct {
	name string
	gen  func() []byte
	sum  string
}{
	{"sn-medium-4", func() []byte { return SyntheticProgram(Medium, 4) },
		"6f5dfd0aa27d3db2eec567ad372c3bc1668a39d867f814950660683c5e2c0b19"},
	{"sections-small-3", func() []byte { return MultiSectionProgram(Small, 3) },
		"93f8a8b2138c3549f49c018e27664d9fdc465fd540bdb746eacee6cd71fafcfc"},
	{"user", UserProgram,
		"bb754fcd3385eb41bcce1104991a7871429631f70f91e2abb96242e3d5a3c009"},
	{"mixed-12", func() []byte { return MixedProgram(12) },
		"5ff8ce5a274929e7e1944335d99ce4f7d88e758155af4afd77629e87fccbac3c"},
	{"wide-32x4", func() []byte { return WideProgram(32, 4) },
		"cdb6c5e0a768f43df8a499b141467f1402c9924a53b82ee51677ba2cda948ac6"},
	{"skewed-4x12", func() []byte { return SkewedProgram(4, 12) },
		"a75f9b51099d590531af465bde7cbe4a83f53a73ad6e6f72d57b3ff932b3434c"},
	{"small-funcs-32", func() []byte { return SmallFuncsProgram(32) },
		"c376717f612cc1dbfb6aee6edc07cf1aba6da1040242f1cd648d272a9318335c"},
}

func TestGoldenGeneratorOutput(t *testing.T) {
	for _, g := range goldenPrograms {
		t.Run(g.name, func(t *testing.T) {
			sum := sha256.Sum256(g.gen())
			if got := hex.EncodeToString(sum[:]); got != g.sum {
				t.Errorf("generator output changed: sha256 = %s, pinned %s\n"+
					"(if the change is intentional, update goldenPrograms)", got, g.sum)
			}
			// The guarantee is per-invocation too: a second call in the same
			// process must reproduce the bytes exactly.
			again := sha256.Sum256(g.gen())
			if again != sum {
				t.Errorf("generator not deterministic within one process")
			}
		})
	}
}

// MutateFunctions is the only seeded path: the same (source, k, seed) must
// pick the same functions and produce the same bytes, and a different seed
// must not silently collapse to the same edit.
func TestGoldenMutateDeterminism(t *testing.T) {
	src := SyntheticProgram(Medium, 8)
	m1, names1, err := MutateFunctions(src, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(m1)
	const want = "928590961b172138abcdadf4f0b7d45d4299d9c7adf44233d2dbd68ed31d917f"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("mutated output changed: sha256 = %s, pinned %s", got, want)
	}
	if len(names1) != 2 || names1[0] != "medium_2" || names1[1] != "medium_8" {
		t.Errorf("seed 7 picked %v, pinned [medium_2 medium_8]", names1)
	}
	m2, names2, err := MutateFunctions(src, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(m2) != sum {
		t.Errorf("same seed produced different bytes")
	}
	_ = names2
	m3, _, err := MutateFunctions(src, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(m3) == sum {
		t.Errorf("seed 8 produced identical bytes to seed 7")
	}
}

package wgen

import (
	"bytes"
	"testing"

	"repro/internal/compiler"
	"repro/internal/parser"
	"repro/internal/source"
)

func mutHashes(t *testing.T, src []byte) map[parser.FuncKey]parser.FuncHash {
	t.Helper()
	var bag source.DiagBag
	m := parser.Parse("m.w2", src, &bag)
	if m == nil || bag.HasErrors() {
		t.Fatalf("parse: %s", bag.String())
	}
	return parser.FuncHashes(m, src)
}

// TestMutateFunctions: the mutated program still compiles, the edit is
// deterministic in (src, k, seed), and exactly k function hashes change.
func TestMutateFunctions(t *testing.T) {
	src := SyntheticProgram(Small, 8)
	for _, k := range []int{1, 3, 8} {
		mutated, names, err := MutateFunctions(src, k, 11)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(names) != k {
			t.Fatalf("k=%d: edited %v", k, names)
		}
		again, _, err := MutateFunctions(src, k, 11)
		if err != nil || !bytes.Equal(mutated, again) {
			t.Errorf("k=%d: mutation is not deterministic", k)
		}
		other, _, err := MutateFunctions(src, k, 12)
		if err != nil || bytes.Equal(mutated, other) {
			t.Errorf("k=%d: different seeds produced the same mutation", k)
		}
		if _, err := compiler.CompileModule("m.w2", mutated, compiler.Options{}); err != nil {
			t.Fatalf("k=%d: mutated program does not compile: %v", k, err)
		}

		before, after := mutHashes(t, src), mutHashes(t, mutated)
		changed := 0
		for key, h := range before {
			if h != after[key] {
				changed++
			}
		}
		if changed != k {
			t.Errorf("k=%d: %d function hashes changed", k, changed)
		}
	}

	if _, _, err := MutateFunctions(src, 9, 1); err == nil {
		t.Error("k beyond the function count must error")
	}
	if _, _, err := MutateFunctions(src, 0, 1); err == nil {
		t.Error("k=0 must error")
	}
	if _, _, err := MutateFunctions([]byte("not a module"), 1, 1); err == nil {
		t.Error("unparseable source must error")
	}
}

package wgen

import (
	"fmt"
	"sort"

	"repro/internal/parser"
	"repro/internal/source"
)

// MutateFunctions returns a copy of the W2 source src in which the bodies of
// k distinct functions have been edited, plus the names of the edited
// functions in source order. The edit inserts a harmless local computation at
// the top of each chosen body, so the program still compiles and the chosen
// functions' incremental hashes change while every other function's stays
// identical. Which functions are chosen, and the literals inserted, are
// deterministic in (src, k, seed) — the same call always yields the same
// mutated program, which is what the incremental-recompilation benchmarks
// and tests need to be reproducible.
func MutateFunctions(src []byte, k int, seed uint64) ([]byte, []string, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("wgen: mutate: k must be positive, got %d", k)
	}
	var bag source.DiagBag
	outline := parser.ParseOutline("mutate.w2", src, &bag)
	if outline == nil || bag.HasErrors() {
		return nil, nil, fmt.Errorf("wgen: mutate: source does not parse: %s", bag.String())
	}
	funcs := outline.AllFunctions()
	editable := make([]int, 0, len(funcs))
	for i, f := range funcs {
		if f.BodyStart > 0 && f.BodyStart < len(src) && src[f.BodyStart] == '{' {
			editable = append(editable, i)
		}
	}
	if k > len(editable) {
		return nil, nil, fmt.Errorf("wgen: mutate: asked for %d edits but module has %d editable functions", k, len(editable))
	}

	// Seeded partial Fisher-Yates: the first k entries are the chosen
	// functions, distinct by construction.
	r := newRng(seed)
	for i := 0; i < k; i++ {
		j := i + r.intn(len(editable)-i)
		editable[i], editable[j] = editable[j], editable[i]
	}
	chosen := append([]int(nil), editable[:k]...)
	sort.Ints(chosen)

	// Splice insertions back-to-front so earlier offsets stay valid.
	out := append([]byte(nil), src...)
	names := make([]string, len(chosen))
	for i := len(chosen) - 1; i >= 0; i-- {
		f := funcs[chosen[i]]
		names[i] = f.Name
		v := fmt.Sprintf("__e%x_%d", seed&0xffffff, i)
		ins := fmt.Sprintf("\n        var %s: float = %d.5;\n        %s = %s * 0.25 + %d.125;",
			v, 1+r.intn(9), v, v, r.intn(8))
		at := f.BodyStart + 1 // just past the body's opening brace
		out = append(out[:at], append([]byte(ins), out[at:]...)...)
	}
	return out, names, nil
}

package wgen

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/compiler"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/warpsim"
)

func TestSizesAndNames(t *testing.T) {
	wantLines := []int{4, 35, 100, 280, 360}
	wantNames := []string{"f_tiny", "f_small", "f_medium", "f_large", "f_huge"}
	for i, s := range Sizes {
		if s.Lines() != wantLines[i] {
			t.Errorf("%s lines = %d, want %d", s, s.Lines(), wantLines[i])
		}
		if s.String() != wantNames[i] {
			t.Errorf("size %d name = %s, want %s", i, s, wantNames[i])
		}
	}
}

func TestFunctionDeterministic(t *testing.T) {
	a := Function("f", Medium, 42)
	b := Function("f", Medium, 42)
	if a != b {
		t.Error("generator is not deterministic")
	}
	c := Function("f", Medium, 43)
	if a == c {
		t.Error("different seeds should give different functions")
	}
}

func TestFunctionSizesApproximateTargets(t *testing.T) {
	for _, s := range Sizes {
		fn := Function("probe", s, 7)
		lines := strings.Count(fn, "\n")
		lo, hi := s.Lines()-s.Lines()/5-2, s.Lines()+s.Lines()/5+2
		if lines < lo || lines > hi {
			t.Errorf("%s: generated %d lines, want within [%d, %d]", s, lines, lo, hi)
		}
	}
}

func TestSyntheticProgramsParseAndCheck(t *testing.T) {
	for _, s := range Sizes {
		for _, n := range []int{1, 2, 4, 8} {
			src := SyntheticProgram(s, n)
			var bag source.DiagBag
			o := parser.ParseOutline("gen.w2", src, &bag)
			if bag.HasErrors() || o == nil {
				t.Fatalf("%s n=%d: %s\n%s", s, n, bag.String(), src)
			}
			if o.NumFunctions() != n {
				t.Errorf("%s n=%d: outline has %d functions", s, n, o.NumFunctions())
			}
			_, _, bag2 := compiler.Frontend("gen.w2", src)
			if bag2.HasErrors() {
				t.Fatalf("%s n=%d: semantic errors:\n%s", s, n, bag2.String())
			}
		}
	}
}

func TestSyntheticProgramCompilesAndRuns(t *testing.T) {
	// Compile and actually execute S_2 of f_small on the array simulator:
	// two sends expected (one per... only the entry runs, so one send).
	src := SyntheticProgram(Small, 2)
	res, err := compiler.CompileModule("s2.w2", src, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	arr := warpsim.NewArray(res.Module, warpsim.Config{MaxCycles: 5_000_000})
	out, _, err := arr.Run(nil)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if len(out) != 1 {
		t.Errorf("entry should send exactly one result, got %d", len(out))
	}
}

func TestTinyProgramRuns(t *testing.T) {
	src := SyntheticProgram(Tiny, 1)
	res, err := compiler.CompileModule("t.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	arr := warpsim.NewArray(res.Module, warpsim.Config{})
	out, _, err := arr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.5*2.5 + 0.5
	if len(out) != 1 || out[0].Float() != float32(want) {
		t.Errorf("got %v, want [%g]", out, want)
	}
}

func TestMultiSectionProgram(t *testing.T) {
	src := MultiSectionProgram(Small, 3)
	res, err := compiler.CompileModule("ms.w2", src, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	if len(res.Module.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(res.Module.Cells))
	}
	arr := warpsim.NewArray(res.Module, warpsim.Config{MaxCycles: 5_000_000})
	out, _, err := arr.Run(nil)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if len(out) != 3 {
		t.Errorf("each of 3 sections should contribute one output, got %d", len(out))
	}
}

func TestUserProgramStructure(t *testing.T) {
	src := UserProgram()
	var bag source.DiagBag
	o := parser.ParseOutline("user.w2", src, &bag)
	if bag.HasErrors() || o == nil {
		t.Fatalf("user program does not parse:\n%s", bag.String())
	}
	if len(o.Sections) != 3 || o.NumFunctions() != 9 {
		t.Fatalf("structure = %d sections / %d functions, want 3/9", len(o.Sections), o.NumFunctions())
	}
	// Sizes per §4.3: six functions of 5–45 lines, three of ~300.
	var small, large int
	for _, f := range o.AllFunctions() {
		switch {
		case f.Lines >= 4 && f.Lines <= 50:
			small++
		case f.Lines >= 240 && f.Lines <= 360:
			large++
		default:
			t.Errorf("function %s has unexpected size %d", f.Name, f.Lines)
		}
	}
	if small != 6 || large != 3 {
		t.Errorf("small=%d large=%d, want 6/3", small, large)
	}
	// And it must compile.
	if _, err := compiler.CompileModule("user.w2", src, compiler.Options{}); err != nil {
		t.Fatalf("user program does not compile: %v", err)
	}
}

func TestGeneratedWorkGrowsWithSize(t *testing.T) {
	// Compile work (measured in machine ops emitted) must grow strictly
	// with the nominal size — the property all the speedup curves rest on.
	var prev int
	for _, s := range Sizes {
		src := SyntheticProgram(s, 1)
		res, err := compiler.CompileModule("g.w2", src, compiler.Options{})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		ops := res.Funcs[0].GenStats.MachineOps
		if ops <= prev {
			t.Errorf("%s: machine ops %d not larger than previous size (%d)", s, ops, prev)
		}
		prev = ops
	}
}

// TestPipelinedGeneratedCodeMatchesUnpipelined compiles a generated program
// with and without software pipelining and requires identical simulator
// output — the strongest correctness check on the pipeliner over realistic
// kernels.
func TestPipelinedGeneratedCodeMatchesUnpipelined(t *testing.T) {
	for _, size := range []Size{Small, Medium} {
		src := SyntheticProgram(size, 1)
		run := func(opts compiler.Options) []float64 {
			res, err := compiler.CompileModule("d.w2", src, opts)
			if err != nil {
				t.Fatalf("%s: %v", size, err)
			}
			arr := warpsim.NewArray(res.Module, warpsim.Config{MaxCycles: 50_000_000})
			words, _, err := arr.Run(nil)
			if err != nil {
				t.Fatalf("%s: %v", size, err)
			}
			return res.Driver.DecodeOutput(words)
		}
		full := run(compiler.Options{})
		plain := run(compiler.Options{Codegen: codegen.Options{DisablePipelining: true}})
		if len(full) != len(plain) {
			t.Fatalf("%s: output lengths differ: %d vs %d", size, len(full), len(plain))
		}
		for i := range full {
			if full[i] != plain[i] {
				t.Errorf("%s: out[%d] differs: pipelined %g vs plain %g", size, i, full[i], plain[i])
			}
		}
	}
}

// TestSmallFuncsProgram checks the worst-case workload: n tiny functions in
// one section, all parsing to small outlines and compiling cleanly.
func TestSmallFuncsProgram(t *testing.T) {
	src := SmallFuncsProgram(32)
	var bag source.DiagBag
	o := parser.ParseOutline("small.w2", src, &bag)
	if o == nil || bag.HasErrors() {
		t.Fatalf("outline: %s", bag.String())
	}
	if len(o.Sections) != 1 || len(o.Sections[0].Functions) != 32 {
		t.Fatalf("expected 1 section with 32 functions, got %+v", o.Sections)
	}
	for _, fo := range o.Sections[0].Functions {
		if fo.Lines > 30 {
			t.Errorf("function %s has %d lines; every function must stay small", fo.Name, fo.Lines)
		}
	}
	if _, err := compiler.CompileModule("small.w2", src, compiler.Options{}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Deterministic: two generations are byte-identical.
	if string(SmallFuncsProgram(32)) != string(src) {
		t.Error("SmallFuncsProgram must be deterministic")
	}
}

func TestMixedProgram(t *testing.T) {
	src := MixedProgram(12)
	var bag source.DiagBag
	o := parser.ParseOutline("mixed.w2", src, &bag)
	if o == nil || bag.HasErrors() {
		t.Fatalf("outline: %s", bag.String())
	}
	if len(o.Sections) != 1 || len(o.Sections[0].Functions) != 13 {
		t.Fatalf("expected 1 section with 13 functions, got %+v", o.Sections)
	}
	// The straggler shape: exactly one huge function, the rest tiny.
	funcs := o.Sections[0].Functions
	if funcs[0].Name != "huge_1" || funcs[0].Lines < 300 {
		t.Errorf("first function must be the huge straggler, got %s (%d lines)", funcs[0].Name, funcs[0].Lines)
	}
	for _, fo := range funcs[1:] {
		if fo.Lines > 30 {
			t.Errorf("function %s has %d lines; every non-straggler must stay tiny", fo.Name, fo.Lines)
		}
	}
	if _, err := compiler.CompileModule("mixed.w2", src, compiler.Options{}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Deterministic: two generations are byte-identical.
	if string(MixedProgram(12)) != string(src) {
		t.Error("MixedProgram must be deterministic")
	}
}

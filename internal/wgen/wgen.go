// Package wgen generates the synthetic W2 workloads of the paper's
// evaluation (§4.1): functions of five controlled sizes derived from a
// Monte-Carlo-style simulation kernel, programs S_n containing n copies of
// one size, and the nine-function mechanical-engineering "user program" of
// §4.3.
//
// Each generated function is a loop nest (deeply nested for the larger
// sizes) of floating-point computation — "representative with regard to
// compilation speed of a computation kernel for the Warp array". The
// challenge for the compiler is keeping the pipelined functional units
// busy, so the kernels are float-heavy with real data flow.
package wgen

import (
	"fmt"
	"strings"
)

// Size selects one of the paper's five function sizes.
type Size int

const (
	Tiny   Size = iota // ~4 lines
	Small              // ~35 lines
	Medium             // ~100 lines
	Large              // ~280 lines
	Huge               // ~360 lines
)

// Sizes lists all five sizes in ascending order.
var Sizes = []Size{Tiny, Small, Medium, Large, Huge}

// Lines returns the paper's nominal source-line count for the size.
func (s Size) Lines() int {
	switch s {
	case Tiny:
		return 4
	case Small:
		return 35
	case Medium:
		return 100
	case Large:
		return 280
	case Huge:
		return 360
	}
	return 0
}

// String returns the paper's name for the size (f_tiny ... f_huge).
func (s Size) String() string {
	switch s {
	case Tiny:
		return "f_tiny"
	case Small:
		return "f_small"
	case Medium:
		return "f_medium"
	case Large:
		return "f_large"
	case Huge:
		return "f_huge"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// rng is a small deterministic xorshift generator so workloads are
// reproducible without importing math/rand's global state.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) pick(xs []string) string { return xs[r.intn(len(xs))] }

// Function emits one synthetic function of the given size as W2 source.
// The text is deterministic in (name, size, seed). The function takes no
// parameters and produces its result with send(Y, ...), so it can serve as
// a section entry.
func Function(name string, size Size, seed uint64) string {
	g := &gen{rng: newRng(seed ^ hash(name)), name: name}
	return g.function(size)
}

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

type gen struct {
	rng  *rng
	name string
	buf  strings.Builder
	ind  int
	line int
	seq  int
}

func (g *gen) w(format string, args ...any) {
	g.buf.WriteString(strings.Repeat("    ", g.ind))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
	g.line++
}

func (g *gen) fresh(prefix string) string {
	g.seq++
	return fmt.Sprintf("%s%d", prefix, g.seq)
}

// function builds the body as a sequence of Monte-Carlo kernel blocks until
// the target line count is reached.
func (g *gen) function(size Size) string {
	target := size.Lines()
	g.w("function %s() {", g.name)
	g.ind++

	if size == Tiny {
		// The 4-line function: the minimal cell computation.
		g.w("var v: float = 2.5;")
		g.w("send(Y, v * v + 0.5);")
	} else {
		// Shared state for all kernels.
		g.w("var state: float = %d.5;", 1+g.rng.intn(9))
		g.w("var buf: float[32];")
		g.w("var t: float;")
		g.w("var i: int;")
		g.w("var j: int;")
		if size >= Medium {
			g.w("var k: int;")
		}
		// Reserve lines for the trailing send and closing brace.
		for g.line < target-2 {
			remaining := target - 2 - g.line
			g.kernel(size, remaining)
		}
		g.w("send(Y, state);")
	}

	g.ind--
	g.w("}")
	return g.buf.String()
}

// kernel emits one loop-nest block sized to fit in at most `budget` lines.
// Two flavours alternate: recurrence-heavy kernels (every statement feeds
// the next through the accumulator — list-scheduled) and pipeline-friendly
// kernels (a deep non-recurrent chain folded into the accumulator once per
// iteration — exactly what modulo scheduling overlaps).
func (g *gen) kernel(size Size, budget int) {
	depth := 2
	if size >= Large {
		depth = 3
	}
	if size == Medium && g.rng.intn(2) == 0 {
		depth = 3
	}
	// A depth-d kernel needs roughly 2d + body lines; shrink to fit.
	for depth > 1 && budget < 2*depth+6 {
		depth--
	}
	if budget < 8 {
		// Tail filler: cheap straight-line statements.
		for n := 0; n < budget; n++ {
			g.w("state = state * 0.5 + %d.25;", g.rng.intn(7))
		}
		return
	}

	bodyBudget := budget - 2*depth - 3 // loop headers/braces + acc decl + fold
	acc := g.fresh("acc")
	g.w("var %s: float = 0.0;", acc)

	pipelineFriendly := g.rng.intn(2) == 0
	if pipelineFriendly {
		depth = 1 // innermost self-loops are what the pipeliner handles
	}

	vars := []string{"i", "j", "k"}[:depth]
	bounds := []int{15, 7, 3}
	if pipelineFriendly {
		// The buffer is indexed directly by the induction variable, so the
		// trip count stays within its 32 elements.
		bounds = []int{31}
	}
	extra := g.rng.intn(8)
	if pipelineFriendly {
		extra = 0
	}
	for d := 0; d < depth; d++ {
		g.w("for %s = 0 to %d {", vars[d], bounds[d]+extra)
		g.ind++
	}

	if pipelineFriendly {
		g.pipelineBody(acc, bodyBudget)
		for d := depth - 1; d >= 0; d-- {
			g.ind--
			g.w("}")
		}
		g.w("state = state * 0.5 + %s * 0.01;", acc)
		return
	}

	// Innermost statements: float-heavy expressions with array traffic —
	// the kind of code software pipelining exists for.
	// Expressions and updates are chosen contractive (coefficient sums
	// below one with bounded additive terms) so generated kernels stay
	// finite in float32 on the cell.
	exprs := []string{
		"t = float(i * 3 + j) * 0.37 + %s * 0.25;",
		"t = sqrt(abs(%s) + 1.5) * 0.81;",
		"t = max(%s, buf[j %% 32]) * 0.25 + min(t, 4.0);",
		"t = (t + %s) * 0.25 + float(j);",
		"t = buf[(i + j) %% 32] * 0.5 - %s * 0.0625;",
	}
	updates := []string{
		"%s = %s * 0.5 + t * 0.25;",
		"%s = %s * 0.5 + abs(t) * 0.375;",
		"%s = %s * 0.25 + min(t * t, 64.0) * 0.125;",
	}
	inner := bodyBudget - 2 // leave room for buf store and conditional
	if inner < 2 {
		inner = 2
	}
	if inner > 12 {
		inner = 12
	}
	for n := 0; n < inner; n++ {
		if n%2 == 0 {
			g.w(g.rng.pick(exprs), acc)
		} else {
			u := g.rng.pick(updates)
			g.w(u, acc, acc)
		}
	}
	g.w("buf[%s %% 32] = %s;", vars[depth-1], acc)

	for d := depth - 1; d >= 0; d-- {
		g.ind--
		g.w("}")
	}
	g.w("if %s > 1000.0 {", acc)
	g.ind++
	g.w("%s = %s * 0.001;", acc, acc)
	g.ind--
	g.w("}")
	g.w("state = state * 0.5 + %s * 0.01;", acc)
}

// pipelineBody emits a deep non-recurrent float chain on t (loads, fmuls,
// fadds) folded into the accumulator once — the classic software-pipelining
// workload: long per-iteration critical path, short loop-carried recurrence.
func (g *gen) pipelineBody(acc string, budget int) {
	// No modular indexing: integer remainder is an unpipelined 10-cycle
	// ALU operation on this machine and would dominate the initiation
	// interval. The loop bound keeps i within the buffer.
	chain := []string{
		"t = float(i) * 0.37 + 1.5;",
		"t = t * 0.5 + float(i) * 0.25;",
		"t = buf[i] * 0.5 + t * 0.25;",
		"t = t * 0.75 + 0.125;",
		"t = min(t, 8.0) + max(t * 0.125, -2.0);",
		"t = t * 0.5 - buf[i] * 0.125;",
	}
	n := budget - 2
	if n < 3 {
		n = 3
	}
	if n > 10 {
		n = 10
	}
	g.w(chain[0])
	for k := 1; k < n; k++ {
		g.w(chain[1+g.rng.intn(len(chain)-1)])
	}
	g.w("%s = %s * 0.5 + t * 0.03125;", acc, acc)
	g.w("buf[i] = t;")
}

// SyntheticProgram builds the paper's S_n test program: n functions of one
// size in a single section. The last function is the section entry. The
// module's only stream is its output (the synthetic kernels consume no
// input), so compiled programs run to completion on the simulator.
func SyntheticProgram(size Size, nfuncs int) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module s%d_%s (out ys: float[%d])\n\n", nfuncs, strings.TrimPrefix(size.String(), "f_"), nfuncs)
	sb.WriteString("section 1 of 1 {\n")
	for i := 1; i <= nfuncs; i++ {
		name := fmt.Sprintf("%s_%d", strings.TrimPrefix(size.String(), "f_"), i)
		fn := Function(name, size, uint64(i)*7919)
		for _, line := range strings.Split(strings.TrimRight(fn, "\n"), "\n") {
			sb.WriteString("    " + line + "\n")
		}
	}
	sb.WriteString("}\n")
	return []byte(sb.String())
}

// SmallFuncsProgram builds the paper's worst case: n tiny-to-small
// functions (4–24 lines, cycling deterministically) in a single section.
// Per-function dispatch overhead dominates modules like this — the workload
// where the paper measured no speedup and where batching earns its keep.
func SmallFuncsProgram(nfuncs int) []byte {
	if nfuncs < 1 {
		nfuncs = 1
	}
	lineCounts := []int{4, 9, 14, 19, 24, 6, 11, 16}
	var sb strings.Builder
	fmt.Fprintf(&sb, "module small%d (out ys: float[%d])\n\n", nfuncs, nfuncs)
	sb.WriteString("section 1 of 1 {\n")
	for i := 1; i <= nfuncs; i++ {
		name := fmt.Sprintf("tiny_%d", i)
		fn := sizedFunction(name, lineCounts[(i-1)%len(lineCounts)], uint64(i)*2654435761)
		for _, line := range strings.Split(strings.TrimRight(fn, "\n"), "\n") {
			sb.WriteString("    " + line + "\n")
		}
	}
	sb.WriteString("}\n")
	return []byte(sb.String())
}

// MixedProgram builds the straggler workload: one huge function followed by
// n tiny-to-small ones (4–24 lines, cycling deterministically) in a single
// section. The huge function dominates the parallel region's wall clock
// while the tiny ones finish almost immediately — the shape where a barrier
// master idles longest and an overlapped pipeline (frontend racing the
// fleet, sections linked as they stream in) wins the most. The last tiny
// function is the section entry.
func MixedProgram(nTiny int) []byte {
	if nTiny < 1 {
		nTiny = 1
	}
	lineCounts := []int{4, 9, 14, 19, 24, 6, 11, 16}
	var sb strings.Builder
	fmt.Fprintf(&sb, "module mixed%d (out ys: float[%d])\n\n", nTiny, nTiny+1)
	sb.WriteString("section 1 of 1 {\n")
	emit := func(fn string) {
		for _, line := range strings.Split(strings.TrimRight(fn, "\n"), "\n") {
			sb.WriteString("    " + line + "\n")
		}
	}
	emit(Function("huge_1", Huge, 7919))
	for i := 1; i <= nTiny; i++ {
		name := fmt.Sprintf("tiny_%d", i)
		emit(sizedFunction(name, lineCounts[(i-1)%len(lineCounts)], uint64(i)*2654435761))
	}
	sb.WriteString("}\n")
	return []byte(sb.String())
}

// MultiSectionProgram builds a program with one function per section — the
// original Warp usage where every section runs on its own group of cells.
// Each section forwards its input and adds its own result, so the sections
// form a pipeline.
func MultiSectionProgram(size Size, nsections int) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module m%d_%s (out ys: float[%d])\n\n", nsections, strings.TrimPrefix(size.String(), "f_"), nsections)
	for s := 1; s <= nsections; s++ {
		fmt.Fprintf(&sb, "section %d of %d {\n", s, nsections)
		name := fmt.Sprintf("cell_%d", s)
		fn := forwardingFunction(name, size, uint64(s)*104729, s-1)
		for _, line := range strings.Split(strings.TrimRight(fn, "\n"), "\n") {
			sb.WriteString("    " + line + "\n")
		}
		sb.WriteString("}\n")
		if s < nsections {
			sb.WriteString("\n")
		}
	}
	return []byte(sb.String())
}

// forwardingFunction is a synthetic function that first relays `relay`
// upstream values from X to Y (so earlier sections' outputs pass through),
// then computes its kernel and sends its own result.
func forwardingFunction(name string, size Size, seed uint64, relay int) string {
	g := &gen{rng: newRng(seed ^ hash(name)), name: name}
	target := size.Lines()
	g.w("function %s() {", g.name)
	g.ind++
	if relay > 0 {
		g.w("var r: int;")
		g.w("var rv: float;")
		g.w("for r = 0 to %d {", relay-1)
		g.ind++
		g.w("receive(X, rv);")
		g.w("send(Y, rv);")
		g.ind--
		g.w("}")
	}
	g.w("var state: float = 3.5;")
	g.w("var buf: float[32];")
	g.w("var t: float;")
	g.w("var i: int;")
	g.w("var j: int;")
	g.w("var k: int;")
	for g.line < target-2 {
		g.kernel(size, target-2-g.line)
	}
	g.w("send(Y, state);")
	g.ind--
	g.w("}")
	return g.buf.String()
}

// WideProgram builds the frontend-scaling workload: nfuncs same-sized
// medium functions spread evenly across nsections sections (earlier sections
// take the remainder). Every function costs the frontend about the same, so
// the module's parse+check wall time under a parallel frontend should shrink
// toward the cost of one function — the shape BenchmarkParallelFrontend
// measures. Each section's entry is a forwarding function, so the sections
// form a runnable pipeline exactly like MultiSectionProgram's.
func WideProgram(nfuncs, nsections int) []byte {
	if nsections < 1 {
		nsections = 1
	}
	if nfuncs < nsections {
		nfuncs = nsections
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "module wide%dx%d (out ys: float[%d])\n\n", nfuncs, nsections, nsections)
	per := nfuncs / nsections
	rem := nfuncs % nsections
	fid := 0
	for s := 1; s <= nsections; s++ {
		n := per
		if s <= rem {
			n++
		}
		fmt.Fprintf(&sb, "section %d of %d {\n", s, nsections)
		emit := func(fn string) {
			for _, line := range strings.Split(strings.TrimRight(fn, "\n"), "\n") {
				sb.WriteString("    " + line + "\n")
			}
		}
		for i := 1; i < n; i++ {
			fid++
			emit(Function(fmt.Sprintf("wide_%d", fid), Medium, uint64(fid)*6700417))
		}
		fid++
		emit(forwardingFunction(fmt.Sprintf("wide_%d", fid), Medium, uint64(fid)*6700417, s-1))
		sb.WriteString("}\n")
		if s < nsections {
			sb.WriteString("\n")
		}
	}
	return []byte(sb.String())
}

// SkewedProgram builds the straggler-section workload: nsections sections
// where section 1 holds the bulk of the compile cost — nHeavy small
// functions (20–60 lines, cycling deterministically) plus its forwarding
// entry — while every other section is a single tiny forwarding entry. Under
// a static per-section plan the heavy section's worker queue drags while the
// tiny sections' finish instantly: exactly the regime where a global
// work-stealing scheduler lets the idle slots drain the straggler's queue
// (and crack its batches open). Function sizes stay small enough that the
// heavy section's combined code fits a cell's 16K-word store.
func SkewedProgram(nsections, nHeavy int) []byte {
	if nsections < 2 {
		nsections = 2
	}
	if nHeavy < 4 {
		nHeavy = 4
	}
	if nHeavy > 15 {
		nHeavy = 15
	}
	lineCounts := []int{35, 60, 20, 45, 25, 55, 30, 40}
	var sb strings.Builder
	fmt.Fprintf(&sb, "module skew%dx%d (out ys: float[%d])\n\n", nHeavy, nsections, nsections)
	emit := func(fn string) {
		for _, line := range strings.Split(strings.TrimRight(fn, "\n"), "\n") {
			sb.WriteString("    " + line + "\n")
		}
	}
	sb.WriteString(fmt.Sprintf("section 1 of %d {\n", nsections))
	for i := 1; i <= nHeavy; i++ {
		emit(sizedFunction(fmt.Sprintf("heavy_%d", i), lineCounts[(i-1)%len(lineCounts)], uint64(i)*15485863))
	}
	emit(forwardingFunction("heavy_entry", Small, 15485863, 0))
	sb.WriteString("}\n")
	for s := 2; s <= nsections; s++ {
		sb.WriteString("\n")
		fmt.Fprintf(&sb, "section %d of %d {\n", s, nsections)
		emit(forwardingFunction(fmt.Sprintf("lite_%d", s), Tiny, uint64(s)*32452843, s-1))
		sb.WriteString("}\n")
	}
	return []byte(sb.String())
}

// UserProgram reproduces the structure of §4.3's mechanical-engineering
// application: three section programs with three functions each. Per
// section, two small functions (5–45 lines, the paper's 2–6 minute
// compiles) and one ~300-line entry (the 19–22 minute compiles).
func UserProgram() []byte {
	var sb strings.Builder
	sb.WriteString("module mechapp (out ys: float[3])\n\n")
	smallLines := []int{8, 45, 12, 30, 5, 38} // between 5 and 45 lines
	si := 0
	for s := 1; s <= 3; s++ {
		fmt.Fprintf(&sb, "section %d of 3 {\n", s)
		for f := 1; f <= 2; f++ {
			name := fmt.Sprintf("aux_%d_%d", s, f)
			fn := sizedFunction(name, smallLines[si], uint64(s*10+f))
			si++
			for _, line := range strings.Split(strings.TrimRight(fn, "\n"), "\n") {
				sb.WriteString("    " + line + "\n")
			}
		}
		name := fmt.Sprintf("main_%d", s)
		fn := sizedFunction(name, 300, uint64(s*100))
		for _, line := range strings.Split(strings.TrimRight(fn, "\n"), "\n") {
			sb.WriteString("    " + line + "\n")
		}
		sb.WriteString("}\n")
		if s < 3 {
			sb.WriteString("\n")
		}
	}
	return []byte(sb.String())
}

// sizedFunction emits a function with an explicit target line count.
func sizedFunction(name string, lines int, seed uint64) string {
	g := &gen{rng: newRng(seed ^ hash(name)), name: name}
	g.w("function %s() {", g.name)
	g.ind++
	if lines <= 6 {
		g.w("var v: float = 1.5;")
		g.w("send(Y, v * 3.0 - 0.25);")
	} else {
		g.w("var state: float = 2.5;")
		g.w("var buf: float[32];")
		g.w("var t: float;")
		g.w("var i: int;")
		g.w("var j: int;")
		g.w("var k: int;")
		size := Small
		if lines > 150 {
			size = Large
		} else if lines > 60 {
			size = Medium
		}
		for g.line < lines-2 {
			g.kernel(size, lines-2-g.line)
		}
		g.w("send(Y, state);")
	}
	g.ind--
	g.w("}")
	return g.buf.String()
}

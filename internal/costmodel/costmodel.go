// Package costmodel calibrates the discrete-event simulation of the 1989
// host system: how many CPU-seconds each compiler phase costs on one SUN
// workstation, how big Lisp working sets are, and the capacities of the
// shared Ethernet and file server.
//
// One parameter set drives every reproduced figure; nothing is tuned per
// experiment. The anchors come from the paper itself:
//
//   - §4.3: ~300-line functions compile in 19–22 minutes, 5–45-line
//     functions in 2–6 minutes (sequential compiler).
//   - §3.4: parsing is under 5% of sequential compilation time.
//   - §4.2.3: system overhead contributors are Lisp process startup (core
//     image download), network load, garbage collection, file-server load;
//     the sequential compiler swaps when a program exceeds one
//     workstation's memory ("negative system overhead").
package costmodel

// Params holds every knob of the simulated host system.
type Params struct {
	// --- compiler phase costs (CPU seconds on one workstation) ---

	// ParseSecPerLine is phase 1 (parsing + semantic checking) per source
	// line; it also prices the master's extra structural parse.
	ParseSecPerLine float64
	// CompileFixed + CompileSecPerLine×lines price phases 2+3 for one
	// function; DepthFactor multiplies per loop-nesting level beyond one
	// (optimization and scheduling work grows with nesting).
	CompileFixed      float64
	CompileSecPerLine float64
	DepthFactor       float64
	// AsmSecPerLine prices phase 4 assembly per function line (sequential).
	AsmSecPerLine float64
	// LinkFixed prices final linking and download-module generation.
	LinkFixed float64
	// CombineSecPerFunc is the section master's result/diagnostic combining.
	CombineSecPerFunc float64
	// MasterFixed is the C master/section-master process overhead.
	MasterFixed float64

	// --- host system ---

	// LispStartupSec is Common Lisp process creation and initialization
	// (excluding the core-image download, priced via ImageMB).
	LispStartupSec float64
	// ImageMB is the Lisp core image pulled from the file server at
	// process start.
	ImageMB float64
	// ObjectMB is the compiled-object writeback per function.
	ObjectMB float64
	// EthernetMBps and FileServerMBps are the shared-medium capacities.
	EthernetMBps   float64
	FileServerMBps float64

	// --- memory model ---

	// NodeMemMB is one workstation's usable memory. WSBaseMB is the
	// resident Lisp system; ModuleMBPerLine the parse trees and symbol
	// tables for the whole module (held by every compiler process);
	// WSPerLineMB the compiler's working set per source line of the
	// function being compiled; RetainPerLineMB what the long-lived
	// sequential Lisp process retains per already-compiled line (heap
	// growth that eventually forces paging — the paper's "program that
	// does not fit into the local memory and system space of a single
	// workstation").
	NodeMemMB       float64
	WSBaseMB        float64
	ModuleMBPerLine float64
	WSPerLineMB     float64
	RetainPerLineMB float64
	// SwapCPUFactor inflates CPU time per unit of memory pressure
	// (excess/NodeMem, capped at MaxPressure — cold retained pages are
	// evicted once and only the active set thrashes); SwapIOFactor converts
	// CPU-seconds×pressure into megabytes paged to the (diskless!) file
	// server over the Ethernet.
	SwapCPUFactor float64
	SwapIOFactor  float64
	MaxPressure   float64
	// GCSecPerMB prices garbage collection per MB of working set per
	// compiled function.
	GCSecPerMB float64
}

// Default1989 is the calibrated parameter set used by all experiments.
func Default1989() Params {
	return Params{
		ParseSecPerLine:   0.06,
		CompileFixed:      4.0,
		CompileSecPerLine: 3.2,
		DepthFactor:       1.18,
		AsmSecPerLine:     0.3,
		LinkFixed:         4.0,
		CombineSecPerFunc: 1.5,
		MasterFixed:       3.0,

		LispStartupSec: 25.0,
		ImageMB:        12.0,
		ObjectMB:       0.25,
		EthernetMBps:   1.0, // 10 Mbit/s Ethernet, realistically ~8 Mbit/s
		FileServerMBps: 1.6,

		NodeMemMB:       16.0,
		WSBaseMB:        12.0,
		ModuleMBPerLine: 0.005,
		WSPerLineMB:     0.01,
		RetainPerLineMB: 0.05,
		SwapCPUFactor:   1.0,
		SwapIOFactor:    0.5,
		MaxPressure:     0.25,
		GCSecPerMB:      0.5,
	}
}

// ParseSec prices phase 1 for a module of totalLines.
func (p Params) ParseSec(totalLines int) float64 {
	return float64(totalLines) * p.ParseSecPerLine
}

// CompileSec prices phases 2+3 for one function, before memory effects.
func (p Params) CompileSec(lines, loopDepth int) float64 {
	c := p.CompileFixed + p.CompileSecPerLine*float64(lines)
	for d := 1; d < loopDepth; d++ {
		c *= p.DepthFactor
	}
	return c
}

// AsmSec prices phase-4 assembly for one function.
func (p Params) AsmSec(lines int) float64 {
	return p.AsmSecPerLine * float64(lines)
}

// WorkingSetMB is the compiler's working set while compiling one function,
// in a process whose parse trees and symbol tables cover contextLines of
// source (the whole module for the sequential compiler; only the process's
// own partition for a parallel function master — the paper's "each works on
// a smaller subproblem"), plus retainedMB of accumulated heap.
func (p Params) WorkingSetMB(lines, contextLines int, retainedMB float64) float64 {
	return p.WSBaseMB + p.ModuleMBPerLine*float64(contextLines) +
		p.WSPerLineMB*float64(lines) + retainedMB
}

// MemoryPressure returns excess/NodeMem, capped at MaxPressure (0 when the
// working set fits).
func (p Params) MemoryPressure(wsMB float64) float64 {
	if wsMB <= p.NodeMemMB {
		return 0
	}
	pr := (wsMB - p.NodeMemMB) / p.NodeMemMB
	if p.MaxPressure > 0 && pr > p.MaxPressure {
		pr = p.MaxPressure
	}
	return pr
}

// SwapCPU returns the CPU inflation for a compile under memory pressure.
func (p Params) SwapCPU(cpuSec, pressure float64) float64 {
	return cpuSec * p.SwapCPUFactor * pressure
}

// SwapMB returns the paging traffic (to the file server) for a compile.
func (p Params) SwapMB(cpuSec, pressure float64) float64 {
	return cpuSec * pressure * p.SwapIOFactor
}

// GCSec prices garbage collection for one compiled function.
func (p Params) GCSec(wsMB float64) float64 {
	return p.GCSecPerMB * wsMB
}

package costmodel

import (
	"testing"
	"testing/quick"
)

func TestDefaultsSane(t *testing.T) {
	p := Default1989()
	if p.CompileSecPerLine <= 0 || p.ParseSecPerLine <= 0 || p.LispStartupSec <= 0 {
		t.Fatal("cost parameters must be positive")
	}
	if p.NodeMemMB <= p.WSBaseMB {
		t.Error("the Lisp base image must fit in node memory")
	}
	if p.MaxPressure <= 0 || p.MaxPressure > 1 {
		t.Errorf("MaxPressure = %g out of (0,1]", p.MaxPressure)
	}
}

func TestCompileSecMonotone(t *testing.T) {
	p := Default1989()
	prev := 0.0
	for _, lines := range []int{4, 35, 100, 280, 360} {
		c := p.CompileSec(lines, 2)
		if c <= prev {
			t.Errorf("CompileSec(%d) = %g not increasing", lines, c)
		}
		prev = c
	}
	if p.CompileSec(100, 3) <= p.CompileSec(100, 2) {
		t.Error("loop depth must increase cost")
	}
}

func TestPaperAnchors(t *testing.T) {
	p := Default1989()
	// §4.3: ~300-line functions take 19-22 minutes.
	if c := p.CompileSec(300, 3); c < 900 || c > 1500 {
		t.Errorf("300-line compile %.0fs outside the 15-25 minute band", c)
	}
	// §3.4: parsing under 5%.
	if p.ParseSec(300) > 0.05*p.CompileSec(300, 2) {
		t.Error("parsing exceeds 5% of compilation")
	}
}

func TestPressureAndSwap(t *testing.T) {
	p := Default1989()
	if p.MemoryPressure(p.NodeMemMB-1) != 0 {
		t.Error("no pressure below the memory size")
	}
	pr := p.MemoryPressure(p.NodeMemMB * 1.1)
	if pr <= 0 {
		t.Error("pressure above memory must be positive")
	}
	if p.SwapCPU(100, pr) <= 0 || p.SwapMB(100, pr) <= 0 {
		t.Error("swap costs must scale with pressure")
	}
	if p.SwapCPU(100, 0) != 0 || p.SwapMB(100, 0) != 0 {
		t.Error("no pressure, no swap")
	}
}

func TestWorkingSetComponents(t *testing.T) {
	p := Default1989()
	base := p.WorkingSetMB(0, 0, 0)
	if base != p.WSBaseMB {
		t.Errorf("empty working set = %g, want %g", base, p.WSBaseMB)
	}
	f := func(lines, ctx uint16, retained float64) bool {
		if retained < 0 {
			retained = -retained
		}
		ws := p.WorkingSetMB(int(lines), int(ctx), retained)
		return ws >= base && ws >= retained &&
			p.WorkingSetMB(int(lines)+1, int(ctx), retained) >= ws
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGCSecScalesWithHeap(t *testing.T) {
	p := Default1989()
	if p.GCSec(20) <= p.GCSec(10) {
		t.Error("GC must scale with working set")
	}
}

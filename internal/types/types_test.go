package types

import (
	"testing"
	"testing/quick"
)

func TestBasicIdentity(t *testing.T) {
	for _, k := range []Kind{Int, Float, Bool, Void, Invalid} {
		b := BasicOf(k)
		if b.Kind != k {
			t.Errorf("BasicOf(%d).Kind = %d", k, b.Kind)
		}
		if !b.Equal(BasicOf(k)) {
			t.Errorf("%s not equal to itself", b)
		}
	}
	if IntType.Equal(FloatType) || BoolType.Equal(IntType) {
		t.Error("distinct basics compare equal")
	}
	if BasicOf(Kind(99)) != InvalidType {
		t.Error("unknown kind must map to invalid")
	}
}

func TestBasicStrings(t *testing.T) {
	cases := map[Type]string{
		IntType: "int", FloatType: "float", BoolType: "bool", VoidType: "void", InvalidType: "invalid",
	}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%v.String() = %q, want %q", ty, ty.String(), want)
		}
	}
}

func TestIsNumericScalar(t *testing.T) {
	if !IntType.IsNumeric() || !FloatType.IsNumeric() || BoolType.IsNumeric() {
		t.Error("IsNumeric wrong")
	}
	if !IsScalar(IntType) || !IsScalar(BoolType) || IsScalar(VoidType) {
		t.Error("IsScalar wrong")
	}
	arr := &Array{Elem: FloatType, Len: 3}
	if IsScalar(arr) || IsNumeric(arr) {
		t.Error("arrays are neither scalar nor numeric")
	}
	if !IsInvalid(nil) || !IsInvalid(InvalidType) || IsInvalid(IntType) {
		t.Error("IsInvalid wrong")
	}
}

func TestArrayStructure(t *testing.T) {
	a := &Array{Elem: &Array{Elem: FloatType, Len: 4}, Len: 3}
	if a.String() != "float[3][4]" {
		t.Errorf("String = %q", a.String())
	}
	if a.TotalLen() != 12 {
		t.Errorf("TotalLen = %d", a.TotalLen())
	}
	if !a.ScalarElem().Equal(FloatType) {
		t.Errorf("ScalarElem = %v", a.ScalarElem())
	}
	same := &Array{Elem: &Array{Elem: FloatType, Len: 4}, Len: 3}
	if !a.Equal(same) {
		t.Error("structurally equal arrays compare unequal")
	}
	diffLen := &Array{Elem: &Array{Elem: FloatType, Len: 5}, Len: 3}
	diffElem := &Array{Elem: &Array{Elem: IntType, Len: 4}, Len: 3}
	if a.Equal(diffLen) || a.Equal(diffElem) || a.Equal(FloatType) {
		t.Error("unequal arrays compare equal")
	}
}

func TestFuncSignatures(t *testing.T) {
	f := &Func{Params: []Type{IntType, FloatType}, Result: FloatType}
	if f.String() != "function(int, float): float" {
		t.Errorf("String = %q", f.String())
	}
	v := &Func{Result: VoidType}
	if v.String() != "function()" {
		t.Errorf("String = %q", v.String())
	}
	if !f.Equal(&Func{Params: []Type{IntType, FloatType}, Result: FloatType}) {
		t.Error("equal signatures compare unequal")
	}
	if f.Equal(v) || f.Equal(&Func{Params: []Type{IntType, IntType}, Result: FloatType}) || f.Equal(IntType) {
		t.Error("unequal signatures compare equal")
	}
}

func TestSizeWords(t *testing.T) {
	cases := []struct {
		ty   Type
		want int
	}{
		{IntType, 1}, {FloatType, 1}, {BoolType, 1},
		{VoidType, 0}, {InvalidType, 0},
		{&Array{Elem: FloatType, Len: 7}, 7},
		{&Array{Elem: &Array{Elem: IntType, Len: 2}, Len: 5}, 10},
		{&Func{Result: VoidType}, 0},
	}
	for _, c := range cases {
		if got := SizeWords(c.ty); got != c.want {
			t.Errorf("SizeWords(%v) = %d, want %d", c.ty, got, c.want)
		}
	}
}

// Property: nested array construction is associative in total length, and
// Equal is reflexive for arbitrary nesting shapes.
func TestArrayProperties(t *testing.T) {
	f := func(dims []uint8) bool {
		if len(dims) == 0 || len(dims) > 5 {
			return true
		}
		var build func(i int) Type
		build = func(i int) Type {
			if i == len(dims) {
				return FloatType
			}
			return &Array{Elem: build(i + 1), Len: int(dims[i]%9) + 1}
		}
		a := build(0).(*Array)
		want := 1
		for _, d := range dims {
			want *= int(d%9) + 1
		}
		return a.TotalLen() == want && a.Equal(build(0)) && SizeWords(a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

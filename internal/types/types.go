// Package types defines the semantic types of the W2 language: the scalar
// types int, float and bool, fixed-size (possibly multi-dimensional) arrays
// of scalars, and function signatures. Type identity is structural.
package types

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all W2 types.
type Type interface {
	String() string
	// Equal reports structural type identity.
	Equal(Type) bool
}

// Kind enumerates the basic types.
type Kind int

const (
	Invalid Kind = iota
	Int
	Float
	Bool
	Void // the "type" of a function without a result
)

// Basic is a scalar type (or Void / Invalid).
type Basic struct{ Kind Kind }

var (
	IntType     = &Basic{Int}
	FloatType   = &Basic{Float}
	BoolType    = &Basic{Bool}
	VoidType    = &Basic{Void}
	InvalidType = &Basic{Invalid}
)

// BasicOf returns the canonical Basic for a kind.
func BasicOf(k Kind) *Basic {
	switch k {
	case Int:
		return IntType
	case Float:
		return FloatType
	case Bool:
		return BoolType
	case Void:
		return VoidType
	}
	return InvalidType
}

func (b *Basic) String() string {
	switch b.Kind {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Void:
		return "void"
	}
	return "invalid"
}

func (b *Basic) Equal(t Type) bool {
	o, ok := t.(*Basic)
	return ok && o.Kind == b.Kind
}

// IsNumeric reports whether b is int or float.
func (b *Basic) IsNumeric() bool { return b.Kind == Int || b.Kind == Float }

// Array is a fixed-size array type. Multi-dimensional arrays are arrays of
// arrays; Elem of the innermost dimension is a scalar Basic.
type Array struct {
	Elem Type
	Len  int
}

func (a *Array) String() string {
	// Render int[3][4] style: collect dims outside-in.
	dims := []int{a.Len}
	elem := a.Elem
	for {
		inner, ok := elem.(*Array)
		if !ok {
			break
		}
		dims = append(dims, inner.Len)
		elem = inner.Elem
	}
	var sb strings.Builder
	sb.WriteString(elem.String())
	for _, d := range dims {
		fmt.Fprintf(&sb, "[%d]", d)
	}
	return sb.String()
}

func (a *Array) Equal(t Type) bool {
	o, ok := t.(*Array)
	return ok && o.Len == a.Len && a.Elem.Equal(o.Elem)
}

// ScalarElem returns the innermost element type of a (possibly nested) array.
func (a *Array) ScalarElem() Type {
	e := a.Elem
	for {
		inner, ok := e.(*Array)
		if !ok {
			return e
		}
		e = inner.Elem
	}
}

// TotalLen returns the total number of scalar elements in the array.
func (a *Array) TotalLen() int {
	n := a.Len
	e := a.Elem
	for {
		inner, ok := e.(*Array)
		if !ok {
			return n
		}
		n *= inner.Len
		e = inner.Elem
	}
}

// Func is a function signature.
type Func struct {
	Params []Type
	Result Type // VoidType if none
}

func (f *Func) String() string {
	var sb strings.Builder
	sb.WriteString("function(")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(")")
	if !f.Result.Equal(VoidType) {
		sb.WriteString(": ")
		sb.WriteString(f.Result.String())
	}
	return sb.String()
}

func (f *Func) Equal(t Type) bool {
	o, ok := t.(*Func)
	if !ok || len(o.Params) != len(f.Params) || !f.Result.Equal(o.Result) {
		return false
	}
	for i := range f.Params {
		if !f.Params[i].Equal(o.Params[i]) {
			return false
		}
	}
	return true
}

// IsScalar reports whether t is int, float or bool.
func IsScalar(t Type) bool {
	b, ok := t.(*Basic)
	return ok && (b.Kind == Int || b.Kind == Float || b.Kind == Bool)
}

// IsNumeric reports whether t is int or float.
func IsNumeric(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.IsNumeric()
}

// IsInvalid reports whether t is the invalid type or nil. Checkers use the
// invalid type to suppress cascading errors.
func IsInvalid(t Type) bool {
	if t == nil {
		return true
	}
	b, ok := t.(*Basic)
	return ok && b.Kind == Invalid
}

// SizeWords returns the storage size of t in machine words. Scalars occupy
// one word on the Warp cell (32-bit words); arrays occupy their total length.
func SizeWords(t Type) int {
	switch t := t.(type) {
	case *Basic:
		if t.Kind == Void || t.Kind == Invalid {
			return 0
		}
		return 1
	case *Array:
		return t.TotalLen()
	}
	return 0
}

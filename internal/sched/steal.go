// Work-stealing run queue: one fleet of dispatch slots shared by every
// section master, replacing the static per-section plans. Each slot owns a
// deque seeded LPT-style (cost-descending, least-loaded slot first); owners
// pop expensive units from the front, and an idle slot steals the back half
// of the most-loaded victim's queue. When a victim is down to one queued
// multi-function batch, the thief cracks it open with SplitUnit — mid-flight
// rebalancing that a static plan cannot do. Stealing only reorders
// *execution*; result emission stays keyed by declaration index upstream, so
// output is word-identical to sequential at every worker count.
package sched

import (
	"sort"
	"sync"
	"time"
)

// StealStats counts the stealer's rebalancing activity.
type StealStats struct {
	// Steals counts steal operations (an idle slot taking work from a
	// victim's deque); BatchSplits the subset that cracked a queued
	// multi-function unit open because the victim had nothing else.
	Steals      int
	BatchSplits int
	// StealLatency totals the time thieves spent between running dry and
	// acquiring stolen work.
	StealLatency time.Duration
	// IdleTime is each slot's total time parked with no work anywhere in
	// the system — the straggler regime the stealer exists to shrink.
	IdleTime []time.Duration
}

// stealItem pairs a queued unit with its submitter's dispatch closure, so
// one fleet can serve many section masters at once.
type stealItem struct {
	unit Unit
	run  func(Unit)
}

// Stealer is the shared work-stealing scheduler. Units are submitted per
// section (Submit) and executed by a fixed fleet of slot goroutines; every
// submitted unit's run closure is invoked exactly once per resulting
// fragment (splits cover the unit's tasks exactly). Close drains what is
// left and retires the fleet.
//
// The deques share one mutex: dispatch units are whole compile RPCs
// (milliseconds at minimum), so queue operations are never the bottleneck
// and the flat locking keeps split/steal atomicity trivial.
type Stealer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]stealItem
	loads  []float64 // summed queued cost per slot
	closed bool
	stats  StealStats
	wg     sync.WaitGroup
}

// NewStealer starts a fleet of nslots slot goroutines (clamped to ≥1).
func NewStealer(nslots int) *Stealer {
	if nslots < 1 {
		nslots = 1
	}
	s := &Stealer{
		deques: make([][]stealItem, nslots),
		loads:  make([]float64, nslots),
	}
	s.stats.IdleTime = make([]time.Duration, nslots)
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(nslots)
	for i := 0; i < nslots; i++ {
		go s.slot(i)
	}
	return s
}

// Submit seeds the units onto the fleet's deques LPT-style: cost-descending,
// each to the currently least-loaded slot, so the initial placement matches
// the static plan's balance and stealing only has to fix what the estimator
// got wrong. run is invoked once per unit (or per split fragment); closures
// from different sections interleave freely on the shared fleet.
//
// Submitting to a closed stealer runs the units synchronously in the
// caller's goroutine — late work is never dropped and never hangs.
func (s *Stealer) Submit(units []Unit, run func(Unit)) {
	ordered := append([]Unit(nil), units...)
	sortUnitsByCostDesc(ordered)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		for _, u := range ordered {
			run(u)
		}
		return
	}
	for _, u := range ordered {
		least := 0
		for j := 1; j < len(s.loads); j++ {
			if s.loads[j] < s.loads[least] {
				least = j
			}
		}
		s.deques[least] = append(s.deques[least], stealItem{unit: u, run: run})
		s.loads[least] += u.Cost
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Stats snapshots the stealer's counters.
func (s *Stealer) Stats() StealStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.IdleTime = append([]time.Duration(nil), s.stats.IdleTime...)
	return out
}

// Close retires the fleet without blocking: slots finish their in-flight
// units, drain whatever is still queued (under a cancelled context those
// runs return immediately), and exit. Wait blocks until they have.
func (s *Stealer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Wait blocks until every slot goroutine has exited (Close must have been
// called, or Wait never returns).
func (s *Stealer) Wait() {
	s.wg.Wait()
}

// slot is one fleet goroutine: pop own work from the front, steal when dry,
// park when the whole system is dry.
func (s *Stealer) slot(id int) {
	defer s.wg.Done()
	for {
		it, ok := s.next(id)
		if !ok {
			return
		}
		it.run(it.unit)
	}
}

// next returns the slot's next unit: its own deque's front, else the back
// half of the most-loaded victim's deque, else it parks until Submit or
// Close wakes it.
func (s *Stealer) next(id int) (stealItem, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var drySince time.Time // set the first time this call finds its own deque empty
	for {
		if len(s.deques[id]) > 0 {
			it := s.deques[id][0]
			s.deques[id] = s.deques[id][1:]
			s.loads[id] -= it.unit.Cost
			return it, true
		}
		if victim := s.victim(id); victim >= 0 {
			if drySince.IsZero() {
				drySince = time.Now()
			}
			it := s.steal(id, victim)
			s.stats.StealLatency += time.Since(drySince)
			return it, true
		}
		if s.closed {
			return stealItem{}, false
		}
		t := time.Now()
		s.cond.Wait()
		s.stats.IdleTime[id] += time.Since(t)
		if drySince.IsZero() {
			drySince = t
		}
	}
}

// victim picks the most-loaded other slot with queued work (-1 when the
// system is dry). Caller holds mu.
func (s *Stealer) victim(id int) int {
	v := -1
	for j := range s.deques {
		if j == id || len(s.deques[j]) == 0 {
			continue
		}
		if v < 0 || s.loads[j] > s.loads[v] {
			v = j
		}
	}
	return v
}

// steal takes work from the victim for slot id and returns the item to run
// now. With two or more queued items the thief takes the back half (the
// cheap end — the victim keeps the expensive front it was about to serve).
// With exactly one queued multi-function unit, the thief cracks it open:
// the victim's queued unit shrinks to the front half and the thief runs the
// rest. A lone singleton just moves. Caller holds mu.
func (s *Stealer) steal(id, victim int) stealItem {
	q := s.deques[victim]
	s.stats.Steals++
	if len(q) == 1 {
		it := q[0]
		if keep, stolen, ok := SplitUnit(it.unit); ok {
			s.deques[victim][0] = stealItem{unit: keep, run: it.run}
			s.loads[victim] -= stolen.Cost
			s.stats.BatchSplits++
			return stealItem{unit: stolen, run: it.run}
		}
		s.deques[victim] = nil
		s.loads[victim] = 0
		return it
	}
	half := len(q) / 2
	taken := q[len(q)-half:]
	s.deques[victim] = q[:len(q)-half]
	for _, it := range taken {
		s.loads[victim] -= it.unit.Cost
	}
	// Run the first stolen item now; queue the rest on our own deque.
	for _, it := range taken[1:] {
		s.deques[id] = append(s.deques[id], it)
		s.loads[id] += it.unit.Cost
	}
	return taken[0]
}

// sortUnitsByCostDesc stable-sorts units largest-first (LPT seeding order).
func sortUnitsByCostDesc(us []Unit) {
	sort.SliceStable(us, func(i, j int) bool { return us[i].Cost > us[j].Cost })
}

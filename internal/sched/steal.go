// Work-stealing dispatch fleet: one set of slot goroutines shared by every
// section master — and, under warpd, by every concurrent build. Each slot
// owns a deque seeded LPT-style (cost-descending, least-loaded slot first);
// owners pop queued units from their own deque, preferring the most
// service-deficient tenant when several builds' work is co-located, and a
// dry slot steals from the victim holding the most queued work of the
// fleet-wide most-deficient tenant — so one tenant's thousand-function
// build cannot starve a co-tenant's ten-function edit loop. When the
// chosen victim is down to one queued multi-function batch, the thief
// cracks it open with SplitUnit — mid-flight rebalancing a static plan
// cannot do. Stealing only reorders *execution*; result emission stays
// keyed by declaration index upstream, so output is word-identical to
// sequential at every worker count, shared fleet or not.
//
// Lifecycle: a Fleet can outlive builds (warpd owns one for the daemon's
// lifetime). Each build Opens a tagged handle, Submits its units through
// it, and Closes the handle when its combine loops are done. Close waits
// only on that build's own in-flight fragments and drops its still-queued
// units as orphans (their run closures are never invoked), so one build's
// completion — or cancellation — never waits on, or perturbs, a
// co-tenant's. With a single open build the fleet behaves exactly like the
// per-build stealer it replaced.
package sched

import (
	"sort"
	"sync"
	"time"
)

// StealStats counts rebalancing activity — fleet-lifetime totals from
// Fleet.Stats (with per-slot IdleTime), or scoped to one build from
// Build.Stats (IdleTime nil: slots are shared, idle belongs to the fleet).
type StealStats struct {
	// Steals counts steal operations (a dry slot taking work from a
	// victim's deque); BatchSplits the subset that cracked a queued
	// multi-function unit open because the victim had nothing else of the
	// chosen tenant's.
	Steals      int
	BatchSplits int
	// CrossBuildSteals is the subset of Steals where the thieving slot took
	// work from a different build than the one it last executed — nonzero
	// only when concurrent builds overlap on a shared fleet.
	CrossBuildSteals int
	// StealLatency totals the time thieves spent between running dry and
	// acquiring stolen work.
	StealLatency time.Duration
	// IdleTime is each slot's total time parked with no work anywhere in
	// the system — the straggler regime the stealer exists to shrink.
	IdleTime []time.Duration
}

// stealItem pairs a queued unit with its submitter's dispatch closure and
// the build it belongs to, so one fleet can serve many section masters of
// many concurrent builds at once.
type stealItem struct {
	unit Unit
	run  func(Unit)
	b    *buildState
}

// buildState is the fleet-side record of one open build: its fair-share
// identity, its live unit countdown, and its build-scoped counters.
type buildState struct {
	id     int
	tenant string
	closed bool
	// pending counts tasks (not units: splits conserve tasks) submitted and
	// not yet finished or orphaned. Build.Close waits for it to hit zero.
	pending int
	stats   StealStats
}

// Fleet is the shared work-stealing scheduler. Builds open tagged handles
// (Open), submit units through them, and close them independently; a fixed
// set of slot goroutines executes everything. Every submitted unit's run
// closure is invoked exactly once per resulting fragment (splits cover the
// unit's tasks exactly) — unless the unit is still queued when its build
// closes, in which case it is dropped without ever invoking run.
//
// The deques share one mutex: dispatch units are whole compile RPCs
// (milliseconds at minimum), so queue operations are never the bottleneck
// and the flat locking keeps split/steal/close atomicity trivial.
type Fleet struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]stealItem
	loads  []float64 // summed queued cost per slot
	// last is the build each slot most recently executed a unit of — the
	// reference point for counting a steal as cross-build.
	last []*buildState
	// served accumulates executed estimated cost per tenant while that
	// tenant has open builds — the deficit bookkeeping behind pop order and
	// steal victim selection. Keyed on the same client identity the
	// daemon's Admitter uses for fair-share admission.
	served map[string]float64
	// open counts open builds per tenant; a tenant's served entry is
	// dropped when its last build closes so a returning tenant starts from
	// zero deficit rather than its lifetime total.
	open   map[string]int
	closed bool
	nextID int
	stats  StealStats
	wg     sync.WaitGroup
}

// NewFleet starts a fleet of nslots slot goroutines (clamped to ≥1).
func NewFleet(nslots int) *Fleet {
	if nslots < 1 {
		nslots = 1
	}
	f := &Fleet{
		deques: make([][]stealItem, nslots),
		loads:  make([]float64, nslots),
		last:   make([]*buildState, nslots),
		served: make(map[string]float64),
		open:   make(map[string]int),
	}
	f.stats.IdleTime = make([]time.Duration, nslots)
	f.cond = sync.NewCond(&f.mu)
	f.wg.Add(nslots)
	for i := 0; i < nslots; i++ {
		go f.slot(i)
	}
	return f
}

// Slots reports the fleet's slot count.
func (f *Fleet) Slots() int { return len(f.deques) }

// Build is one build's handle on a shared fleet: submissions are tagged
// with the build, and Close settles exactly this build's units.
type Build struct {
	f  *Fleet
	st *buildState
}

// Open registers a build under the given fair-share tenant identity
// (clients of the daemon pass the same identity the Admitter queues them
// by; standalone builds pass ""). The handle must be Closed.
func (f *Fleet) Open(tenant string) *Build {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	st := &buildState{id: f.nextID, tenant: tenant}
	f.open[tenant]++
	return &Build{f: f, st: st}
}

// Submit seeds the units onto the fleet's deques LPT-style: cost-descending,
// each to the currently least-loaded slot, so the initial placement matches
// the static plan's balance and stealing only has to fix what the estimator
// got wrong. run is invoked once per unit (or per split fragment); closures
// from different sections — and different builds — interleave freely on the
// shared fleet.
//
// Submitting to a closed fleet or through a closed build runs the units
// synchronously in the caller's goroutine — late work is never dropped and
// never hangs.
func (b *Build) Submit(units []Unit, run func(Unit)) {
	f := b.f
	ordered := append([]Unit(nil), units...)
	sortUnitsByCostDesc(ordered)
	f.mu.Lock()
	if f.closed || b.st.closed {
		f.mu.Unlock()
		for _, u := range ordered {
			run(u)
		}
		return
	}
	for _, u := range ordered {
		least := 0
		for j := 1; j < len(f.loads); j++ {
			if f.loads[j] < f.loads[least] {
				least = j
			}
		}
		f.deques[least] = append(f.deques[least], stealItem{unit: u, run: run, b: b.st})
		f.loads[least] += u.Cost
		b.st.pending += len(u.Tasks)
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Stats snapshots this build's own counters: steals that took its units,
// splits of its batches, latency those thieves accrued. IdleTime is nil —
// slots are fleet property; use Fleet.Stats deltas for idle decomposition.
func (b *Build) Stats() StealStats {
	b.f.mu.Lock()
	defer b.f.mu.Unlock()
	return b.st.stats
}

// Drain blocks until every unit submitted so far through this handle has
// finished executing — a completion barrier that, unlike Close, never drops
// queued work. Section masters normally wait on their own result channels
// instead; Drain exists for callers that want a settled build before
// deciding to close it.
func (b *Build) Drain() {
	f := b.f
	f.mu.Lock()
	for b.st.pending > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Close settles the build: still-queued units are dropped as orphans (run
// is never invoked for them — under cancellation their section masters
// have already unwound), then Close blocks until the build's in-flight
// fragments finish. Other builds on the fleet are untouched. Idempotent;
// after Close, Submit through this handle runs synchronously.
func (b *Build) Close() {
	f := b.f
	f.mu.Lock()
	if !b.st.closed {
		b.st.closed = true
		for i, q := range f.deques {
			kept := q[:0]
			for _, it := range q {
				if it.b == b.st {
					b.st.pending -= len(it.unit.Tasks)
					f.loads[i] -= it.unit.Cost
					continue
				}
				kept = append(kept, it)
			}
			f.deques[i] = kept
		}
		if f.open[b.st.tenant]--; f.open[b.st.tenant] <= 0 {
			delete(f.open, b.st.tenant)
			delete(f.served, b.st.tenant)
		}
	}
	for b.st.pending > 0 {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Stats snapshots the fleet's cumulative counters across all builds it has
// served, including per-slot idle time.
func (f *Fleet) Stats() StealStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.stats
	out.IdleTime = append([]time.Duration(nil), f.stats.IdleTime...)
	return out
}

// Close retires the fleet without blocking: slots finish their in-flight
// units, drain whatever is still queued (under a cancelled context those
// runs return immediately), and exit. Wait blocks until they have.
func (f *Fleet) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// Wait blocks until every slot goroutine has exited (Close must have been
// called, or Wait never returns).
func (f *Fleet) Wait() {
	f.wg.Wait()
}

// slot is one fleet goroutine: pop own work from the front, steal when dry,
// park when the whole system is dry.
func (f *Fleet) slot(id int) {
	defer f.wg.Done()
	for {
		it, ok := f.next(id)
		if !ok {
			return
		}
		it.run(it.unit)
		f.finish(it)
	}
}

// finish retires one executed fragment: credits its cost to the tenant's
// service tally (while the tenant still has open builds) and wakes a
// Build.Close waiting on the last fragment.
func (f *Fleet) finish(it stealItem) {
	f.mu.Lock()
	it.b.pending -= len(it.unit.Tasks)
	if _, live := f.open[it.b.tenant]; live {
		f.served[it.b.tenant] += it.unit.Cost
	}
	done := it.b.pending <= 0
	f.mu.Unlock()
	if done {
		f.cond.Broadcast()
	}
}

// next returns the slot's next unit: the front-most item of the most
// service-deficient tenant in its own deque, else stolen work from the
// victim holding the most queued cost of the fleet-wide most-deficient
// tenant, else it parks until Submit or Close wakes it.
func (f *Fleet) next(id int) (stealItem, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var drySince time.Time // set the first time this call finds its own deque empty
	for {
		if it, ok := f.popOwn(id); ok {
			f.last[id] = it.b
			return it, true
		}
		if victim, tenant := f.pickVictim(id); victim >= 0 {
			if drySince.IsZero() {
				drySince = time.Now()
			}
			it := f.steal(id, victim, tenant)
			lat := time.Since(drySince)
			f.stats.StealLatency += lat
			it.b.stats.StealLatency += lat
			f.last[id] = it.b
			return it, true
		}
		if f.closed {
			return stealItem{}, false
		}
		t := time.Now()
		f.cond.Wait()
		f.stats.IdleTime[id] += time.Since(t)
		if drySince.IsZero() {
			drySince = t
		}
	}
}

// popOwn takes the slot's next owned item: among the tenants present in
// its deque it serves the one with the least executed cost so far (ties
// broken by queue order), and of that tenant's items takes the front-most
// — preserving the LPT expensive-first order within a build. With a single
// open build this is exactly "pop the front". Caller holds mu.
func (f *Fleet) popOwn(id int) (stealItem, bool) {
	q := f.deques[id]
	if len(q) == 0 {
		return stealItem{}, false
	}
	pick := 0
	var seen map[string]bool // lazily allocated: nil while the deque is single-tenant
	for i := 1; i < len(q); i++ {
		t := q[i].b.tenant
		if t == q[pick].b.tenant {
			continue
		}
		if seen == nil {
			seen = map[string]bool{q[pick].b.tenant: true}
		}
		if seen[t] {
			continue // not t's first occurrence; its front-most item was already compared
		}
		seen[t] = true
		if f.served[t] < f.served[q[pick].b.tenant] {
			pick = i
		}
	}
	it := q[pick]
	f.deques[id] = append(q[:pick], q[pick+1:]...)
	f.loads[id] -= it.unit.Cost
	return it, true
}

// pickVictim chooses what a dry slot should steal: first the most
// service-deficient tenant with queued work anywhere else, then the slot
// holding the most queued cost of that tenant's items. Returns (-1, "")
// when the system is dry. Caller holds mu.
func (f *Fleet) pickVictim(id int) (int, string) {
	tenant, found := "", false
	for j := range f.deques {
		if j == id {
			continue
		}
		for _, it := range f.deques[j] {
			t := it.b.tenant
			if !found || f.served[t] < f.served[tenant] {
				tenant, found = t, true
			}
		}
	}
	if !found {
		return -1, ""
	}
	v, vcost := -1, 0.0
	for j := range f.deques {
		if j == id {
			continue
		}
		c, any := 0.0, false
		for _, it := range f.deques[j] {
			if it.b.tenant == tenant {
				c += it.unit.Cost
				any = true
			}
		}
		if any && (v < 0 || c > vcost) {
			v, vcost = j, c
		}
	}
	return v, tenant
}

// steal takes the chosen tenant's work from the victim for slot id and
// returns the item to run now. With two or more of the tenant's items
// queued there, the thief takes their back half (the cheap end — the
// victim keeps the expensive front it was about to serve). With exactly
// one queued multi-function unit, the thief cracks it open: the victim's
// queued unit shrinks to the front half and the thief runs the rest. A
// lone singleton just moves. The steal is attributed to the build of the
// item the thief runs now; it counts as cross-build when that build
// differs from the last build this slot executed. Caller holds mu.
func (f *Fleet) steal(id, victim int, tenant string) stealItem {
	q := f.deques[victim]
	var idxs []int
	for i, it := range q {
		if it.b.tenant == tenant {
			idxs = append(idxs, i)
		}
	}
	f.stats.Steals++
	if len(idxs) == 1 {
		it := q[idxs[0]]
		f.countSteal(id, it.b)
		if keep, stolen, ok := SplitUnit(it.unit); ok {
			q[idxs[0]] = stealItem{unit: keep, run: it.run, b: it.b}
			f.loads[victim] -= stolen.Cost
			f.stats.BatchSplits++
			it.b.stats.BatchSplits++
			return stealItem{unit: stolen, run: it.run, b: it.b}
		}
		f.deques[victim] = append(q[:idxs[0]], q[idxs[0]+1:]...)
		f.loads[victim] -= it.unit.Cost
		return it
	}
	half := len(idxs) / 2
	take := idxs[len(idxs)-half:]
	taken := make([]stealItem, 0, half)
	for _, i := range take {
		taken = append(taken, q[i])
		f.loads[victim] -= q[i].unit.Cost
	}
	kept := q[:0]
	stolen := make(map[int]bool, half)
	for _, i := range take {
		stolen[i] = true
	}
	for i, it := range q {
		if !stolen[i] {
			kept = append(kept, it)
		}
	}
	f.deques[victim] = kept
	f.countSteal(id, taken[0].b)
	// Run the first stolen item now; queue the rest on our own deque.
	for _, it := range taken[1:] {
		f.deques[id] = append(f.deques[id], it)
		f.loads[id] += it.unit.Cost
	}
	return taken[0]
}

// countSteal attributes one steal operation to the stolen build and, when
// the thief's previous unit came from a different build, to the cross-build
// tally. Caller holds mu.
func (f *Fleet) countSteal(thief int, b *buildState) {
	b.stats.Steals++
	if f.last[thief] != nil && f.last[thief] != b {
		f.stats.CrossBuildSteals++
		b.stats.CrossBuildSteals++
	}
}

// sortUnitsByCostDesc stable-sorts units largest-first (LPT seeding order).
func sortUnitsByCostDesc(us []Unit) {
	sort.SliceStable(us, func(i, j int) bool { return us[i].Cost > us[j].Cost })
}

// Package sched implements the task-placement strategies of the parallel
// compiler. The paper uses plain first-come-first-served distribution of
// function masters over free workstations (§3.3) and, for the user-program
// experiment (§4.3), an improved heuristic that estimates compile time from
// "a combination of lines of code and loop nesting" and groups small
// functions onto shared processors.
//
// On top of the paper's grouping (Group), Plan builds the production
// dispatch schedule: size-aware units where every large function is its own
// request, dispatched longest-first, and small functions are packed into
// multi-function batches so per-request overhead is amortized — the fix for
// the paper's headline negative result that small functions see no speedup
// (per-function fork/RPC overhead up to 70% of elapsed time).
package sched

import (
	"container/heap"
	"math"
	"sort"
)

// Task is one unit of schedulable work: the compilation of one function.
type Task struct {
	Name    string
	Section int
	Index   int // position within the section
	// Lines and LoopDepth feed the cost estimate.
	Lines     int
	LoopDepth int
}

// EstimateCost approximates a task's compile time from its size metrics,
// exactly the paper's heuristic: lines of code scaled by loop nesting.
// The unit is arbitrary (relative costs drive balancing).
func EstimateCost(t Task) float64 {
	depth := t.LoopDepth
	if depth < 1 {
		depth = 1
	}
	// Nested loops multiply scheduling and dataflow work; the exponent is
	// deliberately mild — the estimator only needs the right ordering.
	return float64(t.Lines) * math.Pow(1.3, float64(depth-1))
}

// Costed pairs a task with its precomputed cost estimate, so sorting and
// packing never re-evaluate the estimator per comparison.
type Costed struct {
	Task
	Cost float64
}

// Costs evaluates the estimator once per task.
func Costs(tasks []Task) []Costed {
	out := make([]Costed, len(tasks))
	for i, t := range tasks {
		out[i] = Costed{Task: t, Cost: EstimateCost(t)}
	}
	return out
}

// FCFS returns the tasks in submission order: the distribution strategy of
// the measured system, where each task goes to the next free workstation.
func FCFS(tasks []Task) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	return out
}

// procLoad is one processor's accumulated load in the packing heap.
type procLoad struct {
	load  float64
	index int
}

// loadHeap is a min-heap over processor loads, tie-broken by index so the
// earliest least-loaded processor wins — the same choice the previous
// linear scan made, at O(log p) per task instead of O(p).
type loadHeap []procLoad

func (h loadHeap) Len() int { return len(h) }
func (h loadHeap) Less(i, j int) bool {
	return h[i].load < h[j].load || (h[i].load == h[j].load && h[i].index < h[j].index)
}
func (h loadHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x any)   { *h = append(*h, x.(procLoad)) }
func (h *loadHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// packLPT distributes costed tasks over nbins bins with the
// longest-processing-time-first greedy rule, assigning each task to the
// least-loaded bin. The input must already be cost-descending.
func packLPT(ordered []Costed, nbins int) ([][]Costed, []float64) {
	bins := make([][]Costed, nbins)
	costs := make([]float64, nbins)
	h := make(loadHeap, nbins)
	for i := range h {
		h[i] = procLoad{index: i}
	}
	heap.Init(&h)
	for _, c := range ordered {
		p := heap.Pop(&h).(procLoad)
		bins[p.index] = append(bins[p.index], c)
		costs[p.index] += c.Cost
		p.load += c.Cost
		heap.Push(&h, p)
	}
	return bins, costs
}

// sortByCostDesc stable-sorts a costed slice largest-first.
func sortByCostDesc(cs []Costed) {
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Cost > cs[j].Cost })
}

// Group partitions tasks over nproc processors, balancing estimated cost
// with the longest-processing-time-first greedy rule. It returns one task
// list per processor (some possibly empty when nproc exceeds the task
// count). Within a group, tasks keep cost-descending order.
func Group(tasks []Task, nproc int) [][]Task {
	if nproc < 1 {
		nproc = 1
	}
	ordered := Costs(tasks)
	sortByCostDesc(ordered)
	bins, _ := packLPT(ordered, nproc)
	groups := make([][]Task, len(bins))
	for i, b := range bins {
		for _, c := range b {
			groups[i] = append(groups[i], c.Task)
		}
	}
	return groups
}

// Makespan returns the maximum estimated group cost of a partition — the
// predicted parallel finish time under the estimator. Each task's cost is
// evaluated exactly once.
func Makespan(groups [][]Task) float64 {
	max := 0.0
	for _, g := range groups {
		s := 0.0
		for _, c := range Costs(g) {
			s += c.Cost
		}
		if s > max {
			max = s
		}
	}
	return max
}

// Unit is one dispatch unit of the production scheduler: the functions sent
// to a single worker in one request. A unit with one task is a plain
// per-function request; a unit with several is a batch that amortizes the
// per-request overhead over all of them.
type Unit struct {
	Tasks []Task
	Cost  float64   // summed estimated cost
	Costs []float64 // per-task costs, parallel to Tasks (may be nil on hand-built units)
}

// IsBatch reports whether the unit packs more than one function.
func (u Unit) IsBatch() bool { return len(u.Tasks) > 1 }

// taskCosts returns per-task costs for the unit, falling back to the static
// estimator when the unit was built by hand without them.
func (u Unit) taskCosts() []float64 {
	if len(u.Costs) == len(u.Tasks) {
		return u.Costs
	}
	cs := make([]float64, len(u.Tasks))
	for i, t := range u.Tasks {
		cs[i] = EstimateCost(t)
	}
	return cs
}

// SplitUnit cracks a multi-task unit open for a thief: the victim keeps a
// front slice worth roughly half the estimated cost and the thief takes the
// rest. Singleton units cannot split (ok=false, keep=u). Both halves are
// fresh slices — the original unit is not aliased.
func SplitUnit(u Unit) (keep, stolen Unit, ok bool) {
	if len(u.Tasks) < 2 {
		return u, Unit{}, false
	}
	costs := u.taskCosts()
	total := 0.0
	for _, c := range costs {
		total += c
	}
	cut, acc := 0, 0.0
	for i, c := range costs {
		acc += c
		cut = i + 1
		if acc >= total/2 {
			break
		}
	}
	if cut >= len(u.Tasks) {
		cut = len(u.Tasks) - 1
		acc = total - costs[len(costs)-1]
	}
	keep = Unit{
		Tasks: append([]Task(nil), u.Tasks[:cut]...),
		Costs: append([]float64(nil), costs[:cut]...),
		Cost:  acc,
	}
	stolen = Unit{
		Tasks: append([]Task(nil), u.Tasks[cut:]...),
		Costs: append([]float64(nil), costs[cut:]...),
		Cost:  total - acc,
	}
	return keep, stolen, true
}

// Plan builds the size-aware dispatch schedule for one set of tasks over
// nproc processors.
//
//   - threshold == 0 reproduces the paper's measured system exactly: one
//     unit per task, submission order (FCFS, no batching).
//   - threshold < 0 orders tasks longest-first (LPT) but keeps one unit per
//     task — cost-model ordering without batching.
//   - threshold > 0 additionally packs tasks whose estimated cost falls
//     below the threshold into shared batches: the batch count starts from
//     ceil(total small cost / threshold) and is rounded to a multiple of
//     the processors left idle by the large tasks, so batches spread evenly
//     (a module of only small functions yields one batch per processor).
//     Units come back cost-descending, so large functions dispatch first
//     and no batch ever trails a longer compile.
func Plan(tasks []Task, threshold float64, nproc int) []Unit {
	return PlanCosted(Costs(tasks), threshold, nproc)
}

// PlanCosted is Plan over tasks whose costs are already evaluated — the
// estimator (static or fitted) runs exactly once per task, never again per
// comparison or per unit.
func PlanCosted(costed []Costed, threshold float64, nproc int) []Unit {
	if nproc < 1 {
		nproc = 1
	}
	if threshold == 0 {
		units := make([]Unit, len(costed))
		for i, c := range costed {
			units[i] = Unit{Tasks: []Task{c.Task}, Cost: c.Cost, Costs: []float64{c.Cost}}
		}
		return units
	}

	var large, small []Costed
	if threshold < 0 {
		large = costed
	} else {
		for _, c := range costed {
			if c.Cost >= threshold {
				large = append(large, c)
			} else {
				small = append(small, c)
			}
		}
	}

	units := make([]Unit, 0, len(large)+nproc)
	for _, c := range large {
		units = append(units, Unit{Tasks: []Task{c.Task}, Cost: c.Cost, Costs: []float64{c.Cost}})
	}

	if len(small) > 0 {
		total := 0.0
		for _, c := range small {
			total += c.Cost
		}
		nbins := int(math.Ceil(total / threshold))
		if idle := nproc - len(large); idle > 0 {
			// Balance the batches over the processors the large tasks leave
			// idle: round the bin count to a multiple of idle, so every
			// processor serves the same number of batches. A lone extra
			// batch would double one processor's makespan and stall the
			// section on it.
			rounds := int(math.Round(float64(nbins) / float64(idle)))
			if rounds < 1 {
				rounds = 1
			}
			nbins = rounds * idle
		}
		if nbins < 1 {
			nbins = 1
		}
		if nbins > len(small) {
			nbins = len(small)
		}
		sortByCostDesc(small)
		bins, costs := packLPT(small, nbins)
		for i, b := range bins {
			if len(b) == 0 {
				continue
			}
			u := Unit{Cost: costs[i]}
			for _, c := range b {
				u.Tasks = append(u.Tasks, c.Task)
				u.Costs = append(u.Costs, c.Cost)
			}
			units = append(units, u)
		}
	}

	sort.SliceStable(units, func(i, j int) bool { return units[i].Cost > units[j].Cost })
	return units
}

// RankCorrelation returns the Spearman rank correlation between predicted
// and actual values — how well the estimator orders tasks (1 = perfect
// agreement, -1 = perfectly inverted). Degenerate inputs (mismatched or
// short slices, zero variance) return 0.
func RankCorrelation(predicted, actual []float64) float64 {
	n := len(predicted)
	if n != len(actual) || n < 2 {
		return 0
	}
	rp, ra := ranks(predicted), ranks(actual)
	var mp, ma float64
	for i := 0; i < n; i++ {
		mp += rp[i]
		ma += ra[i]
	}
	mp /= float64(n)
	ma /= float64(n)
	var cov, vp, va float64
	for i := 0; i < n; i++ {
		dp, da := rp[i]-mp, ra[i]-ma
		cov += dp * da
		vp += dp * dp
		va += da * da
	}
	if vp == 0 || va == 0 {
		return 0
	}
	return cov / math.Sqrt(vp*va)
}

// ranks assigns 1-based ranks with ties sharing their average rank.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

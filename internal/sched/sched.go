// Package sched implements the task-placement strategies of the parallel
// compiler. The paper uses plain first-come-first-served distribution of
// function masters over free workstations (§3.3) and, for the user-program
// experiment (§4.3), an improved heuristic that estimates compile time from
// "a combination of lines of code and loop nesting" and groups small
// functions onto shared processors.
package sched

import "sort"

// Task is one unit of schedulable work: the compilation of one function.
type Task struct {
	Name    string
	Section int
	Index   int // position within the section
	// Lines and LoopDepth feed the cost estimate.
	Lines     int
	LoopDepth int
}

// EstimateCost approximates a task's compile time from its size metrics,
// exactly the paper's heuristic: lines of code scaled by loop nesting.
// The unit is arbitrary (relative costs drive balancing).
func EstimateCost(t Task) float64 {
	depth := t.LoopDepth
	if depth < 1 {
		depth = 1
	}
	// Nested loops multiply scheduling and dataflow work; the exponent is
	// deliberately mild — the estimator only needs the right ordering.
	cost := float64(t.Lines)
	for d := 1; d < depth; d++ {
		cost *= 1.3
	}
	return cost
}

// FCFS returns the tasks in submission order: the distribution strategy of
// the measured system, where each task goes to the next free workstation.
func FCFS(tasks []Task) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	return out
}

// Group partitions tasks over nproc processors, balancing estimated cost
// with the longest-processing-time-first greedy rule. It returns one task
// list per processor (some possibly empty when nproc exceeds the task
// count). Within a group, tasks keep cost-descending order.
func Group(tasks []Task, nproc int) [][]Task {
	if nproc < 1 {
		nproc = 1
	}
	groups := make([][]Task, nproc)
	loads := make([]float64, nproc)

	ordered := make([]Task, len(tasks))
	copy(ordered, tasks)
	sort.SliceStable(ordered, func(i, j int) bool {
		return EstimateCost(ordered[i]) > EstimateCost(ordered[j])
	})
	for _, t := range ordered {
		best := 0
		for p := 1; p < nproc; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		groups[best] = append(groups[best], t)
		loads[best] += EstimateCost(t)
	}
	return groups
}

// Makespan returns the maximum estimated group cost of a partition — the
// predicted parallel finish time under the estimator.
func Makespan(groups [][]Task) float64 {
	max := 0.0
	for _, g := range groups {
		s := 0.0
		for _, t := range g {
			s += EstimateCost(t)
		}
		if s > max {
			max = s
		}
	}
	return max
}

package sched

import (
	"testing"
	"testing/quick"
)

func mkTask(name string, lines, depth int) Task {
	return Task{Name: name, Lines: lines, LoopDepth: depth}
}

func TestEstimateCostOrdering(t *testing.T) {
	small := mkTask("s", 35, 2)
	large := mkTask("l", 280, 2)
	if EstimateCost(small) >= EstimateCost(large) {
		t.Error("more lines must cost more")
	}
	shallow := mkTask("a", 100, 1)
	deep := mkTask("b", 100, 3)
	if EstimateCost(shallow) >= EstimateCost(deep) {
		t.Error("deeper nesting must cost more")
	}
	if EstimateCost(mkTask("z", 100, 0)) != EstimateCost(mkTask("z", 100, 1)) {
		t.Error("depth 0 and 1 should cost the same (no nesting either way)")
	}
}

func TestFCFSPreservesOrder(t *testing.T) {
	tasks := []Task{mkTask("a", 10, 1), mkTask("b", 300, 3), mkTask("c", 50, 2)}
	got := FCFS(tasks)
	for i := range tasks {
		if got[i].Name != tasks[i].Name {
			t.Fatalf("order changed: %v", got)
		}
	}
	got[0].Name = "mutated"
	if tasks[0].Name != "a" {
		t.Error("FCFS must copy, not alias")
	}
}

func TestGroupBalances(t *testing.T) {
	// One large and several small tasks on 2 processors: the large task
	// must sit alone (or nearly so).
	tasks := []Task{
		mkTask("big", 300, 3),
		mkTask("s1", 20, 1), mkTask("s2", 25, 1), mkTask("s3", 30, 1), mkTask("s4", 15, 1),
	}
	groups := Group(tasks, 2)
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	var bigGroup, smallGroup []Task
	for _, g := range groups {
		for _, task := range g {
			if task.Name == "big" {
				bigGroup = g
			}
		}
	}
	for _, g := range groups {
		if len(bigGroup) > 0 && &g[0] != &bigGroup[0] {
			smallGroup = g
		}
	}
	if len(bigGroup) == 0 {
		t.Fatal("big task lost")
	}
	if len(smallGroup) != 4 {
		t.Errorf("all four small tasks should share the other processor, got %d", len(smallGroup))
	}
}

func TestGroupDegenerateCases(t *testing.T) {
	if g := Group(nil, 3); len(g) != 3 {
		t.Errorf("empty task list should still give 3 (empty) groups")
	}
	tasks := []Task{mkTask("a", 10, 1)}
	g := Group(tasks, 0)
	if len(g) != 1 || len(g[0]) != 1 {
		t.Errorf("nproc<1 must clamp to 1: %v", g)
	}
}

func TestGroupMakespanNotWorseThanSingleProcessor(t *testing.T) {
	f := func(seeds []uint8, nproc uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		p := int(nproc%8) + 1
		var tasks []Task
		total := 0.0
		for i, s := range seeds {
			task := mkTask(string(rune('a'+i%26)), int(s)+1, int(s)%4)
			tasks = append(tasks, task)
			total += EstimateCost(task)
		}
		groups := Group(tasks, p)
		ms := Makespan(groups)
		// Makespan can never beat total/p nor exceed the serial total; and
		// every task must appear exactly once.
		if ms > total+1e-9 || ms < total/float64(p)-1e-9 {
			return false
		}
		n := 0
		for _, g := range groups {
			n += len(g)
		}
		return n == len(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLPTBeatsNaiveSplitOnSkewedLoad(t *testing.T) {
	// §4.3's observation: grouping small functions achieves with fewer
	// processors what one-function-per-processor achieves with nine.
	tasks := []Task{
		mkTask("m1", 300, 3), mkTask("m2", 300, 3), mkTask("m3", 300, 3),
		mkTask("a1", 10, 1), mkTask("a2", 40, 1), mkTask("a3", 15, 1),
		mkTask("a4", 35, 1), mkTask("a5", 5, 1), mkTask("a6", 38, 1),
	}
	five := Makespan(Group(tasks, 5))
	nine := Makespan(Group(tasks, 9))
	if five > nine*1.15 {
		t.Errorf("5-processor grouped makespan %.0f should be close to 9-processor %.0f", five, nine)
	}
}

// ---------------------------------------------------------------------------
// Plan: the size-aware batched dispatch schedule.

func TestPlanThresholdZeroIsFCFS(t *testing.T) {
	// threshold 0 must reproduce the measured system exactly: one unit per
	// task in submission order, regardless of cost.
	tasks := []Task{mkTask("a", 10, 1), mkTask("b", 300, 3), mkTask("c", 50, 2)}
	units := Plan(tasks, 0, 4)
	if len(units) != len(tasks) {
		t.Fatalf("units = %d, want %d", len(units), len(tasks))
	}
	for i, u := range units {
		if len(u.Tasks) != 1 || u.Tasks[0].Name != tasks[i].Name {
			t.Errorf("unit %d = %+v, want singleton %q in submission order", i, u, tasks[i].Name)
		}
		if u.IsBatch() {
			t.Errorf("unit %d reported as batch", i)
		}
	}
}

func TestPlanNegativeThresholdIsLPTSingletons(t *testing.T) {
	tasks := []Task{mkTask("a", 10, 1), mkTask("b", 300, 3), mkTask("c", 50, 2)}
	units := Plan(tasks, -1, 4)
	if len(units) != 3 {
		t.Fatalf("units = %d, want 3", len(units))
	}
	want := []string{"b", "c", "a"} // cost-descending
	for i, u := range units {
		if len(u.Tasks) != 1 || u.Tasks[0].Name != want[i] {
			t.Errorf("unit %d = %v, want singleton %q", i, u.Tasks, want[i])
		}
	}
}

func TestPlanAllSmallOneBatchPerWorker(t *testing.T) {
	// The paper's worst case: a module of only small functions. With a
	// threshold above the total cost, the plan must still spread the work as
	// one batch per processor, not starve workers with a single huge batch.
	var tasks []Task
	for i := 0; i < 32; i++ {
		tasks = append(tasks, mkTask(string(rune('a'+i%26))+"x", 4+i%7, 1))
	}
	const nproc = 4
	units := Plan(tasks, 1e9, nproc)
	if len(units) != nproc {
		t.Fatalf("units = %d, want one batch per worker (%d)", len(units), nproc)
	}
	n := 0
	for _, u := range units {
		if !u.IsBatch() {
			t.Errorf("expected every unit to be a batch, got %v", u.Tasks)
		}
		n += len(u.Tasks)
	}
	if n != len(tasks) {
		t.Errorf("plan covers %d tasks, want %d", n, len(tasks))
	}
}

func TestPlanLargeSingletonsDispatchFirst(t *testing.T) {
	tasks := []Task{
		mkTask("s1", 10, 1), mkTask("s2", 12, 1), mkTask("s3", 8, 1),
		mkTask("big", 300, 3),
	}
	units := Plan(tasks, 100, 2)
	if len(units) < 2 {
		t.Fatalf("units = %d, want >= 2", len(units))
	}
	if len(units[0].Tasks) != 1 || units[0].Tasks[0].Name != "big" {
		t.Fatalf("largest function must dispatch first, got %v", units[0].Tasks)
	}
	for i := 1; i < len(units); i++ {
		if units[i].Cost > units[i-1].Cost {
			t.Errorf("units not cost-descending at %d: %g > %g", i, units[i].Cost, units[i-1].Cost)
		}
	}
}

func TestPlanBatchCostsRespectThreshold(t *testing.T) {
	// With enough small tasks the bin count follows total/threshold, so
	// batch totals land near the threshold rather than one giant batch.
	var tasks []Task
	for i := 0; i < 40; i++ {
		tasks = append(tasks, mkTask("t", 10, 1)) // cost 10 each, total 400
	}
	units := Plan(tasks, 100, 2)
	if len(units) != 4 {
		t.Fatalf("units = %d, want ceil(400/100) = 4", len(units))
	}
	for _, u := range units {
		if u.Cost > 150 {
			t.Errorf("batch cost %g far exceeds threshold", u.Cost)
		}
	}
}

func TestPlanCoversEveryTaskExactlyOnce(t *testing.T) {
	f := func(seeds []uint8, nproc uint8, threshold uint8) bool {
		var tasks []Task
		for i, s := range seeds {
			tasks = append(tasks, Task{
				Name: string(rune('a' + i%26)), Section: 1, Index: i,
				Lines: int(s) + 1, LoopDepth: int(s) % 4,
			})
		}
		units := Plan(tasks, float64(threshold), int(nproc%8)+1)
		seen := make(map[int]int)
		for _, u := range units {
			for _, task := range u.Tasks {
				seen[task.Index]++
			}
		}
		if len(seen) != len(tasks) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRankCorrelation(t *testing.T) {
	cases := []struct {
		name string
		p, a []float64
		want float64
	}{
		{"perfect", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, 1},
		{"inverted", []float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}, -1},
		{"constant", []float64{1, 1, 1}, []float64{1, 2, 3}, 0},
		{"short", []float64{1}, []float64{2}, 0},
		{"mismatched", []float64{1, 2}, []float64{1}, 0},
	}
	for _, c := range cases {
		if got := RankCorrelation(c.p, c.a); mathAbs(got-c.want) > 1e-9 {
			t.Errorf("%s: RankCorrelation = %g, want %g", c.name, got, c.want)
		}
	}
	// Ties share average ranks: still positively correlated.
	if got := RankCorrelation([]float64{1, 1, 2, 3}, []float64{5, 6, 7, 8}); got <= 0.5 {
		t.Errorf("tied predictions should stay strongly correlated, got %g", got)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

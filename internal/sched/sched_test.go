package sched

import (
	"testing"
	"testing/quick"
)

func mkTask(name string, lines, depth int) Task {
	return Task{Name: name, Lines: lines, LoopDepth: depth}
}

func TestEstimateCostOrdering(t *testing.T) {
	small := mkTask("s", 35, 2)
	large := mkTask("l", 280, 2)
	if EstimateCost(small) >= EstimateCost(large) {
		t.Error("more lines must cost more")
	}
	shallow := mkTask("a", 100, 1)
	deep := mkTask("b", 100, 3)
	if EstimateCost(shallow) >= EstimateCost(deep) {
		t.Error("deeper nesting must cost more")
	}
	if EstimateCost(mkTask("z", 100, 0)) != EstimateCost(mkTask("z", 100, 1)) {
		t.Error("depth 0 and 1 should cost the same (no nesting either way)")
	}
}

func TestFCFSPreservesOrder(t *testing.T) {
	tasks := []Task{mkTask("a", 10, 1), mkTask("b", 300, 3), mkTask("c", 50, 2)}
	got := FCFS(tasks)
	for i := range tasks {
		if got[i].Name != tasks[i].Name {
			t.Fatalf("order changed: %v", got)
		}
	}
	got[0].Name = "mutated"
	if tasks[0].Name != "a" {
		t.Error("FCFS must copy, not alias")
	}
}

func TestGroupBalances(t *testing.T) {
	// One large and several small tasks on 2 processors: the large task
	// must sit alone (or nearly so).
	tasks := []Task{
		mkTask("big", 300, 3),
		mkTask("s1", 20, 1), mkTask("s2", 25, 1), mkTask("s3", 30, 1), mkTask("s4", 15, 1),
	}
	groups := Group(tasks, 2)
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	var bigGroup, smallGroup []Task
	for _, g := range groups {
		for _, task := range g {
			if task.Name == "big" {
				bigGroup = g
			}
		}
	}
	for _, g := range groups {
		if len(bigGroup) > 0 && &g[0] != &bigGroup[0] {
			smallGroup = g
		}
	}
	if len(bigGroup) == 0 {
		t.Fatal("big task lost")
	}
	if len(smallGroup) != 4 {
		t.Errorf("all four small tasks should share the other processor, got %d", len(smallGroup))
	}
}

func TestGroupDegenerateCases(t *testing.T) {
	if g := Group(nil, 3); len(g) != 3 {
		t.Errorf("empty task list should still give 3 (empty) groups")
	}
	tasks := []Task{mkTask("a", 10, 1)}
	g := Group(tasks, 0)
	if len(g) != 1 || len(g[0]) != 1 {
		t.Errorf("nproc<1 must clamp to 1: %v", g)
	}
}

func TestGroupMakespanNotWorseThanSingleProcessor(t *testing.T) {
	f := func(seeds []uint8, nproc uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		p := int(nproc%8) + 1
		var tasks []Task
		total := 0.0
		for i, s := range seeds {
			task := mkTask(string(rune('a'+i%26)), int(s)+1, int(s)%4)
			tasks = append(tasks, task)
			total += EstimateCost(task)
		}
		groups := Group(tasks, p)
		ms := Makespan(groups)
		// Makespan can never beat total/p nor exceed the serial total; and
		// every task must appear exactly once.
		if ms > total+1e-9 || ms < total/float64(p)-1e-9 {
			return false
		}
		n := 0
		for _, g := range groups {
			n += len(g)
		}
		return n == len(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupLPTBeatsNaiveSplitOnSkewedLoad(t *testing.T) {
	// §4.3's observation: grouping small functions achieves with fewer
	// processors what one-function-per-processor achieves with nine.
	tasks := []Task{
		mkTask("m1", 300, 3), mkTask("m2", 300, 3), mkTask("m3", 300, 3),
		mkTask("a1", 10, 1), mkTask("a2", 40, 1), mkTask("a3", 15, 1),
		mkTask("a4", 35, 1), mkTask("a5", 5, 1), mkTask("a6", 38, 1),
	}
	five := Makespan(Group(tasks, 5))
	nine := Makespan(Group(tasks, 9))
	if five > nine*1.15 {
		t.Errorf("5-processor grouped makespan %.0f should be close to 9-processor %.0f", five, nine)
	}
}

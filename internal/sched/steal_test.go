package sched

import (
	"sync"
	"testing"
	"time"
)

func costedUnit(cost float64, names ...string) Unit {
	u := Unit{Cost: cost * float64(len(names))}
	for _, n := range names {
		u.Tasks = append(u.Tasks, Task{Name: n, Lines: int(cost)})
		u.Costs = append(u.Costs, cost)
	}
	return u
}

func TestSplitUnitCoversTasksExactly(t *testing.T) {
	u := costedUnit(10, "a", "b", "c", "d", "e")
	keep, stolen, ok := SplitUnit(u)
	if !ok {
		t.Fatal("5-task unit must split")
	}
	if len(keep.Tasks) == 0 || len(stolen.Tasks) == 0 {
		t.Fatalf("both halves must be non-empty: %d/%d", len(keep.Tasks), len(stolen.Tasks))
	}
	if len(keep.Tasks)+len(stolen.Tasks) != len(u.Tasks) {
		t.Fatalf("split lost tasks: %d + %d != %d", len(keep.Tasks), len(stolen.Tasks), len(u.Tasks))
	}
	got := map[string]bool{}
	for _, task := range append(append([]Task{}, keep.Tasks...), stolen.Tasks...) {
		if got[task.Name] {
			t.Fatalf("task %s duplicated by split", task.Name)
		}
		got[task.Name] = true
	}
	if diff := keep.Cost + stolen.Cost - u.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("split costs %g + %g != %g", keep.Cost, stolen.Cost, u.Cost)
	}
	if len(keep.Costs) != len(keep.Tasks) || len(stolen.Costs) != len(stolen.Tasks) {
		t.Error("per-task costs must stay parallel to tasks")
	}
}

func TestSplitUnitSingletonRefuses(t *testing.T) {
	u := costedUnit(10, "only")
	keep, _, ok := SplitUnit(u)
	if ok {
		t.Fatal("singleton must not split")
	}
	if len(keep.Tasks) != 1 || keep.Tasks[0].Name != "only" {
		t.Fatalf("refusing split must return the unit unchanged: %+v", keep)
	}
}

func TestSplitUnitWithoutCostsFallsBack(t *testing.T) {
	// Hand-built units may lack per-task costs; the split estimates them.
	u := Unit{Tasks: []Task{{Name: "a", Lines: 100}, {Name: "b", Lines: 10}}}
	keep, stolen, ok := SplitUnit(u)
	if !ok || len(keep.Tasks) != 1 || len(stolen.Tasks) != 1 {
		t.Fatalf("2-task unit must split 1/1, got %d/%d ok=%v", len(keep.Tasks), len(stolen.Tasks), ok)
	}
}

// TestStealerRunsEveryTaskExactlyOnce floods a small fleet from several
// concurrent submitters (as section masters do) and checks every task of
// every unit executes exactly once, regardless of how steals rearrange them.
func TestStealerRunsEveryTaskExactlyOnce(t *testing.T) {
	s := NewStealer(4)
	defer s.Close()

	var mu sync.Mutex
	seen := map[string]int{}
	total := 0
	// Deliveries may exceed the number of submitted units when steals split
	// batches, so completion is tracked per task, not per run call.
	for sec := 0; sec < 3; sec++ {
		var units []Unit
		for i := 0; i < 5; i++ {
			names := []string{}
			for k := 0; k <= i; k++ {
				names = append(names, string(rune('a'+sec))+string(rune('0'+i))+string(rune('a'+k)))
			}
			units = append(units, costedUnit(float64(10+i), names...))
			total += len(names)
		}
		s.Submit(units, func(u Unit) {
			mu.Lock()
			for _, task := range u.Tasks {
				seen[task.Name]++
			}
			mu.Unlock()
		})
	}

	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		n := 0
		for _, c := range seen {
			n += c
		}
		mu.Unlock()
		if n >= total {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("timed out: executed %d of %d tasks", n, total)
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != total {
		t.Fatalf("distinct tasks executed = %d, want %d", len(seen), total)
	}
	for name, c := range seen {
		if c != 1 {
			t.Errorf("task %s executed %d times", name, c)
		}
	}
}

// TestStealerCracksQueuedBatchOpen pins the mid-flight split. One Submit
// carries two long blockers and a 4-function batch; LPT seeding (cost-desc
// onto the least-loaded slot) deterministically lands blocker A on slot 0
// and blocker B plus the queued batch on slot 1. Releasing A frees slot 0,
// whose own deque is empty — it must steal slot 1's lone queued batch by
// cracking it open rather than idling behind the victim.
func TestStealerCracksQueuedBatchOpen(t *testing.T) {
	s := NewStealer(2)
	defer s.Close()

	release := map[string]chan struct{}{
		"blockA": make(chan struct{}),
		"blockB": make(chan struct{}),
	}
	started := make(chan string, 2)
	var mu sync.Mutex
	var runs [][]string
	ran := make(chan struct{}, 8)
	units := []Unit{
		costedUnit(100, "blockA"),              // slot 0
		costedUnit(90, "blockB"),               // slot 1
		costedUnit(10, "b1", "b2", "b3", "b4"), // queued on slot 1 (load 90 < 100)
	}
	s.Submit(units, func(u Unit) {
		if ch, blocking := release[u.Tasks[0].Name]; blocking {
			started <- u.Tasks[0].Name
			<-ch
			return
		}
		mu.Lock()
		names := []string{}
		for _, task := range u.Tasks {
			names = append(names, task.Name)
		}
		runs = append(runs, names)
		mu.Unlock()
		ran <- struct{}{}
	})
	<-started
	<-started // both slots now parked inside their blockers

	close(release["blockA"]) // free slot 0: it must steal-split the queued batch
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("freed slot never ran any part of the queued batch")
	}
	st := s.Stats()
	if st.Steals < 1 || st.BatchSplits < 1 {
		t.Fatalf("expected the steal to crack the batch open: %+v", st)
	}

	close(release["blockB"]) // free the victim: it runs the kept fragment
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := 0
		for _, r := range runs {
			n += len(r)
		}
		mu.Unlock()
		if n == 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("batch tasks executed = %d, want 4 (runs: %v)", n, runs)
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(runs) < 2 {
		t.Errorf("split batch should arrive as >= 2 fragments, got %v", runs)
	}
}

// TestStealerParallelismOnSleepingUnits checks the fleet genuinely overlaps
// units: 8 sleeping units on 4 slots must finish in roughly two rounds, not
// eight (sleeps overlap even on one CPU).
func TestStealerParallelismOnSleepingUnits(t *testing.T) {
	s := NewStealer(4)
	defer s.Close()
	const d = 30 * time.Millisecond
	var units []Unit
	for i := 0; i < 8; i++ {
		units = append(units, costedUnit(10, string(rune('a'+i))))
	}
	var mu sync.Mutex
	n := 0
	done := make(chan struct{})
	start := time.Now()
	s.Submit(units, func(u Unit) {
		time.Sleep(d)
		mu.Lock()
		n++
		if n == 8 {
			close(done)
		}
		mu.Unlock()
	})
	<-done
	if elapsed := time.Since(start); elapsed > 6*d {
		t.Errorf("8 sleeping units on 4 slots took %v, want ~2 rounds of %v", elapsed, d)
	}
}

// TestStealerSubmitAfterCloseRunsSynchronously: late work is never dropped.
func TestStealerSubmitAfterCloseRunsSynchronously(t *testing.T) {
	s := NewStealer(2)
	s.Close()
	s.Wait()
	ran := 0
	s.Submit([]Unit{costedUnit(1, "x"), costedUnit(1, "y")}, func(u Unit) { ran += len(u.Tasks) })
	if ran != 2 {
		t.Fatalf("submit after close ran %d tasks synchronously, want 2", ran)
	}
}

// TestStealerIdleTimeAccounting: a fleet that waits records idle time on the
// starved slots.
func TestStealerIdleTimeAccounting(t *testing.T) {
	s := NewStealer(2)
	time.Sleep(20 * time.Millisecond) // both slots parked with nothing to do
	s.Close()
	s.Wait()
	st := s.Stats()
	if len(st.IdleTime) != 2 {
		t.Fatalf("idle decomposition must be per-slot: %v", st.IdleTime)
	}
	for i, d := range st.IdleTime {
		if d <= 0 {
			t.Errorf("slot %d recorded no idle time", i)
		}
	}
}

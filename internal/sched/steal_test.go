package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func costedUnit(cost float64, names ...string) Unit {
	u := Unit{Cost: cost * float64(len(names))}
	for _, n := range names {
		u.Tasks = append(u.Tasks, Task{Name: n, Lines: int(cost)})
		u.Costs = append(u.Costs, cost)
	}
	return u
}

func TestSplitUnitCoversTasksExactly(t *testing.T) {
	u := costedUnit(10, "a", "b", "c", "d", "e")
	keep, stolen, ok := SplitUnit(u)
	if !ok {
		t.Fatal("5-task unit must split")
	}
	if len(keep.Tasks) == 0 || len(stolen.Tasks) == 0 {
		t.Fatalf("both halves must be non-empty: %d/%d", len(keep.Tasks), len(stolen.Tasks))
	}
	if len(keep.Tasks)+len(stolen.Tasks) != len(u.Tasks) {
		t.Fatalf("split lost tasks: %d + %d != %d", len(keep.Tasks), len(stolen.Tasks), len(u.Tasks))
	}
	got := map[string]bool{}
	for _, task := range append(append([]Task{}, keep.Tasks...), stolen.Tasks...) {
		if got[task.Name] {
			t.Fatalf("task %s duplicated by split", task.Name)
		}
		got[task.Name] = true
	}
	if diff := keep.Cost + stolen.Cost - u.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("split costs %g + %g != %g", keep.Cost, stolen.Cost, u.Cost)
	}
	if len(keep.Costs) != len(keep.Tasks) || len(stolen.Costs) != len(stolen.Tasks) {
		t.Error("per-task costs must stay parallel to tasks")
	}
}

func TestSplitUnitSingletonRefuses(t *testing.T) {
	u := costedUnit(10, "only")
	keep, _, ok := SplitUnit(u)
	if ok {
		t.Fatal("singleton must not split")
	}
	if len(keep.Tasks) != 1 || keep.Tasks[0].Name != "only" {
		t.Fatalf("refusing split must return the unit unchanged: %+v", keep)
	}
}

func TestSplitUnitWithoutCostsFallsBack(t *testing.T) {
	// Hand-built units may lack per-task costs; the split estimates them.
	u := Unit{Tasks: []Task{{Name: "a", Lines: 100}, {Name: "b", Lines: 10}}}
	keep, stolen, ok := SplitUnit(u)
	if !ok || len(keep.Tasks) != 1 || len(stolen.Tasks) != 1 {
		t.Fatalf("2-task unit must split 1/1, got %d/%d ok=%v", len(keep.Tasks), len(stolen.Tasks), ok)
	}
}

// TestStealerRunsEveryTaskExactlyOnce floods a small fleet from several
// concurrent submitters (as section masters do) and checks every task of
// every unit executes exactly once, regardless of how steals rearrange them.
func TestStealerRunsEveryTaskExactlyOnce(t *testing.T) {
	f := NewFleet(4)
	defer f.Close()
	b := f.Open("")
	defer b.Close()

	var mu sync.Mutex
	seen := map[string]int{}
	total := 0
	// Deliveries may exceed the number of submitted units when steals split
	// batches, so completion is tracked per task, not per run call.
	for sec := 0; sec < 3; sec++ {
		var units []Unit
		for i := 0; i < 5; i++ {
			names := []string{}
			for k := 0; k <= i; k++ {
				names = append(names, string(rune('a'+sec))+string(rune('0'+i))+string(rune('a'+k)))
			}
			units = append(units, costedUnit(float64(10+i), names...))
			total += len(names)
		}
		b.Submit(units, func(u Unit) {
			mu.Lock()
			for _, task := range u.Tasks {
				seen[task.Name]++
			}
			mu.Unlock()
		})
	}

	b.Drain() // waits for exactly this build's tasks
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, c := range seen {
		n += c
	}
	if n != total || len(seen) != total {
		t.Fatalf("executed %d runs over %d distinct tasks, want %d of %d", n, len(seen), total, total)
	}
	for name, c := range seen {
		if c != 1 {
			t.Errorf("task %s executed %d times", name, c)
		}
	}
}

// TestStealerCracksQueuedBatchOpen pins the mid-flight split. One Submit
// carries two long blockers and a 4-function batch; LPT seeding (cost-desc
// onto the least-loaded slot) deterministically lands blocker A on slot 0
// and blocker B plus the queued batch on slot 1. Releasing A frees slot 0,
// whose own deque is empty — it must steal slot 1's lone queued batch by
// cracking it open rather than idling behind the victim.
func TestStealerCracksQueuedBatchOpen(t *testing.T) {
	f := NewFleet(2)
	defer f.Close()
	b := f.Open("")
	defer b.Close()

	release := map[string]chan struct{}{
		"blockA": make(chan struct{}),
		"blockB": make(chan struct{}),
	}
	started := make(chan string, 2)
	var mu sync.Mutex
	var runs [][]string
	ran := make(chan struct{}, 8)
	units := []Unit{
		costedUnit(100, "blockA"),              // slot 0
		costedUnit(90, "blockB"),               // slot 1
		costedUnit(10, "b1", "b2", "b3", "b4"), // queued on slot 1 (load 90 < 100)
	}
	b.Submit(units, func(u Unit) {
		if ch, blocking := release[u.Tasks[0].Name]; blocking {
			started <- u.Tasks[0].Name
			<-ch
			return
		}
		mu.Lock()
		names := []string{}
		for _, task := range u.Tasks {
			names = append(names, task.Name)
		}
		runs = append(runs, names)
		mu.Unlock()
		ran <- struct{}{}
	})
	<-started
	<-started // both slots now parked inside their blockers

	close(release["blockA"]) // free slot 0: it must steal-split the queued batch
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("freed slot never ran any part of the queued batch")
	}
	st := f.Stats()
	if st.Steals < 1 || st.BatchSplits < 1 {
		t.Fatalf("expected the steal to crack the batch open: %+v", st)
	}
	if st.CrossBuildSteals != 0 {
		t.Fatalf("single build must never count cross-build steals: %+v", st)
	}

	close(release["blockB"]) // free the victim: it runs the kept fragment
	b.Drain()
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, r := range runs {
		n += len(r)
	}
	if n != 4 {
		t.Fatalf("batch tasks executed = %d, want 4 (runs: %v)", n, runs)
	}
	if len(runs) < 2 {
		t.Errorf("split batch should arrive as >= 2 fragments, got %v", runs)
	}
	bs := b.Stats()
	if bs.Steals < 1 || bs.BatchSplits < 1 {
		t.Errorf("build-scoped stats must carry the steal/split: %+v", bs)
	}
}

// TestStealerParallelismOnSleepingUnits checks the fleet genuinely overlaps
// units: 8 sleeping units on 4 slots must finish in roughly two rounds, not
// eight (sleeps overlap even on one CPU).
func TestStealerParallelismOnSleepingUnits(t *testing.T) {
	f := NewFleet(4)
	defer f.Close()
	b := f.Open("")
	const d = 30 * time.Millisecond
	var units []Unit
	for i := 0; i < 8; i++ {
		units = append(units, costedUnit(10, string(rune('a'+i))))
	}
	start := time.Now()
	b.Submit(units, func(u Unit) { time.Sleep(d) })
	b.Drain()
	if elapsed := time.Since(start); elapsed > 6*d {
		t.Errorf("8 sleeping units on 4 slots took %v, want ~2 rounds of %v", elapsed, d)
	}
}

// TestStealerSubmitAfterCloseRunsSynchronously: late work is never dropped,
// whether the fleet or just this build's handle is closed.
func TestStealerSubmitAfterCloseRunsSynchronously(t *testing.T) {
	f := NewFleet(2)
	b := f.Open("")
	f.Close()
	f.Wait()
	ran := 0
	b.Submit([]Unit{costedUnit(1, "x"), costedUnit(1, "y")}, func(u Unit) { ran += len(u.Tasks) })
	if ran != 2 {
		t.Fatalf("submit after fleet close ran %d tasks synchronously, want 2", ran)
	}

	f2 := NewFleet(2)
	defer f2.Close()
	b2 := f2.Open("")
	b2.Close()
	ran = 0
	b2.Submit([]Unit{costedUnit(1, "z")}, func(u Unit) { ran += len(u.Tasks) })
	if ran != 1 {
		t.Fatalf("submit after build close ran %d tasks synchronously, want 1", ran)
	}
}

// TestStealerIdleTimeAccounting: a fleet that waits records idle time on the
// starved slots.
func TestStealerIdleTimeAccounting(t *testing.T) {
	f := NewFleet(2)
	time.Sleep(20 * time.Millisecond) // both slots parked with nothing to do
	f.Close()
	f.Wait()
	st := f.Stats()
	if len(st.IdleTime) != 2 {
		t.Fatalf("idle decomposition must be per-slot: %v", st.IdleTime)
	}
	for i, d := range st.IdleTime {
		if d <= 0 {
			t.Errorf("slot %d recorded no idle time", i)
		}
	}
}

// TestFleetMultiBuildExactlyOnce overlaps three builds from three tenants on
// one fleet and checks every task of every build executes exactly once, and
// that each build's Close returns independently of its siblings.
func TestFleetMultiBuildExactlyOnce(t *testing.T) {
	f := NewFleet(4)
	defer f.Close()

	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	totals := make([]int, 3)
	for bi := 0; bi < 3; bi++ {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			b := f.Open(fmt.Sprintf("tenant-%d", bi))
			var units []Unit
			for i := 0; i < 6; i++ {
				names := []string{}
				for k := 0; k <= i%3; k++ {
					names = append(names, fmt.Sprintf("b%d-u%d-t%d", bi, i, k))
				}
				units = append(units, costedUnit(float64(5+i), names...))
				totals[bi] += len(names)
			}
			b.Submit(units, func(u Unit) {
				mu.Lock()
				for _, task := range u.Tasks {
					seen[task.Name]++
				}
				mu.Unlock()
			})
			b.Drain()
			// After Drain, every one of this build's tasks must have run.
			mu.Lock()
			defer mu.Unlock()
			n := 0
			for name, c := range seen {
				if len(name) > 1 && name[1] == byte('0'+bi) {
					n += c
				}
			}
			if n != totals[bi] {
				t.Errorf("build %d: Close returned with %d of %d tasks executed", bi, n, totals[bi])
			}
		}(bi)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for name, c := range seen {
		if c != 1 {
			t.Errorf("task %s executed %d times", name, c)
		}
	}
}

// TestFleetCrossBuildStealCounted constructs a deterministic cross-build
// steal: build A blocks both slots, build B's lone unit queues behind one of
// them, and the first slot to come free — whose last executed unit was A's —
// must steal B's unit and count it as cross-build, attributed to B.
func TestFleetCrossBuildStealCounted(t *testing.T) {
	f := NewFleet(2)
	defer f.Close()
	a := f.Open("tenant-a")
	b := f.Open("tenant-b")

	releaseA := make(chan struct{})
	startedA := make(chan struct{}, 2)
	a.Submit([]Unit{costedUnit(100, "a1"), costedUnit(90, "a2")}, func(u Unit) {
		startedA <- struct{}{}
		<-releaseA
	})
	<-startedA
	<-startedA // both slots are executing build A

	ranB := make(chan struct{})
	b.Submit([]Unit{costedUnit(10, "b1")}, func(u Unit) { close(ranB) })

	close(releaseA) // freed slots' own deques may hold b1; either way B runs
	select {
	case <-ranB:
	case <-time.After(5 * time.Second):
		t.Fatal("build B's unit never ran")
	}
	a.Drain()
	b.Drain()

	bs := b.Stats()
	fs := f.Stats()
	// b1 was seeded onto the least-loaded slot's deque while both slots were
	// busy with A; whichever slot ran it, if it arrived by steal it must be
	// cross-build (the thief's previous unit was A's). It can also arrive by
	// an owner pop (seeded on the freed slot's own deque) — then no steal is
	// counted at all. Both counters must agree between build and fleet scope.
	if bs.Steals != fs.Steals-as(a).Steals || bs.CrossBuildSteals > bs.Steals {
		t.Errorf("inconsistent steal attribution: build=%+v fleet=%+v", bs, fs)
	}
	if bs.Steals == 1 && bs.CrossBuildSteals != 1 {
		t.Errorf("a steal of B's unit by an A-warmed slot must count cross-build: %+v", bs)
	}
	if fs.CrossBuildSteals != bs.CrossBuildSteals+as(a).CrossBuildSteals {
		t.Errorf("fleet cross-build tally must equal the builds' sum: fleet=%+v a=%+v b=%+v", fs, as(a), bs)
	}
}

func as(b *Build) StealStats { return b.Stats() }

// TestFleetDeficitPopPrefersStarvedTenant pins the fairness policy without
// timing: on a single-slot fleet a huge tenant's queue is draining when a
// tiny tenant submits two units. The huge tenant's served cost is already
// far ahead, so the slot must run both tiny units before touching another
// huge one — the deficit-weighted pop, deterministically observable.
func TestFleetDeficitPopPrefersStarvedTenant(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	huge := f.Open("huge")
	tiny := f.Open("tiny")

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var mu sync.Mutex
	var order []string
	record := func(u Unit) {
		mu.Lock()
		order = append(order, u.Tasks[0].Name)
		mu.Unlock()
	}
	// First huge unit blocks the lone slot; ten more queue behind it.
	huge.Submit([]Unit{costedUnit(50, "huge-block")}, func(u Unit) {
		started <- struct{}{}
		<-release
		record(u)
	})
	<-started
	var rest []Unit
	for i := 0; i < 10; i++ {
		rest = append(rest, costedUnit(10, fmt.Sprintf("huge-%d", i)))
	}
	huge.Submit(rest, record)
	tiny.Submit([]Unit{costedUnit(1, "tiny-0"), costedUnit(1, "tiny-1")}, record)

	close(release)
	tiny.Drain() // waits for both tiny units
	mu.Lock()
	hugeDone, tinySeen := 0, 0
	for _, name := range order {
		if tinySeen == 2 {
			break // huge units resuming after tiny drained are fine
		}
		if name == "tiny-0" || name == "tiny-1" {
			tinySeen++
		} else {
			hugeDone++
		}
	}
	mu.Unlock()
	// The blocker finishes first (it was in flight); after it, served[huge]
	// is 50 vs served[tiny] 0, so both tiny units must precede every queued
	// huge unit.
	if hugeDone > 1 {
		t.Fatalf("tiny tenant starved: %d huge units ran before tiny finished (order %v)", hugeDone, order)
	}
	huge.Drain()
	huge.Close()
	tiny.Close()
}

// TestFleetBuildCloseDropsQueuedOrphans: closing a build mid-flight drops its
// queued units without ever invoking their run closures, waits only for its
// own in-flight unit, and leaves a sibling build's work untouched.
func TestFleetBuildCloseDropsQueuedOrphans(t *testing.T) {
	f := NewFleet(1)
	defer f.Close()
	a := f.Open("tenant-a")
	b := f.Open("tenant-b")

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	var mu sync.Mutex
	ran := map[string]int{}
	record := func(u Unit) {
		mu.Lock()
		for _, task := range u.Tasks {
			ran[task.Name]++
		}
		mu.Unlock()
	}
	a.Submit([]Unit{costedUnit(50, "a-block")}, func(u Unit) {
		started <- struct{}{}
		<-release
		record(u)
	})
	<-started
	a.Submit([]Unit{
		costedUnit(10, "a-orphan-0"), costedUnit(10, "a-orphan-1"),
		costedUnit(10, "a-orphan-2", "a-orphan-3"),
	}, record)
	b.Submit([]Unit{costedUnit(5, "b-0"), costedUnit(5, "b-1")}, record)

	closed := make(chan struct{})
	go func() { a.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while the build's unit was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release) // the in-flight blocker finishes; Close must now return
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the in-flight unit finished")
	}
	b.Close() // sibling must still complete normally

	mu.Lock()
	defer mu.Unlock()
	for name, c := range ran {
		if c != 1 {
			t.Errorf("task %s executed %d times", name, c)
		}
	}
	if ran["a-block"] != 1 || ran["b-0"] != 1 || ran["b-1"] != 1 {
		t.Errorf("in-flight and sibling work must run: %v", ran)
	}
	for i := 0; i < 4; i++ {
		if name := fmt.Sprintf("a-orphan-%d", i); ran[name] != 0 {
			t.Errorf("queued orphan %s ran after its build closed", name)
		}
	}
}

// Self-tuning cost model: the static estimator (EstimateCost) seeds the
// scheduler on a cold start, and every completed compile contributes an
// observed (shape → seconds) sample. Fit runs a small least-squares over the
// sample window and replaces the static coefficients whenever the fitted
// model orders the recorded work at least as well (Spearman) as the static
// formula — so LPT seeding and steal ordering sharpen with every build, and
// a degenerate fit can never make scheduling worse.
package sched

import "math"

// CostSample records one observed function compile: the shape features the
// estimator sees and the measured cost in seconds.
type CostSample struct {
	Lines     int
	LoopDepth int
	Section   int
	Seconds   float64
}

// Model prices tasks. The zero value (Fitted=false) is the static paper
// heuristic; a fitted model prices cost = A·lines + B·lines·(depth−1),
// rescaled so its magnitudes stay comparable with static costs (batch
// thresholds are calibrated against the static scale).
type Model struct {
	A, B   float64
	Fitted bool
}

// StaticModel returns the untuned paper heuristic.
func StaticModel() Model { return Model{} }

// features returns the fitted model's two regressors for a task shape.
func features(lines, depth int) (x1, x2 float64) {
	if depth < 1 {
		depth = 1
	}
	l := float64(lines)
	return l, l * float64(depth-1)
}

// Estimate prices one task under the model. A fitted model that prices a
// task at or below zero (possible when the fit extrapolates outside the
// sample window) falls back to the static estimate for that task.
func (m Model) Estimate(t Task) float64 {
	if !m.Fitted {
		return EstimateCost(t)
	}
	x1, x2 := features(t.Lines, t.LoopDepth)
	c := m.A*x1 + m.B*x2
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return EstimateCost(t)
	}
	return c
}

// Costs evaluates the model once per task.
func (m Model) Costs(tasks []Task) []Costed {
	out := make([]Costed, len(tasks))
	for i, t := range tasks {
		out[i] = Costed{Task: t, Cost: m.Estimate(t)}
	}
	return out
}

// sampleEstimate prices a recorded sample's shape under the model.
func (m Model) sampleEstimate(s CostSample) float64 {
	return m.Estimate(Task{Lines: s.Lines, LoopDepth: s.LoopDepth, Section: s.Section})
}

// SampleRankCorr reports how well the model orders the recorded samples:
// the Spearman rank correlation between model predictions and observed
// seconds. Fewer than 3 samples is noise and returns NaN.
func (m Model) SampleRankCorr(samples []CostSample) float64 {
	if len(samples) < 3 {
		return math.NaN()
	}
	pred := make([]float64, len(samples))
	act := make([]float64, len(samples))
	for i, s := range samples {
		pred[i] = m.sampleEstimate(s)
		act[i] = s.Seconds
	}
	return RankCorrelation(pred, act)
}

// Fit tunes the cost model to a window of observed samples by least squares
// over the two shape features (lines, lines·(depth−1)). It is deliberately
// conservative:
//
//   - fewer than 3 samples → static (a 2-parameter fit through ≤2 points is
//     exact and meaningless);
//   - a singular system (e.g. every sample at loop depth 1 makes the second
//     feature identically zero) fits the lines coefficient alone and keeps
//     the static depth ratio;
//   - the fitted coefficients are rescaled so the mean fitted cost over the
//     window equals the mean static cost — downstream batch thresholds are
//     calibrated to the static scale;
//   - if the fitted model ranks the window worse than the static formula
//     (Spearman), Fit returns the static model unchanged.
func Fit(samples []CostSample) Model {
	if len(samples) < 3 {
		return StaticModel()
	}
	var s11, s12, s22, s1y, s2y float64
	for _, s := range samples {
		if s.Lines <= 0 || s.Seconds <= 0 ||
			math.IsNaN(s.Seconds) || math.IsInf(s.Seconds, 0) {
			continue
		}
		x1, x2 := features(s.Lines, s.LoopDepth)
		s11 += x1 * x1
		s12 += x1 * x2
		s22 += x2 * x2
		s1y += x1 * s.Seconds
		s2y += x2 * s.Seconds
	}
	if s11 == 0 {
		return StaticModel()
	}
	var a, b float64
	det := s11*s22 - s12*s12
	if det > 1e-9*s11*math.Max(s22, 1) {
		a = (s22*s1y - s12*s2y) / det
		b = (s11*s2y - s12*s1y) / det
	} else {
		// Colinear features: fit lines alone, keep the static model's
		// linearized depth slope (1.3^(d-1) ≈ 1 + 0.3·(d-1)) relative to it.
		a = s1y / s11
		b = 0.3 * a
	}
	if a <= 0 || math.IsNaN(a) || math.IsNaN(b) {
		return StaticModel()
	}

	m := Model{A: a, B: b, Fitted: true}

	// Rescale to the static magnitude so thresholds calibrated against
	// line-count costs keep meaning the same thing.
	var fitMean, staticMean float64
	n := 0
	for _, s := range samples {
		if s.Lines <= 0 {
			continue
		}
		fitMean += m.sampleEstimate(s)
		staticMean += EstimateCost(Task{Lines: s.Lines, LoopDepth: s.LoopDepth})
		n++
	}
	if n == 0 || fitMean <= 0 {
		return StaticModel()
	}
	scale := staticMean / fitMean
	m.A *= scale
	m.B *= scale

	// Never regress: the fitted model must order the observed work at least
	// as well as the static formula, or we keep the static formula.
	fitted := m.SampleRankCorr(samples)
	static := StaticModel().SampleRankCorr(samples)
	if math.IsNaN(fitted) || fitted < static {
		return StaticModel()
	}
	return m
}

package link

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
)

func obj(name string, section int, entry bool, nwords int, labels map[string]int, relocs []asm.Reloc, data []asm.DataSym) *asm.Object {
	code := make([]machine.Word, nwords)
	for i := range code {
		code[i][machine.CTRL] = machine.Instr{Op: machine.HALT}
	}
	return &asm.Object{
		Name: name, Section: section, IsEntry: entry,
		Code: code, Labels: labels, Relocs: relocs, Data: data,
	}
}

func TestLinkSectionLayout(t *testing.T) {
	entry := obj("cell", 1, true, 4,
		map[string]int{"cell.b0": 0, "cell.b1": 2},
		[]asm.Reloc{{Word: 1, Unit: machine.CTRL, Kind: asm.RelocBranch, Sym: "helper.b0"}},
		[]asm.DataSym{{Name: "cell/a$0", Words: 8}})
	helper := obj("helper", 1, false, 3,
		map[string]int{"helper.b0": 0},
		[]asm.Reloc{{Word: 0, Unit: machine.MEM, Kind: asm.RelocData, Sym: "helper/buf$0"}},
		[]asm.DataSym{{Name: "helper/buf$0", Words: 5}})

	// Entry listed second: the linker must still place it first.
	img, err := LinkSection([]*asm.Object{helper, entry})
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != 0 {
		t.Errorf("entry pc = %d, want 0", img.Entry)
	}
	if len(img.Code) != 7 {
		t.Errorf("code = %d words, want 7", len(img.Code))
	}
	// The branch in entry word 1 must point at helper's base (4).
	if got := img.Code[1][machine.CTRL].Imm; got != 4 {
		t.Errorf("branch reloc = %d, want 4", got)
	}
	// Data layout: entry's symbols first.
	if img.DataSyms["cell/a$0"] != 0 || img.DataSyms["helper/buf$0"] != 8 {
		t.Errorf("data layout wrong: %v", img.DataSyms)
	}
	if img.DataWords != 13 {
		t.Errorf("data words = %d, want 13", img.DataWords)
	}
	// The MEM reloc in helper word 0 (image word 4) must carry base 8.
	if got := img.Code[4][machine.MEM].Imm; got != 8 {
		t.Errorf("data reloc = %d, want 8", got)
	}
}

func TestLinkErrors(t *testing.T) {
	if _, err := LinkSection(nil); err == nil {
		t.Error("empty link must fail")
	}
	noEntry := obj("a", 1, false, 1, map[string]int{}, nil, nil)
	if _, err := LinkSection([]*asm.Object{noEntry}); err == nil {
		t.Error("link without entry must fail")
	}
	e1 := obj("a", 1, true, 1, map[string]int{}, nil, nil)
	e2 := obj("b", 1, true, 1, map[string]int{}, nil, nil)
	if _, err := LinkSection([]*asm.Object{e1, e2}); err == nil {
		t.Error("two entries must fail")
	}
	undef := obj("u", 1, true, 1, map[string]int{},
		[]asm.Reloc{{Word: 0, Unit: machine.CTRL, Kind: asm.RelocBranch, Sym: "nowhere"}}, nil)
	if _, err := LinkSection([]*asm.Object{undef}); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("undefined label not reported: %v", err)
	}
	dupLabel1 := obj("x", 1, true, 1, map[string]int{"same": 0}, nil, nil)
	dupLabel2 := obj("y", 1, false, 1, map[string]int{"same": 0}, nil, nil)
	if _, err := LinkSection([]*asm.Object{dupLabel1, dupLabel2}); err == nil {
		t.Error("duplicate labels must fail")
	}
	bigData := obj("big", 1, true, 1, map[string]int{}, nil,
		[]asm.DataSym{{Name: "big/huge", Words: machine.DataMemWords + 1}})
	if _, err := LinkSection([]*asm.Object{bigData}); err == nil {
		t.Error("oversized data must fail")
	}
}

func TestLinkModule(t *testing.T) {
	s1 := obj("c1", 1, true, 2, map[string]int{}, nil, nil)
	s2 := obj("c2", 2, true, 3, map[string]int{}, nil, nil)
	m, err := LinkModule("demo", map[int][]*asm.Object{2: {s2}, 1: {s1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(m.Cells))
	}
	// Section order must follow section index regardless of map order.
	if m.Cells[0].Section != 1 || m.Cells[1].Section != 2 {
		t.Errorf("section order wrong: %d, %d", m.Cells[0].Section, m.Cells[1].Section)
	}
	if m.TotalWords() != 5 {
		t.Errorf("total words = %d, want 5", m.TotalWords())
	}
	if _, err := LinkModule("empty", nil); err == nil {
		t.Error("empty module must fail")
	}
}

// Package link implements the linker half of phase 4: it combines the
// assembled objects of one section into a cell image (resolving branch
// labels and laying out data memory), and combines the cell images of all
// sections into a download module for the Warp array.
package link

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/machine"
)

// CellImage is the fully linked program for one processing element.
type CellImage struct {
	Section int
	// Entry is the start PC (always 0: the entry object is placed first).
	Entry int
	Code  []machine.Word
	// DataWords is the data-memory high-water mark.
	DataWords int
	// DataSyms maps qualified data symbols to their base addresses, kept
	// for the debugger/listing tools.
	DataSyms map[string]int
}

// LinkSection links the objects of one section. Exactly one object must be
// marked as the entry; it is placed at address 0. The remaining objects
// follow in the given order (their code is part of the image, as in the
// real system, even when the entry never calls them after inlining).
func LinkSection(objs []*asm.Object) (*CellImage, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("link: no objects")
	}
	var entry *asm.Object
	for _, o := range objs {
		if o.IsEntry {
			if entry != nil {
				return nil, fmt.Errorf("link: multiple entry objects (%s and %s)", entry.Name, o.Name)
			}
			entry = o
		}
	}
	if entry == nil {
		return nil, fmt.Errorf("link: no entry object among %d objects", len(objs))
	}
	ordered := []*asm.Object{entry}
	for _, o := range objs {
		if o != entry {
			ordered = append(ordered, o)
		}
	}

	img := &CellImage{Section: entry.Section, DataSyms: make(map[string]int)}

	// Pass 1: place code and build the global label and data tables.
	labels := make(map[string]int)
	base := make(map[*asm.Object]int)
	dataAddr := 0
	for _, o := range ordered {
		base[o] = len(img.Code)
		for l, off := range o.Labels {
			if _, dup := labels[l]; dup {
				return nil, fmt.Errorf("link: duplicate label %s", l)
			}
			labels[l] = base[o] + off
		}
		img.Code = append(img.Code, o.Code...)
		// Deterministic data layout: symbols in name order per object.
		syms := append([]asm.DataSym(nil), o.Data...)
		sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
		for _, d := range syms {
			if _, dup := img.DataSyms[d.Name]; dup {
				return nil, fmt.Errorf("link: duplicate data symbol %s", d.Name)
			}
			img.DataSyms[d.Name] = dataAddr
			dataAddr += d.Words
		}
	}
	img.DataWords = dataAddr
	if len(img.Code) > machine.ProgMemWords {
		return nil, fmt.Errorf("link: section %d program (%d words) exceeds program memory (%d)",
			entry.Section, len(img.Code), machine.ProgMemWords)
	}
	if dataAddr > machine.DataMemWords {
		return nil, fmt.Errorf("link: section %d data (%d words) exceeds data memory (%d)",
			entry.Section, dataAddr, machine.DataMemWords)
	}

	// Pass 2: apply relocations.
	for _, o := range ordered {
		for _, r := range o.Relocs {
			wi := base[o] + r.Word
			in := &img.Code[wi][r.Unit]
			switch r.Kind {
			case asm.RelocBranch:
				target, ok := labels[r.Sym]
				if !ok {
					return nil, fmt.Errorf("link: undefined label %s (from %s)", r.Sym, o.Name)
				}
				in.Imm = int32(target)
			case asm.RelocData:
				addr, ok := img.DataSyms[r.Sym]
				if !ok {
					return nil, fmt.Errorf("link: undefined data symbol %s (from %s)", r.Sym, o.Name)
				}
				in.Imm = int32(addr)
			default:
				return nil, fmt.Errorf("link: unknown relocation kind %d", r.Kind)
			}
		}
	}
	return img, nil
}

// Module is a linked download module: one cell image per section, in
// section order, plus host-side stream metadata.
type Module struct {
	Name  string
	Cells []*CellImage
}

// Builder links a module incrementally: each section's objects are linked
// into a cell image the moment they are added (in any completion order), and
// Finish orders the images by section index into the final module. It is the
// streaming counterpart of LinkModule — the parallel master links each
// section's output while later sections are still compiling, so the link
// step overlaps the parallel region instead of extending the sequential
// tail. A Builder is not safe for concurrent use; the master calls it from
// its single combine loop.
type Builder struct {
	name  string
	cells map[int]*CellImage
}

// NewBuilder returns an empty incremental linker for the named module.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, cells: make(map[int]*CellImage)}
}

// Add links one section's objects now. The objects follow LinkSection's
// rules (exactly one entry, placed at address 0). Adding the same section
// index twice is an error.
func (b *Builder) Add(section int, objs []*asm.Object) error {
	if _, dup := b.cells[section]; dup {
		return fmt.Errorf("link: section %d linked twice", section)
	}
	img, err := LinkSection(objs)
	if err != nil {
		return err
	}
	b.cells[section] = img
	return nil
}

// Linked reports how many sections have been linked so far.
func (b *Builder) Linked() int { return len(b.cells) }

// Finish orders the linked cell images by section index into the download
// module. At least one section must have been added.
func (b *Builder) Finish() (*Module, error) {
	if len(b.cells) == 0 {
		return nil, fmt.Errorf("link: module %s has no sections", b.name)
	}
	idxs := make([]int, 0, len(b.cells))
	for i := range b.cells {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	m := &Module{Name: b.name}
	for _, i := range idxs {
		m.Cells = append(m.Cells, b.cells[i])
	}
	return m, nil
}

// LinkModule links every section's objects (grouped by section index) into
// a download module. sections maps section index -> objects.
func LinkModule(name string, sections map[int][]*asm.Object) (*Module, error) {
	b := NewBuilder(name)
	idxs := make([]int, 0, len(sections))
	for i := range sections {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if err := b.Add(i, sections[i]); err != nil {
			return nil, fmt.Errorf("section %d: %w", i, err)
		}
	}
	return b.Finish()
}

// TotalWords is the module code size across all cells.
func (m *Module) TotalWords() int {
	n := 0
	for _, c := range m.Cells {
		n += len(c.Code)
	}
	return n
}

package warpsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/link"
	"repro/internal/machine"
)

// img builds a hand-assembled cell image.
func img(dataWords int, words ...machine.Word) *link.CellImage {
	return &link.CellImage{Section: 1, Code: words, DataWords: dataWords, DataSyms: map[string]int{}}
}

func w(ins ...machine.Instr) machine.Word {
	var word machine.Word
	for _, in := range ins {
		word[machine.Info(in.Op).Unit] = in
	}
	return word
}

func run(t *testing.T, m *link.Module, in []machine.WordVal) ([]machine.WordVal, Stats) {
	t.Helper()
	arr := NewArray(m, Config{MaxCycles: 100000})
	out, st, err := arr.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

func TestBasicArithmeticAndLatency(t *testing.T) {
	// r2 = 7; r3 = r2 + r2 (available after 1 cycle); send r3.
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: 7}),
		w(machine.Instr{Op: machine.IADD, Dst: 3, A: 2, B: 2}),
		w(), // wait one cycle for the add to commit
		w(machine.Instr{Op: machine.CVTIF, Dst: 4, A: 3}),
		w(), w(), w(), w(), // CVTIF latency 5
		w(machine.Instr{Op: machine.SENDY, A: 4}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	out, _ := run(t, m, nil)
	if len(out) != 1 || out[0].Float() != 14 {
		t.Fatalf("got %v, want [14.0]", out)
	}
}

func TestPendingWriteNotVisibleEarly(t *testing.T) {
	// FADD has latency 5; reading its target the next cycle must see the
	// OLD value, exactly as the scheduler assumes.
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: int32(machine.FloatWord(1.0))}),
		w(machine.Instr{Op: machine.LDI, Dst: 3, Imm: int32(machine.FloatWord(2.0))}),
		w(machine.Instr{Op: machine.FADDOP, Dst: 4, A: 2, B: 3}), // r4 := 3.0 at +5
		w(machine.Instr{Op: machine.SENDY, A: 4}),                // sends OLD r4 (0)
		w(), w(), w(), w(),
		w(machine.Instr{Op: machine.SENDY, A: 4}), // now committed: 3.0
		w(machine.Instr{Op: machine.HALT}),
	)}}
	out, _ := run(t, m, nil)
	if len(out) != 2 {
		t.Fatalf("got %d outputs", len(out))
	}
	if out[0].Float() != 0 {
		t.Errorf("early read saw %g, want 0 (stale value)", out[0].Float())
	}
	if out[1].Float() != 3.0 {
		t.Errorf("late read saw %g, want 3", out[1].Float())
	}
}

func TestBranchingAndLoop(t *testing.T) {
	// Count down from 5, sending each value: r2=5; loop: send r2; r2=r2-1;
	// (wait for commit); bt r2>0 -> loop.
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: 5}),
		w(machine.Instr{Op: machine.LDI, Dst: 3, Imm: 1}),
		// loop (pc=2):
		w(machine.Instr{Op: machine.SENDX, A: 2}, machine.Instr{Op: machine.ISUB, Dst: 2, A: 2, B: 3}),
		w(machine.Instr{Op: machine.ICMPGT, Dst: 4, A: 2, B: 0}),
		w(machine.Instr{Op: machine.BT, A: 4, Imm: 2}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	out, _ := run(t, m, nil)
	want := []int32{5, 4, 3, 2, 1}
	if len(out) != len(want) {
		t.Fatalf("got %d outputs %v, want 5", len(out), out)
	}
	for i, v := range want {
		if out[i].Int() != v {
			t.Errorf("out[%d] = %d, want %d", i, out[i].Int(), v)
		}
	}
}

func TestMemoryAndTraps(t *testing.T) {
	// Store then load with base addressing.
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(8,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: 3}),       // index
		w(machine.Instr{Op: machine.LDI, Dst: 3, Imm: 42}),      // value
		w(machine.Instr{Op: machine.STORE, A: 2, B: 3, Imm: 4}), // mem[3+4] = 42
		w(machine.Instr{Op: machine.LOAD, Dst: 4, A: 2, Imm: 4}),
		w(), w(),
		w(machine.Instr{Op: machine.SENDY, A: 4}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	out, _ := run(t, m, nil)
	if len(out) != 1 || out[0].Int() != 42 {
		t.Fatalf("got %v, want [42]", out)
	}
}

func TestTrapOnBadAddress(t *testing.T) {
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(4,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: 100}),
		w(machine.Instr{Op: machine.LOAD, Dst: 3, A: 2, Imm: 0}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	arr := NewArray(m, Config{MaxCycles: 1000})
	_, _, err := arr.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "out of data memory") {
		t.Errorf("expected address trap, got %v", err)
	}
}

func TestTrapOnDivZero(t *testing.T) {
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: 1}),
		w(machine.Instr{Op: machine.IDIV, Dst: 3, A: 2, B: 0}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	arr := NewArray(m, Config{MaxCycles: 1000})
	_, _, err := arr.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected div-zero trap, got %v", err)
	}
}

func TestQueueStallAndFlow(t *testing.T) {
	// Cell reads two inputs and emits their sum; the host feeds them.
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.RECVX, Dst: 2}),
		w(machine.Instr{Op: machine.RECVX, Dst: 3}),
		w(machine.Instr{Op: machine.FADDOP, Dst: 4, A: 2, B: 3}),
		w(), w(), w(), w(),
		w(machine.Instr{Op: machine.SENDY, A: 4}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	out, _ := run(t, m, []machine.WordVal{machine.FloatWord(1.25), machine.FloatWord(2.5)})
	if len(out) != 1 || math.Abs(float64(out[0].Float())-3.75) > 1e-6 {
		t.Fatalf("got %v, want [3.75]", out)
	}
}

func TestBackpressureStallsSender(t *testing.T) {
	// Cell 0 sends 4 values back to back into a depth-1 queue; cell 1 wastes
	// cycles before each receive, so cell 0 must stall on flow control.
	sender := img(0,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: 1}),
		w(machine.Instr{Op: machine.SENDY, A: 2}),
		w(machine.Instr{Op: machine.SENDY, A: 2}),
		w(machine.Instr{Op: machine.SENDY, A: 2}),
		w(machine.Instr{Op: machine.SENDY, A: 2}),
		w(machine.Instr{Op: machine.HALT}),
	)
	receiver := img(0,
		w(), w(), w(), w(), w(), w(), w(), w(),
		w(machine.Instr{Op: machine.RECVX, Dst: 2}),
		w(machine.Instr{Op: machine.RECVX, Dst: 2}),
		w(machine.Instr{Op: machine.RECVX, Dst: 2}),
		w(machine.Instr{Op: machine.RECVX, Dst: 2}),
		w(machine.Instr{Op: machine.SENDY, A: 2}),
		w(machine.Instr{Op: machine.HALT}),
	)
	m := &link.Module{Name: "t", Cells: []*link.CellImage{sender, receiver}}
	arr := NewArray(m, Config{MaxCycles: 10000, QueueDepth: 1})
	_, st, err := arr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells[0].Stalled == 0 {
		t.Error("sender should stall against the full depth-1 queue")
	}
}

func TestTwoCellPipeline(t *testing.T) {
	// Cell 0 adds 1 to each of 3 inputs; cell 1 doubles. Uses integer ops
	// (latency 1) with one wait word.
	mk := func(addImm int32, op machine.Opcode) *link.CellImage {
		return img(0,
			// r5 = loop counter 3, r6 = 1
			w(machine.Instr{Op: machine.LDI, Dst: 5, Imm: 3}),
			w(machine.Instr{Op: machine.LDI, Dst: 6, Imm: 1}),
			w(machine.Instr{Op: machine.LDI, Dst: 7, Imm: addImm}),
			// loop (pc=3): recv r2
			w(machine.Instr{Op: machine.RECVX, Dst: 2}),
			w(), // wait for queue write commit
			w(machine.Instr{Op: op, Dst: 3, A: 2, B: 7}),
			w(machine.Instr{Op: machine.ISUB, Dst: 5, A: 5, B: 6}),
			w(machine.Instr{Op: machine.ICMPGT, Dst: 4, A: 5, B: 0}),
			w(), // wait for the value op (IMUL latency 3) to commit
			w(machine.Instr{Op: machine.SENDY, A: 3}, machine.Instr{Op: machine.BT, A: 4, Imm: 3}),
			w(machine.Instr{Op: machine.HALT}),
		)
	}
	m := &link.Module{Name: "t", Cells: []*link.CellImage{
		mk(1, machine.IADD),
		mk(2, machine.IMUL),
	}}
	in := []machine.WordVal{machine.IntWord(10), machine.IntWord(20), machine.IntWord(30)}
	out, _ := run(t, m, in)
	want := []int32{22, 42, 62}
	if len(out) != 3 {
		t.Fatalf("got %v", out)
	}
	for i, v := range want {
		if out[i].Int() != v {
			t.Errorf("out[%d] = %d, want %d", i, out[i].Int(), v)
		}
	}
}

func TestCallRet(t *testing.T) {
	// CALL pushes the return address; RET pops it.
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: 11}),
		w(machine.Instr{Op: machine.CALL, Imm: 4}),
		w(machine.Instr{Op: machine.SENDY, A: 3}),
		w(machine.Instr{Op: machine.HALT}),
		// subroutine at 4: r3 = r2 + r2; ret
		w(machine.Instr{Op: machine.IADD, Dst: 3, A: 2, B: 2}),
		w(machine.Instr{Op: machine.RET}),
	)}}
	out, _ := run(t, m, nil)
	if len(out) != 1 || out[0].Int() != 22 {
		t.Fatalf("got %v, want [22]", out)
	}
}

func TestRetUnderflowTrap(t *testing.T) {
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.RET}),
	)}}
	arr := NewArray(m, Config{MaxCycles: 100})
	_, _, err := arr.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "underflow") {
		t.Errorf("expected underflow trap, got %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A cell that receives with no input ever arriving.
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.RECVX, Dst: 2}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	arr := NewArray(m, Config{MaxCycles: 100000})
	_, _, err := arr.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock, got %v", err)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.LDI, Dst: 0, Imm: 99}),
		w(),
		w(machine.Instr{Op: machine.IADD, Dst: 2, A: 0, B: 0}),
		w(),
		w(machine.Instr{Op: machine.SENDY, A: 2}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	out, _ := run(t, m, nil)
	if out[0].Int() != 0 {
		t.Errorf("r0 was written: got %d", out[0].Int())
	}
}

func TestWrongSlotTrap(t *testing.T) {
	var word machine.Word
	word[machine.FADD] = machine.Instr{Op: machine.IADD, Dst: 2, A: 0, B: 0} // ALU op in FADD slot
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0, word)}}
	arr := NewArray(m, Config{MaxCycles: 100})
	_, _, err := arr.Run(nil)
	if err == nil || !strings.Contains(err.Error(), "wrong slot") {
		t.Errorf("expected wrong-slot trap, got %v", err)
	}
}

func TestUtilizationStats(t *testing.T) {
	m := &link.Module{Name: "t", Cells: []*link.CellImage{img(0,
		w(machine.Instr{Op: machine.LDI, Dst: 2, Imm: 1}),
		w(machine.Instr{Op: machine.HALT}),
	)}}
	_, st := run(t, m, nil)
	if st.Cells[0].Executed != 2 {
		t.Errorf("executed = %d, want 2", st.Cells[0].Executed)
	}
	if u := st.Cells[0].Utilization(st.Cycles + 1); u <= 0 || u > 1 {
		t.Errorf("utilization %g out of range", u)
	}
}

// Package warpsim is a cycle-level functional simulator for a linear array
// of Warp-like cells executing linked download modules. It implements the
// timing model the scheduler compiles for — per-unit latencies, pending
// register writes that commit at issue+latency, blocking divide/sqrt — and
// flow-controlled inter-cell queues.
//
// The two pathways of the real cell (X and Y) are collapsed into one
// rightward stream per adjacent cell pair, which matches the language
// semantics of the reference interpreter: receive reads the cell's input
// stream, send appends to its output stream.
package warpsim

import (
	"fmt"
	"math"

	"repro/internal/link"
	"repro/internal/machine"
)

// Config adjusts simulation limits.
type Config struct {
	// MaxCycles aborts runaway programs (default 10M).
	MaxCycles int64
	// QueueDepth overrides the inter-cell queue depth (default
	// machine.QueueDepth).
	QueueDepth int
}

// Stats reports what a run did.
type Stats struct {
	Cycles int64
	// PerCell execution statistics.
	Cells []CellStats
}

// CellStats counts one cell's activity.
type CellStats struct {
	Executed int64 // instruction words executed
	Stalled  int64 // cycles stalled on queue flow control
	Idle     int64 // cycles after halt
}

// Utilization returns the fraction of cycles the cell was executing.
func (c CellStats) Utilization(total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c.Executed) / float64(total)
}

// TrapError is a runtime fault inside a cell.
type TrapError struct {
	Cell  int
	PC    int
	Cycle int64
	Msg   string
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("cell %d: trap at pc=%d cycle=%d: %s", e.Cell, e.PC, e.Cycle, e.Msg)
}

type pendingWrite struct {
	reg machine.Reg
	val machine.WordVal
	at  int64
	seq int64
}

type queue struct {
	buf   []machine.WordVal
	depth int
}

func (q *queue) empty() bool { return len(q.buf) == 0 }
func (q *queue) full() bool  { return len(q.buf) >= q.depth }
func (q *queue) push(v machine.WordVal) {
	q.buf = append(q.buf, v)
}
func (q *queue) pop() machine.WordVal {
	v := q.buf[0]
	q.buf = q.buf[1:]
	return v
}

type cell struct {
	index   int
	img     *link.CellImage
	pc      int
	regs    [machine.NumRegs]machine.WordVal
	mem     []machine.WordVal
	pend    []pendingWrite
	seq     int64
	retStk  []int
	halted  bool
	in, out *queue
}

// Array simulates the cells of a linked module.
type Array struct {
	cells  []*cell
	queues []*queue // queues[i] feeds cells[i]; queues[len] is the output
	cfg    Config
	input  []machine.WordVal
	fed    int
	output []machine.WordVal
}

// NewArray builds a simulator for the module.
func NewArray(m *link.Module, cfg Config) *Array {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 10_000_000
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = machine.QueueDepth
	}
	a := &Array{cfg: cfg}
	n := len(m.Cells)
	for i := 0; i <= n; i++ {
		a.queues = append(a.queues, &queue{depth: cfg.QueueDepth})
	}
	for i, img := range m.Cells {
		c := &cell{
			index: i,
			img:   img,
			mem:   make([]machine.WordVal, img.DataWords),
			in:    a.queues[i],
			out:   a.queues[i+1],
		}
		c.pc = img.Entry
		a.cells = append(a.cells, c)
	}
	return a
}

// Run feeds the input stream into the first cell, executes until every cell
// halts, and returns the output stream from the last cell.
func (a *Array) Run(input []machine.WordVal) ([]machine.WordVal, Stats, error) {
	a.input = input
	a.fed = 0
	a.output = nil
	stats := Stats{Cells: make([]CellStats, len(a.cells))}

	for cycle := int64(0); ; cycle++ {
		if cycle >= a.cfg.MaxCycles {
			return nil, stats, fmt.Errorf("simulation exceeded %d cycles (livelock?)", a.cfg.MaxCycles)
		}
		progress := false

		// Host feeds the first queue and drains the last.
		if a.fed < len(a.input) && !a.queues[0].full() {
			a.queues[0].push(a.input[a.fed])
			a.fed++
			progress = true
		}
		for !a.queues[len(a.queues)-1].empty() {
			a.output = append(a.output, a.queues[len(a.queues)-1].pop())
			progress = true
		}

		allHalted := true
		for i, c := range a.cells {
			committed := c.commit(cycle)
			if committed {
				progress = true
			}
			if c.halted {
				stats.Cells[i].Idle++
				continue
			}
			allHalted = false
			ran, err := c.step(cycle)
			if err != nil {
				return nil, stats, err
			}
			if ran {
				stats.Cells[i].Executed++
				progress = true
			} else {
				stats.Cells[i].Stalled++
			}
		}
		if allHalted {
			// Final drain.
			for !a.queues[len(a.queues)-1].empty() {
				a.output = append(a.output, a.queues[len(a.queues)-1].pop())
			}
			stats.Cycles = cycle
			return a.output, stats, nil
		}
		if !progress {
			return nil, stats, fmt.Errorf("deadlock at cycle %d: all cells stalled", cycle)
		}
	}
}

// commit applies pending register writes due at this cycle, in issue order.
func (c *cell) commit(cycle int64) bool {
	if len(c.pend) == 0 {
		return false
	}
	kept := c.pend[:0]
	any := false
	for _, w := range c.pend {
		if w.at <= cycle {
			if w.reg != machine.RZero {
				c.regs[w.reg] = w.val
			}
			any = true
		} else {
			kept = append(kept, w)
		}
	}
	c.pend = kept
	return any
}

// step executes the word at pc, or stalls. It reports whether it executed.
func (c *cell) step(cycle int64) (bool, error) {
	if c.pc < 0 || c.pc >= len(c.img.Code) {
		return false, &TrapError{c.index, c.pc, cycle, "pc out of program memory"}
	}
	w := c.img.Code[c.pc]

	// Flow control: the whole word stalls if any queue op cannot proceed.
	for u := machine.Unit(0); u < machine.NumUnits; u++ {
		switch w[u].Op {
		case machine.RECVX, machine.RECVY:
			if c.in.empty() {
				return false, nil
			}
		case machine.SENDX, machine.SENDY:
			if c.out.full() {
				return false, nil
			}
		}
	}

	nextPC := c.pc + 1
	for u := machine.Unit(0); u < machine.NumUnits; u++ {
		in := w[u]
		if in.Op == machine.NOP {
			continue
		}
		info := machine.Info(in.Op)
		if info.Unit != u {
			return false, &TrapError{c.index, c.pc, cycle,
				fmt.Sprintf("op %s encoded in wrong slot %s", info.Name, u)}
		}
		branch, target, err := c.exec(in, cycle)
		if err != nil {
			return false, err
		}
		if branch {
			nextPC = target
		}
	}
	c.pc = nextPC
	return true, nil
}

// write schedules a register write committing at cycle+latency.
func (c *cell) write(r machine.Reg, v machine.WordVal, cycle int64, lat int) {
	c.seq++
	c.pend = append(c.pend, pendingWrite{reg: r, val: v, at: cycle + int64(lat), seq: c.seq})
}

func (c *cell) read(r machine.Reg) machine.WordVal {
	if r == machine.RZero {
		return 0
	}
	return c.regs[r]
}

// exec performs one operation. For CTRL ops it returns the branch decision.
func (c *cell) exec(in machine.Instr, cycle int64) (bool, int, error) {
	info := machine.Info(in.Op)
	a := c.read(in.A)
	b := c.read(in.B)
	trap := func(msg string) (bool, int, error) {
		return false, 0, &TrapError{c.index, c.pc, cycle, msg}
	}
	out := func(v machine.WordVal) (bool, int, error) {
		c.write(in.Dst, v, cycle, info.Latency)
		return false, 0, nil
	}
	bw := machine.BoolWord

	switch in.Op {
	case machine.IADD:
		return out(machine.IntWord(a.Int() + b.Int()))
	case machine.ISUB:
		return out(machine.IntWord(a.Int() - b.Int()))
	case machine.IMUL:
		return out(machine.IntWord(a.Int() * b.Int()))
	case machine.IDIV:
		if b.Int() == 0 {
			return trap("integer division by zero")
		}
		return out(machine.IntWord(a.Int() / b.Int()))
	case machine.IREM:
		if b.Int() == 0 {
			return trap("integer modulo by zero")
		}
		return out(machine.IntWord(a.Int() % b.Int()))
	case machine.INEG:
		return out(machine.IntWord(-a.Int()))
	case machine.IABS:
		v := a.Int()
		if v < 0 {
			v = -v
		}
		return out(machine.IntWord(v))
	case machine.IMIN:
		if a.Int() < b.Int() {
			return out(a)
		}
		return out(b)
	case machine.IMAX:
		if a.Int() > b.Int() {
			return out(a)
		}
		return out(b)
	case machine.AND:
		return out(a & b)
	case machine.OR:
		return out(a | b)
	case machine.XOR:
		return out(a ^ b)
	case machine.NOT:
		return out(bw(a == 0))
	case machine.MOV:
		return out(a)
	case machine.LDI:
		return out(machine.WordVal(uint32(in.Imm)))
	case machine.ICMPEQ:
		return out(bw(a.Int() == b.Int()))
	case machine.ICMPNE:
		return out(bw(a.Int() != b.Int()))
	case machine.ICMPLT:
		return out(bw(a.Int() < b.Int()))
	case machine.ICMPLE:
		return out(bw(a.Int() <= b.Int()))
	case machine.ICMPGT:
		return out(bw(a.Int() > b.Int()))
	case machine.ICMPGE:
		return out(bw(a.Int() >= b.Int()))

	case machine.FADDOP:
		return out(machine.FloatWord(a.Float() + b.Float()))
	case machine.FSUBOP:
		return out(machine.FloatWord(a.Float() - b.Float()))
	case machine.FNEG:
		return out(machine.FloatWord(-a.Float()))
	case machine.FABS:
		return out(machine.FloatWord(float32(math.Abs(float64(a.Float())))))
	case machine.FMIN:
		return out(machine.FloatWord(float32(math.Min(float64(a.Float()), float64(b.Float())))))
	case machine.FMAX:
		return out(machine.FloatWord(float32(math.Max(float64(a.Float()), float64(b.Float())))))
	case machine.CVTIF:
		return out(machine.FloatWord(float32(a.Int())))
	case machine.CVTFI:
		return out(machine.IntWord(int32(a.Float())))
	case machine.FCMPEQ:
		return out(bw(a.Float() == b.Float()))
	case machine.FCMPNE:
		return out(bw(a.Float() != b.Float()))
	case machine.FCMPLT:
		return out(bw(a.Float() < b.Float()))
	case machine.FCMPLE:
		return out(bw(a.Float() <= b.Float()))
	case machine.FCMPGT:
		return out(bw(a.Float() > b.Float()))
	case machine.FCMPGE:
		return out(bw(a.Float() >= b.Float()))

	case machine.FMULOP:
		return out(machine.FloatWord(a.Float() * b.Float()))
	case machine.FDIV:
		return out(machine.FloatWord(a.Float() / b.Float()))
	case machine.FSQRT:
		if a.Float() < 0 {
			return trap("sqrt of negative value")
		}
		return out(machine.FloatWord(float32(math.Sqrt(float64(a.Float())))))

	case machine.LOAD:
		addr := int(a.Int()) + int(in.Imm)
		if addr < 0 || addr >= len(c.mem) {
			return trap(fmt.Sprintf("load address %d out of data memory [0,%d)", addr, len(c.mem)))
		}
		return out(c.mem[addr])
	case machine.STORE:
		addr := int(a.Int()) + int(in.Imm)
		if addr < 0 || addr >= len(c.mem) {
			return trap(fmt.Sprintf("store address %d out of data memory [0,%d)", addr, len(c.mem)))
		}
		// Stores commit at issue+1; modelled as immediate because the
		// scheduler already separates stores from dependent loads by one
		// cycle and the memory unit is the only reader.
		c.mem[addr] = b
		return false, 0, nil

	case machine.JMP:
		return true, int(in.Imm), nil
	case machine.BT:
		if a != 0 {
			return true, int(in.Imm), nil
		}
		return false, 0, nil
	case machine.BF:
		if a == 0 {
			return true, int(in.Imm), nil
		}
		return false, 0, nil
	case machine.CALL:
		if len(c.retStk) >= machine.ReturnStackDepth {
			return trap("return stack overflow")
		}
		c.retStk = append(c.retStk, c.pc+1)
		return true, int(in.Imm), nil
	case machine.RET:
		if len(c.retStk) == 0 {
			return trap("return stack underflow")
		}
		t := c.retStk[len(c.retStk)-1]
		c.retStk = c.retStk[:len(c.retStk)-1]
		return true, t, nil
	case machine.HALT:
		c.halted = true
		return false, 0, nil

	case machine.RECVX, machine.RECVY:
		v := c.in.pop()
		c.write(in.Dst, v, cycle, info.Latency)
		return false, 0, nil
	case machine.SENDX, machine.SENDY:
		c.out.push(a)
		return false, 0, nil
	}
	return trap(fmt.Sprintf("unimplemented opcode %d", in.Op))
}

package service

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/sched"
)

// Config parameterizes a Daemon. Backend is the only required field.
type Config struct {
	// Backend is the shared compile backend every job is multiplexed onto
	// (cluster.LocalPool or cluster.RPCPool, typically with a disk-backed
	// cache attached so a restarted daemon starts warm).
	Backend core.Backend
	// MaxActive bounds concurrently running jobs; <1 means the backend's
	// worker count. MaxQueued bounds jobs waiting at admission; <0 means
	// 4*MaxActive. Everything past both is shed with warp-err:overloaded.
	MaxActive int
	MaxQueued int
	// Tokens is the jobserver bucket capacity; <1 means MaxActive. Every
	// running job holds one token; clients may borrow the rest.
	Tokens int
	// JobTimeout is the per-job deadline measured from admission (0 = none).
	JobTimeout time.Duration
	// WriteTimeout bounds each response write so a hanging client that
	// stops reading cannot wedge its connection goroutine (0 = 10s).
	WriteTimeout time.Duration
	// PerBuildFleets reverts to the pre-shared-fleet behavior: every job
	// constructs and retires its own work-stealing fleet instead of
	// dispatching through the daemon-lifetime shared one. Kept as the
	// measured baseline for cross-build stealing (BenchmarkCrossBuildSteal),
	// the way NoSteal is the baseline for stealing at all.
	PerBuildFleets bool
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// flightKey identifies a dedupable job: same source bytes, same compiler
// options, same dispatch policy ⇒ word-identical output, compile once.
type flightKey struct {
	src   fcache.SourceHash
	opts  string // compiler.OptsKey
	popts core.ParallelOptions
}

// flight is one in-flight deduplicated compile. refs counts subscribers
// (leader + coalesced followers); when the last one leaves before the
// compile finishes, the flight's context is cancelled and the fleet slice
// it holds is severed.
type flight struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when result fields are final
	refs   int
	ended  bool // result is final; refs no longer gate cancellation

	res        *compiler.Result
	stats      *core.ParallelStats
	err        error
	retryAfter time.Duration
}

// Daemon is the warpd compile service: it accepts gob-framed requests
// over any net.Listener and multiplexes compile jobs onto one shared
// backend under admission control, a parallelism-token bound, per-job
// cancellation, cross-job dedup, and graceful drain. See the package
// comment for the full policy.
type Daemon struct {
	cfg    Config
	admit  *Admitter
	tokens *Bucket
	// fleet is the daemon-lifetime work-stealing fleet every job dispatches
	// through (nil under Config.PerBuildFleets): one set of slots sized to
	// the backend, multiplexing all concurrent builds so one build's
	// straggler tail is drained by slots another build left idle. Jobs tag
	// their units with the same client identity the Admitter queues by, and
	// victim selection is weighted by per-tenant service deficit.
	fleet *sched.Fleet

	baseCtx context.Context
	stop    context.CancelFunc // hard stop: severs every job and conn

	mu        sync.Mutex
	draining  bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	flights   map[flightKey]*flight
	stats     DaemonStats
	// ewmaService is the smoothed job service time backing RetryAfter.
	ewmaService time.Duration
	// replies counts requests between pickup and response write; Shutdown
	// flushes these before severing connections so a client whose job
	// finished during the drain still receives its result. repliesDone is
	// signalled (under mu) each time the count drops.
	replies     int
	repliesDone *sync.Cond

	jobs  sync.WaitGroup // one per flight
	connG sync.WaitGroup // one per connection
}

// NewDaemon builds a daemon over the shared backend. Call Serve with one
// or more listeners, then Shutdown to drain.
func NewDaemon(cfg Config) (*Daemon, error) {
	if cfg.Backend == nil {
		return nil, errors.New("service: Config.Backend is required")
	}
	if cfg.MaxActive < 1 {
		cfg.MaxActive = cfg.Backend.Workers()
		if cfg.MaxActive < 1 {
			cfg.MaxActive = 1
		}
	}
	if cfg.MaxQueued < 0 {
		cfg.MaxQueued = 4 * cfg.MaxActive
	}
	if cfg.Tokens < 1 {
		cfg.Tokens = cfg.MaxActive
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		cfg:       cfg,
		admit:     NewAdmitter(cfg.MaxActive, cfg.MaxQueued),
		tokens:    NewBucket(cfg.Tokens),
		baseCtx:   ctx,
		stop:      cancel,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		flights:   make(map[flightKey]*flight),
	}
	d.repliesDone = sync.NewCond(&d.mu)
	if !cfg.PerBuildFleets {
		nslots := cfg.Backend.Workers()
		if nslots < 1 {
			nslots = 1
		}
		d.fleet = sched.NewFleet(nslots)
	}
	return d, nil
}

// Serve accepts connections on l until the listener is closed (by
// Shutdown or externally). It returns nil on orderly close.
func (d *Daemon) Serve(l net.Listener) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return Errf(codeDraining, "daemon: draining, not accepting listeners")
	}
	d.listeners[l] = struct{}{}
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		delete(d.listeners, l)
		d.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		d.mu.Lock()
		if d.draining {
			d.mu.Unlock()
			// Race between Accept and drain: refuse politely so the
			// client gets a coded error rather than a bare reset.
			go d.refuseDraining(conn)
			continue
		}
		d.conns[conn] = struct{}{}
		d.stats.Clients++
		d.mu.Unlock()
		d.connG.Add(1)
		go d.handleConn(conn)
	}
}

// refuseDraining answers one request on conn with a draining error, then
// closes it.
func (d *Daemon) refuseDraining(conn net.Conn) {
	defer conn.Close()
	var req Request
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return
	}
	d.mu.Lock()
	d.stats.JobsDrainRefused++
	d.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
	gob.NewEncoder(conn).Encode(errResponse(
		Errf(codeDraining, "daemon: draining, not accepting new jobs"), d.retryAfter()))
}

// handleConn runs one client connection: a reader goroutine decodes
// requests and detects disconnects (a failed read cancels connCtx, which
// severs exactly this connection's in-flight work); the main loop
// processes one request at a time and writes responses under a deadline.
// Tokens the connection borrowed are reclaimed on the way out.
func (d *Daemon) handleConn(conn net.Conn) {
	defer d.connG.Done()
	connCtx, connCancel := context.WithCancel(d.baseCtx)
	held := 0
	defer func() {
		connCancel()
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.stats.Clients--
		d.mu.Unlock()
		for ; held > 0; held-- {
			d.tokens.Reclaim()
		}
	}()

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	reqs := make(chan *Request)
	var disconnected atomic.Bool
	go func() {
		defer connCancel() // read failure = disconnect = cancel this conn's work
		for {
			var req Request
			if err := dec.Decode(&req); err != nil {
				disconnected.Store(true)
				return
			}
			select {
			case reqs <- &req:
			case <-connCtx.Done():
				return
			}
		}
	}()

	client := conn.RemoteAddr().String()
	for {
		var req *Request
		select {
		case req = <-reqs:
		case <-connCtx.Done():
			return
		}
		if req.Client == "" {
			req.Client = client
		}
		// The pickup-to-write window is tracked so Shutdown can flush
		// responses already owed before it severs connections.
		d.mu.Lock()
		d.replies++
		d.mu.Unlock()
		resp := d.handle(connCtx, req, &held)
		var werr error
		if disconnected.Load() {
			werr = errors.New("client disconnected") // nobody to answer
		} else {
			conn.SetWriteDeadline(time.Now().Add(d.cfg.WriteTimeout))
			werr = enc.Encode(resp)
		}
		d.mu.Lock()
		d.replies--
		d.repliesDone.Broadcast()
		d.mu.Unlock()
		if werr != nil {
			if !disconnected.Load() {
				d.cfg.Logf("warpd: write to %s failed: %v", client, werr)
			}
			return
		}
	}
}

// handle dispatches one request. held tracks tokens borrowed by this
// connection.
func (d *Daemon) handle(ctx context.Context, req *Request, held *int) *Response {
	switch req.Op {
	case OpPing:
		if d.isDraining() {
			return errResponse(Errf(codeDraining, "daemon: draining"), d.retryAfter())
		}
		return &Response{}
	case OpStats:
		return &Response{Daemon: d.snapshotStats(), Held: *held}
	case OpAcquire:
		n := req.N
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if err := d.tokens.Acquire(ctx); err != nil {
				for ; i > 0; i-- {
					d.tokens.Release()
				}
				return errResponse(Errf(codeOverloaded, "token acquire: %v", err), d.retryAfter())
			}
		}
		*held += n
		return &Response{Granted: n, Held: *held}
	case OpRelease:
		n := req.N
		if n < 1 {
			n = 1
		}
		if n > *held {
			return errResponse(Errf(codeBadRequest,
				"release of %d token(s) but connection holds %d", n, *held), 0)
		}
		for i := 0; i < n; i++ {
			d.tokens.Release()
		}
		*held -= n
		return &Response{Held: *held}
	case OpCompile:
		return d.compile(ctx, req)
	default:
		return errResponse(Errf(codeBadRequest, "unknown op %q", req.Op), 0)
	}
}

// compile runs (or joins) one deduplicated compile job. The caller's ctx
// is its subscription: when it ends before the flight does, the caller
// unsubscribes, and the flight itself is cancelled only when the last
// subscriber leaves — so one client's disconnect never severs a
// co-subscribed job.
func (d *Daemon) compile(ctx context.Context, req *Request) *Response {
	if len(req.Source) == 0 {
		return errResponse(Errf(codeBadRequest, "empty source"), 0)
	}
	if req.File == "" {
		req.File = "input.w2"
	}
	d.mu.Lock()
	if d.draining {
		d.stats.JobsDrainRefused++
		d.mu.Unlock()
		return errResponse(Errf(codeDraining, "daemon: draining, not accepting new jobs"), d.retryAfter())
	}
	key := flightKey{
		src:   fcache.HashSource(req.Source),
		opts:  compiler.OptsKey(req.Opts),
		popts: req.POpts,
	}
	f, ok := d.flights[key]
	if ok {
		f.refs++
		d.stats.JobsCoalesced++
		d.mu.Unlock()
	} else {
		fctx, cancel := context.WithCancel(d.baseCtx)
		f = &flight{ctx: fctx, cancel: cancel, done: make(chan struct{}), refs: 1}
		d.flights[key] = f
		d.jobs.Add(1)
		d.mu.Unlock()
		go d.runFlight(key, f, req)
	}

	select {
	case <-f.done:
		d.unsubscribe(key, f)
		return d.flightResponse(f, ok)
	case <-ctx.Done():
		d.unsubscribe(key, f)
		return errResponse(fmt.Errorf("job cancelled: %w", ctx.Err()), 0)
	}
}

// unsubscribe drops one subscriber from a flight; the last one out of a
// still-running flight cancels it (and removes it from the dedup table so
// a later identical submission starts fresh).
func (d *Daemon) unsubscribe(key flightKey, f *flight) {
	d.mu.Lock()
	f.refs--
	if f.refs == 0 && !f.ended {
		f.cancel()
		if d.flights[key] == f {
			delete(d.flights, key)
		}
	}
	d.mu.Unlock()
}

// runFlight executes one deduplicated job end to end: admission, token,
// backend-stats snapshot, compile, per-job stats scoping. It finalizes
// the flight's result fields before closing done.
func (d *Daemon) runFlight(key flightKey, f *flight, req *Request) {
	defer d.jobs.Done()
	defer func() {
		d.mu.Lock()
		f.ended = true
		if d.flights[key] == f {
			delete(d.flights, key)
		}
		d.mu.Unlock()
		f.cancel()
		close(f.done)
	}()

	if err := d.admit.Acquire(f.ctx, req.Client); err != nil {
		if cluster.IsOverloaded(err) {
			f.err, f.retryAfter = err, d.retryAfter()
			d.count(func(s *DaemonStats) { s.JobsShed++ })
		} else {
			f.err = fmt.Errorf("job cancelled at admission: %w", err)
			d.count(func(s *DaemonStats) { s.JobsCancelled++ })
		}
		return
	}
	defer d.admit.Release()
	d.count(func(s *DaemonStats) { s.JobsAccepted++ })

	if err := d.tokens.Acquire(f.ctx); err != nil {
		f.err = fmt.Errorf("job cancelled awaiting token: %w", err)
		d.count(func(s *DaemonStats) { s.JobsCancelled++ })
		return
	}
	defer d.tokens.Release()

	jobCtx := f.ctx
	if d.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		jobCtx, cancel = context.WithTimeout(jobCtx, d.cfg.JobTimeout)
		defer cancel()
	}

	// Dispatch through the daemon-lifetime fleet (injected server-side: the
	// wire options — and the dedup key derived from them — never carry the
	// handle). The tenant tag is the same client identity the Admitter
	// fair-shares by, so the fleet's deficit weighting and admission agree
	// on who is starved.
	popts := req.POpts
	if d.fleet != nil && !popts.NoSteal {
		popts = popts.WithFleet(d.fleet, req.Client)
	}

	snap := core.SnapshotBackendStats(d.cfg.Backend)
	start := time.Now()
	res, pstats, err := core.ParallelCompileContext(jobCtx, req.File, req.Source, d.cfg.Backend, req.Opts, popts)
	if err != nil {
		if jobCtx.Err() != nil {
			f.err = fmt.Errorf("job cancelled: %w", err)
			d.count(func(s *DaemonStats) { s.JobsCancelled++ })
			return
		}
		if cluster.CodeOf(err) == "" {
			err = Errf(codeCompile, "%v", err)
		}
		f.err = err
		d.count(func(s *DaemonStats) { s.JobsFailed++ })
		return
	}
	pstats.ScopeToSnapshot(snap)
	f.res, f.stats = res, pstats
	d.observeService(time.Since(start))
	d.count(func(s *DaemonStats) { s.JobsCompleted++ })
}

// flightResponse renders a finished flight for one subscriber.
func (d *Daemon) flightResponse(f *flight, coalesced bool) *Response {
	if f.err != nil {
		return errResponse(f.err, f.retryAfter)
	}
	resp := &Response{
		ModuleName: f.res.ModuleName,
		Module:     f.res.Module,
		Driver:     f.res.Driver,
		Warnings:   f.res.Warnings,
		Stats:      f.stats,
		Coalesced:  coalesced,
	}
	for _, fr := range f.res.Funcs {
		resp.Funcs = append(resp.Funcs, FuncSummary{
			Name: fr.Name, Section: fr.Section, Lines: fr.Lines, CPUTime: fr.CPUTime,
		})
	}
	return resp
}

func (d *Daemon) isDraining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// count applies one mutation to the service counters under the lock.
func (d *Daemon) count(f func(*DaemonStats)) {
	d.mu.Lock()
	f(&d.stats)
	d.mu.Unlock()
}

// observeService folds one job's service time into the EWMA that backs
// RetryAfter suggestions.
func (d *Daemon) observeService(dt time.Duration) {
	d.mu.Lock()
	if d.ewmaService == 0 {
		d.ewmaService = dt
	} else {
		d.ewmaService = (3*d.ewmaService + dt) / 4
	}
	d.mu.Unlock()
}

// retryAfter suggests a backoff for a shed or drain-refused job: the
// smoothed service time scaled by the queue's relative fullness, clamped
// to [50ms, 5s]. A client honoring it arrives roughly when a slot frees.
func (d *Daemon) retryAfter() time.Duration {
	d.mu.Lock()
	base := d.ewmaService
	d.mu.Unlock()
	if base == 0 {
		base = 100 * time.Millisecond
	}
	_, queued := d.admit.Depth()
	ra := base * time.Duration(1+queued) / time.Duration(d.cfg.MaxActive)
	if ra < 50*time.Millisecond {
		ra = 50 * time.Millisecond
	}
	if ra > 5*time.Second {
		ra = 5 * time.Second
	}
	return ra
}

// snapshotStats renders the current service counters.
func (d *Daemon) snapshotStats() *DaemonStats {
	d.mu.Lock()
	s := d.stats
	d.mu.Unlock()
	active, queued := d.admit.Depth()
	s.ActiveJobs, s.QueuedJobs = int64(active), int64(queued)
	s.Tokens = d.tokens.Stats()
	if d.fleet != nil {
		fs := d.fleet.Stats()
		s.FleetSteals = int64(fs.Steals)
		s.FleetCrossBuildSteals = int64(fs.CrossBuildSteals)
		s.FleetBatchSplits = int64(fs.BatchSplits)
	}
	return &s
}

// Shutdown drains the daemon: it stops accepting (listeners close, new
// jobs get warp-err:draining), waits up to grace for accepted jobs to
// finish, then cancels whatever remains and closes every connection. It
// returns an error if parallelism tokens leaked — the invariant the
// chaos soak holds the daemon to.
func (d *Daemon) Shutdown(grace time.Duration) error {
	d.mu.Lock()
	d.draining = true
	for l := range d.listeners {
		l.Close()
	}
	d.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		d.jobs.Wait()
		// Jobs are done, but their results may still be in flight to the
		// subscribers — hold the severing until those writes land (each is
		// bounded by the write deadline).
		d.mu.Lock()
		for d.replies > 0 {
			d.repliesDone.Wait()
		}
		d.mu.Unlock()
		close(finished)
	}()
	var timer <-chan time.Time
	if grace > 0 {
		t := time.NewTimer(grace)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-finished:
	case <-timer:
		d.cfg.Logf("warpd: drain grace expired, cancelling remaining jobs")
		d.stop()
		<-finished
	}
	// Jobs are done and answered; sever the connections (reclaiming any
	// tokens they borrowed) and wait for their goroutines.
	d.stop()
	d.mu.Lock()
	for c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	d.connG.Wait()

	// Every job has unwound (each closed its own Build handle), so the
	// shared fleet is dry: retire the slot goroutines.
	if d.fleet != nil {
		d.fleet.Close()
		d.fleet.Wait()
	}

	if n := d.tokens.Outstanding(); n != 0 {
		return fmt.Errorf("service: %d parallelism token(s) leaked at shutdown", n)
	}
	return nil
}

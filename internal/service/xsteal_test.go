package service

import (
	"context"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/wgen"
)

// Cross-build stealing suite: concurrent builds multiplexed onto the
// daemon's shared work-stealing fleet must stay word-identical to their
// sequential compiles at every worker count, survive one build's
// mid-flight cancellation without perturbing its siblings, and keep a
// tiny tenant's job from starving behind a huge one.

// TestCrossBuildStealParity runs two tenants' distinct modules through one
// daemon concurrently at workers 1/2/4/8 and checks both outputs are
// word-identical to the sequential oracle, with correctly scoped per-job
// steal stats (shared fleet, per-slot idle decomposition).
func TestCrossBuildStealParity(t *testing.T) {
	noAmbientDiskCache(t)
	srcA := wgen.SkewedProgram(2, 4)
	srcB := wgen.MixedProgram(24)
	seqA, err := compiler.CompileModule("a.w2", srcA, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := compiler.CompileModule("b.w2", srcB, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		// An uncached pool per round: every job recompiles for real, so the
		// shared fleet is genuinely exercised rather than answered from the
		// object tier.
		d, addr := startDaemon(t, Config{
			Backend:   cluster.NewLocalPoolWith(workers, nil),
			MaxActive: 2,
		})
		clA, clB := dialT(t, addr), dialT(t, addr)
		clA.SetIdentity("tenant-a")
		clB.SetIdentity("tenant-b")

		type jobOut struct {
			resp *Response
			err  error
		}
		outA, outB := make(chan jobOut, 1), make(chan jobOut, 1)
		go func() {
			r, err := clA.Compile(context.Background(), "a.w2", srcA, compiler.Options{}, core.ParallelOptions{})
			outA <- jobOut{r, err}
		}()
		go func() {
			r, err := clB.Compile(context.Background(), "b.w2", srcB, compiler.Options{}, core.ParallelOptions{})
			outB <- jobOut{r, err}
		}()
		a, b := <-outA, <-outB
		if a.err != nil || b.err != nil {
			t.Fatalf("workers=%d: job errors: a=%v b=%v", workers, a.err, b.err)
		}
		if err := core.VerifySameOutput(seqA.Module, a.resp.Module); err != nil {
			t.Fatalf("workers=%d: tenant A differs from sequential: %v", workers, err)
		}
		if err := core.VerifySameOutput(seqB.Module, b.resp.Module); err != nil {
			t.Fatalf("workers=%d: tenant B differs from sequential: %v", workers, err)
		}
		for name, resp := range map[string]*Response{"a": a.resp, "b": b.resp} {
			st := resp.Stats.Steal
			if !st.Enabled || !st.Shared {
				t.Errorf("workers=%d: job %s must report the shared fleet: %+v", workers, name, st)
			}
			if len(st.IdleTime) != workers {
				t.Errorf("workers=%d: job %s idle decomposition has %d slots", workers, name, len(st.IdleTime))
			}
			if st.CrossBuildSteals > st.Steals {
				t.Errorf("workers=%d: job %s cross-build steals exceed steals: %+v", workers, name, st)
			}
		}
		ds := d.snapshotStats()
		if ds.FleetSteals < int64(a.resp.Stats.Steal.Steals+b.resp.Stats.Steal.Steals) {
			t.Errorf("workers=%d: fleet counter %d below the jobs' sum %d+%d", workers,
				ds.FleetSteals, a.resp.Stats.Steal.Steals, b.resp.Stats.Steal.Steals)
		}
	}
}

// TestPerBuildFleetsConfigRestoresPrivateFleets pins the baseline switch:
// under Config.PerBuildFleets each job reports a private fleet and the
// daemon publishes no fleet counters.
func TestPerBuildFleetsConfigRestoresPrivateFleets(t *testing.T) {
	noAmbientDiskCache(t)
	d, addr := startDaemon(t, Config{
		Backend:        cluster.NewLocalPoolWith(2, nil),
		PerBuildFleets: true,
	})
	cl := dialT(t, addr)
	resp, err := cl.Compile(context.Background(), "m.w2", wgen.MixedProgram(8), compiler.Options{}, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := resp.Stats.Steal; !st.Enabled || st.Shared {
		t.Errorf("per-build fleets must report Enabled and not Shared: %+v", st)
	}
	if ds := d.snapshotStats(); ds.FleetSteals != 0 || ds.FleetCrossBuildSteals != 0 || ds.FleetBatchSplits != 0 {
		t.Errorf("no shared fleet, no fleet counters: %+v", ds)
	}
}

// TestCrossBuildCancellationLeavesSiblingIntact cancels one build while it
// is pinned in flight on the shared fleet and checks the sibling build
// completes word-identically, the cancelled build's queued units drain as
// orphans (the fleet keeps serving afterwards), no parallelism token
// leaks, and no goroutines leak.
func TestCrossBuildCancellationLeavesSiblingIntact(t *testing.T) {
	noAmbientDiskCache(t)
	baseline := runtime.NumGoroutine()

	pool := cluster.NewLocalPoolWith(2, nil)
	gated := newGatedBackend(pool)
	d, err := NewDaemon(Config{Backend: gated, MaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln := listenT(t)
	go d.Serve(ln)

	srcA := wgen.SkewedProgram(2, 4)
	srcB := wgen.MixedProgram(16)
	seqB, err := compiler.CompileModule("b.w2", srcB, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}

	clA, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	clA.SetIdentity("tenant-a")
	ctxA, cancelA := context.WithCancel(context.Background())
	aDone := make(chan error, 1)
	go func() {
		_, err := clA.Compile(ctxA, "a.w2", srcA, compiler.Options{}, core.ParallelOptions{})
		aDone <- err
	}()
	<-gated.started // build A is in flight, pinned at the backend

	clB, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()
	clB.SetIdentity("tenant-b")
	bDone := make(chan error, 1)
	var respB *Response
	go func() {
		r, err := clB.Compile(context.Background(), "b.w2", srcB, compiler.Options{}, core.ParallelOptions{})
		respB = r
		bDone <- err
	}()

	// Cancel A mid-flight. Its pinned units return the moment their context
	// dies — before the gate opens — and its queued units are dropped by
	// Build.Close as orphans that never reach the backend.
	cancelA()
	if err := <-aDone; err == nil {
		t.Fatal("cancelled job A reported success")
	}
	clA.Close()
	waitFor(t, "job A cancelled in daemon stats", func() bool {
		return d.snapshotStats().JobsCancelled >= 1
	})

	close(gated.release) // open the gate: only B's units remain
	if err := <-bDone; err != nil {
		t.Fatalf("sibling build B failed after A's cancellation: %v", err)
	}
	if err := core.VerifySameOutput(seqB.Module, respB.Module); err != nil {
		t.Fatalf("sibling build B differs from sequential: %v", err)
	}

	// The fleet keeps serving after the cancellation: a fresh job through
	// the same shared fleet still completes correctly (no orphan poisoning,
	// no stuck slots).
	r2, err := clB.Compile(context.Background(), "b.w2", srcB, compiler.Options{}, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySameOutput(seqB.Module, r2.Module); err != nil {
		t.Fatalf("post-cancellation job differs from sequential: %v", err)
	}
	if n := d.snapshotStats().Tokens.Outstanding; n != 0 {
		t.Errorf("%d parallelism tokens outstanding with no jobs running", n)
	}

	clB.Close()
	if err := d.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown (token-leak check): %v", err)
	}
	ln.Close()

	// Goroutine-leak check: daemon slots, job goroutines, and conn handlers
	// must all be gone once the daemon is down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after cancellation test: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTinyJobNotStarvedByHugeJob is the daemon-level starvation guard: a
// tiny tenant's job submitted while a huge tenant saturates the shared
// fleet must complete while the huge job is still running, within a
// bounded multiple of its solo latency — the deficit-weighted victim
// selection at work.
func TestTinyJobNotStarvedByHugeJob(t *testing.T) {
	noAmbientDiskCache(t)
	_, addr := startDaemon(t, Config{
		Backend:   cluster.NewLocalPoolWith(2, nil),
		MaxActive: 2,
	})
	tinyCl := dialT(t, addr)
	tinyCl.SetIdentity("tenant-tiny")
	hugeCl := dialT(t, addr)
	hugeCl.SetIdentity("tenant-huge")

	tinySrc := wgen.SmallFuncsProgram(3)
	hugeSrc := wgen.SkewedProgram(3, 10)

	// Solo latency: the tiny job with the daemon otherwise idle. The first
	// compile also warms the process (JIT-free, but allocator and page
	// cache warmup are real); a second solo run is the fair yardstick.
	for i := 0; i < 2; i++ {
		if _, err := tinyCl.Compile(context.Background(), "tiny.w2", tinySrc, compiler.Options{}, core.ParallelOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Now()
	if _, err := tinyCl.Compile(context.Background(), "tiny.w2", tinySrc, compiler.Options{}, core.ParallelOptions{}); err != nil {
		t.Fatal(err)
	}
	solo := time.Since(t0)

	var hugeDone atomic.Bool
	var hugeElapsed time.Duration
	hugeErr := make(chan error, 1)
	hugeStart := time.Now()
	go func() {
		_, err := hugeCl.Compile(context.Background(), "huge.w2", hugeSrc, compiler.Options{}, core.ParallelOptions{})
		hugeElapsed = time.Since(hugeStart)
		hugeDone.Store(true)
		hugeErr <- err
	}()
	// Give the huge job a head start so it owns the fleet when tiny arrives.
	time.Sleep(20 * time.Millisecond)

	t1 := time.Now()
	if _, err := tinyCl.Compile(context.Background(), "tiny.w2", tinySrc, compiler.Options{}, core.ParallelOptions{}); err != nil {
		t.Fatal(err)
	}
	loaded := time.Since(t1)
	hugeStillRunning := !hugeDone.Load()
	if err := <-hugeErr; err != nil {
		t.Fatal(err)
	}

	// What the deficit weighting guarantees is that the tiny job waits for
	// at most one in-flight huge unit per slot, never the huge tenant's
	// whole queue — a starved tiny job's latency approaches the huge job's
	// entire runtime. What it cannot grant is more than a fair share of the
	// machine: on a single-CPU -race box the tiny job still timeshares with
	// the huge compiles it overlaps. The bound therefore takes the solo
	// multiple (generous for scheduling noise) or 3/4 of the huge job's
	// measured runtime, whichever is larger; a starved run lands at ~1x.
	bound := 20*solo + 500*time.Millisecond
	if frac := 3 * hugeElapsed / 4; frac > bound {
		bound = frac
	}
	if loaded > bound {
		t.Errorf("tiny job took %v under load vs %v solo (huge ran %v, bound %v, huge still running: %v)",
			loaded, solo, hugeElapsed, bound, hugeStillRunning)
	}
	if !hugeStillRunning {
		t.Logf("note: huge job finished before tiny completed (loaded=%v solo=%v); starvation not exercised this run", loaded, solo)
	}
}

// listenT opens a loopback listener. The caller closes it explicitly:
// leak-checking tests need deterministic teardown order, not t.Cleanup.
func listenT(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

package service

import (
	"context"
	"sync"
)

// TokenStats snapshots the parallelism bucket: Capacity tokens exist in
// total, Outstanding are currently held (by running jobs or by wire
// clients), Acquired/Released/Reclaimed count lifecycle events. After a
// full drain Outstanding must be zero — the no-leak invariant the chaos
// soak asserts.
type TokenStats struct {
	Capacity    int
	Outstanding int
	Acquired    int64
	Released    int64
	// Reclaimed counts tokens taken back from a connection that closed
	// (client crash or disconnect) while still holding them.
	Reclaimed int64
	// Waits counts acquisitions that had to queue behind an empty bucket.
	Waits int64
}

// Bucket is the jobserver-style parallelism bound: a fixed pool of
// capacity tokens. Every running compile job holds one for its duration;
// wire clients may borrow tokens explicitly (OpAcquire/OpRelease) to
// bound the daemon's parallelism from outside, exactly as make's
// jobserver pipe bounds a GCC -fparallel-jobs build. FIFO handoff: a
// released token goes to the longest waiter.
type Bucket struct {
	mu      sync.Mutex
	cap     int
	avail   int
	waiters []chan struct{}
	stats   TokenStats
}

// NewBucket returns a bucket of n tokens (n < 1 is treated as 1).
func NewBucket(n int) *Bucket {
	if n < 1 {
		n = 1
	}
	return &Bucket{cap: n, avail: n, stats: TokenStats{Capacity: n}}
}

// Capacity returns the total token count.
func (b *Bucket) Capacity() int { return b.cap }

// Acquire takes one token, blocking until one is free or ctx is done. On
// ctx expiry no token is held and none is lost, even when the grant races
// the cancellation.
func (b *Bucket) Acquire(ctx context.Context) error {
	b.mu.Lock()
	if b.avail > 0 {
		b.avail--
		b.stats.Acquired++
		b.mu.Unlock()
		return nil
	}
	ch := make(chan struct{}, 1)
	b.waiters = append(b.waiters, ch)
	b.stats.Waits++
	b.mu.Unlock()

	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		b.mu.Lock()
		for i, w := range b.waiters {
			if w == ch {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				b.mu.Unlock()
				return ctx.Err()
			}
		}
		b.mu.Unlock()
		// The handoff raced the cancellation: the buffered send already
		// happened under the releaser's lock. Take the token and return it.
		<-ch
		b.Release()
		return ctx.Err()
	}
}

// TryAcquire takes a token only if one is free right now.
func (b *Bucket) TryAcquire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.avail == 0 {
		return false
	}
	b.avail--
	b.stats.Acquired++
	return true
}

// Release returns one token, handing it to the longest waiter if any.
func (b *Bucket) Release() { b.put(false) }

// Reclaim returns a token on behalf of a connection that died while
// holding it — same effect as Release, counted separately so leak
// accounting can distinguish orderly returns from crash recovery.
func (b *Bucket) Reclaim() { b.put(true) }

func (b *Bucket) put(reclaimed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if reclaimed {
		b.stats.Reclaimed++
	} else {
		b.stats.Released++
	}
	if len(b.waiters) > 0 {
		ch := b.waiters[0]
		b.waiters = b.waiters[1:]
		b.stats.Acquired++
		ch <- struct{}{}
		return
	}
	if b.avail == b.cap {
		panic("service: token bucket over-released")
	}
	b.avail++
}

// Outstanding reports how many tokens are currently held.
func (b *Bucket) Outstanding() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cap - b.avail
}

// Stats snapshots the bucket's counters.
func (b *Bucket) Stats() TokenStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.Outstanding = b.cap - b.avail
	return s
}

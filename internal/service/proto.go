// Package service implements warpd, the multi-tenant compile daemon: a
// long-running process that accepts many concurrent compile jobs over a
// Unix or TCP socket and multiplexes them onto one shared worker pool
// (internal/cluster) and one shared artifact cache (internal/fcache).
//
// The design goal is graceful degradation, in the same spirit as the
// dispatch layer below it (DESIGN.md §8):
//
//   - Admission control: a bounded job queue with fair-share (round-robin
//     per client) scheduling. When the queue is full, new jobs are shed
//     with a structured, retryable warp-err:overloaded error carrying a
//     suggested backoff — the daemon never queues unboundedly.
//   - Per-job cancellation: each job runs under its own context; a client
//     disconnecting (or cancelling) severs exactly its own slice of the
//     worker fleet, without perturbing co-tenant jobs.
//   - Jobserver-style tokens: a fixed bucket of parallelism tokens bounds
//     total daemon concurrency. Every running job holds one; wire clients
//     may borrow tokens too (to coordinate their own build parallelism,
//     as with GCC's -fparallel-jobs=jobserver). Tokens are reclaimed when
//     a job ends for any reason — completion, cancellation, crash of the
//     owning connection — so chaos cannot leak them.
//   - Graceful drain: SIGTERM finishes accepted jobs, refuses new ones
//     with warp-err:draining, and verifies zero outstanding tokens. A
//     restarted daemon over a warm cache directory serves repeat jobs
//     from the object tier without recompiling anything.
//   - Cross-job dedup: identical submissions (same source bytes, same
//     options) coalesce singleflight-style; a thundering herd compiles
//     once and every caller receives the winner's word-identical output.
//
// The wire protocol is a sequence of gob-encoded Request/Response pairs
// over one connection (gob frames itself, so no extra length prefix is
// needed). A client sends one request and reads one response before
// sending the next; closing the connection cancels the client's in-flight
// and queued work and returns any tokens the connection holds. Errors
// travel as warp-err:<code> message strings, the same structured-error
// convention as the RPC worker protocol, so cluster.CodeOf classifies
// them on either side of the wire.
package service

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/iodriver"
	"repro/internal/link"
)

// The daemon reuses the cluster's structured error codes so one
// classification scheme spans worker RPCs and the service wire.
const (
	codeOverloaded = cluster.CodeOverloaded
	codeDraining   = cluster.CodeDraining
	codeCompile    = cluster.CodeCompile
	codeBadRequest = cluster.CodeBadRequest
)

// Op names a request kind on the daemon wire.
type Op string

const (
	// OpCompile submits one module for compilation and waits for the
	// linked result (or a coded refusal).
	OpCompile Op = "compile"
	// OpAcquire borrows n parallelism tokens from the daemon's bucket.
	// Tokens are held by the connection and reclaimed when it closes.
	OpAcquire Op = "token-acquire"
	// OpRelease returns n previously borrowed tokens.
	OpRelease Op = "token-release"
	// OpStats asks for the daemon's service counters.
	OpStats Op = "stats"
	// OpPing checks liveness; a draining daemon answers with a coded
	// draining error so load balancers stop routing to it.
	OpPing Op = "ping"
)

// Request is one client message. Exactly one op's field group is used.
type Request struct {
	Op Op
	// Client is the fair-share scheduling identity. Empty means the
	// connection's remote address: one process, one share. Identity is
	// cooperative — the daemon serves trusted build clients, not the
	// open internet.
	Client string

	// Compile fields.
	File   string
	Source []byte
	Opts   compiler.Options
	POpts  core.ParallelOptions

	// Token fields: how many tokens to acquire or release.
	N int
}

// FuncSummary is the per-function stats row of a compile response — what
// warpcc -stats prints. Objects stay in the daemon; the linked module is
// the product.
type FuncSummary struct {
	Name    string
	Section int
	Lines   int
	CPUTime time.Duration
}

// Response is one daemon message, answering the request of the same
// position in the conversation.
type Response struct {
	// Err carries a failure as a warp-err:<code>-prefixed message ("" on
	// success); cluster.CodeOf recovers the classification. Compile errors
	// (bad source) are coded compile; admission shedding is coded
	// overloaded; a shutting-down daemon answers coded draining.
	Err string
	// RetryAfter is the daemon's suggested backoff before retrying a
	// shed or drain-refused job (zero otherwise). It scales with the
	// current queue depth and the observed service time.
	RetryAfter time.Duration

	// Compile result fields.
	ModuleName string
	Module     *link.Module
	Driver     *iodriver.Driver
	Funcs      []FuncSummary
	Warnings   []string
	// Stats is the job's parallel-compilation breakdown with the shared
	// backend's cumulative counters scoped to this job's interval.
	Stats *core.ParallelStats
	// Coalesced reports that this response was produced by another,
	// identical in-flight job (cross-job dedup): the output is the
	// winner's, word-identical to what a private compile would produce.
	Coalesced bool

	// Token fields: tokens granted by this op / held by this connection.
	Granted int
	Held    int

	// Daemon service counters (OpStats).
	Daemon *DaemonStats
}

// DaemonStats are the service-level counters, cumulative since daemon
// start. They complement (not duplicate) the backend's cache and fault
// counters, which travel per job inside Response.Stats.
type DaemonStats struct {
	// JobsAccepted counts compile jobs admitted past admission control
	// (including ones later cancelled or failed); JobsCompleted the ones
	// that produced a module; JobsFailed the ones whose compile errored;
	// JobsCancelled the ones severed by client disconnect or deadline.
	JobsAccepted  int64
	JobsCompleted int64
	JobsFailed    int64
	JobsCancelled int64
	// JobsShed counts jobs rejected with warp-err:overloaded at
	// admission; JobsDrainRefused the ones refused because the daemon was
	// draining.
	JobsShed         int64
	JobsDrainRefused int64
	// JobsCoalesced counts submissions answered by an identical in-flight
	// job instead of compiling again (cross-job dedup).
	JobsCoalesced int64
	// ActiveJobs and QueuedJobs are gauges of the admission state at the
	// time of the snapshot.
	ActiveJobs int64
	QueuedJobs int64
	// Tokens reports the parallelism bucket.
	Tokens TokenStats
	// Clients is the number of currently connected clients.
	Clients int64
	// FleetSteals, FleetCrossBuildSteals, and FleetBatchSplits are the
	// daemon-lifetime shared stealing fleet's cumulative rebalancing
	// counters across every job served (all zero under
	// Config.PerBuildFleets, where each job runs its own fleet).
	FleetSteals           int64
	FleetCrossBuildSteals int64
	FleetBatchSplits      int64
}

// errResponse builds a coded failure response.
func errResponse(err error, retryAfter time.Duration) *Response {
	return &Response{Err: err.Error(), RetryAfter: retryAfter}
}

// Errf builds a service error whose classification survives the wire (it
// is cluster.Errf; re-exported so callers of this package need not import
// the cluster for error construction).
func Errf(code cluster.Code, format string, args ...any) error {
	return cluster.Errf(code, format, args...)
}

package service

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/wgen"
)

// noAmbientDiskCache clears WARP_CACHE_DIR so daemon tests that assert
// cold-cache behavior (recompiles happen, dedup coalesces real work) are
// not answered from a CI-shared disk tier. Must run before any pool is
// created.
func noAmbientDiskCache(t *testing.T) {
	t.Helper()
	t.Setenv(fcache.EnvCacheDir, "")
}

// startDaemon builds a daemon over cfg (Backend defaults to a 4-worker
// local pool) and serves it on a loopback TCP listener. Shutdown runs in
// cleanup and its token-leak check is asserted.
func startDaemon(t *testing.T, cfg Config) (*Daemon, string) {
	t.Helper()
	if cfg.Backend == nil {
		cfg.Backend = cluster.NewLocalPool(4)
	}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)
	t.Cleanup(func() {
		if err := d.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return d, l.Addr().String()
}

// dialT connects a client and closes it in cleanup.
func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// gatedBackend wraps a backend so its first Compile blocks until the test
// releases it — pinning jobs "in flight" deterministically. Wrapping hides
// the pool's optional interfaces (cache, batching), which only narrows
// the paths under test.
type gatedBackend struct {
	core.Backend
	release chan struct{}
	started chan struct{}
	once    sync.Once
}

func newGatedBackend(inner core.Backend) *gatedBackend {
	return &gatedBackend{
		Backend: inner,
		release: make(chan struct{}),
		started: make(chan struct{}),
	}
}

func (g *gatedBackend) Compile(ctx context.Context, req core.CompileRequest) (*core.CompileReply, error) {
	g.once.Do(func() { close(g.started) })
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Backend.Compile(ctx, req)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDaemonCompileMatchesSequential: a job submitted over the wire
// produces a module word-identical to the in-process sequential compiler,
// with per-function summaries and job-scoped stats attached.
func TestDaemonCompileMatchesSequential(t *testing.T) {
	noAmbientDiskCache(t)
	_, addr := startDaemon(t, Config{})
	cl := dialT(t, addr)

	src := wgen.UserProgram()
	resp, err := cl.Compile(context.Background(), "user.w2", src, compiler.Options{}, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := compiler.CompileModule("user.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySameOutput(seq.Module, resp.Module); err != nil {
		t.Fatalf("daemon output differs from sequential: %v", err)
	}
	if len(resp.Funcs) != len(seq.Funcs) {
		t.Errorf("daemon reported %d functions, sequential compiled %d", len(resp.Funcs), len(seq.Funcs))
	}
	if resp.Stats == nil || resp.Stats.Workers == 0 {
		t.Errorf("job stats missing or empty: %+v", resp.Stats)
	}
	if resp.Driver == nil {
		t.Error("response missing the I/O driver")
	}
}

// TestDaemonPerJobStatsScoped: two sequential jobs over one shared
// backend each report their own cache activity, not the backend's
// lifetime totals — the second (identical) job sees hits, and its counters
// don't include the first job's misses.
func TestDaemonPerJobStatsScoped(t *testing.T) {
	noAmbientDiskCache(t)
	_, addr := startDaemon(t, Config{})
	cl := dialT(t, addr)

	src := wgen.UserProgram()
	first, err := cl.Compile(context.Background(), "user.w2", src, compiler.Options{}, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Compile(context.Background(), "user.w2", src, compiler.Options{}, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Cache.ObjectMisses == 0 {
		t.Errorf("cold job reports no object misses: %+v", first.Stats.Cache)
	}
	if second.Stats.Cache.ObjectMisses >= first.Stats.Cache.ObjectMisses {
		t.Errorf("warm job's scoped misses (%d) not below cold job's (%d) — stats not scoped per job",
			second.Stats.Cache.ObjectMisses, first.Stats.Cache.ObjectMisses)
	}
}

// TestDaemonDedupThunderingHerd: eight identical concurrent submissions
// compile once; seven coalesce and all eight receive word-identical
// modules.
func TestDaemonDedupThunderingHerd(t *testing.T) {
	noAmbientDiskCache(t)
	gate := newGatedBackend(cluster.NewLocalPool(4))
	d, addr := startDaemon(t, Config{Backend: gate})

	const herd = 8
	src := wgen.UserProgram()
	var wg sync.WaitGroup
	responses := make([]*Response, herd)
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		i := i
		cl := dialT(t, addr)
		wg.Add(1)
		go func() {
			defer wg.Done()
			responses[i], errs[i] = cl.Compile(context.Background(), "user.w2", src, compiler.Options{}, core.ParallelOptions{})
		}()
	}
	<-gate.started
	waitFor(t, "followers to coalesce", func() bool {
		return d.snapshotStats().JobsCoalesced == herd-1
	})
	close(gate.release)
	wg.Wait()

	coalesced := 0
	for i := range responses {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if responses[i].Coalesced {
			coalesced++
		}
		if err := core.VerifySameOutput(responses[0].Module, responses[i].Module); err != nil {
			t.Fatalf("job %d output differs: %v", i, err)
		}
	}
	if coalesced != herd-1 {
		t.Errorf("%d responses marked coalesced, want %d", coalesced, herd-1)
	}
	s := d.snapshotStats()
	if s.JobsAccepted != 1 || s.JobsCompleted != 1 {
		t.Errorf("accepted=%d completed=%d, want 1/1 — the herd compiled more than once", s.JobsAccepted, s.JobsCompleted)
	}
}

// TestDaemonOverloadShed: with one job running and one queue slot taken, a
// third submission is shed with the retryable overloaded code and a
// positive suggested backoff; the queued jobs still finish.
func TestDaemonOverloadShed(t *testing.T) {
	noAmbientDiskCache(t)
	gate := newGatedBackend(cluster.NewLocalPool(2))
	d, addr := startDaemon(t, Config{Backend: gate, MaxActive: 1, MaxQueued: 1})

	sources := [][]byte{
		wgen.SmallFuncsProgram(2),
		wgen.SmallFuncsProgram(3),
		wgen.SmallFuncsProgram(4),
	}
	type result struct {
		resp *Response
		err  error
	}
	results := make([]chan result, 2)
	for i := 0; i < 2; i++ {
		i := i
		results[i] = make(chan result, 1)
		cl := dialT(t, addr)
		go func() {
			resp, err := cl.Compile(context.Background(), "m.w2", sources[i], compiler.Options{}, core.ParallelOptions{})
			results[i] <- result{resp, err}
		}()
		if i == 0 {
			<-gate.started
		} else {
			waitFor(t, "job 1 to queue", func() bool {
				_, queued := d.admit.Depth()
				return queued == 1
			})
		}
	}

	_, err := dialT(t, addr).Compile(context.Background(), "m.w2", sources[2], compiler.Options{}, core.ParallelOptions{})
	if err == nil {
		t.Fatal("burst job past a full queue succeeded, want overloaded shed")
	}
	if !cluster.IsOverloaded(err) {
		t.Fatalf("shed error = %v, want code overloaded", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.RetryAfter <= 0 {
		t.Errorf("shed reply carries no suggested backoff: %v", err)
	}

	close(gate.release)
	for i := 0; i < 2; i++ {
		r := <-results[i]
		if r.err != nil {
			t.Fatalf("accepted job %d failed: %v", i, r.err)
		}
	}
	if s := d.snapshotStats(); s.JobsShed != 1 || s.JobsCompleted != 2 {
		t.Errorf("shed=%d completed=%d, want 1/2", s.JobsShed, s.JobsCompleted)
	}
}

// TestDaemonDisconnectCancelsJob: a client vanishing mid-compile severs
// exactly its own job — the slot, token, and flight are all reclaimed and
// an unrelated co-tenant job runs to completion untouched.
func TestDaemonDisconnectCancelsJob(t *testing.T) {
	noAmbientDiskCache(t)
	gate := newGatedBackend(cluster.NewLocalPool(2))
	d, addr := startDaemon(t, Config{Backend: gate, MaxActive: 2})

	doomed, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	go doomed.Compile(context.Background(), "m.w2", wgen.SmallFuncsProgram(3), compiler.Options{}, core.ParallelOptions{})
	<-gate.started
	doomed.Close()

	waitFor(t, "disconnected job to be cancelled", func() bool {
		return d.snapshotStats().JobsCancelled == 1
	})
	waitFor(t, "cancelled job's slot and token to be reclaimed", func() bool {
		active, queued := d.admit.Depth()
		return active == 0 && queued == 0 && d.tokens.Outstanding() == 0
	})

	// A survivor job on the same daemon still completes.
	close(gate.release)
	cl := dialT(t, addr)
	if _, err := cl.Compile(context.Background(), "m.w2", wgen.SmallFuncsProgram(2), compiler.Options{}, core.ParallelOptions{}); err != nil {
		t.Fatalf("co-tenant job after a disconnect: %v", err)
	}
}

// TestDaemonDrain: Shutdown finishes the accepted job, refuses a new one
// with the coded draining error, and verifies no token leaked.
func TestDaemonDrain(t *testing.T) {
	noAmbientDiskCache(t)
	gate := newGatedBackend(cluster.NewLocalPool(2))
	cfg := Config{Backend: gate, MaxActive: 2}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)

	accepted := dialT(t, l.Addr().String())
	late := dialT(t, l.Addr().String()) // dialed before drain, submits after
	acceptedRes := make(chan error, 1)
	go func() {
		_, err := accepted.Compile(context.Background(), "m.w2", wgen.SmallFuncsProgram(2), compiler.Options{}, core.ParallelOptions{})
		acceptedRes <- err
	}()
	<-gate.started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- d.Shutdown(10 * time.Second) }()
	waitFor(t, "daemon to enter draining", d.isDraining)

	_, lateErr := late.Compile(context.Background(), "m.w2", wgen.SmallFuncsProgram(3), compiler.Options{}, core.ParallelOptions{})
	if lateErr == nil {
		t.Fatal("job submitted during drain succeeded, want coded refusal")
	}
	if !cluster.IsDraining(lateErr) {
		t.Fatalf("drain refusal = %v, want code draining", lateErr)
	}

	close(gate.release)
	if err := <-acceptedRes; err != nil {
		t.Fatalf("accepted job did not survive the drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if s := d.snapshotStats(); s.JobsDrainRefused == 0 || s.JobsCompleted != 1 {
		t.Errorf("drain-refused=%d completed=%d, want >=1 and 1", s.JobsDrainRefused, s.JobsCompleted)
	}
}

// TestDaemonWarmRestart: a daemon restarted over the same cache directory
// serves a repeat job entirely from the persistent object tier — zero
// recompiled functions — and produces the identical module.
func TestDaemonWarmRestart(t *testing.T) {
	noAmbientDiskCache(t)
	dir := t.TempDir()
	src := wgen.UserProgram()

	boot := func() (*Response, error) {
		pool := cluster.NewLocalPool(4)
		if err := pool.Cache().AttachDisk(dir, 0); err != nil {
			t.Fatal(err)
		}
		d, err := NewDaemon(Config{Backend: pool})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go d.Serve(l)
		defer func() {
			if err := d.Shutdown(5 * time.Second); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}()
		cl, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		return cl.Compile(context.Background(), "user.w2", src, compiler.Options{}, core.ParallelOptions{})
	}

	cold, err := boot()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Dispatch.RecompiledFuncs == 0 {
		t.Fatalf("cold daemon recompiled nothing — cache dir %s not cold?", dir)
	}
	warm, err := boot()
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Stats.Dispatch.RecompiledFuncs; n != 0 {
		t.Errorf("restarted daemon recompiled %d function(s), want 0 (warm object tier)", n)
	}
	if err := core.VerifySameOutput(cold.Module, warm.Module); err != nil {
		t.Errorf("warm restart output differs: %v", err)
	}
}

// TestDaemonTokenOps: wire clients can borrow and return parallelism
// tokens, and a dead connection's tokens are reclaimed, not leaked.
func TestDaemonTokenOps(t *testing.T) {
	noAmbientDiskCache(t)
	d, addr := startDaemon(t, Config{Tokens: 4})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	held, err := cl.Acquire(context.Background(), 2)
	if err != nil || held != 2 {
		t.Fatalf("Acquire(2) = %d, %v; want 2 held", held, err)
	}
	if got := d.tokens.Outstanding(); got != 2 {
		t.Errorf("outstanding = %d after borrow, want 2", got)
	}
	held, err = cl.Release(context.Background(), 1)
	if err != nil || held != 1 {
		t.Fatalf("Release(1) = %d, %v; want 1 held", held, err)
	}
	if _, err := cl.Release(context.Background(), 5); err == nil {
		t.Error("over-release succeeded, want bad-request")
	} else if cluster.CodeOf(err) != cluster.CodeBadRequest {
		t.Errorf("over-release error = %v, want code bad-request", err)
	}
	cl.Close()
	waitFor(t, "dead connection's token to be reclaimed", func() bool {
		return d.tokens.Outstanding() == 0
	})
	if s := d.tokens.Stats(); s.Reclaimed != 1 {
		t.Errorf("reclaimed = %d, want 1", s.Reclaimed)
	}
}

// TestDaemonUnixSocket: the daemon serves over a Unix socket and the
// client's unix: address form reaches it.
func TestDaemonUnixSocket(t *testing.T) {
	noAmbientDiskCache(t)
	dir, err := os.MkdirTemp("", "warpd")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sock := filepath.Join(dir, "d.sock")

	d, err := NewDaemon(Config{Backend: cluster.NewLocalPool(2)})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)
	t.Cleanup(func() {
		if err := d.Shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})

	cl := dialT(t, "unix:"+sock)
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("ping over unix socket: %v", err)
	}
	resp, err := cl.Compile(context.Background(), "m.w2", wgen.SmallFuncsProgram(2), compiler.Options{}, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Module == nil {
		t.Fatal("compile over unix socket returned no module")
	}
}

// TestDaemonStealStatsInJobSnapshot: the work-stealing counters travel the
// wire inside each job's stats snapshot, and the NoSteal escape hatch in the
// submitted ParallelOptions is honored per job.
func TestDaemonStealStatsInJobSnapshot(t *testing.T) {
	noAmbientDiskCache(t)
	_, addr := startDaemon(t, Config{})
	cl := dialT(t, addr)

	resp, err := cl.Compile(context.Background(), "skew.w2", wgen.SkewedProgram(3, 5),
		compiler.Options{}, core.ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil || !resp.Stats.Steal.Enabled {
		t.Fatalf("job snapshot must report stealing dispatch: %+v", resp.Stats)
	}
	if len(resp.Stats.Steal.IdleTime) == 0 {
		t.Error("per-slot idle decomposition missing from the job snapshot")
	}

	off, err := cl.Compile(context.Background(), "skew2.w2", wgen.SkewedProgram(2, 4),
		compiler.Options{}, core.ParallelOptions{NoSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.Steal.Enabled {
		t.Error("NoSteal submitted over the wire must pin static dispatch")
	}
}

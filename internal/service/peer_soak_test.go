package service

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/peercache"
	"repro/internal/wgen"
)

// TestTwoDaemonPeerSoak is the daemon-level soak of the peer tier, mirroring
// the warpd -peer-listen / -peers wiring end to end: daemon A compiles a
// module and serves its cache over the peer protocol; daemon B, federated to
// A, serves the same module by peer fill instead of recompiling; then A is
// killed while one of B's fetches is parked on a scripted hang — mid-fetch,
// by construction — and B must still answer a fresh job correctly by
// compiling locally. Invariants:
//
//   - B's first job fills from A (peer hits, nothing recompiled by hand
//     counting: word-identical output is the bar either way);
//   - killing A mid-fetch degrades to a local compile, never an error or a
//     wrong answer;
//   - after both daemons drain, goroutines settle to the baseline — the
//     severed peer connections and released hang leak nothing.
//
// CI runs this test under -race as the p2p soak step.
// serveDaemonManually is startDaemon without the cleanup-time Shutdown: the
// peer soak must drain its daemons inside the test body so the goroutine
// baseline check that follows sees a quiesced process.
func serveDaemonManually(t *testing.T, cfg Config) (*Daemon, string) {
	t.Helper()
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)
	return d, l.Addr().String()
}

func TestTwoDaemonPeerSoak(t *testing.T) {
	noAmbientDiskCache(t)
	baseline := runtime.NumGoroutine()

	srcA := wgen.SyntheticProgram(wgen.Small, 8)
	srcB := wgen.SyntheticProgram(wgen.Medium, 4)
	oracle := func(src []byte) *link.Module {
		seq, err := compiler.CompileModule("m.w2", src, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return seq.Module
	}
	oracleA, oracleB := oracle(srcA), oracle(srcB)

	// Daemon A: local pool, cache served over the peer protocol with a plan
	// that hangs the fourth fetch open-endedly — the fetch we kill A under.
	poolA := cluster.NewLocalPool(2)
	planA := peercache.Script(
		peercache.Fault{Kind: peercache.FaultPass},
		peercache.Fault{Kind: peercache.FaultPass},
		peercache.Fault{Kind: peercache.FaultPass},
		peercache.Fault{Kind: peercache.FaultHang},
	)
	peerSrvA, peerAddrA, err := peercache.Serve("127.0.0.1:0", peercache.NewService(poolA.Cache(), "", planA))
	if err != nil {
		t.Fatal(err)
	}
	defer peerSrvA.Close()
	// Daemons are started by hand (not via startDaemon) so both can be shut
	// down inside the test body, before the goroutine-leak check runs.
	daemonA, addrA := serveDaemonManually(t, Config{Backend: poolA})

	// Warm A through its own front door, as a client would, before B
	// federates — the "second daemon coming up next to a warm one" story.
	clA, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	respA, err := clA.Compile(context.Background(), "m.w2", srcA, compiler.Options{}, core.ParallelOptions{})
	clA.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySameOutput(oracleA, respA.Module); err != nil {
		t.Fatalf("daemon A output differs: %v", err)
	}

	// Daemon B: its own local pool, federated to A the way warpd -peers is.
	poolB := cluster.NewLocalPool(2)
	peersB := peercache.New(peercache.ClientOptions{Timeout: 500 * time.Millisecond})
	defer peersB.Close()
	if n := peersB.Connect(peerAddrA); n != 1 {
		t.Fatalf("daemon B connected %d peers, want 1", n)
	}
	poolB.Cache().AttachPeers(peersB)
	daemonB, addrB := serveDaemonManually(t, Config{Backend: poolB})

	// B serves the same module: the first three fetches pass, so B fills at
	// least part of the module from A; the fourth parks on the hang. While
	// it is parked, kill A — connection severed mid-fetch. B's job must
	// still complete, word-identical, by compiling whatever the fleet never
	// delivered.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(5 * time.Second)
		for planA.Calls() < 4 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		peerSrvA.Close() // kills the parked fetch's transport too
	}()

	clB, err := Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	respB, err := clB.Compile(context.Background(), "m.w2", srcA, compiler.Options{}, core.ParallelOptions{})
	clB.Close()
	if err != nil {
		t.Fatalf("daemon B job during peer kill: %v", err)
	}
	if err := core.VerifySameOutput(oracleA, respB.Module); err != nil {
		t.Errorf("daemon B peer-filled output differs: %v", err)
	}
	<-killed
	if got := planA.Calls(); got < 4 {
		t.Errorf("peer plan saw %d fetches, want at least 4 (the kill happened too early)", got)
	}
	sB := poolB.CacheStats()
	if sB.PeerHits == 0 && sB.PeerPrefetched == 0 {
		t.Errorf("daemon B never filled from its peer: %s", sB)
	}
	if sB.PeerErrors == 0 {
		t.Errorf("the mid-fetch kill left no transport error: %s", sB)
	}

	// A fresh job against B with its only peer dead: pure local compile,
	// still word-identical, no hang.
	clB2, err := Dial(addrB)
	if err != nil {
		t.Fatal(err)
	}
	respB2, err := clB2.Compile(context.Background(), "m.w2", srcB, compiler.Options{}, core.ParallelOptions{})
	clB2.Close()
	if err != nil {
		t.Fatalf("daemon B job after peer death: %v", err)
	}
	if err := core.VerifySameOutput(oracleB, respB2.Module); err != nil {
		t.Errorf("daemon B post-kill output differs: %v", err)
	}

	// Drain both daemons (Shutdown's built-in check catches token leaks),
	// sever the peer client, and require the goroutine count to settle back
	// to the baseline.
	if err := daemonB.Shutdown(5 * time.Second); err != nil {
		t.Errorf("daemon B shutdown: %v", err)
	}
	if err := daemonA.Shutdown(5 * time.Second); err != nil {
		t.Errorf("daemon A shutdown: %v", err)
	}
	peersB.Close()
	peerSrvA.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after peer soak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

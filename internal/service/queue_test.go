package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
)

// waitDepth polls until the admitter reaches the wanted occupancy.
func waitDepth(t *testing.T, a *Admitter, wantActive, wantQueued int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		active, queued := a.Depth()
		if active == wantActive && queued == wantQueued {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admitter depth = (%d,%d), want (%d,%d)", active, queued, wantActive, wantQueued)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmitterFairShare: with one slot and a queue holding three jobs from
// client A and one each from B and C, releases grant round-robin across
// clients (A,B,C,A,A) — a flooding client delays itself, not co-tenants.
func TestAdmitterFairShare(t *testing.T) {
	a := NewAdmitter(1, 10)
	if err := a.Acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	admitted := make(chan string)
	release := make(chan struct{})
	enqueue := func(client string, queuedAfter int) {
		go func() {
			if err := a.Acquire(context.Background(), client); err != nil {
				t.Error(err)
				return
			}
			admitted <- client
			<-release
			a.Release()
		}()
		waitDepth(t, a, 1, queuedAfter)
	}
	// Arrival order: A, A, A, B, C.
	enqueue("A", 1)
	enqueue("A", 2)
	enqueue("A", 3)
	enqueue("B", 4)
	enqueue("C", 5)

	a.Release() // free the held slot; grants chain from here
	for i, want := range []string{"A", "B", "C", "A", "A"} {
		got := <-admitted
		if got != want {
			t.Fatalf("admission %d went to %s, want %s", i, got, want)
		}
		release <- struct{}{}
	}
	waitDepth(t, a, 0, 0)
}

// TestAdmitterShed: a full queue sheds immediately with the coded
// overloaded error rather than queueing unboundedly.
func TestAdmitterShed(t *testing.T) {
	a := NewAdmitter(1, 2)
	if err := a.Acquire(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		go a.Acquire(context.Background(), "x")
	}
	waitDepth(t, a, 1, 2)

	err := a.Acquire(context.Background(), "y")
	if err == nil {
		t.Fatal("Acquire past a full queue succeeded, want shed")
	}
	if !cluster.IsOverloaded(err) {
		t.Fatalf("shed error = %v, want code overloaded", err)
	}
	if _, shed, _ := a.Counters(); shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}
	// Drain so the queued goroutines finish.
	a.Release()
	waitDepth(t, a, 1, 1)
	a.Release()
	waitDepth(t, a, 1, 0)
}

// TestAdmitterCancelWhileQueued: a waiter abandoning the queue leaves no
// residue — its slot is never granted and later releases stay balanced.
func TestAdmitterCancelWhileQueued(t *testing.T) {
	a := NewAdmitter(1, 4)
	if err := a.Acquire(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.Acquire(ctx, "y") }()
	waitDepth(t, a, 1, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
	}
	waitDepth(t, a, 1, 0)
	a.Release()
	waitDepth(t, a, 0, 0)
	// The freed slot must be immediately acquirable.
	if err := a.Acquire(context.Background(), "z"); err != nil {
		t.Fatal(err)
	}
	a.Release()
}

// TestBucketFIFOAndReclaim: tokens hand off to the longest waiter, and
// Reclaim balances the books exactly like Release while counting
// separately.
func TestBucketFIFOAndReclaim(t *testing.T) {
	b := NewBucket(1)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if b.TryAcquire() {
		t.Fatal("TryAcquire succeeded on an empty bucket")
	}
	got := make(chan int)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			if err := b.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			got <- i
		}()
		// Wait until this waiter is queued so arrival order is fixed.
		deadline := time.Now().Add(2 * time.Second)
		for b.Stats().Waits != int64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	b.Release()
	if first := <-got; first != 0 {
		t.Fatalf("first grant went to waiter %d, want 0", first)
	}
	b.Reclaim()
	if second := <-got; second != 1 {
		t.Fatalf("second grant went to waiter %d, want 1", second)
	}
	b.Release()
	s := b.Stats()
	if s.Outstanding != 0 || s.Reclaimed != 1 || s.Released != 2 {
		t.Errorf("stats = %+v, want outstanding 0, reclaimed 1, released 2", s)
	}
}

// TestBucketCancelWhileWaiting: a waiter abandoning the bucket loses no
// token, even when the grant races the cancellation.
func TestBucketCancelWhileWaiting(t *testing.T) {
	b := NewBucket(1)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- b.Acquire(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().Waits != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled Acquire = %v, want context.Canceled", err)
	}
	b.Release()
	if n := b.Outstanding(); n != 0 {
		t.Fatalf("outstanding = %d after balanced release, want 0", n)
	}
}

package service

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/chaos"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/wgen"
)

// TestDaemonChaosSoak is the daemon-level soak the tentpole is held to:
// a daemon over a fault-injected worker fleet serves a scripted mix of
// well-behaved, disconnecting, and hanging clients plus a 4x-capacity
// overload burst. The invariants checked at the end:
//
//   - no deadlock: every job resolves (success, coded rejection, or
//     deliberate client abandonment) and Shutdown drains cleanly;
//   - overload answers are the retryable warp-err:overloaded code, and
//     retrying after the suggested backoff eventually succeeds;
//   - zero goroutine and zero parallelism-token leaks after drain;
//   - every accepted job's module is word-identical to the sequential
//     compiler's.
//
// Seeded plans (worker and client side) keep the chaos reproducible.
// CI runs this test alone under -race as the daemon smoke step.
func TestDaemonChaosSoak(t *testing.T) {
	noAmbientDiskCache(t)
	baseline := runtime.NumGoroutine()

	// Worker fleet: two chaotic workers (drops, delays) and one clean one,
	// behind the fault-tolerant pool with local fallback enabled.
	workerPlan := chaos.Seeded(7, chaos.Random{
		DropProb:  0.10,
		DelayProb: 0.20,
		Delay:     2 * time.Millisecond,
	})
	chaos1, addr1, err := chaos.Serve("127.0.0.1:0", 0, workerPlan)
	if err != nil {
		t.Fatal(err)
	}
	defer chaos1.Close()
	chaos2, addr2, err := chaos.Serve("127.0.0.1:0", 0, workerPlan)
	if err != nil {
		t.Fatal(err)
	}
	defer chaos2.Close()
	ln, okAddr, err := cluster.ServeWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	pool, err := cluster.DialPoolWith([]string{addr1, addr2, okAddr}, cluster.PoolOptions{
		CallTimeout: 10 * time.Second,
		DialRetry:   50 * time.Millisecond,
		DialTimeout: time.Second,
		RetryBase:   time.Millisecond,
		RetryMax:    10 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	d, err := NewDaemon(Config{
		Backend:      pool,
		MaxActive:    3,
		MaxQueued:    3,
		Tokens:       3,
		WriteTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)
	addr := l.Addr().String()

	// Job corpus: three distinct small modules with precomputed sequential
	// oracles, so accepted outputs can be checked word-identical.
	sources := [][]byte{
		wgen.SmallFuncsProgram(2),
		wgen.SmallFuncsProgram(3),
		wgen.SmallFuncsProgram(4),
	}
	// Disconnecting clients get their own module so their flights are not
	// kept alive by co-subscribed well-behaved tenants — severing the last
	// subscriber must cancel the job, and the soak asserts it did.
	discoSrc := wgen.SmallFuncsProgram(8)
	oracle := make([]*link.Module, len(sources))
	for i, src := range sources {
		seq, err := compiler.CompileModule("m.w2", src, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = seq.Module
	}

	// submitUntilAccepted retries coded overloaded/draining rejections,
	// honoring the daemon's suggested backoff.
	submitUntilAccepted := func(srcIdx int, clientID string) (*Response, error) {
		for attempt := 0; attempt < 20; attempt++ {
			cl, err := Dial(addr)
			if err != nil {
				return nil, err
			}
			cl.SetIdentity(clientID)
			resp, err := cl.Compile(context.Background(), "m.w2", sources[srcIdx], compiler.Options{}, core.ParallelOptions{})
			cl.Close()
			if err == nil {
				return resp, nil
			}
			var re *RemoteError
			if errors.As(err, &re) && cluster.CodeOf(re).Retryable() {
				backoff := re.RetryAfter
				if backoff <= 0 || backoff > 200*time.Millisecond {
					backoff = 10 * time.Millisecond
				}
				time.Sleep(backoff)
				continue
			}
			return nil, err
		}
		return nil, errors.New("job never accepted after 20 attempts")
	}

	// Scripted client mix, seeded for reproducibility.
	clientPlan := chaos.ClientSeeded(11, chaos.ClientRandom{
		DisconnectProb: 0.25,
		Disconnect:     5 * time.Millisecond,
		HangProb:       0.15,
		Hang:           300 * time.Millisecond,
	})
	const (
		tenants    = 5
		jobsPerTen = 5
	)
	var (
		mu        sync.Mutex
		completed int
		abandoned int
		hung      int
	)
	var wg sync.WaitGroup
	for g := 0; g < tenants; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			clientID := string(rune('A' + g))
			for j := 0; j < jobsPerTen; j++ {
				srcIdx := (g + j) % len(sources)
				switch f := clientPlan.Take(); f.Kind {
				case chaos.ClientDisconnect:
					// A killed build: submit, then sever mid-job. The daemon
					// must cancel this job only and reclaim its resources.
					cl, err := Dial(addr)
					if err != nil {
						t.Error(err)
						continue
					}
					go cl.Compile(context.Background(), "m.w2", discoSrc, compiler.Options{}, core.ParallelOptions{})
					time.Sleep(f.D)
					cl.Close()
					mu.Lock()
					abandoned++
					mu.Unlock()
				case chaos.ClientHang:
					// A stopped client: submits but never reads the reply. The
					// daemon's write deadline must free the connection goroutine.
					conn, err := net.Dial("tcp", addr)
					if err != nil {
						t.Error(err)
						continue
					}
					gob.NewEncoder(conn).Encode(&Request{
						Op: OpCompile, Client: clientID, File: "m.w2", Source: sources[srcIdx],
					})
					time.Sleep(f.D)
					conn.Close()
					mu.Lock()
					hung++
					mu.Unlock()
				default:
					resp, err := submitUntilAccepted(srcIdx, clientID)
					if err != nil {
						t.Errorf("tenant %s job %d: %v", clientID, j, err)
						continue
					}
					if verr := core.VerifySameOutput(oracle[srcIdx], resp.Module); verr != nil {
						t.Errorf("tenant %s job %d output differs: %v", clientID, j, verr)
					}
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Overload burst: 4x the daemon's total capacity (active+queued) of
	// concurrent one-shot submissions. Each varies the batch threshold so
	// it gets its own flight (dedup would otherwise absorb the herd before
	// admission — itself a designed behavior, tested above). Some must be
	// shed with the coded retryable error; none may hang or fail uncoded,
	// and the accepted ones still produce word-identical modules.
	burst := 4 * (3 + 3)
	burstErrs := make([]error, burst)
	var bwg sync.WaitGroup
	for i := 0; i < burst; i++ {
		i := i
		bwg.Add(1)
		go func() {
			defer bwg.Done()
			cl, err := Dial(addr)
			if err != nil {
				burstErrs[i] = err
				return
			}
			defer cl.Close()
			popts := core.ParallelOptions{BatchThreshold: float64(100 + i)}
			resp, err := cl.Compile(context.Background(), "m.w2", sources[i%len(sources)], compiler.Options{}, popts)
			if err == nil {
				burstErrs[i] = core.VerifySameOutput(oracle[i%len(sources)], resp.Module)
				return
			}
			burstErrs[i] = err
		}()
	}
	bwg.Wait()
	shed := 0
	for i, err := range burstErrs {
		if err == nil {
			continue
		}
		if cluster.IsOverloaded(err) {
			var re *RemoteError
			if !errors.As(err, &re) || re.RetryAfter <= 0 {
				t.Errorf("burst job %d shed without a suggested backoff: %v", i, err)
			}
			shed++
			continue
		}
		t.Errorf("burst job %d failed uncoded: %v", i, err)
	}
	if shed == 0 {
		t.Errorf("a %dx-capacity burst shed nothing — admission control absent", 4)
	}

	// Drain. Shutdown's built-in check catches token leaks; the stats and
	// goroutine checks below catch everything else.
	if err := d.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown after soak: %v", err)
	}
	if active, queued := d.admit.Depth(); active != 0 || queued != 0 {
		t.Errorf("admission depth after drain = (%d,%d), want (0,0)", active, queued)
	}
	s := d.snapshotStats()
	t.Logf("soak: %+v; completed=%d abandoned=%d hung=%d shed-in-burst=%d worker-faults=%d",
		*s, completed, abandoned, hung, shed, workerPlan.Calls())
	if completed == 0 {
		t.Error("no well-behaved job completed")
	}
	if abandoned > 0 && s.JobsCancelled == 0 {
		t.Error("client disconnects produced no cancelled jobs")
	}
	if s.Tokens.Outstanding != 0 {
		t.Errorf("%d tokens outstanding after drain", s.Tokens.Outstanding)
	}
	if workerPlan.Calls() == 0 {
		t.Error("worker chaos plan saw no calls")
	}

	// Goroutine-leak check: after the daemon, pool, and workers are all
	// down, the count must settle back to near the baseline.
	chaos1.Close()
	chaos2.Close()
	ln.Close()
	pool.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after soak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package service

import (
	"context"
	"sync"
)

// Admitter is the daemon's admission controller: at most maxActive jobs
// run at once, at most maxQueued wait, and everything past that is shed
// immediately (the caller answers warp-err:overloaded). Waiting jobs are
// scheduled fair-share: one FIFO queue per client, served round-robin, so
// a client flooding the queue delays its own jobs, not its co-tenants'.
type Admitter struct {
	mu        sync.Mutex
	maxActive int
	maxQueued int
	active    int
	queued    int
	// queues holds each client's waiters in arrival order; rotation is
	// the round-robin order of clients that currently have waiters, and
	// next indexes the client to serve first on the next free slot.
	queues   map[string][]*waiter
	rotation []string
	next     int

	// counters
	admitted  int64
	shed      int64
	peakQueue int
}

// waiter is one queued admission request. grant is buffered so the
// releasing goroutine can hand over the slot without blocking even if the
// waiter is concurrently abandoning (the abandoned branch then returns
// the slot).
type waiter struct {
	client string
	grant  chan struct{}
}

// NewAdmitter returns an admission controller running at most maxActive
// jobs with at most maxQueued waiting (values < 1 are treated as 1 and 0).
func NewAdmitter(maxActive, maxQueued int) *Admitter {
	if maxActive < 1 {
		maxActive = 1
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &Admitter{
		maxActive: maxActive,
		maxQueued: maxQueued,
		queues:    make(map[string][]*waiter),
	}
}

// ErrShed is returned (wrapped in a coded error by the daemon) when the
// queue is full. Declared as a sentinel so tests can distinguish shedding
// from context cancellation without string matching.
var errShed = Errf(codeOverloaded, "admission queue full")

// Acquire admits one job for client, blocking while the daemon is at
// capacity and the queue has room. It returns nil when admitted (the
// caller must Release exactly once), errShed when the job was shed at a
// full queue, or ctx.Err() when the caller gave up while waiting — in
// which case the queued entry is removed and no Release is owed.
func (a *Admitter) Acquire(ctx context.Context, client string) error {
	a.mu.Lock()
	if a.active < a.maxActive {
		a.active++
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.maxQueued {
		a.shed++
		a.mu.Unlock()
		return errShed
	}
	w := &waiter{client: client, grant: make(chan struct{}, 1)}
	if len(a.queues[client]) == 0 {
		a.rotation = append(a.rotation, client)
	}
	a.queues[client] = append(a.queues[client], w)
	a.queued++
	if a.queued > a.peakQueue {
		a.peakQueue = a.queued
	}
	a.mu.Unlock()

	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if a.removeLocked(w) {
			a.mu.Unlock()
			return ctx.Err()
		}
		a.mu.Unlock()
		// The grant raced the cancellation: the slot is already ours (the
		// buffered send happened under the releaser's lock). Take it and
		// give it back so it reaches the next waiter.
		<-w.grant
		a.Release()
		return ctx.Err()
	}
}

// Release returns one job's slot. If a waiter is queued, the slot is
// handed over directly (round-robin across clients); otherwise the active
// count drops.
func (a *Admitter) Release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w := a.popLocked(); w != nil {
		a.admitted++
		w.grant <- struct{}{}
		return
	}
	a.active--
}

// popLocked removes and returns the next waiter in round-robin client
// order, or nil when none is queued. Caller holds a.mu.
func (a *Admitter) popLocked() *waiter {
	if len(a.rotation) == 0 {
		return nil
	}
	if a.next >= len(a.rotation) {
		a.next = 0
	}
	client := a.rotation[a.next]
	q := a.queues[client]
	w := q[0]
	if len(q) == 1 {
		delete(a.queues, client)
		a.rotation = append(a.rotation[:a.next], a.rotation[a.next+1:]...)
		// a.next now points at the following client; wrap handled above.
	} else {
		a.queues[client] = q[1:]
		a.next++ // move past this client so the next pop serves another
	}
	a.queued--
	return w
}

// removeLocked deletes an abandoned waiter from its client queue. It
// reports false when the waiter is no longer queued (its grant already
// fired). Caller holds a.mu.
func (a *Admitter) removeLocked(target *waiter) bool {
	q := a.queues[target.client]
	for i, w := range q {
		if w != target {
			continue
		}
		if len(q) == 1 {
			delete(a.queues, target.client)
			for j, c := range a.rotation {
				if c == target.client {
					a.rotation = append(a.rotation[:j], a.rotation[j+1:]...)
					if j < a.next {
						a.next--
					}
					break
				}
			}
		} else {
			a.queues[target.client] = append(append([]*waiter(nil), q[:i]...), q[i+1:]...)
		}
		a.queued--
		return true
	}
	return false
}

// Depth reports the current (active, queued) occupancy.
func (a *Admitter) Depth() (active, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active, a.queued
}

// Counters reports admissions, sheds, and the queue's high-water mark.
func (a *Admitter) Counters() (admitted, shed int64, peakQueue int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted, a.shed, a.peakQueue
}

package service

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
)

// RemoteError is a daemon-side failure delivered over the wire. Msg keeps
// the warp-err:<code> prefix, so cluster.CodeOf / Retryable classify it,
// and RetryAfter carries the daemon's suggested backoff for overloaded
// and draining refusals.
type RemoteError struct {
	Msg        string
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string { return e.Msg }

// Client is one connection to a warpd daemon. Requests on a client are
// serialized (the wire protocol is one request/response at a time);
// concurrent jobs should use one Client each — connections are cheap and
// each maps to its own cancellation scope on the daemon.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	// ident is the fair-share identity sent with each job ("" lets the
	// daemon fall back to the connection's remote address).
	ident string
}

// Dial connects to a daemon. addr is "unix:/path/to.sock", a bare path
// containing a '/' (also a Unix socket), or a TCP host:port.
func Dial(addr string) (*Client, error) {
	network, target := "tcp", addr
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, target = "unix", rest
	} else if strings.Contains(addr, "/") {
		network = "unix"
	}
	conn, err := net.Dial(network, target)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// SetIdentity sets the fair-share scheduling identity sent with compile
// jobs (e.g. a build-system name shared by many connections).
func (c *Client) SetIdentity(id string) { c.ident = id }

// Close severs the connection; the daemon cancels this client's in-flight
// work and reclaims any tokens it holds.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response. Cancelling ctx
// closes the connection — the only way to abandon a blocked gob read, and
// exactly the disconnect signal the daemon turns into job cancellation.
func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	watchdone := make(chan struct{})
	defer close(watchdone)
	go func() {
		select {
		case <-ctx.Done():
			c.conn.Close()
		case <-watchdone:
		}
	}()
	if err := c.enc.Encode(req); err != nil {
		return nil, ctxOr(ctx, fmt.Errorf("service: send: %w", err))
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, ctxOr(ctx, fmt.Errorf("service: receive: %w", err))
	}
	if resp.Err != "" {
		return &resp, &RemoteError{Msg: resp.Err, RetryAfter: resp.RetryAfter}
	}
	return &resp, nil
}

// ctxOr prefers the context's error when the transport failed because the
// watchdog closed the connection.
func ctxOr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// Compile submits one module and waits for the linked result. The
// response carries the module, driver, per-function summaries, and the
// job-scoped parallel stats; err is a *RemoteError for coded daemon
// refusals (overloaded, draining, compile).
func (c *Client) Compile(ctx context.Context, file string, src []byte, opts compiler.Options, popts core.ParallelOptions) (*Response, error) {
	return c.roundTrip(ctx, &Request{
		Op: OpCompile, Client: c.ident, File: file, Source: src, Opts: opts, POpts: popts,
	})
}

// Acquire borrows n parallelism tokens (n<1 means 1) from the daemon's
// jobserver bucket; they are returned by Release or reclaimed when the
// connection closes.
func (c *Client) Acquire(ctx context.Context, n int) (held int, err error) {
	resp, err := c.roundTrip(ctx, &Request{Op: OpAcquire, N: n})
	if err != nil {
		return 0, err
	}
	return resp.Held, nil
}

// Release returns n previously borrowed tokens.
func (c *Client) Release(ctx context.Context, n int) (held int, err error) {
	resp, err := c.roundTrip(ctx, &Request{Op: OpRelease, N: n})
	if err != nil {
		return 0, err
	}
	return resp.Held, nil
}

// Stats fetches the daemon's service counters.
func (c *Client) Stats(ctx context.Context) (*DaemonStats, error) {
	resp, err := c.roundTrip(ctx, &Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Daemon, nil
}

// Ping checks daemon liveness; a draining daemon answers a coded
// draining error.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &Request{Op: OpPing})
	return err
}

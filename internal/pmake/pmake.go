// Package pmake implements the parallel-make baseline the paper compares
// against (§3.4, Baalbergen's parallel make): a makefile dependency graph
// whose independent targets build concurrently on a bounded worker pool,
// each target compiled by the ordinary sequential compiler.
//
// Parallel make exploits module-level parallelism declared by the user; the
// paper's parallel compiler exploits function-level parallelism discovered
// by the compiler. The two compose ("both approaches could coexist"), which
// the experiments package quantifies on the simulated cluster.
package pmake

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Rule is one makefile rule: a target, its dependencies, and its recipe.
type Rule struct {
	Target string
	Deps   []string
}

// Makefile is a dependency graph over targets.
type Makefile struct {
	rules map[string]*Rule
}

// Parse reads a minimal makefile syntax: one "target: dep dep ..." per
// line; blank lines and '#' comments are ignored. Recipes are supplied at
// build time (the runner function), as this reproduction only needs the
// dependency semantics.
func Parse(text string) (*Makefile, error) {
	m := &Makefile{rules: make(map[string]*Rule)}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("line %d: missing ':' in rule %q", lineNo+1, line)
		}
		target := strings.TrimSpace(line[:colon])
		if target == "" {
			return nil, fmt.Errorf("line %d: empty target", lineNo+1)
		}
		if _, dup := m.rules[target]; dup {
			return nil, fmt.Errorf("line %d: duplicate rule for %q", lineNo+1, target)
		}
		r := &Rule{Target: target}
		for _, d := range strings.Fields(line[colon+1:]) {
			r.Deps = append(r.Deps, d)
		}
		m.rules[target] = r
	}
	return m, nil
}

// Targets returns all rule targets in sorted order.
func (m *Makefile) Targets() []string {
	out := make([]string, 0, len(m.rules))
	for t := range m.rules {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Rule returns the rule for a target, or nil.
func (m *Makefile) Rule(target string) *Rule { return m.rules[target] }

// checkGraph verifies every dependency has a rule and the graph is acyclic,
// returning targets in a valid build order.
func (m *Makefile) checkGraph(root string) ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var order []string
	var visit func(t string, path []string) error
	visit = func(t string, path []string) error {
		switch color[t] {
		case gray:
			return fmt.Errorf("dependency cycle: %s -> %s", strings.Join(path, " -> "), t)
		case black:
			return nil
		}
		r := m.rules[t]
		if r == nil {
			return fmt.Errorf("no rule to make target %q (needed by %s)", t, strings.Join(path, " -> "))
		}
		color[t] = gray
		for _, d := range r.Deps {
			if err := visit(d, append(path, t)); err != nil {
				return err
			}
		}
		color[t] = black
		order = append(order, t)
		return nil
	}
	if err := visit(root, nil); err != nil {
		return nil, err
	}
	return order, nil
}

// Build makes root with up to jobs concurrent recipe executions, honoring
// dependencies. run is invoked once per needed target after its
// dependencies completed. The first recipe error aborts outstanding work
// (running recipes finish; no new ones start).
func (m *Makefile) Build(root string, jobs int, run func(target string) error) error {
	if jobs < 1 {
		jobs = 1
	}
	order, err := m.checkGraph(root)
	if err != nil {
		return err
	}

	needed := make(map[string]bool, len(order))
	for _, t := range order {
		needed[t] = true
	}
	// remaining deps per target; reverse edges.
	remaining := make(map[string]int)
	rdeps := make(map[string][]string)
	for _, t := range order {
		r := m.rules[t]
		remaining[t] = len(r.Deps)
		for _, d := range r.Deps {
			rdeps[d] = append(rdeps[d], t)
		}
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		ready   []string
		done    int
		failed  error
		running int
	)
	for _, t := range order {
		if remaining[t] == 0 {
			ready = append(ready, t)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && failed == nil && done+running < len(order) {
					cond.Wait()
				}
				if failed != nil || len(ready) == 0 {
					mu.Unlock()
					cond.Broadcast()
					return
				}
				t := ready[0]
				ready = ready[1:]
				running++
				mu.Unlock()

				err := run(t)

				mu.Lock()
				running--
				done++
				if err != nil && failed == nil {
					failed = fmt.Errorf("target %s: %w", t, err)
				}
				if failed == nil {
					for _, up := range rdeps[t] {
						remaining[up]--
						if remaining[up] == 0 {
							ready = append(ready, up)
						}
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failed != nil {
		return failed
	}
	if done != len(order) {
		return fmt.Errorf("build stalled: %d of %d targets built", done, len(order))
	}
	return nil
}

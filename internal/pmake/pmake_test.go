package pmake

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/compiler"
	"repro/internal/wgen"
)

const demoMakefile = `
# system generation for a three-module application
app: m1.o m2.o m3.o
m1.o: common.o
m2.o: common.o
m3.o:
common.o:
`

func TestParse(t *testing.T) {
	m, err := Parse(demoMakefile)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Targets()) != 5 {
		t.Fatalf("targets = %v", m.Targets())
	}
	r := m.Rule("app")
	if r == nil || len(r.Deps) != 3 {
		t.Fatalf("app rule wrong: %+v", r)
	}
	if m.Rule("nope") != nil {
		t.Error("unknown rule should be nil")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("not a rule"); err == nil {
		t.Error("missing colon must fail")
	}
	if _, err := Parse(": deps"); err == nil {
		t.Error("empty target must fail")
	}
	if _, err := Parse("a: b\na: c"); err == nil {
		t.Error("duplicate rule must fail")
	}
}

func TestBuildOrderRespectsDeps(t *testing.T) {
	m, _ := Parse(demoMakefile)
	var mu sync.Mutex
	var orderLog []string
	err := m.Build("app", 4, func(target string) error {
		mu.Lock()
		orderLog = append(orderLog, target)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(orderLog) != 5 {
		t.Fatalf("built %d targets, want 5: %v", len(orderLog), orderLog)
	}
	pos := map[string]int{}
	for i, tgt := range orderLog {
		pos[tgt] = i
	}
	if pos["common.o"] > pos["m1.o"] || pos["common.o"] > pos["m2.o"] {
		t.Errorf("common.o must build before its dependents: %v", orderLog)
	}
	if pos["app"] != len(orderLog)-1 {
		t.Errorf("app must build last: %v", orderLog)
	}
}

func TestBuildRunsIndependentTargetsInParallel(t *testing.T) {
	// m1..m4 are independent; with 4 jobs, peak concurrency must exceed 1.
	m, _ := Parse("all: a b c d\na:\nb:\nc:\nd:\n")
	var cur, peak int32
	gate := make(chan struct{})
	var once sync.Once
	err := m.Build("all", 4, func(target string) error {
		if target == "all" {
			return nil
		}
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		if n == 2 {
			once.Do(func() { close(gate) })
		}
		// Wait until at least two run concurrently (or proceed if gated).
		select {
		case <-gate:
		default:
			<-gate
		}
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Errorf("peak concurrency %d, want >= 2", peak)
	}
}

func TestBuildCycleDetected(t *testing.T) {
	m, _ := Parse("a: b\nb: a\n")
	err := m.Build("a", 2, func(string) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestBuildMissingRule(t *testing.T) {
	m, _ := Parse("a: missing\n")
	err := m.Build("a", 2, func(string) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "no rule") {
		t.Errorf("missing rule not detected: %v", err)
	}
}

func TestBuildRecipeErrorAborts(t *testing.T) {
	m, _ := Parse("all: a b\na:\nb:\n")
	boom := errors.New("boom")
	var builtAll atomic.Bool
	err := m.Build("all", 1, func(target string) error {
		if target == "a" || target == "b" {
			return boom
		}
		builtAll.Store(true)
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("recipe error lost: %v", err)
	}
	if builtAll.Load() {
		t.Error("dependent target built despite failed dependency")
	}
}

// TestBuildDrivesRealCompiler wires pmake to the actual sequential W2
// compiler: three independent modules build concurrently, as in the
// paper's coexistence scenario.
func TestBuildDrivesRealCompiler(t *testing.T) {
	sources := map[string][]byte{
		"m1.mod": wgen.SyntheticProgram(wgen.Tiny, 1),
		"m2.mod": wgen.SyntheticProgram(wgen.Tiny, 2),
		"m3.mod": wgen.SyntheticProgram(wgen.Small, 1),
	}
	m, _ := Parse("all: m1.mod m2.mod m3.mod\nm1.mod:\nm2.mod:\nm3.mod:\n")
	var mu sync.Mutex
	built := map[string]bool{}
	err := m.Build("all", 3, func(target string) error {
		if target == "all" {
			return nil
		}
		_, err := compiler.CompileModule(target, sources[target], compiler.Options{})
		mu.Lock()
		built[target] = true
		mu.Unlock()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 3 {
		t.Errorf("built %d modules, want 3", len(built))
	}
}

package codegen

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Software pipelining by iterative modulo scheduling (phase 3's headline
// optimization, after Lam's work for the actual Warp compiler).
//
// Scope: self-loop blocks (produced by loop inversion + merging) that are
// counted loops with a compile-time-constant trip count and no spill code.
// The scheduler finds an initiation interval II, assigns every body op a
// cycle t in [0, S*II), and materializes an explicit prologue (filling the
// pipeline), a kernel of exactly II words executed trip-(S-1) times, and an
// epilogue (draining). Loops that do not fit the scope fall back to list
// scheduling; the generated code is correct either way, pipelining only
// changes performance.

// PipelineResult reports what the pipeliner did with one loop.
type PipelineResult struct {
	Applied bool
	Reason  string // why not applied, when Applied is false
	II      int
	Stages  int
	// SeqLen is the list-scheduled body length for comparison (the paper's
	// compiler reports similar statistics).
	SeqLen int
}

// modEdge is a dependence with an iteration distance.
type modEdge struct {
	from, to int
	delay    int
	dist     int
}

// TryPipeline attempts to software-pipeline the loop in b (a block of pf).
// On success it returns replacement blocks (prologue+kernel+epilogue, all
// pre-scheduled) and a result; on failure it returns nil blocks and the
// reason.
func TryPipeline(pf *PFunc, b *PBlock, exitLabel string) ([]*PBlock, PipelineResult) {
	res := PipelineResult{}
	if !b.SelfLoop || b.Loop == nil {
		res.Reason = "not a constant-trip counted loop"
		return nil, res
	}
	if b.HasSpills {
		res.Reason = "loop contains spill code"
		return nil, res
	}
	n := len(b.Ops)
	if n < 4 {
		res.Reason = "loop too small"
		return nil, res
	}
	li := b.Loop

	// Body ops: everything except the comparison, the loop-back BT and the
	// exit JMP.
	var body []POp
	for i := 0; i < n; i++ {
		if i == li.CmpIdx || i == li.BranchIdx || i == n-1 {
			continue
		}
		if machine.IsBranch(b.Ops[i].Op) {
			res.Reason = "internal control flow"
			return nil, res
		}
		body = append(body, b.Ops[i])
	}
	if len(body) == 0 {
		res.Reason = "empty body"
		return nil, res
	}
	// The branch condition register must not be used by the body (it is
	// replaced by the new kernel counter).
	condReg := b.Ops[li.BranchIdx].A
	for i := range body {
		for _, u := range physUses(&body[i]) {
			if u == condReg {
				res.Reason = "condition register used by body"
				return nil, res
			}
		}
		if machine.Info(body[i].Op).HasDst && body[i].Dst == condReg {
			res.Reason = "condition register defined by body"
			return nil, res
		}
		// The kernel counter, its comparison, and the -1 constant live in
		// the reserved scratch registers, which must be untouched here.
		if touches(&body[i], scratch1) || touches(&body[i], scratch2) || touches(&body[i], scratch3) {
			res.Reason = "body touches reserved scratch registers"
			return nil, res
		}
	}

	// Modulo renaming: register allocation ran before scheduling, so
	// distinct loop temporaries may share a physical register, creating
	// false cross-iteration recurrences that inflate II. Rename each purely
	// local temporary chain to its own free register.
	renamed := renameLoopTemps(pf, b, body)
	if DebugHook != nil {
		DebugHook("renamed %d loop temporaries", renamed)
	}

	edges := moduloDeps(body)
	mii := resMII(body)
	if rec := recMIILower(body, edges); rec > mii {
		mii = rec
	}
	if mii < 1 {
		mii = 1
	}

	maxII := 0
	for i := range body {
		maxII += machine.Info(body[i].Op).Latency
	}
	maxII += 4

	// Exact recurrence bound: raise mii to the smallest II with no positive
	// cycle in the dependence graph under weights delay - II*dist. Searching
	// below it would only burn scheduling budget on infeasible IIs.
	mii = recMIIExact(len(body), edges, mii, maxII)

	// An II at or beyond the critical path of one iteration cannot overlap
	// iterations; the pipeliner would degenerate to list scheduling.
	critical := criticalPathLen(body, edges)
	if mii >= critical {
		res.Reason = "recurrence spans the whole iteration (no overlap possible)"
		return nil, res
	}

	attempts := 0
	budgetFails := 0
	for ii := mii; ii <= maxII && ii < critical && attempts < 8 && budgetFails < 2; ii++ {
		attempts++
		sched, ok, exhausted := moduloSchedule(body, edges, ii)
		if exhausted {
			// The eviction search is thrashing; the same structure will
			// thrash at nearby IIs too, so give up quickly and fall back
			// to list scheduling (correctness is unaffected).
			budgetFails++
		}
		if DebugHook != nil {
			DebugHook("ii=%d schedOK=%v sched=%v", ii, ok, sched)
		}
		if !ok {
			continue
		}
		if !lifetimesFit(body, edges, sched, ii) {
			if DebugHook != nil {
				DebugHook("ii=%d lifetimes do not fit", ii)
			}
			continue
		}
		maxT := 0
		for _, t := range sched {
			if t > maxT {
				maxT = t
			}
		}
		stages := maxT/ii + 1
		if stages < 2 {
			res.Reason = "no overlap achievable (single stage)"
			return nil, res
		}
		if li.Trip < stages {
			res.Reason = fmt.Sprintf("trip count %d below pipeline depth %d", li.Trip, stages)
			return nil, res
		}
		// Place the kernel counter control chain: isub at slot s1, cmp at
		// slot s2 with s1+1 <= s2 <= ii-2, in free ALU modulo slots.
		s1, s2, ok := placeControl(body, sched, ii)
		if !ok {
			continue // try a larger II for control slack
		}
		blocks := emitPipelined(b, body, sched, ii, stages, li.Trip, s1, s2, exitLabel)
		res.Applied = true
		res.II = ii
		res.Stages = stages
		return blocks, res
	}
	res.Reason = "no feasible initiation interval"
	return nil, res
}

func touches(op *POp, r machine.Reg) bool {
	info := machine.Info(op.Op)
	if info.HasDst && op.Dst == r {
		return true
	}
	for _, u := range physUses(op) {
		if u == r {
			return true
		}
	}
	return false
}

// resMII computes the resource-constrained lower bound on II: each unit
// issues one op per cycle, and blocking ops hold their unit for their whole
// latency.
func resMII(body []POp) int {
	var load [machine.NumUnits]int
	for i := range body {
		info := machine.Info(body[i].Op)
		if info.Blocking {
			load[info.Unit] += info.Latency
		} else {
			load[info.Unit]++
		}
	}
	m := 1
	for _, l := range load {
		if l > m {
			m = l
		}
	}
	return m
}

// recMIIExact finds the smallest II in [lo, hi] for which the dependence
// graph has no positive cycle under edge weights delay - II*dist, by binary
// search with Bellman-Ford positive-cycle detection. If even hi fails it
// returns hi+1 (the caller's search range is then empty).
func recMIIExact(n int, edges []modEdge, lo, hi int) int {
	feasible := func(ii int) bool {
		dist := make([]int64, n)
		for pass := 0; pass <= n; pass++ {
			changed := false
			for _, e := range edges {
				w := int64(e.delay - e.dist*ii)
				if dist[e.from]+w > dist[e.to] {
					dist[e.to] = dist[e.from] + w
					changed = true
				}
			}
			if !changed {
				return true
			}
		}
		return false // still relaxing after n passes: positive cycle
	}
	if feasible(lo) {
		return lo
	}
	if !feasible(hi) {
		return hi + 1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// criticalPathLen returns the longest dist-0 dependence chain of one
// iteration (including the final latency), i.e. the single-iteration span.
func criticalPathLen(body []POp, edges []modEdge) int {
	n := len(body)
	height := make([]int, n)
	longest := 0
	// Edges go forward in program order for dist-0 dependences.
	for i := n - 1; i >= 0; i-- {
		h := machine.Info(body[i].Op).Latency
		for _, e := range edges {
			if e.dist == 0 && e.from == i {
				if v := height[e.to] + e.delay; v > h {
					h = v
				}
			}
		}
		height[i] = h
		if h > longest {
			longest = h
		}
	}
	return longest
}

// recMIILower computes a cheap lower bound from self-edges and simple
// two-cycles (the dominant recurrences in practice: accumulators and
// induction variables).
func recMIILower(body []POp, edges []modEdge) int {
	m := 1
	// delay/distance over each edge with dist>0 whose endpoints coincide.
	for _, e := range edges {
		if e.dist > 0 && e.from == e.to && e.delay > m {
			m = e.delay
		}
	}
	// Two-op cycles a->b (dist 0), b->a (dist 1).
	fwd := make(map[[2]int]int)
	for _, e := range edges {
		if e.dist == 0 {
			k := [2]int{e.from, e.to}
			if e.delay > fwd[k] {
				fwd[k] = e.delay
			}
		}
	}
	for _, e := range edges {
		if e.dist == 1 {
			if d, ok := fwd[[2]int{e.to, e.from}]; ok {
				if c := d + e.delay; c > m {
					m = c
				}
			}
		}
	}
	return m
}

// moduloDeps builds dependence edges with iteration distances for the loop
// body, treating the op list as one iteration that repeats.
func moduloDeps(body []POp) []modEdge {
	var edges []modEdge
	add := func(from, to, delay, dist int) {
		if dist == 0 && from == to {
			return
		}
		edges = append(edges, modEdge{from, to, delay, dist})
	}

	// Register dependences.
	type regInfo struct {
		defs []int
		uses []int
	}
	regs := make(map[machine.Reg]*regInfo)
	get := func(r machine.Reg) *regInfo {
		ri := regs[r]
		if ri == nil {
			ri = &regInfo{}
			regs[r] = ri
		}
		return ri
	}
	for i := range body {
		info := machine.Info(body[i].Op)
		for _, u := range physUses(&body[i]) {
			if u != machine.RZero {
				get(u).uses = append(get(u).uses, i)
			}
		}
		if info.HasDst && body[i].Dst != machine.RZero {
			get(body[i].Dst).defs = append(get(body[i].Dst).defs, i)
		}
	}
	lat := func(i int) int { return machine.Info(body[i].Op).Latency }

	for _, ri := range regs {
		if len(ri.defs) == 0 {
			continue // loop-invariant input
		}
		dFirst, dLast := ri.defs[0], ri.defs[len(ri.defs)-1]
		// Same-iteration RAW: each use reads the nearest preceding def.
		// Cross-iteration RAW: uses before the first def read the previous
		// iteration's last def.
		for _, u := range ri.uses {
			prev := -1
			for _, d := range ri.defs {
				if d < u {
					prev = d
				}
			}
			if prev >= 0 {
				add(prev, u, lat(prev), 0)
			} else {
				add(dLast, u, lat(dLast), 1)
			}
			// WAR: the next def (this or next iteration) must not commit
			// before this use issues.
			next := -1
			for _, d := range ri.defs {
				if d > u {
					next = d
					break
				}
			}
			if next >= 0 {
				add(u, next, 1-lat(next), 0)
			} else {
				add(u, dFirst, 1-lat(dFirst), 1)
			}
		}
		// WAW chains.
		for k := 0; k+1 < len(ri.defs); k++ {
			a, b2 := ri.defs[k], ri.defs[k+1]
			add(a, b2, lat(a)-lat(b2)+1, 0)
		}
		add(dLast, dFirst, lat(dLast)-lat(dFirst)+1, 1)
	}

	// Memory dependences, conservatively per symbol.
	type memInfo struct{ loads, stores []int }
	mems := make(map[string]*memInfo)
	for i := range body {
		switch body[i].Op {
		case machine.LOAD:
			mi := mems[body[i].Sym]
			if mi == nil {
				mi = &memInfo{}
				mems[body[i].Sym] = mi
			}
			mi.loads = append(mi.loads, i)
		case machine.STORE:
			mi := mems[body[i].Sym]
			if mi == nil {
				mi = &memInfo{}
				mems[body[i].Sym] = mi
			}
			mi.stores = append(mi.stores, i)
		}
	}
	for _, mi := range mems {
		for _, s := range mi.stores {
			for _, l := range mi.loads {
				if l > s {
					add(s, l, 1, 0)
				} else {
					add(s, l, 1, 1)
				}
			}
			for _, s2 := range mi.stores {
				if s2 > s {
					add(s, s2, 1, 0)
				} else if s2 < s {
					add(s, s2, 1, 1)
				}
			}
			if len(mi.stores) > 1 {
				// Cross-iteration WAW between last and first store is
				// covered by the pairwise loop above.
				_ = s
			}
		}
		for _, l := range mi.loads {
			for _, s := range mi.stores {
				if s > l {
					add(l, s, 0, 0)
				} else {
					add(l, s, 0, 1)
				}
			}
		}
	}

	// Queue ops: total order within the iteration, and the chain wraps to
	// the next iteration.
	var ioOps []int
	for i := range body {
		switch body[i].Op {
		case machine.RECVX, machine.RECVY, machine.SENDX, machine.SENDY:
			ioOps = append(ioOps, i)
		}
	}
	for k := 0; k+1 < len(ioOps); k++ {
		add(ioOps[k], ioOps[k+1], 1, 0)
	}
	if len(ioOps) > 0 {
		add(ioOps[len(ioOps)-1], ioOps[0], 1, 1)
	}
	return edges
}

// moduloSchedule implements Rau-style iterative modulo scheduling for a
// fixed II. It returns per-op issue cycles within [0, S*II), ok=false on
// failure, and exhausted=true when the eviction budget ran out (a thrash
// signal distinct from a provable edge violation).
func moduloSchedule(body []POp, edges []modEdge, ii int) ([]int, bool, bool) {
	n := len(body)
	preds := make([][]modEdge, n)
	succs := make([][]modEdge, n)
	for _, e := range edges {
		preds[e.to] = append(preds[e.to], e)
		succs[e.from] = append(succs[e.from], e)
	}

	// Priority: height in the dist-0 DAG.
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := machine.Info(body[i].Op).Latency
		for _, e := range succs[i] {
			if e.dist == 0 {
				if v := height[e.to] + e.delay; v > h {
					h = v
				}
			}
		}
		height[i] = h
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if height[order[a]] != height[order[b]] {
			return height[order[a]] > height[order[b]]
		}
		return order[a] < order[b]
	})

	sched := make([]int, n)
	placed := make([]bool, n)
	mrt := make([][machine.NumUnits]int, ii) // -1-free encoding via op+1
	for c := range mrt {
		for u := range mrt[c] {
			mrt[c][u] = 0
		}
	}

	reserve := func(i, t int, set bool) bool {
		info := machine.Info(body[i].Op)
		span := 1
		if info.Blocking {
			span = info.Latency
			if span > ii {
				return false
			}
		}
		for k := 0; k < span; k++ {
			c := (t + k) % ii
			occ := mrt[c][info.Unit]
			if set {
				mrt[c][info.Unit] = i + 1
			} else if occ != 0 && occ != i+1 {
				return false
			}
		}
		return true
	}
	unreserve := func(i int) {
		for c := 0; c < ii; c++ {
			for u := 0; u < int(machine.NumUnits); u++ {
				if mrt[c][u] == i+1 {
					mrt[c][u] = 0
				}
			}
		}
	}

	budget := n * ii * 8
	lastTime := make([]int, n)
	everPlaced := make([]bool, n)
	inList := make([]bool, n)
	var worklist []int
	push := func(i int) {
		if !inList[i] {
			inList[i] = true
			worklist = append(worklist, i)
		}
	}
	pop := func() int {
		// Highest priority (height) first, as in Rau's IMS.
		best := 0
		for k := 1; k < len(worklist); k++ {
			if height[worklist[k]] > height[worklist[best]] {
				best = k
			}
		}
		i := worklist[best]
		worklist = append(worklist[:best], worklist[best+1:]...)
		inList[i] = false
		return i
	}
	for _, i := range order {
		push(i)
	}

	for len(worklist) > 0 {
		if budget == 0 {
			if DebugHook != nil {
				DebugHook("  budget exhausted at ii=%d", ii)
			}
			return nil, false, true
		}
		budget--
		i := pop()

		// Earliest start from scheduled predecessors.
		e := 0
		for _, pe := range preds[i] {
			if placed[pe.from] {
				if v := sched[pe.from] + pe.delay - pe.dist*ii; v > e {
					e = v
				}
			}
		}
		// Try II consecutive start cycles.
		done := false
		for t := e; t < e+ii; t++ {
			if reserve(i, t, false) {
				reserve(i, t, true)
				sched[i] = t
				placed[i] = true
				done = true
				break
			}
		}
		if !done {
			// Force placement; avoid oscillation by never re-placing at the
			// same time as before (Rau's rule).
			t := e
			if everPlaced[i] && t <= lastTime[i] {
				t = lastTime[i] + 1
			}
			info := machine.Info(body[i].Op)
			span := 1
			if info.Blocking {
				span = info.Latency
				if span > ii {
					return nil, false, false
				}
			}
			for k := 0; k < span; k++ {
				c := (t + k) % ii
				if occ := mrt[c][info.Unit]; occ != 0 && occ != i+1 {
					victim := occ - 1
					unreserve(victim)
					placed[victim] = false
					push(victim)
					if DebugHook != nil {
						DebugHook("    op %d force@%d evicts op %d (resource)", i, t, victim)
					}
				}
			}
			reserve(i, t, true)
			sched[i] = t
			placed[i] = true
		}
		everPlaced[i] = true
		lastTime[i] = sched[i]
		if DebugHook != nil {
			DebugHook("    placed op %d at t=%d (worklist %d)", i, sched[i], len(worklist))
		}
		// Scheduling i may violate successors already placed; evict them.
		for _, se := range succs[i] {
			if placed[se.to] && se.to != i {
				if sched[se.to] < sched[i]+se.delay-se.dist*ii {
					unreserve(se.to)
					placed[se.to] = false
					push(se.to)
					if DebugHook != nil {
						DebugHook("    op %d evicts succ op %d (edge delay=%d dist=%d)", i, se.to, se.delay, se.dist)
					}
				}
			}
		}
		// It may also violate PREDECESSOR constraints of already-placed ops
		// through cross-iteration edges ending at i... those are edges into
		// i and were honoured by e; but edges from i backwards in time with
		// distance>0 into earlier-placed ops are succ edges handled above.
	}

	// Normalize to non-negative times.
	minT := 0
	for i := range sched {
		if sched[i] < minT {
			minT = sched[i]
		}
	}
	if minT < 0 {
		shift := ((-minT + ii - 1) / ii) * ii
		for i := range sched {
			sched[i] += shift
		}
	}
	// Final verification of every edge.
	for _, e := range edges {
		if sched[e.to] < sched[e.from]+e.delay-e.dist*ii {
			if DebugHook != nil {
				DebugHook("  edge violated ii=%d: %d->%d delay=%d dist=%d sched=%v", ii, e.from, e.to, e.delay, e.dist, sched)
			}
			return nil, false, false
		}
	}
	return sched, true, false
}

// lifetimesFit checks that no register value is overwritten by the next
// iteration's definition before its last consumer has read it.
func lifetimesFit(body []POp, edges []modEdge, sched []int, ii int) bool {
	for _, e := range edges {
		from := &body[e.from]
		info := machine.Info(from.Op)
		if !info.HasDst {
			continue
		}
		// Only RAW edges matter: delay equals the producer latency.
		if e.delay != info.Latency {
			continue
		}
		// Read at t_use + dist*II must precede the next iteration's commit
		// at t_def + II + latency.
		if sched[e.to]+e.dist*ii >= sched[e.from]+ii+info.Latency {
			return false
		}
	}
	return true
}

// placeControl finds ALU modulo slots for the kernel counter decrement (s1)
// and its comparison (s2), with s1+1 <= s2 <= ii-2 so the comparison commits
// before the branch word at slot ii-1.
func placeControl(body []POp, sched []int, ii int) (int, int, bool) {
	if ii < 3 {
		return 0, 0, false
	}
	var aluBusy = make([]bool, ii)
	for i := range body {
		info := machine.Info(body[i].Op)
		if info.Unit != machine.ALU {
			continue
		}
		span := 1
		if info.Blocking {
			span = info.Latency
		}
		for k := 0; k < span; k++ {
			aluBusy[(sched[i]+k)%ii] = true
		}
	}
	for s1 := 0; s1 <= ii-3; s1++ {
		if aluBusy[s1] {
			continue
		}
		for s2 := s1 + 1; s2 <= ii-2; s2++ {
			if !aluBusy[s2] {
				return s1, s2, true
			}
		}
	}
	return 0, 0, false
}

// emitPipelined builds the prologue, kernel and epilogue blocks.
func emitPipelined(b *PBlock, body []POp, sched []int, ii, stages, trip, s1, s2 int, exitLabel string) []*PBlock {
	kernLabel := b.Label + ".kern"
	rounds := trip - (stages - 1)

	place := func(words []machine.Word, op *POp, w int) {
		u := machine.Info(op.Op).Unit
		words[w][u] = toInstr(op)
	}

	// Prologue: two leading words initialize the kernel-round counter and
	// the -1 decrement constant, then (stages-1)*II pipeline-fill words.
	const lead = 2
	proLen := (stages-1)*ii + lead
	pro := make([]machine.Word, proLen)
	pro[0][machine.ALU] = machine.Instr{Op: machine.LDI, Dst: scratch1, Imm: int32(rounds)}
	pro[1][machine.ALU] = machine.Instr{Op: machine.LDI, Dst: scratchM1Reg, Imm: -1}
	for i := range body {
		t := sched[i]
		for p := t; p < (stages-1)*ii; p += ii {
			place(pro, &body[i], p+lead)
		}
	}

	// Kernel: II words; op i at slot sched[i] mod II; counter chain and the
	// loop-back branch overlaid on the reserved slots.
	kern := make([]machine.Word, ii)
	for i := range body {
		place(kern, &body[i], sched[i]%ii)
	}
	fixupCounter(kern, s1, s2, ii)
	kern[ii-1][machine.CTRL].Sym = kernLabel

	// Epilogue: (stages-1)*II drain words; the exit jump waits until every
	// in-flight result (from the epilogue itself and from the final kernel
	// round) has committed before control leaves.
	drainWords := (stages - 1) * ii
	jmpWord := drainWords - 1
	if jmpWord < 0 {
		jmpWord = 0
	}
	for i := range body {
		t := sched[i]
		lat := machine.Info(body[i].Op).Latency
		// Final kernel-round instance: commits at slot (t mod II) + lat
		// cycles into the epilogue region minus II.
		if w := (t % ii) + lat - ii - 1; w > jmpWord {
			jmpWord = w
		}
		for e := t - ii; e >= 0; e -= ii {
			if w := e + lat - 1; w > jmpWord {
				jmpWord = w
			}
		}
	}
	epi := make([]machine.Word, jmpWord+1)
	for i := range body {
		t := sched[i]
		for e := t - ii; e >= 0; e -= ii {
			// Epilogue word e holds ops with sched ≡ e (mod II), sched ≥ e+II.
			place(epi, &body[i], e)
		}
	}
	epi[jmpWord][machine.CTRL] = machine.Instr{Op: machine.JMP, Sym: exitLabel}

	proB := &PBlock{Label: b.Label, Scheduled: pro}
	kernB := &PBlock{Label: kernLabel, Scheduled: kern}
	epiB := &PBlock{Label: b.Label + ".epi", Scheduled: epi}
	return []*PBlock{proB, kernB, epiB}
}

// fixupCounter writes the real counter chain into the kernel:
//
//	slot s1 (ALU):   scratch1 = scratch1 + scratch3 (scratch3 holds -1)
//	slot s2 (ALU):   scratch2 = scratch1 > 0
//	slot II-1(CTRL): bt scratch2, kernel
//
// The machine has no subtract-immediate, so the prologue loads -1 into
// scratch3 once; TryPipeline rejects loops whose body touches any scratch
// register, so all three survive across kernel rounds.
func fixupCounter(kern []machine.Word, s1, s2, ii int) {
	kern[s1][machine.ALU] = machine.Instr{Op: machine.IADD, Dst: scratch1, A: scratch1, B: scratchM1Reg}
	kern[s2][machine.ALU] = machine.Instr{Op: machine.ICMPGT, Dst: scratch2, A: scratch1, B: machine.RZero}
	kern[ii-1][machine.CTRL] = machine.Instr{Op: machine.BT, A: scratch2, Sym: ""} // Sym set by caller
}

// scratchM1Reg holds the constant -1 for the kernel counter decrement. It
// reuses scratch3, which is only ever written as a dead-value park outside
// pipelined loops and never read.
const scratchM1Reg = scratch3

// DebugHook, when non-nil, receives trace lines from the pipeliner's II
// search. Used only by tests.
var DebugHook func(format string, args ...any)

// renameLoopTemps gives each def-use chain of a loop-local temporary its own
// physical register, provided the register is not referenced anywhere
// outside the loop body and is not read before its first definition inside
// it (those are genuine loop-carried values). Returns the number of chains
// renamed. body must be a private copy of the loop's non-control ops.
func renameLoopTemps(pf *PFunc, b *PBlock, body []POp) int {
	if pf == nil {
		return 0
	}
	// Registers referenced anywhere outside this block are off limits, and
	// so are registers free nowhere.
	usedElsewhere := make(map[machine.Reg]bool)
	usedAnywhere := make(map[machine.Reg]bool)
	scan := func(ops []POp, outside bool) {
		for i := range ops {
			info := machine.Info(ops[i].Op)
			regs := physUses(&ops[i])
			if info.HasDst {
				regs = append(regs, ops[i].Dst)
			}
			for _, r := range regs {
				usedAnywhere[r] = true
				if outside {
					usedElsewhere[r] = true
				}
			}
		}
	}
	for _, blk := range pf.Blocks {
		scan(blk.Ops, blk != b)
	}
	// A fresh-register pool.
	var pool []machine.Reg
	for r := machine.Reg(firstAllocReg); r <= machine.Reg(lastAllocReg); r++ {
		if !usedAnywhere[r] {
			pool = append(pool, r)
		}
	}

	renamed := 0
	for _, r := range candidateTemps(body) {
		if usedElsewhere[r.reg] {
			continue
		}
		// Rename every chain except none — all chains are local; each def
		// gets a fresh register, and its uses up to the next def follow.
		for ci := range r.chains {
			if len(pool) == 0 {
				return renamed
			}
			fresh := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			ch := r.chains[ci]
			body[ch.def].Dst = fresh
			for _, u := range ch.uses {
				info := machine.Info(body[u].Op)
				if info.NumSrc >= 1 && body[u].A == r.reg {
					body[u].A = fresh
				}
				if info.NumSrc >= 2 && body[u].B == r.reg {
					body[u].B = fresh
				}
			}
			renamed++
		}
	}
	return renamed
}

type tempChain struct {
	def  int
	uses []int
}

type tempReg struct {
	reg    machine.Reg
	chains []tempChain
}

// candidateTemps finds registers in the body that are defined before any
// use (pure temporaries) and splits their occurrences into def-use chains.
func candidateTemps(body []POp) []tempReg {
	type occ struct {
		defs []int
		uses []int
	}
	occs := make(map[machine.Reg]*occ)
	order := []machine.Reg{}
	for i := range body {
		info := machine.Info(body[i].Op)
		for _, u := range physUses(&body[i]) {
			if u == machine.RZero {
				continue
			}
			if occs[u] == nil {
				occs[u] = &occ{}
				order = append(order, u)
			}
			occs[u].uses = append(occs[u].uses, i)
		}
		if info.HasDst && body[i].Dst != machine.RZero {
			d := body[i].Dst
			if occs[d] == nil {
				occs[d] = &occ{}
				order = append(order, d)
			}
			occs[d].defs = append(occs[d].defs, i)
		}
	}
	var out []tempReg
	for _, r := range order {
		o := occs[r]
		if len(o.defs) == 0 {
			continue
		}
		// Any use at or before the first def reads the previous iteration:
		// a genuine loop-carried value, not a temporary.
		carried := false
		for _, u := range o.uses {
			if u <= o.defs[0] {
				carried = true
				break
			}
		}
		if carried {
			continue
		}
		tr := tempReg{reg: r}
		for k, d := range o.defs {
			end := len(body)
			if k+1 < len(o.defs) {
				end = o.defs[k+1]
			}
			ch := tempChain{def: d}
			for _, u := range o.uses {
				// A use at the same index as the next def still reads this
				// chain's value (reads happen at issue, writes at commit).
				if u > d && u <= end {
					ch.uses = append(ch.uses, u)
				}
			}
			tr.chains = append(tr.chains, ch)
		}
		out = append(out, tr)
	}
	return out
}

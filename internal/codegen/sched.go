package codegen

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// List scheduling packs a block's operations into wide instruction words,
// one op per functional unit per cycle, respecting data dependences, unit
// latencies, and the blocking (unpipelined) behaviour of divide/sqrt.
//
// Timing model (shared with the array simulator): an operation issued in
// cycle t reads its source registers at issue and commits its result at the
// start of cycle t+latency. A branch issued in cycle t transfers control to
// the word executing in cycle t+1. All of a block's results are committed
// before its terminator issues+1, so cross-block dependences need no
// tracking.

// depEdge is a scheduling constraint: to must issue no earlier than
// issue(from) + delay.
type depEdge struct {
	from  int
	delay int
}

// buildDeps constructs the dependence edges among ops[0:n] (which must not
// contain control ops). It returns edges indexed by consumer op.
func buildDeps(ops []POp) [][]depEdge {
	n := len(ops)
	edges := make([][]depEdge, n)
	add := func(from, to, delay int) {
		if from < 0 || from == to {
			return
		}
		if delay < 0 {
			delay = 0
		}
		edges[to] = append(edges[to], depEdge{from, delay})
	}

	lastDef := make(map[machine.Reg]int)
	usesSince := make(map[machine.Reg][]int)
	lastStore := make(map[string]int)
	loadsSince := make(map[string][]int)
	lastIO := -1
	for r := range lastDef {
		delete(lastDef, r)
	}
	for i := range ops {
		op := &ops[i]
		info := machine.Info(op.Op)

		uses := physUses(op)
		for _, r := range uses {
			if r == machine.RZero {
				continue
			}
			if d, ok := lastDef[r]; ok {
				add(d, i, machine.Info(ops[d].Op).Latency) // RAW
			}
			usesSince[r] = append(usesSince[r], i)
		}
		if info.HasDst && op.Dst != machine.RZero {
			r := op.Dst
			if d, ok := lastDef[r]; ok {
				add(d, i, machine.Info(ops[d].Op).Latency-info.Latency+1) // WAW
			}
			for _, u := range usesSince[r] {
				add(u, i, 1-info.Latency) // WAR (clamped to 0)
			}
			lastDef[r] = i
			usesSince[r] = nil
		}

		switch op.Op {
		case machine.LOAD:
			if s, ok := lastStore[op.Sym]; ok {
				add(s, i, 1)
			}
			loadsSince[op.Sym] = append(loadsSince[op.Sym], i)
		case machine.STORE:
			if s, ok := lastStore[op.Sym]; ok {
				add(s, i, 1)
			}
			for _, l := range loadsSince[op.Sym] {
				add(l, i, 0)
			}
			lastStore[op.Sym] = i
			loadsSince[op.Sym] = nil
		case machine.RECVX, machine.RECVY, machine.SENDX, machine.SENDY:
			add(lastIO, i, 1)
			lastIO = i
		}
	}
	return edges
}

// physUses returns the source registers of a physical op.
func physUses(op *POp) []machine.Reg {
	info := machine.Info(op.Op)
	var out []machine.Reg
	if info.NumSrc >= 1 {
		out = append(out, op.A)
	}
	if info.NumSrc >= 2 {
		out = append(out, op.B)
	}
	return out
}

// resTable tracks functional-unit occupancy cycle by cycle.
type resTable struct {
	taken map[int][machine.NumUnits]bool
}

func newResTable() *resTable {
	return &resTable{taken: make(map[int][machine.NumUnits]bool)}
}

// fits reports whether op can issue at cycle t.
func (rt *resTable) fits(op *POp, t int) bool {
	info := machine.Info(op.Op)
	span := 1
	if info.Blocking {
		span = info.Latency
	}
	for c := t; c < t+span; c++ {
		if rt.taken[c][info.Unit] {
			return false
		}
	}
	return true
}

// place reserves op's unit at cycle t (and t..t+lat-1 for blocking ops).
func (rt *resTable) place(op *POp, t int) {
	info := machine.Info(op.Op)
	span := 1
	if info.Blocking {
		span = info.Latency
	}
	for c := t; c < t+span; c++ {
		row := rt.taken[c]
		row[info.Unit] = true
		rt.taken[c] = row
	}
}

// ScheduleBlock performs list scheduling of one block and fills
// b.Scheduled. It returns the schedule length in cycles.
func ScheduleBlock(b *PBlock) (int, error) {
	// Split trailing control ops from the body.
	body := b.Ops
	var ctrl []POp
	for len(body) > 0 && machine.IsBranch(body[len(body)-1].Op) {
		ctrl = append([]POp{body[len(body)-1]}, ctrl...)
		body = body[:len(body)-1]
	}
	for i := range body {
		if machine.IsBranch(body[i].Op) {
			return 0, fmt.Errorf("block %s: control op %s not at block end", b.Label, body[i])
		}
	}
	if len(ctrl) > 2 {
		return 0, fmt.Errorf("block %s: %d control ops", b.Label, len(ctrl))
	}

	edges := buildDeps(body)
	n := len(body)

	// Priority: critical-path height (longest path to any sink).
	height := make([]int, n)
	succs := make([][]depEdge, n)
	for to, es := range edges {
		for _, e := range es {
			succs[e.from] = append(succs[e.from], depEdge{to, e.delay})
		}
	}
	// Reverse topological order = reverse program order works because all
	// edges go forward in program order.
	for i := n - 1; i >= 0; i-- {
		h := machine.Info(body[i].Op).Latency
		for _, s := range succs[i] {
			if v := height[s.from] + s.delay; v > h {
				h = v
			}
		}
		height[i] = h
	}

	sched := make([]int, n) // issue cycle per op
	done := make([]bool, n)
	rt := newResTable()
	remaining := n

	// earliest[i] = max over preds of sched+delay, updated as preds land.
	earliest := make([]int, n)
	predsLeft := make([]int, n)
	for i, es := range edges {
		predsLeft[i] = len(es)
	}

	var ready []int
	for i := 0; i < n; i++ {
		if predsLeft[i] == 0 {
			ready = append(ready, i)
		}
	}

	cycle := 0
	guard := 0
	for remaining > 0 {
		guard++
		if guard > 1000000 {
			return 0, fmt.Errorf("block %s: scheduler did not converge", b.Label)
		}
		// Candidates ready at this cycle, highest priority first.
		sort.Slice(ready, func(a, c int) bool {
			ia, ic := ready[a], ready[c]
			if height[ia] != height[ic] {
				return height[ia] > height[ic]
			}
			return ia < ic
		})
		placedAny := false
		for k := 0; k < len(ready); {
			i := ready[k]
			if earliest[i] > cycle || !rt.fits(&body[i], cycle) {
				k++
				continue
			}
			rt.place(&body[i], cycle)
			sched[i] = cycle
			done[i] = true
			remaining--
			placedAny = true
			ready = append(ready[:k], ready[k+1:]...)
			for _, s := range succs[i] {
				if v := cycle + s.delay; v > earliest[s.from] {
					earliest[s.from] = v
				}
				predsLeft[s.from]--
				if predsLeft[s.from] == 0 {
					ready = append(ready, s.from)
				}
			}
		}
		if !placedAny || remaining > 0 {
			cycle++
		}
		_ = placedAny
	}

	// Determine the terminator cycle: every result must commit before the
	// successor block starts (issue + lat - 1 <= branch cycle), and a
	// conditional branch must see its condition committed.
	branchCycle := 0
	if n > 0 {
		branchCycle = 0
		for i := 0; i < n; i++ {
			need := sched[i] + machine.Info(body[i].Op).Latency - 1
			if need > branchCycle {
				branchCycle = need
			}
		}
	}
	if len(ctrl) > 0 {
		first := ctrl[0]
		info := machine.Info(first.Op)
		if info.NumSrc >= 1 {
			// Condition RAW: committed before the branch issues.
			for i := 0; i < n; i++ {
				if machine.Info(body[i].Op).HasDst && body[i].Dst == first.A {
					if need := sched[i] + machine.Info(body[i].Op).Latency; need > branchCycle {
						branchCycle = need
					}
				}
			}
		}
	}

	// Build the words.
	length := branchCycle + 1
	if len(ctrl) == 2 {
		length = branchCycle + 2
	}
	if n == 0 && len(ctrl) == 0 {
		length = 0
	}
	words := make([]machine.Word, length)
	for i := 0; i < n; i++ {
		u := machine.Info(body[i].Op).Unit
		words[sched[i]][u] = toInstr(&body[i])
	}
	if len(ctrl) >= 1 {
		words[branchCycle][machine.CTRL] = toInstr(&ctrl[0])
	}
	if len(ctrl) == 2 {
		words[branchCycle+1][machine.CTRL] = toInstr(&ctrl[1])
	}
	b.Scheduled = words
	return len(words), nil
}

func toInstr(op *POp) machine.Instr {
	return machine.Instr{Op: op.Op, Dst: op.Dst, A: op.A, B: op.B, Imm: op.Imm, Sym: op.Sym}
}

// SequentialBlock emits one op per word in program order — the unscheduled
// baseline used by the compile-speed/quality ablation benchmarks.
func SequentialBlock(b *PBlock) int {
	body := b.Ops
	words := make([]machine.Word, 0, len(body))
	cycle := 0
	lastCommit := 0
	for i := range body {
		op := &body[i]
		info := machine.Info(op.Op)
		// Naive code: wait until everything before has committed.
		for cycle < lastCommit {
			words = append(words, machine.Word{})
			cycle++
		}
		var w machine.Word
		w[info.Unit] = toInstr(op)
		words = append(words, w)
		if c := cycle + info.Latency; c > lastCommit {
			lastCommit = c
		}
		cycle++
	}
	b.Scheduled = words
	return len(words)
}

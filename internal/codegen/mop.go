// Package codegen implements compiler phase 3: translation of optimized IR
// into wide instruction words for the Warp cell, comprising instruction
// selection, register allocation, list scheduling of basic blocks, and
// software pipelining (modulo scheduling) of innermost loops.
package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// MOp is one machine operation whose operands are still virtual registers.
// After register allocation the same structure carries physical registers
// (the VReg fields then hold small numbers < machine.NumRegs).
type MOp struct {
	Op  machine.Opcode
	Dst ir.VReg
	A   ir.VReg
	B   ir.VReg
	Imm int32
	// Sym is a data symbol (LOAD/STORE array base) or branch label (CTRL).
	Sym string
}

func (m MOp) String() string {
	info := machine.Info(m.Op)
	s := info.Name
	if info.HasDst {
		s += fmt.Sprintf(" v%d", m.Dst)
	}
	if info.NumSrc >= 1 {
		s += fmt.Sprintf(" v%d", m.A)
	}
	if info.NumSrc >= 2 {
		s += fmt.Sprintf(" v%d", m.B)
	}
	if info.HasImm || m.Sym != "" {
		if m.Sym != "" {
			s += " @" + m.Sym
		} else {
			s += fmt.Sprintf(" #%d", m.Imm)
		}
	}
	return s
}

// LoopInfo describes a pipelinable self-loop block: a counted loop whose
// trip count is a compile-time constant (the restriction under which this
// compiler applies software pipelining; everything else is list-scheduled).
type LoopInfo struct {
	// Trip is the constant trip count (iterations of the rotated body).
	Trip int
	// CounterReg is the register holding the induction variable; BranchIdx
	// is the index of the loop-back conditional branch in Ops, and CmpIdx
	// the index of the comparison feeding it.
	CounterReg ir.VReg
	BranchIdx  int
	CmpIdx     int
	IncIdx     int
}

// MBlock is a machine basic block.
type MBlock struct {
	Label string
	Ops   []MOp
	// SelfLoop marks a block whose conditional branch targets itself; Loop
	// carries pipelining metadata when the trip count is known.
	SelfLoop bool
	Loop     *LoopInfo
	// Scheduled holds the final instruction words once a scheduler has
	// placed the ops; nil until then.
	Scheduled []machine.Word
}

// MFunc is a function in machine-op form.
type MFunc struct {
	Name    string
	Section int
	Blocks  []*MBlock
	Arrays  []ir.ArrayVar
	// NumVRegs tracks virtual register allocation (ids 1..NumVRegs).
	NumVRegs int
	// IsEntry marks the section's entry function: it terminates with HALT
	// and must take no parameters. Non-entry functions end with RET.
	IsEntry bool
	// Params are the parameter vregs (empty for entry functions).
	Params []ir.VReg
}

// NewVReg allocates a fresh virtual register.
func (f *MFunc) NewVReg() ir.VReg {
	f.NumVRegs++
	return ir.VReg(f.NumVRegs)
}

// NumOps returns the total machine-op count across blocks, a work metric.
func (f *MFunc) NumOps() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}

// BlockLabel builds the label for block id of function fn.
func BlockLabel(fn string, id int) string {
	return fmt.Sprintf("%s.b%d", fn, id)
}

func (f *MFunc) String() string {
	s := fmt.Sprintf("mfunc %s (section %d, %d vregs)\n", f.Name, f.Section, f.NumVRegs)
	for _, a := range f.Arrays {
		s += fmt.Sprintf("  array %s[%d]\n", a.Sym, a.Words)
	}
	for _, b := range f.Blocks {
		s += b.Label + ":"
		if b.SelfLoop {
			s += " ; self-loop"
			if b.Loop != nil {
				s += fmt.Sprintf(" trip=%d", b.Loop.Trip)
			}
		}
		s += "\n"
		for _, op := range b.Ops {
			s += "  " + op.String() + "\n"
		}
	}
	return s
}

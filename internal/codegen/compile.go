package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Options selects code-generation strategies. The zero value is the full
// compiler; the flags exist for the ablation benchmarks (scheduling off,
// pipelining off) that quantify what each phase buys.
type Options struct {
	// DisableScheduling emits one operation per word in program order.
	DisableScheduling bool
	// DisablePipelining turns off software pipelining; innermost loops are
	// list-scheduled like any other block.
	DisablePipelining bool
}

// GenStats reports code-generation work and outcome, consumed by the
// compile-cost model and the quality benchmarks.
type GenStats struct {
	MachineOps     int // ops after instruction selection
	Words          int // emitted instruction words
	Spills         int
	LoopsSeen      int
	LoopsPipelined int
	PipelineII     int // sum of achieved IIs (for averaging)
	PipelineTrials int // scheduling attempts across II values (work metric)
}

// Generate runs phase 3 on an optimized, inlined, inverted IR function and
// returns the scheduled machine code.
func Generate(f *ir.Func, isEntry bool, opts Options) (*PFunc, GenStats, error) {
	var st GenStats
	mf, err := Select(f, isEntry)
	if err != nil {
		return nil, st, err
	}
	st.MachineOps = mf.NumOps()

	pf, err := Allocate(mf)
	if err != nil {
		return nil, st, err
	}
	st.Spills = pf.Spilled

	var out []*PBlock
	for _, b := range pf.Blocks {
		if b.SelfLoop {
			st.LoopsSeen++
		}
		if !opts.DisablePipelining && b.SelfLoop && b.Loop != nil && len(b.Ops) > 0 {
			exitLabel := b.Ops[len(b.Ops)-1].Sym
			blocks, res := TryPipeline(pf, b, exitLabel)
			st.PipelineTrials += res.II // rough: proportional to the search
			if res.Applied {
				st.LoopsPipelined++
				st.PipelineII += res.II
				out = append(out, blocks...)
				continue
			}
		}
		if opts.DisableScheduling {
			SequentialBlock(b)
		} else {
			if _, err := ScheduleBlock(b); err != nil {
				return nil, st, fmt.Errorf("%s: %w", pf.Name, err)
			}
		}
		out = append(out, b)
	}
	pf.Blocks = out
	for _, b := range pf.Blocks {
		st.Words += len(b.Scheduled)
	}
	return pf, st, nil
}

// WordCount returns the total scheduled words of a PFunc.
func WordCount(pf *PFunc) int {
	n := 0
	for _, b := range pf.Blocks {
		n += len(b.Scheduled)
	}
	return n
}

// CriticalPathEstimate sums per-block schedule lengths weighted by a static
// loop-depth guess; used only as a code-quality metric in benchmarks.
func CriticalPathEstimate(pf *PFunc) int {
	n := 0
	for _, b := range pf.Blocks {
		n += len(b.Scheduled)
	}
	return n
}

// sanity: ensure every block got scheduled.
func checkScheduled(pf *PFunc) error {
	for _, b := range pf.Blocks {
		if b.Scheduled == nil {
			return fmt.Errorf("%s: block %s was never scheduled", pf.Name, b.Label)
		}
	}
	return nil
}

var _ = checkScheduled
var _ = machine.NumRegs

package codegen

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Register allocation: linear scan over conservative live intervals derived
// from block-level liveness. The cell has a single 64-register file; r0 is
// hardwired zero and r61–r63 are reserved as spill scratch registers, so the
// allocator hands out r1–r60.

const (
	firstAllocReg = 1
	lastAllocReg  = machine.NumRegs - 4 // 60
	scratch1      = machine.Reg(machine.NumRegs - 3)
	scratch2      = machine.Reg(machine.NumRegs - 2)
	scratch3      = machine.Reg(machine.NumRegs - 1)
)

// POp is a machine operation with physical registers, ready for scheduling
// and encoding.
type POp struct {
	Op  machine.Opcode
	Dst machine.Reg
	A   machine.Reg
	B   machine.Reg
	Imm int32
	Sym string
}

func (p POp) String() string {
	return machine.Instr{Op: p.Op, Dst: p.Dst, A: p.A, B: p.B, Imm: p.Imm, Sym: p.Sym}.String()
}

// PBlock is a block of physical-register operations.
type PBlock struct {
	Label     string
	Ops       []POp
	SelfLoop  bool
	Loop      *LoopInfo
	HasSpills bool // spill code present; disqualifies software pipelining
	// Scheduled holds the block's final instruction words once a scheduler
	// has placed the ops.
	Scheduled []machine.Word
}

// PFunc is the allocated function.
type PFunc struct {
	Name    string
	Section int
	Blocks  []*PBlock
	Arrays  []ir.ArrayVar
	IsEntry bool
	// Spilled counts spilled virtual registers (a work/quality metric).
	Spilled int
}

// NumOps returns the total op count.
func (f *PFunc) NumOps() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Ops)
	}
	return n
}

func (f *PFunc) String() string {
	s := fmt.Sprintf("pfunc %s (section %d, %d spills)\n", f.Name, f.Section, f.Spilled)
	for _, b := range f.Blocks {
		s += b.Label + ":\n"
		for _, op := range b.Ops {
			s += "  " + op.String() + "\n"
		}
	}
	return s
}

// opUses returns the vregs read by a machine op (respecting its shape).
func opUses(op *MOp) []ir.VReg {
	info := machine.Info(op.Op)
	var out []ir.VReg
	if info.NumSrc >= 1 && op.A > 0 {
		out = append(out, op.A)
	}
	if info.NumSrc >= 2 && op.B > 0 {
		out = append(out, op.B)
	}
	return out
}

// opDef returns the vreg written, or None. The $retval marker is not a vreg.
func opDef(op *MOp) ir.VReg {
	if machine.Info(op.Op).HasDst && op.Dst > 0 {
		return op.Dst
	}
	return ir.None
}

// Allocate maps virtual to physical registers, inserting spill code where
// the 60 allocatable registers do not suffice.
func Allocate(mf *MFunc) (*PFunc, error) {
	intervals := buildIntervals(mf)

	// Linear scan.
	sort.Slice(intervals, func(i, j int) bool {
		if intervals[i].start != intervals[j].start {
			return intervals[i].start < intervals[j].start
		}
		return intervals[i].vreg < intervals[j].vreg
	})
	assignment := make(map[ir.VReg]machine.Reg)
	spilled := make(map[ir.VReg]string)

	free := make([]machine.Reg, 0, lastAllocReg)
	for r := lastAllocReg; r >= firstAllocReg; r-- {
		free = append(free, machine.Reg(r)) // pop from the end → lowest first
	}
	type active struct {
		vreg ir.VReg
		end  int
		reg  machine.Reg
	}
	var act []active

	for _, iv := range intervals {
		// Expire finished intervals.
		kept := act[:0]
		for _, a := range act {
			if a.end < iv.start {
				free = append(free, a.reg)
			} else {
				kept = append(kept, a)
			}
		}
		act = kept

		if len(free) > 0 {
			r := free[len(free)-1]
			free = free[:len(free)-1]
			assignment[iv.vreg] = r
			act = append(act, active{iv.vreg, iv.end, r})
			continue
		}
		// Spill the interval that ends last (classic heuristic).
		victim := -1
		for i, a := range act {
			if victim < 0 || a.end > act[victim].end {
				victim = i
			}
		}
		if victim >= 0 && act[victim].end > iv.end {
			v := act[victim]
			spilled[v.vreg] = spillSym(v.vreg)
			delete(assignment, v.vreg)
			assignment[iv.vreg] = v.reg
			act[victim] = active{iv.vreg, iv.end, v.reg}
		} else {
			spilled[iv.vreg] = spillSym(iv.vreg)
		}
	}

	pf := &PFunc{
		Name:    mf.Name,
		Section: mf.Section,
		IsEntry: mf.IsEntry,
		Arrays:  append([]ir.ArrayVar(nil), mf.Arrays...),
		Spilled: len(spilled),
	}
	for v := range spilled {
		pf.Arrays = append(pf.Arrays, ir.ArrayVar{Sym: spilled[v], Words: 1})
	}
	sort.Slice(pf.Arrays[len(mf.Arrays):], func(i, j int) bool {
		a := pf.Arrays[len(mf.Arrays):]
		return a[i].Sym < a[j].Sym
	})

	// Rewrite every block.
	for _, mb := range mf.Blocks {
		pb := &PBlock{Label: mb.Label, SelfLoop: mb.SelfLoop, Loop: mb.Loop}
		for i := range mb.Ops {
			if err := rewriteOp(pb, &mb.Ops[i], assignment, spilled); err != nil {
				return nil, fmt.Errorf("%s: %w", mf.Name, err)
			}
		}
		pf.Blocks = append(pf.Blocks, pb)
	}

	// Non-entry functions receive arguments in r1..rk by convention; bind
	// them to the allocated registers of the parameter vregs.
	if !mf.IsEntry && len(mf.Params) > 0 {
		entry := pf.Blocks[0]
		var prologue []POp
		for i, p := range mf.Params {
			argReg := machine.Reg(i + 1)
			if dst, ok := assignment[p]; ok && dst != argReg {
				prologue = append(prologue, POp{Op: machine.MOV, Dst: dst, A: argReg})
			} else if sym, ok := spilled[p]; ok {
				prologue = append(prologue, POp{Op: machine.STORE, A: machine.RZero, B: argReg, Sym: sym})
			}
		}
		entry.Ops = append(prologue, entry.Ops...)
	}
	return pf, nil
}

func spillSym(v ir.VReg) string { return fmt.Sprintf("spill$%d", v) }

type interval struct {
	vreg       ir.VReg
	start, end int
}

// buildIntervals computes conservative live intervals: a vreg's interval
// spans from its first occurrence (or the start of any block where it is
// live-in) to its last occurrence (or the end of any block where it is
// live-out).
func buildIntervals(mf *MFunc) []interval {
	// Block successor map via labels.
	byLabel := make(map[string]*MBlock, len(mf.Blocks))
	for _, b := range mf.Blocks {
		byLabel[b.Label] = b
	}
	succs := make(map[*MBlock][]*MBlock)
	for _, b := range mf.Blocks {
		for _, op := range b.Ops {
			if (op.Op == machine.JMP || op.Op == machine.BT || op.Op == machine.BF) && op.Sym != "" {
				if t, ok := byLabel[op.Sym]; ok {
					succs[b] = append(succs[b], t)
				}
			}
		}
	}

	n := mf.NumVRegs + 1
	use := make(map[*MBlock]ir.VReg) // placeholder to silence linters; replaced below
	_ = use

	useSet := make(map[*MBlock][]bool)
	defSet := make(map[*MBlock][]bool)
	liveIn := make(map[*MBlock][]bool)
	liveOut := make(map[*MBlock][]bool)
	for _, b := range mf.Blocks {
		u, d := make([]bool, n), make([]bool, n)
		for i := range b.Ops {
			op := &b.Ops[i]
			for _, r := range opUses(op) {
				if !d[r] {
					u[r] = true
				}
			}
			if dst := opDef(op); dst != ir.None {
				d[dst] = true
			}
		}
		useSet[b], defSet[b] = u, d
		liveIn[b] = make([]bool, n)
		liveOut[b] = make([]bool, n)
	}
	for changed := true; changed; {
		changed = false
		for i := len(mf.Blocks) - 1; i >= 0; i-- {
			b := mf.Blocks[i]
			out := liveOut[b]
			for _, s := range succs[b] {
				for v, lv := range liveIn[s] {
					if lv && !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b]
			for v := 1; v < n; v++ {
				nv := useSet[b][v] || (out[v] && !defSet[b][v])
				if nv && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}

	// Positions: global op index; block start/end positions bracket its ops.
	pos := 0
	starts := make([]int, 0, n)
	ends := make([]int, 0, n)
	starts = append(starts, make([]int, n)...)
	ends = append(ends, make([]int, n)...)
	seen := make([]bool, n)
	touch := func(v ir.VReg, p int) {
		if v <= 0 {
			return
		}
		if !seen[v] {
			seen[v] = true
			starts[v] = p
			ends[v] = p
		} else {
			if p < starts[v] {
				starts[v] = p
			}
			if p > ends[v] {
				ends[v] = p
			}
		}
	}
	for _, b := range mf.Blocks {
		blockStart := pos
		for i := range b.Ops {
			op := &b.Ops[i]
			for _, r := range opUses(op) {
				touch(r, pos)
			}
			if dst := opDef(op); dst != ir.None {
				touch(dst, pos)
			}
			pos++
		}
		blockEnd := pos - 1
		if blockEnd < blockStart {
			blockEnd = blockStart
		}
		for v := 1; v < n; v++ {
			if liveIn[b][v] {
				touch(ir.VReg(v), blockStart)
			}
			if liveOut[b][v] {
				touch(ir.VReg(v), blockEnd)
			}
		}
	}

	var out []interval
	for v := 1; v < n; v++ {
		if seen[v] {
			out = append(out, interval{ir.VReg(v), starts[v], ends[v]})
		}
	}
	return out
}

// rewriteOp translates one MOp into POps, inserting spill loads/stores.
func rewriteOp(pb *PBlock, op *MOp, assignment map[ir.VReg]machine.Reg, spilled map[ir.VReg]string) error {
	info := machine.Info(op.Op)

	mapReg := func(v ir.VReg, scratch machine.Reg, isUse bool) (machine.Reg, bool, string) {
		if v <= 0 {
			return machine.RZero, false, ""
		}
		if r, ok := assignment[v]; ok {
			return r, false, ""
		}
		if sym, ok := spilled[v]; ok {
			return scratch, true, sym
		}
		// Dead value (never used): park writes in scratch3.
		if !isUse {
			return scratch3, false, ""
		}
		return machine.RZero, false, ""
	}

	var p POp
	p.Op = op.Op
	p.Imm = op.Imm
	p.Sym = op.Sym

	if info.NumSrc >= 1 {
		r, sp, sym := mapReg(op.A, scratch1, true)
		if sp {
			pb.Ops = append(pb.Ops, POp{Op: machine.LOAD, Dst: scratch1, A: machine.RZero, Sym: sym})
			pb.HasSpills = true
		}
		p.A = r
	}
	if info.NumSrc >= 2 {
		r, sp, sym := mapReg(op.B, scratch2, true)
		if sp {
			pb.Ops = append(pb.Ops, POp{Op: machine.LOAD, Dst: scratch2, A: machine.RZero, Sym: sym})
			pb.HasSpills = true
		}
		p.B = r
	}

	var defSpillSym string
	if info.HasDst {
		if op.Dst == retValueMarker {
			// Return value convention: r1. Nothing is live at this point
			// (the function returns immediately after).
			p.Dst = machine.Reg(1)
			p.Sym = ""
		} else {
			r, sp, sym := mapReg(op.Dst, scratch3, false)
			p.Dst = r
			if sp {
				defSpillSym = sym
			}
		}
	}

	pb.Ops = append(pb.Ops, p)
	if defSpillSym != "" {
		pb.Ops = append(pb.Ops, POp{Op: machine.STORE, A: machine.RZero, B: scratch3, Sym: defSpillSym})
		pb.HasSpills = true
	}
	return nil
}

package codegen

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/types"
)

// Select translates an optimized, call-free IR function into machine-op
// form. The IR function should already have had loops inverted so that
// innermost loops appear as self-loop blocks.
func Select(f *ir.Func, isEntry bool) (*MFunc, error) {
	if ir.HasCalls(f) {
		return nil, fmt.Errorf("%s: instruction selection requires a call-free function (run inlining first)", f.Name)
	}
	mf := &MFunc{
		Name:     f.Name,
		Section:  f.Section,
		NumVRegs: f.NumVRegs(),
		IsEntry:  isEntry,
		Params:   append([]ir.VReg(nil), f.Params...),
	}
	mf.Arrays = append(mf.Arrays, f.Arrays...)

	for _, b := range f.Blocks {
		mb := &MBlock{Label: BlockLabel(f.Name, b.ID)}
		if _, ok := ir.SelfLoop(b); ok {
			mb.SelfLoop = true
		}
		for i := range b.Instrs {
			if err := selectInstr(mf, mb, f, b, &b.Instrs[i]); err != nil {
				return nil, fmt.Errorf("%s: %w", f.Name, err)
			}
		}
		mf.Blocks = append(mf.Blocks, mb)
	}
	detectCountedLoops(mf)
	return mf, nil
}

// intBin and floatBin map IR arithmetic to opcodes per kind.
var intBin = map[ir.Op]machine.Opcode{
	ir.Add: machine.IADD, ir.Sub: machine.ISUB, ir.Mul: machine.IMUL,
	ir.Div: machine.IDIV, ir.Rem: machine.IREM,
	ir.Min: machine.IMIN, ir.Max: machine.IMAX,
	ir.CmpEQ: machine.ICMPEQ, ir.CmpNE: machine.ICMPNE,
	ir.CmpLT: machine.ICMPLT, ir.CmpLE: machine.ICMPLE,
	ir.CmpGT: machine.ICMPGT, ir.CmpGE: machine.ICMPGE,
}

var floatBin = map[ir.Op]machine.Opcode{
	ir.Add: machine.FADDOP, ir.Sub: machine.FSUBOP, ir.Mul: machine.FMULOP,
	ir.Div: machine.FDIV,
	ir.Min: machine.FMIN, ir.Max: machine.FMAX,
	ir.CmpEQ: machine.FCMPEQ, ir.CmpNE: machine.FCMPNE,
	ir.CmpLT: machine.FCMPLT, ir.CmpLE: machine.FCMPLE,
	ir.CmpGT: machine.FCMPGT, ir.CmpGE: machine.FCMPGE,
}

func selectInstr(mf *MFunc, mb *MBlock, f *ir.Func, b *ir.Block, in *ir.Instr) error {
	emit := func(op MOp) { mb.Ops = append(mb.Ops, op) }

	switch in.Op {
	case ir.Nop:
	case ir.ConstI:
		if in.ConstI < -1<<31 || in.ConstI >= 1<<31 {
			return fmt.Errorf("integer constant %d exceeds the 32-bit machine word", in.ConstI)
		}
		emit(MOp{Op: machine.LDI, Dst: in.Dst, Imm: int32(in.ConstI)})
	case ir.ConstF:
		bits := machine.FloatWord(float32(in.ConstF))
		emit(MOp{Op: machine.LDI, Dst: in.Dst, Imm: int32(uint32(bits))})
	case ir.Mov:
		emit(MOp{Op: machine.MOV, Dst: in.Dst, A: in.A})
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.Min, ir.Max,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
		table := intBin
		if in.Kind == types.Float {
			table = floatBin
		}
		op, ok := table[in.Op]
		if !ok {
			return fmt.Errorf("no machine op for %s kind %v", in.Op, in.Kind)
		}
		emit(MOp{Op: op, Dst: in.Dst, A: in.A, B: in.B})
	case ir.Neg:
		if in.Kind == types.Float {
			emit(MOp{Op: machine.FNEG, Dst: in.Dst, A: in.A})
		} else {
			emit(MOp{Op: machine.INEG, Dst: in.Dst, A: in.A})
		}
	case ir.Abs:
		if in.Kind == types.Float {
			emit(MOp{Op: machine.FABS, Dst: in.Dst, A: in.A})
		} else {
			emit(MOp{Op: machine.IABS, Dst: in.Dst, A: in.A})
		}
	case ir.Sqrt:
		emit(MOp{Op: machine.FSQRT, Dst: in.Dst, A: in.A})
	case ir.Not:
		emit(MOp{Op: machine.NOT, Dst: in.Dst, A: in.A})
	case ir.CvtIF:
		emit(MOp{Op: machine.CVTIF, Dst: in.Dst, A: in.A})
	case ir.CvtFI:
		emit(MOp{Op: machine.CVTFI, Dst: in.Dst, A: in.A})
	case ir.Load:
		emit(MOp{Op: machine.LOAD, Dst: in.Dst, A: in.A, Sym: in.Sym})
	case ir.Store:
		emit(MOp{Op: machine.STORE, A: in.A, B: in.B, Sym: in.Sym})
	case ir.Recv:
		op := machine.RECVX
		if in.Sym == "Y" {
			op = machine.RECVY
		}
		// Wire protocol: every queue word is an IEEE single. Receiving into
		// an int variable therefore inserts a truncating conversion, which
		// matches the reference interpreter's numeric channel semantics.
		if in.Kind == types.Int {
			tmp := mf.NewVReg()
			emit(MOp{Op: op, Dst: tmp})
			emit(MOp{Op: machine.CVTFI, Dst: in.Dst, A: tmp})
		} else {
			emit(MOp{Op: op, Dst: in.Dst})
		}
	case ir.Send:
		op := machine.SENDY
		if in.Sym == "X" {
			op = machine.SENDX
		}
		if in.Kind == types.Int {
			tmp := mf.NewVReg()
			emit(MOp{Op: machine.CVTIF, Dst: tmp, A: in.A})
			emit(MOp{Op: op, A: tmp})
		} else {
			emit(MOp{Op: op, A: in.A})
		}
	case ir.Ret:
		if mf.IsEntry {
			emit(MOp{Op: machine.HALT})
		} else {
			if in.A != ir.None {
				// Return value convention: r1. The MOV is emitted with a
				// pinned destination after allocation; here we mark it with
				// the special "ret" symbol understood by the allocator.
				emit(MOp{Op: machine.MOV, Dst: retValueMarker, A: in.A, Sym: "$retval"})
			}
			emit(MOp{Op: machine.RET})
		}
	case ir.Jmp:
		emit(MOp{Op: machine.JMP, Sym: BlockLabel(f.Name, in.Then.ID)})
	case ir.CondBr:
		emit(MOp{Op: machine.BT, A: in.A, Sym: BlockLabel(f.Name, in.Then.ID)})
		emit(MOp{Op: machine.JMP, Sym: BlockLabel(f.Name, in.Else.ID)})
	default:
		return fmt.Errorf("no selection rule for %s", in.Op)
	}
	return nil
}

// retValueMarker is a sentinel vreg id for the return-value MOV; the
// register allocator pins it to r1.
const retValueMarker ir.VReg = -1

// detectCountedLoops inspects every self-loop block and, when the loop is a
// rotated counted loop with compile-time-constant bounds, records the trip
// count for the software pipeliner. The analysis relies on virtual-register
// def counting: a register with exactly one LDI definition in the whole
// function is a known constant.
func detectCountedLoops(mf *MFunc) {
	// Gather definition counts and the single defining op of each
	// once-defined register.
	defCount := make(map[ir.VReg]int)
	singleDef := make(map[ir.VReg]MOp)
	for _, b := range mf.Blocks {
		for _, op := range b.Ops {
			info := machine.Info(op.Op)
			if info.HasDst && op.Dst != ir.None {
				defCount[op.Dst]++
				singleDef[op.Dst] = op
			}
		}
	}
	// constOf resolves a register to a compile-time constant, following
	// chains of single-definition MOVs (local optimization leaves such a
	// copy when the loop bound is captured into a loop-invariant temp).
	constOf := func(r ir.VReg) (int32, bool) {
		for hops := 0; hops < 8; hops++ {
			if defCount[r] != 1 {
				return 0, false
			}
			def := singleDef[r]
			switch def.Op {
			case machine.LDI:
				return def.Imm, true
			case machine.MOV:
				r = def.A
			default:
				return 0, false
			}
		}
		return 0, false
	}

	// opConst resolves the value produced by a definition op, if constant.
	opConst := func(op MOp) (int32, bool) {
		switch op.Op {
		case machine.LDI:
			return op.Imm, true
		case machine.MOV:
			return constOf(op.A)
		}
		return 0, false
	}

	// Predecessor map over block labels, for walking back from a loop to
	// the definition of its induction variable's initial value.
	byLabel := make(map[string]*MBlock, len(mf.Blocks))
	for _, b := range mf.Blocks {
		byLabel[b.Label] = b
	}
	preds := make(map[*MBlock][]*MBlock)
	for _, b := range mf.Blocks {
		for _, op := range b.Ops {
			if (op.Op == machine.JMP || op.Op == machine.BT || op.Op == machine.BF) && op.Sym != "" {
				if t := byLabel[op.Sym]; t != nil {
					preds[t] = append(preds[t], b)
				}
			}
		}
	}

	for _, b := range mf.Blocks {
		if !b.SelfLoop {
			continue
		}
		li := analyzeCountedLoop(mf, b, preds, constOf, opConst)
		if li != nil {
			b.Loop = li
		}
	}
}

// analyzeCountedLoop matches the rotated counted-loop pattern:
//
//	... body ...
//	iadd i, i, step        (IncIdx; i has exactly 2 defs: init LDI + this)
//	icmple/icmpge c, i, hi (CmpIdx; hi a known constant)
//	bt c, self             (BranchIdx)
//	jmp exit
//
// with i's other definition a known-constant LDI (the initial value) and
// step a known constant. Trip = floor((hi-init)/step) for the rotated form
// (body runs once before the first test), i.e. iterations = number of times
// the body executes = 1 + floor((hi - init - ... )); computed by direct
// simulation below to avoid sign errors.
func analyzeCountedLoop(mf *MFunc, b *MBlock, preds map[*MBlock][]*MBlock, constOf func(ir.VReg) (int32, bool), opConst func(MOp) (int32, bool)) *LoopInfo {
	n := len(b.Ops)
	if n < 4 {
		return nil
	}
	jmp := b.Ops[n-1]
	bt := b.Ops[n-2]
	if jmp.Op != machine.JMP || bt.Op != machine.BT || bt.Sym != b.Label {
		return nil
	}
	// Find the comparison defining the branch condition.
	cmpIdx := -1
	for i := n - 3; i >= 0; i-- {
		if b.Ops[i].Dst == bt.A {
			cmpIdx = i
			break
		}
	}
	if cmpIdx < 0 {
		return nil
	}
	cmp := b.Ops[cmpIdx]
	if cmp.Op != machine.ICMPLE && cmp.Op != machine.ICMPGE && cmp.Op != machine.ICMPLT && cmp.Op != machine.ICMPGT {
		return nil
	}
	// The condition must be defined exactly once in this block (loop
	// inversion legitimately duplicates the test into the preheader) and
	// used only by the loop-back branch.
	for i := 0; i < n; i++ {
		if i != cmpIdx && b.Ops[i].Dst == bt.A && machine.Info(b.Ops[i].Op).HasDst {
			return nil
		}
		if i != n-2 {
			for _, u := range opUses(&b.Ops[i]) {
				if u == bt.A {
					return nil
				}
			}
		}
	}
	iReg := cmp.A
	hiVal, ok := constOf(cmp.B)
	if !ok {
		return nil
	}
	// The induction variable must have exactly one definition inside the
	// loop: the increment IADD i, i, step. (Its initial value may be set by
	// any number of definitions elsewhere — loop variables are commonly
	// reused — so the reaching definition is resolved by walking the
	// preheader chain below.)
	incIdx := -1
	for i := 0; i < n; i++ {
		op := b.Ops[i]
		if machine.Info(op.Op).HasDst && op.Dst == iReg {
			if op.Op != machine.IADD || op.A != iReg {
				return nil
			}
			if incIdx >= 0 {
				return nil // two defs inside the loop
			}
			incIdx = i
		}
	}
	if incIdx < 0 || incIdx > cmpIdx {
		return nil
	}
	stepVal, ok := constOf(b.Ops[incIdx].B)
	if !ok || stepVal == 0 {
		return nil
	}
	initVal, ok := reachingInitConst(b, preds, iReg, opConst)
	if !ok {
		return nil
	}
	// No other op may redefine the comparison's inputs between cmp and bt.
	for i := cmpIdx + 1; i < n-2; i++ {
		if b.Ops[i].Dst == bt.A || b.Ops[i].Dst == iReg {
			return nil
		}
	}

	// Simulate the rotated loop to count iterations (bounded).
	trip := 0
	i := initVal
	for trip < 1<<20 {
		trip++ // body executes
		i += stepVal
		var cont bool
		switch cmp.Op {
		case machine.ICMPLE:
			cont = i <= hiVal
		case machine.ICMPLT:
			cont = i < hiVal
		case machine.ICMPGE:
			cont = i >= hiVal
		case machine.ICMPGT:
			cont = i > hiVal
		}
		if !cont {
			break
		}
	}
	if trip >= 1<<20 {
		return nil
	}
	return &LoopInfo{
		Trip:       trip,
		CounterReg: iReg,
		BranchIdx:  n - 2,
		CmpIdx:     cmpIdx,
		IncIdx:     incIdx,
	}
}

// reachingInitConst resolves the value of r at the loop's entry by walking
// backward from the loop's unique preheader through single-predecessor
// blocks until a definition of r is found. Any ambiguity (several
// preheaders, merge points, depth limit) makes the loop non-analyzable.
func reachingInitConst(loop *MBlock, preds map[*MBlock][]*MBlock, r ir.VReg, opConst func(MOp) (int32, bool)) (int32, bool) {
	var pre *MBlock
	for _, p := range preds[loop] {
		if p == loop {
			continue
		}
		if pre != nil && pre != p {
			return 0, false // multiple preheaders
		}
		pre = p
	}
	if pre == nil {
		return 0, false
	}
	cur := pre
	for hops := 0; hops < 16 && cur != nil; hops++ {
		for i := len(cur.Ops) - 1; i >= 0; i-- {
			op := cur.Ops[i]
			if machine.Info(op.Op).HasDst && op.Dst == r {
				return opConst(op)
			}
		}
		var uniq *MBlock
		for _, p := range preds[cur] {
			if p == cur {
				continue
			}
			if uniq != nil && uniq != p {
				return 0, false
			}
			uniq = p
		}
		cur = uniq
	}
	return 0, false
}

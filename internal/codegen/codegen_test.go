package codegen

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// prep lowers, optimizes and inverts one function, ready for codegen.
func prep(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	var bag source.DiagBag
	m := parser.Parse("t.w2", []byte(src), &bag)
	info := sem.Check(m, &bag)
	if bag.HasErrors() {
		t.Fatalf("front end:\n%s", bag.String())
	}
	funcs := make(map[string]*ir.Func)
	var target *ir.Func
	var decl *ast.FuncDecl
	for _, s := range m.Sections {
		for _, fn := range s.Funcs {
			f, err := ir.Lower(fn, info)
			if err != nil {
				t.Fatal(err)
			}
			if err := ir.InlineCalls(f, funcs); err != nil {
				t.Fatal(err)
			}
			funcs[fn.Name] = f
			if fn.Name == name {
				target = f
				decl = fn
			}
		}
	}
	_ = decl
	if target == nil {
		t.Fatalf("function %s not found", name)
	}
	opt.Optimize(target)
	ir.InvertLoops(target)
	opt.MergeStraightLine(target)
	opt.EliminateDeadCode(target)
	return target
}

func sec(body string) string { return "module m\nsection 1 {\n" + body + "\n}\n" }

func TestSelectBasicOps(t *testing.T) {
	f := prep(t, sec(`
function cell() {
    var i: int;
    var x: float;
    receive(X, i);
    receive(X, x);
    var a: float[4];
    a[i % 4] = x * 2.0 + float(i);
    send(Y, a[0] + sqrt(x));
}
`), "cell")
	mf, err := Select(f, true)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[machine.Opcode]int{}
	for _, b := range mf.Blocks {
		for _, op := range b.Ops {
			counts[op.Op]++
		}
	}
	for _, want := range []machine.Opcode{machine.LDI, machine.STORE, machine.LOAD,
		machine.FSQRT, machine.SENDY, machine.HALT} {
		if counts[want] == 0 {
			t.Errorf("expected at least one %s op\n%s", machine.Info(want).Name, mf)
		}
	}
}

func TestSelectRejectsCalls(t *testing.T) {
	var bag source.DiagBag
	m := parser.Parse("t.w2", []byte(sec(`
function g(): int { return 1; }
function cell() { var x: int; x = g(); send(Y, x); }
`)), &bag)
	info := sem.Check(m, &bag)
	if bag.HasErrors() {
		t.Fatal(bag.String())
	}
	f, err := ir.Lower(m.Sections[0].Funcs[1], info)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Select(f, true); err == nil {
		t.Error("Select must reject functions with calls")
	}
}

func TestEntryEndsWithHalt(t *testing.T) {
	f := prep(t, sec(`function cell() { send(Y, 1.0); }`), "cell")
	mf, err := Select(f, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range mf.Blocks {
		for _, op := range b.Ops {
			if op.Op == machine.HALT {
				found = true
			}
			if op.Op == machine.RET {
				t.Error("entry function must not contain RET")
			}
		}
	}
	if !found {
		t.Error("entry function must end with HALT")
	}
}

func TestNonEntryEndsWithRet(t *testing.T) {
	f := prep(t, sec(`
function helper(a: float): float { return a * 2.0; }
function cell() { send(Y, helper(1.0)); }
`), "helper")
	mf, err := Select(f, false)
	if err != nil {
		t.Fatal(err)
	}
	haveRet := false
	for _, b := range mf.Blocks {
		for _, op := range b.Ops {
			if op.Op == machine.RET {
				haveRet = true
			}
		}
	}
	if !haveRet {
		t.Errorf("non-entry function must end with RET\n%s", mf)
	}
}

func TestAllocateAssignsDistinctRegsToOverlappingValues(t *testing.T) {
	f := prep(t, sec(`
function cell() {
    var a: float = 1.0;
    var b: float = 2.0;
    var c: float = a + b;
    send(Y, a * b + c);
}
`), "cell")
	mf, err := Select(f, true)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Allocate(mf)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Spilled != 0 {
		t.Errorf("tiny function should not spill, got %d spills", pf.Spilled)
	}
	// Every op must reference only valid registers.
	for _, b := range pf.Blocks {
		for _, op := range b.Ops {
			if op.Dst >= machine.NumRegs || op.A >= machine.NumRegs || op.B >= machine.NumRegs {
				t.Errorf("invalid register in %s", op)
			}
		}
	}
}

func TestScheduleBlockRespectsLatency(t *testing.T) {
	// fadd (lat 5) result consumed by sendy must be separated by >= 5 words.
	b := &PBlock{Label: "t", Ops: []POp{
		{Op: machine.LDI, Dst: 2, Imm: int32(machine.FloatWord(1.5))},
		{Op: machine.LDI, Dst: 3, Imm: int32(machine.FloatWord(2.5))},
		{Op: machine.FADDOP, Dst: 4, A: 2, B: 3},
		{Op: machine.SENDY, A: 4},
		{Op: machine.HALT},
	}}
	n, err := ScheduleBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	var tAdd, tSend = -1, -1
	for i, w := range b.Scheduled {
		if w[machine.FADD].Op == machine.FADDOP {
			tAdd = i
		}
		if w[machine.IO].Op == machine.SENDY {
			tSend = i
		}
	}
	if tAdd < 0 || tSend < 0 {
		t.Fatalf("ops missing from schedule (%d words)", n)
	}
	if tSend < tAdd+machine.Info(machine.FADDOP).Latency {
		t.Errorf("send at %d consumes fadd at %d before latency %d elapsed",
			tSend, tAdd, machine.Info(machine.FADDOP).Latency)
	}
}

func TestScheduleBlockPacksIndependentOps(t *testing.T) {
	// Independent ALU/FADD/FMUL ops should share words.
	b := &PBlock{Label: "t", Ops: []POp{
		{Op: machine.LDI, Dst: 2, Imm: 1},
		{Op: machine.FADDOP, Dst: 3, A: 4, B: 5},
		{Op: machine.FMULOP, Dst: 6, A: 7, B: 8},
		{Op: machine.HALT},
	}}
	if _, err := ScheduleBlock(b); err != nil {
		t.Fatal(err)
	}
	w0 := b.Scheduled[0]
	filled := 0
	for u := machine.Unit(0); u < machine.NumUnits; u++ {
		if w0[u].Op != machine.NOP {
			filled++
		}
	}
	if filled < 3 {
		t.Errorf("first word should pack 3 independent ops, got %d", filled)
	}
}

func TestScheduleBlockConditionalShape(t *testing.T) {
	// BT must be followed immediately by JMP, with nothing after.
	b := &PBlock{Label: "t", Ops: []POp{
		{Op: machine.LDI, Dst: 2, Imm: 0},
		{Op: machine.ICMPEQ, Dst: 3, A: 2, B: 0},
		{Op: machine.BT, A: 3, Sym: "then"},
		{Op: machine.JMP, Sym: "else"},
	}}
	if _, err := ScheduleBlock(b); err != nil {
		t.Fatal(err)
	}
	n := len(b.Scheduled)
	if b.Scheduled[n-2][machine.CTRL].Op != machine.BT || b.Scheduled[n-1][machine.CTRL].Op != machine.JMP {
		t.Errorf("terminator words wrong:\n%v\n%v", b.Scheduled[n-2], b.Scheduled[n-1])
	}
	// The BT must see the committed condition.
	var tCmp = -1
	for i, w := range b.Scheduled {
		if w[machine.ALU].Op == machine.ICMPEQ {
			tCmp = i
		}
	}
	if n-2 < tCmp+machine.Info(machine.ICMPEQ).Latency {
		t.Error("branch issued before its condition committed")
	}
}

func TestBlockingOpsSerializeOnUnit(t *testing.T) {
	// Two FDIVs must not overlap: the second starts >= 12 cycles after the
	// first on the same (blocking) unit.
	b := &PBlock{Label: "t", Ops: []POp{
		{Op: machine.FDIV, Dst: 2, A: 3, B: 4},
		{Op: machine.FDIV, Dst: 5, A: 6, B: 7},
		{Op: machine.HALT},
	}}
	if _, err := ScheduleBlock(b); err != nil {
		t.Fatal(err)
	}
	var times []int
	for i, w := range b.Scheduled {
		if w[machine.FMUL].Op == machine.FDIV {
			times = append(times, i)
		}
	}
	if len(times) != 2 {
		t.Fatalf("expected 2 fdivs in schedule, got %d", len(times))
	}
	if times[1]-times[0] < machine.Info(machine.FDIV).Latency {
		t.Errorf("fdivs at %v overlap on the blocking unit", times)
	}
}

func TestSequentialBlockSlower(t *testing.T) {
	ops := []POp{
		{Op: machine.LDI, Dst: 2, Imm: 1},
		{Op: machine.FADDOP, Dst: 3, A: 4, B: 5},
		{Op: machine.FMULOP, Dst: 6, A: 7, B: 8},
		{Op: machine.IADD, Dst: 9, A: 2, B: 2},
		{Op: machine.HALT},
	}
	b1 := &PBlock{Label: "a", Ops: append([]POp(nil), ops...)}
	b2 := &PBlock{Label: "b", Ops: append([]POp(nil), ops...)}
	n1, err := ScheduleBlock(b1)
	if err != nil {
		t.Fatal(err)
	}
	n2 := SequentialBlock(b2)
	if n2 < n1 {
		t.Errorf("sequential emission (%d words) beat list scheduling (%d)", n2, n1)
	}
}

func TestCountedLoopDetection(t *testing.T) {
	f := prep(t, sec(`
function cell() {
    var i: int;
    var acc: float = 0.0;
    for i = 0 to 99 {
        acc = acc + 1.5;
    }
    send(Y, acc);
}
`), "cell")
	mf, err := Select(f, true)
	if err != nil {
		t.Fatal(err)
	}
	var loops int
	for _, b := range mf.Blocks {
		if b.Loop != nil {
			loops++
			if b.Loop.Trip != 100 {
				t.Errorf("trip = %d, want 100", b.Loop.Trip)
			}
		}
	}
	if loops != 1 {
		t.Errorf("expected exactly 1 detected counted loop, got %d\n%s", loops, mf)
	}
}

func TestCountedLoopStep(t *testing.T) {
	f := prep(t, sec(`
function cell() {
    var i: int;
    var acc: float = 0.0;
    for i = 10 to 50 step 5 {
        acc = acc + 1.0;
    }
    send(Y, acc);
}
`), "cell")
	mf, err := Select(f, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range mf.Blocks {
		if b.Loop != nil {
			if b.Loop.Trip != 9 { // 10,15,...,50
				t.Errorf("trip = %d, want 9", b.Loop.Trip)
			}
			return
		}
	}
	t.Error("stepped counted loop not detected")
}

func TestVariableBoundNotDetected(t *testing.T) {
	f := prep(t, sec(`
function helper(n: int): float {
    var i: int;
    var acc: float = 0.0;
    for i = 0 to n {
        acc = acc + 1.0;
    }
    return acc;
}
`), "helper")
	mf, err := Select(f, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range mf.Blocks {
		if b.Loop != nil {
			t.Error("variable-bound loop must not be marked constant-trip")
		}
	}
}

func TestTryPipelineRejectsReasons(t *testing.T) {
	b := &PBlock{Label: "x"}
	_, res := TryPipeline(nil, b, "exit")
	if res.Applied || !strings.Contains(res.Reason, "counted loop") {
		t.Errorf("unexpected result %+v", res)
	}
	b2 := &PBlock{Label: "y", SelfLoop: true, Loop: &LoopInfo{Trip: 4}, HasSpills: true}
	_, res2 := TryPipeline(nil, b2, "exit")
	if res2.Applied || !strings.Contains(res2.Reason, "spill") {
		t.Errorf("unexpected result %+v", res2)
	}
}

func TestGenerateStats(t *testing.T) {
	f := prep(t, sec(`
function cell() {
    var i: int;
    var v: float;
    var acc: float = 0.0;
    for i = 0 to 31 {
        receive(X, v);
        acc = acc + v * v;
    }
    send(Y, acc);
}
`), "cell")
	pf, st, err := Generate(f, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.LoopsSeen != 1 {
		t.Errorf("LoopsSeen = %d, want 1", st.LoopsSeen)
	}
	if st.LoopsPipelined != 1 {
		t.Errorf("LoopsPipelined = %d, want 1 (reason should be visible in block dump)\n%s", st.LoopsPipelined, pf)
	}
	if st.Words == 0 || st.MachineOps == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if WordCount(pf) != st.Words {
		t.Errorf("WordCount mismatch: %d vs %d", WordCount(pf), st.Words)
	}
}

func TestGenerateDisableFlags(t *testing.T) {
	src := sec(`
function cell() {
    var i: int;
    var v: float;
    var acc: float = 0.0;
    for i = 0 to 31 {
        receive(X, v);
        acc = acc + v * v;
    }
    send(Y, acc);
}
`)
	f1 := prep(t, src, "cell")
	f2 := prep(t, src, "cell")
	_, st1, err := Generate(f1, true, Options{DisablePipelining: true})
	if err != nil {
		t.Fatal(err)
	}
	if st1.LoopsPipelined != 0 {
		t.Error("DisablePipelining ignored")
	}
	_, st2, err := Generate(f2, true, Options{DisableScheduling: true, DisablePipelining: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Words <= st1.Words {
		t.Errorf("naive emission (%d words) should be longer than scheduled (%d)", st2.Words, st1.Words)
	}
}

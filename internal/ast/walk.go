package ast

// Inspect traverses the subtree rooted at n in depth-first order, calling f
// for every node. If f returns false for a node, its children are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *Module:
		for _, s := range n.Streams {
			Inspect(s, f)
		}
		for _, s := range n.Sections {
			Inspect(s, f)
		}
	case *StreamParam:
		Inspect(n.Type, f)
	case *Section:
		for _, fn := range n.Funcs {
			Inspect(fn, f)
		}
	case *FuncDecl:
		for _, p := range n.Params {
			Inspect(p, f)
		}
		if n.Result != nil {
			Inspect(n.Result, f)
		}
		Inspect(n.Body, f)
	case *Param:
		Inspect(n.Type, f)
	case *TypeExpr:
		// leaf
	case *Block:
		for _, s := range n.Stmts {
			Inspect(s, f)
		}
	case *VarDecl:
		Inspect(n.Type, f)
		if n.Init != nil {
			Inspect(n.Init, f)
		}
	case *Assign:
		Inspect(n.LHS, f)
		Inspect(n.RHS, f)
	case *If:
		Inspect(n.Cond, f)
		Inspect(n.Then, f)
		if n.Else != nil {
			Inspect(n.Else, f)
		}
	case *While:
		Inspect(n.Cond, f)
		Inspect(n.Body, f)
	case *For:
		Inspect(n.Var, f)
		Inspect(n.Lo, f)
		Inspect(n.Hi, f)
		if n.Step != nil {
			Inspect(n.Step, f)
		}
		Inspect(n.Body, f)
	case *Return:
		if n.Value != nil {
			Inspect(n.Value, f)
		}
	case *ExprStmt:
		Inspect(n.X, f)
	case *Receive:
		Inspect(n.LHS, f)
	case *Send:
		Inspect(n.Value, f)
	case *Break, *Continue:
		// leaves
	case *Ident, *IntLit, *FloatLit, *BoolLit:
		// leaves
	case *BinaryExpr:
		Inspect(n.X, f)
		Inspect(n.Y, f)
	case *UnaryExpr:
		Inspect(n.X, f)
	case *CallExpr:
		Inspect(n.Fun, f)
		for _, a := range n.Args {
			Inspect(a, f)
		}
	case *IndexExpr:
		Inspect(n.X, f)
		Inspect(n.Index, f)
	}
}

// MaxLoopDepth returns the deepest loop nesting in the function body. The
// paper's improved scheduler (§4.3) estimates compile time from "a
// combination of lines of code and loop nesting".
func MaxLoopDepth(f *FuncDecl) int {
	return blockLoopDepth(f.Body)
}

func blockLoopDepth(b *Block) int {
	max := 0
	for _, s := range b.Stmts {
		if d := stmtLoopDepth(s); d > max {
			max = d
		}
	}
	return max
}

func stmtLoopDepth(s Stmt) int {
	switch s := s.(type) {
	case *Block:
		return blockLoopDepth(s)
	case *If:
		d := blockLoopDepth(s.Then)
		if s.Else != nil {
			if e := stmtLoopDepth(s.Else); e > d {
				d = e
			}
		}
		return d
	case *While:
		return 1 + blockLoopDepth(s.Body)
	case *For:
		return 1 + blockLoopDepth(s.Body)
	}
	return 0
}

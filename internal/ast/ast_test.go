package ast

import (
	"strings"
	"testing"

	"repro/internal/source"
	"repro/internal/types"
)

// buildModule constructs a small tree by hand (the parser has its own
// print/parse round-trip tests; these cover the ast package's helpers
// directly).
func buildModule() *Module {
	body := &Block{Stmts: []Stmt{
		&VarDecl{Name: "v", Type: &TypeExpr{Name: "float"},
			Init: &FloatLit{Value: 1.5}},
		&For{
			Var: &Ident{Name: "i"},
			Lo:  &IntLit{Value: 0},
			Hi:  &IntLit{Value: 9},
			Body: &Block{Stmts: []Stmt{
				&Send{Chan: "Y", Value: &BinaryExpr{Op: source.MUL,
					X: &Ident{Name: "v"}, Y: &FloatLit{Value: 2}}},
			}},
		},
	}}
	fn := &FuncDecl{Name: "cell", Body: body, SectionIndex: 1}
	return &Module{
		Name:     "m",
		Streams:  []*StreamParam{{Dir: StreamOut, Name: "ys", Type: &TypeExpr{Name: "float", Dims: []int{10}}}},
		Sections: []*Section{{Index: 1, Of: 1, Funcs: []*FuncDecl{fn}}},
	}
}

func TestFormatContainsStructure(t *testing.T) {
	text := Format(buildModule())
	for _, want := range []string{
		"module m (out ys: float[10])",
		"section 1 of 1 {",
		"function cell() {",
		"var v: float = 1.5;",
		"for i = 0 to 9 {",
		"send(Y, v * 2.0);",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted module missing %q:\n%s", want, text)
		}
	}
}

func TestNumFunctionsAndEntry(t *testing.T) {
	m := buildModule()
	if m.NumFunctions() != 1 {
		t.Errorf("NumFunctions = %d", m.NumFunctions())
	}
	if m.Sections[0].Entry().Name != "cell" {
		t.Errorf("Entry = %q", m.Sections[0].Entry().Name)
	}
	empty := &Section{Index: 2}
	if empty.Entry() != nil {
		t.Error("empty section must have nil entry")
	}
}

func TestInspectVisitsAllAndPrunes(t *testing.T) {
	m := buildModule()
	var total int
	Inspect(m, func(Node) bool { total++; return true })
	if total < 12 {
		t.Errorf("Inspect visited only %d nodes", total)
	}
	// Pruning at FuncDecl must skip its body.
	var pruned int
	Inspect(m, func(n Node) bool {
		pruned++
		_, isFn := n.(*FuncDecl)
		return !isFn
	})
	if pruned >= total {
		t.Errorf("pruned walk (%d) should visit fewer nodes than full walk (%d)", pruned, total)
	}
}

func TestExprStringPrecedence(t *testing.T) {
	// (a + b) * c must print parenthesized; a + b * c must not.
	mul := &BinaryExpr{Op: source.MUL,
		X: &BinaryExpr{Op: source.ADD, X: &Ident{Name: "a"}, Y: &Ident{Name: "b"}},
		Y: &Ident{Name: "c"}}
	if got := ExprString(mul); got != "(a + b) * c" {
		t.Errorf("got %q", got)
	}
	add := &BinaryExpr{Op: source.ADD,
		X: &Ident{Name: "a"},
		Y: &BinaryExpr{Op: source.MUL, X: &Ident{Name: "b"}, Y: &Ident{Name: "c"}}}
	if got := ExprString(add); got != "a + b * c" {
		t.Errorf("got %q", got)
	}
	neg := &UnaryExpr{Op: source.SUB, X: &Ident{Name: "x"}}
	idx := &IndexExpr{X: &Ident{Name: "arr"}, Index: neg}
	if got := ExprString(idx); got != "arr[-x]" {
		t.Errorf("got %q", got)
	}
}

func TestFloatLitAlwaysRescansAsFloat(t *testing.T) {
	for _, v := range []float64{1, 2.5, 1e9, 0} {
		s := ExprString(&FloatLit{Value: v})
		if !strings.ContainsAny(s, ".eE") {
			t.Errorf("float literal %g printed as %q, which re-scans as INT", v, s)
		}
	}
}

func TestFuncLinesAndLoopDepth(t *testing.T) {
	m := buildModule()
	fn := m.Sections[0].Funcs[0]
	if lines := FuncLines(fn); lines < 5 || lines > 10 {
		t.Errorf("FuncLines = %d, want a small positive count", lines)
	}
	if d := MaxLoopDepth(fn); d != 1 {
		t.Errorf("MaxLoopDepth = %d, want 1", d)
	}
}

func TestTypeAnnotationAccessors(t *testing.T) {
	e := &IntLit{Value: 3}
	if e.Type() != nil {
		t.Error("fresh literal must have nil type")
	}
	e.SetType(types.IntType)
	if !e.Type().Equal(types.IntType) {
		t.Error("SetType/Type round trip failed")
	}
}

func TestStreamDirString(t *testing.T) {
	if StreamIn.String() != "in" || StreamOut.String() != "out" {
		t.Error("StreamDir strings wrong")
	}
}

// Package ast declares the syntax tree of the W2 language.
//
// A W2 module mirrors the structure of the Warp machine: it consists of one
// or more section programs (each mapped to a group of processing elements),
// and each section program contains one or more functions. The last function
// of a section is its entry point (the "cell program"); the compiler's
// parallel decomposition follows exactly this module/section/function
// hierarchy.
package ast

import (
	"repro/internal/source"
	"repro/internal/types"
)

// Node is implemented by every syntax-tree node.
type Node interface {
	Pos() source.Pos
}

// ---------------------------------------------------------------------------
// Declarations

// Module is the root of a W2 program.
type Module struct {
	ModulePos source.Pos
	Name      string
	Streams   []*StreamParam // the module's in/out data streams
	Sections  []*Section
}

func (m *Module) Pos() source.Pos { return m.ModulePos }

// NumFunctions returns the total number of functions across all sections —
// the degree of parallelism available to the parallel compiler.
func (m *Module) NumFunctions() int {
	n := 0
	for _, s := range m.Sections {
		n += len(s.Funcs)
	}
	return n
}

// StreamDir is the direction of a module stream parameter.
type StreamDir int

const (
	// StreamIn data flows from the host into the array.
	StreamIn StreamDir = iota
	// StreamOut data flows from the array back to the host.
	StreamOut
)

func (d StreamDir) String() string {
	if d == StreamIn {
		return "in"
	}
	return "out"
}

// StreamParam is one module-level stream declaration, e.g. "in x: float[512]".
type StreamParam struct {
	NamePos source.Pos
	Dir     StreamDir
	Name    string
	Type    *TypeExpr
}

func (p *StreamParam) Pos() source.Pos { return p.NamePos }

// Section is one section program: a group of functions compiled for one
// group of processing elements.
type Section struct {
	SectionPos source.Pos
	// LbracePos is the opening brace of the section body; the span from
	// SectionPos through LbracePos is the section header that every function
	// of the section depends on (incremental hashing, internal/fcache).
	LbracePos source.Pos
	Index     int // 1-based section number as written
	Of        int // declared total number of sections (0 if omitted)
	Funcs     []*FuncDecl
}

func (s *Section) Pos() source.Pos { return s.SectionPos }

// Entry returns the section's entry function (by convention the last
// declared function of the section).
func (s *Section) Entry() *FuncDecl {
	if len(s.Funcs) == 0 {
		return nil
	}
	return s.Funcs[len(s.Funcs)-1]
}

// FuncDecl is one function of a section program — the unit of parallel
// compilation.
type FuncDecl struct {
	FuncPos source.Pos
	Name    string
	Params  []*Param
	Result  *TypeExpr // nil for void
	Body    *Block

	// Sig is the semantic signature, filled by the checker.
	Sig *types.Func
	// SectionIndex and FuncIndex locate the function in the module:
	// section number (1-based) and position within the section (0-based).
	// They are filled by the parser.
	SectionIndex int
	FuncIndex    int
}

func (f *FuncDecl) Pos() source.Pos { return f.FuncPos }

// Param is a formal parameter of a function.
type Param struct {
	NamePos source.Pos
	Name    string
	Type    *TypeExpr
}

func (p *Param) Pos() source.Pos { return p.NamePos }

// TypeExpr is a syntactic type: a scalar name plus optional array dimensions
// (written outermost first, e.g. float[10][20]).
type TypeExpr struct {
	NamePos source.Pos
	Name    string // "int", "float", "bool"
	Dims    []int  // outermost-first array dimensions; empty for scalars

	// T is the denoted semantic type, filled by the checker.
	T types.Type
}

func (t *TypeExpr) Pos() source.Pos { return t.NamePos }

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a brace-enclosed statement sequence with its own scope.
type Block struct {
	LbracePos source.Pos
	// RbracePos is the closing brace. For a function body it marks the end
	// of the declaration's byte span (incremental hashing keys on the exact
	// span of each function).
	RbracePos source.Pos
	Stmts     []Stmt
}

// VarDecl declares a local variable, optionally initialized.
type VarDecl struct {
	VarPos source.Pos
	Name   string
	Type   *TypeExpr
	Init   Expr // nil if absent
}

// Assign assigns RHS to an lvalue (identifier or array element).
type Assign struct {
	LHS Expr // *Ident or *IndexExpr
	RHS Expr
}

// If is a conditional with an optional else arm.
type If struct {
	IfPos source.Pos
	Cond  Expr
	Then  *Block
	Else  Stmt // *Block, *If, or nil
}

// While loops while the condition holds.
type While struct {
	WhilePos source.Pos
	Cond     Expr
	Body     *Block
}

// For is the counted loop "for i = lo to hi [step s] { ... }"; the bounds are
// evaluated once and i takes values lo, lo+s, ... while i <= hi (or >= hi for
// negative constant steps).
type For struct {
	ForPos source.Pos
	Var    *Ident
	Lo, Hi Expr
	Step   Expr // nil means 1
	Body   *Block
}

// Return exits the enclosing function, with a value when the function has a
// result type.
type Return struct {
	ReturnPos source.Pos
	Value     Expr // nil for void returns
}

// ExprStmt evaluates an expression for effect (a call).
type ExprStmt struct {
	X Expr
}

// Receive reads the next value from a systolic input channel into an lvalue:
// receive(X, v).
type Receive struct {
	RecvPos source.Pos
	Chan    string // "X" or "Y"
	LHS     Expr   // *Ident or *IndexExpr
}

// Send writes a value to a systolic output channel: send(Y, expr).
type Send struct {
	SendPos source.Pos
	Chan    string // "X" or "Y"
	Value   Expr
}

// Break exits the innermost loop.
type Break struct{ BreakPos source.Pos }

// Continue advances the innermost loop.
type Continue struct{ ContinuePos source.Pos }

func (b *Block) Pos() source.Pos    { return b.LbracePos }
func (v *VarDecl) Pos() source.Pos  { return v.VarPos }
func (a *Assign) Pos() source.Pos   { return a.LHS.Pos() }
func (i *If) Pos() source.Pos       { return i.IfPos }
func (w *While) Pos() source.Pos    { return w.WhilePos }
func (f *For) Pos() source.Pos      { return f.ForPos }
func (r *Return) Pos() source.Pos   { return r.ReturnPos }
func (e *ExprStmt) Pos() source.Pos { return e.X.Pos() }
func (r *Receive) Pos() source.Pos  { return r.RecvPos }
func (s *Send) Pos() source.Pos     { return s.SendPos }
func (b *Break) Pos() source.Pos    { return b.BreakPos }
func (c *Continue) Pos() source.Pos { return c.ContinuePos }

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*ExprStmt) stmtNode() {}
func (*Receive) stmtNode()  {}
func (*Send) stmtNode()     {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes. Type returns the semantic
// type assigned by the checker (nil before checking).
type Expr interface {
	Node
	exprNode()
	Type() types.Type
}

// typ is the type annotation embedded in every expression node.
type typ struct{ T types.Type }

func (t *typ) Type() types.Type      { return t.T }
func (t *typ) SetType(ty types.Type) { t.T = ty }

// Ident is a use of a named entity.
type Ident struct {
	typ
	NamePos source.Pos
	Name    string
}

// IntLit is an integer literal.
type IntLit struct {
	typ
	LitPos source.Pos
	Value  int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	typ
	LitPos source.Pos
	Value  float64
}

// BoolLit is true or false.
type BoolLit struct {
	typ
	LitPos source.Pos
	Value  bool
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	typ
	Op   source.Token
	X, Y Expr
}

// UnaryExpr applies unary - or !.
type UnaryExpr struct {
	typ
	OpPos source.Pos
	Op    source.Token
	X     Expr
}

// CallExpr calls a named function or builtin.
type CallExpr struct {
	typ
	Fun  *Ident
	Args []Expr
	// Builtin names the builtin when Fun resolves to one ("sqrt", "abs",
	// "min", "max", "float", "int"); empty for user functions.
	Builtin string
}

// IndexExpr selects an array element: a[i] or a[i][j].
type IndexExpr struct {
	typ
	X     Expr // array value (*Ident or nested *IndexExpr)
	Index Expr
}

func (e *Ident) Pos() source.Pos      { return e.NamePos }
func (e *IntLit) Pos() source.Pos     { return e.LitPos }
func (e *FloatLit) Pos() source.Pos   { return e.LitPos }
func (e *BoolLit) Pos() source.Pos    { return e.LitPos }
func (e *BinaryExpr) Pos() source.Pos { return e.X.Pos() }
func (e *UnaryExpr) Pos() source.Pos  { return e.OpPos }
func (e *CallExpr) Pos() source.Pos   { return e.Fun.Pos() }
func (e *IndexExpr) Pos() source.Pos  { return e.X.Pos() }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*BoolLit) exprNode()    {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}

package ast

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/source"
)

// Fprint writes m back out as W2 source text. The output re-parses to an
// equivalent tree, which the parser tests rely on (print/parse round trip).
func Fprint(w io.Writer, m *Module) error {
	p := &printer{w: w}
	p.module(m)
	return p.err
}

// Format returns the module as W2 source text.
func Format(m *Module) string {
	var sb strings.Builder
	Fprint(&sb, m) // strings.Builder never errors
	return sb.String()
}

type printer struct {
	w      io.Writer
	indent int
	err    error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) line(format string, args ...any) {
	p.printf("%s", strings.Repeat("    ", p.indent))
	p.printf(format, args...)
	p.printf("\n")
}

func (p *printer) module(m *Module) {
	p.printf("module %s", m.Name)
	if len(m.Streams) > 0 {
		p.printf(" (")
		for i, s := range m.Streams {
			if i > 0 {
				p.printf(", ")
			}
			p.printf("%s %s: %s", s.Dir, s.Name, typeExprString(s.Type))
		}
		p.printf(")")
	}
	p.printf("\n")
	for _, sec := range m.Sections {
		p.printf("\n")
		p.section(sec)
	}
}

func (p *printer) section(s *Section) {
	if s.Of > 0 {
		p.line("section %d of %d {", s.Index, s.Of)
	} else {
		p.line("section %d {", s.Index)
	}
	p.indent++
	for i, f := range s.Funcs {
		if i > 0 {
			p.printf("\n")
		}
		p.funcDecl(f)
	}
	p.indent--
	p.line("}")
}

func (p *printer) funcDecl(f *FuncDecl) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s(", f.Name)
	for i, prm := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %s", prm.Name, typeExprString(prm.Type))
	}
	sb.WriteString(")")
	if f.Result != nil {
		fmt.Fprintf(&sb, ": %s", typeExprString(f.Result))
	}
	sb.WriteString(" {")
	p.line("%s", sb.String())
	p.indent++
	for _, st := range f.Body.Stmts {
		p.stmt(st)
	}
	p.indent--
	p.line("}")
}

func typeExprString(t *TypeExpr) string {
	var sb strings.Builder
	sb.WriteString(t.Name)
	for _, d := range t.Dims {
		fmt.Fprintf(&sb, "[%d]", d)
	}
	return sb.String()
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		for _, st := range s.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *VarDecl:
		if s.Init != nil {
			p.line("var %s: %s = %s;", s.Name, typeExprString(s.Type), ExprString(s.Init))
		} else {
			p.line("var %s: %s;", s.Name, typeExprString(s.Type))
		}
	case *Assign:
		p.line("%s = %s;", ExprString(s.LHS), ExprString(s.RHS))
	case *If:
		p.line("if %s {", ExprString(s.Cond))
		p.indent++
		for _, st := range s.Then.Stmts {
			p.stmt(st)
		}
		p.indent--
		switch e := s.Else.(type) {
		case nil:
			p.line("}")
		case *Block:
			p.line("} else {")
			p.indent++
			for _, st := range e.Stmts {
				p.stmt(st)
			}
			p.indent--
			p.line("}")
		case *If:
			// Render "else if" by printing the nested if inline.
			p.line("} else {")
			p.indent++
			p.stmt(e)
			p.indent--
			p.line("}")
		}
	case *While:
		p.line("while %s {", ExprString(s.Cond))
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *For:
		hdr := fmt.Sprintf("for %s = %s to %s", s.Var.Name, ExprString(s.Lo), ExprString(s.Hi))
		if s.Step != nil {
			hdr += " step " + ExprString(s.Step)
		}
		p.line("%s {", hdr)
		p.indent++
		for _, st := range s.Body.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *Return:
		if s.Value != nil {
			p.line("return %s;", ExprString(s.Value))
		} else {
			p.line("return;")
		}
	case *ExprStmt:
		p.line("%s;", ExprString(s.X))
	case *Receive:
		p.line("receive(%s, %s);", s.Chan, ExprString(s.LHS))
	case *Send:
		p.line("send(%s, %s);", s.Chan, ExprString(s.Value))
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	default:
		p.line("/* unknown statement %T */", s)
	}
}

// ExprString renders an expression as source text with minimal, correct
// parenthesization.
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, outerPrec int) string {
	switch e := e.(type) {
	case *Ident:
		return e.Name
	case *IntLit:
		return strconv.FormatInt(e.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(e.Value, 'g', -1, 64)
		// Ensure the literal re-scans as FLOAT, not INT.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *BinaryExpr:
		prec := e.Op.Precedence()
		s := exprString(e.X, prec) + " " + e.Op.String() + " " + exprString(e.Y, prec+1)
		if prec < outerPrec {
			return "(" + s + ")"
		}
		return s
	case *UnaryExpr:
		const unaryPrec = 6
		s := e.Op.String() + exprString(e.X, unaryPrec)
		if unaryPrec < outerPrec {
			return "(" + s + ")"
		}
		return s
	case *CallExpr:
		var sb strings.Builder
		sb.WriteString(e.Fun.Name)
		sb.WriteString("(")
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(exprString(a, 0))
		}
		sb.WriteString(")")
		return sb.String()
	case *IndexExpr:
		return exprString(e.X, 7) + "[" + exprString(e.Index, 0) + "]"
	}
	return fmt.Sprintf("/*?%T*/", e)
}

// CountLines returns the number of source lines the module formats to,
// which is the "lines of code" metric the paper uses to size functions
// (Figure 7 plots speedup against lines of code).
func CountLines(m *Module) int {
	return strings.Count(Format(m), "\n")
}

// FuncLines returns the formatted line count of a single function.
func FuncLines(f *FuncDecl) int {
	tmp := &Module{
		Name:     "tmp",
		Sections: []*Section{{Index: 1, Funcs: []*FuncDecl{f}}},
	}
	// Subtract the module line, blank line, section open/close lines.
	return CountLines(tmp) - 4
}

// posOf is a compile-time assertion helper keeping source import used even
// if positions become optional in future printers.
var _ = source.NoPos

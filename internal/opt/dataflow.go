package opt

import "repro/internal/ir"

// Liveness holds the result of global live-variable analysis: for each block
// the virtual registers live on entry and on exit.
type Liveness struct {
	In  map[*ir.Block]BitSet
	Out map[*ir.Block]BitSet
	// NumVRegs is the analysis universe size (vreg ids are 1..NumVRegs).
	NumVRegs int
}

// ComputeLiveness runs backward iterative dataflow over f.
func ComputeLiveness(f *ir.Func) *Liveness {
	n := f.NumVRegs() + 1
	lv := &Liveness{
		In:       make(map[*ir.Block]BitSet, len(f.Blocks)),
		Out:      make(map[*ir.Block]BitSet, len(f.Blocks)),
		NumVRegs: f.NumVRegs(),
	}
	use := make(map[*ir.Block]BitSet, len(f.Blocks))
	def := make(map[*ir.Block]BitSet, len(f.Blocks))

	for _, b := range f.Blocks {
		u, d := NewBitSet(n), NewBitSet(n)
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, r := range in.Uses() {
				if !d.Has(int(r)) {
					u.Set(int(r))
				}
			}
			if dst := in.Def(); dst != ir.None {
				d.Set(int(dst))
			}
		}
		use[b], def[b] = u, d
		lv.In[b] = NewBitSet(n)
		lv.Out[b] = NewBitSet(n)
	}

	// Iterate to fixpoint, visiting blocks in reverse order for faster
	// convergence of the backward problem.
	rpo := ir.ReversePostorder(f)
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := lv.Out[b]
			for _, s := range b.Succs {
				if out.OrWith(lv.In[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			newIn := out.Clone()
			newIn.AndNotWith(def[b])
			newIn.OrWith(use[b])
			if lv.In[b].OrWith(newIn) {
				changed = true
			}
		}
	}
	return lv
}

// LiveAt walks a block backwards computing per-instruction live-out sets.
// It calls visit for every instruction with the set of registers live
// immediately after it. The callback must not retain the set.
func (lv *Liveness) LiveAt(b *ir.Block, visit func(idx int, liveOut BitSet)) {
	live := lv.Out[b].Clone()
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		visit(i, live)
		in := &b.Instrs[i]
		if dst := in.Def(); dst != ir.None {
			live.Clear(int(dst))
		}
		for _, r := range in.Uses() {
			live.Set(int(r))
		}
	}
}

// DefSite identifies one definition: the block and instruction index.
type DefSite struct {
	Block *ir.Block
	Index int
}

// ReachingDefs holds the reaching-definitions solution. Definitions are
// numbered densely; In[b] is the set of definition ids reaching the entry
// of b.
type ReachingDefs struct {
	Defs  []DefSite            // definition id -> site
	DefOf map[*ir.Block][]int  // block -> definition ids in order
	In    map[*ir.Block]BitSet // reaching in
	Out   map[*ir.Block]BitSet
	// ByVReg lists definition ids per virtual register.
	ByVReg map[ir.VReg][]int
}

// ComputeReachingDefs runs forward iterative dataflow over f. This is the
// "computation of global dependencies" of the paper's phase 2; the
// scheduler consults it when checking whether a value flowing into a loop is
// redefined inside it.
func ComputeReachingDefs(f *ir.Func) *ReachingDefs {
	rd := &ReachingDefs{
		DefOf:  make(map[*ir.Block][]int),
		In:     make(map[*ir.Block]BitSet),
		Out:    make(map[*ir.Block]BitSet),
		ByVReg: make(map[ir.VReg][]int),
	}
	// Number definitions.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if dst := b.Instrs[i].Def(); dst != ir.None {
				id := len(rd.Defs)
				rd.Defs = append(rd.Defs, DefSite{Block: b, Index: i})
				rd.DefOf[b] = append(rd.DefOf[b], id)
				rd.ByVReg[dst] = append(rd.ByVReg[dst], id)
			}
		}
	}
	n := len(rd.Defs)

	gen := make(map[*ir.Block]BitSet)
	kill := make(map[*ir.Block]BitSet)
	for _, b := range f.Blocks {
		g, k := NewBitSet(n), NewBitSet(n)
		// Walk forward; later defs of the same vreg kill earlier ones.
		lastDef := make(map[ir.VReg]int)
		for i := range b.Instrs {
			if dst := b.Instrs[i].Def(); dst != ir.None {
				id := defIDAt(rd, b, i)
				lastDef[dst] = id
			}
		}
		for v, id := range lastDef {
			g.Set(id)
			for _, other := range rd.ByVReg[v] {
				if other != id {
					k.Set(other)
				}
			}
		}
		gen[b], kill[b] = g, k
		rd.In[b] = NewBitSet(n)
		rd.Out[b] = NewBitSet(n)
	}

	rpo := ir.ReversePostorder(f)
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			in := rd.In[b]
			for _, p := range b.Preds {
				if in.OrWith(rd.Out[p]) {
					changed = true
				}
			}
			newOut := in.Clone()
			newOut.AndNotWith(kill[b])
			newOut.OrWith(gen[b])
			if rd.Out[b].OrWith(newOut) {
				changed = true
			}
		}
	}
	return rd
}

func defIDAt(rd *ReachingDefs, b *ir.Block, idx int) int {
	// DefOf[b] is ordered by instruction index; find the one at idx.
	k := 0
	for i := 0; i <= idx; i++ {
		if b.Instrs[i].Def() != ir.None {
			if i == idx {
				return rd.DefOf[b][k]
			}
			k++
		}
	}
	return -1
}

// ReachingDefsOf returns the definition sites of v that reach the entry of b.
func (rd *ReachingDefs) ReachingDefsOf(b *ir.Block, v ir.VReg) []DefSite {
	var out []DefSite
	in := rd.In[b]
	for _, id := range rd.ByVReg[v] {
		if in.Has(id) {
			out = append(out, rd.Defs[id])
		}
	}
	return out
}

package opt

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/types"
)

// Local optimization: within each basic block, perform constant folding and
// propagation, copy propagation, algebraic simplification, and common-
// subexpression elimination by value numbering. The implementation is
// version-based because the IR is not SSA: every redefinition of a virtual
// register invalidates facts recorded about it.

// constVal is a compile-time constant.
type constVal struct {
	isF bool
	i   int64
	f   float64
}

// vver is a versioned virtual register: facts are keyed by (reg, version)
// so that redefinitions invalidate them implicitly.
type vver struct {
	r ir.VReg
	v int
}

// LocalStats counts what local optimization changed.
type LocalStats struct {
	Folded     int // instructions replaced by constants
	CopyProp   int // operand uses rewritten to an earlier copy/constant source
	CSE        int // instructions replaced by Mov from an equal value
	Simplified int // algebraic identities applied
}

// Add accumulates other into s.
func (s *LocalStats) Add(other LocalStats) {
	s.Folded += other.Folded
	s.CopyProp += other.CopyProp
	s.CSE += other.CSE
	s.Simplified += other.Simplified
}

// LocalOptimize runs local optimization on every block of f and returns the
// combined statistics.
func LocalOptimize(f *ir.Func) LocalStats {
	var stats LocalStats
	for _, b := range f.Blocks {
		stats.Add(localBlock(f, b))
	}
	return stats
}

func localBlock(f *ir.Func, b *ir.Block) LocalStats {
	var stats LocalStats

	ver := make(map[ir.VReg]int) // current version of each vreg
	consts := make(map[vver]constVal)
	copies := make(map[vver]vver)  // copy source (canonical)
	exprs := make(map[string]vver) // value-number table: expr key -> holder
	memEpoch := 0                  // bumped by stores; part of load keys

	cur := func(r ir.VReg) vver { return vver{r, ver[r]} }

	// canon follows copy chains to the oldest still-valid source.
	canon := func(x vver) vver {
		for {
			src, ok := copies[x]
			if !ok {
				return x
			}
			// The source must still hold the same value.
			if cur(src.r) != src {
				return x
			}
			x = src
		}
	}

	for idx := range b.Instrs {
		in := &b.Instrs[idx]

		// 1. Copy-propagate operands.
		rewrite := func(r *ir.VReg) {
			if *r == ir.None {
				return
			}
			c := canon(cur(*r))
			if c.r != *r {
				*r = c.r
				stats.CopyProp++
			}
		}
		rewrite(&in.A)
		rewrite(&in.B)
		for i := range in.Args {
			rewrite(&in.Args[i])
		}

		// 2. Try constant folding.
		if folded := tryFold(in, consts, cur); folded {
			stats.Folded++
		} else if simplified := trySimplify(in, consts, cur); simplified {
			stats.Simplified++
		}

		// 3. CSE on pure instructions. A miss records the key after the
		// destination's version bump below, so the table entry refers to the
		// new value.
		recordKey := ""
		if isPure(in.Op) && in.Dst != ir.None {
			key := exprKey(in, cur, memEpoch)
			if holder, ok := exprs[key]; ok && cur(holder.r) == holder && holder.r != in.Dst {
				*in = ir.Instr{Op: ir.Mov, Kind: in.Kind, Dst: in.Dst, A: holder.r}
				stats.CSE++
			} else {
				recordKey = key
			}
		}

		// 4. Account for effects.
		if in.Op == ir.Store {
			memEpoch++
		}

		// 5. Version the definition and record facts about it.
		if dst := in.Def(); dst != ir.None {
			ver[dst]++
			dv := cur(dst)
			delete(consts, dv)
			delete(copies, dv)
			switch in.Op {
			case ir.ConstI:
				consts[dv] = constVal{i: in.ConstI}
			case ir.ConstF:
				consts[dv] = constVal{isF: true, f: in.ConstF}
			case ir.Mov:
				src := canon(cur(in.A))
				copies[dv] = src
				if cv, ok := consts[src]; ok {
					consts[dv] = cv
				}
			}
			if recordKey != "" {
				exprs[recordKey] = dv
			}
		}
	}
	return stats
}

// isPure reports whether the op computes a value without side effects and
// without reading mutable state other than its operands (Load reads memory
// and is handled via the memory epoch in its key).
func isPure(op ir.Op) bool {
	switch op {
	case ir.ConstI, ir.ConstF, ir.Add, ir.Sub, ir.Mul, ir.Neg, ir.Abs,
		ir.Min, ir.Max, ir.Sqrt, ir.Not, ir.CmpEQ, ir.CmpNE, ir.CmpLT,
		ir.CmpLE, ir.CmpGT, ir.CmpGE, ir.CvtIF, ir.CvtFI, ir.Load:
		return true
	}
	return false
}

func exprKey(in *ir.Instr, cur func(ir.VReg) vver, memEpoch int) string {
	a, b := vver{}, vver{}
	if in.A != ir.None {
		a = cur(in.A)
	}
	if in.B != ir.None {
		b = cur(in.B)
	}
	// Normalize commutative operand order.
	if in.Op.IsCommutative() {
		if b.r != ir.None && (a.r > b.r || (a.r == b.r && a.v > b.v)) {
			a, b = b, a
		}
	}
	key := fmt.Sprintf("%d|%d|%d.%d|%d.%d|%d|%g|%s", in.Op, in.Kind, a.r, a.v, b.r, b.v, in.ConstI, in.ConstF, in.Sym)
	if in.Op == ir.Load {
		key += fmt.Sprintf("|m%d", memEpoch)
	}
	return key
}

// tryFold replaces in with a constant when all operands are known constants
// and the operation cannot trap. It reports whether it folded.
func tryFold(in *ir.Instr, consts map[vver]constVal, cur func(ir.VReg) vver) bool {
	getC := func(r ir.VReg) (constVal, bool) {
		if r == ir.None {
			return constVal{}, false
		}
		cv, ok := consts[cur(r)]
		return cv, ok
	}

	setI := func(v int64) {
		*in = ir.Instr{Op: ir.ConstI, Kind: in.Kind, Dst: in.Dst, ConstI: v}
	}
	setF := func(v float64) {
		*in = ir.Instr{Op: ir.ConstF, Kind: types.Float, Dst: in.Dst, ConstF: v}
	}
	setB := func(v bool) {
		n := int64(0)
		if v {
			n = 1
		}
		*in = ir.Instr{Op: ir.ConstI, Kind: types.Bool, Dst: in.Dst, ConstI: n}
	}

	switch in.Op {
	case ir.Mov:
		if cv, ok := getC(in.A); ok {
			if cv.isF {
				setF(cv.f)
			} else {
				setI(cv.i)
			}
			return true
		}
	case ir.Neg:
		if cv, ok := getC(in.A); ok {
			if in.Kind == types.Float {
				setF(-cv.f)
			} else {
				setI(-cv.i)
			}
			return true
		}
	case ir.Abs:
		if cv, ok := getC(in.A); ok {
			if in.Kind == types.Float {
				f := cv.f
				if f < 0 {
					f = -f
				}
				setF(f)
			} else {
				v := cv.i
				if v < 0 {
					v = -v
				}
				setI(v)
			}
			return true
		}
	case ir.Not:
		if cv, ok := getC(in.A); ok {
			setB(cv.i == 0)
			return true
		}
	case ir.CvtIF:
		if cv, ok := getC(in.A); ok {
			setF(float64(cv.i))
			return true
		}
	case ir.CvtFI:
		if cv, ok := getC(in.A); ok {
			setI(int64(cv.f))
			return true
		}
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.Min, ir.Max:
		ca, okA := getC(in.A)
		cb, okB := getC(in.B)
		if !okA || !okB {
			return false
		}
		if in.Kind == types.Float {
			a, b := ca.f, cb.f
			switch in.Op {
			case ir.Add:
				setF(a + b)
			case ir.Sub:
				setF(a - b)
			case ir.Mul:
				setF(a * b)
			case ir.Div:
				setF(a / b)
			case ir.Min:
				if a < b {
					setF(a)
				} else {
					setF(b)
				}
			case ir.Max:
				if a > b {
					setF(a)
				} else {
					setF(b)
				}
			default:
				return false
			}
			return true
		}
		a, b := ca.i, cb.i
		switch in.Op {
		case ir.Add:
			setI(a + b)
		case ir.Sub:
			setI(a - b)
		case ir.Mul:
			setI(a * b)
		case ir.Div:
			if b == 0 {
				return false // preserve the runtime trap
			}
			setI(a / b)
		case ir.Rem:
			if b == 0 {
				return false
			}
			setI(a % b)
		case ir.Min:
			if a < b {
				setI(a)
			} else {
				setI(b)
			}
		case ir.Max:
			if a > b {
				setI(a)
			} else {
				setI(b)
			}
		}
		return true
	case ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
		ca, okA := getC(in.A)
		cb, okB := getC(in.B)
		if !okA || !okB {
			return false
		}
		var r bool
		if in.Kind == types.Float {
			a, b := ca.f, cb.f
			switch in.Op {
			case ir.CmpEQ:
				r = a == b
			case ir.CmpNE:
				r = a != b
			case ir.CmpLT:
				r = a < b
			case ir.CmpLE:
				r = a <= b
			case ir.CmpGT:
				r = a > b
			case ir.CmpGE:
				r = a >= b
			}
		} else {
			a, b := ca.i, cb.i
			switch in.Op {
			case ir.CmpEQ:
				r = a == b
			case ir.CmpNE:
				r = a != b
			case ir.CmpLT:
				r = a < b
			case ir.CmpLE:
				r = a <= b
			case ir.CmpGT:
				r = a > b
			case ir.CmpGE:
				r = a >= b
			}
		}
		setB(r)
		return true
	case ir.Sqrt:
		if cv, ok := getC(in.A); ok && cv.f >= 0 {
			*in = ir.Instr{Op: ir.ConstF, Kind: types.Float, Dst: in.Dst, ConstF: sqrtConst(cv.f)}
			return true
		}
	}
	return false
}

func sqrtConst(x float64) float64 {
	// Newton iteration; avoids importing math in the hot fold path for no
	// reason other than symmetry — precision matches math.Sqrt for our use.
	if x == 0 {
		return 0
	}
	z := x
	for i := 0; i < 64; i++ {
		nz := (z + x/z) / 2
		if nz == z {
			break
		}
		z = nz
	}
	return z
}

// trySimplify applies algebraic identities with one constant operand.
// Integer-only where float semantics (signed zero, NaN) would differ.
func trySimplify(in *ir.Instr, consts map[vver]constVal, cur func(ir.VReg) vver) bool {
	getC := func(r ir.VReg) (constVal, bool) {
		if r == ir.None {
			return constVal{}, false
		}
		cv, ok := consts[cur(r)]
		return cv, ok
	}
	toMov := func(src ir.VReg) {
		*in = ir.Instr{Op: ir.Mov, Kind: in.Kind, Dst: in.Dst, A: src}
	}
	if in.Kind != types.Int {
		return false
	}
	ca, okA := getC(in.A)
	cb, okB := getC(in.B)
	switch in.Op {
	case ir.Add:
		if okB && cb.i == 0 {
			toMov(in.A)
			return true
		}
		if okA && ca.i == 0 {
			toMov(in.B)
			return true
		}
	case ir.Sub:
		if okB && cb.i == 0 {
			toMov(in.A)
			return true
		}
	case ir.Mul:
		if okB && cb.i == 1 {
			toMov(in.A)
			return true
		}
		if okA && ca.i == 1 {
			toMov(in.B)
			return true
		}
		if (okB && cb.i == 0) || (okA && ca.i == 0) {
			*in = ir.Instr{Op: ir.ConstI, Kind: in.Kind, Dst: in.Dst}
			return true
		}
	case ir.Div:
		if okB && cb.i == 1 {
			toMov(in.A)
			return true
		}
	}
	return false
}

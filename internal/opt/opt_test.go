package opt

import (
	"math"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/types"
)

func lower(t *testing.T, src string) (map[string]*ir.Func, map[string]*ast.FuncDecl, *sem.Info) {
	t.Helper()
	var bag source.DiagBag
	m := parser.Parse("t.w2", []byte(src), &bag)
	info := sem.Check(m, &bag)
	if bag.HasErrors() {
		t.Fatalf("front-end errors:\n%s", bag.String())
	}
	funcs := make(map[string]*ir.Func)
	decls := make(map[string]*ast.FuncDecl)
	for _, s := range m.Sections {
		for _, fn := range s.Funcs {
			f, err := ir.Lower(fn, info)
			if err != nil {
				t.Fatalf("lower %s: %v", fn.Name, err)
			}
			funcs[fn.Name] = f
			decls[fn.Name] = fn
		}
	}
	return funcs, decls, info
}

func sec(body string) string { return "module m\nsection 1 {\n" + body + "\n}\n" }

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Set(i)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d, want 8", s.Count())
	}
	if !s.Has(64) || s.Has(2) {
		t.Error("Has wrong")
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 7 {
		t.Error("Clear wrong")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 1, 63, 65, 127, 128, 199}
	if len(got) != len(want) {
		t.Fatalf("ForEach got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	o := NewBitSet(200)
	o.Set(5)
	if !s.OrWith(o) || !s.Has(5) {
		t.Error("OrWith failed")
	}
	if s.OrWith(o) {
		t.Error("OrWith should report no change the second time")
	}
	s.AndNotWith(o)
	if s.Has(5) {
		t.Error("AndNotWith failed")
	}
}

func TestConstantFolding(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(): int {
    var a: int = 2 + 3 * 4;
    var b: int = (100 / 5) % 7;
    return a + b;
}
`))
	f := funcs["f"]
	Optimize(f)
	// Everything is constant: the function should reduce to materializing 20
	// (14 + 6) and returning it, with no arithmetic left.
	for _, op := range []ir.Op{ir.Add, ir.Mul, ir.Div, ir.Rem} {
		if n := countOp(f, op); n != 0 {
			t.Errorf("%s ops remaining after folding: %d\n%s", op, n, f)
		}
	}
	env := &ir.EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, nil)
	if err != nil || v.I != 20 {
		t.Errorf("f() = %d (%v), want 20", v.I, err)
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(): int {
    var z: int = 0;
    return 1 / z;
}
`))
	f := funcs["f"]
	Optimize(f)
	if countOp(f, ir.Div) != 1 {
		t.Errorf("division by constant zero must survive to trap at runtime:\n%s", f)
	}
	env := &ir.EvalEnv{Funcs: funcs}
	_, _, err := env.EvalFunc(f, nil)
	if err == nil {
		t.Error("expected division-by-zero trap")
	}
}

func TestCSE(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(a: float, b: float): float {
    return (a * b + 1.0) + (a * b + 1.0);
}
`))
	f := funcs["f"]
	before := countOp(f, ir.Mul)
	Optimize(f)
	after := countOp(f, ir.Mul)
	if before != 2 || after != 1 {
		t.Errorf("CSE: muls before=%d after=%d, want 2 then 1\n%s", before, after, f)
	}
	env := &ir.EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, []ir.EvalValue{ir.EvalFloat(2), ir.EvalFloat(3)})
	if err != nil || v.F != 14 {
		t.Errorf("f(2,3) = %g (%v), want 14", v.F, err)
	}
}

func TestCSERespectsRedefinition(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(a: int): int {
    var x: int = a * a;
    a = a + 1;
    var y: int = a * a;
    return x + y;
}
`))
	f := funcs["f"]
	Optimize(f)
	if countOp(f, ir.Mul) != 2 {
		t.Errorf("a*a after redefining a must not be CSE'd:\n%s", f)
	}
	env := &ir.EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, []ir.EvalValue{ir.EvalInt(3)})
	if err != nil || v.I != 9+16 {
		t.Errorf("f(3) = %d (%v), want 25", v.I, err)
	}
}

func TestLoadCSEAndStoreInvalidation(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(): int {
    var a: int[4];
    a[2] = 7;
    var x: int = a[2] + a[2];
    a[2] = 9;
    var y: int = a[2];
    return x * 100 + y;
}
`))
	f := funcs["f"]
	loadsBefore := countOp(f, ir.Load)
	Optimize(f)
	loadsAfter := countOp(f, ir.Load)
	if loadsBefore != 3 {
		t.Fatalf("expected 3 loads before, got %d", loadsBefore)
	}
	if loadsAfter != 2 {
		t.Errorf("duplicate load should be CSE'd but the post-store load kept: got %d loads\n%s", loadsAfter, f)
	}
	env := &ir.EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, nil)
	if err != nil || v.I != 1409 {
		t.Errorf("f() = %d (%v), want 1409", v.I, err)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(a: int): int {
    var unused: int = a * 37 + 4;
    var alsoUnused: float = float(a) * 2.5;
    return a + 1;
}
`))
	f := funcs["f"]
	st := Optimize(f)
	if st.DeadRemoved == 0 {
		t.Error("expected dead instructions to be removed")
	}
	if countOp(f, ir.Mul) != 0 || countOp(f, ir.CvtIF) != 0 {
		t.Errorf("dead computations survive:\n%s", f)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	funcs, _, _ := lower(t, `
module m (in xs: float[1], out ys: float[1])
section 1 {
    function helper(): int {
        send(Y, 1.0);
        return 5;
    }
    function f(): int {
        var unused: int = helper();
        var v: float;
        receive(X, v);
        var alsoUnused: float = v * 2.0;
        return 1;
    }
}
`)
	f := funcs["f"]
	Optimize(f)
	if countOp(f, ir.Call) != 1 {
		t.Errorf("call with side effects must be kept:\n%s", f)
	}
	if countOp(f, ir.Recv) != 1 {
		t.Errorf("receive must be kept (consumes queue input):\n%s", f)
	}
	if countOp(f, ir.Mul) != 0 {
		t.Errorf("pure computation on received value is dead and must go:\n%s", f)
	}
}

func TestBranchFolding(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(): int {
    if 2 > 1 {
        return 10;
    }
    return 20;
}
`))
	f := funcs["f"]
	Optimize(f)
	if countOp(f, ir.CondBr) != 0 {
		t.Errorf("constant branch not folded:\n%s", f)
	}
	env := &ir.EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, nil)
	if err != nil || v.I != 10 {
		t.Errorf("f() = %d (%v), want 10", v.I, err)
	}
}

func TestMergeStraightLine(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(a: int): int {
    var x: int = a + 1;
    if a > 0 {
        x = x * 2;
    }
    return x;
}
`))
	f := funcs["f"]
	before := len(f.Blocks)
	Optimize(f)
	if len(f.Blocks) >= before && before > 3 {
		t.Errorf("expected block merging to shrink the CFG: %d -> %d", before, len(f.Blocks))
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid after merging: %v", err)
	}
}

func TestAlgebraicSimplification(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(a: int): int {
    var zero: int = 0;
    var one: int = 1;
    return (a + zero) * one + (a - zero) * zero + a / one;
}
`))
	f := funcs["f"]
	Optimize(f)
	if n := countOp(f, ir.Mul); n != 0 {
		t.Errorf("multiplications by 0/1 must vanish, %d remain:\n%s", n, f)
	}
	if n := countOp(f, ir.Div); n != 0 {
		t.Errorf("division by 1 must vanish, %d remain:\n%s", n, f)
	}
	env := &ir.EvalEnv{Funcs: funcs}
	v, _, err := env.EvalFunc(f, []ir.EvalValue{ir.EvalInt(21)})
	if err != nil || v.I != 42 {
		t.Errorf("f(21) = %d (%v), want 42", v.I, err)
	}
}

func TestLivenessLoop(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(n: int): int {
    var s: int = 0;
    var i: int;
    for i = 0 to n {
        s = s + i;
    }
    return s;
}
`))
	f := funcs["f"]
	lv := ComputeLiveness(f)
	// The accumulator must be live around the back edge: find the loop and
	// check s is live-in at its header.
	loops := ir.NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(loops))
	}
	head := loops[0].Head
	liveInCount := lv.In[head].Count()
	if liveInCount < 2 { // at least i and s (and the bound temp)
		t.Errorf("expected >=2 live-in regs at loop header, got %d", liveInCount)
	}
}

func TestReachingDefs(t *testing.T) {
	funcs, _, _ := lower(t, sec(`
function f(a: int): int {
    var x: int = 1;
    if a > 0 {
        x = 2;
    }
    return x;
}
`))
	f := funcs["f"]
	rd := ComputeReachingDefs(f)
	// Find the block containing Ret; both defs of x must reach it.
	var retBlock *ir.Block
	var retReg ir.VReg
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.Ret {
				retBlock = b
				retReg = b.Instrs[i].A
			}
		}
	}
	if retBlock == nil {
		t.Fatal("no return found")
	}
	defs := rd.ReachingDefsOf(retBlock, retReg)
	if len(defs) < 2 {
		t.Errorf("both definitions of x should reach the return, got %d\n%s", len(defs), f)
	}
}

// TestOptimizePreservesSemantics is the key property: for a battery of
// programs, running the optimizer must not change results.
func TestOptimizePreservesSemantics(t *testing.T) {
	src := sec(`
function mix(a: int, b: int): int {
    var t1: int = a * b + a * b;
    var t2: int = t1 / 2;
    var r: int = 0;
    var i: int;
    for i = 0 to 7 {
        if (t2 + i) % 3 == 0 {
            r = r + i * 2;
        } else {
            r = r - 1;
        }
    }
    while r > 50 {
        r = r - 7;
    }
    return r + t2 * 0 + t1 * 1;
}
function fmath(x: float): float {
    var c: float = 2.0 * 3.0;
    var y: float = x * c + x * c;
    return sqrt(abs(y)) + min(y, 10.0) - max(-y, 0.5);
}
`)
	funcs, _, _ := lower(t, src)
	funcs2, _, _ := lower(t, src)
	for name := range funcs2 {
		st := Optimize(funcs2[name])
		if st.FinalInstrs >= funcs[name].NumInstrs() && name == "mix" {
			t.Errorf("%s: optimizer removed nothing (%d -> %d)", name, funcs[name].NumInstrs(), st.FinalInstrs)
		}
		if err := funcs2[name].Validate(); err != nil {
			t.Fatalf("%s invalid after optimization: %v", name, err)
		}
		if !kindsSane(funcs2[name]) {
			t.Errorf("%s: vreg kinds broken after optimization", name)
		}
	}

	for i := -5; i <= 5; i++ {
		for j := 1; j <= 3; j++ {
			e1 := &ir.EvalEnv{Funcs: funcs}
			e2 := &ir.EvalEnv{Funcs: funcs2}
			v1, _, err1 := e1.EvalFunc(funcs["mix"], []ir.EvalValue{ir.EvalInt(int64(i)), ir.EvalInt(int64(j))})
			v2, _, err2 := e2.EvalFunc(funcs2["mix"], []ir.EvalValue{ir.EvalInt(int64(i)), ir.EvalInt(int64(j))})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("mix(%d,%d): errs %v vs %v", i, j, err1, err2)
			}
			if err1 == nil && v1.I != v2.I {
				t.Errorf("mix(%d,%d): %d != %d after optimization", i, j, v1.I, v2.I)
			}
		}
		x := float64(i) * 0.7
		e1 := &ir.EvalEnv{Funcs: funcs}
		e2 := &ir.EvalEnv{Funcs: funcs2}
		v1, _, err1 := e1.EvalFunc(funcs["fmath"], []ir.EvalValue{ir.EvalFloat(x)})
		v2, _, err2 := e2.EvalFunc(funcs2["fmath"], []ir.EvalValue{ir.EvalFloat(x)})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("fmath(%g): errs %v vs %v", x, err1, err2)
		}
		if err1 == nil && math.Abs(v1.F-v2.F) > 1e-9 {
			t.Errorf("fmath(%g): %g != %g after optimization", x, v1.F, v2.F)
		}
	}
}

func TestSqrtConstMatchesMath(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 0.25, 100, 12345.678} {
		if got, want := sqrtConst(x), math.Sqrt(x); math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Errorf("sqrtConst(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestOptimizeStreamProgramPreservesIO(t *testing.T) {
	src := `
module m (in xs: float[6], out ys: float[6])
section 1 {
    function cell() {
        var i: int;
        var v: float;
        var k: float = 1.5 * 2.0;
        for i = 0 to 5 {
            receive(X, v);
            send(Y, v * k + 0.0 * v);
        }
    }
}
`
	funcs, _, _ := lower(t, src)
	funcs2, _, _ := lower(t, src)
	Optimize(funcs2["cell"])

	input := []ir.EvalValue{
		ir.EvalFloat(1), ir.EvalFloat(-2), ir.EvalFloat(3),
		ir.EvalFloat(0), ir.EvalFloat(5.5), ir.EvalFloat(-0.5),
	}
	e1 := &ir.EvalEnv{Funcs: funcs, In: append([]ir.EvalValue(nil), input...)}
	e2 := &ir.EvalEnv{Funcs: funcs2, In: append([]ir.EvalValue(nil), input...)}
	if _, _, err := e1.EvalFunc(funcs["cell"], nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e2.EvalFunc(funcs2["cell"], nil); err != nil {
		t.Fatal(err)
	}
	if len(e1.Out) != len(e2.Out) {
		t.Fatalf("output lengths differ: %d vs %d", len(e1.Out), len(e2.Out))
	}
	for i := range e1.Out {
		if e1.Out[i].AsFloat() != e2.Out[i].AsFloat() {
			t.Errorf("out[%d]: %g != %g", i, e1.Out[i].AsFloat(), e2.Out[i].AsFloat())
		}
	}
}

var _ = types.Int // keep types import for kindsSane references in this file

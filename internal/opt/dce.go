package opt

import (
	"repro/internal/ir"
	"repro/internal/types"
)

// EliminateDeadCode removes instructions whose results are never used and
// that have no side effects, using global liveness. It iterates to a fixed
// point (removing one instruction can kill the operands feeding it) and
// returns the number of instructions removed.
func EliminateDeadCode(f *ir.Func) int {
	removed := 0
	for {
		lv := ComputeLiveness(f)
		n := 0
		for _, b := range f.Blocks {
			dead := make([]bool, len(b.Instrs))
			lv.LiveAt(b, func(idx int, liveOut BitSet) {
				in := &b.Instrs[idx]
				if in.Op.HasSideEffects() || in.Op.IsTerminator() {
					return
				}
				if in.Dst == ir.None || !liveOut.Has(int(in.Dst)) {
					dead[idx] = true
				}
			})
			if !anyTrue(dead) {
				continue
			}
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				if dead[i] {
					n++
				} else {
					kept = append(kept, b.Instrs[i])
				}
			}
			b.Instrs = kept
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// SimplifyBranches folds conditional branches whose condition is a constant
// defined in the same block, and collapses CondBr with identical targets.
// It returns the number of simplifications and removes newly unreachable
// blocks.
func SimplifyBranches(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.CondBr {
			continue
		}
		if t.Then == t.Else {
			*t = ir.Instr{Op: ir.Jmp, Then: t.Then}
			n++
			continue
		}
		// Scan backward for the defining ConstI of the condition within the
		// block, stopping at any redefinition.
		for i := len(b.Instrs) - 2; i >= 0; i-- {
			in := &b.Instrs[i]
			if in.Def() == t.A {
				if in.Op == ir.ConstI {
					target := t.Else
					if in.ConstI != 0 {
						target = t.Then
					}
					*t = ir.Instr{Op: ir.Jmp, Then: target}
					n++
				}
				break
			}
		}
	}
	if n > 0 {
		f.RecomputeEdges()
		f.RemoveUnreachable()
	}
	return n
}

// MergeStraightLine merges a block into its unique successor when the
// successor has exactly one predecessor (jump threading for fallthrough
// chains produced by lowering). Returns the number of merges.
func MergeStraightLine(f *ir.Func) int {
	n := 0
	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.Jmp {
				continue
			}
			s := t.Then
			if s == b || len(s.Preds) != 1 || s == f.Entry() {
				continue
			}
			// Splice s's instructions in place of b's Jmp.
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
			s.Instrs = nil
			// Retarget: s is now empty; edges recomputed below.
			changed = true
			n++
			f.RecomputeEdges()
			f.RemoveUnreachable()
			break
		}
	}
	return n
}

// Stats aggregates everything the optimizer did to one function; the
// compile-cost model uses these counters as its work metric.
type Stats struct {
	Local       LocalStats
	DeadRemoved int
	Branches    int
	Merges      int
	Passes      int
	// FinalInstrs and FinalBlocks describe the optimized function.
	FinalInstrs int
	FinalBlocks int
}

// Optimize runs the full phase-2 pipeline on f to a fixed point (bounded by
// a small pass budget, as the 1989 compiler would).
func Optimize(f *ir.Func) Stats {
	var st Stats
	for pass := 0; pass < 4; pass++ {
		st.Passes++
		local := LocalOptimize(f)
		st.Local.Add(local)
		br := SimplifyBranches(f)
		st.Branches += br
		mg := MergeStraightLine(f)
		st.Merges += mg
		dead := EliminateDeadCode(f)
		st.DeadRemoved += dead
		if local == (LocalStats{}) && br == 0 && mg == 0 && dead == 0 {
			break
		}
	}
	st.FinalInstrs = f.NumInstrs()
	st.FinalBlocks = len(f.Blocks)
	return st
}

// kindsSane double-checks that every vreg still has a valid kind after
// optimization; used by tests.
func kindsSane(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, u := range in.Uses() {
				if f.KindOf(u) == types.Invalid {
					return false
				}
			}
		}
	}
	return true
}

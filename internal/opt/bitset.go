// Package opt implements compiler phase 2's optimizer: local optimizations
// (constant folding, copy propagation, common-subexpression elimination) and
// the global dataflow analyses (liveness, reaching definitions) that feed
// dead-code elimination and the phase-3 scheduler.
package opt

// BitSet is a dense bit set over small non-negative integers (virtual
// register numbers and instruction ids).
type BitSet []uint64

// NewBitSet returns a set able to hold values in [0, n).
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+63)/64)
}

// Set adds i to the set.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i from the set.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (s BitSet) Has(i int) bool {
	w := i / 64
	if w >= len(s) {
		return false
	}
	return s[w]&(1<<(uint(i)%64)) != 0
}

// OrWith adds all elements of o, reporting whether s changed.
func (s BitSet) OrWith(o BitSet) bool {
	changed := false
	for i := range o {
		if i >= len(s) {
			break
		}
		nv := s[i] | o[i]
		if nv != s[i] {
			s[i] = nv
			changed = true
		}
	}
	return changed
}

// Copy overwrites s with o.
func (s BitSet) Copy(o BitSet) {
	copy(s, o)
}

// AndNotWith removes all elements of o from s.
func (s BitSet) AndNotWith(o BitSet) {
	for i := range o {
		if i >= len(s) {
			break
		}
		s[i] &^= o[i]
	}
}

// Count returns the number of elements.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += popcount(w)
	}
	return n
}

// Clone returns an independent copy.
func (s BitSet) Clone() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// ForEach calls f for every element in ascending order.
func (s BitSet) ForEach(f func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := w & -w
			f(wi*64 + trailingZeros(w))
			w &^= b
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func trailingZeros(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

package des

import (
	"math"
	"testing"
)

func TestSleepOrdering(t *testing.T) {
	e := NewEngine()
	var trace []string
	var times []float64
	e.Go(func(p *Proc) {
		p.Sleep(10)
		trace = append(trace, "a")
		times = append(times, p.Now())
	})
	e.Go(func(p *Proc) {
		p.Sleep(5)
		trace = append(trace, "b")
		times = append(times, p.Now())
		p.Sleep(20)
		trace = append(trace, "c")
		times = append(times, p.Now())
	})
	e.Run()
	if len(trace) != 3 || trace[0] != "b" || trace[1] != "a" || trace[2] != "c" {
		t.Fatalf("trace = %v", trace)
	}
	want := []float64{5, 10, 25}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %g, want %g", i, times[i], want[i])
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	cpu := e.NewResource("cpu", 1)
	var finish []float64
	for i := 0; i < 3; i++ {
		e.Go(func(p *Proc) {
			p.Use(cpu, 10)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []float64{10, 20, 30}
	if len(finish) != 3 {
		t.Fatalf("finish = %v", finish)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("finish[%d] = %g, want %g (FIFO serialization)", i, finish[i], want[i])
		}
	}
	if u := cpu.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("utilization = %g, want 1", u)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r", 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		e.Go(func(p *Proc) {
			p.Use(r, 10)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	// Two run immediately, two queue: finish at 10,10,20,20.
	want := []float64{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("finish[%d] = %g, want %g", i, finish[i], want[i])
		}
	}
}

func TestAcquireReportsWait(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r", 1)
	var wait2 float64
	e.Go(func(p *Proc) {
		p.Use(r, 7)
	})
	e.Go(func(p *Proc) {
		wait2 = p.Acquire(r)
		p.Sleep(1)
		p.Release(r)
	})
	e.Run()
	if wait2 != 7 {
		t.Errorf("second process waited %g, want 7", wait2)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var parentDone float64
	wg := e.NewWaitGroup(3)
	for i := 0; i < 3; i++ {
		d := float64((i + 1) * 10)
		e.Go(func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Go(func(p *Proc) {
		p.Wait(wg)
		parentDone = p.Now()
	})
	e.Run()
	if parentDone != 30 {
		t.Errorf("parent resumed at %g, want 30", parentDone)
	}
}

func TestPoolFCFS(t *testing.T) {
	e := NewEngine()
	pool := e.NewPool(2)
	type rec struct {
		station int
		start   float64
	}
	var recs []rec
	for i := 0; i < 4; i++ {
		e.Go(func(p *Proc) {
			id, _ := p.AcquireStation(pool)
			recs = append(recs, rec{id, p.Now()})
			p.Sleep(10)
			p.ReleaseStation(pool, id)
		})
	}
	e.Run()
	if len(recs) != 4 {
		t.Fatalf("recs = %v", recs)
	}
	// First two get stations 0 and 1 at t=0; next two reuse them at t=10.
	if recs[0].start != 0 || recs[1].start != 0 || recs[2].start != 10 || recs[3].start != 10 {
		t.Errorf("start times wrong: %v", recs)
	}
	if recs[0].station == recs[1].station {
		t.Errorf("first two processes must get distinct stations: %v", recs)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []float64 {
		e := NewEngine()
		r := e.NewResource("r", 1)
		net := e.NewResource("net", 1)
		var out []float64
		for i := 0; i < 5; i++ {
			d := float64(i%3) + 1
			e.Go(func(p *Proc) {
				p.Sleep(d)
				p.Use(net, 2)
				p.Use(r, d*2)
				out = append(out, p.Now())
			})
		}
		e.Run()
		return out
	}
	a := runOnce()
	for k := 0; k < 10; k++ {
		b := runOnce()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("run %d differs at %d: %v vs %v", k, i, a, b)
			}
		}
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	e := NewEngine()
	r := e.NewResource("r", 1)
	e.Go(func(p *Proc) {
		p.Acquire(r)
		p.Acquire(r) // self-deadlock: never released
		p.Release(r)
	})
	e.Run()
}

func TestNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childTime float64
	e.Go(func(p *Proc) {
		p.Sleep(5)
		wg := e.NewWaitGroup(1)
		e.Go(func(c *Proc) {
			c.Sleep(7)
			childTime = c.Now()
			wg.Done()
		})
		p.Wait(wg)
		if p.Now() != 12 {
			t.Errorf("parent resumed at %g, want 12", p.Now())
		}
	})
	e.Run()
	if childTime != 12 {
		t.Errorf("child finished at %g, want 12", childTime)
	}
}

// Package des is a deterministic discrete-event simulation engine with
// goroutine-based processes. The simulated 1989 workstation cluster
// (internal/simhost) runs on it: simulated processes sleep in virtual time
// and contend for resources (CPUs, the shared Ethernet, the file server)
// with FIFO queueing.
//
// Determinism: exactly one process runs at a time; the engine hands control
// to the process woken by the earliest event (ties broken by schedule
// order) and waits until that process parks again before advancing the
// clock. Repeated runs produce identical timings.
package des

import (
	"container/heap"
	"fmt"
)

// Engine drives virtual time.
type Engine struct {
	now    float64
	seq    int
	events eventHeap
	parked chan struct{}
	active int
}

type event struct {
	t    float64
	seq  int
	wake chan struct{}
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Proc is a simulated process. All Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	eng  *Engine
	wake chan struct{}
}

// Go spawns a simulated process starting at the current virtual time.
func (e *Engine) Go(fn func(p *Proc)) {
	p := &Proc{eng: e, wake: make(chan struct{})}
	e.active++
	e.scheduleWake(0, p)
	go func() {
		<-p.wake // wait to be dispatched
		fn(p)
		e.active--
		e.parked <- struct{}{} // done; hand control back
	}()
}

func (e *Engine) scheduleWake(delay float64, p *Proc) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{t: e.now + delay, seq: e.seq, wake: p.wake})
}

// Run processes events until none remain. It panics if a process deadlocks
// (events exhausted while processes are still parked on resources).
func (e *Engine) Run() {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		ev.wake <- struct{}{} // resume the process...
		<-e.parked            // ...and wait until it parks again
	}
	if e.active > 0 {
		panic(fmt.Sprintf("des: %d processes still blocked with no pending events (deadlock)", e.active))
	}
}

// park gives control back to the engine and waits to be woken.
func (p *Proc) park() {
	p.eng.parked <- struct{}{}
	<-p.wake
}

// Sleep advances the process by d seconds of virtual time.
func (p *Proc) Sleep(d float64) {
	p.eng.scheduleWake(d, p)
	p.park()
}

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Resource is a FIFO server with fixed capacity (a CPU, the Ethernet
// segment, the file server disk). Waiters acquire strictly in request
// order.
type Resource struct {
	eng      *Engine
	Name     string
	capacity int
	inUse    int
	waiters  []*Proc
	// Busy accumulates capacity-seconds of use for utilization reporting.
	Busy     float64
	lastUsed float64
}

// NewResource creates a resource with the given capacity.
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{eng: e, Name: name, capacity: capacity}
}

func (r *Resource) account() {
	r.Busy += float64(r.inUse) * (r.eng.now - r.lastUsed)
	r.lastUsed = r.eng.now
}

// Acquire takes one unit, queueing FIFO when the resource is saturated.
// It returns the time spent waiting.
func (p *Proc) Acquire(r *Resource) float64 {
	start := p.Now()
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.account()
		r.inUse++
		return 0
	}
	r.waiters = append(r.waiters, p)
	p.park() // Release hands the unit over and wakes us
	return p.Now() - start
}

// Release returns one unit and hands it to the longest waiter, if any.
func (p *Proc) Release(r *Resource) {
	r.account()
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Ownership transfers directly; inUse stays constant.
		r.eng.scheduleWake(0, next)
		return
	}
	r.inUse--
}

// Use acquires r, sleeps d, releases, and returns the waiting time.
func (p *Proc) Use(r *Resource, d float64) float64 {
	w := p.Acquire(r)
	p.Sleep(d)
	p.Release(r)
	return w
}

// Utilization returns r's mean busy fraction over [0, now].
func (r *Resource) Utilization() float64 {
	if r.eng.now == 0 {
		return 0
	}
	r.account()
	return r.Busy / (r.eng.now * float64(r.capacity))
}

// WaitGroup synchronizes simulated processes: a parent waits until n
// children signal completion.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiting *Proc
}

// NewWaitGroup returns a wait group expecting count signals.
func (e *Engine) NewWaitGroup(count int) *WaitGroup {
	return &WaitGroup{eng: e, count: count}
}

// Done signals completion of one child.
func (w *WaitGroup) Done() {
	w.count--
	if w.count == 0 && w.waiting != nil {
		w.eng.scheduleWake(0, w.waiting)
		w.waiting = nil
	}
}

// Wait parks the calling process until the count reaches zero.
func (p *Proc) Wait(w *WaitGroup) {
	if w.count == 0 {
		return
	}
	if w.waiting != nil {
		panic("des: WaitGroup supports a single waiter")
	}
	w.waiting = p
	p.park()
}

// Pool hands out numbered stations (workstations) first-come-first-served.
type Pool struct {
	eng     *Engine
	free    []int
	waiters []*Proc
	granted map[*Proc]int
}

// NewPool creates a pool of n stations numbered 0..n-1.
func (e *Engine) NewPool(n int) *Pool {
	p := &Pool{eng: e, granted: make(map[*Proc]int)}
	for i := 0; i < n; i++ {
		p.free = append(p.free, i)
	}
	return p
}

// AcquireStation blocks until a station is free and returns its number and
// the time spent waiting.
func (p *Proc) AcquireStation(pool *Pool) (int, float64) {
	start := p.Now()
	if len(pool.free) > 0 && len(pool.waiters) == 0 {
		id := pool.free[0]
		pool.free = pool.free[1:]
		return id, 0
	}
	pool.waiters = append(pool.waiters, p)
	p.park()
	id := pool.granted[p]
	delete(pool.granted, p)
	return id, p.Now() - start
}

// ReleaseStation returns station id to the pool, handing it to the longest
// waiter if any.
func (p *Proc) ReleaseStation(pool *Pool, id int) {
	if len(pool.waiters) > 0 {
		next := pool.waiters[0]
		pool.waiters = pool.waiters[1:]
		pool.granted[next] = id
		pool.eng.scheduleWake(0, next)
		return
	}
	pool.free = append(pool.free, id)
}

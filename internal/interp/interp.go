// Package interp is a reference interpreter for checked W2 programs. It
// defines the observable semantics of the language and serves as the oracle
// for differential testing: a module compiled by the code generator and
// executed on the Warp array simulator must produce the same output streams
// as this interpreter.
package interp

import (
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/source"
	"repro/internal/types"
)

// Value is a W2 runtime value: int, float, or bool.
type Value struct {
	K types.Kind
	I int64
	F float64
	B bool
}

// IntVal, FloatVal, and BoolVal construct values.
func IntVal(v int64) Value     { return Value{K: types.Int, I: v} }
func FloatVal(v float64) Value { return Value{K: types.Float, F: v} }
func BoolVal(v bool) Value     { return Value{K: types.Bool, B: v} }

func (v Value) String() string {
	switch v.K {
	case types.Int:
		return fmt.Sprintf("%d", v.I)
	case types.Float:
		return fmt.Sprintf("%g", v.F)
	case types.Bool:
		return fmt.Sprintf("%t", v.B)
	}
	return "<invalid>"
}

// AsFloat returns the numeric value as float64 (ints are widened).
func (v Value) AsFloat() float64 {
	if v.K == types.Int {
		return float64(v.I)
	}
	return v.F
}

// RuntimeError is an execution error with a source position.
type RuntimeError struct {
	Pos source.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg) }

// Limits bounds interpretation so buggy programs terminate.
type Limits struct {
	// MaxSteps caps the number of executed statements (0 means the default).
	MaxSteps int
}

const defaultMaxSteps = 50_000_000

// Interp executes one section program of a checked module.
type Interp struct {
	info  *sem.Info
	steps int
	max   int

	in  []Value // X channel input stream (consumed from the front)
	out []Value // Y channel output stream
}

// RunSection executes the entry function of sec with the given X input
// stream and returns the Y output stream. The entry function must take no
// parameters.
func RunSection(info *sem.Info, sec *ast.Section, input []Value, lim Limits) ([]Value, error) {
	entry := sec.Entry()
	if entry == nil {
		return nil, fmt.Errorf("section %d has no functions", sec.Index)
	}
	if len(entry.Params) != 0 {
		return nil, fmt.Errorf("entry function %s of section %d must take no parameters", entry.Name, sec.Index)
	}
	max := lim.MaxSteps
	if max <= 0 {
		max = defaultMaxSteps
	}
	it := &Interp{info: info, max: max, in: append([]Value(nil), input...)}
	if _, err := it.call(entry, nil); err != nil {
		return nil, err
	}
	return it.out, nil
}

// RunModule executes all sections in declaration order as a pipeline: the
// module's X input feeds section 1; each section's Y output becomes the next
// section's X input; the final section's Y output is the module's result.
// This mirrors the Warp array, where sections occupy consecutive groups of
// cells.
func RunModule(m *ast.Module, info *sem.Info, input []Value, lim Limits) ([]Value, error) {
	data := input
	for _, sec := range m.Sections {
		out, err := RunSection(info, sec, data, lim)
		if err != nil {
			return nil, fmt.Errorf("section %d: %w", sec.Index, err)
		}
		data = out
	}
	return data, nil
}

// CallFunction invokes one function with scalar arguments, for unit-level
// differential tests. It uses fresh empty channels.
func CallFunction(info *sem.Info, fn *ast.FuncDecl, args []Value, lim Limits) (Value, []Value, error) {
	max := lim.MaxSteps
	if max <= 0 {
		max = defaultMaxSteps
	}
	it := &Interp{info: info, max: max}
	v, err := it.call(fn, args)
	return v, it.out, err
}

// CallFunctionIO invokes one function with scalar arguments and an X input
// stream, returning the result value and the Y output stream.
func CallFunctionIO(info *sem.Info, fn *ast.FuncDecl, args []Value, input []Value, lim Limits) (Value, []Value, error) {
	max := lim.MaxSteps
	if max <= 0 {
		max = defaultMaxSteps
	}
	it := &Interp{info: info, max: max, in: append([]Value(nil), input...)}
	v, err := it.call(fn, args)
	return v, it.out, err
}

// ---------------------------------------------------------------------------
// Execution

// frame is one function activation. Scalars live in vals; arrays in arrs as
// flat element slices.
type frame struct {
	vals map[*sem.Object]Value
	arrs map[*sem.Object][]Value
}

// control-flow signals
type signal int

const (
	sigNone signal = iota
	sigReturn
	sigBreak
	sigContinue
)

func (it *Interp) call(fn *ast.FuncDecl, args []Value) (Value, error) {
	locals := it.info.Locals[fn]
	fr := &frame{
		vals: make(map[*sem.Object]Value),
		arrs: make(map[*sem.Object][]Value),
	}
	// Bind parameters (they are always scalar) and zero-initialize locals.
	pi := 0
	for _, obj := range locals {
		switch t := obj.Type.(type) {
		case *types.Basic:
			if obj.Kind == sem.ParamObj {
				if pi >= len(args) {
					return Value{}, fmt.Errorf("function %s: missing argument for %s", fn.Name, obj.Name)
				}
				fr.vals[obj] = args[pi]
				pi++
			} else {
				fr.vals[obj] = zeroValue(t)
			}
		case *types.Array:
			elems := make([]Value, t.TotalLen())
			z := zeroValue(t.ScalarElem().(*types.Basic))
			for i := range elems {
				elems[i] = z
			}
			fr.arrs[obj] = elems
		}
	}
	ret, sig, err := it.block(fn.Body, fr)
	if err != nil {
		return Value{}, err
	}
	if sig == sigReturn {
		return ret, nil
	}
	return Value{}, nil
}

func zeroValue(t *types.Basic) Value {
	switch t.Kind {
	case types.Int:
		return IntVal(0)
	case types.Float:
		return FloatVal(0)
	case types.Bool:
		return BoolVal(false)
	}
	return Value{}
}

func (it *Interp) block(b *ast.Block, fr *frame) (Value, signal, error) {
	for _, s := range b.Stmts {
		v, sig, err := it.stmt(s, fr)
		if err != nil || sig != sigNone {
			return v, sig, err
		}
	}
	return Value{}, sigNone, nil
}

func (it *Interp) tick(pos source.Pos) error {
	it.steps++
	if it.steps > it.max {
		return &RuntimeError{Pos: pos, Msg: "step limit exceeded (infinite loop?)"}
	}
	return nil
}

func (it *Interp) stmt(s ast.Stmt, fr *frame) (Value, signal, error) {
	if err := it.tick(s.Pos()); err != nil {
		return Value{}, sigNone, err
	}
	switch s := s.(type) {
	case *ast.Block:
		return it.block(s, fr)
	case *ast.VarDecl:
		if s.Init != nil {
			v, err := it.expr(s.Init, fr)
			if err != nil {
				return Value{}, sigNone, err
			}
			obj := it.declObj(s)
			if obj != nil {
				fr.vals[obj] = v
			}
		}
		return Value{}, sigNone, nil
	case *ast.Assign:
		v, err := it.expr(s.RHS, fr)
		if err != nil {
			return Value{}, sigNone, err
		}
		return Value{}, sigNone, it.store(s.LHS, v, fr)
	case *ast.If:
		c, err := it.expr(s.Cond, fr)
		if err != nil {
			return Value{}, sigNone, err
		}
		if c.B {
			return it.block(s.Then, fr)
		}
		if s.Else != nil {
			return it.stmt(s.Else, fr)
		}
		return Value{}, sigNone, nil
	case *ast.While:
		for {
			c, err := it.expr(s.Cond, fr)
			if err != nil {
				return Value{}, sigNone, err
			}
			if !c.B {
				return Value{}, sigNone, nil
			}
			v, sig, err := it.block(s.Body, fr)
			if err != nil {
				return Value{}, sigNone, err
			}
			switch sig {
			case sigReturn:
				return v, sigReturn, nil
			case sigBreak:
				return Value{}, sigNone, nil
			}
			if err := it.tick(s.Pos()); err != nil {
				return Value{}, sigNone, err
			}
		}
	case *ast.For:
		return it.forStmt(s, fr)
	case *ast.Return:
		if s.Value == nil {
			return Value{}, sigReturn, nil
		}
		v, err := it.expr(s.Value, fr)
		return v, sigReturn, err
	case *ast.ExprStmt:
		_, err := it.expr(s.X, fr)
		return Value{}, sigNone, err
	case *ast.Receive:
		if len(it.in) == 0 {
			return Value{}, sigNone, &RuntimeError{Pos: s.Pos(), Msg: "receive on empty X channel"}
		}
		v := it.in[0]
		it.in = it.in[1:]
		// Convert channel word to the target's type.
		v = convertChan(v, s.LHS.Type())
		return Value{}, sigNone, it.store(s.LHS, v, fr)
	case *ast.Send:
		v, err := it.expr(s.Value, fr)
		if err != nil {
			return Value{}, sigNone, err
		}
		it.out = append(it.out, v)
		return Value{}, sigNone, nil
	case *ast.Break:
		return Value{}, sigBreak, nil
	case *ast.Continue:
		return Value{}, sigContinue, nil
	}
	return Value{}, sigNone, &RuntimeError{Pos: s.Pos(), Msg: fmt.Sprintf("unknown statement %T", s)}
}

// convertChan adapts a channel word to the receiving variable's type. The
// Warp queues carry raw 32-bit words; the compiler knows statically whether
// a queue transfer is an int or a float, so the interpreter converts
// numerically.
func convertChan(v Value, t types.Type) Value {
	b, ok := t.(*types.Basic)
	if !ok {
		return v
	}
	switch b.Kind {
	case types.Int:
		if v.K == types.Float {
			return IntVal(int64(v.F))
		}
	case types.Float:
		if v.K == types.Int {
			return FloatVal(float64(v.I))
		}
	}
	return v
}

func (it *Interp) forStmt(s *ast.For, fr *frame) (Value, signal, error) {
	lo, err := it.expr(s.Lo, fr)
	if err != nil {
		return Value{}, sigNone, err
	}
	hi, err := it.expr(s.Hi, fr)
	if err != nil {
		return Value{}, sigNone, err
	}
	step := int64(1)
	if s.Step != nil {
		sv, err := it.expr(s.Step, fr)
		if err != nil {
			return Value{}, sigNone, err
		}
		step = sv.I
		if step == 0 {
			return Value{}, sigNone, &RuntimeError{Pos: s.Step.Pos(), Msg: "loop step is zero"}
		}
	}
	obj := it.info.Uses[s.Var]
	if obj == nil {
		return Value{}, sigNone, &RuntimeError{Pos: s.Var.Pos(), Msg: "unresolved loop variable"}
	}
	i := lo.I
	for ; (step > 0 && i <= hi.I) || (step < 0 && i >= hi.I); i += step {
		fr.vals[obj] = IntVal(i)
		v, sig, err := it.block(s.Body, fr)
		if err != nil {
			return Value{}, sigNone, err
		}
		switch sig {
		case sigReturn:
			return v, sigReturn, nil
		case sigBreak:
			return Value{}, sigNone, nil
		}
		if err := it.tick(s.Pos()); err != nil {
			return Value{}, sigNone, err
		}
	}
	// On normal exit the loop variable holds the first value that failed
	// the bound test (matching the compiled code, which increments the
	// variable in place); after break it keeps the breaking iteration's
	// value.
	fr.vals[obj] = IntVal(i)
	return Value{}, sigNone, nil
}

// declObj finds the object for a var declaration in the current function's
// locals table.
func (it *Interp) declObj(d *ast.VarDecl) *sem.Object {
	for _, objs := range it.info.Locals {
		for _, o := range objs {
			if o.Decl == d {
				return o
			}
		}
	}
	return nil
}

func (it *Interp) store(lhs ast.Expr, v Value, fr *frame) error {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := it.info.Uses[lhs]
		if obj == nil {
			return &RuntimeError{Pos: lhs.Pos(), Msg: "unresolved identifier " + lhs.Name}
		}
		fr.vals[obj] = v
		return nil
	case *ast.IndexExpr:
		obj, off, err := it.flatIndex(lhs, fr)
		if err != nil {
			return err
		}
		fr.arrs[obj][off] = v
		return nil
	}
	return &RuntimeError{Pos: lhs.Pos(), Msg: "bad assignment target"}
}

// flatIndex resolves a (possibly nested) index expression to the array
// object and the flat element offset, with bounds checking.
func (it *Interp) flatIndex(e *ast.IndexExpr, fr *frame) (*sem.Object, int, error) {
	// Collect indices innermost-last.
	var idxs []ast.Expr
	x := ast.Expr(e)
	for {
		ie, ok := x.(*ast.IndexExpr)
		if !ok {
			break
		}
		idxs = append([]ast.Expr{ie.Index}, idxs...)
		x = ie.X
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, 0, &RuntimeError{Pos: e.Pos(), Msg: "indexed expression is not a variable"}
	}
	obj := it.info.Uses[id]
	if obj == nil {
		return nil, 0, &RuntimeError{Pos: id.Pos(), Msg: "unresolved identifier " + id.Name}
	}
	arr, ok := obj.Type.(*types.Array)
	if !ok {
		return nil, 0, &RuntimeError{Pos: e.Pos(), Msg: "indexing non-array " + id.Name}
	}
	// Walk dimensions outermost-first.
	off := 0
	t := types.Type(arr)
	for _, ie := range idxs {
		at, ok := t.(*types.Array)
		if !ok {
			return nil, 0, &RuntimeError{Pos: ie.Pos(), Msg: "too many indices on " + id.Name}
		}
		iv, err := it.expr(ie, fr)
		if err != nil {
			return nil, 0, err
		}
		if iv.I < 0 || iv.I >= int64(at.Len) {
			return nil, 0, &RuntimeError{Pos: ie.Pos(),
				Msg: fmt.Sprintf("index %d out of range [0, %d) on %s", iv.I, at.Len, id.Name)}
		}
		stride := 1
		if inner, ok := at.Elem.(*types.Array); ok {
			stride = inner.TotalLen()
		}
		off += int(iv.I) * stride
		t = at.Elem
	}
	if _, stillArray := t.(*types.Array); stillArray {
		return nil, 0, &RuntimeError{Pos: e.Pos(), Msg: "partial indexing of " + id.Name + " yields an array"}
	}
	return obj, off, nil
}

func (it *Interp) expr(e ast.Expr, fr *frame) (Value, error) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := it.info.Uses[e]
		if obj == nil {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "unresolved identifier " + e.Name}
		}
		if v, ok := fr.vals[obj]; ok {
			return v, nil
		}
		return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "array " + e.Name + " used as scalar"}
	case *ast.IntLit:
		return IntVal(e.Value), nil
	case *ast.FloatLit:
		return FloatVal(e.Value), nil
	case *ast.BoolLit:
		return BoolVal(e.Value), nil
	case *ast.BinaryExpr:
		return it.binary(e, fr)
	case *ast.UnaryExpr:
		x, err := it.expr(e.X, fr)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case source.SUB:
			if x.K == types.Int {
				return IntVal(-x.I), nil
			}
			return FloatVal(-x.F), nil
		case source.NOT:
			return BoolVal(!x.B), nil
		}
		return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "unknown unary operator"}
	case *ast.CallExpr:
		return it.callExpr(e, fr)
	case *ast.IndexExpr:
		obj, off, err := it.flatIndex(e, fr)
		if err != nil {
			return Value{}, err
		}
		return fr.arrs[obj][off], nil
	}
	return Value{}, &RuntimeError{Pos: e.Pos(), Msg: fmt.Sprintf("unknown expression %T", e)}
}

func (it *Interp) binary(e *ast.BinaryExpr, fr *frame) (Value, error) {
	// Short-circuit operators evaluate the right operand lazily.
	if e.Op == source.LAND || e.Op == source.LOR {
		x, err := it.expr(e.X, fr)
		if err != nil {
			return Value{}, err
		}
		if e.Op == source.LAND && !x.B {
			return BoolVal(false), nil
		}
		if e.Op == source.LOR && x.B {
			return BoolVal(true), nil
		}
		return it.expr(e.Y, fr)
	}

	x, err := it.expr(e.X, fr)
	if err != nil {
		return Value{}, err
	}
	y, err := it.expr(e.Y, fr)
	if err != nil {
		return Value{}, err
	}

	isInt := x.K == types.Int && y.K == types.Int
	switch e.Op {
	case source.ADD:
		if isInt {
			return IntVal(x.I + y.I), nil
		}
		return FloatVal(x.AsFloat() + y.AsFloat()), nil
	case source.SUB:
		if isInt {
			return IntVal(x.I - y.I), nil
		}
		return FloatVal(x.AsFloat() - y.AsFloat()), nil
	case source.MUL:
		if isInt {
			return IntVal(x.I * y.I), nil
		}
		return FloatVal(x.AsFloat() * y.AsFloat()), nil
	case source.QUO:
		if isInt {
			if y.I == 0 {
				return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "integer division by zero"}
			}
			return IntVal(x.I / y.I), nil
		}
		return FloatVal(x.AsFloat() / y.AsFloat()), nil
	case source.REM:
		if y.I == 0 {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "integer modulo by zero"}
		}
		return IntVal(x.I % y.I), nil
	case source.EQL:
		if x.K == types.Bool {
			return BoolVal(x.B == y.B), nil
		}
		if isInt {
			return BoolVal(x.I == y.I), nil
		}
		return BoolVal(x.AsFloat() == y.AsFloat()), nil
	case source.NEQ:
		if x.K == types.Bool {
			return BoolVal(x.B != y.B), nil
		}
		if isInt {
			return BoolVal(x.I != y.I), nil
		}
		return BoolVal(x.AsFloat() != y.AsFloat()), nil
	case source.LSS:
		if isInt {
			return BoolVal(x.I < y.I), nil
		}
		return BoolVal(x.AsFloat() < y.AsFloat()), nil
	case source.LEQ:
		if isInt {
			return BoolVal(x.I <= y.I), nil
		}
		return BoolVal(x.AsFloat() <= y.AsFloat()), nil
	case source.GTR:
		if isInt {
			return BoolVal(x.I > y.I), nil
		}
		return BoolVal(x.AsFloat() > y.AsFloat()), nil
	case source.GEQ:
		if isInt {
			return BoolVal(x.I >= y.I), nil
		}
		return BoolVal(x.AsFloat() >= y.AsFloat()), nil
	}
	return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "unknown binary operator " + e.Op.String()}
}

func (it *Interp) callExpr(e *ast.CallExpr, fr *frame) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := it.expr(a, fr)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}

	if e.Builtin != "" {
		return evalBuiltin(e, args)
	}

	obj := it.info.Uses[e.Fun]
	if obj == nil {
		return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "unresolved function " + e.Fun.Name}
	}
	fn, ok := obj.Decl.(*ast.FuncDecl)
	if !ok {
		return Value{}, &RuntimeError{Pos: e.Pos(), Msg: e.Fun.Name + " is not a function"}
	}
	return it.call(fn, args)
}

func evalBuiltin(e *ast.CallExpr, args []Value) (Value, error) {
	switch e.Builtin {
	case "sqrt":
		x := args[0].AsFloat()
		if x < 0 {
			return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "sqrt of negative value"}
		}
		return FloatVal(math.Sqrt(x)), nil
	case "abs":
		if args[0].K == types.Int {
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return IntVal(v), nil
		}
		return FloatVal(math.Abs(args[0].F)), nil
	case "min":
		if args[0].K == types.Int {
			if args[0].I < args[1].I {
				return args[0], nil
			}
			return args[1], nil
		}
		return FloatVal(math.Min(args[0].F, args[1].F)), nil
	case "max":
		if args[0].K == types.Int {
			if args[0].I > args[1].I {
				return args[0], nil
			}
			return args[1], nil
		}
		return FloatVal(math.Max(args[0].F, args[1].F)), nil
	case "float":
		return FloatVal(args[0].AsFloat()), nil
	case "int":
		if args[0].K == types.Int {
			return args[0], nil
		}
		return IntVal(int64(args[0].F)), nil
	}
	return Value{}, &RuntimeError{Pos: e.Pos(), Msg: "unknown builtin " + e.Builtin}
}

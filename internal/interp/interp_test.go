package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

func compile(t *testing.T, src string) (*ast.Module, *sem.Info) {
	t.Helper()
	var bag source.DiagBag
	m := parser.Parse("t.w2", []byte(src), &bag)
	info := sem.Check(m, &bag)
	if bag.HasErrors() {
		t.Fatalf("front-end errors:\n%s", bag.String())
	}
	return m, info
}

func callFn(t *testing.T, src, name string, args ...Value) Value {
	t.Helper()
	m, info := compile(t, src)
	var fn *ast.FuncDecl
	for _, sec := range m.Sections {
		for _, f := range sec.Funcs {
			if f.Name == name {
				fn = f
			}
		}
	}
	if fn == nil {
		t.Fatalf("function %s not found", name)
	}
	v, _, err := CallFunction(info, fn, args, Limits{})
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	src := `
module m
section 1 {
    function f(a: int, b: int): int {
        return (a + b) * (a - b) / 2 + a % b;
    }
}
`
	got := callFn(t, src, "f", IntVal(7), IntVal(3))
	want := (7+3)*(7-3)/2 + 7%3
	if got.I != int64(want) {
		t.Errorf("f(7,3) = %d, want %d", got.I, want)
	}
}

func TestFloatMath(t *testing.T) {
	src := `
module m
section 1 {
    function f(x: float): float {
        return sqrt(x * x + 3.0) - abs(-x) + max(x, 2.0) + min(x, 1.0);
    }
}
`
	x := 2.5
	got := callFn(t, src, "f", FloatVal(x))
	want := math.Sqrt(x*x+3.0) - math.Abs(-x) + math.Max(x, 2.0) + math.Min(x, 1.0)
	if math.Abs(got.F-want) > 1e-12 {
		t.Errorf("f(%g) = %g, want %g", x, got.F, want)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
module m
section 1 {
    function collatzSteps(n: int): int {
        var steps: int = 0;
        while n != 1 {
            if n % 2 == 0 {
                n = n / 2;
            } else {
                n = 3 * n + 1;
            }
            steps = steps + 1;
        }
        return steps;
    }
}
`
	got := callFn(t, src, "collatzSteps", IntVal(27))
	if got.I != 111 {
		t.Errorf("collatzSteps(27) = %d, want 111", got.I)
	}
}

func TestForLoopStepAndBreakContinue(t *testing.T) {
	src := `
module m
section 1 {
    function f(): int {
        var s: int = 0;
        var i: int;
        for i = 0 to 20 step 2 {
            if i == 14 {
                break;
            }
            if i % 3 == 0 {
                continue;
            }
            s = s + i;
        }
        return s;
    }
}
`
	// i: 0(skip) 2 4 6(skip) 8 10 12(skip) 14(break) => 2+4+8+10 = 24
	got := callFn(t, src, "f")
	if got.I != 24 {
		t.Errorf("f() = %d, want 24", got.I)
	}
}

func TestNegativeStep(t *testing.T) {
	src := `
module m
section 1 {
    function f(): int {
        var s: int = 0;
        var i: int;
        for i = 5 to 1 step -1 {
            s = s * 10 + i;
        }
        return s;
    }
}
`
	got := callFn(t, src, "f")
	if got.I != 54321 {
		t.Errorf("f() = %d, want 54321", got.I)
	}
}

func TestArrays(t *testing.T) {
	src := `
module m
section 1 {
    function f(n: int): int {
        var fib: int[30];
        var i: int;
        fib[0] = 0;
        fib[1] = 1;
        for i = 2 to n {
            fib[i] = fib[i - 1] + fib[i - 2];
        }
        return fib[n];
    }
}
`
	got := callFn(t, src, "f", IntVal(20))
	if got.I != 6765 {
		t.Errorf("fib(20) = %d, want 6765", got.I)
	}
}

func TestMultiDimArrayMatMul(t *testing.T) {
	src := `
module m
section 1 {
    function f(): float {
        var a: float[3][3];
        var b: float[3][3];
        var c: float[3][3];
        var i: int; var j: int; var k: int;
        for i = 0 to 2 {
            for j = 0 to 2 {
                a[i][j] = float(i * 3 + j);
                b[i][j] = float(i * 3 + j + 1);
                c[i][j] = 0.0;
            }
        }
        for i = 0 to 2 {
            for j = 0 to 2 {
                for k = 0 to 2 {
                    c[i][j] = c[i][j] + a[i][k] * b[k][j];
                }
            }
        }
        return c[1][2];
    }
}
`
	// a = [[0..8]] row major, b = a+1; c[1][2] = sum_k a[1][k]*b[k][2]
	want := 3.0*3.0 + 4.0*6.0 + 5.0*9.0
	got := callFn(t, src, "f")
	if got.F != want {
		t.Errorf("c[1][2] = %g, want %g", got.F, want)
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of && must not happen when left is false.
	src := `
module m
section 1 {
    function f(x: int): bool {
        return x != 0 && 10 / x > 2;
    }
    function g(x: int): int {
        if f(x) {
            return 1;
        }
        return 0;
    }
}
`
	if got := callFn(t, src, "g", IntVal(0)); got.I != 0 {
		t.Errorf("g(0) = %d, want 0 (short circuit failed)", got.I)
	}
	if got := callFn(t, src, "g", IntVal(3)); got.I != 1 {
		t.Errorf("g(3) = %d, want 1", got.I)
	}
}

func TestFunctionCallsWithinSection(t *testing.T) {
	src := `
module m
section 1 {
    function square(x: float): float { return x * x; }
    function norm(a: float, b: float): float { return sqrt(square(a) + square(b)); }
    function f(): float { return norm(3.0, 4.0); }
}
`
	got := callFn(t, src, "f")
	if math.Abs(got.F-5.0) > 1e-12 {
		t.Errorf("norm(3,4) = %g, want 5", got.F)
	}
}

func TestRunSectionStreams(t *testing.T) {
	src := `
module m (in xs: float[4], out ys: float[4])
section 1 {
    function cell() {
        var i: int;
        var v: float;
        for i = 0 to 3 {
            receive(X, v);
            send(Y, v * 2.0 + 1.0);
        }
    }
}
`
	m, info := compile(t, src)
	in := []Value{FloatVal(1), FloatVal(2), FloatVal(3), FloatVal(4)}
	out, err := RunSection(info, m.Sections[0], in, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 7, 9}
	if len(out) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(out), len(want))
	}
	for i, w := range want {
		if out[i].F != w {
			t.Errorf("out[%d] = %g, want %g", i, out[i].F, w)
		}
	}
}

func TestRunModulePipeline(t *testing.T) {
	src := `
module pipe (in xs: float[3], out ys: float[3])
section 1 {
    function cell1() {
        var i: int;
        var v: float;
        for i = 0 to 2 {
            receive(X, v);
            send(Y, v + 10.0);
        }
    }
}
section 2 {
    function cell2() {
        var i: int;
        var v: float;
        for i = 0 to 2 {
            receive(X, v);
            send(Y, v * 3.0);
        }
    }
}
`
	m, info := compile(t, src)
	in := []Value{FloatVal(1), FloatVal(2), FloatVal(3)}
	out, err := RunModule(m, info, in, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{33, 36, 39}
	for i, w := range want {
		if out[i].F != w {
			t.Errorf("out[%d] = %g, want %g", i, out[i].F, w)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ name, body, wantSub string }{
		{"div zero", `function f(): int { var z: int = 0; return 1 / z; }`, "division by zero"},
		{"mod zero", `function f(): int { var z: int = 0; return 1 % z; }`, "modulo by zero"},
		{"oob", `function f(): int { var a: int[3]; var i: int = 5; return a[i]; }`, "out of range"},
		{"neg index", `function f(): int { var a: int[3]; var i: int = -1; return a[i]; }`, "out of range"},
		{"sqrt negative", `function f(): float { return sqrt(-1.0); }`, "negative"},
		{"empty receive", `function f() { var v: float; receive(X, v); }`, "empty X channel"},
		{"infinite loop", `function f() { while true { var x: int; x = 1; } }`, "step limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := "module m\nsection 1 {\n" + c.body + "\n}\n"
			m, info := compile(t, src)
			fn := m.Sections[0].Funcs[0]
			_, _, err := CallFunction(info, fn, nil, Limits{MaxSteps: 10000})
			if err == nil {
				t.Fatal("expected runtime error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestIntFloatConversions(t *testing.T) {
	src := `
module m
section 1 {
    function f(): int {
        var x: float = 3.9;
        return int(x) * 10 + int(-x);
    }
}
`
	// int() truncates toward zero: 3*10 + (-3) = 27
	got := callFn(t, src, "f")
	if got.I != 27 {
		t.Errorf("f() = %d, want 27", got.I)
	}
}

func TestReceiveIntoIntConverts(t *testing.T) {
	src := `
module m (in xs: float[2], out ys: float[2])
section 1 {
    function cell() {
        var n: int;
        var i: int;
        for i = 0 to 1 {
            receive(X, n);
            send(Y, n * 2);
        }
    }
}
`
	m, info := compile(t, src)
	out, err := RunSection(info, m.Sections[0], []Value{FloatVal(2.7), FloatVal(3.2)}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != 4 || out[1].I != 6 {
		t.Errorf("got %v, want [4 6]", out)
	}
}

func TestZeroInitialization(t *testing.T) {
	src := `
module m
section 1 {
    function f(): float {
        var x: float;
        var a: float[5];
        var i: int;
        return x + a[3] + float(i);
    }
}
`
	got := callFn(t, src, "f")
	if got.F != 0 {
		t.Errorf("uninitialized storage should be zero, got %g", got.F)
	}
}

package fcache

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"time"

	"repro/internal/sched"
)

// Cost-sample persistence: the scheduler's observed (function shape →
// measured seconds) samples live in the disk tier's directory as one record,
// so the self-tuning cost model survives restarts alongside the objects it
// schedules. The file reuses the object tier's checksummed diskRecord framing
// but is named outside the o-*.wfc namespace, so the tier's scan, index, and
// LRU eviction never touch it: eviction pressure on objects cannot throw the
// estimator's memory away.
const (
	costSamplesFile = "cost-samples.wfc"
	costSamplesKey  = "cost-samples/v1"
)

// CostSampleWindow bounds how many samples persist: enough to cover several
// large modules, small enough that the fit stays responsive to drift.
const CostSampleWindow = 512

// CostSamples loads the persisted cost-sample window. It returns nil when no
// disk tier is attached, the record does not exist yet, or the record is
// corrupt — a corrupt record is deleted and counted in Stats.DiskErrors, and
// the caller falls back to the static cost model. Cache trouble must never
// fail a compilation, so there is no error return.
func (c *Cache) CostSamples() []sched.CostSample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return nil
	}
	path := filepath.Join(d.dir, costSamplesFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // no samples recorded yet
	}
	corrupt := func() []sched.CostSample {
		os.Remove(path)
		c.mu.Lock()
		c.stats.DiskErrors++
		c.mu.Unlock()
		return nil
	}
	key, payload, err := DecodeRecord(data)
	if err != nil || key != costSamplesKey {
		return corrupt()
	}
	var samples []sched.CostSample
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&samples); err != nil {
		return corrupt()
	}
	return samples
}

// costModelMemo caches the fitted cost model for the daemon's lifetime,
// keyed on the samples record's stat. One daemon serves many jobs off one
// cache, so the memo turns the per-job "read 512 samples, regress, rank"
// into a stat call whenever nothing changed; PutCostSamples refreshes it
// in place so the next job sees the updated fit without touching disk.
type costModelMemo struct {
	valid   bool
	size    int64
	mtime   time.Time
	model   sched.Model
	samples []sched.CostSample
	fits    int64 // how many times Fit actually ran (test/diagnostic hook)
}

// FittedCostModel returns the scheduler cost model fitted over the
// persisted sample window plus a private copy of the window itself,
// memoized on the record file's (size, mtime). An external writer that
// lands between the stat and the read can leave the memo one write stale;
// the next call's stat catches it — samples are a scheduling hint, so a
// briefly stale fit is harmless. Nil cache or no disk tier yields the
// static model, like CostSamples.
func (c *Cache) FittedCostModel() (sched.Model, []sched.CostSample) {
	if c == nil {
		return sched.Fit(nil), nil
	}
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return sched.Fit(nil), nil
	}
	st, err := os.Stat(filepath.Join(d.dir, costSamplesFile))
	if err != nil {
		return sched.Fit(nil), nil // no samples recorded yet
	}
	c.mu.Lock()
	if c.model.valid && c.model.size == st.Size() && c.model.mtime.Equal(st.ModTime()) {
		m := c.model.model
		s := append([]sched.CostSample(nil), c.model.samples...)
		c.mu.Unlock()
		return m, s
	}
	c.mu.Unlock()
	samples := c.CostSamples() // full checksummed read; handles corruption
	model := sched.Fit(samples)
	c.memoizeModel(st, model, samples)
	return model, append([]sched.CostSample(nil), samples...)
}

// ModelFitCount reports how many times this cache actually ran the cost
// fit (as opposed to serving the memo) — a diagnostic for tests.
func (c *Cache) ModelFitCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.model.fits
}

// memoizeModel installs a freshly fitted model. The memo keeps its own
// copy of the sample slice: callers of FittedCostModel append observed
// samples to what they got back, and PutCostSamples truncates in place —
// neither may alias the memo's backing array.
func (c *Cache) memoizeModel(st os.FileInfo, model sched.Model, samples []sched.CostSample) {
	c.mu.Lock()
	c.model = costModelMemo{
		valid:   true,
		size:    st.Size(),
		mtime:   st.ModTime(),
		model:   model,
		samples: append([]sched.CostSample(nil), samples...),
		fits:    c.model.fits + 1,
	}
	c.mu.Unlock()
}

// PutCostSamples persists the sample window (truncated to the most recent
// CostSampleWindow entries), replacing any previous record via the disk
// tier's tmp+rename protocol so readers only ever observe complete records.
// A nil cache or one without a disk tier is a silent no-op: samples are a
// scheduling hint, not a correctness artifact.
func (c *Cache) PutCostSamples(samples []sched.CostSample) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return nil
	}
	if len(samples) > CostSampleWindow {
		samples = samples[len(samples)-CostSampleWindow:]
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(samples); err != nil {
		return err
	}
	data, err := EncodeRecord(costSamplesKey, payload.Bytes())
	if err != nil {
		return err
	}
	path := filepath.Join(d.dir, costSamplesFile)
	if err := atomicWrite(d.dir, path, data); err != nil {
		return err
	}
	// Refresh the memo eagerly: the writer already holds the trimmed window
	// in memory, and re-fitting ~CostSampleWindow samples is microseconds —
	// the next FittedCostModel call is then a pure stat hit.
	if st, err := os.Stat(path); err == nil {
		c.memoizeModel(st, sched.Fit(samples), samples)
	}
	return nil
}

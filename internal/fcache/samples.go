package fcache

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"

	"repro/internal/sched"
)

// Cost-sample persistence: the scheduler's observed (function shape →
// measured seconds) samples live in the disk tier's directory as one record,
// so the self-tuning cost model survives restarts alongside the objects it
// schedules. The file reuses the object tier's checksummed diskRecord framing
// but is named outside the o-*.wfc namespace, so the tier's scan, index, and
// LRU eviction never touch it: eviction pressure on objects cannot throw the
// estimator's memory away.
const (
	costSamplesFile = "cost-samples.wfc"
	costSamplesKey  = "cost-samples/v1"
)

// CostSampleWindow bounds how many samples persist: enough to cover several
// large modules, small enough that the fit stays responsive to drift.
const CostSampleWindow = 512

// CostSamples loads the persisted cost-sample window. It returns nil when no
// disk tier is attached, the record does not exist yet, or the record is
// corrupt — a corrupt record is deleted and counted in Stats.DiskErrors, and
// the caller falls back to the static cost model. Cache trouble must never
// fail a compilation, so there is no error return.
func (c *Cache) CostSamples() []sched.CostSample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return nil
	}
	path := filepath.Join(d.dir, costSamplesFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // no samples recorded yet
	}
	corrupt := func() []sched.CostSample {
		os.Remove(path)
		c.mu.Lock()
		c.stats.DiskErrors++
		c.mu.Unlock()
		return nil
	}
	key, payload, err := DecodeRecord(data)
	if err != nil || key != costSamplesKey {
		return corrupt()
	}
	var samples []sched.CostSample
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&samples); err != nil {
		return corrupt()
	}
	return samples
}

// PutCostSamples persists the sample window (truncated to the most recent
// CostSampleWindow entries), replacing any previous record via the disk
// tier's tmp+rename protocol so readers only ever observe complete records.
// A nil cache or one without a disk tier is a silent no-op: samples are a
// scheduling hint, not a correctness artifact.
func (c *Cache) PutCostSamples(samples []sched.CostSample) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return nil
	}
	if len(samples) > CostSampleWindow {
		samples = samples[len(samples)-CostSampleWindow:]
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(samples); err != nil {
		return err
	}
	data, err := EncodeRecord(costSamplesKey, payload.Bytes())
	if err != nil {
		return err
	}
	return atomicWrite(d.dir, filepath.Join(d.dir, costSamplesFile), data)
}

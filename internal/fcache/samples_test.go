package fcache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sched"
)

func sampleWindow(n int) []sched.CostSample {
	out := make([]sched.CostSample, n)
	for i := range out {
		out[i] = sched.CostSample{
			Lines:     10 + i,
			LoopDepth: 1 + i%3,
			Section:   1 + i%2,
			Seconds:   float64(1+i) * 1e-3,
		}
	}
	return out
}

func TestCostSamplesRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if err := c.AttachDisk(t.TempDir(), 1<<20); err != nil {
		t.Fatal(err)
	}
	want := sampleWindow(16)
	if err := c.PutCostSamples(want); err != nil {
		t.Fatal(err)
	}
	got := c.CostSamples()
	if len(got) != len(want) {
		t.Fatalf("round trip: got %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestCostSamplesWindowTrim(t *testing.T) {
	c := New(1 << 20)
	if err := c.AttachDisk(t.TempDir(), 1<<20); err != nil {
		t.Fatal(err)
	}
	over := sampleWindow(CostSampleWindow + 100)
	if err := c.PutCostSamples(over); err != nil {
		t.Fatal(err)
	}
	got := c.CostSamples()
	if len(got) != CostSampleWindow {
		t.Fatalf("window: got %d samples, want %d", len(got), CostSampleWindow)
	}
	// The most recent samples survive, not the oldest.
	if got[len(got)-1] != over[len(over)-1] || got[0] != over[100] {
		t.Error("trim must keep the tail of the window")
	}
}

func TestCostSamplesNoDiskTier(t *testing.T) {
	c := New(1 << 20) // memory tier only
	if err := c.PutCostSamples(sampleWindow(4)); err != nil {
		t.Fatalf("diskless put must be a silent no-op: %v", err)
	}
	if got := c.CostSamples(); got != nil {
		t.Fatalf("diskless load must be nil, got %d samples", len(got))
	}
	var nilCache *Cache
	if err := nilCache.PutCostSamples(sampleWindow(1)); err != nil {
		t.Fatalf("nil cache put: %v", err)
	}
	if got := nilCache.CostSamples(); got != nil {
		t.Fatal("nil cache load must be nil")
	}
}

func TestCostSamplesMissingFile(t *testing.T) {
	c := New(1 << 20)
	if err := c.AttachDisk(t.TempDir(), 1<<20); err != nil {
		t.Fatal(err)
	}
	if got := c.CostSamples(); got != nil {
		t.Fatalf("no record yet must load nil, got %d samples", len(got))
	}
	if c.Stats().DiskErrors != 0 {
		t.Error("a missing record is not an error")
	}
}

// TestCostSamplesCorruptRecord: a truncated or scribbled record must never
// fail a compile — the load reports nil (static model fallback), counts a
// disk error, and deletes the bad file so the next run starts clean.
func TestCostSamplesCorruptRecord(t *testing.T) {
	cases := map[string]func(path string){
		"garbage-bytes": func(path string) {
			os.WriteFile(path, []byte("not a gob record"), 0o666)
		},
		"truncated": func(path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)/2], 0o666)
		},
		"bit-flip": func(path string) {
			data, _ := os.ReadFile(path)
			data[len(data)-3] ^= 0xff
			os.WriteFile(path, data, 0o666)
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c := New(1 << 20)
			if err := c.AttachDisk(dir, 1<<20); err != nil {
				t.Fatal(err)
			}
			if err := c.PutCostSamples(sampleWindow(8)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "cost-samples.wfc")
			corrupt(path)
			if got := c.CostSamples(); got != nil {
				t.Fatalf("corrupt record must load nil, got %d samples", len(got))
			}
			if n := c.Stats().DiskErrors; n != 1 {
				t.Errorf("DiskErrors = %d, want 1", n)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt record must be deleted")
			}
			// The next run writes a fresh record over the cleaned slate.
			if err := c.PutCostSamples(sampleWindow(4)); err != nil {
				t.Fatal(err)
			}
			if got := c.CostSamples(); len(got) != 4 {
				t.Errorf("recovery write: got %d samples, want 4", len(got))
			}
		})
	}
}

// TestCostSamplesOutsideObjectNamespace: the sample record must survive the
// object tier's scan and eviction — it lives outside the o-*.wfc namespace.
func TestCostSamplesSurviveObjectEviction(t *testing.T) {
	dir := t.TempDir()
	c := New(1 << 20)
	// A tiny disk budget forces eviction as objects land.
	if err := c.AttachDisk(dir, 2048); err != nil {
		t.Fatal(err)
	}
	if err := c.PutCostSamples(sampleWindow(8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		fh := FuncHash{byte(i), byte(i >> 8)}
		_, err := c.Object(fh, "v1", func() (*ObjectEntry, error) {
			return &ObjectEntry{Name: "f", Section: 1, ObjectBytes: make([]byte, 400)}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CostSamples(); len(got) != 8 {
		t.Fatalf("object eviction clobbered the sample record: got %d samples, want 8", len(got))
	}
}

// TestFittedModelMemoized pins the daemon-level memo: one fit per change to
// the samples record, stat-hits in between, and the returned window is a
// private copy the caller may append to freely.
func TestFittedModelMemoized(t *testing.T) {
	dir := t.TempDir()
	c := New(1 << 20)
	if err := c.AttachDisk(dir, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := c.PutCostSamples(sampleWindow(32)); err != nil {
		t.Fatal(err)
	}
	if got := c.ModelFitCount(); got != 1 {
		t.Fatalf("PutCostSamples must fit once, got %d fits", got)
	}
	m1, s1 := c.FittedCostModel()
	m2, s2 := c.FittedCostModel()
	if got := c.ModelFitCount(); got != 1 {
		t.Fatalf("back-to-back reads over an unchanged window must not re-fit: %d fits", got)
	}
	if m1 != m2 || len(s1) != 32 || len(s2) != 32 {
		t.Fatalf("memo hit must return the same model and window: %+v/%d vs %+v/%d", m1, len(s1), m2, len(s2))
	}

	// The returned slice is a copy: the per-job append of observed samples
	// must not leak into what the next job is handed.
	s1 = append(s1, sched.CostSample{Lines: 9999, Seconds: 1})
	_, s3 := c.FittedCostModel()
	if len(s3) != 32 {
		t.Fatalf("caller append mutated the memoized window: %d samples", len(s3))
	}

	// A new Put refreshes the memo in place (one more fit, no read needed).
	if err := c.PutCostSamples(sampleWindow(48)); err != nil {
		t.Fatal(err)
	}
	if got := c.ModelFitCount(); got != 2 {
		t.Fatalf("PutCostSamples must refresh the memo with one fit, got %d", got)
	}
	if _, s := c.FittedCostModel(); len(s) != 48 {
		t.Fatalf("memo not refreshed by Put: %d samples", len(s))
	}
	if got := c.ModelFitCount(); got != 2 {
		t.Fatalf("read after Put must be a memo hit, got %d fits", got)
	}
}

// TestFittedModelRefitsOnExternalChange: a second cache over the same
// directory (another daemon, or warpcc racing warpd) rewrites the record;
// the first cache's stat key no longer matches and it must re-read and
// re-fit rather than serve the stale memo.
func TestFittedModelRefitsOnExternalChange(t *testing.T) {
	dir := t.TempDir()
	a := New(1 << 20)
	if err := a.AttachDisk(dir, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := a.PutCostSamples(sampleWindow(16)); err != nil {
		t.Fatal(err)
	}
	if _, s := a.FittedCostModel(); len(s) != 16 {
		t.Fatalf("want 16 samples, got %d", len(s))
	}

	b := New(1 << 20)
	if err := b.AttachDisk(dir, 1<<20); err != nil {
		t.Fatal(err)
	}
	// Different sample count => different record size, so the stat key
	// changes even on filesystems with coarse mtimes.
	if err := b.PutCostSamples(sampleWindow(24)); err != nil {
		t.Fatal(err)
	}
	fits := a.ModelFitCount()
	if _, s := a.FittedCostModel(); len(s) != 24 {
		t.Fatalf("stale memo served after external rewrite: %d samples", len(s))
	}
	if got := a.ModelFitCount(); got != fits+1 {
		t.Fatalf("external change must force exactly one re-fit: %d -> %d", fits, got)
	}
}

// TestFittedModelNoDiskTier: memory-only caches fall back to the static
// model without touching the memo machinery.
func TestFittedModelNoDiskTier(t *testing.T) {
	c := New(1 << 20)
	m, s := c.FittedCostModel()
	if m.Fitted || s != nil {
		t.Fatalf("no disk tier must yield the static model and no samples: %+v %v", m, s)
	}
	var nilc *Cache
	if m, s := nilc.FittedCostModel(); m.Fitted || s != nil {
		t.Fatalf("nil cache must yield the static model: %+v %v", m, s)
	}
}

package fcache

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		key     string
		payload []byte
	}{
		{"obj:abc:default", []byte("hello object bytes")},
		{"cost-samples/v1", nil},
		{"", []byte{0, 1, 2, 255}},
		{strings.Repeat("k", 4096), bytes.Repeat([]byte{0xAA}, 1<<16)},
	} {
		data, err := EncodeRecord(tc.key, tc.payload)
		if err != nil {
			t.Fatalf("EncodeRecord(%q): %v", tc.key, err)
		}
		key, payload, err := DecodeRecord(data)
		if err != nil {
			t.Fatalf("DecodeRecord(%q): %v", tc.key, err)
		}
		if key != tc.key {
			t.Errorf("key = %q, want %q", key, tc.key)
		}
		if !bytes.Equal(payload, tc.payload) {
			t.Errorf("payload mismatch for key %q", tc.key)
		}
	}
}

func TestRecordDetectsCorruption(t *testing.T) {
	data, err := EncodeRecord("obj:k:default", []byte("payload payload payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte position in turn: corruption must either fail
	// verification or — when the flip lands in gob metadata the decoder
	// ignores, e.g. the wire type name — decode to the exact original
	// record. It must never hand back altered data as valid.
	for i := range data {
		bad := bytes.Clone(data)
		bad[i] ^= 0x41
		key, payload, err := DecodeRecord(bad)
		if err != nil {
			continue
		}
		if key != "obj:k:default" || !bytes.Equal(payload, []byte("payload payload payload")) {
			t.Fatalf("flip at %d accepted with altered data: key=%q len(payload)=%d", i, key, len(payload))
		}
	}
}

func TestRecordDetectsTruncation(t *testing.T) {
	data, err := EncodeRecord("obj:k:default", []byte("some payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, len(data) / 2, len(data) - 1} {
		if _, _, err := DecodeRecord(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestRecordWrongKeyIsCallerChecked(t *testing.T) {
	// A frame stored under one key is internally valid; the caller must
	// compare the returned key against the one it asked for. Verify the
	// returned key is trustworthy (bound by the checksum).
	data, err := EncodeRecord("obj:other:default", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if key != "obj:other:default" {
		t.Fatalf("key = %q", key)
	}
}

func TestKeyDigestMatchesDiskName(t *testing.T) {
	key := "obj:deadbeef:default"
	want := sha256.Sum256([]byte(key))
	if got := KeyDigest(key); got != want {
		t.Fatalf("KeyDigest = %x, want %x", got, want)
	}
	name := diskFileName(key)
	dg, ok := digestOfName(name)
	if !ok {
		t.Fatalf("digestOfName(%q) failed", name)
	}
	if dg != want {
		t.Fatalf("digestOfName(%q) = %x, want %x", name, dg, want)
	}
	if _, ok := digestOfName("tmp-123"); ok {
		t.Fatal("digestOfName accepted a tmp file name")
	}
	if _, ok := digestOfName("o-nothex.wfc"); ok {
		t.Fatal("digestOfName accepted non-hex")
	}
}

func TestAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := atomicWrite(dir, path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(dir, path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

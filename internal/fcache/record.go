package fcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"
)

// Checksummed record framing, shared by everything that persists or ships a
// cache artifact as one opaque blob: the disk tier's object files (disk.go),
// the cost-sample window (samples.go), and the peer-cache fetch replies
// (internal/peercache). A record binds a payload to the full cache key it
// was stored under and carries a checksum over both, so a filename
// collision, a misaddressed fetch reply, or a flipped bit is detected as
// corruption at the frame — before any payload bytes are interpreted —
// and degrades to a cache miss instead of poisoning a compilation.
//
// The frame is a gob-encoded diskRecord{Key, Payload, Sum} with
// Sum = SHA-256(Key || Payload). The name predates the peer protocol: the
// same frame now travels the wire unchanged, which is exactly the point —
// a peer reply is verified with the same code that verifies a disk read.
type diskRecord struct {
	Key     string
	Payload []byte
	Sum     [sha256.Size]byte
}

// recordSum computes the frame checksum binding key and payload.
func recordSum(key string, payload []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(payload)
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// EncodeRecord frames payload under key: the returned bytes decode with
// DecodeRecord on any process (or host) and fail loudly if damaged.
func EncodeRecord(key string, payload []byte) ([]byte, error) {
	rec := diskRecord{Key: key, Payload: payload}
	rec.Sum = recordSum(rec.Key, rec.Payload)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeRecord verifies a frame produced by EncodeRecord and returns the
// key it was stored under and the payload. Any mismatch — undecodable gob,
// checksum failure — is an error; the caller must additionally check that
// the returned key is the one it asked for (a valid record can still answer
// the wrong question, e.g. after a filename collision).
func DecodeRecord(data []byte) (key string, payload []byte, err error) {
	var rec diskRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		return "", nil, fmt.Errorf("fcache: undecodable record: %v", err)
	}
	if rec.Sum != recordSum(rec.Key, rec.Payload) {
		return "", nil, fmt.Errorf("fcache: record checksum mismatch for key %q", rec.Key)
	}
	return rec.Key, rec.Payload, nil
}

// KeyDigest is the content address of a cache key itself: the SHA-256 the
// disk tier derives filenames from and the peer protocol summarizes in
// Bloom filters. Both sides computing it from the key alone is what lets a
// peer test membership against a remote summary without shipping key lists.
func KeyDigest(key string) [sha256.Size]byte {
	return sha256.Sum256([]byte(key))
}

// atomicWrite writes data to path via an os.CreateTemp("tmp-*") file in dir
// and an atomic rename, so concurrent readers only ever observe complete
// records; a crash mid-write leaves a tmp-* leftover that openDiskTier
// removes. dir must be the directory containing path.
func atomicWrite(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

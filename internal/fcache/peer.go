package fcache

import (
	"crypto/sha256"
	"strings"
	"sync"
)

// PeerView is the cache's window onto a fleet of sibling caches — the
// peer-to-peer fill tier that sits between the disk tier and recompilation.
// internal/peercache provides the production implementation; fcache only
// depends on this interface, so the package stays free of any networking.
//
// Implementations must be safe for concurrent use. Replicas is additionally
// called from inside the disk tier's eviction pass with the tier lock held,
// so it must answer from the implementation's own state without calling back
// into the Cache or its disk tier.
type PeerView interface {
	// Fetch retrieves the object entry stored under the full cache key from
	// whichever peer claims to hold it, failing over across holders. ok
	// reports whether a verified entry was obtained; errs counts peers that
	// failed at the transport level along the way (timeout, connection
	// drop, corrupt reply) — those are accounted as Stats.PeerErrors and
	// say nothing about anyone's ability to compile.
	Fetch(key string) (e *ObjectEntry, ok bool, errs int)

	// Replicas reports how many peers' summaries claim the entry whose
	// cache key digests (KeyDigest) to d. Zero means this cache is, as far
	// as the fleet knows, the last holder. Summaries are Bloom filters, so
	// the count can over-report but never under-reports a known holder
	// beyond filter error.
	Replicas(d [sha256.Size]byte) int
}

// AttachPeers layers a peer fill tier under the cache: object lookups that
// miss memory and disk consult peers before recompiling (Object), hash-only
// probes can reach the fleet (PeerObject), masters can batch-prefetch
// predicted-hot entries (PrefetchObjects), and — when a disk tier is
// attached — eviction becomes fleet-aware: redundantly replicated entries
// are evicted first and the last known holder of an entry keeps it until
// the disk tier's hard byte cap. Safe to call on a nil cache (no-op).
func (c *Cache) AttachPeers(p PeerView) {
	if c == nil || p == nil {
		return
	}
	c.mu.Lock()
	c.peers = p
	d := c.disk
	c.mu.Unlock()
	if d != nil {
		d.setReplicas(p.Replicas)
	}
}

// HasPeers reports whether a peer fill tier is attached.
func (c *Cache) HasPeers() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers != nil
}

// peerLoad consults the peer tier for key, counting hits, misses, and
// transport errors. It does not insert the entry anywhere — callers decide
// (the Object build path returns it through getOrCompute, which inserts
// into memory; PeerObject and prefetch insert explicitly).
func (c *Cache) peerLoad(key string) (*ObjectEntry, bool) {
	c.mu.Lock()
	p := c.peers
	c.mu.Unlock()
	if p == nil {
		return nil, false
	}
	e, ok, errs := p.Fetch(key)
	c.mu.Lock()
	c.stats.PeerErrors += int64(errs)
	if ok {
		c.stats.PeerHits++
		c.stats.PeerBytes += int64(len(e.ObjectBytes))
	} else {
		c.stats.PeerMisses++
	}
	c.mu.Unlock()
	return e, ok
}

// PeerObject is a peers-only probe of the object tier: the caller has
// already established a local miss (PeekObject) and asks the fleet before
// resorting to a recompile. A hit is installed in memory and written
// through to disk, making this process a holder. It never computes
// anything; without peers it reports a miss.
func (c *Cache) PeerObject(fh FuncHash, variant string) (*ObjectEntry, bool) {
	if c == nil || fh.IsZero() {
		return nil, false
	}
	key := objectKey(fh, variant)
	e, ok := c.peerLoad(key)
	if !ok {
		return nil, false
	}
	c.diskStore(key, e)
	c.mu.Lock()
	c.insertLocked(key, e, e.Cost())
	c.mu.Unlock()
	return e, true
}

// prefetchWorkers bounds the fan-out of one PrefetchObjects call so a large
// outline cannot open unbounded concurrent fetches against the fleet.
const prefetchWorkers = 8

// PrefetchObjects pulls the objects for the given function hashes from
// peers ahead of dispatch — the master's "predicted hot" batch, taken
// straight from the outline. Hashes already resident locally (memory or
// disk index) are skipped without counters; fetched entries are installed
// in memory, written through to disk, and counted as PeerPrefetched (in
// addition to the usual PeerHits/PeerBytes). Returns how many entries were
// filled. A nil cache, zero hashes, or no peer tier is a no-op.
func (c *Cache) PrefetchObjects(fhs []FuncHash, variant string) int {
	if c == nil || len(fhs) == 0 || !c.HasPeers() {
		return 0
	}
	var missing []string
	seen := make(map[string]bool, len(fhs))
	for _, fh := range fhs {
		if fh.IsZero() {
			continue
		}
		key := objectKey(fh, variant)
		if seen[key] || c.hasLocal(key) {
			continue
		}
		seen[key] = true
		missing = append(missing, key)
	}
	if len(missing) == 0 {
		return 0
	}
	var (
		wg     sync.WaitGroup
		filled int64
		ch     = make(chan string)
	)
	workers := prefetchWorkers
	if len(missing) < workers {
		workers = len(missing)
	}
	var mu sync.Mutex
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range ch {
				e, ok := c.peerLoad(key)
				if !ok {
					continue
				}
				c.diskStore(key, e)
				c.mu.Lock()
				c.insertLocked(key, e, e.Cost())
				c.stats.PeerPrefetched++
				c.mu.Unlock()
				mu.Lock()
				filled++
				mu.Unlock()
			}
		}()
	}
	for _, key := range missing {
		ch <- key
	}
	close(ch)
	wg.Wait()
	return int(filled)
}

// hasLocal reports whether key is resident in memory or present in the disk
// tier's index, without touching counters or file contents.
func (c *Cache) hasLocal(key string) bool {
	c.mu.Lock()
	_, ok := c.items[key]
	d := c.disk
	c.mu.Unlock()
	if ok {
		return true
	}
	if d == nil {
		return false
	}
	d.mu.Lock()
	_, ok = d.files[diskFileName(key)]
	d.mu.Unlock()
	return ok
}

// LocalObject answers a peer's fetch for the entry stored under the full
// cache key from local tiers only — memory, then disk. It never consults
// peers (so two caches fetching from each other cannot recurse) and never
// computes anything. A hit counts as PeerServed; a miss is silent. The
// peercache server is the only intended caller.
func (c *Cache) LocalObject(key string) (*ObjectEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		if e, isObj := el.Value.(*entry).val.(*ObjectEntry); isObj {
			c.ll.MoveToFront(el)
			c.stats.PeerServed++
			c.mu.Unlock()
			return e, true
		}
	}
	c.mu.Unlock()
	if e, ok := c.diskLoad(key); ok {
		c.mu.Lock()
		c.stats.PeerServed++
		c.insertLocked(key, e, e.Cost())
		c.mu.Unlock()
		return e, true
	}
	return nil, false
}

// ObjectDigests lists the key digests (KeyDigest) of every object-tier
// entry this cache can serve — resident in memory or present on disk —
// deduplicated. This is the raw material of the peer protocol's Bloom
// summary; disk entries contribute their digests straight from filenames,
// so a freshly scanned warm directory is advertisable without reading any
// record.
func (c *Cache) ObjectDigests() [][sha256.Size]byte {
	if c == nil {
		return nil
	}
	seen := make(map[[sha256.Size]byte]bool)
	c.mu.Lock()
	for key := range c.items {
		if strings.HasPrefix(key, "obj:") {
			seen[KeyDigest(key)] = true
		}
	}
	d := c.disk
	c.mu.Unlock()
	if d != nil {
		for _, dg := range d.digests() {
			seen[dg] = true
		}
	}
	out := make([][sha256.Size]byte, 0, len(seen))
	for dg := range seen {
		out = append(out, dg)
	}
	return out
}

// ObjectGen is a monotonic stamp of the object tier's contents: it ticks on
// every new memory insert and disk write of an object entry. Peers
// piggyback it on fetch replies; a client seeing a different gen than the
// one captured with the peer's summary knows the summary is stale.
func (c *Cache) ObjectGen() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.objectGen
}

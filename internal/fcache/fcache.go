// Package fcache is the parallel compiler's content-addressed artifact
// cache. The paper's function masters re-derive everything from source
// because the SUN workstations "share only the file system"; fcache relaxes
// exactly that constraint without changing any observable output. It keeps
// two tiers of immutable compilation artifacts keyed by the SHA-256 of the
// module source:
//
//	frontend tier    hash                           -> checked (*ast.Module, *sem.Info, diagnostics)
//	section-IR tier  (hash, section)                -> the section's lowered, inlined ir.Funcs
//	object tier      (hash, section, func, options) -> the finished per-function artifact
//
// plus a source store (hash -> source bytes) that lets distributed section
// masters send a 32-byte hash instead of the whole module on every request —
// the modern analog of the paper's shared file server. The first two tiers
// kill redundant parse/check/lower work within one compilation; the object
// tier makes recompiling unchanged source nearly free (the ccache model),
// which is what repeated builds in an edit-compile loop actually hit.
//
// The cache is bounded (LRU over an approximate byte budget) and deduplicates
// in-flight work singleflight-style: concurrent requests for the same key
// perform the computation exactly once. Cached values are shared and must be
// treated as immutable by all callers; anything that will be mutated (the
// target ir.Func of a compilation) must be deep-copied first (ir.Func.Clone).
//
// All methods are safe for concurrent use and tolerate a nil *Cache, which
// degrades to the uncached re-derive-everything behavior.
package fcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/sem"
	"repro/internal/source"
)

// SourceHash is the content address of a module source: its SHA-256.
type SourceHash [sha256.Size]byte

// HashSource returns the content address of src.
func HashSource(src []byte) SourceHash { return sha256.Sum256(src) }

// String renders the hash in hex.
func (h SourceHash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether h is the zero (absent) hash.
func (h SourceHash) IsZero() bool { return h == SourceHash{} }

// DefaultMaxBytes is the default cache budget. Artifacts are small relative
// to modern memories; the bound exists so long-running workers cannot grow
// without limit across many distinct modules.
const DefaultMaxBytes = 256 << 20

// Stats is a snapshot of cache effectiveness counters. Pools aggregate
// worker stats with Add; RPCBytesSaved is filled by the RPC pool (bytes of
// source not re-sent because the worker already held it).
type Stats struct {
	FrontendHits   int64
	FrontendMisses int64
	IRHits         int64
	IRMisses       int64
	ObjectHits     int64
	ObjectMisses   int64
	SourceHits     int64
	SourceMisses   int64
	InflightWaits  int64 // requests that waited on another's computation
	Evictions      int64
	BytesUsed      int64
	BytesMax       int64
	RPCBytesSaved  int64
}

// Hits totals all tiers' hits.
func (s Stats) Hits() int64 {
	return s.FrontendHits + s.IRHits + s.ObjectHits + s.SourceHits
}

// Misses totals all tiers' misses.
func (s Stats) Misses() int64 {
	return s.FrontendMisses + s.IRMisses + s.ObjectMisses + s.SourceMisses
}

// Add accumulates o into s (for aggregating per-worker stats).
func (s *Stats) Add(o Stats) {
	s.FrontendHits += o.FrontendHits
	s.FrontendMisses += o.FrontendMisses
	s.IRHits += o.IRHits
	s.IRMisses += o.IRMisses
	s.ObjectHits += o.ObjectHits
	s.ObjectMisses += o.ObjectMisses
	s.SourceHits += o.SourceHits
	s.SourceMisses += o.SourceMisses
	s.InflightWaits += o.InflightWaits
	s.Evictions += o.Evictions
	s.BytesUsed += o.BytesUsed
	s.BytesMax += o.BytesMax
	s.RPCBytesSaved += o.RPCBytesSaved
}

func (s Stats) String() string {
	return fmt.Sprintf("frontend %d/%d, ir %d/%d, object %d/%d, source %d/%d hit/miss; %d evictions, %d B resident, %d B rpc saved",
		s.FrontendHits, s.FrontendMisses, s.IRHits, s.IRMisses,
		s.ObjectHits, s.ObjectMisses,
		s.SourceHits, s.SourceMisses, s.Evictions, s.BytesUsed, s.RPCBytesSaved)
}

// FrontendEntry is one cached phase-1 result. Bag may hold errors; the entry
// is cached either way because the result is a pure function of the source.
type FrontendEntry struct {
	Module *ast.Module
	Info   *sem.Info
	Bag    *source.DiagBag
}

// Cache is a bounded content-addressed cache. The zero value is not usable;
// call New. A nil *Cache is valid and behaves as an always-miss cache that
// stores nothing.
type Cache struct {
	mu       sync.Mutex
	max      int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call
	stats    Stats
}

type entry struct {
	key  string
	val  any
	cost int64
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache bounded to approximately maxBytes of artifact cost
// (maxBytes < 1 selects DefaultMaxBytes).
func New(maxBytes int64) *Cache {
	if maxBytes < 1 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		max:      maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Frontend returns the checked frontend artifacts for the module whose
// source hashes to h, computing them with build on a miss. build must be a
// pure function of the source content; it is invoked at most once per key
// even under concurrent callers. The second return is cost in bytes.
func (c *Cache) Frontend(h SourceHash, build func() (*FrontendEntry, int64)) *FrontendEntry {
	if c == nil {
		e, _ := build()
		return e
	}
	v, _ := c.getOrCompute("fe:"+h.String(), tierFrontend, func() (any, int64, error) {
		e, cost := build()
		return e, cost, nil
	})
	return v.(*FrontendEntry)
}

// SectionIR returns the lowered, inlined flowgraphs of the given section (in
// declaration order, call-free) for the module hashing to h, computing them
// with build on a miss. The returned funcs are shared: callers must not
// mutate them — deep-copy (Clone) any func before optimizing it. Build
// errors are returned but not cached.
func (c *Cache) SectionIR(h SourceHash, section int, build func() ([]*ir.Func, error)) ([]*ir.Func, error) {
	if c == nil {
		return build()
	}
	key := fmt.Sprintf("ir:%s:%d", h.String(), section)
	v, err := c.getOrCompute(key, tierIR, func() (any, int64, error) {
		fs, err := build()
		if err != nil {
			return nil, 0, err
		}
		return fs, irCost(fs), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*ir.Func), nil
}

// FuncObject returns the finished compilation artifact for function index of
// the given section (of the module hashing to h), computing it with build on
// a miss. variant distinguishes compilations of the same function under
// different option sets. The value is opaque to the cache — the compiler
// package owns the concrete type — and is shared on hit, so callers must
// treat it as immutable. Build errors are returned but not cached.
func (c *Cache) FuncObject(h SourceHash, section, index int, variant string, build func() (any, int64, error)) (any, error) {
	if c == nil {
		v, _, err := build()
		return v, err
	}
	key := fmt.Sprintf("obj:%s:%d:%d:%s", h.String(), section, index, variant)
	return c.getOrCompute(key, tierObject, build)
}

// PutSource stores module source under its content address. The caller is
// responsible for h == HashSource(src) (process boundaries verify this; see
// cluster.Worker.StoreSource).
func (c *Cache) PutSource(h SourceHash, src []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := "src:" + h.String()
	if _, ok := c.items[key]; ok {
		return
	}
	c.insertLocked(key, src, int64(len(src))+64)
}

// Source returns the stored source for h, if resident.
func (c *Cache) Source(h SourceHash) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items["src:"+h.String()]; ok {
		c.ll.MoveToFront(el)
		c.stats.SourceHits++
		return el.Value.(*entry).val.([]byte), true
	}
	c.stats.SourceMisses++
	return nil, false
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesUsed = c.used
	s.BytesMax = c.max
	return s
}

// Len returns the number of resident entries across all tiers.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

type tier int

const (
	tierFrontend tier = iota
	tierIR
	tierObject
)

func (c *Cache) countLocked(t tier, hit bool) {
	switch {
	case t == tierFrontend && hit:
		c.stats.FrontendHits++
	case t == tierFrontend:
		c.stats.FrontendMisses++
	case t == tierIR && hit:
		c.stats.IRHits++
	case t == tierIR:
		c.stats.IRMisses++
	case t == tierObject && hit:
		c.stats.ObjectHits++
	default:
		c.stats.ObjectMisses++
	}
}

// getOrCompute is the LRU + singleflight core. Exactly one caller computes a
// missing key; concurrent callers for the same key block until the value is
// ready and share it. Errors propagate to every waiter but are not cached.
func (c *Cache) getOrCompute(key string, t tier, build func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.countLocked(t, true)
		c.mu.Unlock()
		return el.Value.(*entry).val, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.InflightWaits++
		c.countLocked(t, true) // the shared computation counts as one miss total
		c.mu.Unlock()
		<-cl.done
		return cl.val, cl.err
	}
	c.countLocked(t, false)
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	val, cost, err := build()
	cl.val, cl.err = val, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.insertLocked(key, val, cost)
	}
	c.mu.Unlock()
	close(cl.done)
	return val, err
}

// insertLocked adds a value and evicts from the LRU tail until the budget
// holds. Values costlier than the whole budget are returned to callers but
// never cached.
func (c *Cache) insertLocked(key string, val any, cost int64) {
	if cost > c.max {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.used += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, cost: cost})
		c.used += cost
	}
	for c.used > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= e.cost
		c.stats.Evictions++
	}
}

// irCost estimates the resident cost of a section's flowgraphs.
func irCost(fs []*ir.Func) int64 {
	cost := int64(256)
	for _, f := range fs {
		cost += 512 + 48*int64(f.NumInstrs()) + 8*int64(f.NumVRegs())
	}
	return cost
}

// Package fcache is the parallel compiler's content-addressed artifact
// cache. The paper's function masters re-derive everything from source
// because the SUN workstations "share only the file system"; fcache relaxes
// exactly that constraint without changing any observable output. It keeps
// three tiers of immutable compilation artifacts:
//
//	frontend tier  module hash          -> checked (*ast.Module, *sem.Info, diagnostics, per-function hashes)
//	func-IR tier   FuncHash             -> the function's lowered, inlined ir.Func
//	object tier    (FuncHash, options)  -> the finished per-function artifact
//
// plus a source store (module hash -> source bytes) that lets distributed
// section masters send a 32-byte hash instead of the whole module on every
// request — the modern analog of the paper's shared file server.
//
// The frontend tier is keyed by the whole-module source hash (parsing is
// inherently whole-module work), but the IR and object tiers are keyed by
// FuncHash: a content address of one function's normalized byte span plus
// everything its compilation can observe (module header, section header,
// transitive same-section callees, entry-ness). The paper's partition
// boundary — "each function can be compiled independently" — is exactly the
// soundness argument for this grain: an edit to one function leaves every
// other function's cached IR and object valid, so recompiling a module after
// a one-function edit runs phases 2+3 for that function alone.
//
// The object tier may additionally be backed by a disk directory (AttachDisk,
// or the WARP_CACHE_DIR environment variable via NewEnv): entries are written
// as content-addressed files with atomic renames, so a fresh warpcc run — and
// a restarted warpworker — starts warm. See disk.go.
//
// The in-memory cache is bounded (LRU over an approximate byte budget) and
// deduplicates in-flight work singleflight-style: concurrent requests for the
// same key perform the computation exactly once. Cached values are shared and
// must be treated as immutable by all callers; anything that will be mutated
// (the target ir.Func of a compilation) must be deep-copied first
// (ir.Func.Clone).
//
// All methods are safe for concurrent use and tolerate a nil *Cache, which
// degrades to the uncached re-derive-everything behavior.
package fcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/sem"
	"repro/internal/source"
)

// SourceHash is the content address of a module source: its SHA-256.
type SourceHash [sha256.Size]byte

// HashSource returns the content address of src.
func HashSource(src []byte) SourceHash { return sha256.Sum256(src) }

// String renders the hash in hex.
func (h SourceHash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether h is the zero (absent) hash.
func (h SourceHash) IsZero() bool { return h == SourceHash{} }

// FuncHash is the content address of one function's compilation inputs: the
// SHA-256 of its normalized declaration span together with the module
// header, its section header, its transitive same-section callees' spans,
// and its entry-function flag (internal/parser computes it — see
// parser.OutlineWithHashes). Everything phases 2+3 produce for a function is
// a pure function of these inputs plus the options variant, which is why the
// IR and object tiers key on it.
type FuncHash [sha256.Size]byte

// String renders the hash in hex.
func (h FuncHash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether h is the zero (absent) hash. Cache methods treat a
// zero FuncHash as "unkeyed" and degrade to building without storing.
func (h FuncHash) IsZero() bool { return h == FuncHash{} }

// FuncKey locates one function in a module: section number (1-based) and
// position within the section (0-based). FrontendEntry.FuncHashes is keyed
// by it.
type FuncKey struct {
	Section int
	Index   int
}

// DefaultMaxBytes is the default cache budget. Artifacts are small relative
// to modern memories; the bound exists so long-running workers cannot grow
// without limit across many distinct modules.
const DefaultMaxBytes = 256 << 20

// EnvCacheDir is the environment variable consulted by NewEnv for a
// disk-backed object tier shared across processes.
const EnvCacheDir = "WARP_CACHE_DIR"

// Stats is a snapshot of cache effectiveness counters. Pools aggregate
// worker stats with Add; RPCBytesSaved and SourcePushes are filled by the
// RPC pool (bytes of source not re-sent because the worker already held it,
// and StoreSource calls actually issued).
type Stats struct {
	FrontendHits   int64
	FrontendMisses int64
	IRHits         int64
	IRMisses       int64
	ObjectHits     int64
	ObjectMisses   int64
	SourceHits     int64
	SourceMisses   int64
	InflightWaits  int64 // requests that waited on another's computation
	Evictions      int64
	BytesUsed      int64
	BytesMax       int64
	RPCBytesSaved  int64
	// SourcePushes counts StoreSource RPCs issued by a pool — zero on a warm
	// run whose every function was answered from the object tier.
	SourcePushes int64
	// Disk counters cover the persistent object tier (zero without one).
	DiskHits      int64
	DiskMisses    int64
	DiskWrites    int64
	DiskEvictions int64
	DiskErrors    int64 // corrupt or unreadable entries discarded
	// Peer counters cover the peer-to-peer fill tier (zero without
	// AttachPeers). PeerErrors counts transport-level failures — timeouts,
	// dropped connections, corrupt replies — none of which say anything
	// about any worker's ability to compile; they never feed quarantine.
	PeerHits       int64
	PeerMisses     int64
	PeerErrors     int64
	PeerBytes      int64 // object bytes filled from peers
	PeerPrefetched int64 // entries pulled by batch prefetch before dispatch
	PeerServed     int64 // local entries served to fetching peers
}

// Hits totals all tiers' hits (memory tiers plus disk).
func (s Stats) Hits() int64 {
	return s.FrontendHits + s.IRHits + s.ObjectHits + s.SourceHits + s.DiskHits
}

// Misses totals all tiers' misses.
func (s Stats) Misses() int64 {
	return s.FrontendMisses + s.IRMisses + s.ObjectMisses + s.SourceMisses
}

// Add accumulates o into s (for aggregating per-worker stats).
func (s *Stats) Add(o Stats) {
	s.FrontendHits += o.FrontendHits
	s.FrontendMisses += o.FrontendMisses
	s.IRHits += o.IRHits
	s.IRMisses += o.IRMisses
	s.ObjectHits += o.ObjectHits
	s.ObjectMisses += o.ObjectMisses
	s.SourceHits += o.SourceHits
	s.SourceMisses += o.SourceMisses
	s.InflightWaits += o.InflightWaits
	s.Evictions += o.Evictions
	s.BytesUsed += o.BytesUsed
	s.BytesMax += o.BytesMax
	s.RPCBytesSaved += o.RPCBytesSaved
	s.SourcePushes += o.SourcePushes
	s.DiskHits += o.DiskHits
	s.DiskMisses += o.DiskMisses
	s.DiskWrites += o.DiskWrites
	s.DiskEvictions += o.DiskEvictions
	s.DiskErrors += o.DiskErrors
	s.PeerHits += o.PeerHits
	s.PeerMisses += o.PeerMisses
	s.PeerErrors += o.PeerErrors
	s.PeerBytes += o.PeerBytes
	s.PeerPrefetched += o.PeerPrefetched
	s.PeerServed += o.PeerServed
}

// Sub subtracts a baseline snapshot from s, scoping cumulative counters to
// the interval since the baseline was taken — the compile daemon uses it to
// attribute one shared backend's counters to individual jobs. Gauges
// (BytesUsed, BytesMax) describe the present, not an interval, and are kept
// as-is. With concurrent jobs the attribution is approximate: counters from
// overlapping jobs land in whichever interval observes them.
func (s *Stats) Sub(base Stats) {
	s.FrontendHits -= base.FrontendHits
	s.FrontendMisses -= base.FrontendMisses
	s.IRHits -= base.IRHits
	s.IRMisses -= base.IRMisses
	s.ObjectHits -= base.ObjectHits
	s.ObjectMisses -= base.ObjectMisses
	s.SourceHits -= base.SourceHits
	s.SourceMisses -= base.SourceMisses
	s.InflightWaits -= base.InflightWaits
	s.Evictions -= base.Evictions
	s.RPCBytesSaved -= base.RPCBytesSaved
	s.SourcePushes -= base.SourcePushes
	s.DiskHits -= base.DiskHits
	s.DiskMisses -= base.DiskMisses
	s.DiskWrites -= base.DiskWrites
	s.DiskEvictions -= base.DiskEvictions
	s.DiskErrors -= base.DiskErrors
	s.PeerHits -= base.PeerHits
	s.PeerMisses -= base.PeerMisses
	s.PeerErrors -= base.PeerErrors
	s.PeerBytes -= base.PeerBytes
	s.PeerPrefetched -= base.PeerPrefetched
	s.PeerServed -= base.PeerServed
}

func (s Stats) String() string {
	out := fmt.Sprintf("frontend %d/%d, ir %d/%d, object %d/%d, source %d/%d hit/miss; %d evictions, %d B resident, %d B rpc saved",
		s.FrontendHits, s.FrontendMisses, s.IRHits, s.IRMisses,
		s.ObjectHits, s.ObjectMisses,
		s.SourceHits, s.SourceMisses, s.Evictions, s.BytesUsed, s.RPCBytesSaved)
	if s.DiskHits+s.DiskMisses+s.DiskWrites+s.DiskErrors > 0 {
		out += fmt.Sprintf("; disk %d/%d hit/miss, %d writes, %d evictions, %d errors",
			s.DiskHits, s.DiskMisses, s.DiskWrites, s.DiskEvictions, s.DiskErrors)
	}
	if s.PeerHits+s.PeerMisses+s.PeerErrors+s.PeerPrefetched+s.PeerServed > 0 {
		out += fmt.Sprintf("; peer %d/%d hit/miss, %d errors, %d B filled, %d prefetched, %d served",
			s.PeerHits, s.PeerMisses, s.PeerErrors, s.PeerBytes, s.PeerPrefetched, s.PeerServed)
	}
	return out
}

// FrontendEntry is one cached phase-1 result. Bag may hold errors; the entry
// is cached either way because the result is a pure function of the source.
type FrontendEntry struct {
	Module *ast.Module
	Info   *sem.Info
	Bag    *source.DiagBag
	// FuncHashes maps every function of the module to its incremental
	// content address (empty when the frontend failed). Computed once per
	// source alongside the checked AST so every per-function compile keys
	// its IR and object lookups without re-deriving spans.
	FuncHashes map[FuncKey]FuncHash
}

// ObjectEntry is one finished per-function compilation artifact — the value
// of the object tier and the unit persisted by the disk tier. It carries
// everything a function master's reply needs, so a cache hit answers a
// request without re-running any phase: the wire-encoded object and the
// function master's complete warning list (frontend warnings owned by the
// function plus phase-2/3 warnings, pre-rendered in emission order).
//
// Entries are shared and immutable. Exported fields are the persisted
// surface (gob); the decoded object is reconstructed lazily and memoized.
type ObjectEntry struct {
	Name        string
	Section     int
	IsEntry     bool
	Lines       int
	ObjectBytes []byte
	Warnings    []string

	once sync.Once
	obj  *asm.Object
	err  error
}

// Object returns the decoded object, decoding ObjectBytes once and sharing
// the result. Callers must treat it as immutable (the decoded object is
// shared by every hit).
func (e *ObjectEntry) Object() (*asm.Object, error) {
	e.once.Do(func() { e.obj, e.err = asm.Decode(e.ObjectBytes) })
	return e.obj, e.err
}

// SetObject installs a pre-decoded object (the build path already has one,
// so hits never pay the first decode). The object must correspond to
// ObjectBytes.
func (e *ObjectEntry) SetObject(obj *asm.Object) {
	e.once.Do(func() { e.obj = obj })
}

// Cost estimates the entry's resident bytes.
func (e *ObjectEntry) Cost() int64 {
	cost := int64(1024) + int64(len(e.ObjectBytes))*3 // bytes + decoded object
	for _, w := range e.Warnings {
		cost += int64(len(w))
	}
	return cost
}

// Cache is a bounded content-addressed cache. The zero value is not usable;
// call New. A nil *Cache is valid and behaves as an always-miss cache that
// stores nothing.
type Cache struct {
	mu       sync.Mutex
	max      int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call
	stats    Stats

	disk  *diskTier // nil without a persistent object tier
	peers PeerView  // nil without a peer fill tier (AttachPeers)

	// model memoizes the fitted scheduler cost model keyed on the samples
	// record's (size, mtime), so back-to-back builds over an unchanged
	// sample window skip the re-read and re-fit (see samples.go).
	model costModelMemo

	// objectGen counts object-tier arrivals (memory inserts of new obj:
	// keys and disk writes). The peer protocol piggybacks it on fetch
	// replies as a cheap staleness stamp for Bloom summaries: any change
	// since a summary was taken means the summary may under-report.
	objectGen int64
}

type entry struct {
	key  string
	val  any
	cost int64
}

type call struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache bounded to approximately maxBytes of artifact cost
// (maxBytes < 1 selects DefaultMaxBytes).
func New(maxBytes int64) *Cache {
	if maxBytes < 1 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		max:      maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// NewEnv returns New(maxBytes) with a disk-backed object tier attached when
// the WARP_CACHE_DIR environment variable names a directory. A directory
// that cannot be opened degrades to memory-only with a note on stderr —
// cache trouble must never fail a compilation.
func NewEnv(maxBytes int64) *Cache {
	c := New(maxBytes)
	if dir := os.Getenv(EnvCacheDir); dir != "" {
		if err := c.AttachDisk(dir, 0); err != nil {
			fmt.Fprintf(os.Stderr, "fcache: disk cache at %s disabled: %v\n", dir, err)
		}
	}
	return c
}

// AttachDisk layers a persistent object tier under the in-memory cache:
// object entries missing from memory are looked up in dir, and freshly built
// entries are written there (atomic rename), so the next process over the
// same directory starts warm. maxBytes caps the directory size (GC by
// access time; < 1 selects DefaultDiskMaxBytes). Opening scans the
// directory to rebuild the index and removes leftovers of interrupted
// writes.
func (c *Cache) AttachDisk(dir string, maxBytes int64) error {
	d, err := openDiskTier(dir, maxBytes)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
	return nil
}

// DiskDir returns the directory of the attached disk tier ("" without one).
func (c *Cache) DiskDir() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disk == nil {
		return ""
	}
	return c.disk.dir
}

// Frontend returns the checked frontend artifacts for the module whose
// source hashes to h, computing them with build on a miss. build must be a
// pure function of the source content; it is invoked at most once per key
// even under concurrent callers. The second return is cost in bytes.
func (c *Cache) Frontend(h SourceHash, build func() (*FrontendEntry, int64)) *FrontendEntry {
	if c == nil {
		e, _ := build()
		return e
	}
	v, _ := c.getOrCompute("fe:"+h.String(), tierFrontend, func() (any, int64, error) {
		e, cost := build()
		return e, cost, nil
	})
	return v.(*FrontendEntry)
}

// FrontendErr is Frontend with an error path: build may fail — the parallel
// frontend returns an error when its context is cancelled — in which case
// the error propagates to every waiting caller and nothing is cached, so a
// later request computes the entry afresh.
func (c *Cache) FrontendErr(h SourceHash, build func() (*FrontendEntry, int64, error)) (*FrontendEntry, error) {
	if c == nil {
		e, _, err := build()
		if err != nil {
			return nil, err
		}
		return e, nil
	}
	v, err := c.getOrCompute("fe:"+h.String(), tierFrontend, func() (any, int64, error) {
		e, cost, err := build()
		if err != nil {
			return nil, 0, err
		}
		return e, cost, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*FrontendEntry), nil
}

// FuncIR returns the lowered, inlined (call-free) flowgraph of the function
// whose compilation inputs hash to fh, computing it with build on a miss.
// The returned func is shared: callers must not mutate it — deep-copy
// (Clone) before optimizing. Build errors are returned but not cached. A
// zero fh degrades to an uncached build.
func (c *Cache) FuncIR(fh FuncHash, build func() (*ir.Func, error)) (*ir.Func, error) {
	if c == nil || fh.IsZero() {
		return build()
	}
	v, err := c.getOrCompute("ir:"+fh.String(), tierIR, func() (any, int64, error) {
		f, err := build()
		if err != nil {
			return nil, 0, err
		}
		return f, funcIRCost(f), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ir.Func), nil
}

// Object returns the finished artifact for the function whose compilation
// inputs hash to fh under the given options variant, computing it with build
// on a miss. Lookups check memory first, then the disk tier (if attached),
// then the peer tier (if attached) — recompiling is the last resort; fresh
// builds are written through to disk, and peer fills are too (making this
// process a holder the fleet can fetch from). The entry is shared on hit, so
// callers must treat it as immutable. Build errors are returned but not
// cached. A zero fh degrades to an uncached build.
func (c *Cache) Object(fh FuncHash, variant string, build func() (*ObjectEntry, error)) (*ObjectEntry, error) {
	if c == nil || fh.IsZero() {
		return build()
	}
	key := objectKey(fh, variant)
	v, err := c.getOrCompute(key, tierObject, func() (any, int64, error) {
		if e, ok := c.diskLoad(key); ok {
			return e, e.Cost(), nil
		}
		if e, ok := c.peerLoad(key); ok {
			c.diskStore(key, e)
			return e, e.Cost(), nil
		}
		e, err := build()
		if err != nil {
			return nil, 0, err
		}
		c.diskStore(key, e)
		return e, e.Cost(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ObjectEntry), nil
}

// PeekObject is a lookup-only probe of the object tier (memory, then disk):
// it never computes anything, so masters use it to short-circuit unchanged
// functions before planning any dispatch, and workers use it to answer
// hash-only requests without needing the source. A hit counts toward
// ObjectHits (or DiskHits); a peek miss is not counted as a miss, keeping
// ObjectMisses == "objects actually built".
func (c *Cache) PeekObject(fh FuncHash, variant string) (*ObjectEntry, bool) {
	if c == nil || fh.IsZero() {
		return nil, false
	}
	key := objectKey(fh, variant)
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.ObjectHits++
		e := el.Value.(*entry).val.(*ObjectEntry)
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	if e, ok := c.diskLoad(key); ok {
		c.mu.Lock()
		c.stats.ObjectHits++
		c.insertLocked(key, e, e.Cost())
		c.mu.Unlock()
		return e, true
	}
	return nil, false
}

func objectKey(fh FuncHash, variant string) string {
	return "obj:" + fh.String() + ":" + variant
}

// diskLoad probes the disk tier for key, counting hits/misses/corruption.
func (c *Cache) diskLoad(key string) (*ObjectEntry, bool) {
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return nil, false
	}
	e, ok, err := d.load(key)
	c.mu.Lock()
	switch {
	case err != nil:
		c.stats.DiskErrors++
		c.stats.DiskMisses++
	case ok:
		c.stats.DiskHits++
	default:
		c.stats.DiskMisses++
	}
	c.mu.Unlock()
	return e, ok
}

// diskStore writes a freshly built entry through to the disk tier.
func (c *Cache) diskStore(key string, e *ObjectEntry) {
	c.mu.Lock()
	d := c.disk
	c.mu.Unlock()
	if d == nil {
		return
	}
	written, evicted, err := d.store(key, e)
	c.mu.Lock()
	if written {
		c.stats.DiskWrites++
		c.objectGen++
	}
	c.stats.DiskEvictions += evicted
	if err != nil {
		c.stats.DiskErrors++
	}
	c.mu.Unlock()
}

// PutSource stores module source under its content address. The caller is
// responsible for h == HashSource(src) (process boundaries verify this; see
// cluster.Worker.StoreSource).
func (c *Cache) PutSource(h SourceHash, src []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := "src:" + h.String()
	if _, ok := c.items[key]; ok {
		return
	}
	c.insertLocked(key, src, int64(len(src))+64)
}

// Source returns the stored source for h, if resident.
func (c *Cache) Source(h SourceHash) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items["src:"+h.String()]; ok {
		c.ll.MoveToFront(el)
		c.stats.SourceHits++
		return el.Value.(*entry).val.([]byte), true
	}
	c.stats.SourceMisses++
	return nil, false
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesUsed = c.used
	s.BytesMax = c.max
	return s
}

// Len returns the number of resident entries across all tiers.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

type tier int

const (
	tierFrontend tier = iota
	tierIR
	tierObject
)

func (c *Cache) countLocked(t tier, hit bool) {
	switch {
	case t == tierFrontend && hit:
		c.stats.FrontendHits++
	case t == tierFrontend:
		c.stats.FrontendMisses++
	case t == tierIR && hit:
		c.stats.IRHits++
	case t == tierIR:
		c.stats.IRMisses++
	case t == tierObject && hit:
		c.stats.ObjectHits++
	default:
		c.stats.ObjectMisses++
	}
}

// getOrCompute is the LRU + singleflight core. Exactly one caller computes a
// missing key; concurrent callers for the same key block until the value is
// ready and share it. Errors propagate to every waiter but are not cached.
func (c *Cache) getOrCompute(key string, t tier, build func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.countLocked(t, true)
		c.mu.Unlock()
		return el.Value.(*entry).val, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.InflightWaits++
		c.countLocked(t, true) // the shared computation counts as one miss total
		c.mu.Unlock()
		<-cl.done
		return cl.val, cl.err
	}
	c.countLocked(t, false)
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	val, cost, err := build()
	cl.val, cl.err = val, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.insertLocked(key, val, cost)
	}
	c.mu.Unlock()
	close(cl.done)
	return val, err
}

// insertLocked adds a value and evicts from the LRU tail until the budget
// holds. Values costlier than the whole budget are returned to callers but
// never cached.
func (c *Cache) insertLocked(key string, val any, cost int64) {
	if cost > c.max {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.used += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, val: val, cost: cost})
		c.used += cost
		if strings.HasPrefix(key, "obj:") {
			c.objectGen++
		}
	}
	for c.used > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= e.cost
		c.stats.Evictions++
	}
}

// funcIRCost estimates the resident cost of one flowgraph.
func funcIRCost(f *ir.Func) int64 {
	return 512 + 48*int64(f.NumInstrs()) + 8*int64(f.NumVRegs())
}

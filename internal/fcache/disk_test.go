package fcache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func diskCache(t *testing.T, dir string, maxBytes int64) *Cache {
	t.Helper()
	c := New(1 << 20)
	if err := c.AttachDisk(dir, maxBytes); err != nil {
		t.Fatalf("AttachDisk(%s): %v", dir, err)
	}
	return c
}

func storeObj(t *testing.T, c *Cache, label string, size int) *ObjectEntry {
	t.Helper()
	e, err := c.Object(fh(label), "default", func() (*ObjectEntry, error) {
		return &ObjectEntry{Name: label, ObjectBytes: bytes.Repeat([]byte{7}, size)}, nil
	})
	if err != nil {
		t.Fatalf("Object(%s): %v", label, err)
	}
	return e
}

// TestDiskPersistsAcrossProcesses is the tier's reason to exist: a second
// cache (a fresh process, in effect) over the same directory must answer from
// disk without ever invoking the builder.
func TestDiskPersistsAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	a := diskCache(t, dir, 0)
	want := storeObj(t, a, "f", 100)
	if s := a.Stats(); s.DiskWrites != 1 {
		t.Fatalf("disk writes = %d, want 1", s.DiskWrites)
	}

	b := diskCache(t, dir, 0)
	got, err := b.Object(fh("f"), "default", func() (*ObjectEntry, error) {
		return nil, errors.New("builder must not run on a disk hit")
	})
	if err != nil {
		t.Fatalf("warm Object: %v", err)
	}
	if got.Name != want.Name || !bytes.Equal(got.ObjectBytes, want.ObjectBytes) {
		t.Error("disk round-trip changed the entry")
	}
	if s := b.Stats(); s.DiskHits != 1 || s.ObjectMisses != 1 {
		t.Errorf("stats = %+v, want 1 disk hit under 1 object miss", s)
	}

	// PeekObject reaches the disk tier too — this is the master's probe path.
	c := diskCache(t, dir, 0)
	if _, ok := c.PeekObject(fh("f"), "default"); !ok {
		t.Error("peek missed a persisted entry")
	}
	if _, ok := c.PeekObject(fh("f"), "no-opt"); ok {
		t.Error("peek hit across options variants")
	}
}

// TestDiskCrashSafety: a partial write is left as a tmp-* file which readers
// never consult, and opening the directory garbage-collects it.
func TestDiskCrashSafety(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "tmp-1234")
	if err := os.WriteFile(stale, []byte("half a record"), 0o666); err != nil {
		t.Fatal(err)
	}

	c := diskCache(t, dir, 0)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("interrupted-write leftover survived open")
	}
	storeObj(t, c, "f", 50)
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory holds %d files after store, want exactly 1", len(entries))
	}
}

// TestDiskCorruptEntryRecompiles: a flipped byte must surface as a counted
// error plus a rebuild, never as a wrong artifact, and the bad file must go.
func TestDiskCorruptEntryRecompiles(t *testing.T) {
	dir := t.TempDir()
	a := diskCache(t, dir, 0)
	storeObj(t, a, "f", 200)

	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("want 1 cache file, have %d", len(entries))
	}
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	b := diskCache(t, dir, 0)
	rebuilt := false
	e, err := b.Object(fh("f"), "default", func() (*ObjectEntry, error) {
		rebuilt = true
		return &ObjectEntry{Name: "f"}, nil
	})
	if err != nil || e.Name != "f" {
		t.Fatalf("Object after corruption: %v", err)
	}
	if !rebuilt {
		t.Error("corrupt entry was served instead of recompiled")
	}
	if s := b.Stats(); s.DiskErrors != 1 {
		t.Errorf("disk errors = %d, want 1", s.DiskErrors)
	}
	// The rebuild writes through, replacing the corrupt file with a good one.
	fresh := diskCache(t, dir, 0)
	if _, ok := fresh.PeekObject(fh("f"), "default"); !ok {
		t.Error("rebuilt entry was not re-persisted")
	}
	if s := fresh.Stats(); s.DiskErrors != 0 {
		t.Error("re-persisted entry is still corrupt")
	}
}

// TestDiskSizeCapEvictsOldest: when the directory exceeds its byte cap the
// least recently accessed entries leave first.
func TestDiskSizeCapEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	// Each entry is ~4KiB of payload plus a few hundred bytes of record
	// framing; a 10KiB cap fits two.
	a := diskCache(t, dir, 10<<10)
	storeObj(t, a, "old", 4<<10)
	// Age the first file well past any later one (the index keys eviction by
	// access time; same-process time.Now calls could in principle tie).
	entries, _ := os.ReadDir(dir)
	past := time.Now().Add(-time.Hour)
	os.Chtimes(filepath.Join(dir, entries[0].Name()), past, past)
	a.disk.mu.Lock()
	f := a.disk.files[entries[0].Name()]
	f.atime = past
	a.disk.files[entries[0].Name()] = f
	a.disk.mu.Unlock()

	storeObj(t, a, "mid", 4<<10)
	storeObj(t, a, "new", 4<<10)
	if s := a.Stats(); s.DiskEvictions == 0 {
		t.Fatalf("no disk evictions after exceeding the cap: %+v", s)
	}

	b := diskCache(t, dir, 0)
	if _, ok := b.PeekObject(fh("old"), "default"); ok {
		t.Error("oldest entry survived the size cap")
	}
	if _, ok := b.PeekObject(fh("new"), "default"); !ok {
		t.Error("newest entry was evicted")
	}
}

// TestDiskSharedDirConcurrent simulates several masters/workers sharing one
// cache directory: concurrent stores and loads of overlapping keys must stay
// error-free and converge to every key being a hit everywhere.
func TestDiskSharedDirConcurrent(t *testing.T) {
	dir := t.TempDir()
	caches := []*Cache{diskCache(t, dir, 0), diskCache(t, dir, 0), diskCache(t, dir, 0)}
	labels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}

	var wg sync.WaitGroup
	for _, c := range caches {
		for _, l := range labels {
			wg.Add(1)
			go func(c *Cache, l string) {
				defer wg.Done()
				e, err := c.Object(fh(l), "default", func() (*ObjectEntry, error) {
					return &ObjectEntry{Name: l, ObjectBytes: []byte(l)}, nil
				})
				if err != nil || e.Name != l {
					t.Errorf("Object(%s): %v", l, err)
				}
			}(c, l)
		}
	}
	wg.Wait()

	var errs int64
	for _, c := range caches {
		errs += c.Stats().DiskErrors
	}
	if errs != 0 {
		t.Errorf("concurrent sharing produced %d disk errors", errs)
	}
	fresh := diskCache(t, dir, 0)
	for _, l := range labels {
		if e, ok := fresh.PeekObject(fh(l), "default"); !ok || e.Name != l {
			t.Errorf("key %s missing or wrong after concurrent population", l)
		}
	}
}

// TestDiskSameKeyConcurrentWriters: several caches (several daemon
// processes sharing one WARP_CACHE_DIR, in effect) racing to persist the
// very same key must converge on exactly one valid file — entries are
// deterministic, so last-rename-wins is harmless — with no disk errors.
func TestDiskSameKeyConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	caches := []*Cache{diskCache(t, dir, 0), diskCache(t, dir, 0), diskCache(t, dir, 0), diskCache(t, dir, 0)}

	var wg sync.WaitGroup
	for _, c := range caches {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				e, err := c.Object(fh("hot"), "default", func() (*ObjectEntry, error) {
					return &ObjectEntry{Name: "hot", ObjectBytes: bytes.Repeat([]byte{3}, 64)}, nil
				})
				if err != nil || e.Name != "hot" {
					t.Errorf("Object(hot): %v", err)
				}
			}(c)
		}
	}
	wg.Wait()

	for i, c := range caches {
		if n := c.Stats().DiskErrors; n != 0 {
			t.Errorf("cache %d saw %d disk errors under same-key races", i, n)
		}
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory holds %d files after same-key races, want exactly 1", len(entries))
	}
	fresh := diskCache(t, dir, 0)
	e, ok := fresh.PeekObject(fh("hot"), "default")
	if !ok || !bytes.Equal(e.ObjectBytes, bytes.Repeat([]byte{3}, 64)) {
		t.Error("surviving record is missing or wrong")
	}
}

// TestDiskEvictionRacesReader: one cache's size-cap eviction removing a
// file out from under another cache (a co-tenant daemon whose index still
// lists it) must surface as a plain miss-and-recompile on the reader,
// never as an error or a wrong artifact.
func TestDiskEvictionRacesReader(t *testing.T) {
	dir := t.TempDir()
	seed := diskCache(t, dir, 0)
	storeObj(t, seed, "victim", 4<<10)

	// reader opens now, so "victim" is in its scan index but only on disk.
	reader := diskCache(t, dir, 0)

	// evictor runs under a cap that two new entries will blow; age the
	// victim's file (and its index entry) so it leaves first.
	evictor := diskCache(t, dir, 10<<10)
	entries, _ := os.ReadDir(dir)
	past := time.Now().Add(-time.Hour)
	os.Chtimes(filepath.Join(dir, entries[0].Name()), past, past)
	evictor.disk.mu.Lock()
	f := evictor.disk.files[entries[0].Name()]
	f.atime = past
	evictor.disk.files[entries[0].Name()] = f
	evictor.disk.mu.Unlock()
	storeObj(t, evictor, "new1", 4<<10)
	storeObj(t, evictor, "new2", 4<<10)
	if evictor.Stats().DiskEvictions == 0 {
		t.Fatal("evictor removed nothing; the race under test never happened")
	}

	rebuilt := false
	e, err := reader.Object(fh("victim"), "default", func() (*ObjectEntry, error) {
		rebuilt = true
		return &ObjectEntry{Name: "victim"}, nil
	})
	if err != nil || e.Name != "victim" {
		t.Fatalf("Object(victim) after cross-process eviction: %v", err)
	}
	if !rebuilt {
		t.Error("evicted entry was served from nowhere instead of recompiled")
	}
	if s := reader.Stats(); s.DiskErrors != 0 {
		t.Errorf("cross-process eviction counted as %d disk errors, want 0 (plain miss)", s.DiskErrors)
	}
	// The rebuild wrote through, so the key is persistent again.
	if _, ok := diskCache(t, dir, 0).PeekObject(fh("victim"), "default"); !ok {
		t.Error("rebuilt entry was not re-persisted")
	}
}

// TestDiskCorruptRecordSharedDir: with two caches over one directory, the
// first reader of a corrupted record detects it, deletes it, and rebuilds
// (write-through); the second then reads the repaired record cleanly.
func TestDiskCorruptRecordSharedDir(t *testing.T) {
	dir := t.TempDir()
	seed := diskCache(t, dir, 0)
	storeObj(t, seed, "f", 200)

	a, b := diskCache(t, dir, 0), diskCache(t, dir, 0)

	entries, _ := os.ReadDir(dir)
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	rebuilt := false
	if _, err := a.Object(fh("f"), "default", func() (*ObjectEntry, error) {
		rebuilt = true
		return &ObjectEntry{Name: "f", ObjectBytes: bytes.Repeat([]byte{7}, 200)}, nil
	}); err != nil {
		t.Fatalf("first reader over corrupt record: %v", err)
	}
	if !rebuilt {
		t.Error("first reader served the corrupt record instead of recompiling")
	}
	if s := a.Stats(); s.DiskErrors != 1 {
		t.Errorf("first reader counted %d disk errors, want 1", s.DiskErrors)
	}

	got, err := b.Object(fh("f"), "default", func() (*ObjectEntry, error) {
		return nil, errors.New("second reader must hit the repaired record")
	})
	if err != nil {
		t.Fatalf("second reader after repair: %v", err)
	}
	if got.Name != "f" || !bytes.Equal(got.ObjectBytes, bytes.Repeat([]byte{7}, 200)) {
		t.Error("second reader got a wrong artifact")
	}
	if s := b.Stats(); s.DiskErrors != 0 || s.DiskHits != 1 {
		t.Errorf("second reader stats = %+v, want a clean disk hit", s)
	}
}

// TestNewEnvAttachesDiskTier: WARP_CACHE_DIR wires a persistent tier into
// every pool and worker without code changes.
func TestNewEnvAttachesDiskTier(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(EnvCacheDir, dir)
	c := NewEnv(0)
	if c.DiskDir() != dir {
		t.Fatalf("DiskDir = %q, want %q", c.DiskDir(), dir)
	}
	storeObj(t, c, "f", 10)
	if s := c.Stats(); s.DiskWrites != 1 {
		t.Errorf("disk writes = %d, want 1", s.DiskWrites)
	}

	t.Setenv(EnvCacheDir, "")
	if d := NewEnv(0).DiskDir(); d != "" {
		t.Errorf("DiskDir without env = %q, want empty", d)
	}
}

package fcache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
)

// TestDiskEvictionRacesPeerFetch pins the atomicity contract between the
// disk tier's eviction and a concurrent peer fetch of the same key: the
// fetch path (LocalObject → diskLoad) must observe either the complete
// record or a plain miss — never a partial record, never a counted
// corruption. Eviction unlinks whole files and writes go through
// rename-into-place, so a reader's os.ReadFile is all-or-nothing; this test
// hammers that invariant under -race with a cap small enough that every
// store evicts.
func TestDiskEvictionRacesPeerFetch(t *testing.T) {
	dir := t.TempDir()

	// The writer owns eviction: a tier so small that each ~4 KiB entry
	// pushes older ones out almost immediately.
	writer := New(1 << 20)
	if err := writer.AttachDisk(dir, 16<<10); err != nil {
		t.Fatal(err)
	}
	// The reader stands in for the peer-serving side (Service.Fetch calls
	// LocalObject on its own cache). A separate Cache over the same
	// directory also covers the shared-directory case: eviction by one
	// process racing a fetch served by another.
	reader := New(1 << 20)
	if err := reader.AttachDisk(dir, DefaultDiskMaxBytes); err != nil {
		t.Fatal(err)
	}

	entryFor := func(i int) (string, *ObjectEntry) {
		fh := FuncHash(sha256.Sum256([]byte(fmt.Sprintf("evict-race-%d", i))))
		return objectKey(fh, "default"), &ObjectEntry{
			Name:        fmt.Sprintf("f%d", i),
			Section:     1,
			Lines:       i + 1,
			ObjectBytes: bytes.Repeat([]byte{byte(i)}, 4<<10),
		}
	}

	const total = 200
	var (
		mu     sync.Mutex
		recent []string // keys stored so far, oldest first
		done   = make(chan struct{})
		wg     sync.WaitGroup
	)

	// Writer: store fresh entries, each store running the eviction pass.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < total; i++ {
			key, e := entryFor(i)
			writer.diskStore(key, e)
			mu.Lock()
			recent = append(recent, key)
			mu.Unlock()
		}
	}()

	// Readers: fetch the most recently stored keys the way a peer server
	// would, racing the writer's eviction of those same files.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				n := len(recent)
				var keys []string
				if n > 0 {
					lo := n - 8
					if lo < 0 {
						lo = 0
					}
					keys = append(keys, recent[lo:n]...)
				}
				mu.Unlock()
				for _, key := range keys {
					if e, ok := reader.LocalObject(key); ok {
						// A hit must be the complete entry: right name,
						// right body. DecodeRecord already rejected any
						// torn read; this checks nothing was aliased.
						var want byte
						fmt.Sscanf(e.Name, "f%d", &want)
						if len(e.ObjectBytes) != 4<<10 || e.ObjectBytes[0] != want {
							t.Errorf("fetch of %s returned a mangled entry (name %s, %d bytes)",
								key, e.Name, len(e.ObjectBytes))
						}
					}
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()

	// An eviction racing a fetch must read as a plain miss, never as a
	// corrupt record: DiskErrors counts only checksum/decode failures, and
	// there must be none.
	if s := reader.Stats(); s.DiskErrors != 0 {
		t.Errorf("reader counted %d corrupt disk records during eviction races (want 0): %s",
			s.DiskErrors, s)
	}
	if s := writer.Stats(); s.DiskErrors != 0 {
		t.Errorf("writer counted %d corrupt disk records (want 0): %s", s.DiskErrors, s)
	}
	if s := writer.Stats(); s.DiskEvictions == 0 {
		t.Error("no eviction ever ran — the race under test never happened")
	}
}

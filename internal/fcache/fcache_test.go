package fcache

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ir"
)

func feEntry() (*FrontendEntry, int64) { return &FrontendEntry{}, 100 }

// fh derives a distinct FuncHash from a label.
func fh(s string) FuncHash { return FuncHash(sha256.Sum256([]byte(s))) }

func TestHashSource(t *testing.T) {
	a := HashSource([]byte("module m"))
	b := HashSource([]byte("module m"))
	c := HashSource([]byte("module n"))
	if a != b {
		t.Error("identical content must hash identically")
	}
	if a == c {
		t.Error("distinct content must hash distinctly")
	}
	if a.IsZero() || !(SourceHash{}).IsZero() {
		t.Error("IsZero wrong")
	}
	if len(a.String()) != 64 {
		t.Errorf("hex hash length = %d, want 64", len(a.String()))
	}
}

// TestHitMissAccounting drives each tier through a scripted sequence and
// checks the counters — the cache's observability is part of its contract.
func TestHitMissAccounting(t *testing.T) {
	h1, h2 := HashSource([]byte("one")), HashSource([]byte("two"))
	tests := []struct {
		name string
		run  func(c *Cache)
		want Stats
	}{
		{
			name: "frontend hit after miss",
			run: func(c *Cache) {
				c.Frontend(h1, feEntry)
				c.Frontend(h1, feEntry)
				c.Frontend(h2, feEntry)
			},
			want: Stats{FrontendHits: 1, FrontendMisses: 2},
		},
		{
			name: "func ir keyed by function hash",
			run: func(c *Cache) {
				build := func() (*ir.Func, error) { return &ir.Func{}, nil }
				c.FuncIR(fh("f"), build)
				c.FuncIR(fh("f"), build)
				c.FuncIR(fh("g"), build)    // other function: miss
				c.FuncIR(FuncHash{}, build) // zero hash: uncached, uncounted
			},
			want: Stats{IRHits: 1, IRMisses: 2},
		},
		{
			name: "object keyed by function hash and variant",
			run: func(c *Cache) {
				build := func() (*ObjectEntry, error) { return &ObjectEntry{Name: "f"}, nil }
				c.Object(fh("f"), "default", build)
				c.Object(fh("f"), "default", build)
				c.Object(fh("g"), "default", build) // other function: miss
				c.Object(fh("f"), "no-opt", build)  // other options: miss
			},
			want: Stats{ObjectHits: 1, ObjectMisses: 3},
		},
		{
			name: "peek counts hits but not misses",
			run: func(c *Cache) {
				if _, ok := c.PeekObject(fh("f"), "default"); ok {
					panic("peek hit on empty cache")
				}
				c.Object(fh("f"), "default", func() (*ObjectEntry, error) {
					return &ObjectEntry{Name: "f"}, nil
				})
				if _, ok := c.PeekObject(fh("f"), "default"); !ok {
					panic("peek missed a resident entry")
				}
			},
			want: Stats{ObjectHits: 1, ObjectMisses: 1},
		},
		{
			name: "source store",
			run: func(c *Cache) {
				if _, ok := c.Source(h1); ok {
					panic("unexpected resident source")
				}
				c.PutSource(h1, []byte("one"))
				if _, ok := c.Source(h1); !ok {
					panic("stored source not found")
				}
			},
			want: Stats{SourceHits: 1, SourceMisses: 1},
		},
		{
			name: "ir build errors are returned, not cached",
			run: func(c *Cache) {
				build := func() (*ir.Func, error) { return nil, errors.New("boom") }
				if _, err := c.FuncIR(fh("f"), build); err == nil {
					panic("expected error")
				}
				if _, err := c.FuncIR(fh("f"), build); err == nil {
					panic("expected error on rebuild")
				}
			},
			want: Stats{IRMisses: 2},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := New(1 << 20)
			tt.run(c)
			got := c.Stats()
			got.BytesUsed, got.BytesMax = 0, 0 // sized separately below
			if got != tt.want {
				t.Errorf("stats = %+v, want %+v", got, tt.want)
			}
		})
	}
}

// TestLRUEviction fills a tiny cache past its byte budget and checks that
// the least recently used entries leave first.
func TestLRUEviction(t *testing.T) {
	hashes := make([]SourceHash, 4)
	blobs := make([][]byte, 4)
	for i := range hashes {
		blobs[i] = []byte(fmt.Sprintf("source-%d", i))
		hashes[i] = HashSource(blobs[i])
	}
	// Each source entry costs len(src)+64 ≈ 72; budget fits two.
	c := New(150)

	c.PutSource(hashes[0], blobs[0])
	c.PutSource(hashes[1], blobs[1])
	if c.Len() != 2 {
		t.Fatalf("resident = %d, want 2", c.Len())
	}
	// Touch 0 so 1 becomes the eviction victim.
	if _, ok := c.Source(hashes[0]); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	c.PutSource(hashes[2], blobs[2])

	if _, ok := c.Source(hashes[1]); ok {
		t.Error("LRU entry 1 should have been evicted")
	}
	if _, ok := c.Source(hashes[0]); !ok {
		t.Error("recently used entry 0 was evicted")
	}
	if _, ok := c.Source(hashes[2]); !ok {
		t.Error("new entry 2 missing")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s := c.Stats(); s.BytesUsed > 150 {
		t.Errorf("bytes used %d exceeds budget", s.BytesUsed)
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(10)
	h := HashSource([]byte("big"))
	c.PutSource(h, make([]byte, 1024))
	if c.Len() != 0 {
		t.Error("value above the whole budget must not be cached")
	}
}

// TestConcurrentSameKeyComputesOnce is the singleflight contract: many
// concurrent requests for one key run the builder exactly once and all see
// its result.
func TestConcurrentSameKeyComputesOnce(t *testing.T) {
	c := New(1 << 20)
	h := HashSource([]byte("shared"))
	var builds atomic.Int64
	sentinel := &FrontendEntry{}

	const n = 32
	var wg sync.WaitGroup
	results := make([]*FrontendEntry, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = c.Frontend(h, func() (*FrontendEntry, int64) {
				builds.Add(1)
				return sentinel, 64
			})
		}(i)
	}
	close(start)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Errorf("builder ran %d times, want exactly 1", got)
	}
	for i, r := range results {
		if r != sentinel {
			t.Fatalf("caller %d got a different entry", i)
		}
	}
	s := c.Stats()
	if s.FrontendHits+s.FrontendMisses != n {
		t.Errorf("hits+misses = %d, want %d", s.FrontendHits+s.FrontendMisses, n)
	}
	if s.FrontendMisses != 1 {
		t.Errorf("misses = %d, want 1 (the single computation)", s.FrontendMisses)
	}
}

// TestConcurrentErrorPropagatesToWaiters: every waiter on a failing
// computation sees the error, and the key stays uncached.
func TestConcurrentErrorPropagatesToWaiters(t *testing.T) {
	c := New(1 << 20)
	var builds atomic.Int64

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.FuncIR(fh("fail"), func() (*ir.Func, error) {
				builds.Add(1)
				return nil, errors.New("lowering failed")
			})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d got nil error", i)
		}
	}
	// Builds may run more than once (errors are not cached) but never more
	// than the number of callers; with full overlap it is exactly one.
	if got := builds.Load(); got < 1 || got > n {
		t.Errorf("builds = %d, want within [1,%d]", got, n)
	}
	if c.Len() != 0 {
		t.Error("failed computation must not be cached")
	}
}

func TestNilCacheDegradesGracefully(t *testing.T) {
	var c *Cache
	h := HashSource([]byte("x"))
	var builds int
	e := c.Frontend(h, func() (*FrontendEntry, int64) { builds++; return &FrontendEntry{}, 1 })
	if e == nil || builds != 1 {
		t.Error("nil cache must pass through to the builder")
	}
	if _, err := c.FuncIR(fh("x"), func() (*ir.Func, error) { return &ir.Func{}, nil }); err != nil {
		t.Error(err)
	}
	if _, ok := c.PeekObject(fh("x"), "default"); ok {
		t.Error("nil cache peek must miss")
	}
	c.PutSource(h, []byte("x"))
	if _, ok := c.Source(h); ok {
		t.Error("nil cache must not store")
	}
	if c.Stats() != (Stats{}) || c.Len() != 0 {
		t.Error("nil cache stats must be zero")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{FrontendHits: 1, IRMisses: 2, RPCBytesSaved: 10}
	a.Add(Stats{FrontendHits: 2, IRMisses: 1, RPCBytesSaved: 5, Evictions: 3})
	want := Stats{FrontendHits: 3, IRMisses: 3, RPCBytesSaved: 15, Evictions: 3}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
	if want.Hits() != 3 || want.Misses() != 3 {
		t.Error("Hits/Misses totals wrong")
	}
}

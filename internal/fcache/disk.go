package fcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultDiskMaxBytes is the default size cap of a disk-backed object tier.
const DefaultDiskMaxBytes = 1 << 30

// DefaultHardCapFactor scales the soft byte cap into the hard one for
// replica-aware eviction: sole-holder entries may keep the tier above the
// soft cap, but never above factor × cap.
const DefaultHardCapFactor = 2

// diskTier persists object-tier entries as content-addressed files so a
// fresh process over the same directory starts warm. Layout and protocol:
//
//   - Each entry is one file named o-<sha256hex(cache key)>.wfc holding a
//     checksummed record (record.go) framing the gob-encoded ObjectEntry
//     under its full cache key (so a filename collision can never alias).
//     A record whose checksum or key does not match is corrupt: it is
//     deleted and reported as a miss, and the function is simply recompiled.
//   - Writes go to an os.CreateTemp("tmp-*") file in the same directory and
//     are renamed into place, so readers only ever observe complete records.
//     A crash mid-write leaves a tmp-* file that no reader looks at; opening
//     the directory removes such leftovers.
//   - There is no separate index file: open rebuilds the index by scanning
//     the directory, which makes the tier safe to share between processes
//     (entries are deterministic, so concurrent writers of the same key
//     produce identical content and last-rename-wins is harmless).
//   - The file mtime doubles as the access time: hits touch it, and when the
//     directory exceeds its byte cap the oldest-mtime files are removed
//     first.
//
// With a peer view attached (AttachPeers), eviction is fleet-aware: entries
// some sibling also holds are redundant replicas and go first; entries this
// tier is the last known holder of survive the soft cap and are evicted
// oldest-first only once the directory exceeds the hard cap (hardMax).
// Losing the last replica of a hash costs the whole fleet a recompile;
// losing a redundant one costs a 32-byte refetch.
type diskTier struct {
	mu    sync.Mutex
	dir   string
	max   int64
	hard  int64
	used  int64
	files map[string]diskFile // filename -> size and last access

	// replicas reports how many peers are believed to hold the entry whose
	// cache key digests to the argument (nil without a peer view). It is
	// called with mu held and must not call back into the tier.
	replicas func(digest [sha256.Size]byte) int
}

type diskFile struct {
	size  int64
	atime time.Time
}

func diskFileName(key string) string {
	sum := KeyDigest(key)
	return "o-" + hex.EncodeToString(sum[:]) + ".wfc"
}

// digestOfName recovers the key digest encoded in an object file's name.
func digestOfName(name string) (d [sha256.Size]byte, ok bool) {
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "o-"), ".wfc")
	raw, err := hex.DecodeString(hexPart)
	if err != nil || len(raw) != sha256.Size {
		return d, false
	}
	copy(d[:], raw)
	return d, true
}

// openDiskTier opens (creating if needed) dir as a persistent object tier:
// it removes leftovers of interrupted writes, rebuilds the index by
// scanning, and enforces the size cap immediately.
func openDiskTier(dir string, maxBytes int64) (*diskTier, error) {
	if maxBytes < 1 {
		maxBytes = DefaultDiskMaxBytes
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	d := &diskTier{dir: dir, max: maxBytes, hard: DefaultHardCapFactor * maxBytes, files: make(map[string]diskFile)}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "tmp-"):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "o-") && strings.HasSuffix(name, ".wfc"):
			info, err := e.Info()
			if err != nil {
				continue
			}
			d.files[name] = diskFile{size: info.Size(), atime: info.ModTime()}
			d.used += info.Size()
		}
	}
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	return d, nil
}

// digests lists the key digests of every resident object file — the disk
// tier's contribution to the peer protocol's Bloom summary. Filenames are
// the digests, so a freshly scanned directory is summarizable without
// reading a single record.
func (d *diskTier) digests() [][sha256.Size]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][sha256.Size]byte, 0, len(d.files))
	for name := range d.files {
		if dg, ok := digestOfName(name); ok {
			out = append(out, dg)
		}
	}
	return out
}

// load reads the entry stored under key. ok=false with a nil error is a
// plain miss; a non-nil error means a corrupt entry was found and deleted.
func (d *diskTier) load(key string) (*ObjectEntry, bool, error) {
	name := diskFileName(key)
	path := filepath.Join(d.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		d.forget(name)
		return nil, false, nil // miss (possibly evicted by another process)
	}
	gotKey, payload, err := DecodeRecord(data)
	if err != nil {
		d.discard(name)
		return nil, false, fmt.Errorf("disk cache: %s: %v", name, err)
	}
	if gotKey != key {
		d.discard(name)
		return nil, false, fmt.Errorf("disk cache: key mismatch in %s", name)
	}
	var e ObjectEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		d.discard(name)
		return nil, false, fmt.Errorf("disk cache: undecodable entry %s: %v", name, err)
	}
	now := time.Now()
	os.Chtimes(path, now, now) // mtime is the access time for eviction
	d.mu.Lock()
	if f, ok := d.files[name]; ok {
		f.atime = now
		d.files[name] = f
	} else {
		d.files[name] = diskFile{size: int64(len(data)), atime: now}
		d.used += int64(len(data))
	}
	d.mu.Unlock()
	return &e, true, nil
}

// store writes the entry for key unless already present. It returns whether
// a new file was written and how many files eviction removed.
func (d *diskTier) store(key string, e *ObjectEntry) (written bool, evicted int64, err error) {
	name := diskFileName(key)
	path := filepath.Join(d.dir, name)
	d.mu.Lock()
	_, have := d.files[name]
	d.mu.Unlock()
	if have {
		return false, 0, nil
	}
	if _, statErr := os.Stat(path); statErr == nil {
		return false, 0, nil // another process beat us to it
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return false, 0, err
	}
	data, err := EncodeRecord(key, payload.Bytes())
	if err != nil {
		return false, 0, err
	}
	if int64(len(data)) > d.max {
		return false, 0, nil // larger than the whole tier: never persisted
	}

	if err := atomicWrite(d.dir, path, data); err != nil {
		return false, 0, err
	}

	d.mu.Lock()
	d.files[name] = diskFile{size: int64(len(data)), atime: time.Now()}
	d.used += int64(len(data))
	evicted = d.evictLocked()
	d.mu.Unlock()
	return true, evicted, nil
}

// forget drops name from the index without touching the file (used when the
// file turned out not to exist).
func (d *diskTier) forget(name string) {
	d.mu.Lock()
	if f, ok := d.files[name]; ok {
		d.used -= f.size
		delete(d.files, name)
	}
	d.mu.Unlock()
}

// discard deletes a corrupt entry from disk and index.
func (d *diskTier) discard(name string) {
	os.Remove(filepath.Join(d.dir, name))
	d.forget(name)
}

// setReplicas installs the peer view consulted by fleet-aware eviction.
func (d *diskTier) setReplicas(f func(digest [sha256.Size]byte) int) {
	d.mu.Lock()
	d.replicas = f
	d.mu.Unlock()
}

// evictLocked removes files until the tier fits its caps, returning the
// number removed. Caller holds d.mu.
//
// Without a peer view this is plain LRU against the (soft) byte cap. With
// one, redundant replicas — entries whose key digest some peer's summary
// also claims — are evicted first, oldest-accessed first; entries this tier
// believes it is the last holder of are kept past the soft cap and evicted
// (again oldest first) only while the directory exceeds the hard cap.
func (d *diskTier) evictLocked() int64 {
	if d.used <= d.max {
		return 0
	}
	type aged struct {
		name string
		f    diskFile
	}
	all := make([]aged, 0, len(d.files))
	for name, f := range d.files {
		all = append(all, aged{name, f})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].f.atime.Before(all[j].f.atime) })
	remove := func(a aged) {
		os.Remove(filepath.Join(d.dir, a.name))
		d.used -= a.f.size
		delete(d.files, a.name)
	}
	var n int64
	if d.replicas == nil {
		for _, a := range all {
			if d.used <= d.max {
				break
			}
			remove(a)
			n++
		}
		return n
	}
	// Fleet-aware pass 1: redundant replicas go first. A digest that cannot
	// be recovered from the filename is conservatively treated as
	// sole-holder (protected until the hard cap).
	removed := make(map[string]bool)
	for _, a := range all {
		if d.used <= d.max {
			break
		}
		dg, ok := digestOfName(a.name)
		if !ok || d.replicas(dg) < 1 {
			continue
		}
		remove(a)
		removed[a.name] = true
		n++
	}
	// Pass 2: the last holder of a hash evicts it only past the hard cap.
	for _, a := range all {
		if d.used <= d.hard {
			break
		}
		if removed[a.name] {
			continue
		}
		remove(a)
		n++
	}
	return n
}

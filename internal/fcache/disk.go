package fcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultDiskMaxBytes is the default size cap of a disk-backed object tier.
const DefaultDiskMaxBytes = 1 << 30

// diskTier persists object-tier entries as content-addressed files so a
// fresh process over the same directory starts warm. Layout and protocol:
//
//   - Each entry is one file named o-<sha256hex(cache key)>.wfc holding a
//     gob diskRecord{Key, Payload, Sum}: the full cache key (so a filename
//     collision can never alias), the gob-encoded ObjectEntry, and a
//     checksum over both. A record whose checksum or key does not match is
//     corrupt: it is deleted and reported as a miss, and the function is
//     simply recompiled.
//   - Writes go to an os.CreateTemp("tmp-*") file in the same directory and
//     are renamed into place, so readers only ever observe complete records.
//     A crash mid-write leaves a tmp-* file that no reader looks at; opening
//     the directory removes such leftovers.
//   - There is no separate index file: open rebuilds the index by scanning
//     the directory, which makes the tier safe to share between processes
//     (entries are deterministic, so concurrent writers of the same key
//     produce identical content and last-rename-wins is harmless).
//   - The file mtime doubles as the access time: hits touch it, and when the
//     directory exceeds its byte cap the oldest-mtime files are removed
//     first.
type diskTier struct {
	mu    sync.Mutex
	dir   string
	max   int64
	used  int64
	files map[string]diskFile // filename -> size and last access
}

type diskFile struct {
	size  int64
	atime time.Time
}

type diskRecord struct {
	Key     string
	Payload []byte
	Sum     [sha256.Size]byte
}

func recordSum(key string, payload []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(key))
	h.Write(payload)
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

func diskFileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return "o-" + hex.EncodeToString(sum[:]) + ".wfc"
}

// openDiskTier opens (creating if needed) dir as a persistent object tier:
// it removes leftovers of interrupted writes, rebuilds the index by
// scanning, and enforces the size cap immediately.
func openDiskTier(dir string, maxBytes int64) (*diskTier, error) {
	if maxBytes < 1 {
		maxBytes = DefaultDiskMaxBytes
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	d := &diskTier{dir: dir, max: maxBytes, files: make(map[string]diskFile)}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "tmp-"):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "o-") && strings.HasSuffix(name, ".wfc"):
			info, err := e.Info()
			if err != nil {
				continue
			}
			d.files[name] = diskFile{size: info.Size(), atime: info.ModTime()}
			d.used += info.Size()
		}
	}
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	return d, nil
}

// load reads the entry stored under key. ok=false with a nil error is a
// plain miss; a non-nil error means a corrupt entry was found and deleted.
func (d *diskTier) load(key string) (*ObjectEntry, bool, error) {
	name := diskFileName(key)
	path := filepath.Join(d.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		d.forget(name)
		return nil, false, nil // miss (possibly evicted by another process)
	}
	var rec diskRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec); err != nil {
		d.discard(name)
		return nil, false, fmt.Errorf("disk cache: undecodable record %s: %v", name, err)
	}
	if rec.Key != key || rec.Sum != recordSum(rec.Key, rec.Payload) {
		d.discard(name)
		return nil, false, fmt.Errorf("disk cache: checksum mismatch in %s", name)
	}
	var e ObjectEntry
	if err := gob.NewDecoder(bytes.NewReader(rec.Payload)).Decode(&e); err != nil {
		d.discard(name)
		return nil, false, fmt.Errorf("disk cache: undecodable entry %s: %v", name, err)
	}
	now := time.Now()
	os.Chtimes(path, now, now) // mtime is the access time for eviction
	d.mu.Lock()
	if f, ok := d.files[name]; ok {
		f.atime = now
		d.files[name] = f
	} else {
		d.files[name] = diskFile{size: int64(len(data)), atime: now}
		d.used += int64(len(data))
	}
	d.mu.Unlock()
	return &e, true, nil
}

// store writes the entry for key unless already present. It returns whether
// a new file was written and how many files eviction removed.
func (d *diskTier) store(key string, e *ObjectEntry) (written bool, evicted int64, err error) {
	name := diskFileName(key)
	path := filepath.Join(d.dir, name)
	d.mu.Lock()
	_, have := d.files[name]
	d.mu.Unlock()
	if have {
		return false, 0, nil
	}
	if _, statErr := os.Stat(path); statErr == nil {
		return false, 0, nil // another process beat us to it
	}

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return false, 0, err
	}
	rec := diskRecord{Key: key, Payload: payload.Bytes()}
	rec.Sum = recordSum(rec.Key, rec.Payload)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return false, 0, err
	}
	if int64(buf.Len()) > d.max {
		return false, 0, nil // larger than the whole tier: never persisted
	}

	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return false, 0, err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return false, 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return false, 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return false, 0, err
	}

	d.mu.Lock()
	d.files[name] = diskFile{size: int64(buf.Len()), atime: time.Now()}
	d.used += int64(buf.Len())
	evicted = d.evictLocked()
	d.mu.Unlock()
	return true, evicted, nil
}

// forget drops name from the index without touching the file (used when the
// file turned out not to exist).
func (d *diskTier) forget(name string) {
	d.mu.Lock()
	if f, ok := d.files[name]; ok {
		d.used -= f.size
		delete(d.files, name)
	}
	d.mu.Unlock()
}

// discard deletes a corrupt entry from disk and index.
func (d *diskTier) discard(name string) {
	os.Remove(filepath.Join(d.dir, name))
	d.forget(name)
}

// evictLocked removes oldest-accessed files until the tier fits its cap,
// returning the number removed. Caller holds d.mu.
func (d *diskTier) evictLocked() int64 {
	if d.used <= d.max {
		return 0
	}
	type aged struct {
		name string
		f    diskFile
	}
	all := make([]aged, 0, len(d.files))
	for name, f := range d.files {
		all = append(all, aged{name, f})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].f.atime.Before(all[j].f.atime) })
	var n int64
	for _, a := range all {
		if d.used <= d.max {
			break
		}
		os.Remove(filepath.Join(d.dir, a.name))
		d.used -= a.f.size
		delete(d.files, a.name)
		n++
	}
	return n
}

package compiler

// Parity suite for the parallel frontend: FrontendParallel must be
// observationally identical to the sequential Frontend — same diagnostics,
// same checked tree, same semantic info shape, same per-function incremental
// hashes — across clean and error-laden sources and every worker count. Plus
// cancellation (prompt, leak-free exit) and the cache integration (a
// cancelled parallel build must not poison the frontend tier).

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/fcache"
	"repro/internal/parser"
	"repro/internal/wgen"
)

// frontendCorpus covers the three frontend regimes: clean modules (span-
// sliced parse + concurrent check), syntax errors (no outline — sequential
// fallback), and semantic errors (parallel check with deterministic merge).
func frontendCorpus() map[string][]byte {
	return map[string][]byte{
		"small":    wgen.SmallFuncsProgram(8),
		"mixed":    wgen.MixedProgram(6),
		"multisec": wgen.MultiSectionProgram(wgen.Small, 3),
		"wide":     wgen.WideProgram(16, 4),
		"user":     wgen.UserProgram(),
		"syntax_error": []byte(`module t
section 1 {
	function f(): int { return 1 }
	function g(): int { return f(); }
}
`),
		"semantic_errors": []byte(`module t
section 1 {
	function f(x: int): int {
		var b: bool = x;
		return z;
	}
	function f(): int { return 3; }
	function g(): int { return f(1); }
}
`),
		"redecl_missing_return": []byte(`module t
section 1 {
	function f(): int { var x: int = 1; x = 2; }
	function f(): int { return 3; }
	function g(): int { return f(); }
}
`),
	}
}

// TestFrontendParallelParity checks FrontendParallel ≡ Frontend across the
// corpus and worker counts 1/2/4/8: diagnostics, checked-tree print,
// semantic-info shape, and per-function incremental hashes. Each side runs
// against its own byte slice copy only of results — the AST is mutated by
// checking, so each frontend call parses its own tree already.
func TestFrontendParallelParity(t *testing.T) {
	for name, src := range frontendCorpus() {
		for _, workers := range []int{1, 2, 4, 8} {
			seqMod, seqInfo, seqBag := Frontend("m.w2", src)
			var timing FrontendTiming
			parMod, parInfo, parBag, err := FrontendParallel(context.Background(), "m.w2", src,
				FrontendOptions{Parallel: true, Workers: workers, Timing: &timing})
			if err != nil {
				t.Fatalf("%s/w%d: unexpected error: %v", name, workers, err)
			}

			if got, want := parBag.String(), seqBag.String(); got != want {
				t.Errorf("%s/w%d: diagnostics differ:\n got: %q\nwant: %q", name, workers, got, want)
			}
			if got, want := parBag.ErrorCount(), seqBag.ErrorCount(); got != want {
				t.Errorf("%s/w%d: error count %d, want %d", name, workers, got, want)
			}
			if (parInfo == nil) != (seqInfo == nil) {
				t.Fatalf("%s/w%d: info nil-ness differs: parallel %v, sequential %v",
					name, workers, parInfo == nil, seqInfo == nil)
			}
			if parInfo != nil {
				if got, want := len(parInfo.FuncObjs), len(seqInfo.FuncObjs); got != want {
					t.Errorf("%s/w%d: %d func objects, want %d", name, workers, got, want)
				}
				if got, want := len(parInfo.Uses), len(seqInfo.Uses); got != want {
					t.Errorf("%s/w%d: %d uses, want %d", name, workers, got, want)
				}
			}
			if got, want := ast.Format(parMod), ast.Format(seqMod); got != want {
				t.Errorf("%s/w%d: checked trees differ", name, workers)
			}
			if timing.Workers != workers {
				t.Errorf("%s/w%d: timing reports %d workers", name, workers, timing.Workers)
			}
			if !seqBag.HasErrors() {
				seqHashes := parser.FuncHashes(seqMod, src)
				parHashes := parser.FuncHashes(parMod, src)
				if len(seqHashes) != len(parHashes) {
					t.Fatalf("%s/w%d: %d hashes, want %d", name, workers, len(parHashes), len(seqHashes))
				}
				for k, want := range seqHashes {
					if got, ok := parHashes[k]; !ok || got != want {
						t.Errorf("%s/w%d: hash mismatch for s%d.f%d", name, workers, k.Section, k.Index)
					}
				}
			}
		}
	}
}

// TestFrontendEntryCachedWithParity checks the cache integration end to end:
// an entry built by the parallel frontend must be interchangeable with one
// built sequentially (same module print, diagnostics, and hash set), and a
// second lookup must hit the entry the parallel build filled.
func TestFrontendEntryCachedWithParity(t *testing.T) {
	src := wgen.WideProgram(12, 3)
	h := fcache.HashSource(src)

	cache := fcache.New(1 << 20)
	par, err := FrontendEntryCachedWith(context.Background(), cache, h, "m.w2", src,
		FrontendOptions{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq := FrontendEntryCached(nil, h, "m.w2", src)

	if got, want := ast.Format(par.Module), ast.Format(seq.Module); got != want {
		t.Error("cached modules differ")
	}
	if got, want := par.Bag.String(), seq.Bag.String(); got != want {
		t.Errorf("cached diagnostics differ: %q vs %q", got, want)
	}
	if len(par.FuncHashes) != len(seq.FuncHashes) {
		t.Fatalf("%d hashes, want %d", len(par.FuncHashes), len(seq.FuncHashes))
	}
	for k, want := range seq.FuncHashes {
		if par.FuncHashes[k] != want {
			t.Errorf("hash mismatch for %v", k)
		}
	}

	hit, err := FrontendEntryCachedWith(context.Background(), cache, h, "m.w2", src,
		FrontendOptions{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hit != par {
		t.Error("second lookup rebuilt instead of hitting the cached entry")
	}
}

// TestFrontendParallelCancel checks a cancelled frontend exits promptly with
// ctx's error, returns nothing, leaks no goroutines — and that the
// cancellation is not cached: an immediate retry through the same cache with
// a live context succeeds.
func TestFrontendParallelCancel(t *testing.T) {
	src := wgen.WideProgram(48, 4)
	h := fcache.HashSource(src)
	cache := fcache.New(1 << 20)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FrontendEntryCachedWith(ctx, cache, h, "m.w2", src,
		FrontendOptions{Parallel: true, Workers: 4})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}

	// The cache must not have memoized the cancellation.
	e, err := FrontendEntryCachedWith(context.Background(), cache, h, "m.w2", src,
		FrontendOptions{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if e.Module == nil || e.Bag.HasErrors() || len(e.FuncHashes) == 0 {
		t.Errorf("retry produced a damaged entry: %+v", e)
	}
	seq, _, seqBag := Frontend("m.w2", src)
	if got, want := ast.Format(e.Module), ast.Format(seq); got != want {
		t.Error("retried entry differs from the sequential frontend")
	}
	if got, want := e.Bag.String(), seqBag.String(); got != want {
		t.Errorf("retried diagnostics differ: %q vs %q", got, want)
	}
}

package compiler

import (
	"math"
	"testing"

	"repro/internal/codegen"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/warpsim"
)

// runBoth compiles src, executes the module on the array simulator with the
// given input, executes the reference interpreter on the same input, and
// returns both output streams.
func runBoth(t *testing.T, src string, input []float64, opts Options) (sim, ref []float64) {
	t.Helper()
	res, err := CompileModule("test.w2", []byte(src), opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	drv := res.Driver

	arr := warpsim.NewArray(res.Module, warpsim.Config{})
	words, _, err := arr.Run(drv.EncodeInput(input))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	sim = drv.DecodeOutput(words)

	m, info, bag := Frontend("test.w2", []byte(src))
	if bag.HasErrors() {
		t.Fatalf("frontend: %s", bag.String())
	}
	var vals []interp.Value
	for _, v := range input {
		vals = append(vals, interp.FloatVal(v))
	}
	out, err := interp.RunModule(m, info, vals, interp.Limits{})
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	for _, v := range out {
		ref = append(ref, v.AsFloat())
	}
	return sim, ref
}

// approxEqual compares with float32 wire tolerance.
func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-4*scale
}

func checkStreams(t *testing.T, sim, ref []float64) {
	t.Helper()
	if len(sim) != len(ref) {
		t.Fatalf("stream lengths differ: sim=%d ref=%d\nsim: %v\nref: %v", len(sim), len(ref), sim, ref)
	}
	for i := range sim {
		if !approxEqual(sim[i], ref[i]) {
			t.Errorf("out[%d]: sim=%g ref=%g", i, sim[i], ref[i])
		}
	}
}

func TestEndToEndScale(t *testing.T) {
	src := `
module scale (in xs: float[8], out ys: float[8])
section 1 {
    function cell() {
        var i: int;
        var v: float;
        for i = 0 to 7 {
            receive(X, v);
            send(Y, v * 2.5 + 1.0);
        }
    }
}
`
	in := []float64{1, -2, 3.5, 0, 7, -0.25, 100, 9}
	sim, ref := runBoth(t, src, in, Options{})
	checkStreams(t, sim, ref)
}

func TestEndToEndTwoSectionPipeline(t *testing.T) {
	src := `
module pipe (in xs: float[6], out ys: float[6])
section 1 of 2 {
    function square(v: float): float {
        return v * v;
    }
    function cell1() {
        var i: int;
        var v: float;
        for i = 0 to 5 {
            receive(X, v);
            send(Y, square(v) - 1.0);
        }
    }
}
section 2 of 2 {
    function cell2() {
        var i: int;
        var v: float;
        var acc: float = 0.0;
        for i = 0 to 5 {
            receive(X, v);
            acc = acc + v;
            send(Y, acc);
        }
    }
}
`
	in := []float64{1, 2, 3, 4, 5, 6}
	sim, ref := runBoth(t, src, in, Options{})
	checkStreams(t, sim, ref)
}

func TestEndToEndControlFlow(t *testing.T) {
	src := `
module ctl (in xs: float[10], out ys: float[10])
section 1 {
    function cell() {
        var i: int;
        var v: float;
        for i = 0 to 9 {
            receive(X, v);
            if v > 0.0 {
                if v > 10.0 {
                    v = 10.0 + (v - 10.0) / 2.0;
                }
            } else {
                v = -v;
            }
            while v > 5.0 {
                v = v - 1.5;
            }
            send(Y, v);
        }
    }
}
`
	in := []float64{-3, 0, 2, 7.5, 12, 100, -50, 5.01, 4.99, 1}
	sim, ref := runBoth(t, src, in, Options{})
	checkStreams(t, sim, ref)
}

func TestEndToEndArraysAndMath(t *testing.T) {
	src := `
module fir (in xs: float[16], out ys: float[16])
section 1 {
    function cell() {
        var w: float[4];
        var hist: float[4];
        var i: int;
        var j: int;
        var v: float;
        var acc: float;
        w[0] = 0.25; w[1] = 0.5; w[2] = 0.75; w[3] = 1.0;
        for j = 0 to 3 {
            hist[j] = 0.0;
        }
        for i = 0 to 15 {
            receive(X, v);
            hist[i % 4] = v;
            acc = 0.0;
            for j = 0 to 3 {
                acc = acc + w[j] * hist[j];
            }
            send(Y, sqrt(abs(acc)) + min(acc, 2.0));
        }
    }
}
`
	in := make([]float64, 16)
	for i := range in {
		in[i] = math.Sin(float64(i)*0.7) * 4
	}
	sim, ref := runBoth(t, src, in, Options{})
	checkStreams(t, sim, ref)
}

func TestEndToEndIntStream(t *testing.T) {
	src := `
module ints (in xs: float[8], out ys: float[8])
section 1 {
    function cell() {
        var i: int;
        var n: int;
        for i = 0 to 7 {
            receive(X, n);
            send(Y, n * n % 97 + i);
        }
    }
}
`
	in := []float64{0, 1, 2, 3, 10, 25, 31, 63}
	sim, ref := runBoth(t, src, in, Options{})
	checkStreams(t, sim, ref)
}

// TestPipeliningCorrectAndApplied verifies that software pipelining (a)
// actually triggers for a constant-trip float loop, and (b) preserves
// results exactly vs. the unpipelined compilation and the interpreter.
func TestPipeliningCorrectAndApplied(t *testing.T) {
	src := `
module mac (in xs: float[64], out ys: float[1])
section 1 {
    function cell() {
        var i: int;
        var v: float;
        var acc: float = 0.0;
        for i = 0 to 63 {
            receive(X, v);
            acc = acc + v * 0.5;
        }
        send(Y, acc);
    }
}
`
	res, err := CompileModule("mac.w2", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipelined := 0
	for _, fr := range res.Funcs {
		pipelined += fr.GenStats.LoopsPipelined
	}
	if pipelined == 0 {
		t.Error("expected the constant-trip loop to be software-pipelined")
	}

	in := make([]float64, 64)
	for i := range in {
		in[i] = float64(i%7) - 3.0
	}
	sim, ref := runBoth(t, src, in, Options{})
	checkStreams(t, sim, ref)

	// Ablation: disable pipelining; results must be identical.
	simNoPipe, _ := runBoth(t, src, in, Options{Codegen: codegen.Options{DisablePipelining: true}})
	checkStreams(t, simNoPipe, ref)
}

func TestPipeliningSpeedsUpLoop(t *testing.T) {
	src := `
module dot (in xs: float[128], out ys: float[1])
section 1 {
    function cell() {
        var i: int;
        var a: float;
        var acc: float = 0.0;
        for i = 0 to 63 {
            receive(X, a);
            var b: float;
            receive(X, b);
            acc = acc + a * b;
        }
        send(Y, acc);
    }
}
`
	in := make([]float64, 128)
	for i := range in {
		in[i] = float64(i) * 0.01
	}
	cycles := func(opts Options) int64 {
		res, err := CompileModule("dot.w2", []byte(src), opts)
		if err != nil {
			t.Fatal(err)
		}
		arr := warpsim.NewArray(res.Module, warpsim.Config{})
		_, stats, err := arr.Run(res.Driver.EncodeInput(in))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cycles
	}
	fast := cycles(Options{})
	slow := cycles(Options{Codegen: codegen.Options{DisablePipelining: true}})
	naive := cycles(Options{Codegen: codegen.Options{DisableScheduling: true, DisablePipelining: true}})
	if fast >= slow {
		t.Errorf("pipelined run (%d cycles) not faster than list-scheduled (%d cycles)", fast, slow)
	}
	if slow >= naive {
		t.Errorf("list-scheduled run (%d cycles) not faster than naive (%d cycles)", slow, naive)
	}
	t.Logf("cycles: pipelined=%d scheduled=%d naive=%d", fast, slow, naive)
}

func TestEndToEndNoStreams(t *testing.T) {
	// A generator module: no input, output only.
	src := `
module gen (out ys: float[10])
section 1 {
    function cell() {
        var i: int;
        for i = 0 to 9 {
            send(Y, float(i * i));
        }
    }
}
`
	sim, ref := runBoth(t, src, nil, Options{})
	checkStreams(t, sim, ref)
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := CompileModule("bad.w2", []byte("module m section 1 { function f() { x = 1; } }"), Options{}); err == nil {
		t.Error("semantic error must abort compilation")
	}
	if _, err := CompileModule("bad2.w2", []byte("module m section 1 {"), Options{}); err == nil {
		t.Error("syntax error must abort compilation")
	}
	// Entry with parameters cannot be a cell program.
	srcParam := `
module m
section 1 {
    function f(a: int): int { return a; }
}
`
	if _, err := CompileModule("bad3.w2", []byte(srcParam), Options{}); err == nil {
		t.Error("entry function with parameters must be rejected")
	}
}

func TestSpillPressureStillCorrect(t *testing.T) {
	// More than 60 simultaneously-live values forces spilling.
	src := "module spill (in xs: float[1], out ys: float[1])\nsection 1 {\n    function cell() {\n        var v: float;\n        receive(X, v);\n"
	// Declare 70 locals, all computed from v, all used afterwards.
	for i := 0; i < 70; i++ {
		src += varDecl(i)
	}
	src += "        var acc: float = 0.0;\n"
	for i := 0; i < 70; i++ {
		src += useDecl(i)
	}
	src += "        send(Y, acc);\n    }\n}\n"

	in := []float64{1.5}
	sim, ref := runBoth(t, src, in, Options{})
	checkStreams(t, sim, ref)

	res, err := CompileModule("spill.w2", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	spills := 0
	for _, fr := range res.Funcs {
		spills += fr.GenStats.Spills
	}
	if spills == 0 {
		t.Error("expected register spills with 70 live values")
	}
}

func varDecl(i int) string {
	return "        var t" + itoa(i) + ": float = v * " + itoa(i+1) + ".0 + " + itoa(i) + ".5;\n"
}

func useDecl(i int) string {
	return "        acc = acc + t" + itoa(i) + ";\n"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestSequentialTimingsRecorded(t *testing.T) {
	src := `
module m (in xs: float[4], out ys: float[4])
section 1 {
    function cell() {
        var i: int;
        var v: float;
        for i = 0 to 3 {
            receive(X, v);
            send(Y, v);
        }
    }
}
`
	res, err := CompileModule("m.w2", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Funcs) != 1 || res.Funcs[0].CPUTime <= 0 {
		t.Error("per-function CPU time must be measured")
	}
	if res.Module.TotalWords() == 0 {
		t.Error("linked module is empty")
	}
	if res.Driver.InputElems() != 4 || res.Driver.OutputElems() != 4 {
		t.Errorf("driver streams wrong: in=%d out=%d", res.Driver.InputElems(), res.Driver.OutputElems())
	}
}

var _ = machine.NumRegs

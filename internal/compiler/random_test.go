package compiler

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/interp"
	"repro/internal/warpsim"
)

type codegenOptions = codegen.Options

// Randomized end-to-end differential testing: small random cell programs are
// compiled, linked, executed on the array simulator, and checked against the
// reference interpreter. This covers op/latency/scheduling interactions that
// hand-written tests miss.

type progRng struct{ state uint64 }

func (r *progRng) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}
func (r *progRng) intn(n int) int { return int(r.next() % uint64(n)) }

// randomProgram builds a random single-cell module consuming `inputs` floats
// and emitting at least one value. All arithmetic is kept bounded so float32
// and float64 evaluations agree within tolerance.
func randomProgram(seed uint64, inputs int) string {
	r := &progRng{state: seed*2654435761 + 1}
	var sb strings.Builder
	fmt.Fprintf(&sb, "module r%d (in xs: float[%d], out ys: float[8])\n", seed, inputs)
	sb.WriteString("section 1 {\n    function cell() {\n")
	sb.WriteString("        var a: float = 0.5;\n        var b: float = 1.25;\n")
	sb.WriteString("        var c: float;\n        var n: int;\n        var i: int;\n")
	sb.WriteString("        var buf: float[8];\n")

	stmts := []string{
		"a = a * 0.5 + b * 0.25;",
		"b = min(a, b) + 0.125;",
		"c = max(a, -b) * 0.5;",
		"c = abs(a - b);",
		"a = sqrt(abs(b) + 0.5);",
		"buf[i % 8] = a;",
		"b = buf[(i + 3) % 8] * 0.5 + 0.25;",
		"n = n + 1;",
		"n = n * 2 % 7 + 1;",
		"c = float(n % 5) * 0.2;",
		"a = (a + b + c) * 0.3125;",
	}
	// Conditions are integer-only: branching on computed floats would make
	// the float32 cell and the float64 interpreter legitimately diverge at
	// rounding boundaries.
	cond := []string{"n % 2 == 0", "n > 3", "n % 3 != 1", "n > 1 && n < 9"}

	// Receive loop over the inputs with a random body.
	fmt.Fprintf(&sb, "        for i = 0 to %d {\n", inputs-1)
	sb.WriteString("            receive(X, c);\n")
	sb.WriteString("            a = a * 0.5 + c * 0.25;\n")
	for k := 0; k < 3+r.intn(5); k++ {
		if r.intn(4) == 0 {
			fmt.Fprintf(&sb, "            if %s {\n                %s\n            } else {\n                %s\n            }\n",
				cond[r.intn(len(cond))], stmts[r.intn(len(stmts))], stmts[r.intn(len(stmts))])
		} else {
			fmt.Fprintf(&sb, "            %s\n", stmts[r.intn(len(stmts))])
		}
	}
	sb.WriteString("        }\n")
	// A post-loop computation and the outputs.
	for k := 0; k < 1+r.intn(3); k++ {
		fmt.Fprintf(&sb, "        %s\n", stmts[r.intn(len(stmts))])
	}
	sb.WriteString("        send(Y, a);\n        send(Y, b);\n        send(Y, c + float(n));\n")
	sb.WriteString("    }\n}\n")
	return sb.String()
}

func TestRandomProgramsDifferential(t *testing.T) {
	const runs = 25
	for seed := uint64(1); seed <= runs; seed++ {
		src := randomProgram(seed, 6)
		res, err := CompileModule("rand.w2", []byte(src), Options{})
		if err != nil {
			t.Fatalf("seed %d: compile failed: %v\n%s", seed, err, src)
		}
		input := []float64{0.5, -1.25, 2.0, 0.0, 3.5, -0.75}

		arr := warpsim.NewArray(res.Module, warpsim.Config{MaxCycles: 2_000_000})
		words, _, err := arr.Run(res.Driver.EncodeInput(input))
		if err != nil {
			t.Fatalf("seed %d: simulation failed: %v\n%s", seed, err, src)
		}
		sim := res.Driver.DecodeOutput(words)

		m, info, bag := Frontend("rand.w2", []byte(src))
		if bag.HasErrors() {
			t.Fatalf("seed %d: %s", seed, bag.String())
		}
		var vals []interp.Value
		for _, v := range input {
			vals = append(vals, interp.FloatVal(v))
		}
		ref, err := interp.RunModule(m, info, vals, interp.Limits{})
		if err != nil {
			t.Fatalf("seed %d: interpreter failed: %v\n%s", seed, err, src)
		}
		if len(sim) != len(ref) {
			t.Fatalf("seed %d: output lengths differ: sim=%d ref=%d\n%s", seed, len(sim), len(ref), src)
		}
		for i := range sim {
			want := ref[i].AsFloat()
			diff := math.Abs(sim[i] - want)
			scale := math.Max(1, math.Max(math.Abs(sim[i]), math.Abs(want)))
			if diff > 1e-3*scale {
				t.Errorf("seed %d: out[%d] sim=%g ref=%g\n%s", seed, i, sim[i], want, src)
			}
		}
	}
}

// The same random corpus must also survive every code-generation ablation.
func TestRandomProgramsAblationsAgree(t *testing.T) {
	for seed := uint64(100); seed < 108; seed++ {
		src := randomProgram(seed, 4)
		input := []float64{1, -0.5, 0.25, 2}
		var first []float64
		for _, opts := range []Options{
			{},
			{Codegen: codegenNoPipeline()},
			{Codegen: codegenNaive()},
		} {
			res, err := CompileModule("rand.w2", []byte(src), opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			arr := warpsim.NewArray(res.Module, warpsim.Config{MaxCycles: 2_000_000})
			words, _, err := arr.Run(res.Driver.EncodeInput(input))
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
			out := res.Driver.DecodeOutput(words)
			if first == nil {
				first = out
				continue
			}
			if len(out) != len(first) {
				t.Fatalf("seed %d: ablation changed output count", seed)
			}
			for i := range out {
				if out[i] != first[i] {
					t.Errorf("seed %d: ablation changed out[%d]: %g vs %g", seed, i, out[i], first[i])
				}
			}
		}
	}
}

func codegenNoPipeline() (o codegenOptions) { o.DisablePipelining = true; return }
func codegenNaive() (o codegenOptions) {
	o.DisablePipelining = true
	o.DisableScheduling = true
	return
}

// Parallel frontend driver: phase 1 with span-sliced parsing
// (parser.ParseModuleParallel) and concurrent body checking
// (sem.CheckParallel). The sequential Frontend stays the oracle — both
// produce word-identical trees, semantic info, and diagnostics — and the
// fallback for anything the parallel path cannot slice (sources with syntax
// errors have no outline and take one sequential parse).
package compiler

import (
	"context"
	"runtime"
	"time"

	"repro/internal/ast"
	"repro/internal/fcache"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// FrontendOptions selects the frontend implementation for one compilation.
type FrontendOptions struct {
	// Parallel selects the span-sliced parallel frontend; false keeps the
	// sequential path (byte-identical output either way).
	Parallel bool
	// Workers bounds the frontend's fan-out; <1 means GOMAXPROCS.
	Workers int
	// Outline, when the caller already parsed one (the master's setup parse),
	// lets the parallel parse start slicing immediately. Nil makes
	// FrontendParallel derive it from src.
	Outline *parser.Outline
	// Timing, when non-nil, receives the internal wall times of the parallel
	// path. Untouched on the sequential path and on cache hits.
	Timing *FrontendTiming
}

// FrontendTiming reports where the parallel frontend's wall time went.
type FrontendTiming struct {
	ParseWall time.Duration // span-sliced parse, including the skeleton pass
	CheckWall time.Duration // concurrent semantic checking
	Workers   int           // resolved worker bound
}

// FrontendParallel runs phase 1 with function-grain parallelism: bodies are
// parsed from their outline spans and checked concurrently on at most
// fopts.Workers goroutines. Tree, semantic info, and diagnostics are
// word-identical to Frontend's. The error is non-nil only when ctx was
// cancelled; every goroutine has exited by return.
func FrontendParallel(ctx context.Context, file string, src []byte, fopts FrontendOptions) (*ast.Module, *sem.Info, *source.DiagBag, error) {
	workers := fopts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	outline := fopts.Outline
	if outline == nil {
		// No outline given: derive one. A source with syntax errors has no
		// outline; ParseModuleParallel then falls back to one sequential
		// parse whose diagnostics are the sequential frontend's exactly.
		outline = parser.ParseOutline(file, src, &source.DiagBag{})
	}

	bag := &source.DiagBag{}
	t0 := time.Now()
	m, err := parser.ParseModuleParallel(ctx, file, src, outline, workers, bag)
	parseWall := time.Since(t0)
	if err != nil {
		return nil, nil, nil, err
	}
	if fopts.Timing != nil {
		*fopts.Timing = FrontendTiming{ParseWall: parseWall, Workers: workers}
	}
	if bag.HasErrors() {
		return m, nil, bag, nil
	}

	t1 := time.Now()
	info, err := sem.CheckParallel(ctx, m, bag, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	if fopts.Timing != nil {
		fopts.Timing.CheckWall = time.Since(t1)
	}
	return m, info, bag, nil
}

// FrontendWith runs phase 1 with the implementation fopts selects: the
// sequential Frontend, or FrontendParallel. Output is identical either way.
func FrontendWith(ctx context.Context, file string, src []byte, fopts FrontendOptions) (*ast.Module, *sem.Info, *source.DiagBag, error) {
	if !fopts.Parallel {
		m, info, bag := Frontend(file, src)
		return m, info, bag, nil
	}
	return FrontendParallel(ctx, file, src, fopts)
}

// packageFrontendEntry wraps checked frontend artifacts as a cache entry,
// computing per-function incremental hashes when the frontend succeeded.
func packageFrontendEntry(m *ast.Module, info *sem.Info, bag *source.DiagBag, src []byte) (*fcache.FrontendEntry, int64) {
	e := &fcache.FrontendEntry{Module: m, Info: info, Bag: bag}
	if m != nil && !bag.HasErrors() {
		hs := parser.FuncHashes(m, src)
		e.FuncHashes = make(map[fcache.FuncKey]fcache.FuncHash, len(hs))
		for k, v := range hs {
			e.FuncHashes[fcache.FuncKey{Section: k.Section, Index: k.Index}] = fcache.FuncHash(v)
		}
	}
	// The checked AST is a few times larger than its source text; the
	// budget only needs the right order of magnitude.
	return e, int64(len(src))*8 + 4096
}

// FrontendEntryCachedWith is FrontendEntryCached with a selectable frontend
// implementation: on a cache miss the entry is built by FrontendWith, so a
// parallel frontend fills the same tier the sequential one reads (the
// artifacts are word-identical). Cancellation of a parallel build propagates
// as an error to every waiter and caches nothing.
func FrontendEntryCachedWith(ctx context.Context, cache *fcache.Cache, h fcache.SourceHash, file string, src []byte, fopts FrontendOptions) (*fcache.FrontendEntry, error) {
	if !fopts.Parallel {
		return FrontendEntryCached(cache, h, file, src), nil
	}
	build := func() (*fcache.FrontendEntry, int64, error) {
		m, info, bag, err := FrontendParallel(ctx, file, src, fopts)
		if err != nil {
			return nil, 0, err
		}
		e, cost := packageFrontendEntry(m, info, bag, src)
		return e, cost, nil
	}
	if cache == nil {
		e, _, err := build()
		return e, err
	}
	return cache.FrontendErr(h, build)
}

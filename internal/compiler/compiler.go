// Package compiler is the sequential W2 compiler driver: it wires the four
// phases of the reproduced system together.
//
//	Phase 1: parsing and semantic checking            (internal/parser, sem)
//	Phase 2: flowgraph, local optimization, dataflow  (internal/ir, opt)
//	Phase 3: software pipelining and code generation  (internal/codegen)
//	Phase 4: I/O driver generation, assembly, linking (internal/iodriver, asm, link)
//
// The parallel compiler (internal/core) reuses exactly these pieces: the
// master runs Frontend once, function masters run CompileFunction for their
// function, and the section masters combine objects for the phase-4 tail.
package compiler

import (
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/fcache"
	"repro/internal/iodriver"
	"repro/internal/ir"
	"repro/internal/link"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// Options configures a compilation.
type Options struct {
	Codegen codegen.Options
	// DisableOpt skips phase-2 optimization (ablation).
	DisableOpt bool
}

// FuncResult is the outcome of compiling one function — what a function
// master produces and sends back to its section master.
type FuncResult struct {
	Name    string
	Section int
	IsEntry bool
	Object  *asm.Object
	// ObjectBytes is the wire encoding of Object, filled by the cached
	// compile path so repeat requests for the same artifact do not re-encode
	// it. Nil when the result came from an uncached compile.
	ObjectBytes []byte
	Lines       int

	OptStats opt.Stats
	GenStats codegen.GenStats
	// CPUTime is the measured host time spent compiling this function.
	CPUTime time.Duration
	// Diags carries warnings produced during this function's compilation;
	// the section master merges them (the paper's diagnostic combining).
	Diags *source.DiagBag
}

// Result is a complete module compilation.
type Result struct {
	ModuleName string
	Module     *link.Module
	Driver     *iodriver.Driver
	Funcs      []*FuncResult

	// Warnings is the combined diagnostic output of the compilation: every
	// warning-severity diagnostic from the frontend and the per-function
	// compilations, rendered. The parallel compiler fills it by merging
	// section-master results (the paper's "combining diagnostics" step).
	Warnings []string

	// Phase timings of this sequential run.
	FrontendTime time.Duration
	MiddleTime   time.Duration // phases 2+3 across all functions
	BackendTime  time.Duration // assembly + linking + driver
}

// Frontend runs phase 1. On error the returned AST may be partial; callers
// must abort when diags has errors (the paper's master does exactly this).
func Frontend(file string, src []byte) (*ast.Module, *sem.Info, *source.DiagBag) {
	var bag source.DiagBag
	m := parser.Parse(file, src, &bag)
	if bag.HasErrors() {
		return m, nil, &bag
	}
	info := sem.Check(m, &bag)
	return m, info, &bag
}

// FrontendCached is Frontend backed by the content-addressed cache: the
// module is parsed and checked at most once per source content instead of
// once per function master. h must be HashSource(src). The returned
// artifacts are shared and must be treated as read-only. A nil cache runs
// the frontend directly.
func FrontendCached(cache *fcache.Cache, h fcache.SourceHash, file string, src []byte) (*ast.Module, *sem.Info, *source.DiagBag) {
	if cache == nil {
		return Frontend(file, src)
	}
	e := cache.Frontend(h, func() (*fcache.FrontendEntry, int64) {
		m, info, bag := Frontend(file, src)
		// The checked AST is a few times larger than its source text; the
		// budget only needs the right order of magnitude.
		return &fcache.FrontendEntry{Module: m, Info: info, Bag: bag}, int64(len(src))*8 + 4096
	})
	return e.Module, e.Info, e.Bag
}

// sectionOf resolves the section a function belongs to. It rejects modules
// with duplicate section indices outright instead of silently compiling
// against whichever duplicate was declared last.
func sectionOf(m *ast.Module, fn *ast.FuncDecl) (*ast.Section, error) {
	var sec *ast.Section
	for _, s := range m.Sections {
		if s.Index != fn.SectionIndex {
			continue
		}
		if sec != nil {
			return nil, fmt.Errorf("module declares section %d more than once", fn.SectionIndex)
		}
		sec = s
	}
	if sec == nil {
		return nil, fmt.Errorf("function %s names unknown section %d", fn.Name, fn.SectionIndex)
	}
	return sec, nil
}

// CompileFunction runs phases 2 and 3 for one function of a checked module.
// The function's section-local callees are lowered and inlined as part of
// the work (each function master re-derives what it needs — the processes
// share no memory). CompileFunctionCached is the variant that reuses shared
// lowered IR instead of re-deriving it.
func CompileFunction(m *ast.Module, info *sem.Info, fn *ast.FuncDecl, opts Options) (*FuncResult, error) {
	start := time.Now()
	sec, err := sectionOf(m, fn)
	if err != nil {
		return nil, err
	}

	// Lower this function and every earlier function of its section (its
	// potential callees), then inline in declaration order.
	funcs := make(map[string]*ir.Func)
	var target *ir.Func
	for _, g := range sec.Funcs {
		f, err := ir.Lower(g, info)
		if err != nil {
			return nil, fmt.Errorf("lowering %s: %w", g.Name, err)
		}
		if err := ir.InlineCalls(f, funcs); err != nil {
			return nil, fmt.Errorf("inlining into %s: %w", g.Name, err)
		}
		funcs[g.Name] = f
		if g == fn {
			target = f
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("function %s not found in section %d", fn.Name, sec.Index)
	}
	return finishFunction(fn, sec, target, opts, start)
}

// CompileFunctionCached is CompileFunction backed by the content-addressed
// cache. The section's lowered, inlined flowgraphs are computed once per
// (source, section) and reused, turning the per-function O(section) lowering
// into an amortized O(1) lookup; the target flowgraph is deep-copied before
// optimization so cached IR is never mutated and every compilation stays
// isolated. On top of that, the finished per-function artifact is memoized
// by (source, section, function, options) — the whole compilation is a pure
// function of those inputs, so recompiling unchanged source returns the
// identical object without re-running optimization or code generation.
// h must be the content hash of the module source that produced m. A nil
// cache falls back to the uncached path.
func CompileFunctionCached(cache *fcache.Cache, h fcache.SourceHash, m *ast.Module, info *sem.Info, fn *ast.FuncDecl, opts Options) (*FuncResult, error) {
	if cache == nil {
		return CompileFunction(m, info, fn, opts)
	}
	start := time.Now()
	sec, err := sectionOf(m, fn)
	if err != nil {
		return nil, err
	}
	idx := fn.FuncIndex
	v, err := cache.FuncObject(h, sec.Index, idx, optsKey(opts), func() (any, int64, error) {
		funcs, err := cache.SectionIR(h, sec.Index, func() ([]*ir.Func, error) {
			return LowerSection(sec, info)
		})
		if err != nil {
			return nil, 0, err
		}
		if idx < 0 || idx >= len(funcs) || funcs[idx].Name != fn.Name {
			return nil, 0, fmt.Errorf("cached IR for section %d does not match function %s (index %d)", sec.Index, fn.Name, idx)
		}
		fr, err := finishFunction(fn, sec, funcs[idx].Clone(), opts, start)
		if err != nil {
			return nil, 0, err
		}
		// Encode once at build time: the wire form is as pure a function of
		// the inputs as the object, and every RPC reply needs it.
		fr.ObjectBytes = asm.Encode(fr.Object)
		return fr, objectCost(fr), nil
	})
	if err != nil {
		return nil, err
	}
	// Shared cached value: hand back a shallow copy so the caller-visible
	// CPUTime reflects this request (on a hit, the lookup cost — that is the
	// measured win) without mutating the cached struct.
	fr := *v.(*FuncResult)
	fr.CPUTime = time.Since(start)
	return &fr, nil
}

// optsKey fingerprints an Options value for the object-tier cache key. The
// zero value — every production compile — short-circuits past the reflective
// formatting, which otherwise costs more than the cache hit it keys.
func optsKey(opts Options) string {
	if opts == (Options{}) {
		return "default"
	}
	return fmt.Sprintf("%+v", opts)
}

// objectCost estimates the resident cost of a finished FuncResult.
func objectCost(fr *FuncResult) int64 {
	cost := int64(1024) + int64(len(fr.ObjectBytes))
	if fr.Object != nil {
		cost += 64 * int64(len(fr.Object.Code))
	}
	return cost
}

// LowerSection lowers and inlines every function of sec in declaration
// order, producing call-free flowgraphs. Element i is exactly the flowgraph
// CompileFunction derives for sec.Funcs[i] before optimization.
func LowerSection(sec *ast.Section, info *sem.Info) ([]*ir.Func, error) {
	funcs := make(map[string]*ir.Func)
	out := make([]*ir.Func, 0, len(sec.Funcs))
	for _, g := range sec.Funcs {
		f, err := ir.Lower(g, info)
		if err != nil {
			return nil, fmt.Errorf("lowering %s: %w", g.Name, err)
		}
		if err := ir.InlineCalls(f, funcs); err != nil {
			return nil, fmt.Errorf("inlining into %s: %w", g.Name, err)
		}
		funcs[g.Name] = f
		out = append(out, f)
	}
	return out, nil
}

// finishFunction runs the shared back half of a function compilation:
// optimization, loop inversion, code generation, and assembly of an owned
// (never shared) target flowgraph. start is when the caller began, so
// CPUTime covers the whole per-function compilation.
func finishFunction(fn *ast.FuncDecl, sec *ast.Section, target *ir.Func, opts Options, start time.Time) (*FuncResult, error) {
	isEntry := sec.Entry() == fn
	if isEntry && len(fn.Params) > 0 {
		return nil, fmt.Errorf("entry function %s of section %d must take no parameters", fn.Name, sec.Index)
	}

	res := &FuncResult{
		Name:    fn.Name,
		Section: sec.Index,
		IsEntry: isEntry,
		Lines:   ast.FuncLines(fn),
		Diags:   &source.DiagBag{},
	}

	if !opts.DisableOpt {
		res.OptStats = opt.Optimize(target)
	}
	ir.InvertLoops(target)
	// Re-run cleanup so inverted loops merge into self-loop blocks.
	opt.MergeStraightLine(target)
	opt.EliminateDeadCode(target)
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("%s: invalid IR entering codegen: %w", fn.Name, err)
	}

	pf, gs, err := codegen.Generate(target, isEntry, opts.Codegen)
	if err != nil {
		return nil, err
	}
	res.GenStats = gs

	obj, err := asm.Assemble(pf)
	if err != nil {
		return nil, err
	}
	res.Object = obj
	res.CPUTime = time.Since(start)
	return res, nil
}

// CompileModule runs the complete sequential compiler on source text.
func CompileModule(file string, src []byte, opts Options) (*Result, error) {
	t0 := time.Now()
	m, info, bag := Frontend(file, src)
	if bag.HasErrors() {
		return nil, fmt.Errorf("frontend errors:\n%s", bag.String())
	}
	res := &Result{ModuleName: m.Name, FrontendTime: time.Since(t0)}
	for _, d := range bag.All() {
		if d.Severity == source.Warn {
			res.Warnings = append(res.Warnings, d.String())
		}
	}

	t1 := time.Now()
	for _, sec := range m.Sections {
		for _, fn := range sec.Funcs {
			fr, err := CompileFunction(m, info, fn, opts)
			if err != nil {
				return nil, fmt.Errorf("compiling %s: %w", fn.Name, err)
			}
			res.Funcs = append(res.Funcs, fr)
			for _, d := range fr.Diags.All() {
				if d.Severity == source.Warn {
					res.Warnings = append(res.Warnings, d.String())
				}
			}
		}
	}
	res.MiddleTime = time.Since(t1)

	t2 := time.Now()
	linked, err := LinkResults(m.Name, res.Funcs)
	if err != nil {
		return nil, err
	}
	res.Module = linked
	res.Driver = iodriver.Generate(m)
	res.BackendTime = time.Since(t2)
	return res, nil
}

// LinkResults performs the phase-4 tail shared by the sequential and the
// parallel compiler: grouping function objects by section and linking the
// download module.
func LinkResults(moduleName string, funcs []*FuncResult) (*link.Module, error) {
	bySection := make(map[int][]*asm.Object)
	for _, fr := range funcs {
		bySection[fr.Section] = append(bySection[fr.Section], fr.Object)
	}
	return link.LinkModule(moduleName, bySection)
}

// Package compiler is the sequential W2 compiler driver: it wires the four
// phases of the reproduced system together.
//
//	Phase 1: parsing and semantic checking            (internal/parser, sem)
//	Phase 2: flowgraph, local optimization, dataflow  (internal/ir, opt)
//	Phase 3: software pipelining and code generation  (internal/codegen)
//	Phase 4: I/O driver generation, assembly, linking (internal/iodriver, asm, link)
//
// The parallel compiler (internal/core) reuses exactly these pieces: the
// master runs Frontend once, function masters run CompileFunction for their
// function, and the section masters combine objects for the phase-4 tail.
package compiler

import (
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/fcache"
	"repro/internal/iodriver"
	"repro/internal/ir"
	"repro/internal/link"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// Options configures a compilation.
type Options struct {
	Codegen codegen.Options
	// DisableOpt skips phase-2 optimization (ablation).
	DisableOpt bool
}

// FuncResult is the outcome of compiling one function — what a function
// master produces and sends back to its section master.
type FuncResult struct {
	Name    string
	Section int
	IsEntry bool
	Object  *asm.Object
	Lines   int

	OptStats opt.Stats
	GenStats codegen.GenStats
	// CPUTime is the measured host time spent compiling this function.
	CPUTime time.Duration
	// Diags carries warnings produced during this function's compilation;
	// the section master merges them (the paper's diagnostic combining).
	Diags *source.DiagBag
}

// Result is a complete module compilation.
type Result struct {
	ModuleName string
	Module     *link.Module
	Driver     *iodriver.Driver
	Funcs      []*FuncResult

	// Warnings is the combined diagnostic output of the compilation: every
	// warning-severity diagnostic from the frontend and the per-function
	// compilations, rendered. The parallel compiler fills it by merging
	// section-master results (the paper's "combining diagnostics" step).
	Warnings []string

	// Phase timings of this sequential run.
	FrontendTime time.Duration
	MiddleTime   time.Duration // phases 2+3 across all functions
	BackendTime  time.Duration // assembly + linking + driver
}

// Frontend runs phase 1. On error the returned AST may be partial; callers
// must abort when diags has errors (the paper's master does exactly this).
func Frontend(file string, src []byte) (*ast.Module, *sem.Info, *source.DiagBag) {
	var bag source.DiagBag
	m := parser.Parse(file, src, &bag)
	if bag.HasErrors() {
		return m, nil, &bag
	}
	info := sem.Check(m, &bag)
	return m, info, &bag
}

// buildFrontendEntry runs the frontend and packages the shared artifacts,
// including every function's incremental content address (only when the
// frontend succeeded — a module with errors never reaches phases 2+3).
func buildFrontendEntry(file string, src []byte) (*fcache.FrontendEntry, int64) {
	m, info, bag := Frontend(file, src)
	return packageFrontendEntry(m, info, bag, src)
}

// FrontendEntryCached returns the cached phase-1 artifacts of src — checked
// AST, semantic info, diagnostics, and per-function incremental hashes —
// parsing and checking at most once per source content. h must be
// HashSource(src). The entry is shared and must be treated as read-only. A
// nil cache builds a fresh (uncached) entry.
func FrontendEntryCached(cache *fcache.Cache, h fcache.SourceHash, file string, src []byte) *fcache.FrontendEntry {
	if cache == nil {
		e, _ := buildFrontendEntry(file, src)
		return e
	}
	return cache.Frontend(h, func() (*fcache.FrontendEntry, int64) {
		return buildFrontendEntry(file, src)
	})
}

// FrontendCached is Frontend backed by the content-addressed cache; see
// FrontendEntryCached.
func FrontendCached(cache *fcache.Cache, h fcache.SourceHash, file string, src []byte) (*ast.Module, *sem.Info, *source.DiagBag) {
	e := FrontendEntryCached(cache, h, file, src)
	return e.Module, e.Info, e.Bag
}

// sectionOf resolves the section a function belongs to. It rejects modules
// with duplicate section indices outright instead of silently compiling
// against whichever duplicate was declared last.
func sectionOf(m *ast.Module, fn *ast.FuncDecl) (*ast.Section, error) {
	var sec *ast.Section
	for _, s := range m.Sections {
		if s.Index != fn.SectionIndex {
			continue
		}
		if sec != nil {
			return nil, fmt.Errorf("module declares section %d more than once", fn.SectionIndex)
		}
		sec = s
	}
	if sec == nil {
		return nil, fmt.Errorf("function %s names unknown section %d", fn.Name, fn.SectionIndex)
	}
	return sec, nil
}

// CompileFunction runs phases 2 and 3 for one function of a checked module.
// The function's section-local callees are lowered and inlined as part of
// the work (each function master re-derives what it needs — the processes
// share no memory). CompileFunctionIncremental is the variant that reuses
// cached per-function artifacts instead of re-deriving everything.
func CompileFunction(m *ast.Module, info *sem.Info, fn *ast.FuncDecl, opts Options) (*FuncResult, error) {
	start := time.Now()
	sec, err := sectionOf(m, fn)
	if err != nil {
		return nil, err
	}

	// Lower this function and every earlier function of its section (its
	// potential callees), then inline in declaration order.
	funcs := make(map[string]*ir.Func)
	var target *ir.Func
	for _, g := range sec.Funcs {
		f, err := ir.Lower(g, info)
		if err != nil {
			return nil, fmt.Errorf("lowering %s: %w", g.Name, err)
		}
		if err := ir.InlineCalls(f, funcs); err != nil {
			return nil, fmt.Errorf("inlining into %s: %w", g.Name, err)
		}
		funcs[g.Name] = f
		if g == fn {
			target = f
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("function %s not found in section %d", fn.Name, sec.Index)
	}
	return finishFunction(fn, sec, target, opts, start)
}

// funcIR returns the lowered, inlined (call-free) flowgraph of sec.Funcs[idx],
// cached per function hash. A function's IR depends only on its own body and
// its transitive same-section callees — exactly what its FuncHash covers —
// so editing one function invalidates the IR of it and its callers, nothing
// else. The returned flowgraph is shared: clone before mutating.
func funcIR(cache *fcache.Cache, fe *fcache.FrontendEntry, sec *ast.Section, idx int) (*ir.Func, error) {
	fn := sec.Funcs[idx]
	return cache.FuncIR(fe.FuncHashes[fcache.FuncKey{Section: sec.Index, Index: idx}], func() (*ir.Func, error) {
		f, err := ir.Lower(fn, fe.Info)
		if err != nil {
			return nil, fmt.Errorf("lowering %s: %w", fn.Name, err)
		}
		// Resolve the direct callees' (already inlined, call-free) flowgraphs;
		// building the name map in ascending declaration order reproduces
		// latest-declaration-wins resolution.
		callees := make(map[string]*ir.Func)
		for _, j := range parser.DirectCalls(sec, idx) {
			cf, err := funcIR(cache, fe, sec, j)
			if err != nil {
				return nil, err
			}
			callees[sec.Funcs[j].Name] = cf
		}
		if err := ir.InlineCalls(f, callees); err != nil {
			return nil, fmt.Errorf("inlining into %s: %w", fn.Name, err)
		}
		return f, nil
	})
}

// CompileFunctionIncremental is CompileFunction backed by the incremental
// cache: the finished artifact is memoized by (FuncHash, options) — the
// whole compilation is a pure function of those inputs — and on a miss the
// per-function lowered IR tier limits re-derivation to the edited function
// and its callers. The returned entry carries the function master's complete
// reply (wire-encoded object plus its full warning list), is shared, and
// must be treated as read-only. hit reports whether the artifact came from
// cache without running any phase. fe must be the frontend entry of the
// module that declares fn (see FrontendEntryCached); a nil cache compiles
// without caching.
func CompileFunctionIncremental(cache *fcache.Cache, fe *fcache.FrontendEntry, fn *ast.FuncDecl, opts Options) (*fcache.ObjectEntry, bool, error) {
	sec, err := sectionOf(fe.Module, fn)
	if err != nil {
		return nil, false, err
	}
	idx := fn.FuncIndex
	if idx < 0 || idx >= len(sec.Funcs) || sec.Funcs[idx] != fn {
		return nil, false, fmt.Errorf("function %s is not at index %d of section %d", fn.Name, idx, sec.Index)
	}
	built := false
	entry, err := cache.Object(fe.FuncHashes[fcache.FuncKey{Section: sec.Index, Index: idx}], OptsKey(opts), func() (*fcache.ObjectEntry, error) {
		built = true
		target, err := funcIR(cache, fe, sec, idx)
		if err != nil {
			return nil, err
		}
		// The cached flowgraph is shared; optimization works on a deep copy.
		fr, err := finishFunction(fn, sec, target.Clone(), opts, time.Now())
		if err != nil {
			return nil, err
		}
		e := &fcache.ObjectEntry{
			Name:    fr.Name,
			Section: fr.Section,
			IsEntry: fr.IsEntry,
			Lines:   fr.Lines,
			// Encode once at build time: the wire form is as pure a function
			// of the inputs as the object, and every RPC reply needs it.
			ObjectBytes: asm.Encode(fr.Object),
		}
		e.SetObject(fr.Object)
		// The entry carries the function master's complete diagnostic output
		// — frontend warnings owned by this function, then its own phase-2+3
		// warnings — so a cache hit reproduces the reply exactly.
		e.Warnings = append(e.Warnings, FrontendWarnings(fe.Module, fe.Bag, fn)...)
		for _, d := range fr.Diags.All() {
			if d.Severity == source.Warn {
				e.Warnings = append(e.Warnings, d.String())
			}
		}
		return e, nil
	})
	if err != nil {
		return nil, false, err
	}
	return entry, !built, nil
}

// LookupObject probes the object tier (memory, then disk) for the finished
// artifact of the function whose compilation inputs hash to fh, without
// compiling anything. Masters call it to short-circuit unchanged functions
// before scheduling; workers call it to answer hash-only requests.
func LookupObject(cache *fcache.Cache, fh fcache.FuncHash, opts Options) (*fcache.ObjectEntry, bool) {
	return cache.PeekObject(fh, OptsKey(opts))
}

// LookupObjectAnywhere is LookupObject extended to the fleet: a local miss
// consults the cache's peer tier (if attached) before reporting failure. A
// peer hit is installed locally, so the next probe for the same hash is a
// plain memory hit. Without peers it is exactly LookupObject.
func LookupObjectAnywhere(cache *fcache.Cache, fh fcache.FuncHash, opts Options) (*fcache.ObjectEntry, bool) {
	if e, ok := cache.PeekObject(fh, OptsKey(opts)); ok {
		return e, true
	}
	return cache.PeerObject(fh, OptsKey(opts))
}

// PrefetchObjects batch-fills the cache from peers for the given function
// hashes under one options variant — the master's pre-dispatch pull of
// everything the outline predicts it will need. Returns how many entries
// were filled (0 without peers).
func PrefetchObjects(cache *fcache.Cache, fhs []fcache.FuncHash, opts Options) int {
	return cache.PrefetchObjects(fhs, OptsKey(opts))
}

// OptsKey fingerprints an Options value for the object-tier cache key. The
// zero value — every production compile — short-circuits past the reflective
// formatting, which otherwise costs more than the cache hit it keys.
func OptsKey(opts Options) string {
	if opts == (Options{}) {
		return "default"
	}
	return fmt.Sprintf("%+v", opts)
}

// warningOwner returns the function whose declaration contains pos: the
// function with the greatest starting offset not after pos. It returns nil
// for module-level positions before the first function.
func warningOwner(m *ast.Module, pos source.Pos) *ast.FuncDecl {
	var owner *ast.FuncDecl
	for _, sec := range m.Sections {
		for _, f := range sec.Funcs {
			if f.Pos().Offset <= pos.Offset && (owner == nil || f.Pos().Offset > owner.Pos().Offset) {
				owner = f
			}
		}
	}
	return owner
}

// FrontendWarnings renders bag's warning diagnostics owned by fn — or, with
// fn nil, the module-level warnings owned by no function. Splitting
// ownership this way means each warning is reported by exactly one master
// even though every function master sees the whole module's diagnostics.
func FrontendWarnings(m *ast.Module, bag *source.DiagBag, fn *ast.FuncDecl) []string {
	var out []string
	for _, d := range bag.All() {
		if d.Severity != source.Warn {
			continue
		}
		if warningOwner(m, d.Pos) == fn {
			out = append(out, d.String())
		}
	}
	return out
}

// finishFunction runs the shared back half of a function compilation:
// optimization, loop inversion, code generation, and assembly of an owned
// (never shared) target flowgraph. start is when the caller began, so
// CPUTime covers the whole per-function compilation.
func finishFunction(fn *ast.FuncDecl, sec *ast.Section, target *ir.Func, opts Options, start time.Time) (*FuncResult, error) {
	isEntry := sec.Entry() == fn
	if isEntry && len(fn.Params) > 0 {
		return nil, fmt.Errorf("entry function %s of section %d must take no parameters", fn.Name, sec.Index)
	}

	res := &FuncResult{
		Name:    fn.Name,
		Section: sec.Index,
		IsEntry: isEntry,
		Lines:   ast.FuncLines(fn),
		Diags:   &source.DiagBag{},
	}

	if !opts.DisableOpt {
		res.OptStats = opt.Optimize(target)
	}
	ir.InvertLoops(target)
	// Re-run cleanup so inverted loops merge into self-loop blocks.
	opt.MergeStraightLine(target)
	opt.EliminateDeadCode(target)
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("%s: invalid IR entering codegen: %w", fn.Name, err)
	}

	pf, gs, err := codegen.Generate(target, isEntry, opts.Codegen)
	if err != nil {
		return nil, err
	}
	res.GenStats = gs

	obj, err := asm.Assemble(pf)
	if err != nil {
		return nil, err
	}
	res.Object = obj
	res.CPUTime = time.Since(start)
	return res, nil
}

// CompileModule runs the complete sequential compiler on source text.
func CompileModule(file string, src []byte, opts Options) (*Result, error) {
	t0 := time.Now()
	m, info, bag := Frontend(file, src)
	if bag.HasErrors() {
		return nil, fmt.Errorf("frontend errors:\n%s", bag.String())
	}
	res := &Result{ModuleName: m.Name, FrontendTime: time.Since(t0)}
	for _, d := range bag.All() {
		if d.Severity == source.Warn {
			res.Warnings = append(res.Warnings, d.String())
		}
	}

	t1 := time.Now()
	for _, sec := range m.Sections {
		for _, fn := range sec.Funcs {
			fr, err := CompileFunction(m, info, fn, opts)
			if err != nil {
				return nil, fmt.Errorf("compiling %s: %w", fn.Name, err)
			}
			res.Funcs = append(res.Funcs, fr)
			for _, d := range fr.Diags.All() {
				if d.Severity == source.Warn {
					res.Warnings = append(res.Warnings, d.String())
				}
			}
		}
	}
	res.MiddleTime = time.Since(t1)

	t2 := time.Now()
	linked, err := LinkResults(m.Name, res.Funcs)
	if err != nil {
		return nil, err
	}
	res.Module = linked
	res.Driver = iodriver.Generate(m)
	res.BackendTime = time.Since(t2)
	return res, nil
}

// LinkResults performs the phase-4 tail shared by the sequential and the
// parallel compiler: grouping function objects by section and linking the
// download module.
func LinkResults(moduleName string, funcs []*FuncResult) (*link.Module, error) {
	bySection := make(map[int][]*asm.Object)
	for _, fr := range funcs {
		bySection[fr.Section] = append(bySection[fr.Section], fr.Object)
	}
	return link.LinkModule(moduleName, bySection)
}

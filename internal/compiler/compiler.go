// Package compiler is the sequential W2 compiler driver: it wires the four
// phases of the reproduced system together.
//
//	Phase 1: parsing and semantic checking            (internal/parser, sem)
//	Phase 2: flowgraph, local optimization, dataflow  (internal/ir, opt)
//	Phase 3: software pipelining and code generation  (internal/codegen)
//	Phase 4: I/O driver generation, assembly, linking (internal/iodriver, asm, link)
//
// The parallel compiler (internal/core) reuses exactly these pieces: the
// master runs Frontend once, function masters run CompileFunction for their
// function, and the section masters combine objects for the phase-4 tail.
package compiler

import (
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/ast"
	"repro/internal/codegen"
	"repro/internal/iodriver"
	"repro/internal/ir"
	"repro/internal/link"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sem"
	"repro/internal/source"
)

// Options configures a compilation.
type Options struct {
	Codegen codegen.Options
	// DisableOpt skips phase-2 optimization (ablation).
	DisableOpt bool
}

// FuncResult is the outcome of compiling one function — what a function
// master produces and sends back to its section master.
type FuncResult struct {
	Name    string
	Section int
	IsEntry bool
	Object  *asm.Object
	Lines   int

	OptStats opt.Stats
	GenStats codegen.GenStats
	// CPUTime is the measured host time spent compiling this function.
	CPUTime time.Duration
	// Diags carries warnings produced during this function's compilation;
	// the section master merges them (the paper's diagnostic combining).
	Diags *source.DiagBag
}

// Result is a complete module compilation.
type Result struct {
	ModuleName string
	Module     *link.Module
	Driver     *iodriver.Driver
	Funcs      []*FuncResult

	// Phase timings of this sequential run.
	FrontendTime time.Duration
	MiddleTime   time.Duration // phases 2+3 across all functions
	BackendTime  time.Duration // assembly + linking + driver
}

// Frontend runs phase 1. On error the returned AST may be partial; callers
// must abort when diags has errors (the paper's master does exactly this).
func Frontend(file string, src []byte) (*ast.Module, *sem.Info, *source.DiagBag) {
	var bag source.DiagBag
	m := parser.Parse(file, src, &bag)
	if bag.HasErrors() {
		return m, nil, &bag
	}
	info := sem.Check(m, &bag)
	return m, info, &bag
}

// CompileFunction runs phases 2 and 3 for one function of a checked module.
// The function's section-local callees are lowered and inlined as part of
// the work (each function master re-derives what it needs — the processes
// share no memory).
func CompileFunction(m *ast.Module, info *sem.Info, fn *ast.FuncDecl, opts Options) (*FuncResult, error) {
	start := time.Now()
	var sec *ast.Section
	for _, s := range m.Sections {
		if s.Index == fn.SectionIndex {
			sec = s
		}
	}
	if sec == nil {
		return nil, fmt.Errorf("function %s names unknown section %d", fn.Name, fn.SectionIndex)
	}
	isEntry := sec.Entry() == fn
	if isEntry && len(fn.Params) > 0 {
		return nil, fmt.Errorf("entry function %s of section %d must take no parameters", fn.Name, sec.Index)
	}

	// Lower this function and every earlier function of its section (its
	// potential callees), then inline in declaration order.
	funcs := make(map[string]*ir.Func)
	var target *ir.Func
	for _, g := range sec.Funcs {
		f, err := ir.Lower(g, info)
		if err != nil {
			return nil, fmt.Errorf("lowering %s: %w", g.Name, err)
		}
		if err := ir.InlineCalls(f, funcs); err != nil {
			return nil, fmt.Errorf("inlining into %s: %w", g.Name, err)
		}
		funcs[g.Name] = f
		if g == fn {
			target = f
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("function %s not found in section %d", fn.Name, sec.Index)
	}

	res := &FuncResult{
		Name:    fn.Name,
		Section: sec.Index,
		IsEntry: isEntry,
		Lines:   ast.FuncLines(fn),
		Diags:   &source.DiagBag{},
	}

	if !opts.DisableOpt {
		res.OptStats = opt.Optimize(target)
	}
	ir.InvertLoops(target)
	// Re-run cleanup so inverted loops merge into self-loop blocks.
	opt.MergeStraightLine(target)
	opt.EliminateDeadCode(target)
	if err := target.Validate(); err != nil {
		return nil, fmt.Errorf("%s: invalid IR entering codegen: %w", fn.Name, err)
	}

	pf, gs, err := codegen.Generate(target, isEntry, opts.Codegen)
	if err != nil {
		return nil, err
	}
	res.GenStats = gs

	obj, err := asm.Assemble(pf)
	if err != nil {
		return nil, err
	}
	res.Object = obj
	res.CPUTime = time.Since(start)
	return res, nil
}

// CompileModule runs the complete sequential compiler on source text.
func CompileModule(file string, src []byte, opts Options) (*Result, error) {
	t0 := time.Now()
	m, info, bag := Frontend(file, src)
	if bag.HasErrors() {
		return nil, fmt.Errorf("frontend errors:\n%s", bag.String())
	}
	res := &Result{ModuleName: m.Name, FrontendTime: time.Since(t0)}

	t1 := time.Now()
	for _, sec := range m.Sections {
		for _, fn := range sec.Funcs {
			fr, err := CompileFunction(m, info, fn, opts)
			if err != nil {
				return nil, fmt.Errorf("compiling %s: %w", fn.Name, err)
			}
			res.Funcs = append(res.Funcs, fr)
		}
	}
	res.MiddleTime = time.Since(t1)

	t2 := time.Now()
	linked, err := LinkResults(m.Name, res.Funcs)
	if err != nil {
		return nil, err
	}
	res.Module = linked
	res.Driver = iodriver.Generate(m)
	res.BackendTime = time.Since(t2)
	return res, nil
}

// LinkResults performs the phase-4 tail shared by the sequential and the
// parallel compiler: grouping function objects by section and linking the
// download module.
func LinkResults(moduleName string, funcs []*FuncResult) (*link.Module, error) {
	bySection := make(map[int][]*asm.Object)
	for _, fr := range funcs {
		bySection[fr.Section] = append(bySection[fr.Section], fr.Object)
	}
	return link.LinkModule(moduleName, bySection)
}

package compiler

import (
	"strings"
	"testing"

	"repro/internal/fcache"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/wgen"
)

// TestDuplicateSectionRejected: sem.Check normally rejects duplicate section
// indices, but CompileFunction must not silently pick one if handed such a
// module (e.g. a master skipping the shared check).
func TestDuplicateSectionRejected(t *testing.T) {
	src := []byte(`
module m
section 1 { function f() { return; } }
section 1 { function g() { return; } }
`)
	var bag source.DiagBag
	m := parser.Parse("dup.w2", src, &bag)
	if bag.HasErrors() {
		t.Fatalf("parse: %s", bag.String())
	}
	fn := m.Sections[0].Funcs[0]
	_, err := CompileFunction(m, nil, fn, Options{})
	if err == nil || !strings.Contains(err.Error(), "section 1 more than once") {
		t.Errorf("err = %v, want duplicate-section error", err)
	}
}

func TestUnknownSectionRejected(t *testing.T) {
	src := []byte(`
module m
section 1 { function f() { return; } }
`)
	var bag source.DiagBag
	m := parser.Parse("unk.w2", src, &bag)
	if bag.HasErrors() {
		t.Fatalf("parse: %s", bag.String())
	}
	fn := m.Sections[0].Funcs[0]
	fn.SectionIndex = 9
	_, err := CompileFunction(m, nil, fn, Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown section 9") {
		t.Errorf("err = %v, want unknown-section error", err)
	}
}

// TestCompileFunctionCachedMatchesUncached is the cache's correctness core:
// for every function of a realistic multi-section program, the cached path
// (shared lowered IR + clone) must emit word-identical code to the uncached
// path, on both the cold pass (miss) and the warm pass (hit).
func TestCompileFunctionCachedMatchesUncached(t *testing.T) {
	src := wgen.UserProgram()
	m, info, bag := Frontend("user.w2", src)
	if bag.HasErrors() {
		t.Fatalf("frontend: %s", bag.String())
	}
	h := fcache.HashSource(src)
	cache := fcache.New(0)

	for pass := 0; pass < 2; pass++ {
		for _, sec := range m.Sections {
			for _, fn := range sec.Funcs {
				want, err := CompileFunction(m, info, fn, Options{})
				if err != nil {
					t.Fatalf("pass %d: CompileFunction(%s): %v", pass, fn.Name, err)
				}
				got, err := CompileFunctionCached(cache, h, m, info, fn, Options{})
				if err != nil {
					t.Fatalf("pass %d: CompileFunctionCached(%s): %v", pass, fn.Name, err)
				}
				if len(got.Object.Code) != len(want.Object.Code) {
					t.Fatalf("pass %d: %s: cached emits %d words, uncached %d",
						pass, fn.Name, len(got.Object.Code), len(want.Object.Code))
				}
				for i := range got.Object.Code {
					if got.Object.Code[i] != want.Object.Code[i] {
						t.Fatalf("pass %d: %s: word %d differs: cached %v, uncached %v",
							pass, fn.Name, i, got.Object.Code[i], want.Object.Code[i])
					}
				}
				if got.IsEntry != want.IsEntry || got.Section != want.Section {
					t.Errorf("pass %d: %s: metadata differs", pass, fn.Name)
				}
			}
		}
	}

	s := cache.Stats()
	if s.IRHits == 0 {
		t.Error("warm pass produced no IR cache hits")
	}
	if s.IRMisses == 0 {
		t.Error("cold pass produced no IR cache misses")
	}
}

// TestCompileModuleReportsWarnings: the discarded-call-result warning must
// surface in Result.Warnings exactly once.
func TestCompileModuleReportsWarnings(t *testing.T) {
	src := []byte(`
module m
section 1 {
    function g(): int { return 1; }
    function f() { g(); return; }
}
`)
	res, err := CompileModule("warn.w2", src, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var n int
	for _, w := range res.Warnings {
		if strings.Contains(w, "result of call is discarded") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("discarded-call warning appeared %d times in %q, want exactly 1", n, res.Warnings)
	}
}

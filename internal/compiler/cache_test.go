package compiler

import (
	"strings"
	"testing"

	"repro/internal/fcache"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/wgen"
)

// TestDuplicateSectionRejected: sem.Check normally rejects duplicate section
// indices, but CompileFunction must not silently pick one if handed such a
// module (e.g. a master skipping the shared check).
func TestDuplicateSectionRejected(t *testing.T) {
	src := []byte(`
module m
section 1 { function f() { return; } }
section 1 { function g() { return; } }
`)
	var bag source.DiagBag
	m := parser.Parse("dup.w2", src, &bag)
	if bag.HasErrors() {
		t.Fatalf("parse: %s", bag.String())
	}
	fn := m.Sections[0].Funcs[0]
	_, err := CompileFunction(m, nil, fn, Options{})
	if err == nil || !strings.Contains(err.Error(), "section 1 more than once") {
		t.Errorf("err = %v, want duplicate-section error", err)
	}
}

func TestUnknownSectionRejected(t *testing.T) {
	src := []byte(`
module m
section 1 { function f() { return; } }
`)
	var bag source.DiagBag
	m := parser.Parse("unk.w2", src, &bag)
	if bag.HasErrors() {
		t.Fatalf("parse: %s", bag.String())
	}
	fn := m.Sections[0].Funcs[0]
	fn.SectionIndex = 9
	_, err := CompileFunction(m, nil, fn, Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown section 9") {
		t.Errorf("err = %v, want unknown-section error", err)
	}
}

// TestCompileFunctionIncrementalMatchesUncached is the cache's correctness
// core: for every function of a realistic multi-section program, the
// incremental path (per-function cached IR + object entries) must emit
// word-identical code to the uncached path, on both the cold pass (miss,
// hit=false) and the warm pass (hit=true with no recompilation).
func TestCompileFunctionIncrementalMatchesUncached(t *testing.T) {
	src := wgen.UserProgram()
	h := fcache.HashSource(src)
	cache := fcache.New(0)
	fe := FrontendEntryCached(cache, h, "user.w2", src)
	if fe.Bag.HasErrors() {
		t.Fatalf("frontend: %s", fe.Bag.String())
	}
	m, info := fe.Module, fe.Info

	for pass := 0; pass < 2; pass++ {
		for _, sec := range m.Sections {
			for _, fn := range sec.Funcs {
				want, err := CompileFunction(m, info, fn, Options{})
				if err != nil {
					t.Fatalf("pass %d: CompileFunction(%s): %v", pass, fn.Name, err)
				}
				entry, hit, err := CompileFunctionIncremental(cache, fe, fn, Options{})
				if err != nil {
					t.Fatalf("pass %d: CompileFunctionIncremental(%s): %v", pass, fn.Name, err)
				}
				if hit != (pass == 1) {
					t.Errorf("pass %d: %s: hit = %v", pass, fn.Name, hit)
				}
				obj, err := entry.Object()
				if err != nil {
					t.Fatalf("pass %d: %s: decode: %v", pass, fn.Name, err)
				}
				if len(obj.Code) != len(want.Object.Code) {
					t.Fatalf("pass %d: %s: incremental emits %d words, uncached %d",
						pass, fn.Name, len(obj.Code), len(want.Object.Code))
				}
				for i := range obj.Code {
					if obj.Code[i] != want.Object.Code[i] {
						t.Fatalf("pass %d: %s: word %d differs: incremental %v, uncached %v",
							pass, fn.Name, i, obj.Code[i], want.Object.Code[i])
					}
				}
				if entry.IsEntry != want.IsEntry || entry.Section != want.Section {
					t.Errorf("pass %d: %s: metadata differs", pass, fn.Name)
				}
			}
		}
	}

	s := cache.Stats()
	if s.ObjectHits == 0 {
		t.Error("warm pass produced no object cache hits")
	}
	if s.ObjectMisses == 0 {
		t.Error("cold pass produced no object cache misses")
	}
}

// TestIncrementalOneEditRecompilesOneFunction is the function-grain keying
// contract: after editing one function of a module, every other function's
// object entry must still hit, so phases 2+3 rerun for the edited function
// alone.
func TestIncrementalOneEditRecompilesOneFunction(t *testing.T) {
	src := wgen.SyntheticProgram(wgen.Small, 8)
	edited, names, err := wgen.MutateFunctions(src, 1, 42)
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if len(names) != 1 {
		t.Fatalf("edited %v, want exactly one function", names)
	}

	cache := fcache.New(0)
	compileAll := func(src []byte, label string) {
		fe := FrontendEntryCached(cache, fcache.HashSource(src), label, src)
		if fe.Bag.HasErrors() {
			t.Fatalf("%s: frontend: %s", label, fe.Bag.String())
		}
		for _, sec := range fe.Module.Sections {
			for _, fn := range sec.Funcs {
				if _, _, err := CompileFunctionIncremental(cache, fe, fn, Options{}); err != nil {
					t.Fatalf("%s: %s: %v", label, fn.Name, err)
				}
			}
		}
	}

	compileAll(src, "base.w2")
	cold := cache.Stats()
	if cold.ObjectMisses != 8 {
		t.Fatalf("cold object misses = %d, want 8", cold.ObjectMisses)
	}
	compileAll(edited, "edit.w2")
	warm := cache.Stats()
	if got := warm.ObjectMisses - cold.ObjectMisses; got != 1 {
		t.Errorf("edit of %v recompiled %d functions, want 1", names, got)
	}
	if got := warm.ObjectHits - cold.ObjectHits; got != 7 {
		t.Errorf("edit pass hit %d functions, want 7", got)
	}
}

// TestCompileModuleReportsWarnings: the discarded-call-result warning must
// surface in Result.Warnings exactly once.
func TestCompileModuleReportsWarnings(t *testing.T) {
	src := []byte(`
module m
section 1 {
    function g(): int { return 1; }
    function f() { g(); return; }
}
`)
	res, err := CompileModule("warn.w2", src, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var n int
	for _, w := range res.Warnings {
		if strings.Contains(w, "result of call is discarded") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("discarded-call warning appeared %d times in %q, want exactly 1", n, res.Warnings)
	}
}

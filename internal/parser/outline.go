package parser

import (
	"repro/internal/ast"
	"repro/internal/source"
)

// Outline is the structural summary of a module that the master process
// extracts with its extra up-front parse (the paper's "setup time"): how many
// sections there are, which functions each contains, and per-function size
// metrics. The scheduler's load-balancing heuristic (§4.3: "a combination of
// lines of code and loop nesting can serve as approximation of the
// compilation time") reads exactly these fields.
type Outline struct {
	Module   string
	Sections []SectionOutline
}

// SectionOutline summarizes one section program.
type SectionOutline struct {
	Index     int
	Functions []FuncOutline
}

// FuncOutline summarizes one function for scheduling purposes.
type FuncOutline struct {
	Name      string
	Section   int // 1-based section number
	Index     int // 0-based position within the section
	Lines     int // formatted lines of code (the paper's size metric)
	LoopDepth int // deepest loop nesting
}

// NumFunctions returns the total number of functions in the outline.
func (o *Outline) NumFunctions() int {
	n := 0
	for _, s := range o.Sections {
		n += len(s.Functions)
	}
	return n
}

// AllFunctions returns every function outline in declaration order.
func (o *Outline) AllFunctions() []FuncOutline {
	var out []FuncOutline
	for _, s := range o.Sections {
		out = append(out, s.Functions...)
	}
	return out
}

// OutlineOf computes the structural summary of an already-parsed module.
func OutlineOf(m *ast.Module) *Outline {
	o := &Outline{Module: m.Name}
	for _, s := range m.Sections {
		so := SectionOutline{Index: s.Index}
		for i, f := range s.Funcs {
			so.Functions = append(so.Functions, FuncOutline{
				Name:      f.Name,
				Section:   s.Index,
				Index:     i,
				Lines:     ast.FuncLines(f),
				LoopDepth: ast.MaxLoopDepth(f),
			})
		}
		o.Sections = append(o.Sections, so)
	}
	return o
}

// ParseOutline performs the master's structural parse: a full parse of src
// followed by outline extraction. Any syntax error lands in diags, which is
// how the paper's master aborts the compilation before forking anything.
func ParseOutline(file string, src []byte, diags *source.DiagBag) *Outline {
	m := Parse(file, src, diags)
	if m == nil || diags.HasErrors() {
		return nil
	}
	return OutlineOf(m)
}

package parser

import (
	"repro/internal/ast"
	"repro/internal/source"
)

// Outline is the structural summary of a module that the master process
// extracts with its extra up-front parse (the paper's "setup time"): how many
// sections there are, which functions each contains, and per-function size
// metrics. The scheduler's load-balancing heuristic (§4.3: "a combination of
// lines of code and loop nesting can serve as approximation of the
// compilation time") reads exactly these fields.
type Outline struct {
	Module   string
	Sections []SectionOutline
}

// SectionOutline summarizes one section program.
type SectionOutline struct {
	Index     int
	Functions []FuncOutline
}

// FuncOutline summarizes one function for scheduling purposes, and — when
// the outline was built against source bytes — for incremental reuse: the
// exact byte span of the declaration and its content address.
type FuncOutline struct {
	Name      string
	Section   int // 1-based section number
	Index     int // 0-based position within the section
	Lines     int // formatted lines of code (the paper's size metric)
	LoopDepth int // deepest loop nesting

	// SpanStart/SpanEnd delimit the declaration's byte span in the source
	// (function keyword through closing brace, end exclusive), and BodyStart
	// is the offset of the body's opening brace. Zero when the outline was
	// computed without source (OutlineOf).
	SpanStart int
	SpanEnd   int
	BodyStart int
	// StartLine/StartCol are the source position of the function keyword and
	// EndLine/EndCol the position of the body's closing brace. They let a
	// scanner be seeded mid-buffer (source.NewScannerAt) so a function body
	// re-parsed from its span alone reports positions identical to a full
	// sequential parse. Zero when the outline was computed without source.
	StartLine int
	StartCol  int
	EndLine   int
	EndCol    int
	// Hash is the function's incremental content address (zero without
	// source). Masters probe the object tier with it before scheduling, and
	// dispatch requests carry it so workers can answer from cache.
	Hash FuncHash
}

// NumFunctions returns the total number of functions in the outline.
func (o *Outline) NumFunctions() int {
	n := 0
	for _, s := range o.Sections {
		n += len(s.Functions)
	}
	return n
}

// AllFunctions returns every function outline in declaration order.
func (o *Outline) AllFunctions() []FuncOutline {
	var out []FuncOutline
	for _, s := range o.Sections {
		out = append(out, s.Functions...)
	}
	return out
}

// OutlineOf computes the structural summary of an already-parsed module.
func OutlineOf(m *ast.Module) *Outline {
	o := &Outline{Module: m.Name}
	for _, s := range m.Sections {
		so := SectionOutline{Index: s.Index}
		for i, f := range s.Funcs {
			so.Functions = append(so.Functions, FuncOutline{
				Name:      f.Name,
				Section:   s.Index,
				Index:     i,
				Lines:     ast.FuncLines(f),
				LoopDepth: ast.MaxLoopDepth(f),
			})
		}
		o.Sections = append(o.Sections, so)
	}
	return o
}

// OutlineWithHashes computes the structural summary of a parsed module
// against its exact source bytes, filling each function's byte span and
// incremental content address (FuncHashes) in addition to the scheduling
// metrics.
func OutlineWithHashes(m *ast.Module, src []byte) *Outline {
	o := OutlineOf(m)
	hashes := FuncHashes(m, src)
	for si, sec := range m.Sections {
		for i, fn := range sec.Funcs {
			fo := &o.Sections[si].Functions[i]
			fo.Hash = hashes[FuncKey{Section: sec.Index, Index: i}]
			if fn.Body != nil {
				if sp, ok := span(src, fn.FuncPos.Offset, fn.Body.RbracePos.Offset+1); ok && len(sp) > 0 {
					fo.SpanStart = fn.FuncPos.Offset
					fo.SpanEnd = fn.Body.RbracePos.Offset + 1
					fo.BodyStart = fn.Body.LbracePos.Offset
					fo.StartLine = fn.FuncPos.Line
					fo.StartCol = fn.FuncPos.Col
					fo.EndLine = fn.Body.RbracePos.Line
					fo.EndCol = fn.Body.RbracePos.Col
				}
			}
		}
	}
	return o
}

// ParseOutline performs the master's structural parse: a full parse of src
// followed by outline extraction (spans and incremental hashes included).
// Any syntax error lands in diags, which is how the paper's master aborts
// the compilation before forking anything.
func ParseOutline(file string, src []byte, diags *source.DiagBag) *Outline {
	m := Parse(file, src, diags)
	if m == nil || diags.HasErrors() {
		return nil
	}
	return OutlineWithHashes(m, src)
}

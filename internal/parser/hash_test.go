package parser

import (
	"strings"
	"testing"

	"repro/internal/source"
)

func hashesOf(t *testing.T, src string) map[FuncKey]FuncHash {
	t.Helper()
	var bag source.DiagBag
	m := Parse("h.w2", []byte(src), &bag)
	if m == nil || bag.HasErrors() {
		t.Fatalf("parse: %s", bag.String())
	}
	return FuncHashes(m, []byte(src))
}

const hashModule = `
module m (out y: float[2])

section 1 of 1 {
    function helper(): float {
        return 1.5;
    }
    function mid() {
        var v: float = 2.5;
        send(Y, v);
    }
    function entry() {
        send(Y, helper() * 2.0);
    }
}
`

func TestFuncHashesStableAndDistinct(t *testing.T) {
	a := hashesOf(t, hashModule)
	b := hashesOf(t, hashModule)
	if len(a) != 3 {
		t.Fatalf("hashed %d functions, want 3", len(a))
	}
	seen := map[FuncHash]bool{}
	for k, h := range a {
		if h.IsZero() {
			t.Errorf("%+v: zero hash for a parseable function", k)
		}
		if h != b[k] {
			t.Errorf("%+v: hash not deterministic", k)
		}
		if seen[h] {
			t.Errorf("%+v: hash collides with another function", k)
		}
		seen[h] = true
	}
}

// TestFuncHashesIgnoreWhitespace: indentation, trailing spaces, and blank
// lines are normalized away — reformatting must not invalidate any cache
// entry.
func TestFuncHashesIgnoreWhitespace(t *testing.T) {
	reformatted := strings.ReplaceAll(hashModule, "    ", "\t  ")
	reformatted = strings.ReplaceAll(reformatted, ";\n", ";\n\n")
	a, b := hashesOf(t, hashModule), hashesOf(t, reformatted)
	for k, h := range a {
		if h != b[k] {
			t.Errorf("%+v: whitespace-only edit changed the hash", k)
		}
	}
}

// TestFuncHashesEditLocality is the incremental keying contract: editing one
// function's body changes its own hash and its (transitive) callers' — and
// nothing else.
func TestFuncHashesEditLocality(t *testing.T) {
	edited := strings.Replace(hashModule, "var v: float = 2.5;", "var v: float = 9.5;", 1)
	a, b := hashesOf(t, hashModule), hashesOf(t, edited)
	midKey := FuncKey{Section: 1, Index: 1}
	for k, h := range a {
		changed := h != b[k]
		if k == midKey && !changed {
			t.Error("edited function kept its hash")
		}
		if k != midKey && changed {
			t.Errorf("%+v: hash changed without an edit", k)
		}
	}

	// Editing a callee must also change its callers (the callee is inlined),
	// while unrelated functions keep their hashes.
	editedCallee := strings.Replace(hashModule, "return 1.5;", "return 4.5;", 1)
	c := hashesOf(t, editedCallee)
	if a[FuncKey{Section: 1, Index: 0}] == c[FuncKey{Section: 1, Index: 0}] {
		t.Error("edited callee kept its hash")
	}
	if a[FuncKey{Section: 1, Index: 2}] == c[FuncKey{Section: 1, Index: 2}] {
		t.Error("caller's hash survived a callee edit that changes its inlined body")
	}
	if a[midKey] != c[midKey] {
		t.Error("non-caller's hash changed on a callee edit")
	}
}

// TestFuncHashesCoverModuleAndSectionHeader: the module prelude and section
// header are compilation inputs (stream declarations, section index/count),
// so editing them must invalidate every function.
func TestFuncHashesCoverModuleAndSectionHeader(t *testing.T) {
	renamed := strings.Replace(hashModule, "module m ", "module n ", 1)
	a, b := hashesOf(t, hashModule), hashesOf(t, renamed)
	for k, h := range a {
		if h == b[k] {
			t.Errorf("%+v: hash survived a module-header edit", k)
		}
	}
}

// TestParseOutlineFillsSpansAndHashes: the master-facing entry point carries
// both the scheduling metrics and the incremental fields.
func TestParseOutlineFillsSpansAndHashes(t *testing.T) {
	src := []byte(hashModule)
	var bag source.DiagBag
	o := ParseOutline("h.w2", src, &bag)
	if o == nil || bag.HasErrors() {
		t.Fatalf("outline: %s", bag.String())
	}
	for _, fo := range o.AllFunctions() {
		if fo.Hash.IsZero() {
			t.Errorf("%s: outline hash is zero", fo.Name)
		}
		if fo.SpanEnd <= fo.SpanStart || fo.SpanEnd > len(src) {
			t.Errorf("%s: bad span [%d,%d)", fo.Name, fo.SpanStart, fo.SpanEnd)
		}
		decl := string(src[fo.SpanStart:fo.SpanEnd])
		if !strings.HasPrefix(decl, "function "+fo.Name) || !strings.HasSuffix(decl, "}") {
			t.Errorf("%s: span does not delimit the declaration: %q", fo.Name, decl)
		}
		if src[fo.BodyStart] != '{' {
			t.Errorf("%s: BodyStart %d is not the body brace", fo.Name, fo.BodyStart)
		}
	}
}

package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/source"
)

const demoModule = `
module demo (in x: float[512], out y: float[512])

section 1 of 2 {
    function scale(a: float, k: float): float {
        return a * k;
    }
    function cell1() {
        var i: int;
        var v: float;
        for i = 0 to 511 {
            receive(X, v);
            send(Y, scale(v, 2.5));
        }
    }
}

section 2 of 2 {
    function cell2() {
        var i: int;
        var v: float;
        var acc: float = 0.0;
        for i = 0 to 511 step 1 {
            receive(X, v);
            if v > 0.0 {
                acc = acc + v;
            } else {
                acc = acc - v;
            }
            send(Y, acc);
        }
    }
}
`

func parseOK(t *testing.T, src string) *ast.Module {
	t.Helper()
	var bag source.DiagBag
	m := Parse("test.w2", []byte(src), &bag)
	if bag.HasErrors() {
		t.Fatalf("unexpected parse errors:\n%s", bag.String())
	}
	return m
}

func TestParseDemoModule(t *testing.T) {
	m := parseOK(t, demoModule)
	if m.Name != "demo" {
		t.Errorf("module name = %q, want demo", m.Name)
	}
	if len(m.Streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(m.Streams))
	}
	if m.Streams[0].Dir != ast.StreamIn || m.Streams[1].Dir != ast.StreamOut {
		t.Errorf("stream directions wrong")
	}
	if len(m.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(m.Sections))
	}
	if m.NumFunctions() != 3 {
		t.Errorf("NumFunctions = %d, want 3", m.NumFunctions())
	}
	s1 := m.Sections[0]
	if s1.Index != 1 || s1.Of != 2 || len(s1.Funcs) != 2 {
		t.Errorf("section 1 header wrong: %+v", s1)
	}
	if s1.Entry().Name != "cell1" {
		t.Errorf("section 1 entry = %q, want cell1", s1.Entry().Name)
	}
	scale := s1.Funcs[0]
	if scale.Name != "scale" || len(scale.Params) != 2 || scale.Result == nil {
		t.Errorf("scale signature wrong: %+v", scale)
	}
	if scale.SectionIndex != 1 || scale.FuncIndex != 0 {
		t.Errorf("scale location = (%d,%d), want (1,0)", scale.SectionIndex, scale.FuncIndex)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
module m
section 1 {
    function f(n: int): int {
        var a: int[10];
        var s: int = 0;
        var j: int;
        j = 0;
        while j < n {
            a[j] = j * j;
            j = j + 1;
        }
        for j = 0 to n - 1 {
            if a[j] % 2 == 0 {
                s = s + a[j];
            } else {
                if a[j] > 100 {
                    break;
                }
                continue;
            }
        }
        {
            s = s + 1;
        }
        return s;
    }
}
`
	m := parseOK(t, src)
	f := m.Sections[0].Funcs[0]
	kindCount := map[string]int{}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.VarDecl:
			kindCount["var"]++
		case *ast.While:
			kindCount["while"]++
		case *ast.For:
			kindCount["for"]++
		case *ast.If:
			kindCount["if"]++
		case *ast.Break:
			kindCount["break"]++
		case *ast.Continue:
			kindCount["continue"]++
		case *ast.Return:
			kindCount["return"]++
		}
		return true
	})
	want := map[string]int{"var": 3, "while": 1, "for": 1, "if": 2, "break": 1, "continue": 1, "return": 1}
	for k, v := range want {
		if kindCount[k] != v {
			t.Errorf("%s count = %d, want %d", k, kindCount[k], v)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"a && b || c", "a && b || c"},
		{"a || b && c", "a || b && c"},
		{"-x * y", "-x * y"},
		{"-(x * y)", "-(x * y)"},
		{"!a == b", "!a == b"},
		{"a < b && b < c", "a < b && b < c"},
		{"a[i + 1][j]", "a[i + 1][j]"},
		{"f(x, g(y), 3.5)", "f(x, g(y), 3.5)"},
		{"1 - 2 - 3", "1 - 2 - 3"},         // left assoc
		{"1 - (2 - 3)", "1 - (2 - 3)"},     // explicit right grouping preserved
		{"a / b % c * d", "a / b % c * d"}, // left assoc chain
	}
	for _, c := range cases {
		var bag source.DiagBag
		e := ParseExpr(c.src, &bag)
		if bag.HasErrors() {
			t.Errorf("%q: parse errors: %s", c.src, bag.String())
			continue
		}
		if got := ast.ExprString(e); got != c.want {
			t.Errorf("%q: printed as %q, want %q", c.src, got, c.want)
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m1 := parseOK(t, demoModule)
	text1 := ast.Format(m1)
	m2 := parseOK(t, text1)
	text2 := ast.Format(m2)
	if text1 != text2 {
		t.Errorf("print/parse round trip not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no sections", "module m", "no sections"},
		{"empty section", "module m section 1 { }", "no functions"},
		{"bad type", "module m section 1 { function f(x: quux) { return; } }", "unknown type"},
		{"bad channel", "module m section 1 { function f() { receive(Z, x); } }", "unknown channel"},
		{"missing semicolon", "module m section 1 { function f() { x = 1 } }", "expected"},
		{"stray tokens after module", "module m section 1 { function f() { return; } } extra", "after end of module"},
		{"bad stream dir", "module m (inout x: float) section 1 { function f() { return; } }", "in\" or \"out"},
		{"missing expr", "module m section 1 { function f() { x = ; } }", "expected expression"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var bag source.DiagBag
			Parse("err.w2", []byte(c.src), &bag)
			if !bag.HasErrors() {
				t.Fatalf("expected errors, got none")
			}
			if !strings.Contains(bag.String(), c.wantSub) {
				t.Errorf("diagnostics %q do not mention %q", bag.String(), c.wantSub)
			}
		})
	}
}

func TestParserRecovery(t *testing.T) {
	// Multiple independent errors should each be reported; the parser must
	// not give up at the first one or loop forever.
	src := `
module m
section 1 {
    function f() {
        x = ;
        y = 1;
        z = @;
        w = 2;
    }
}
`
	var bag source.DiagBag
	m := Parse("rec.w2", []byte(src), &bag)
	if bag.ErrorCount() < 2 {
		t.Errorf("expected at least 2 errors, got %d:\n%s", bag.ErrorCount(), bag.String())
	}
	if m == nil || len(m.Sections) != 1 {
		t.Fatalf("recovery should still produce the module skeleton")
	}
}

func TestOutline(t *testing.T) {
	var bag source.DiagBag
	o := ParseOutline("demo.w2", []byte(demoModule), &bag)
	if bag.HasErrors() || o == nil {
		t.Fatalf("outline failed: %s", bag.String())
	}
	if o.Module != "demo" || len(o.Sections) != 2 || o.NumFunctions() != 3 {
		t.Fatalf("outline structure wrong: %+v", o)
	}
	fns := o.AllFunctions()
	if fns[0].Name != "scale" || fns[1].Name != "cell1" || fns[2].Name != "cell2" {
		t.Errorf("function order wrong: %+v", fns)
	}
	if fns[1].LoopDepth != 1 || fns[0].LoopDepth != 0 {
		t.Errorf("loop depths wrong: %+v", fns)
	}
	if fns[2].Lines <= fns[0].Lines {
		t.Errorf("cell2 (%d lines) should be longer than scale (%d lines)", fns[2].Lines, fns[0].Lines)
	}
}

func TestOutlineOnSyntaxError(t *testing.T) {
	var bag source.DiagBag
	o := ParseOutline("bad.w2", []byte("module m section {"), &bag)
	if o != nil {
		t.Error("outline of erroneous module should be nil (master aborts)")
	}
	if !bag.HasErrors() {
		t.Error("expected syntax errors")
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
module m
section 1 {
    function f(x: int): int {
        if x == 1 {
            return 10;
        } else if x == 2 {
            return 20;
        } else {
            return 30;
        }
    }
}
`
	m := parseOK(t, src)
	f := m.Sections[0].Funcs[0]
	outer, ok := f.Body.Stmts[0].(*ast.If)
	if !ok {
		t.Fatalf("first statement is %T, want *ast.If", f.Body.Stmts[0])
	}
	inner, ok := outer.Else.(*ast.If)
	if !ok {
		t.Fatalf("else arm is %T, want nested *ast.If", outer.Else)
	}
	if inner.Else == nil {
		t.Error("inner else missing")
	}
	// Round trip must preserve the chain.
	m2 := parseOK(t, ast.Format(m))
	if ast.Format(m2) != ast.Format(m) {
		t.Error("else-if chain not stable under print/parse")
	}
}

func TestMaxLoopDepth(t *testing.T) {
	src := `
module m
section 1 {
    function f() {
        var i: int; var j: int; var k: int;
        for i = 0 to 9 {
            for j = 0 to 9 {
                while k < 3 {
                    k = k + 1;
                }
            }
        }
        for i = 0 to 4 {
            i = i;
        }
    }
}
`
	m := parseOK(t, src)
	if d := ast.MaxLoopDepth(m.Sections[0].Funcs[0]); d != 3 {
		t.Errorf("MaxLoopDepth = %d, want 3", d)
	}
}

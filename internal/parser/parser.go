// Package parser implements the recursive-descent parser for the W2
// language. It builds the syntax tree declared in internal/ast and performs
// no name or type resolution; those are the checker's job (internal/sem).
//
// In the parallel compiler, parsing runs exactly twice per compilation: once
// in the master process to discover the module structure (how many sections,
// how many functions per section) for partitioning, and once more as part of
// the sequential front end. Both uses go through Parse.
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
	"repro/internal/source"
)

// Parse parses a complete W2 module from src. Syntax errors are reported to
// diags; the returned module is non-nil whenever the "module" header parsed,
// even in the presence of errors, but callers must consult diags before
// trusting it.
func Parse(file string, src []byte, diags *source.DiagBag) *ast.Module {
	p := &parser{diags: diags, sc: source.NewScanner(file, src, diags)}
	p.next()
	m := p.module()
	if p.tok != source.EOF {
		p.errorf("unexpected %s after end of module", p.tokDesc())
	}
	return m
}

// ParseExpr parses a single expression, used by tests and tools.
func ParseExpr(src string, diags *source.DiagBag) ast.Expr {
	p := &parser{diags: diags, sc: source.NewScanner("<expr>", []byte(src), diags)}
	p.next()
	e := p.expr()
	if p.tok != source.EOF {
		p.errorf("unexpected %s after expression", p.tokDesc())
	}
	return e
}

type parser struct {
	sc    *source.Scanner
	diags *source.DiagBag

	tok source.Token
	lit string
	pos source.Pos

	// Skeleton-parse state (span-sliced parallel parsing, parallel.go): when
	// skip maps the offset of a function keyword to its outline, section()
	// appends a nil placeholder instead of parsing the declaration and the
	// scanner jumps past the recorded span. Unused (nil) in a normal parse.
	file string
	src  []byte
	skip map[int]*FuncOutline
}

func (p *parser) next() {
	p.tok, p.lit, p.pos = p.sc.Next()
}

func (p *parser) tokDesc() string {
	if p.tok.IsLiteral() {
		return fmt.Sprintf("%s %q", p.tok, p.lit)
	}
	return fmt.Sprintf("%q", p.tok.String())
}

func (p *parser) errorf(format string, args ...any) {
	p.diags.Errorf(p.pos, format, args...)
}

// expect consumes the current token if it is tok, else reports an error and
// leaves the token in place (the caller's recovery logic decides how to
// resynchronize).
func (p *parser) expect(tok source.Token) source.Pos {
	pos := p.pos
	if p.tok != tok {
		p.errorf("expected %q, found %s", tok.String(), p.tokDesc())
		return pos
	}
	p.next()
	return pos
}

// accept consumes the current token if it is tok and reports whether it did.
func (p *parser) accept(tok source.Token) bool {
	if p.tok == tok {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until one of the given tokens (or EOF) is current. It is
// the parser's panic-mode recovery.
func (p *parser) sync(stop ...source.Token) {
	for p.tok != source.EOF {
		for _, s := range stop {
			if p.tok == s {
				return
			}
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) module() *ast.Module {
	m := &ast.Module{ModulePos: p.pos}
	p.expect(source.MODULE)
	m.Name = p.ident("module name")

	if p.accept(source.LPAREN) {
		if p.tok != source.RPAREN {
			m.Streams = append(m.Streams, p.streamParam())
			for p.accept(source.COMMA) {
				m.Streams = append(m.Streams, p.streamParam())
			}
		}
		p.expect(source.RPAREN)
	}

	for p.tok == source.SECTION {
		m.Sections = append(m.Sections, p.section())
	}
	if len(m.Sections) == 0 {
		p.errorf("module %s declares no sections", m.Name)
	}
	return m
}

func (p *parser) streamParam() *ast.StreamParam {
	sp := &ast.StreamParam{NamePos: p.pos}
	switch p.tok {
	case source.IN:
		sp.Dir = ast.StreamIn
		p.next()
	case source.OUT:
		sp.Dir = ast.StreamOut
		p.next()
	default:
		p.errorf("expected \"in\" or \"out\" in stream parameter, found %s", p.tokDesc())
	}
	sp.Name = p.ident("stream name")
	p.expect(source.COLON)
	sp.Type = p.typeExpr()
	return sp
}

func (p *parser) section() *ast.Section {
	s := &ast.Section{SectionPos: p.pos}
	p.expect(source.SECTION)
	s.Index = p.intLit("section number")
	if p.accept(source.OF) {
		s.Of = p.intLit("section count")
	}
	s.LbracePos = p.expect(source.LBRACE)
	for p.tok == source.FUNCTION {
		if fo, ok := p.skip[p.pos.Offset]; ok {
			// Skeleton parse: this declaration is being parsed concurrently
			// from its span; leave a placeholder slot (stitched by
			// ParseModuleParallel) and jump the scanner past the body.
			s.Funcs = append(s.Funcs, nil)
			p.sc = source.NewScannerAt(p.file, p.src, p.diags, fo.SpanEnd, fo.EndLine, fo.EndCol+1)
			p.next()
			continue
		}
		f := p.funcDecl()
		f.SectionIndex = s.Index
		f.FuncIndex = len(s.Funcs)
		s.Funcs = append(s.Funcs, f)
	}
	if len(s.Funcs) == 0 {
		p.errorf("section %d declares no functions", s.Index)
	}
	p.expect(source.RBRACE)
	return s
}

func (p *parser) funcDecl() *ast.FuncDecl {
	f := &ast.FuncDecl{FuncPos: p.pos}
	p.expect(source.FUNCTION)
	f.Name = p.ident("function name")
	p.expect(source.LPAREN)
	if p.tok != source.RPAREN {
		f.Params = append(f.Params, p.param())
		for p.accept(source.COMMA) {
			f.Params = append(f.Params, p.param())
		}
	}
	p.expect(source.RPAREN)
	if p.accept(source.COLON) {
		f.Result = p.typeExpr()
	}
	f.Body = p.block()
	return f
}

func (p *parser) param() *ast.Param {
	prm := &ast.Param{NamePos: p.pos}
	prm.Name = p.ident("parameter name")
	p.expect(source.COLON)
	prm.Type = p.typeExpr()
	return prm
}

func (p *parser) typeExpr() *ast.TypeExpr {
	t := &ast.TypeExpr{NamePos: p.pos}
	t.Name = p.ident("type name")
	switch t.Name {
	case "int", "float", "bool", "":
	default:
		p.diags.Errorf(t.NamePos, "unknown type %q (want int, float, or bool)", t.Name)
	}
	for p.tok == source.LBRACK {
		p.next()
		t.Dims = append(t.Dims, p.intLit("array dimension"))
		p.expect(source.RBRACK)
	}
	return t
}

func (p *parser) ident(what string) string {
	if p.tok != source.IDENT {
		p.errorf("expected %s, found %s", what, p.tokDesc())
		return ""
	}
	name := p.lit
	p.next()
	return name
}

func (p *parser) intLit(what string) int {
	if p.tok != source.INT {
		p.errorf("expected %s, found %s", what, p.tokDesc())
		return 0
	}
	v, err := strconv.Atoi(p.lit)
	if err != nil {
		p.errorf("integer %q out of range", p.lit)
	}
	p.next()
	return v
}

// ---------------------------------------------------------------------------
// Statements

func (p *parser) block() *ast.Block {
	b := &ast.Block{LbracePos: p.pos}
	p.expect(source.LBRACE)
	for p.tok != source.RBRACE && p.tok != source.EOF {
		before := p.pos
		b.Stmts = append(b.Stmts, p.stmt())
		if p.pos == before {
			// No progress (cascading error): skip to a statement boundary.
			p.sync(source.SEMICOLON, source.RBRACE)
			p.accept(source.SEMICOLON)
		}
	}
	b.RbracePos = p.expect(source.RBRACE)
	return b
}

func (p *parser) stmt() ast.Stmt {
	switch p.tok {
	case source.VAR:
		return p.varDecl()
	case source.IF:
		return p.ifStmt()
	case source.WHILE:
		return p.whileStmt()
	case source.FOR:
		return p.forStmt()
	case source.RETURN:
		pos := p.pos
		p.next()
		r := &ast.Return{ReturnPos: pos}
		if p.tok != source.SEMICOLON {
			r.Value = p.expr()
		}
		p.expect(source.SEMICOLON)
		return r
	case source.RECEIVE:
		return p.receiveStmt()
	case source.SEND:
		return p.sendStmt()
	case source.BREAK:
		pos := p.pos
		p.next()
		p.expect(source.SEMICOLON)
		return &ast.Break{BreakPos: pos}
	case source.CONTINUE:
		pos := p.pos
		p.next()
		p.expect(source.SEMICOLON)
		return &ast.Continue{ContinuePos: pos}
	case source.LBRACE:
		return p.block()
	default:
		return p.simpleStmt()
	}
}

func (p *parser) varDecl() ast.Stmt {
	v := &ast.VarDecl{VarPos: p.pos}
	p.expect(source.VAR)
	v.Name = p.ident("variable name")
	p.expect(source.COLON)
	v.Type = p.typeExpr()
	if p.accept(source.ASSIGN) {
		v.Init = p.expr()
	}
	p.expect(source.SEMICOLON)
	return v
}

func (p *parser) ifStmt() ast.Stmt {
	s := &ast.If{IfPos: p.pos}
	p.expect(source.IF)
	s.Cond = p.expr()
	s.Then = p.block()
	if p.accept(source.ELSE) {
		if p.tok == source.IF {
			s.Else = p.ifStmt()
		} else {
			s.Else = p.block()
		}
	}
	return s
}

func (p *parser) whileStmt() ast.Stmt {
	s := &ast.While{WhilePos: p.pos}
	p.expect(source.WHILE)
	s.Cond = p.expr()
	s.Body = p.block()
	return s
}

func (p *parser) forStmt() ast.Stmt {
	s := &ast.For{ForPos: p.pos}
	p.expect(source.FOR)
	namePos := p.pos
	s.Var = &ast.Ident{NamePos: namePos, Name: p.ident("loop variable")}
	p.expect(source.ASSIGN)
	s.Lo = p.expr()
	p.expect(source.TO)
	s.Hi = p.expr()
	if p.accept(source.STEP) {
		s.Step = p.expr()
	}
	s.Body = p.block()
	return s
}

func (p *parser) receiveStmt() ast.Stmt {
	s := &ast.Receive{RecvPos: p.pos}
	p.expect(source.RECEIVE)
	p.expect(source.LPAREN)
	s.Chan = p.channel()
	p.expect(source.COMMA)
	s.LHS = p.expr()
	p.expect(source.RPAREN)
	p.expect(source.SEMICOLON)
	return s
}

func (p *parser) sendStmt() ast.Stmt {
	s := &ast.Send{SendPos: p.pos}
	p.expect(source.SEND)
	p.expect(source.LPAREN)
	s.Chan = p.channel()
	p.expect(source.COMMA)
	s.Value = p.expr()
	p.expect(source.RPAREN)
	p.expect(source.SEMICOLON)
	return s
}

// channel parses a systolic channel name. The Warp cell has an X and a Y
// pathway; the parser accepts any identifier and validates the spelling so
// the checker does not need a special case.
func (p *parser) channel() string {
	pos := p.pos
	name := p.ident("channel name (X or Y)")
	if name != "X" && name != "Y" {
		p.diags.Errorf(pos, "unknown channel %q (want X or Y)", name)
	}
	return name
}

func (p *parser) simpleStmt() ast.Stmt {
	lhs := p.expr()
	if p.accept(source.ASSIGN) {
		rhs := p.expr()
		p.expect(source.SEMICOLON)
		return &ast.Assign{LHS: lhs, RHS: rhs}
	}
	p.expect(source.SEMICOLON)
	return &ast.ExprStmt{X: lhs}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) expr() ast.Expr {
	return p.binaryExpr(1)
}

func (p *parser) binaryExpr(minPrec int) ast.Expr {
	x := p.unaryExpr()
	for {
		prec := p.tok.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok
		p.next()
		y := p.binaryExpr(prec + 1)
		x = &ast.BinaryExpr{Op: op, X: x, Y: y}
	}
}

func (p *parser) unaryExpr() ast.Expr {
	switch p.tok {
	case source.SUB, source.NOT:
		op, pos := p.tok, p.pos
		p.next()
		return &ast.UnaryExpr{OpPos: pos, Op: op, X: p.unaryExpr()}
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() ast.Expr {
	var x ast.Expr
	switch p.tok {
	case source.IDENT:
		id := &ast.Ident{NamePos: p.pos, Name: p.lit}
		p.next()
		if p.tok == source.LPAREN {
			x = p.callExpr(id)
		} else {
			x = id
		}
	case source.INT:
		v, err := strconv.ParseInt(p.lit, 10, 64)
		if err != nil {
			p.errorf("integer literal %q out of range", p.lit)
		}
		x = &ast.IntLit{LitPos: p.pos, Value: v}
		p.next()
	case source.FLOAT:
		v, err := strconv.ParseFloat(p.lit, 64)
		if err != nil {
			p.errorf("malformed float literal %q", p.lit)
		}
		x = &ast.FloatLit{LitPos: p.pos, Value: v}
		p.next()
	case source.TRUE, source.FALSE:
		x = &ast.BoolLit{LitPos: p.pos, Value: p.tok == source.TRUE}
		p.next()
	case source.LPAREN:
		p.next()
		x = p.expr()
		p.expect(source.RPAREN)
	default:
		p.errorf("expected expression, found %s", p.tokDesc())
		bad := &ast.IntLit{LitPos: p.pos, Value: 0}
		p.next() // make progress
		return bad
	}

	for p.tok == source.LBRACK {
		p.next()
		idx := p.expr()
		p.expect(source.RBRACK)
		x = &ast.IndexExpr{X: x, Index: idx}
	}
	return x
}

func (p *parser) callExpr(fun *ast.Ident) ast.Expr {
	call := &ast.CallExpr{Fun: fun}
	p.expect(source.LPAREN)
	if p.tok != source.RPAREN {
		call.Args = append(call.Args, p.expr())
		for p.accept(source.COMMA) {
			call.Args = append(call.Args, p.expr())
		}
	}
	p.expect(source.RPAREN)
	return call
}

package parser

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"

	"repro/internal/ast"
)

// FuncHash is the incremental content address of one function's compilation
// inputs (see FuncHashes). It shares its underlying type with
// fcache.FuncHash — the cache package cannot be imported from here without
// a cycle — and converts directly.
type FuncHash [sha256.Size]byte

// IsZero reports whether h is the zero (absent) hash.
func (h FuncHash) IsZero() bool { return h == FuncHash{} }

// FuncKey locates one function in a module: section number (1-based) and
// position within the section (0-based).
type FuncKey struct {
	Section int
	Index   int
}

// funcHashVersion domain-separates FuncHash values: bump it whenever the
// hashed inputs or normalization change, so stale persistent cache entries
// from an older scheme can never be returned.
const funcHashVersion = "w2-funchash-v1\x00"

// DirectCalls returns the indices (ascending, deduplicated) of the earlier
// same-section functions that sec.Funcs[i] calls directly. Only earlier
// functions are callable in W2 (the checker enforces declaration order), and
// only same-section calls exist, so these are exactly the functions whose
// bodies get inlined into sec.Funcs[i] during lowering — the reason a
// function's incremental hash must cover its callees. When several earlier
// functions share a name, the latest declaration wins, matching the name
// resolution used by lowering.
func DirectCalls(sec *ast.Section, i int) []int {
	byName := make(map[string]int, i)
	for j := 0; j < i; j++ {
		byName[sec.Funcs[j].Name] = j
	}
	seen := make(map[int]bool)
	ast.Inspect(sec.Funcs[i].Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if j, ok := byName[call.Fun.Name]; ok {
				seen[j] = true
			}
		}
		return true
	})
	deps := make([]int, 0, len(seen))
	for j := range seen {
		deps = append(deps, j)
	}
	sort.Ints(deps)
	return deps
}

// transitiveCalls returns, for every function of sec, the ascending indices
// of all earlier functions it transitively depends on (direct callees plus
// their callees, and so on). Dependencies always point at strictly smaller
// indices, so one forward pass suffices.
func transitiveCalls(sec *ast.Section) [][]int {
	closure := make([][]int, len(sec.Funcs))
	for i := range sec.Funcs {
		set := make(map[int]bool)
		for _, j := range DirectCalls(sec, i) {
			set[j] = true
			for _, k := range closure[j] {
				set[k] = true
			}
		}
		deps := make([]int, 0, len(set))
		for j := range set {
			deps = append(deps, j)
		}
		sort.Ints(deps)
		closure[i] = deps
	}
	return closure
}

// hashNorm writes the whitespace-normalized form of span into w followed by
// a separator: each line with leading/trailing spaces, tabs, and carriage
// returns stripped, blank lines dropped, '\n' after every kept line. Edits
// to indentation or blank lines therefore leave every FuncHash unchanged.
func hashNorm(w io.Writer, span []byte) {
	start := 0
	flush := func(end int) {
		lo, hi := start, end
		for lo < hi && (span[lo] == ' ' || span[lo] == '\t' || span[lo] == '\r') {
			lo++
		}
		for hi > lo && (span[hi-1] == ' ' || span[hi-1] == '\t' || span[hi-1] == '\r') {
			hi--
		}
		if lo < hi {
			w.Write(span[lo:hi])
			w.Write([]byte{'\n'})
		}
	}
	for i, b := range span {
		if b == '\n' {
			flush(i)
			start = i + 1
		}
	}
	flush(len(span))
	w.Write([]byte{0})
}

// span extracts src[start:end], reporting whether the bounds are valid.
// Invalid bounds (a hand-built AST with zero positions, or error recovery)
// yield ok=false, which degrades the function to a zero — uncacheable —
// hash rather than a colliding one.
func span(src []byte, start, end int) ([]byte, bool) {
	if start < 0 || end < start || end > len(src) {
		return nil, false
	}
	return src[start:end], true
}

// funcSpan returns the byte span of one function declaration: the function
// keyword through its body's closing brace, inclusive.
func funcSpan(src []byte, fn *ast.FuncDecl) ([]byte, bool) {
	if fn.Body == nil {
		return nil, false
	}
	return span(src, fn.FuncPos.Offset, fn.Body.RbracePos.Offset+1)
}

// sectionHashes computes the FuncHash of every function in sec. moduleHeader
// is the normalized-as-is module prelude (module declaration and stream
// parameters) that every function's compilation can observe through the
// checker. A function's hash covers, in order: the version tag, the module
// header, the section header (section keyword through its opening brace —
// the section index and count live here), the spans of its transitive
// callees in ascending index order, its own span, and its entry-function
// flag (the last function of a section compiles differently: it becomes the
// cell program). Any span that cannot be extracted zeroes the hash for the
// affected functions, making them uncacheable rather than wrongly shared.
func sectionHashes(src []byte, moduleHeader []byte, sec *ast.Section) []FuncHash {
	hashes := make([]FuncHash, len(sec.Funcs))
	header, headerOK := span(src, sec.SectionPos.Offset, sec.LbracePos.Offset+1)
	spans := make([][]byte, len(sec.Funcs))
	spanOK := make([]bool, len(sec.Funcs))
	for i, fn := range sec.Funcs {
		spans[i], spanOK[i] = funcSpan(src, fn)
	}
	closure := transitiveCalls(sec)
	for i := range sec.Funcs {
		if !headerOK || !spanOK[i] {
			continue
		}
		ok := true
		for _, j := range closure[i] {
			if !spanOK[j] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		hh := sha256.New()
		hh.Write([]byte(funcHashVersion))
		hashNorm(hh, moduleHeader)
		hashNorm(hh, header)
		for _, j := range closure[i] {
			hashNorm(hh, spans[j])
		}
		hashNorm(hh, spans[i])
		fmt.Fprintf(hh, "entry=%t", i == len(sec.Funcs)-1)
		copy(hashes[i][:], hh.Sum(nil))
	}
	return hashes
}

// moduleHeaderSpan returns the module prelude: everything before the first
// section keyword.
func moduleHeaderSpan(src []byte, m *ast.Module) ([]byte, bool) {
	if len(m.Sections) == 0 {
		return nil, true
	}
	return span(src, 0, m.Sections[0].SectionPos.Offset)
}

// FuncHashes computes the incremental content address of every function of
// an already-parsed module against its exact source bytes. Functions whose
// byte spans cannot be recovered (hand-built ASTs without positions) get the
// zero hash, which every cache tier treats as uncacheable.
func FuncHashes(m *ast.Module, src []byte) map[FuncKey]FuncHash {
	out := make(map[FuncKey]FuncHash, m.NumFunctions())
	header, ok := moduleHeaderSpan(src, m)
	if !ok {
		header = nil
	}
	for _, sec := range m.Sections {
		hashes := sectionHashes(src, header, sec)
		for i := range sec.Funcs {
			out[FuncKey{Section: sec.Index, Index: i}] = hashes[i]
		}
	}
	return out
}

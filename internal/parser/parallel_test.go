package parser_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/wgen"
)

// parallelSources is the corpus every parity test runs over: each wgen kind
// plus hand-written edge cases.
func parallelSources(t *testing.T) map[string][]byte {
	t.Helper()
	return map[string][]byte{
		"synthetic": wgen.SyntheticProgram(wgen.Medium, 6),
		"small":     wgen.SmallFuncsProgram(12),
		"mixed":     wgen.MixedProgram(8),
		"multisec":  wgen.MultiSectionProgram(wgen.Small, 3),
		"user":      wgen.UserProgram(),
		"wide":      wgen.WideProgram(16, 2),
		"tiny": []byte(`module t
section 1 { function f(): int { return 1; } }
`),
	}
}

// TestParseModuleParallelParity checks that the span-sliced parallel parse
// produces a tree (printed form), per-function hashes, and diagnostics
// word-identical to the sequential parser across the corpus and worker
// counts.
func TestParseModuleParallelParity(t *testing.T) {
	for name, src := range parallelSources(t) {
		var seqBag source.DiagBag
		seqMod := parser.Parse("m.w2", src, &seqBag)
		if seqBag.HasErrors() {
			t.Fatalf("%s: corpus source does not parse: %s", name, seqBag.String())
		}
		outline := parser.ParseOutline("m.w2", src, &source.DiagBag{})
		if outline == nil {
			t.Fatalf("%s: no outline", name)
		}
		seqHashes := parser.FuncHashes(seqMod, src)

		for _, workers := range []int{1, 2, 4, 8} {
			var parBag source.DiagBag
			parMod, err := parser.ParseModuleParallel(context.Background(), "m.w2", src, outline, workers, &parBag)
			if err != nil {
				t.Fatalf("%s/w%d: unexpected error: %v", name, workers, err)
			}
			if got, want := parBag.String(), seqBag.String(); got != want {
				t.Errorf("%s/w%d: diagnostics differ:\n got: %q\nwant: %q", name, workers, got, want)
			}
			if got, want := ast.Format(parMod), ast.Format(seqMod); got != want {
				t.Errorf("%s/w%d: printed tree differs", name, workers)
			}
			parHashes := parser.FuncHashes(parMod, src)
			if len(parHashes) != len(seqHashes) {
				t.Fatalf("%s/w%d: hash count %d, want %d", name, workers, len(parHashes), len(seqHashes))
			}
			for k, h := range seqHashes {
				if parHashes[k] != h {
					t.Errorf("%s/w%d: hash mismatch for %v", name, workers, k)
				}
			}
			// Stitching must restore the locator indices the sequential
			// parser assigns.
			for si, sec := range parMod.Sections {
				for fi, fn := range sec.Funcs {
					want := seqMod.Sections[si].Funcs[fi]
					if fn == nil || fn.SectionIndex != want.SectionIndex || fn.FuncIndex != want.FuncIndex {
						t.Errorf("%s/w%d: section %d func %d badly stitched", name, workers, si, fi)
					}
				}
			}
		}
	}
}

// TestParseFuncBodyPositions checks that a body parsed from its span alone
// reports positions identical to the sequential parse of the whole module.
func TestParseFuncBodyPositions(t *testing.T) {
	src := wgen.MixedProgram(5)
	var bag source.DiagBag
	m := parser.Parse("m.w2", src, &bag)
	if bag.HasErrors() {
		t.Fatal(bag.String())
	}
	outline := parser.OutlineWithHashes(m, src)
	for si, so := range outline.Sections {
		for fi := range so.Functions {
			fo := &outline.Sections[si].Functions[fi]
			var fnBag source.DiagBag
			fn := parser.ParseFuncBody("m.w2", src, fo, &fnBag)
			if fn == nil || fnBag.HasErrors() {
				t.Fatalf("span parse of %s failed: %s", fo.Name, fnBag.String())
			}
			want := m.Sections[si].Funcs[fi]
			if fn.FuncPos != want.FuncPos {
				t.Errorf("%s: FuncPos %v, want %v", fo.Name, fn.FuncPos, want.FuncPos)
			}
			if fn.Body.RbracePos != want.Body.RbracePos {
				t.Errorf("%s: RbracePos %v, want %v", fo.Name, fn.Body.RbracePos, want.Body.RbracePos)
			}
		}
	}
}

// TestParseModuleParallelFallback checks that error-laden sources and
// span-less outlines take the sequential path with identical diagnostics.
func TestParseModuleParallelFallback(t *testing.T) {
	bad := []byte(`module t
section 1 {
	function f(): int { return 1 }
	function g(): int { return 2; }
}
`)
	var seqBag source.DiagBag
	seqMod := parser.Parse("m.w2", bad, &seqBag)
	if !seqBag.HasErrors() {
		t.Fatal("corpus error source unexpectedly parses")
	}
	// ParseOutline refuses error sources, so parallel parse falls back.
	if parser.ParseOutline("m.w2", bad, &source.DiagBag{}) != nil {
		t.Fatal("outline of error source should be nil")
	}
	var parBag source.DiagBag
	parMod, err := parser.ParseModuleParallel(context.Background(), "m.w2", bad, nil, 4, &parBag)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if got, want := parBag.String(), seqBag.String(); got != want {
		t.Errorf("fallback diagnostics differ:\n got: %q\nwant: %q", got, want)
	}
	if got, want := ast.Format(parMod), ast.Format(seqMod); got != want {
		t.Errorf("fallback tree differs")
	}

	// A span-less outline (OutlineOf without source) must also fall back.
	good := wgen.SmallFuncsProgram(4)
	var gb source.DiagBag
	gm := parser.Parse("m.w2", good, &gb)
	var parBag2 source.DiagBag
	parMod2, err := parser.ParseModuleParallel(context.Background(), "m.w2", good, parser.OutlineOf(gm), 4, &parBag2)
	if err != nil || parMod2 == nil || parBag2.HasErrors() {
		t.Fatalf("span-less fallback failed: %v %s", err, parBag2.String())
	}
	if got, want := ast.Format(parMod2), ast.Format(gm); got != want {
		t.Errorf("span-less fallback tree differs")
	}
}

// TestParseModuleParallelCancel checks that a cancelled context makes
// ParseModuleParallel return promptly with ctx.Err() and without leaking
// worker goroutines.
func TestParseModuleParallelCancel(t *testing.T) {
	src := wgen.WideProgram(64, 4)
	outline := parser.ParseOutline("m.w2", src, &source.DiagBag{})
	if outline == nil {
		t.Fatal("no outline")
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var bag source.DiagBag
	m, err := parser.ParseModuleParallel(ctx, "m.w2", src, outline, 4, &bag)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Fatal("cancelled parse returned a module")
	}
	// All workers must have exited; allow the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

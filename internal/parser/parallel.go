// Span-sliced parallel parsing.
//
// ParseOutline records the exact byte span of every function declaration
// (function keyword through closing brace) together with the line/column at
// both ends. Those spans partition the module into independently parsable
// slices: ParseFuncBody re-lexes and re-parses one declaration from its span
// with a scanner seeded at the recorded position (source.NewScannerAt), so
// every node position matches the sequential parse exactly, and
// ParseModuleParallel runs one skeleton parse for the module and section
// headers while a bounded worker group parses every function body
// concurrently, then stitches the results into a module identical to
// Parse's.
//
// Spans exist only for modules whose outline parse succeeded, i.e. modules
// without syntax errors — so the concurrent re-parse of a span can never
// fail. Any source that fails the outline parse (or any unexpected worker
// diagnostic, which would indicate a span bug) falls back to the sequential
// parser, keeping diagnostics word-identical to Parse in every case.
package parser

import (
	"context"
	"sync"

	"repro/internal/ast"
	"repro/internal/source"
)

// ParseFuncBody parses one function declaration — header and body — in
// isolation from its recorded byte span. The scanner is seeded with the
// span's exact offset/line/column, so the returned declaration's positions
// are identical to the ones a full sequential parse would assign. Syntax
// problems are reported to diags; a nil return means the outline carries no
// usable span (outline built without source) and the caller must fall back
// to a sequential parse.
func ParseFuncBody(file string, src []byte, fo *FuncOutline, diags *source.DiagBag) *ast.FuncDecl {
	if fo == nil || fo.SpanEnd <= fo.SpanStart || fo.SpanEnd > len(src) || fo.StartLine <= 0 {
		return nil
	}
	p := &parser{diags: diags, sc: source.NewScannerAt(file, src, diags, fo.SpanStart, fo.StartLine, fo.StartCol)}
	p.next()
	if p.tok != source.FUNCTION {
		p.errorf("expected %q at function span start, found %s", source.FUNCTION.String(), p.tokDesc())
		return nil
	}
	f := p.funcDecl()
	f.SectionIndex = fo.Section
	f.FuncIndex = fo.Index
	return f
}

// parsedFunc is one worker's output: the declaration parsed from span
// (si, fi) with its private diagnostic bag.
type parsedFunc struct {
	fn  *ast.FuncDecl
	bag *source.DiagBag
}

// ParseModuleParallel parses src into a module identical to Parse's result,
// using the outline's function spans to lex and parse every function body
// concurrently on at most `workers` goroutines while the module and section
// headers are parsed by a single skeleton pass. Diagnostics land in diags in
// the same order the sequential parser would emit them. The returned error
// is non-nil only when ctx was cancelled; every worker goroutine has exited
// by the time ParseModuleParallel returns.
//
// A nil outline, an outline without spans, or any unexpected diagnostic from
// a span parse (impossible for an outline produced by ParseOutline on the
// same bytes, but checked defensively) falls back to the sequential parser,
// so the result — tree and diagnostics — is always word-identical to Parse.
func ParseModuleParallel(ctx context.Context, file string, src []byte, outline *Outline, workers int, diags *source.DiagBag) (*ast.Module, error) {
	if outline == nil || !outlineHasSpans(outline) {
		return Parse(file, src, diags), nil
	}
	if workers < 1 {
		workers = 1
	}

	// Fan the function spans out to a bounded worker group. Results are
	// slotted by (section position, function index), so completion order is
	// irrelevant.
	type job struct {
		si int
		fo *FuncOutline
	}
	var jobs []job
	for si := range outline.Sections {
		for fi := range outline.Sections[si].Functions {
			jobs = append(jobs, job{si: si, fo: &outline.Sections[si].Functions[fi]})
		}
	}
	results := make([][]parsedFunc, len(outline.Sections))
	for si := range outline.Sections {
		results[si] = make([]parsedFunc, len(outline.Sections[si].Functions))
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				bag := &source.DiagBag{}
				fn := ParseFuncBody(file, src, j.fo, bag)
				results[j.si][j.fo.Index] = parsedFunc{fn: fn, bag: bag}
			}
		}()
	}

	// The skeleton parse runs on the caller's goroutine, concurrently with
	// the workers: module header, section headers, and a placeholder per
	// function span.
	skip := make(map[int]*FuncOutline, len(jobs))
	for _, j := range jobs {
		skip[j.fo.SpanStart] = j.fo
	}
	skelBag := &source.DiagBag{}
	sp := &parser{
		diags: skelBag,
		sc:    source.NewScanner(file, src, skelBag),
		file:  file,
		src:   src,
		skip:  skip,
	}
	sp.next()
	m := sp.module()
	if sp.tok != source.EOF {
		sp.errorf("unexpected %s after end of module", sp.tokDesc())
	}

	feed := func() error {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	err := feed()
	wg.Wait()
	if err != nil {
		return nil, err
	}

	// Stitch — after verifying the bet: the outline promised a syntax-clean
	// module, so neither the skeleton nor any span parse may have produced a
	// diagnostic or a skew between placeholders and spans. Any violation
	// falls back to the one sequential parse that defines the output.
	ok := skelBag.ErrorCount() == 0 && m != nil && len(m.Sections) == len(outline.Sections)
	if ok {
	stitch:
		for si, sec := range m.Sections {
			if len(sec.Funcs) != len(results[si]) {
				ok = false
				break
			}
			for fi := range sec.Funcs {
				r := results[si][fi]
				if sec.Funcs[fi] != nil || r.fn == nil || r.bag.ErrorCount() > 0 {
					ok = false
					break stitch
				}
				r.fn.SectionIndex = sec.Index
				r.fn.FuncIndex = fi
				sec.Funcs[fi] = r.fn
			}
		}
	}
	if !ok {
		var fresh source.DiagBag
		m = Parse(file, src, &fresh)
		diags.Merge(&fresh)
		return m, nil
	}

	// Deterministic diagnostic combine: skeleton first, then every span bag
	// in declaration order (all empty of errors here; warnings, if the
	// grammar ever grows any, would land exactly where Parse puts them).
	diags.Merge(skelBag)
	for si := range results {
		for fi := range results[si] {
			diags.Merge(results[si][fi].bag)
		}
	}
	return m, nil
}

// outlineHasSpans reports whether every function of the outline carries a
// usable byte span with seed positions.
func outlineHasSpans(o *Outline) bool {
	n := 0
	for _, so := range o.Sections {
		for _, fo := range so.Functions {
			if fo.SpanEnd <= fo.SpanStart || fo.StartLine <= 0 {
				return false
			}
			n++
		}
	}
	return n > 0
}

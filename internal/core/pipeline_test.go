package core

// Tests for the overlapped master pipeline: output parity with the barrier
// baseline, word-identical frontend-error aborts despite speculative
// dispatch, prompt end-to-end cancellation without goroutine leaks, and the
// self-consistency of the timing decomposition under overlap.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/wgen"
)

// TestPipelineMatchesBarrier compiles representative workloads through both
// masters and requires byte-identical modules and identical warnings — the
// streaming link and speculative dispatch must be invisible in the output.
func TestPipelineMatchesBarrier(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  []byte
	}{
		{"mixed-straggler", wgen.MixedProgram(8)},
		{"multi-section", wgen.MultiSectionProgram(wgen.Small, 3)},
		{"user", wgen.UserProgram()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := compiler.CompileModule("m.w2", tc.src, compiler.Options{})
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			bar, _, err := ParallelCompileWith("m.w2", tc.src, newLocalBackend(4), compiler.Options{},
				ParallelOptions{Barrier: true})
			if err != nil {
				t.Fatalf("barrier: %v", err)
			}
			pipe, stats, err := ParallelCompileWith("m.w2", tc.src, newLocalBackend(4), compiler.Options{},
				ParallelOptions{})
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			if err := VerifySameOutput(seq.Module, bar.Module); err != nil {
				t.Errorf("barrier output differs from sequential: %v", err)
			}
			if err := VerifySameOutput(seq.Module, pipe.Module); err != nil {
				t.Errorf("pipeline output differs from sequential: %v", err)
			}
			if len(pipe.Warnings) != len(bar.Warnings) {
				t.Errorf("warnings: pipeline %d, barrier %d", len(pipe.Warnings), len(bar.Warnings))
			}
			for i := range bar.Warnings {
				if i < len(pipe.Warnings) && pipe.Warnings[i] != bar.Warnings[i] {
					t.Errorf("warning %d differs: %q vs %q", i, pipe.Warnings[i], bar.Warnings[i])
				}
			}
			if stats.Pipeline.CriticalPath <= 0 {
				t.Errorf("pipeline stats not populated: %+v", stats.Pipeline)
			}
		})
	}
}

// TestFrontendErrorAbortWordIdentical checks speculative dispatch loses its
// bet gracefully: a module whose frontend fails must abort with diagnostics
// word-identical to the strictly phased master's, even though section
// masters were already forked when the verdict arrived.
func TestFrontendErrorAbortWordIdentical(t *testing.T) {
	bad := []byte(`
module m (out ys: float[1])
section 1 of 1 {
    function f() { send(Y, 1.0); }
    function g() { undeclared = 1; send(Y, 2.0); }
}
`)
	_, _, barErr := ParallelCompileWith("bad.w2", bad, newLocalBackend(2), compiler.Options{},
		ParallelOptions{Barrier: true})
	if barErr == nil {
		t.Fatal("barrier master accepted a semantically bad module")
	}
	_, _, pipeErr := ParallelCompileWith("bad.w2", bad, newLocalBackend(2), compiler.Options{},
		ParallelOptions{})
	if pipeErr == nil {
		t.Fatal("pipelined master accepted a semantically bad module")
	}
	if pipeErr.Error() != barErr.Error() {
		t.Errorf("abort diagnostics differ:\npipeline: %s\nbarrier:  %s", pipeErr, barErr)
	}
}

// gateBackend blocks its first Compile call until the request's ctx is
// cancelled (signalling entry on the way in), making mid-stream
// cancellation deterministic; every other call delegates.
type gateBackend struct {
	*localBackend
	entered chan struct{}
	mu      sync.Mutex
	once    bool
}

func (b *gateBackend) Compile(ctx context.Context, req CompileRequest) (*CompileReply, error) {
	first := false
	b.mu.Lock()
	if !b.once {
		b.once, first = true, true
	}
	b.mu.Unlock()
	if first {
		close(b.entered)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return b.localBackend.Compile(ctx, req)
}

// TestCallerCancellationSeversFleet cancels the caller's ctx while a
// section is mid-compile and checks the master returns promptly with the
// cancellation (never a masked or invented error), leaks no goroutines, and
// that an immediate retry compiles word-identical to sequential.
func TestCallerCancellationSeversFleet(t *testing.T) {
	src := wgen.MixedProgram(6)
	base := runtime.NumGoroutine()

	gate := &gateBackend{localBackend: newLocalBackend(2), entered: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, _, err := ParallelCompileContext(ctx, "mixed.w2", src, gate, compiler.Options{}, ParallelOptions{})
		done <- result{err: err}
	}()
	<-gate.entered
	cancel()
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatal("cancelled compile reported success")
		}
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("cancellation masked: %v", r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled compile did not return promptly")
	}

	// No goroutine leak: the fleet must drain back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Errorf("goroutines leaked after cancellation: %d now vs %d before", n, base)
	}

	// The retry compiles clean and word-identical to sequential.
	seq, err := compiler.CompileModule("mixed.w2", src, compiler.Options{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, _, err := ParallelCompile("mixed.w2", src, newLocalBackend(2), compiler.Options{})
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if err := VerifySameOutput(seq.Module, par.Module); err != nil {
		t.Errorf("retry output differs from sequential: %v", err)
	}
}

// TestPipelineStatsInvariants pins the timing decomposition's internal
// consistency under overlap, so a future stats change cannot silently
// report nonsense (an overlap longer than the phase it overlaps, a critical
// path longer than the wall clock).
func TestPipelineStatsInvariants(t *testing.T) {
	src := wgen.MixedProgram(8)
	_, s, err := ParallelCompileWith("mixed.w2", src, newLocalBackend(4), compiler.Options{}, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Pipeline
	if p.FrontendOverlap > s.FrontendTime {
		t.Errorf("FrontendOverlap %v > FrontendTime %v", p.FrontendOverlap, s.FrontendTime)
	}
	if p.FrontendOverlap > s.CompileWallTime {
		t.Errorf("FrontendOverlap %v > CompileWallTime %v", p.FrontendOverlap, s.CompileWallTime)
	}
	if p.LinkOverlap > p.LinkTime {
		t.Errorf("LinkOverlap %v > LinkTime %v", p.LinkOverlap, p.LinkTime)
	}
	if s.CompileWallTime > s.Elapsed {
		t.Errorf("CompileWallTime %v > Elapsed %v", s.CompileWallTime, s.Elapsed)
	}
	if s.FrontendTime > s.Elapsed {
		t.Errorf("FrontendTime %v > Elapsed %v", s.FrontendTime, s.Elapsed)
	}
	if p.CriticalPath > s.Elapsed {
		t.Errorf("CriticalPath %v > Elapsed %v", p.CriticalPath, s.Elapsed)
	}
	want := s.SetupTime + max(s.FrontendTime, s.CompileWallTime) + s.BackendTail
	if p.CriticalPath != want {
		t.Errorf("CriticalPath %v != setup+max(frontend,compile-wall)+tail %v", p.CriticalPath, want)
	}
	if p.CriticalPath <= 0 || p.LinkTime <= 0 || p.DriverTime <= 0 {
		t.Errorf("pipeline stats not populated: %+v", p)
	}

	// The barrier baseline reports no overlap at all. (The frontend timing
	// fields are orthogonal: the parallel frontend runs under the barrier
	// master too, so only the overlap fields must be zero.)
	_, sb, err := ParallelCompileWith("mixed.w2", src, newLocalBackend(4), compiler.Options{},
		ParallelOptions{Barrier: true})
	if err != nil {
		t.Fatal(err)
	}
	pb := sb.Pipeline
	pb.FrontendParseWall, pb.FrontendCheckWall, pb.FrontendWorkers = 0, 0, 0
	if pb != (PipelineStats{}) {
		t.Errorf("barrier master reported pipeline overlap: %+v", pb)
	}
}

package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/compiler"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/warpsim"
	"repro/internal/wgen"
)

// localBackend is a minimal in-package backend (the real pools live in
// internal/cluster; this avoids an import cycle in tests).
type localBackend struct {
	sem chan struct{}
}

func newLocalBackend(n int) *localBackend {
	return &localBackend{sem: make(chan struct{}, n)}
}

func (b *localBackend) Workers() int { return cap(b.sem) }

func (b *localBackend) Compile(ctx context.Context, req CompileRequest) (*CompileReply, error) {
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-b.sem }()
	return RunFunctionMaster(req)
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, src := range [][]byte{
		wgen.SyntheticProgram(wgen.Small, 4),
		wgen.MultiSectionProgram(wgen.Small, 3),
		wgen.UserProgram(),
	} {
		seq, err := compiler.CompileModule("m.w2", src, compiler.Options{})
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		par, stats, err := ParallelCompile("m.w2", src, newLocalBackend(4), compiler.Options{})
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if err := VerifySameOutput(seq.Module, par.Module); err != nil {
			t.Errorf("parallel output differs from sequential: %v", err)
		}
		if stats.Elapsed <= 0 || stats.Workers != 4 {
			t.Errorf("stats not populated: %+v", stats)
		}
		if len(stats.FuncCPU) != len(seq.Funcs) {
			t.Errorf("per-function CPU times: got %d, want %d", len(stats.FuncCPU), len(seq.Funcs))
		}
	}
}

func TestParallelResultRunsOnSimulator(t *testing.T) {
	src := wgen.SyntheticProgram(wgen.Small, 2)
	par, _, err := ParallelCompile("m.w2", src, newLocalBackend(2), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	arr := warpsim.NewArray(par.Module, warpsim.Config{MaxCycles: 5_000_000})
	out, _, err := arr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("expected one output from the entry, got %d", len(out))
	}
}

func TestMasterAbortsOnErrors(t *testing.T) {
	// Syntax error: the master's structure parse must abort before forking.
	_, _, err := ParallelCompile("bad.w2", []byte("module m section {"), newLocalBackend(2), compiler.Options{})
	if err == nil || !strings.Contains(err.Error(), "master: syntax errors") {
		t.Errorf("expected master syntax abort, got %v", err)
	}
	// Semantic error: discovered in the master's phase 1.
	bad := []byte(`
module m
section 1 {
    function f() { undeclared = 1; }
}
`)
	_, _, err = ParallelCompile("bad2.w2", bad, newLocalBackend(2), compiler.Options{})
	if err == nil || !strings.Contains(err.Error(), "front-end errors") {
		t.Errorf("expected master semantic abort, got %v", err)
	}
}

func TestRunFunctionMaster(t *testing.T) {
	src := wgen.SyntheticProgram(wgen.Small, 2)
	reply, err := RunFunctionMaster(CompileRequest{
		File: "m.w2", Source: src, Section: 1, Index: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Name != "small_1" || reply.IsEntry {
		t.Errorf("unexpected reply: %+v", reply)
	}
	if len(reply.ObjectBytes) == 0 || reply.CPUTime <= 0 {
		t.Error("reply must carry object bytes and a CPU time")
	}
	// Entry function.
	reply2, err := RunFunctionMaster(CompileRequest{
		File: "m.w2", Source: src, Section: 1, Index: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reply2.IsEntry {
		t.Error("last function of the section must be the entry")
	}
	// Out-of-range index.
	if _, err := RunFunctionMaster(CompileRequest{File: "m.w2", Source: src, Section: 1, Index: 9}); err == nil {
		t.Error("bad index must error")
	}
	if _, err := RunFunctionMaster(CompileRequest{File: "m.w2", Source: src, Section: 7, Index: 0}); err == nil {
		t.Error("bad section must error")
	}
}

func TestTasksFromOutline(t *testing.T) {
	var bag source.DiagBag
	o := parser.ParseOutline("u.w2", wgen.UserProgram(), &bag)
	if o == nil || bag.HasErrors() {
		t.Fatal(bag.String())
	}
	tasks := Tasks(o)
	if len(tasks) != 9 {
		t.Fatalf("tasks = %d, want 9", len(tasks))
	}
	large := 0
	for _, task := range tasks {
		if task.Lines > 200 {
			large++
		}
	}
	if large != 3 {
		t.Errorf("large tasks = %d, want 3", large)
	}
}

func TestVerifySameOutputDetectsDifferences(t *testing.T) {
	src := wgen.SyntheticProgram(wgen.Tiny, 1)
	a, err := compiler.CompileModule("m.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := compiler.CompileModule("m.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySameOutput(a.Module, b.Module); err != nil {
		t.Fatalf("identical compiles should verify: %v", err)
	}
	// Corrupt one word.
	b.Module.Cells[0].Code[0][0].Imm++
	if err := VerifySameOutput(a.Module, b.Module); err == nil {
		t.Error("corruption not detected")
	}
}

// batchingBackend extends localBackend with CompileBatch so tests cover the
// BatchBackend dispatch path without importing internal/cluster.
type batchingBackend struct {
	*localBackend
	batchCalls int
	batchFuncs int
	mu         sync.Mutex
}

func (b *batchingBackend) CompileBatch(ctx context.Context, req BatchRequest) ([]*CompileReply, error) {
	select {
	case b.localBackend.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-b.localBackend.sem }()
	b.mu.Lock()
	b.batchCalls++
	b.batchFuncs += len(req.Items)
	b.mu.Unlock()
	return RunBatchWith(ctx, req, nil)
}

// TestParallelPoliciesMatchSequential drives every dispatch policy over a
// module of many small functions — the paper's worst case — on both a
// batch-capable and a batch-less backend, checking word-identical output
// and the expected scheduling counters.
func TestParallelPoliciesMatchSequential(t *testing.T) {
	src := wgen.SmallFuncsProgram(16)
	seq, err := compiler.CompileModule("small.w2", src, compiler.Options{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	// NoSteal pins the static dispatch path: this suite asserts planned
	// units map 1:1 onto backend calls, which a mid-flight steal split
	// deliberately breaks. The stealing path has its own parity suite
	// (steal_test.go).
	cases := []struct {
		name        string
		popts       ParallelOptions
		wantBatches bool // at least one multi-function unit planned
		wantUnits   int  // exact unit count; 0 = don't check
	}{
		{"fcfs", ParallelOptions{Sched: SchedFCFS, NoSteal: true}, false, 16},
		{"lpt-default", ParallelOptions{Sched: SchedLPT, NoSteal: true}, true, 0},
		{"lpt-no-batch", ParallelOptions{Sched: SchedLPT, BatchThreshold: -1, NoSteal: true}, false, 16},
		{"lpt-huge-threshold", ParallelOptions{Sched: SchedLPT, BatchThreshold: 1e9, NoSteal: true}, true, 0},
		{"static-dispatch-defaults", ParallelOptions{NoSteal: true}, true, 0},
	}
	backends := []struct {
		name string
		mk   func() Backend
	}{
		{"batch-capable", func() Backend { return &batchingBackend{localBackend: newLocalBackend(4)} }},
		{"batch-less", func() Backend { return newLocalBackend(4) }},
	}
	for _, be := range backends {
		for _, tc := range cases {
			t.Run(be.name+"/"+tc.name, func(t *testing.T) {
				backend := be.mk()
				par, stats, err := ParallelCompileWith("small.w2", src, backend, compiler.Options{}, tc.popts)
				if err != nil {
					t.Fatalf("parallel: %v", err)
				}
				if err := VerifySameOutput(seq.Module, par.Module); err != nil {
					t.Errorf("output differs from sequential: %v", err)
				}
				if len(par.Warnings) != len(seq.Warnings) {
					t.Errorf("warnings: got %d, want %d", len(par.Warnings), len(seq.Warnings))
				}
				for i := range seq.Warnings {
					if i < len(par.Warnings) && par.Warnings[i] != seq.Warnings[i] {
						t.Errorf("warning %d differs: %q vs %q", i, par.Warnings[i], seq.Warnings[i])
					}
				}
				d := stats.Dispatch
				if tc.wantBatches && d.Batches == 0 {
					t.Errorf("expected batches, got %+v", d)
				}
				if !tc.wantBatches && d.Batches != 0 {
					t.Errorf("expected no batches, got %+v", d)
				}
				if tc.wantUnits != 0 && d.Units != tc.wantUnits {
					t.Errorf("units = %d, want %d", d.Units, tc.wantUnits)
				}
				if d.Batches > 0 && d.BatchedFuncs < 2*d.Batches {
					t.Errorf("batched funcs %d inconsistent with %d batches", d.BatchedFuncs, d.Batches)
				}
				if bb, ok := backend.(*batchingBackend); ok && d.Batches > 0 && bb.batchCalls != d.Batches {
					t.Errorf("backend served %d batch calls, stats say %d", bb.batchCalls, d.Batches)
				}
				if stats.CompileWallTime <= 0 {
					t.Errorf("CompileWallTime not populated: %+v", stats)
				}
			})
		}
	}
}

// skewBackend drops the last reply of every batch — simulating a worker
// answering with the wrong number of objects.
type skewBackend struct{ *localBackend }

func (b *skewBackend) CompileBatch(ctx context.Context, req BatchRequest) ([]*CompileReply, error) {
	rs, err := RunBatchWith(ctx, req, nil)
	if err != nil {
		return nil, err
	}
	return rs[:len(rs)-1], nil
}

// TestBatchReplySkewIsError checks the streaming combine treats a
// request/reply mismatch as a hard error, never a silently dropped or
// zeroed function (the old `if k < len(r.Lines)` smell).
func TestBatchReplySkewIsError(t *testing.T) {
	src := wgen.SmallFuncsProgram(8)
	_, _, err := ParallelCompileWith("small.w2", src, &skewBackend{newLocalBackend(2)}, compiler.Options{},
		ParallelOptions{Sched: SchedLPT, BatchThreshold: 1e9})
	if err == nil || !strings.Contains(err.Error(), "skew") {
		t.Fatalf("expected dispatch-skew error, got %v", err)
	}
}

// TestEstimatorAccuracyOverWgen checks the lines×loop-nesting estimator
// orders the mixed user program usefully: the 300-line mains must rank above
// the 5–45-line helpers in measured CPU, which pins the rank correlation
// well above zero.
func TestEstimatorAccuracyOverWgen(t *testing.T) {
	_, stats, err := ParallelCompile("user.w2", wgen.UserProgram(), newLocalBackend(4), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rc := stats.Dispatch.RankCorr; rc <= 0 {
		t.Errorf("estimator rank correlation = %.2f, want > 0 (predicted vs actual CPU)", rc)
	}
	if stats.DispatchTime < 0 || stats.CompileWallTime <= 0 {
		t.Errorf("timing split not populated: dispatch=%v compile-wall=%v", stats.DispatchTime, stats.CompileWallTime)
	}
}

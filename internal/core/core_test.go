package core

import (
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/warpsim"
	"repro/internal/wgen"
)

// localBackend is a minimal in-package backend (the real pools live in
// internal/cluster; this avoids an import cycle in tests).
type localBackend struct {
	sem chan struct{}
}

func newLocalBackend(n int) *localBackend {
	return &localBackend{sem: make(chan struct{}, n)}
}

func (b *localBackend) Workers() int { return cap(b.sem) }

func (b *localBackend) Compile(req CompileRequest) (*CompileReply, error) {
	b.sem <- struct{}{}
	defer func() { <-b.sem }()
	return RunFunctionMaster(req)
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, src := range [][]byte{
		wgen.SyntheticProgram(wgen.Small, 4),
		wgen.MultiSectionProgram(wgen.Small, 3),
		wgen.UserProgram(),
	} {
		seq, err := compiler.CompileModule("m.w2", src, compiler.Options{})
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		par, stats, err := ParallelCompile("m.w2", src, newLocalBackend(4), compiler.Options{})
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		if err := VerifySameOutput(seq.Module, par.Module); err != nil {
			t.Errorf("parallel output differs from sequential: %v", err)
		}
		if stats.Elapsed <= 0 || stats.Workers != 4 {
			t.Errorf("stats not populated: %+v", stats)
		}
		if len(stats.FuncCPU) != len(seq.Funcs) {
			t.Errorf("per-function CPU times: got %d, want %d", len(stats.FuncCPU), len(seq.Funcs))
		}
	}
}

func TestParallelResultRunsOnSimulator(t *testing.T) {
	src := wgen.SyntheticProgram(wgen.Small, 2)
	par, _, err := ParallelCompile("m.w2", src, newLocalBackend(2), compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	arr := warpsim.NewArray(par.Module, warpsim.Config{MaxCycles: 5_000_000})
	out, _, err := arr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("expected one output from the entry, got %d", len(out))
	}
}

func TestMasterAbortsOnErrors(t *testing.T) {
	// Syntax error: the master's structure parse must abort before forking.
	_, _, err := ParallelCompile("bad.w2", []byte("module m section {"), newLocalBackend(2), compiler.Options{})
	if err == nil || !strings.Contains(err.Error(), "master: syntax errors") {
		t.Errorf("expected master syntax abort, got %v", err)
	}
	// Semantic error: discovered in the master's phase 1.
	bad := []byte(`
module m
section 1 {
    function f() { undeclared = 1; }
}
`)
	_, _, err = ParallelCompile("bad2.w2", bad, newLocalBackend(2), compiler.Options{})
	if err == nil || !strings.Contains(err.Error(), "front-end errors") {
		t.Errorf("expected master semantic abort, got %v", err)
	}
}

func TestRunFunctionMaster(t *testing.T) {
	src := wgen.SyntheticProgram(wgen.Small, 2)
	reply, err := RunFunctionMaster(CompileRequest{
		File: "m.w2", Source: src, Section: 1, Index: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Name != "small_1" || reply.IsEntry {
		t.Errorf("unexpected reply: %+v", reply)
	}
	if len(reply.ObjectBytes) == 0 || reply.CPUTime <= 0 {
		t.Error("reply must carry object bytes and a CPU time")
	}
	// Entry function.
	reply2, err := RunFunctionMaster(CompileRequest{
		File: "m.w2", Source: src, Section: 1, Index: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reply2.IsEntry {
		t.Error("last function of the section must be the entry")
	}
	// Out-of-range index.
	if _, err := RunFunctionMaster(CompileRequest{File: "m.w2", Source: src, Section: 1, Index: 9}); err == nil {
		t.Error("bad index must error")
	}
	if _, err := RunFunctionMaster(CompileRequest{File: "m.w2", Source: src, Section: 7, Index: 0}); err == nil {
		t.Error("bad section must error")
	}
}

func TestTasksFromOutline(t *testing.T) {
	var bag source.DiagBag
	o := parser.ParseOutline("u.w2", wgen.UserProgram(), &bag)
	if o == nil || bag.HasErrors() {
		t.Fatal(bag.String())
	}
	tasks := Tasks(o)
	if len(tasks) != 9 {
		t.Fatalf("tasks = %d, want 9", len(tasks))
	}
	large := 0
	for _, task := range tasks {
		if task.Lines > 200 {
			large++
		}
	}
	if large != 3 {
		t.Errorf("large tasks = %d, want 3", large)
	}
}

func TestVerifySameOutputDetectsDifferences(t *testing.T) {
	src := wgen.SyntheticProgram(wgen.Tiny, 1)
	a, err := compiler.CompileModule("m.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := compiler.CompileModule("m.w2", src, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySameOutput(a.Module, b.Module); err != nil {
		t.Fatalf("identical compiles should verify: %v", err)
	}
	// Corrupt one word.
	b.Module.Cells[0].Code[0][0].Imm++
	if err := VerifySameOutput(a.Module, b.Module); err == nil {
		t.Error("corruption not detected")
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/compiler"
)

// warnSrc triggers the frontend's discarded-call-result warning in one
// function and compiles cleanly otherwise.
var warnSrc = []byte(`
module m
section 1 {
    function g(): int { return 1; }
    function f() { g(); return; }
}
section 2 {
    function h() { return; }
}
`)

// TestParallelCompileSurfacesWarnings: every function master sees the whole
// module's diagnostics, but the combined output must carry each warning
// exactly once — and it must not be dropped (the bug this fixes).
func TestParallelCompileSurfacesWarnings(t *testing.T) {
	res, stats, err := ParallelCompile("warn.w2", warnSrc, newLocalBackend(4), compiler.Options{})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	var n int
	for _, w := range res.Warnings {
		if strings.Contains(w, "result of call is discarded") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("discarded-call warning appeared %d times in %q, want exactly 1", n, res.Warnings)
	}
	if stats.Warnings != len(res.Warnings) {
		t.Errorf("stats.Warnings = %d, want %d", stats.Warnings, len(res.Warnings))
	}

	// Parity with the sequential compiler's combined output.
	seq, err := compiler.CompileModule("warn.w2", warnSrc, compiler.Options{})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if got, want := strings.Join(res.Warnings, "\n"), strings.Join(seq.Warnings, "\n"); got != want {
		t.Errorf("parallel warnings differ from sequential:\n--- parallel\n%s\n--- sequential\n%s", got, want)
	}
}

// TestParallelFuncResultsHaveDiags: reconstructed FuncResults must not carry
// a nil DiagBag — callers iterate fr.Diags without nil checks.
func TestParallelFuncResultsHaveDiags(t *testing.T) {
	res, _, err := ParallelCompile("warn.w2", warnSrc, newLocalBackend(2), compiler.Options{})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for _, fr := range res.Funcs {
		if fr.Diags == nil {
			t.Errorf("function %s has nil Diags in the parallel path", fr.Name)
		}
	}
}
